/// \file bench_ablations.cc
/// Ablations of the design choices DESIGN.md calls out:
///   1. interleaved vs split double-buffering (Section 4's argument);
///   2. the per-request disk positioning model vs pure transfer-only
///      (what the paper's measured Figures 8-9 show but its cost model
///      cannot);
///   3. hash write-buffer size w (Section 6: larger bucket writes tame
///      random I/O);
///   4. full-data vs timing-only execution agreement (the phantom-block
///      substitution is timing-neutral).

#include "bench/bench_util.h"

namespace tertio::bench {
namespace {

void AblationDoubleBuffering(BenchRecorder& recorder) {
  std::printf("\n--- Ablation 1: interleaved vs split double-buffering ---\n");
  std::printf("Same memory budget; CDT-NB/MB splits it into two half-size S\n");
  std::printf("buffers (the scheme Section 4 rejects for disk), CDT-NB/DB keeps\n");
  std::printf("full-size chunks through one interleaved disk ring.\n\n");
  exec::TableReport table({"M/|R|", "MB iterations", "DB iterations", "MB resp (s)",
                           "DB resp (s)"});
  const std::vector<double> fractions = {0.2, 0.4, 0.8};
  struct Pair {
    Result<join::JoinStats> mb;
    Result<join::JoinStats> db;
  };
  std::vector<Pair> results = exec::ParallelSweep(
      fractions,
      [](double f) {
        auto m = static_cast<ByteCount>(f * 18 * static_cast<double>(kMB.value()));
        return Pair{RunPaperJoin(1000 * kMB, 18 * kMB, 50 * kMB, m, JoinMethodId::kCdtNbMb),
                    RunPaperJoin(1000 * kMB, 18 * kMB, 50 * kMB, m, JoinMethodId::kCdtNbDb)};
      },
      recorder.threads());
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const auto& mb = results[i].mb;
    const auto& db = results[i].db;
    TERTIO_CHECK(mb.ok() && db.ok(), "ablation runs failed");
    recorder.RecordSim(StrFormat("dbl-buffer M/R=%.2f/MB", fractions[i]),
                       mb->response_seconds);
    recorder.RecordSim(StrFormat("dbl-buffer M/R=%.2f/DB", fractions[i]),
                       db->response_seconds);
    table.AddRow({FormatFixed(fractions[i], 2),
                  StrFormat("%llu", (unsigned long long)mb->iterations),
                  StrFormat("%llu", (unsigned long long)db->iterations),
                  StrFormat("%.0f", mb->response_seconds.value()),
                  StrFormat("%.0f", db->response_seconds.value())});
  }
  table.Print();
  std::printf("Halved chunks double the iteration count — and every iteration\n");
  std::printf("re-scans R, which is what hurts at small M.\n");
}

void AblationPositioningModel(BenchRecorder& recorder) {
  std::printf("\n--- Ablation 2: disk positioning model on/off ---\n");
  std::printf("CDT-GH at small memory: tiny per-bucket write buffers degrade to\n");
  std::printf("random I/O only if the model charges positioning per request.\n\n");
  exec::TableReport table({"M/|R|", "with positioning (s)", "transfer-only (s)"});
  const std::vector<double> fractions = {0.05, 0.1, 0.3};
  struct Pair {
    Result<join::JoinStats> with;
    Result<join::JoinStats> without;
  };
  std::vector<Pair> results = exec::ParallelSweep(
      fractions,
      [](double f) {
        auto m = static_cast<ByteCount>(f * 18 * static_cast<double>(kMB.value()));
        exec::MachineConfig real = exec::MachineConfig::PaperTestbed(50 * kMB, m);
        exec::MachineConfig ideal = real;
        ideal.disk_model = disk::DiskModel::Ideal(real.disk_model.transfer_rate_bps);
        exec::WorkloadConfig workload;
        workload.r_bytes = 18 * kMB;
        workload.s_bytes = 1000 * kMB;
        workload.phantom = true;
        return Pair{exec::RunJoinExperiment(real, workload, JoinMethodId::kCdtGh),
                    exec::RunJoinExperiment(ideal, workload, JoinMethodId::kCdtGh)};
      },
      recorder.threads());
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const auto& with = results[i].with;
    const auto& without = results[i].without;
    TERTIO_CHECK(with.ok() && without.ok(), "ablation runs failed");
    recorder.RecordSim(StrFormat("positioning M/R=%.2f/on", fractions[i]),
                       with->response_seconds);
    recorder.RecordSim(StrFormat("positioning M/R=%.2f/off", fractions[i]),
                       without->response_seconds);
    table.AddRow({FormatFixed(fractions[i], 2), StrFormat("%.0f", with->response_seconds.value()),
                  StrFormat("%.0f", without->response_seconds.value())});
  }
  table.Print();
  std::printf("The small-M uptick of Figures 8-9 exists only with positioning.\n");
}

void AblationWriteBuffer(BenchRecorder& recorder) {
  std::printf("\n--- Ablation 3: hash write-buffer size w ---\n");
  std::printf("DT-GH with the write buffer forced to w blocks per bucket\n");
  std::printf("(memory permitting): bigger flushes, fewer seeks.\n\n");
  exec::TableReport table({"w (blocks)", "disk requests", "response (s)"});
  const std::vector<BlockCount> widths = {1, 2, 4, 8};
  std::vector<Result<join::JoinStats>> results = exec::ParallelSweep(
      widths,
      [](BlockCount w) -> Result<join::JoinStats> {
        exec::MachineConfig machine = exec::MachineConfig::PaperTestbed(50 * kMB, 9 * kMB);
        exec::WorkloadConfig workload;
        workload.r_bytes = 18 * kMB;
        workload.s_bytes = 1000 * kMB;
        workload.phantom = true;
        exec::Machine m(machine);
        auto prepared = exec::PrepareWorkload(&m, workload);
        TERTIO_CHECK(prepared.ok(), "setup failed");
        join::JoinSpec spec;
        spec.r = &prepared->r;
        spec.s = &prepared->s;
        spec.options.preferred_write_buffer = w;
        auto method = join::CreateJoinMethod(JoinMethodId::kDtGh);
        join::JoinContext ctx = m.context();
        return method->Execute(spec, ctx);
      },
      recorder.threads());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const auto& stats = results[i];
    TERTIO_CHECK(stats.ok(), stats.status().ToString());
    recorder.RecordSim(StrFormat("write-buffer w=%llu", (unsigned long long)widths[i].value()),
                       stats->response_seconds);
    table.AddRow({StrFormat("%llu", (unsigned long long)widths[i].value()),
                  StrFormat("%llu", (unsigned long long)stats->disk_requests),
                  StrFormat("%.0f", stats->response_seconds.value())});
  }
  table.Print();
}

void AblationPhantomVsReal(BenchRecorder& recorder) {
  std::printf("\n--- Ablation 4: timing-only (phantom) vs full-data execution ---\n");
  std::printf("Same geometry run both ways; virtual times should agree closely\n");
  std::printf("(full-data re-encodes tuples into blocks, so counts shift a little).\n\n");
  exec::TableReport table({"method", "phantom (s)", "full-data (s)", "delta"});
  const std::vector<JoinMethodId> methods = {JoinMethodId::kDtNb, JoinMethodId::kCdtGh,
                                             JoinMethodId::kCttGh};
  struct Pair {
    Result<join::JoinStats> phantom;
    Result<join::JoinStats> real;
  };
  std::vector<Pair> results = exec::ParallelSweep(
      methods,
      [](JoinMethodId method) {
        exec::MachineConfig machine;
        machine.block_bytes = 8 * kKiB;
        machine.disk_space_bytes = 24 * kMB;
        machine.memory_bytes = 4 * kMB;
        exec::WorkloadConfig workload;
        workload.r_bytes = 8 * kMB;
        workload.s_bytes = 60 * kMB;
        workload.phantom = true;
        auto phantom = exec::RunJoinExperiment(machine, workload, method);
        workload.phantom = false;
        auto real = exec::RunJoinExperiment(machine, workload, method);
        return Pair{std::move(phantom), std::move(real)};
      },
      recorder.threads());
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const auto& phantom = results[i].phantom;
    const auto& real = results[i].real;
    TERTIO_CHECK(phantom.ok() && real.ok(), "ablation runs failed");
    const std::string name(JoinMethodName(methods[i]));
    recorder.RecordSim(StrFormat("phantom/%s", name.c_str()), phantom->response_seconds);
    recorder.RecordSim(StrFormat("full-data/%s", name.c_str()), real->response_seconds);
    double delta = real->response_seconds / phantom->response_seconds - 1.0;
    table.AddRow({std::string(JoinMethodName(methods[i])),
                  StrFormat("%.1f", phantom->response_seconds.value()),
                  StrFormat("%.1f", real->response_seconds.value()), StrFormat("%+.1f%%", 100 * delta)});
  }
  table.Print();
}

int Run(int argc, char** argv) {
  BenchRecorder recorder("ablations", argc, argv);
  Banner("Ablations — the design choices behind the reproduction",
         "DESIGN.md section 5", "each choice changes the outcome it claims to");
  AblationDoubleBuffering(recorder);
  AblationPositioningModel(recorder);
  AblationWriteBuffer(recorder);
  AblationPhantomVsReal(recorder);
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Run(argc, argv); }
