/// \file bench_fig11_fast_tape.cc
/// Reproduces Figure 11: relative join overhead with a faster tape drive
/// (50%-compressible data, hitting the 2:1 compression cap). The optimum
/// shrinks while disk-bound responses stay put — overhead rises (paper:
/// CDT-GH to ~70%, DT-NB minimum to ~80%).

#include "bench/overhead_common.h"

int main(int argc, char** argv) {
  return tertio::bench::RunOverheadFigure(
      "fig11_fast_tape",
      "Figure 11 — relative join overhead, faster tape (50% compressible)",
      "Section 9, Figure 11",
      "overheads rise vs Figure 9; concurrent methods rise the most",
      /*compressibility=*/0.5, argc, argv);
}
