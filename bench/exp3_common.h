#pragma once

/// \file exp3_common.h
/// Shared sweep for Figures 6–11 (Experiment 3: Large S, Small R).
///
/// |S| = 1,000 MB, |R| = 18 MB, D = 50 MB; memory varies from a small
/// fraction of |R| up to |R|. The five disk–tape methods are compared; the
/// optimum join time is the bare tape transfer of S. Figures 9–11 repeat
/// the sweep at different data compressibilities (0.25 / 0 / 0.5), which
/// changes the effective tape speed and therefore the optimum.

#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"

namespace tertio::bench {

inline constexpr ByteCount kExp3R = 18 * kMB;
inline constexpr ByteCount kExp3S = 1000 * kMB;
inline constexpr ByteCount kExp3D = 50 * kMB;

inline const std::vector<double>& Exp3MemoryFractions() {
  static const std::vector<double> kFractions = {0.05, 0.1, 0.15, 0.2, 0.3, 0.4,
                                                 0.5,  0.6, 0.7,  0.8, 0.9, 1.0};
  return kFractions;
}

inline const std::vector<JoinMethodId>& Exp3Methods() {
  static const std::vector<JoinMethodId> kMethods = {
      JoinMethodId::kDtNb, JoinMethodId::kCdtNbMb, JoinMethodId::kCdtNbDb,
      JoinMethodId::kDtGh, JoinMethodId::kCdtGh};
  return kMethods;
}

inline std::vector<std::string> Exp3Labels(const char* suffix) {
  std::vector<std::string> labels;
  for (JoinMethodId method : Exp3Methods()) {
    labels.push_back(std::string(JoinMethodName(method)) + suffix);
  }
  return labels;
}

/// One full sweep: stats per (fraction, method); errored entries are
/// infeasible points.
struct Exp3Sweep {
  std::vector<double> fractions;
  // [point][method]
  std::vector<std::vector<Result<join::JoinStats>>> runs;
  /// Bare tape transfer time of S — the optimum join time of Section 9.
  SimSeconds optimum_seconds = 0.0;
};

/// Runs the (fraction x method) grid across `threads` workers (0 = all
/// hardware threads, 1 = the seed's serial path). Every point builds a
/// fresh Machine, so simulated times are independent of the thread count.
/// `scale` multiplies |R|, |S|, D and memory uniformly — scale 100 is the
/// TB-class timing-only sweep (100 GB S), feasible in host seconds only
/// because the coalesced closed-form commit makes chunk count nearly free.
inline Exp3Sweep RunExp3Sweep(double compressibility, int threads = 1,
                              std::uint64_t scale = 1) {
  Exp3Sweep sweep;
  sweep.fractions = Exp3MemoryFractions();
  sweep.optimum_seconds =
      tape::TapeDriveModel::DLT4000().TransferSeconds(scale * kExp3S, compressibility);

  struct Point {
    double fraction;
    JoinMethodId method;
  };
  std::vector<Point> points;
  for (double f : sweep.fractions) {
    for (JoinMethodId method : Exp3Methods()) {
      points.push_back({f, method});
    }
  }
  std::vector<Result<join::JoinStats>> results = exec::ParallelSweep(
      points,
      [&](const Point& p) {
        auto memory = static_cast<ByteCount>(p.fraction * static_cast<double>(scale * kExp3R.value()));
        return RunPaperJoin(scale * kExp3S, scale * kExp3R, scale * kExp3D, memory, p.method,
                            compressibility);
      },
      threads);
  const std::size_t methods = Exp3Methods().size();
  for (std::size_t i = 0; i < sweep.fractions.size(); ++i) {
    sweep.runs.emplace_back(
        std::make_move_iterator(results.begin() + static_cast<std::ptrdiff_t>(i * methods)),
        std::make_move_iterator(results.begin() + static_cast<std::ptrdiff_t>((i + 1) * methods)));
  }
  return sweep;
}

/// Adds every run of the sweep to a bench record, labelled "M/R=f/<method>".
inline void RecordExp3Sweep(BenchRecorder& recorder, const Exp3Sweep& sweep) {
  for (std::size_t i = 0; i < sweep.fractions.size(); ++i) {
    for (std::size_t m = 0; m < sweep.runs[i].size(); ++m) {
      recorder.RecordJoin(StrFormat("M/R=%.2f/%s", sweep.fractions[i],
                                    std::string(JoinMethodName(Exp3Methods()[m])).c_str()),
                          sweep.runs[i][m]);
    }
  }
}

/// Prints one metric of the sweep as a figure series.
template <typename MetricFn>
void PrintExp3Series(const Exp3Sweep& sweep, const char* x_label, const char* suffix,
                     MetricFn metric, int precision = 0,
                     std::vector<std::string> extra_labels = {},
                     std::vector<double> extra_values = {}) {
  std::vector<std::string> labels = Exp3Labels(suffix);
  labels.insert(labels.end(), extra_labels.begin(), extra_labels.end());
  exec::SeriesReport series(x_label, labels);
  for (size_t i = 0; i < sweep.fractions.size(); ++i) {
    std::vector<double> values;
    for (const auto& run : sweep.runs[i]) {
      values.push_back(run.ok() ? metric(run.value()) : std::nan(""));
    }
    values.insert(values.end(), extra_values.begin(), extra_values.end());
    series.AddPoint(sweep.fractions[i], values);
  }
  series.Print(precision);
}

}  // namespace tertio::bench
