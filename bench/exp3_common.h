#pragma once

/// \file exp3_common.h
/// Shared sweep for Figures 6–11 (Experiment 3: Large S, Small R).
///
/// |S| = 1,000 MB, |R| = 18 MB, D = 50 MB; memory varies from a small
/// fraction of |R| up to |R|. The five disk–tape methods are compared; the
/// optimum join time is the bare tape transfer of S. Figures 9–11 repeat
/// the sweep at different data compressibilities (0.25 / 0 / 0.5), which
/// changes the effective tape speed and therefore the optimum.

#include <cmath>
#include <vector>

#include "bench/bench_util.h"

namespace tertio::bench {

inline constexpr ByteCount kExp3R = 18 * kMB;
inline constexpr ByteCount kExp3S = 1000 * kMB;
inline constexpr ByteCount kExp3D = 50 * kMB;

inline const std::vector<double>& Exp3MemoryFractions() {
  static const std::vector<double> kFractions = {0.05, 0.1, 0.15, 0.2, 0.3, 0.4,
                                                 0.5,  0.6, 0.7,  0.8, 0.9, 1.0};
  return kFractions;
}

inline const std::vector<JoinMethodId>& Exp3Methods() {
  static const std::vector<JoinMethodId> kMethods = {
      JoinMethodId::kDtNb, JoinMethodId::kCdtNbMb, JoinMethodId::kCdtNbDb,
      JoinMethodId::kDtGh, JoinMethodId::kCdtGh};
  return kMethods;
}

inline std::vector<std::string> Exp3Labels(const char* suffix) {
  std::vector<std::string> labels;
  for (JoinMethodId method : Exp3Methods()) {
    labels.push_back(std::string(JoinMethodName(method)) + suffix);
  }
  return labels;
}

/// One full sweep: stats per (fraction, method); errored entries are
/// infeasible points.
struct Exp3Sweep {
  std::vector<double> fractions;
  // [point][method]
  std::vector<std::vector<Result<join::JoinStats>>> runs;
  /// Bare tape transfer time of S — the optimum join time of Section 9.
  SimSeconds optimum_seconds = 0.0;
};

inline Exp3Sweep RunExp3Sweep(double compressibility) {
  Exp3Sweep sweep;
  sweep.fractions = Exp3MemoryFractions();
  sweep.optimum_seconds =
      tape::TapeDriveModel::DLT4000().TransferSeconds(kExp3S, compressibility);
  for (double f : sweep.fractions) {
    auto memory = static_cast<ByteCount>(f * kExp3R);
    std::vector<Result<join::JoinStats>> row;
    for (JoinMethodId method : Exp3Methods()) {
      row.push_back(RunPaperJoin(kExp3S, kExp3R, kExp3D, memory, method, compressibility));
    }
    sweep.runs.push_back(std::move(row));
  }
  return sweep;
}

/// Prints one metric of the sweep as a figure series.
template <typename MetricFn>
void PrintExp3Series(const Exp3Sweep& sweep, const char* x_label, const char* suffix,
                     MetricFn metric, int precision = 0,
                     std::vector<std::string> extra_labels = {},
                     std::vector<double> extra_values = {}) {
  std::vector<std::string> labels = Exp3Labels(suffix);
  labels.insert(labels.end(), extra_labels.begin(), extra_labels.end());
  exec::SeriesReport series(x_label, labels);
  for (size_t i = 0; i < sweep.fractions.size(); ++i) {
    std::vector<double> values;
    for (const auto& run : sweep.runs[i]) {
      values.push_back(run.ok() ? metric(run.value()) : std::nan(""));
    }
    values.insert(values.end(), extra_values.begin(), extra_values.end());
    series.AddPoint(sweep.fractions[i], values);
  }
  series.Print(precision);
}

}  // namespace tertio::bench
