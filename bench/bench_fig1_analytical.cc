/// \file bench_fig1_analytical.cc
/// Reproduces Figure 1: expected response time (relative to the tape read
/// time of S) for small |R| — |R|/M in [1, 5]. NB-method response depends on
/// memory (iteration count); hashing methods are flat here because their
/// iteration count depends on disk space.

#include "bench/analytical_common.h"

int main(int argc, char** argv) {
  tertio::bench::Banner("Figure 1 — analytical response, small |R| (|R|/M in [1,5])",
                        "Section 5.3, Figure 1",
                        "NB methods rise with |R|/M; hashing methods nearly constant");
  return tertio::bench::RunAnalyticalSweep(
      "fig1_analytical", {1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0}, argc, argv);
}
