/// \file bench_fig6_disk_requirement.cc
/// Reproduces Figure 6 (disk space requirement vs memory size, Experiment 3)
/// and prints Table 2 (resource requirements of all seven methods).
///
/// DT-NB and CDT-NB/MB always need exactly |R| of disk; CDT-NB/DB needs
/// |R| + |Si| (grows with memory); the Grace methods use all of D.

#include "bench/exp3_common.h"

namespace tertio::bench {
namespace {

int Run(int argc, char** argv) {
  BenchRecorder recorder("fig6_disk_requirement", argc, argv);
  Banner("Figure 6 — disk space requirement vs memory size (Experiment 3)",
         "Section 9, Figure 6 + Table 2",
         "NB: |R| flat; CDT-NB/DB grows with M; DT-GH/CDT-GH fixed at D");
  exec::SeriesReport series("M/|R|", Exp3Labels(" (MB)"));
  for (double f : Exp3MemoryFractions()) {
    auto memory_bytes = static_cast<ByteCount>(f * static_cast<double>(kExp3R.value()));
    std::vector<double> values;
    for (JoinMethodId method : Exp3Methods()) {
      cost::CostParams params;
      params.r_blocks = BytesToBlocks(kExp3R, kDefaultBlockBytes);
      params.s_blocks = BytesToBlocks(kExp3S, kDefaultBlockBytes);
      params.memory_blocks = BytesToBlocks(memory_bytes, kDefaultBlockBytes);
      params.disk_blocks = BytesToBlocks(kExp3D, kDefaultBlockBytes);
      auto estimate = cost::Estimate(method, params);
      values.push_back(
          estimate.ok()
              ? static_cast<double>(
                    BlocksToBytes(estimate->disk_space_blocks, kDefaultBlockBytes).value()) /
                    static_cast<double>(kMB.value())
              : std::nan(""));
    }
    series.AddPoint(f, values);
  }
  series.Print(1);

  std::printf("\nTable 2 — resource requirements (at M = 0.5|R|):\n");
  exec::TableReport table({"method", "M (blocks)", "D (blocks)", "T_R", "T_S"});
  exec::MachineConfig config = exec::MachineConfig::PaperTestbed(kExp3D, kExp3R / 2);
  exec::Machine machine(config);
  exec::WorkloadConfig workload;
  workload.r_bytes = kExp3R;
  workload.s_bytes = kExp3S;
  workload.phantom = true;
  auto prepared = exec::PrepareWorkload(&machine, workload);
  TERTIO_CHECK(prepared.ok(), "workload setup failed");
  join::JoinSpec spec;
  spec.r = &prepared->r;
  spec.s = &prepared->s;
  join::JoinContext ctx = machine.context();
  for (JoinMethodId method : kAllJoinMethods) {
    auto executor = join::CreateJoinMethod(method);
    auto req = executor->Requirements(spec, ctx);
    if (!req.ok()) {
      table.AddRow({std::string(JoinMethodName(method)), "infeasible", "-", "-", "-"});
      continue;
    }
    table.AddRow({std::string(JoinMethodName(method)),
                  StrFormat("%llu", (unsigned long long)req->memory_blocks.value()),
                  StrFormat("%llu", (unsigned long long)req->disk_blocks.value()),
                  StrFormat("%llu", (unsigned long long)req->tape_scratch_r_blocks.value()),
                  StrFormat("%llu", (unsigned long long)req->tape_scratch_s_blocks.value())});
  }
  table.Print();
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Run(argc, argv); }
