/// \file bench_fig5_disk_space.cc
/// Reproduces Figure 5 (Experiment 2: Large S, Medium R): response time of
/// CDT-GH and CTT-GH as disk space D shrinks from 3|R| to 0.5|R|.
///
/// |S| = 1,000 MB, |R| = 18 MB, M = 0.1|R|. As D approaches |R|, CDT-GH is
/// left with almost no S buffer (at D = 20 MB it buffers S in 2 MB pieces
/// and reads R 500 times) while CTT-GH keeps all of D for S (50 R-reads at
/// D = 20 MB) — so the tape-tape method wins although R would fit on disk.

#include <cmath>

#include "bench/bench_util.h"

namespace tertio::bench {
namespace {

int Run(int argc, char** argv) {
  BenchRecorder recorder("fig5_disk_space", argc, argv);
  Banner("Figure 5 — impact of disk space on CDT-GH vs CTT-GH (Experiment 2)",
         "Section 8, Figure 5",
         "CDT-GH explodes as D -> |R| (500 R-scans at D=20MB); CTT-GH flat (50)");
  constexpr ByteCount kR = 18 * kMB;
  constexpr ByteCount kS = 1000 * kMB;
  const ByteCount memory = static_cast<ByteCount>(0.1 * static_cast<double>(kR.value()));
  const std::vector<double> d_over_r_values = {3.0,  2.5,  2.0,  1.75, 1.5, 1.35, 1.25,
                                               1.15, 1.10, 1.05, 1.0,  0.75, 0.5};
  const std::vector<JoinMethodId> methods = {JoinMethodId::kCdtGh, JoinMethodId::kCttGh};

  struct Point {
    ByteCount disk;
    JoinMethodId method;
  };
  std::vector<Point> points;
  for (double d_over_r : d_over_r_values) {
    for (JoinMethodId method : methods) {
      points.push_back({static_cast<ByteCount>(d_over_r * static_cast<double>(kR.value())), method});
    }
  }
  std::vector<Result<join::JoinStats>> results = exec::ParallelSweep(
      points,
      [&](const Point& point) { return RunPaperJoin(kS, kR, point.disk, memory, point.method); },
      recorder.threads());

  exec::SeriesReport series("D (MB)", {"CDT-GH (s)", "CTT-GH (s)", "CDT-GH R-scans",
                                       "CTT-GH R-scans"});
  for (std::size_t i = 0; i < d_over_r_values.size(); ++i) {
    std::vector<double> seconds, scans;
    for (std::size_t m = 0; m < methods.size(); ++m) {
      const Result<join::JoinStats>& stats = results[i * methods.size() + m];
      seconds.push_back(stats.ok() ? stats->response_seconds.value() : std::nan(""));
      scans.push_back(stats.ok() ? static_cast<double>(stats->r_scans) : std::nan(""));
      recorder.RecordJoin(StrFormat("D/R=%.2f/%s", d_over_r_values[i],
                                    std::string(JoinMethodName(methods[m])).c_str()),
                          stats);
    }
    series.AddPoint(static_cast<double>(points[i * methods.size()].disk.value()) / kMB,
                    {seconds[0], seconds[1], scans[0], scans[1]});
  }
  series.Print(0);
  std::printf("\n'-' marks infeasible points (CDT-GH requires D > |R| = 18 MB).\n");
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Run(argc, argv); }
