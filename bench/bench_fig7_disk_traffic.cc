/// \file bench_fig7_disk_traffic.cc
/// Reproduces Figure 7 (disk I/O traffic vs memory size, Experiment 3).
///
/// NB methods' traffic explodes at small memory (R re-read once per tiny S
/// chunk; CDT-NB/MB doubles the iteration count); the Grace methods stay
/// near-constant around 3,000 MB regardless of memory — the storage-space
/// vs disk-traffic trade the paper highlights.

#include "bench/exp3_common.h"

namespace tertio::bench {
namespace {

int Run(int argc, char** argv) {
  BenchRecorder recorder("fig7_disk_traffic", argc, argv);
  Banner("Figure 7 — disk I/O traffic vs memory size (Experiment 3)",
         "Section 9, Figure 7",
         "NB traffic explodes at small M; GH constant ~3,000 MB");
  Exp3Sweep sweep = RunExp3Sweep(kBaseCompressibility, recorder.threads());
  PrintExp3Series(sweep, "M/|R|", " (MB)", [](const join::JoinStats& stats) {
    return static_cast<double>(BlocksToBytes(stats.disk_traffic_blocks(), kDefaultBlockBytes).value()) /
           kMB;
  });
  RecordExp3Sweep(recorder, sweep);
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Run(argc, argv); }
