/// \file bench_fault_degradation.cc
/// Response-time degradation under device faults: all seven join methods
/// swept over the per-block transient read error rate (tape and disk), with
/// a proportional latent-bad-block rate riding along.
///
/// Not a paper figure — the paper's testbed is fault-free — but the natural
/// follow-on question for hour-scale tertiary joins: how gracefully does
/// each method absorb retries and remaps? Expected: all methods degrade
/// smoothly (recovery is charged at the device layer, so tape-dominant
/// methods pay in proportion to tape traffic); no method fails until the
/// retry bound is exhausted, which at these rates is vanishingly rare.

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace tertio::bench {
namespace {

// A workload small enough to sweep 7 methods x 6 rates in seconds of
// wall-clock yet feasible for every method at D = 120 MB, M = 16 MB.
constexpr ByteCount kRBytes = 80 * kMB;
constexpr ByteCount kSBytes = 800 * kMB;
constexpr ByteCount kDiskBytes = 120 * kMB;
constexpr ByteCount kMemoryBytes = 16 * kMB;

constexpr JoinMethodId kMethods[] = {
    JoinMethodId::kDtNb,   JoinMethodId::kCdtNbMb, JoinMethodId::kCdtNbDb,
    JoinMethodId::kDtGh,   JoinMethodId::kCdtGh,   JoinMethodId::kCttGh,
    JoinMethodId::kTtGh,
};

Result<join::JoinStats> RunWithFaults(JoinMethodId method, double error_rate) {
  exec::MachineConfig machine = exec::MachineConfig::PaperTestbed(kDiskBytes, kMemoryBytes);
  machine.faults.seed = 7;
  machine.faults.tape.transient_read_error_rate = error_rate;
  machine.faults.disk.transient_read_error_rate = error_rate;
  // Media defects are rarer than transient glitches; keep them proportional.
  machine.faults.tape.bad_block_rate = error_rate / 10.0;
  machine.faults.disk.bad_block_rate = error_rate / 10.0;
  exec::WorkloadConfig workload;
  workload.r_bytes = kRBytes;
  workload.s_bytes = kSBytes;
  workload.compressibility = kBaseCompressibility;
  workload.phantom = true;
  return exec::RunJoinExperiment(machine, workload, method);
}

int Run(int argc, char** argv) {
  BenchRecorder recorder("fault_degradation", argc, argv);
  Banner("Fault degradation — response time vs per-block error rate (all methods)",
         "fault-model extension (not a paper figure)",
         "smooth degradation; recovery cost proportional to device traffic");
  std::vector<std::string> headers{"error rate"};
  for (JoinMethodId method : kMethods) headers.emplace_back(JoinMethodName(method));
  exec::TableReport response(headers);
  exec::TableReport recovery(headers);

  const std::vector<double> rates = {0.0, 1e-5, 1e-4, 3e-4, 1e-3, 3e-3};
  constexpr std::size_t kMethodCount = sizeof(kMethods) / sizeof(kMethods[0]);
  struct Point {
    double rate;
    JoinMethodId method;
  };
  std::vector<Point> points;
  for (double rate : rates) {
    for (JoinMethodId method : kMethods) points.push_back({rate, method});
  }
  std::vector<Result<join::JoinStats>> results = exec::ParallelSweep(
      points, [](const Point& point) { return RunWithFaults(point.method, point.rate); },
      recorder.threads());

  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::vector<std::string> seconds{StrFormat("%g", rates[r])};
    std::vector<std::string> recovered{StrFormat("%g", rates[r])};
    for (std::size_t m = 0; m < kMethodCount; ++m) {
      const Result<join::JoinStats>& stats = results[r * kMethodCount + m];
      seconds.push_back(stats.ok() ? StrFormat("%.0f", stats->response_seconds.value())
                                   : std::string("-"));
      recovered.push_back(stats.ok() ? StrFormat("%.1f", stats->recovery_seconds.value())
                                     : std::string("-"));
      recorder.RecordJoin(StrFormat("rate=%g/%s", rates[r],
                                    std::string(JoinMethodName(kMethods[m])).c_str()),
                          stats);
    }
    response.AddRow(std::move(seconds));
    recovery.AddRow(std::move(recovered));
  }
  std::printf("\nResponse time (s) vs per-block error rate:\n");
  response.Print();
  std::printf("\nRecovery time (s) vs per-block error rate:\n");
  recovery.Print();
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Run(argc, argv); }
