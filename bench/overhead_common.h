#pragma once

/// \file overhead_common.h
/// Shared driver for Figures 9–11: relative join overhead
/// (response/optimum - 1, in %) vs memory size at a given compressibility.

#include "bench/exp3_common.h"

namespace tertio::bench {

inline int RunOverheadFigure(const char* bench_name, const char* title, const char* paper_ref,
                             const char* expectation, double compressibility, int argc,
                             char** argv) {
  BenchRecorder recorder(bench_name, argc, argv);
  Banner(title, paper_ref, expectation);
  Exp3Sweep sweep = RunExp3Sweep(compressibility, recorder.threads());
  std::printf("Effective tape rate: %.2f MB/s; optimum join time: %.0f s\n\n",
              (tape::TapeDriveModel::DLT4000().EffectiveRate(compressibility) / 1e6).value(),
              sweep.optimum_seconds.value());
  PrintExp3Series(sweep, "M/|R|", " (%)", [&](const join::JoinStats& stats) {
    return 100.0 * (stats.response_seconds / sweep.optimum_seconds - 1.0);
  });
  RecordExp3Sweep(recorder, sweep);
  return recorder.Finish();
}

}  // namespace tertio::bench
