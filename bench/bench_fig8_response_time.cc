/// \file bench_fig8_response_time.cc
/// Reproduces Figure 8 (response time vs memory size, Experiment 3, base
/// tape speed: 25%-compressible data).
///
/// Expected: NB methods blow up at small M; CDT-GH flat and dominant in the
/// small/medium range; CDT-NB/MB approaches the optimum at large M and
/// crosses CDT-GH around M = 0.7|R|; GH shows a small uptick at the very
/// smallest M (bucket writes degrade to random I/O).

#include "bench/exp3_common.h"

namespace tertio::bench {
namespace {

int Run(int argc, char** argv) {
  BenchRecorder recorder("fig8_response_time", argc, argv);
  Banner("Figure 8 — response time vs memory size (Experiment 3, base tape speed)",
         "Section 9, Figure 8",
         "NB explodes at small M; CDT-GH flat; crossover near M = 0.7|R|");
  Exp3Sweep sweep = RunExp3Sweep(kBaseCompressibility, recorder.threads());
  PrintExp3Series(
      sweep, "M/|R|", " (s)",
      [](const join::JoinStats& stats) { return stats.response_seconds; }, 0,
      {"Optimum (s)"}, {sweep.optimum_seconds});
  RecordExp3Sweep(recorder, sweep);
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Run(argc, argv); }
