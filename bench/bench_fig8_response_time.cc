/// \file bench_fig8_response_time.cc
/// Reproduces Figure 8 (response time vs memory size, Experiment 3, base
/// tape speed: 25%-compressible data).
///
/// Expected: NB methods blow up at small M; CDT-GH flat and dominant in the
/// small/medium range; CDT-NB/MB approaches the optimum at large M and
/// crosses CDT-GH around M = 0.7|R|; GH shows a small uptick at the very
/// smallest M (bucket writes degrade to random I/O).
///
/// --scale=N multiplies |R|, |S|, D and memory uniformly. --scale=100 is
/// the TB-class timing-only sweep (100 GB S, 1.8 GB R): chunk counts grow
/// 100x but host time barely moves, because the coalesced closed-form
/// commit (DESIGN.md 5.1) is O(1) per steady-state window. A scaled run
/// also spot-checks a (memory, method) grid for bit-identity between the
/// closed-form commit and the O(chunks) replay it replaces.

#include <cstdlib>
#include <cstring>

#include "bench/exp3_common.h"

namespace tertio::bench {
namespace {

/// Parses --scale=N from argv (default 1).
std::uint64_t ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      const long long value = std::atoll(argv[i] + 8);
      TERTIO_CHECK(value >= 1, "--scale must be >= 1");
      return static_cast<std::uint64_t>(value);
    }
  }
  return 1;
}

/// Re-runs a grid of sweep points through both coalesced commit paths and
/// checks every stat of the runs for bit-identity — the closed-form jump
/// must land exactly where the O(chunks) replay lands, even across the
/// binade crossings a TB-scale busy-seconds accumulation walks through.
void SpotCheckCommitEquivalence(std::uint64_t scale) {
  const double kFractions[] = {0.1, 0.5, 1.0};
  int points = 0;
  for (double fraction : kFractions) {
    for (JoinMethodId method : Exp3Methods()) {
      auto memory = static_cast<ByteCount>(fraction * static_cast<double>(scale * kExp3R.value()));
      Result<join::JoinStats> closed =
          RunPaperJoin(scale * kExp3S, scale * kExp3R, scale * kExp3D, memory, method,
                       kBaseCompressibility, /*closed_form_commit=*/true);
      Result<join::JoinStats> replay =
          RunPaperJoin(scale * kExp3S, scale * kExp3R, scale * kExp3D, memory, method,
                       kBaseCompressibility, /*closed_form_commit=*/false);
      TERTIO_CHECK(closed.ok() == replay.ok(),
                   "commit paths disagree on feasibility at a spot-check point");
      if (!closed.ok()) continue;
      TERTIO_CHECK(closed->response_seconds == replay->response_seconds &&
                       closed->step1_seconds == replay->step1_seconds &&
                       closed->step2_seconds == replay->step2_seconds,
                   "closed-form commit diverged from O(chunks) replay in simulated time");
      TERTIO_CHECK(closed->disk_blocks_read == replay->disk_blocks_read &&
                       closed->disk_blocks_written == replay->disk_blocks_written &&
                       closed->tape_blocks_read == replay->tape_blocks_read &&
                       closed->tape_blocks_written == replay->tape_blocks_written &&
                       closed->disk_requests == replay->disk_requests,
                   "closed-form commit diverged from O(chunks) replay in block accounting");
      TERTIO_CHECK(closed->peak_memory_blocks == replay->peak_memory_blocks &&
                       closed->peak_disk_blocks == replay->peak_disk_blocks &&
                       closed->r_scans == replay->r_scans &&
                       closed->iterations == replay->iterations,
                   "closed-form commit diverged from O(chunks) replay in run shape");
      ++points;
    }
  }
  std::printf("Commit-path spot-check: %d feasible grid points bit-identical "
              "(closed-form vs O(chunks) replay)\n",
              points);
}

int Run(int argc, char** argv) {
  const std::uint64_t scale = ParseScale(argc, argv);
  BenchRecorder recorder(scale == 1 ? "fig8_response_time"
                                    : StrFormat("fig8_response_time_x%llu",
                                                (unsigned long long)scale),
                         argc, argv);
  Banner("Figure 8 — response time vs memory size (Experiment 3, base tape speed)",
         "Section 9, Figure 8",
         "NB explodes at small M; CDT-GH flat; crossover near M = 0.7|R|");
  if (scale != 1) {
    std::printf("Scaled sweep: %llux paper size (|S| = %llu MB, |R| = %llu MB, "
                "D = %llu MB), timing-only\n",
                (unsigned long long)scale, (unsigned long long)(scale * kExp3S / kMB),
                (unsigned long long)(scale * kExp3R / kMB),
                (unsigned long long)(scale * kExp3D / kMB));
  }
  Exp3Sweep sweep = RunExp3Sweep(kBaseCompressibility, recorder.threads(), scale);
  PrintExp3Series(
      sweep, "M/|R|", " (s)",
      [](const join::JoinStats& stats) { return stats.response_seconds.value(); }, 0,
      {"Optimum (s)"}, {sweep.optimum_seconds.value()});
  RecordExp3Sweep(recorder, sweep);
  if (scale != 1) SpotCheckCommitEquivalence(scale);
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Run(argc, argv); }
