/// \file bench_table3_ctt_gh.cc
/// Reproduces Table 3: "Parameters and Execution Time of Concurrent
/// Tape-Tape Grace Hash Join" (Experiment 1: Large S, Large R).
///
/// Four joins with |S| from 1,000 to 10,000 MB, |R| = |S|/2 (Join IV:
/// 2,500 MB), D = |R|/5, M = 16 MB, two disks, two DLT-4000 drives.
/// The paper reports relative cost (response / bare read time) of 7.9,
/// 7.3, 6.9, 6.8 — decreasing with |S| as Step I amortizes.

#include "bench/bench_util.h"

namespace tertio::bench {
namespace {

struct Row {
  const char* name;
  std::uint64_t s_mb;
  std::uint64_t r_mb;
  std::uint64_t d_mb;
  double paper_rel_cost;
  double paper_read_s;
  double paper_step1_s;
  double paper_total_s;
};

constexpr Row kRows[] = {
    {"Join I", 1000, 500, 100, 7.9, 895, 2765, 7112},
    {"Join II", 2500, 1250, 250, 7.3, 2237, 5598, 16227},
    {"Join III", 5000, 2500, 500, 6.9, 4475, 10260, 30783},
    {"Join IV", 10000, 2500, 500, 6.8, 7468, 10260, 50565},
};

int Run(int argc, char** argv) {
  BenchRecorder recorder("table3_ctt_gh", argc, argv);
  Banner("Table 3 — CTT-GH at 1–10 GB (Experiment 1: Large S, Large R)",
         "Section 7, Table 3",
         "relative cost ~7-8, decreasing as |S| grows (setup amortized)");
  exec::TableReport table({"join", "|S| MB", "|R| MB", "D MB", "read S+R", "Step I",
                           "Steps I+II", "rel.cost", "paper rel.cost"});
  tape::TapeDriveModel drive = tape::TapeDriveModel::DLT4000();
  constexpr std::size_t kRowCount = sizeof(kRows) / sizeof(kRows[0]);
  std::vector<std::size_t> indices(kRowCount);
  for (std::size_t i = 0; i < kRowCount; ++i) indices[i] = i;
  std::vector<Result<join::JoinStats>> results = exec::ParallelSweep(
      indices,
      [&](std::size_t i) {
        const Row& row = kRows[i];
        return RunPaperJoin(row.s_mb * kMB, row.r_mb * kMB, row.d_mb * kMB, 16 * kMB,
                            JoinMethodId::kCttGh);
      },
      recorder.threads());
  for (std::size_t i = 0; i < kRowCount; ++i) {
    const Row& row = kRows[i];
    SimSeconds bare = BareReadSeconds(row.s_mb * kMB, row.r_mb * kMB, kBaseCompressibility, drive);
    const Result<join::JoinStats>& stats = results[i];
    if (!stats.ok()) {
      std::printf("%s failed: %s\n", row.name, stats.status().ToString().c_str());
      return 1;
    }
    recorder.RecordSim(row.name, stats->response_seconds);
    double rel_cost = stats->response_seconds / bare;
    table.AddRow({row.name, StrFormat("%llu", (unsigned long long)row.s_mb),
                  StrFormat("%llu", (unsigned long long)row.r_mb),
                  StrFormat("%llu", (unsigned long long)row.d_mb),
                  StrFormat("%.0f s", bare.value()), StrFormat("%.0f s", stats->step1_seconds.value()),
                  StrFormat("%.0f s", stats->response_seconds.value()), FormatFixed(rel_cost, 1),
                  FormatFixed(row.paper_rel_cost, 1)});
  }
  table.Print();
  std::printf(
      "\nPaper measured (seconds): read 895/2237/4475/7468, Step I 2765/5598/10260/10260,\n"
      "total 7112/16227/30783/50565. Absolute seconds differ with device calibration;\n"
      "the relative-cost column is the paper's headline comparison.\n");
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Run(argc, argv); }
