/// \file bench_fig3_analytical.cc
/// Reproduces Figure 3: expected relative response for large |R| — |R|/M in
/// [10, 150], far beyond both M and D. Only the tape-tape methods remain
/// feasible; CTT-GH scales gracefully while TT-GH pays for hashing S from
/// tape to tape.

#include "bench/analytical_common.h"

int main(int argc, char** argv) {
  tertio::bench::Banner("Figure 3 — analytical response, large |R| (|R|/M in [10,150])",
                        "Section 5.3, Figure 3",
                        "CTT-GH scales gracefully; disk-tape methods infeasible beyond D");
  return tertio::bench::RunAnalyticalSweep("fig3_analytical",
                                           {10, 30, 50, 70, 90, 110, 130, 150}, argc, argv);
}
