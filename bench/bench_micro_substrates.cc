/// \file bench_micro_substrates.cc
/// google-benchmark microbenchmarks of the substrate hot paths: block codec,
/// key hashing, hash partitioning, the disk allocator, resource scheduling,
/// and the join table build/probe paths (flat open-addressing table vs the
/// seed's multimap, kept as LegacyMultimapJoinTable for comparison). These
/// bound how fast paper-scale simulations run.
///
/// After the google-benchmark run, main() times a fixed build+probe workload
/// on both table substrates and records tuples/sec plus the flat-vs-multimap
/// speedup into BENCH_joins.json.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "disk/allocator.h"
#include "disk/striped_group.h"
#include "hash/disk_partitioner.h"
#include "hash/hasher.h"
#include "join/flat_table.h"
#include "join/join_output.h"
#include "join/legacy_table.h"
#include "relation/block.h"
#include "relation/generator.h"
#include "relation/tuple.h"
#include "sim/pipeline.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "tape/tape_drive.h"
#include "tape/tape_volume.h"

namespace tertio {
namespace {

constexpr ByteCount kBlock = 8 * kKiB;

/// Materialized build/probe workload for the join-table benches: R is
/// sequential-unique (the canonical build side), S draws foreign keys over
/// R's domain, so every probe tuple matches exactly one build tuple.
///
/// Records are narrow (16 bytes) and the table is far larger than L2, so
/// the measurement isolates the table substrate — slot placement and the
/// dependent cache miss per tuple — rather than record decoding.
struct TableWorkload {
  rel::Schema schema;
  std::uint64_t build_tuples = 0;
  std::uint64_t probe_tuples = 0;
  std::vector<BlockPayload> build_blocks;
  std::vector<BlockPayload> probe_blocks;
};

std::vector<BlockPayload> ReadAll(tape::TapeVolume* tape) {
  std::vector<BlockPayload> blocks;
  for (BlockIndex i = 0; i < tape->size_blocks(); ++i) {
    blocks.push_back(tape->ReadBlock(i).value());
  }
  return blocks;
}

const TableWorkload& JoinTableWorkload() {
  static const TableWorkload workload = [] {
    TableWorkload w;
    w.build_tuples = 1u << 20;
    w.probe_tuples = 1u << 21;
    tape::TapeVolume r_tape("r", kBlock);
    rel::GeneratorConfig r_config;
    r_config.name = "R";
    r_config.record_bytes = 16;
    r_config.tuple_count = w.build_tuples;
    // Uniform keys, not sequential: std::hash<int64> is the identity, so a
    // 0..N build side would hand the multimap artificially perfect bucket
    // locality that no real R exhibits.
    r_config.keys = rel::KeySequence::kUniformRandom;
    r_config.key_domain = 4 * w.build_tuples;
    auto r = rel::GenerateOnTape(r_config, &r_tape);
    TERTIO_CHECK(r.ok(), "R generation failed");
    w.schema = r->schema;
    w.build_blocks = ReadAll(&r_tape);
    tape::TapeVolume s_tape("s", kBlock);
    rel::GeneratorConfig s_config;
    s_config.name = "S";
    s_config.record_bytes = 16;
    s_config.tuple_count = w.probe_tuples;
    s_config.keys = rel::KeySequence::kForeignKeyUniform;
    s_config.key_domain = 4 * w.build_tuples;
    s_config.seed = 17;
    auto s = rel::GenerateOnTape(s_config, &s_tape);
    TERTIO_CHECK(s.ok(), "S generation failed");
    w.probe_blocks = ReadAll(&s_tape);
    return w;
  }();
  return workload;
}

template <typename Table>
void JoinTableBuildBench(benchmark::State& state) {
  const TableWorkload& w = JoinTableWorkload();
  for (auto _ : state) {
    Table table(&w.schema, 0, /*build_is_r=*/true);
    TERTIO_CHECK(table.AddBlocks(w.build_blocks).ok(), "build failed");
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * w.build_tuples));
}

template <typename Table>
void JoinTableProbeBench(benchmark::State& state) {
  const TableWorkload& w = JoinTableWorkload();
  Table table(&w.schema, 0, /*build_is_r=*/true);
  TERTIO_CHECK(table.AddBlocks(w.build_blocks).ok(), "build failed");
  for (auto _ : state) {
    join::JoinOutput out;
    TERTIO_CHECK(table.Probe(w.probe_blocks, &w.schema, 0, &out).ok(), "probe failed");
    benchmark::DoNotOptimize(out.checksum());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * w.probe_tuples));
}

void BM_FlatTableBuild(benchmark::State& state) {
  JoinTableBuildBench<join::FlatJoinTable>(state);
}
BENCHMARK(BM_FlatTableBuild)->Unit(benchmark::kMillisecond);

void BM_LegacyTableBuild(benchmark::State& state) {
  JoinTableBuildBench<join::LegacyMultimapJoinTable>(state);
}
BENCHMARK(BM_LegacyTableBuild)->Unit(benchmark::kMillisecond);

void BM_FlatTableProbe(benchmark::State& state) {
  JoinTableProbeBench<join::FlatJoinTable>(state);
}
BENCHMARK(BM_FlatTableProbe)->Unit(benchmark::kMillisecond);

void BM_LegacyTableProbe(benchmark::State& state) {
  JoinTableProbeBench<join::LegacyMultimapJoinTable>(state);
}
BENCHMARK(BM_LegacyTableProbe)->Unit(benchmark::kMillisecond);

void BM_BlockBuilderAppend(benchmark::State& state) {
  rel::Schema schema = rel::Schema::KeyPayload(100);
  rel::BlockBuilder builder(&schema, kBlock);
  rel::TupleBuilder tuple(&schema);
  tuple.SetInt64(0, 42).SetFixedChar(1, "payload");
  std::uint64_t tuples = 0;
  for (auto _ : state) {
    if (builder.full()) benchmark::DoNotOptimize(builder.Finish());
    TERTIO_CHECK(builder.Append(tuple.bytes()).ok(), "append failed");
    ++tuples;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.SetBytesProcessed(static_cast<int64_t>(tuples * schema.record_bytes()));
}
BENCHMARK(BM_BlockBuilderAppend);

void BM_BlockReaderScan(benchmark::State& state) {
  rel::Schema schema = rel::Schema::KeyPayload(100);
  rel::BlockBuilder builder(&schema, kBlock);
  rel::TupleBuilder tuple(&schema);
  while (!builder.full()) {
    tuple.SetInt64(0, static_cast<int64_t>(builder.record_count()));
    TERTIO_CHECK(builder.Append(tuple.bytes()).ok(), "append failed");
  }
  BlockPayload payload = builder.Finish();
  std::int64_t sum = 0;
  std::uint64_t tuples = 0;
  for (auto _ : state) {
    auto reader = rel::BlockReader::Open(payload, &schema);
    for (BlockCount i = 0; i < reader->record_count(); ++i) {
      sum += rel::Tuple(reader->record(i), &schema).GetInt64(0);
      ++tuples;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
}
BENCHMARK(BM_BlockReaderScan);

void BM_HashKeyAndBucket(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::int64_t key = 0;
  for (auto _ : state) {
    acc += hash::BucketOf(key++, 317);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashKeyAndBucket);

void BM_JoinOutputAddMatch(benchmark::State& state) {
  join::JoinOutput output;
  std::int64_t key = 0;
  for (auto _ : state) {
    output.AddMatch(key++, 0x1234, 0x5678);
  }
  benchmark::DoNotOptimize(output.checksum());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JoinOutputAddMatch);

void BM_ResourceSchedule(benchmark::State& state) {
  sim::Resource resource("disk");
  SimSeconds ready = 0.0;
  for (auto _ : state) {
    ready = resource.Schedule(ready, 0.001, kBlock, "op").end;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourceSchedule);

void BM_AllocatorAllocFree(benchmark::State& state) {
  disk::DiskSpaceAllocator allocator({1 << 20, 1 << 20}, 32);
  for (auto _ : state) {
    auto extents = allocator.Allocate(64, 0.0, "bench");
    TERTIO_CHECK(extents.ok(), "alloc failed");
    TERTIO_CHECK(allocator.Free(*extents, 0.0, "bench").ok(), "free failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocatorAllocFree);

void BM_PhantomPartitioner(benchmark::State& state) {
  // Throughput of timing-only partitioning — the inner loop of every
  // paper-scale Grace run.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    disk::StripedDiskGroup group(
        disk::DiskGroupConfig::Uniform(2, disk::DiskModel::Ideal(1e9), 200000, kBlock, 32),
        &sim);
    hash::DiskPartitioner::Options options;
    options.bucket_count = 300;
    options.write_buffer_blocks = 3;
    hash::DiskPartitioner partitioner(&group, options);
    state.ResumeTiming();
    TERTIO_CHECK(partitioner.AddPhantomBlocks(100000, 1000000, 0.0).ok(), "add failed");
    TERTIO_CHECK(partitioner.Flush().ok(), "flush failed");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_PhantomPartitioner)->Unit(benchmark::kMillisecond);

void BM_RealPartitioner(benchmark::State& state) {
  tape::TapeVolume tape("t", kBlock);
  rel::GeneratorConfig config;
  config.tuple_count = 50000;
  auto relation = rel::GenerateOnTape(config, &tape);
  TERTIO_CHECK(relation.ok(), "generation failed");
  std::vector<BlockPayload> blocks;
  for (BlockIndex i = 0; i < tape.size_blocks(); ++i) {
    blocks.push_back(tape.ReadBlock(i).value());
  }
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    disk::StripedDiskGroup group(
        disk::DiskGroupConfig::Uniform(2, disk::DiskModel::Ideal(1e9), 20000, kBlock, 32),
        &sim);
    hash::DiskPartitioner::Options options;
    options.schema = &relation->schema;
    options.bucket_count = 32;
    options.write_buffer_blocks = 4;
    hash::DiskPartitioner partitioner(&group, options);
    state.ResumeTiming();
    TERTIO_CHECK(partitioner.AddBlocks(blocks, 0.0).ok(), "add failed");
    TERTIO_CHECK(partitioner.Flush().ok(), "flush failed");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_RealPartitioner)->Unit(benchmark::kMillisecond);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    tape::TapeVolume tape("t", kBlock);
    rel::GeneratorConfig config;
    config.tuple_count = 10000;
    benchmark::DoNotOptimize(rel::GenerateOnTape(config, &tape));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SyntheticGeneration)->Unit(benchmark::kMillisecond);

// ---- Pipeline transfer: coalesced vs per-chunk -----------------------------

/// Blocks per chunk of the transfer benches (device requests per chunk).
constexpr BlockCount kTransferChunk = 8;

struct TransferTiming {
  double wall_seconds = 0.0;   ///< host wall-clock of the Transfer call
  SimSeconds done = 0.0;       ///< simulated completion (must match both modes)
  std::uint64_t ops = 0;       ///< device ops accounted (must match both modes)
};

/// Simulates one fault-free phantom tape->memory transfer of `chunks` chunks
/// and times the Transfer call itself (setup excluded). With `coalesce` the
/// steady state collapses into batched device commits; without it every chunk
/// walks the full per-chunk scheduling path — the simulated outcome is
/// bit-identical either way, only the host time differs.
TransferTiming TimedTransfer(BlockCount chunks, bool coalesce) {
  sim::Simulation sim;
  tape::TapeVolume volume("t", kBlock);
  TERTIO_CHECK(volume.AppendPhantom(chunks * kTransferChunk, 0.25).ok(), "append failed");
  tape::TapeDrive drive("tape", tape::TapeDriveModel::DLT4000(), sim.CreateResource("tape"));
  TERTIO_CHECK(drive.Load(&volume, 0.0).ok(), "load failed");
  tape::TapeReadSource source(&drive, 0);
  sim::CollectSink sink(nullptr);
  sim::Pipeline pipe(0.0);
  sim::Pipeline::TransferPlan plan;
  plan.read_phase = "bench:read";
  plan.write_phase = "bench:write";
  plan.total = chunks * kTransferChunk;
  plan.chunk = kTransferChunk;
  plan.allow_coalescing = coalesce;
  TransferTiming timing;
  auto start = std::chrono::steady_clock::now();
  auto result = pipe.Transfer(plan, source, sink);
  timing.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  TERTIO_CHECK(result.ok(), "transfer failed");
  timing.done = result->done;
  timing.ops = drive.resource()->stats().op_count;
  return timing;
}

void BM_PipelineTransfer(benchmark::State& state) {
  const BlockCount chunks = static_cast<BlockCount>(state.range(0));
  const bool coalesce = state.range(1) != 0;
  for (auto _ : state) {
    TransferTiming timing = TimedTransfer(chunks, coalesce);
    // Count only the Transfer call: setup (volume append, drive load) is
    // excluded without PauseTiming's per-iteration overhead.
    state.SetIterationTime(timing.wall_seconds);
    benchmark::DoNotOptimize(timing.done);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunks));
}
BENCHMARK(BM_PipelineTransfer)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14}, {0, 1}})
    ->ArgNames({"chunks", "coalesce"})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Best-of-`reps` wall-clock seconds of one build+probe pass.
template <typename Table>
double TimedBuildProbeSeconds(int reps) {
  const TableWorkload& w = JoinTableWorkload();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    Table table(&w.schema, 0, /*build_is_r=*/true);
    TERTIO_CHECK(table.AddBlocks(w.build_blocks).ok(), "build failed");
    join::JoinOutput out;
    TERTIO_CHECK(table.Probe(w.probe_blocks, &w.schema, 0, &out).ok(), "probe failed");
    benchmark::DoNotOptimize(out.checksum());
    double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                         .count();
    if (seconds < best) best = seconds;
  }
  return best;
}

}  // namespace
}  // namespace tertio

int main(int argc, char** argv) {
  tertio::bench::BenchRecorder recorder("micro_substrates", argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Headline comparison for BENCH_joins.json: one build+probe pass over the
  // same workload on both table substrates (best of 3).
  using tertio::JoinTableWorkload;
  const tertio::TableWorkload& w = JoinTableWorkload();
  const double tuples =
      static_cast<double>(w.build_tuples) + static_cast<double>(w.probe_tuples);
  double flat = tertio::TimedBuildProbeSeconds<tertio::join::FlatJoinTable>(3);
  double legacy = tertio::TimedBuildProbeSeconds<tertio::join::LegacyMultimapJoinTable>(3);
  std::printf("\nJoin-table build+probe (%llu build + %llu probe tuples, best of 3):\n",
              (unsigned long long)w.build_tuples, (unsigned long long)w.probe_tuples);
  std::printf("  flat table:     %.1f ms  (%.1f M tuples/s)\n", 1e3 * flat,
              tuples / flat / 1e6);
  std::printf("  multimap table: %.1f ms  (%.1f M tuples/s)\n", 1e3 * legacy,
              tuples / legacy / 1e6);
  std::printf("  speedup: %.2fx\n", legacy / flat);
  recorder.RecordMetric("flat_build_probe_tuples_per_sec", tuples / flat);
  recorder.RecordMetric("multimap_build_probe_tuples_per_sec", tuples / legacy);
  recorder.RecordMetric("flat_vs_multimap_speedup", legacy / flat);

  // Headline transfer comparison: one fault-free 10^5-chunk phantom transfer,
  // coalesced vs forced-per-chunk (best of 3). The simulated outcome is
  // bit-identical; only the host time to reach it differs.
  constexpr tertio::BlockCount kChunks = 100000;
  tertio::TransferTiming coalesced{}, per_chunk{};
  coalesced.wall_seconds = std::numeric_limits<double>::infinity();
  per_chunk.wall_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    tertio::TransferTiming on = tertio::TimedTransfer(kChunks, /*coalesce=*/true);
    tertio::TransferTiming off = tertio::TimedTransfer(kChunks, /*coalesce=*/false);
    TERTIO_CHECK(on.done == off.done, "coalesced transfer diverged in simulated time");
    TERTIO_CHECK(on.ops == off.ops, "coalesced transfer diverged in op count");
    if (on.wall_seconds < coalesced.wall_seconds) coalesced = on;
    if (off.wall_seconds < per_chunk.wall_seconds) per_chunk = off;
  }
  const double transfer_speedup = per_chunk.wall_seconds / coalesced.wall_seconds;
  std::printf("\nPipeline transfer (%llu chunks, fault-free phantom, best of 3):\n",
              (unsigned long long)kChunks);
  std::printf("  coalesced: %.2f ms   per-chunk: %.2f ms   speedup: %.1fx\n",
              1e3 * coalesced.wall_seconds, 1e3 * per_chunk.wall_seconds, transfer_speedup);
  recorder.RecordMetric("pipeline_transfer_coalesced_seconds", coalesced.wall_seconds);
  recorder.RecordMetric("pipeline_transfer_per_chunk_seconds", per_chunk.wall_seconds);
  recorder.RecordMetric("pipeline_transfer_speedup", transfer_speedup);
  return recorder.Finish();
}
