/// \file bench_micro_substrates.cc
/// google-benchmark microbenchmarks of the substrate hot paths: block codec,
/// key hashing, hash partitioning, the disk allocator, and resource
/// scheduling. These bound how fast paper-scale phantom simulations run.

#include <benchmark/benchmark.h>

#include "disk/allocator.h"
#include "disk/striped_group.h"
#include "hash/disk_partitioner.h"
#include "hash/hasher.h"
#include "join/join_output.h"
#include "relation/block.h"
#include "relation/generator.h"
#include "relation/tuple.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "tape/tape_volume.h"

namespace tertio {
namespace {

constexpr ByteCount kBlock = 8 * kKiB;

void BM_BlockBuilderAppend(benchmark::State& state) {
  rel::Schema schema = rel::Schema::KeyPayload(100);
  rel::BlockBuilder builder(&schema, kBlock);
  rel::TupleBuilder tuple(&schema);
  tuple.SetInt64(0, 42).SetFixedChar(1, "payload");
  std::uint64_t tuples = 0;
  for (auto _ : state) {
    if (builder.full()) benchmark::DoNotOptimize(builder.Finish());
    TERTIO_CHECK(builder.Append(tuple.bytes()).ok(), "append failed");
    ++tuples;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.SetBytesProcessed(static_cast<int64_t>(tuples * schema.record_bytes()));
}
BENCHMARK(BM_BlockBuilderAppend);

void BM_BlockReaderScan(benchmark::State& state) {
  rel::Schema schema = rel::Schema::KeyPayload(100);
  rel::BlockBuilder builder(&schema, kBlock);
  rel::TupleBuilder tuple(&schema);
  while (!builder.full()) {
    tuple.SetInt64(0, static_cast<int64_t>(builder.record_count()));
    TERTIO_CHECK(builder.Append(tuple.bytes()).ok(), "append failed");
  }
  BlockPayload payload = builder.Finish();
  std::int64_t sum = 0;
  std::uint64_t tuples = 0;
  for (auto _ : state) {
    auto reader = rel::BlockReader::Open(payload, &schema);
    for (BlockCount i = 0; i < reader->record_count(); ++i) {
      sum += rel::Tuple(reader->record(i), &schema).GetInt64(0);
      ++tuples;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
}
BENCHMARK(BM_BlockReaderScan);

void BM_HashKeyAndBucket(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::int64_t key = 0;
  for (auto _ : state) {
    acc += hash::BucketOf(key++, 317);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashKeyAndBucket);

void BM_JoinOutputAddMatch(benchmark::State& state) {
  join::JoinOutput output;
  std::int64_t key = 0;
  for (auto _ : state) {
    output.AddMatch(key++, 0x1234, 0x5678);
  }
  benchmark::DoNotOptimize(output.checksum());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JoinOutputAddMatch);

void BM_ResourceSchedule(benchmark::State& state) {
  sim::Resource resource("disk");
  SimSeconds ready = 0.0;
  for (auto _ : state) {
    ready = resource.Schedule(ready, 0.001, kBlock, "op").end;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourceSchedule);

void BM_AllocatorAllocFree(benchmark::State& state) {
  disk::DiskSpaceAllocator allocator({1 << 20, 1 << 20}, 32);
  for (auto _ : state) {
    auto extents = allocator.Allocate(64, 0.0, "bench");
    TERTIO_CHECK(extents.ok(), "alloc failed");
    TERTIO_CHECK(allocator.Free(*extents, 0.0, "bench").ok(), "free failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocatorAllocFree);

void BM_PhantomPartitioner(benchmark::State& state) {
  // Throughput of timing-only partitioning — the inner loop of every
  // paper-scale Grace run.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    disk::StripedDiskGroup group(
        disk::DiskGroupConfig::Uniform(2, disk::DiskModel::Ideal(1e9), 200000, kBlock, 32),
        &sim);
    hash::DiskPartitioner::Options options;
    options.bucket_count = 300;
    options.write_buffer_blocks = 3;
    hash::DiskPartitioner partitioner(&group, options);
    state.ResumeTiming();
    TERTIO_CHECK(partitioner.AddPhantomBlocks(100000, 1000000, 0.0).ok(), "add failed");
    TERTIO_CHECK(partitioner.Flush().ok(), "flush failed");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_PhantomPartitioner)->Unit(benchmark::kMillisecond);

void BM_RealPartitioner(benchmark::State& state) {
  tape::TapeVolume tape("t", kBlock);
  rel::GeneratorConfig config;
  config.tuple_count = 50000;
  auto relation = rel::GenerateOnTape(config, &tape);
  TERTIO_CHECK(relation.ok(), "generation failed");
  std::vector<BlockPayload> blocks;
  for (BlockIndex i = 0; i < tape.size_blocks(); ++i) {
    blocks.push_back(tape.ReadBlock(i).value());
  }
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    disk::StripedDiskGroup group(
        disk::DiskGroupConfig::Uniform(2, disk::DiskModel::Ideal(1e9), 20000, kBlock, 32),
        &sim);
    hash::DiskPartitioner::Options options;
    options.schema = &relation->schema;
    options.bucket_count = 32;
    options.write_buffer_blocks = 4;
    hash::DiskPartitioner partitioner(&group, options);
    state.ResumeTiming();
    TERTIO_CHECK(partitioner.AddBlocks(blocks, 0.0).ok(), "add failed");
    TERTIO_CHECK(partitioner.Flush().ok(), "flush failed");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_RealPartitioner)->Unit(benchmark::kMillisecond);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    tape::TapeVolume tape("t", kBlock);
    rel::GeneratorConfig config;
    config.tuple_count = 10000;
    benchmark::DoNotOptimize(rel::GenerateOnTape(config, &tape));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SyntheticGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tertio

BENCHMARK_MAIN();
