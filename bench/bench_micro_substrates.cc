/// \file bench_micro_substrates.cc
/// google-benchmark microbenchmarks of the substrate hot paths: block codec,
/// key hashing, hash partitioning, the disk allocator, resource scheduling,
/// and the join table build/probe paths (flat open-addressing table vs the
/// seed's multimap, kept as LegacyMultimapJoinTable for comparison). These
/// bound how fast paper-scale simulations run.
///
/// After the google-benchmark run, main() times a fixed build+probe workload
/// on both table substrates and records tuples/sec plus the flat-vs-multimap
/// speedup into BENCH_joins.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iterator>
#include <optional>
#include <string>

#include "bench/bench_util.h"
#include "disk/allocator.h"
#include "disk/striped_group.h"
#include "hash/disk_partitioner.h"
#include "hash/hasher.h"
#include "join/flat_table.h"
#include "join/join_output.h"
#include "join/legacy_table.h"
#include "join/simd.h"
#include "relation/block.h"
#include "relation/generator.h"
#include "relation/tuple.h"
#include "sim/pipeline.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "tape/tape_drive.h"
#include "tape/tape_volume.h"

namespace tertio {
namespace {

constexpr ByteCount kBlock = 8 * kKiB;

/// Materialized build/probe workload for the join-table benches: R is
/// sequential-unique (the canonical build side), S draws foreign keys over
/// R's domain, so every probe tuple matches exactly one build tuple.
///
/// Records are narrow (16 bytes) and the table is far larger than L2, so
/// the measurement isolates the table substrate — slot placement and the
/// dependent cache miss per tuple — rather than record decoding.
struct TableWorkload {
  rel::Schema schema;
  std::uint64_t build_tuples = 0;
  std::uint64_t probe_tuples = 0;
  std::vector<BlockPayload> build_blocks;
  std::vector<BlockPayload> probe_blocks;
};

std::vector<BlockPayload> ReadAll(tape::TapeVolume* tape) {
  std::vector<BlockPayload> blocks;
  for (BlockIndex i = 0; i < tape->size_blocks(); ++i) {
    blocks.push_back(tape->ReadBlock(i).value());
  }
  return blocks;
}

const TableWorkload& JoinTableWorkload() {
  static const TableWorkload workload = [] {
    TableWorkload w;
    w.build_tuples = 1u << 20;
    w.probe_tuples = 1u << 21;
    tape::TapeVolume r_tape("r", kBlock);
    rel::GeneratorConfig r_config;
    r_config.name = "R";
    r_config.record_bytes = 16;
    r_config.tuple_count = w.build_tuples;
    // Uniform keys, not sequential: std::hash<int64> is the identity, so a
    // 0..N build side would hand the multimap artificially perfect bucket
    // locality that no real R exhibits.
    r_config.keys = rel::KeySequence::kUniformRandom;
    r_config.key_domain = 4 * w.build_tuples;
    auto r = rel::GenerateOnTape(r_config, &r_tape);
    TERTIO_CHECK(r.ok(), "R generation failed");
    w.schema = r->schema;
    w.build_blocks = ReadAll(&r_tape);
    tape::TapeVolume s_tape("s", kBlock);
    rel::GeneratorConfig s_config;
    s_config.name = "S";
    s_config.record_bytes = 16;
    s_config.tuple_count = w.probe_tuples;
    s_config.keys = rel::KeySequence::kForeignKeyUniform;
    s_config.key_domain = 4 * w.build_tuples;
    s_config.seed = 17;
    auto s = rel::GenerateOnTape(s_config, &s_tape);
    TERTIO_CHECK(s.ok(), "S generation failed");
    w.probe_blocks = ReadAll(&s_tape);
    return w;
  }();
  return workload;
}

// ---- Scalar-vs-SIMD probe sweep --------------------------------------------

/// One point of the probe sweep: key distribution, record width, and probe
/// selectivity (probe keys draw from `domain_multiplier * build_tuples`, so
/// larger multipliers mean more probes that miss the table — the regime the
/// Bloom prefilter accelerates by skipping the slot walk entirely).
struct ProbeSweepCase {
  const char* name;
  std::uint64_t build_tuples;
  std::uint64_t probe_tuples;
  ByteCount record_bytes;
  rel::KeySequence s_keys;
  std::uint64_t domain_multiplier;
};

/// The sweep grid: the fk-uniform headline (matching JoinTableWorkload's
/// shape), Zipf(1) skew, two miss-heavy selectivities at 16-byte records,
/// and the 64/256-byte wide-record points (smaller cardinalities keep the
/// byte volume comparable).
constexpr ProbeSweepCase kProbeSweep[] = {
    {"fk_uniform_16b", 1u << 20, 1u << 21, 16, rel::KeySequence::kForeignKeyUniform, 4},
    {"zipf_16b", 1u << 20, 1u << 21, 16, rel::KeySequence::kZipf, 4},
    {"selective_16b", 1u << 20, 1u << 21, 16, rel::KeySequence::kUniformRandom, 32},
    {"very_selective_16b", 1u << 20, 1u << 21, 16, rel::KeySequence::kUniformRandom, 256},
    {"fk_uniform_64b", 1u << 18, 1u << 19, 64, rel::KeySequence::kForeignKeyUniform, 4},
    {"fk_uniform_256b", 1u << 16, 1u << 17, 256, rel::KeySequence::kForeignKeyUniform, 4},
};
constexpr int kProbeSweepSize = static_cast<int>(std::size(kProbeSweep));

/// Lazily generated and cached blocks for one sweep case (generation runs
/// once per case, shared by the registered benches and the main() metrics).
const TableWorkload& ProbeSweepWorkload(int index) {
  static std::optional<TableWorkload> cache[kProbeSweepSize];
  std::optional<TableWorkload>& slot = cache[index];
  if (!slot.has_value()) {
    const ProbeSweepCase& c = kProbeSweep[index];
    TableWorkload w;
    w.build_tuples = c.build_tuples;
    w.probe_tuples = c.probe_tuples;
    tape::TapeVolume r_tape("r", kBlock);
    rel::GeneratorConfig r_config;
    r_config.name = "R";
    r_config.record_bytes = c.record_bytes;
    r_config.tuple_count = c.build_tuples;
    r_config.keys = rel::KeySequence::kUniformRandom;
    r_config.key_domain = 4 * c.build_tuples;
    auto r = rel::GenerateOnTape(r_config, &r_tape);
    TERTIO_CHECK(r.ok(), "R generation failed");
    w.schema = r->schema;
    w.build_blocks = ReadAll(&r_tape);
    tape::TapeVolume s_tape("s", kBlock);
    rel::GeneratorConfig s_config;
    s_config.name = "S";
    s_config.record_bytes = c.record_bytes;
    s_config.tuple_count = c.probe_tuples;
    s_config.keys = c.s_keys;
    s_config.key_domain = c.domain_multiplier * c.build_tuples;
    s_config.seed = 17;
    auto s = rel::GenerateOnTape(s_config, &s_tape);
    TERTIO_CHECK(s.ok(), "S generation failed");
    w.probe_blocks = ReadAll(&s_tape);
    slot = std::move(w);
  }
  return *slot;
}

struct ProbeModeResult {
  double seconds = 0.0;  ///< best-of-reps wall-clock of one probe pass
  std::uint64_t tuples = 0;
  std::uint64_t checksum = 0;
};

/// Builds once and times `reps` probe passes under `level`, keeping the
/// best. Build and probe both run at `level`; the dispatch level is restored
/// before returning.
ProbeModeResult TimedProbe(const TableWorkload& w, join::simd::Level level, int reps) {
  join::simd::SetLevelForTest(level);
  join::FlatJoinTable table(&w.schema, 0, /*build_is_r=*/true);
  TERTIO_CHECK(table.AddBlocks(w.build_blocks).ok(), "build failed");
  ProbeModeResult best;
  best.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    join::JoinOutput out;
    auto start = std::chrono::steady_clock::now();
    TERTIO_CHECK(table.Probe(w.probe_blocks, &w.schema, 0, &out).ok(), "probe failed");
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (seconds < best.seconds) best.seconds = seconds;
    best.tuples = out.tuples();
    best.checksum = out.checksum();
  }
  join::simd::ResetLevelForTest();
  return best;
}

void BM_FlatTableProbeSweep(benchmark::State& state) {
  const int index = static_cast<int>(state.range(0));
  const TableWorkload& w = ProbeSweepWorkload(index);
  const join::simd::Level level =
      state.range(1) != 0 ? join::simd::BestSupportedLevel() : join::simd::Level::kScalar;
  join::simd::SetLevelForTest(level);
  join::FlatJoinTable table(&w.schema, 0, /*build_is_r=*/true);
  TERTIO_CHECK(table.AddBlocks(w.build_blocks).ok(), "build failed");
  for (auto _ : state) {
    join::JoinOutput out;
    TERTIO_CHECK(table.Probe(w.probe_blocks, &w.schema, 0, &out).ok(), "probe failed");
    benchmark::DoNotOptimize(out.checksum());
  }
  join::simd::ResetLevelForTest();
  state.SetLabel(kProbeSweep[index].name);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * w.probe_tuples));
}
BENCHMARK(BM_FlatTableProbeSweep)
    ->ArgsProduct({benchmark::CreateDenseRange(0, kProbeSweepSize - 1, 1), {0, 1}})
    ->ArgNames({"case", "simd"})
    ->Unit(benchmark::kMillisecond);

template <typename Table>
void JoinTableBuildBench(benchmark::State& state) {
  const TableWorkload& w = JoinTableWorkload();
  for (auto _ : state) {
    Table table(&w.schema, 0, /*build_is_r=*/true);
    TERTIO_CHECK(table.AddBlocks(w.build_blocks).ok(), "build failed");
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * w.build_tuples));
}

template <typename Table>
void JoinTableProbeBench(benchmark::State& state) {
  const TableWorkload& w = JoinTableWorkload();
  Table table(&w.schema, 0, /*build_is_r=*/true);
  TERTIO_CHECK(table.AddBlocks(w.build_blocks).ok(), "build failed");
  for (auto _ : state) {
    join::JoinOutput out;
    TERTIO_CHECK(table.Probe(w.probe_blocks, &w.schema, 0, &out).ok(), "probe failed");
    benchmark::DoNotOptimize(out.checksum());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * w.probe_tuples));
}

void BM_FlatTableBuild(benchmark::State& state) {
  JoinTableBuildBench<join::FlatJoinTable>(state);
}
BENCHMARK(BM_FlatTableBuild)->Unit(benchmark::kMillisecond);

void BM_LegacyTableBuild(benchmark::State& state) {
  JoinTableBuildBench<join::LegacyMultimapJoinTable>(state);
}
BENCHMARK(BM_LegacyTableBuild)->Unit(benchmark::kMillisecond);

void BM_FlatTableProbe(benchmark::State& state) {
  JoinTableProbeBench<join::FlatJoinTable>(state);
}
BENCHMARK(BM_FlatTableProbe)->Unit(benchmark::kMillisecond);

void BM_LegacyTableProbe(benchmark::State& state) {
  JoinTableProbeBench<join::LegacyMultimapJoinTable>(state);
}
BENCHMARK(BM_LegacyTableProbe)->Unit(benchmark::kMillisecond);

void BM_BlockBuilderAppend(benchmark::State& state) {
  rel::Schema schema = rel::Schema::KeyPayload(100);
  rel::BlockBuilder builder(&schema, kBlock);
  rel::TupleBuilder tuple(&schema);
  tuple.SetInt64(0, 42).SetFixedChar(1, "payload");
  std::uint64_t tuples = 0;
  for (auto _ : state) {
    if (builder.full()) benchmark::DoNotOptimize(builder.Finish());
    TERTIO_CHECK(builder.Append(tuple.bytes()).ok(), "append failed");
    ++tuples;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.SetBytesProcessed(static_cast<int64_t>(tuples * schema.record_bytes().value()));
}
BENCHMARK(BM_BlockBuilderAppend);

void BM_BlockReaderScan(benchmark::State& state) {
  rel::Schema schema = rel::Schema::KeyPayload(100);
  rel::BlockBuilder builder(&schema, kBlock);
  rel::TupleBuilder tuple(&schema);
  while (!builder.full()) {
    tuple.SetInt64(0, static_cast<int64_t>(builder.record_count()));
    TERTIO_CHECK(builder.Append(tuple.bytes()).ok(), "append failed");
  }
  BlockPayload payload = builder.Finish();
  std::int64_t sum = 0;
  std::uint64_t tuples = 0;
  for (auto _ : state) {
    auto reader = rel::BlockReader::Open(payload, &schema);
    for (BlockCount i = 0; i < reader->record_count(); ++i) {
      sum += rel::Tuple(reader->record(i.value()), &schema).GetInt64(0);
      ++tuples;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
}
BENCHMARK(BM_BlockReaderScan);

void BM_HashKeyAndBucket(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::int64_t key = 0;
  for (auto _ : state) {
    acc += hash::BucketOf(key++, 317);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashKeyAndBucket);

void BM_JoinOutputAddMatch(benchmark::State& state) {
  join::JoinOutput output;
  std::int64_t key = 0;
  for (auto _ : state) {
    output.AddMatch(key++, 0x1234, 0x5678);
  }
  benchmark::DoNotOptimize(output.checksum());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JoinOutputAddMatch);

void BM_ResourceSchedule(benchmark::State& state) {
  sim::Resource resource("disk");
  SimSeconds ready = 0.0;
  for (auto _ : state) {
    ready = resource.Schedule(ready, 0.001, kBlock, "op").end;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourceSchedule);

void BM_AllocatorAllocFree(benchmark::State& state) {
  disk::DiskSpaceAllocator allocator({1 << 20, 1 << 20}, 32);
  for (auto _ : state) {
    auto extents = allocator.Allocate(64, 0.0, "bench");
    TERTIO_CHECK(extents.ok(), "alloc failed");
    TERTIO_CHECK(allocator.Free(*extents, 0.0, "bench").ok(), "free failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocatorAllocFree);

void BM_PhantomPartitioner(benchmark::State& state) {
  // Throughput of timing-only partitioning — the inner loop of every
  // paper-scale Grace run.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    disk::StripedDiskGroup group(
        disk::DiskGroupConfig::Uniform(2, disk::DiskModel::Ideal(1e9), 200000, kBlock, 32),
        &sim);
    hash::DiskPartitioner::Options options;
    options.bucket_count = 300;
    options.write_buffer_blocks = 3;
    hash::DiskPartitioner partitioner(&group, options);
    state.ResumeTiming();
    TERTIO_CHECK(partitioner.AddPhantomBlocks(100000, 1000000, 0.0).ok(), "add failed");
    TERTIO_CHECK(partitioner.Flush().ok(), "flush failed");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_PhantomPartitioner)->Unit(benchmark::kMillisecond);

void BM_RealPartitioner(benchmark::State& state) {
  tape::TapeVolume tape("t", kBlock);
  rel::GeneratorConfig config;
  config.tuple_count = 50000;
  auto relation = rel::GenerateOnTape(config, &tape);
  TERTIO_CHECK(relation.ok(), "generation failed");
  std::vector<BlockPayload> blocks;
  for (BlockIndex i = 0; i < tape.size_blocks(); ++i) {
    blocks.push_back(tape.ReadBlock(i).value());
  }
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    disk::StripedDiskGroup group(
        disk::DiskGroupConfig::Uniform(2, disk::DiskModel::Ideal(1e9), 20000, kBlock, 32),
        &sim);
    hash::DiskPartitioner::Options options;
    options.schema = &relation->schema;
    options.bucket_count = 32;
    options.write_buffer_blocks = 4;
    hash::DiskPartitioner partitioner(&group, options);
    state.ResumeTiming();
    TERTIO_CHECK(partitioner.AddBlocks(blocks, 0.0).ok(), "add failed");
    TERTIO_CHECK(partitioner.Flush().ok(), "flush failed");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_RealPartitioner)->Unit(benchmark::kMillisecond);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    tape::TapeVolume tape("t", kBlock);
    rel::GeneratorConfig config;
    config.tuple_count = 10000;
    benchmark::DoNotOptimize(rel::GenerateOnTape(config, &tape));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SyntheticGeneration)->Unit(benchmark::kMillisecond);

// ---- Pipeline transfer: coalesced vs per-chunk -----------------------------

/// Blocks per chunk of the transfer benches (device requests per chunk).
constexpr BlockCount kTransferChunk = 8;

struct TransferTiming {
  double wall_seconds = 0.0;   ///< host wall-clock of the Transfer call
  SimSeconds done = 0.0;       ///< simulated completion (must match both modes)
  std::uint64_t ops = 0;       ///< device ops accounted (must match both modes)
};

/// The three commit paths of the coalesced fast path, slowest to fastest.
/// All three produce bit-identical simulated outcomes; only the host time
/// to reach them differs.
enum class CommitMode {
  kPerChunk,    ///< coalescing off: every chunk walks the scheduling path
  kReplay,      ///< coalesced, but the window commits via O(chunks) replay
  kClosedForm,  ///< coalesced with the O(1) closed-form commit (the default)
};

/// Simulates one fault-free phantom tape->memory transfer of `chunks` chunks
/// and times the Transfer call itself (setup excluded).
TransferTiming TimedTransfer(std::uint64_t chunks, CommitMode mode) {
  sim::Simulation sim;
  tape::TapeVolume volume("t", kBlock);
  TERTIO_CHECK(volume.AppendPhantom(chunks * kTransferChunk, 0.25).ok(), "append failed");
  tape::TapeDrive drive("tape", tape::TapeDriveModel::DLT4000(), sim.CreateResource("tape"));
  TERTIO_CHECK(drive.Load(&volume, 0.0).ok(), "load failed");
  tape::TapeReadSource source(&drive, 0);
  sim::CollectSink sink(nullptr);
  sim::Pipeline pipe(0.0);
  sim::Pipeline::TransferPlan plan;
  plan.read_phase = "bench:read";
  plan.write_phase = "bench:write";
  plan.total = chunks * kTransferChunk;
  plan.chunk = kTransferChunk;
  plan.allow_coalescing = mode != CommitMode::kPerChunk;
  plan.closed_form_commit = mode == CommitMode::kClosedForm;
  TransferTiming timing;
  auto start = std::chrono::steady_clock::now();
  auto result = pipe.Transfer(plan, source, sink);
  timing.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  TERTIO_CHECK(result.ok(), "transfer failed");
  timing.done = result->done;
  timing.ops = drive.resource()->stats().op_count;
  return timing;
}

void BM_PipelineTransfer(benchmark::State& state) {
  const std::uint64_t chunks = static_cast<std::uint64_t>(state.range(0));
  const CommitMode mode = static_cast<CommitMode>(state.range(1));
  for (auto _ : state) {
    TransferTiming timing = TimedTransfer(chunks, mode);
    // Count only the Transfer call: setup (volume append, drive load) is
    // excluded without PauseTiming's per-iteration overhead.
    state.SetIterationTime(timing.wall_seconds);
    benchmark::DoNotOptimize(timing.done);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunks));
}
BENCHMARK(BM_PipelineTransfer)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14}, {0, 1, 2}})
    ->ArgNames({"chunks", "mode"})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Best-of-`reps` wall-clock seconds of one build+probe pass.
template <typename Table>
double TimedBuildProbeSeconds(int reps) {
  const TableWorkload& w = JoinTableWorkload();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    Table table(&w.schema, 0, /*build_is_r=*/true);
    TERTIO_CHECK(table.AddBlocks(w.build_blocks).ok(), "build failed");
    join::JoinOutput out;
    TERTIO_CHECK(table.Probe(w.probe_blocks, &w.schema, 0, &out).ok(), "probe failed");
    benchmark::DoNotOptimize(out.checksum());
    double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                         .count();
    if (seconds < best) best = seconds;
  }
  return best;
}

}  // namespace
}  // namespace tertio

int main(int argc, char** argv) {
  tertio::bench::BenchRecorder recorder("micro_substrates", argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Headline comparison for BENCH_joins.json: one build+probe pass over the
  // same workload on both table substrates (best of 3).
  using tertio::JoinTableWorkload;
  const tertio::TableWorkload& w = JoinTableWorkload();
  const double tuples =
      static_cast<double>(w.build_tuples) + static_cast<double>(w.probe_tuples);
  double flat = tertio::TimedBuildProbeSeconds<tertio::join::FlatJoinTable>(3);
  double legacy = tertio::TimedBuildProbeSeconds<tertio::join::LegacyMultimapJoinTable>(3);
  std::printf("\nJoin-table build+probe (%llu build + %llu probe tuples, best of 3):\n",
              (unsigned long long)w.build_tuples, (unsigned long long)w.probe_tuples);
  std::printf("  flat table:     %.1f ms  (%.1f M tuples/s)\n", 1e3 * flat,
              tuples / flat / 1e6);
  std::printf("  multimap table: %.1f ms  (%.1f M tuples/s)\n", 1e3 * legacy,
              tuples / legacy / 1e6);
  std::printf("  speedup: %.2fx\n", legacy / flat);
  recorder.RecordMetric("flat_build_probe_tuples_per_sec", tuples / flat);
  recorder.RecordMetric("multimap_build_probe_tuples_per_sec", tuples / legacy);
  recorder.RecordMetric("flat_vs_multimap_speedup", legacy / flat);

  // Scalar-vs-SIMD probe sweep: for each sweep point, build once per mode
  // and keep the best of 3 probe passes. The two modes must agree on the
  // pair set (count + order-independent checksum) — a divergence here is a
  // kernel bug, not a perf regression.
  std::printf("\nFlat-table probe, scalar vs SIMD (best of 3):\n");
  for (int i = 0; i < tertio::kProbeSweepSize; ++i) {
    const tertio::TableWorkload& w = tertio::ProbeSweepWorkload(i);
    const tertio::ProbeModeResult scalar =
        tertio::TimedProbe(w, tertio::join::simd::Level::kScalar, 3);
    const tertio::ProbeModeResult simd =
        tertio::TimedProbe(w, tertio::join::simd::BestSupportedLevel(), 3);
    TERTIO_CHECK(scalar.tuples == simd.tuples, "probe sweep diverged in match count");
    TERTIO_CHECK(scalar.checksum == simd.checksum, "probe sweep diverged in checksum");
    const double probes = static_cast<double>(w.probe_tuples);
    const double speedup = scalar.seconds / simd.seconds;
    const std::string key = std::string("probe_") + tertio::kProbeSweep[i].name;
    std::printf("  %-20s scalar %6.1f ns/probe   simd %6.1f ns/probe   %4.2fx  (%.2f%% hit)\n",
                tertio::kProbeSweep[i].name, 1e9 * scalar.seconds / probes,
                1e9 * simd.seconds / probes, speedup,
                100.0 * static_cast<double>(simd.tuples) / probes);
    recorder.RecordMetric(key + "_scalar_ns", 1e9 * scalar.seconds / probes);
    recorder.RecordMetric(key + "_simd_ns", 1e9 * simd.seconds / probes);
    recorder.RecordMetric(key + "_speedup", speedup);
  }

  // Headline transfer comparison at the 10^6-chunk point: one fault-free
  // phantom transfer through each commit path (best of 3). All three paths
  // reach the bit-identical simulated outcome; only the host time differs —
  // per-chunk is O(chunks) scheduling, replay is O(chunks) arithmetic over
  // the realized stage durations, closed-form is O(1) per window.
  constexpr std::uint64_t kChunks = 1000000;
  tertio::TransferTiming closed{}, replay{}, per_chunk{};
  closed.wall_seconds = std::numeric_limits<double>::infinity();
  replay.wall_seconds = std::numeric_limits<double>::infinity();
  per_chunk.wall_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    tertio::TransferTiming cf = tertio::TimedTransfer(kChunks, tertio::CommitMode::kClosedForm);
    tertio::TransferTiming rp = tertio::TimedTransfer(kChunks, tertio::CommitMode::kReplay);
    tertio::TransferTiming pc = tertio::TimedTransfer(kChunks, tertio::CommitMode::kPerChunk);
    TERTIO_CHECK(cf.done == rp.done && rp.done == pc.done,
                 "commit paths diverged in simulated time");
    TERTIO_CHECK(cf.ops == rp.ops && rp.ops == pc.ops,
                 "commit paths diverged in op count");
    if (cf.wall_seconds < closed.wall_seconds) closed = cf;
    if (rp.wall_seconds < replay.wall_seconds) replay = rp;
    if (pc.wall_seconds < per_chunk.wall_seconds) per_chunk = pc;
  }
  std::printf("\nPipeline transfer commit (%llu chunks, fault-free phantom, best of 3):\n",
              (unsigned long long)kChunks);
  std::printf("  closed-form: %.2f ms   replay: %.2f ms   per-chunk: %.2f ms\n",
              1e3 * closed.wall_seconds, 1e3 * replay.wall_seconds,
              1e3 * per_chunk.wall_seconds);
  std::printf("  closed-form vs replay: %.1fx   vs per-chunk: %.1fx\n",
              replay.wall_seconds / closed.wall_seconds,
              per_chunk.wall_seconds / closed.wall_seconds);
  recorder.RecordMetric("commit_closed_form_seconds", closed.wall_seconds);
  recorder.RecordMetric("commit_replay_seconds", replay.wall_seconds);
  recorder.RecordMetric("commit_per_chunk_seconds", per_chunk.wall_seconds);
  recorder.RecordMetric("commit_closed_form_vs_replay_speedup",
                        replay.wall_seconds / closed.wall_seconds);
  recorder.RecordMetric("commit_closed_form_vs_per_chunk_speedup",
                        per_chunk.wall_seconds / closed.wall_seconds);
  return recorder.Finish();
}
