// Multi-query join service: scan sharing vs FIFO under open- and
// closed-loop arrivals, plus the HSM extent cache under a Zipf-skewed
// closed loop.
//
// The paper's related work (Section 2) credits Postgres and Paradise with
// batching queries against the same tape to save passes. bench_query_service
// measures the service-level version of that idea: a stream of joins whose
// outer relations live on a few library cartridges, executed by
// exec::QueryScheduler either FIFO (every query pays its own S pass) or with
// scan sharing (queued joins on an already-swept cartridge ride the leader's
// pass). Reported per policy: p50/p99 response time, makespan, and physical
// vs multicast tape blocks.
//
// The Zipf sweep exercises the cross-query extent cache (disk/extent_cache.h):
// closed-loop clients draw their S cartridge from a Zipf(1) popularity
// distribution, and the sweep grows SiteConfig::cache_blocks from 0 (pure
// tape, the PR 6 baseline) to several multiples of one S relation. With a
// warm cache the hot cartridges' S passes become disk reads, so physical
// tape blocks and tail latency both drop.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "exec/query_scheduler.h"
#include "exec/service_workload.h"
#include "exec/site.h"

namespace tertio::bench {
namespace {

using exec::JoinRequest;
using exec::QueryOutcome;
using exec::QueryScheduler;
using exec::ServicePolicy;
using exec::ServiceStats;
using exec::ServiceWorkload;
using exec::ServiceWorkloadConfig;
using exec::Site;
using exec::SiteConfig;

constexpr int kOpenLoopQueries = 12;
constexpr double kOpenLoopInterarrival = 600.0;  // seconds of virtual time
constexpr int kClosedLoopClients = 3;
constexpr int kClosedLoopQueriesPerClient = 4;

SiteConfig ServiceSite() {
  SiteConfig config;
  config.disk_space_bytes = 500 * kMB;
  config.memory_bytes = 16 * kMB;
  config.with_library = true;
  return config;
}

ServiceWorkloadConfig ServiceLoad() {
  ServiceWorkloadConfig config;
  config.s_cartridges = 2;
  config.s_bytes = 1000 * kMB;
  config.r_relations = 6;
  config.r_bytes = 18 * kMB;
  config.phantom = true;
  return config;
}

JoinRequest MakeRequest(Site* site, const ServiceWorkload& workload, int query_index,
                        SimSeconds arrival) {
  JoinRequest request;
  request.arrival = arrival;
  request.spec.r = &workload.r[static_cast<size_t>(query_index) % workload.r.size()];
  request.spec.s = &workload.s[static_cast<size_t>(query_index) % workload.s.size()];
  request.method = JoinMethodId::kCdtGh;
  request.memory_blocks = site->memory_blocks();
  request.disk_blocks = site->session_disk_blocks();
  return request;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  auto rank = static_cast<std::size_t>(p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

struct PolicyResult {
  ServiceStats stats;
  std::vector<double> responses;
  /// Queue waits (start - arrival): the scheduling delay component.
  std::vector<double> waits;
};

// Fixed arrival schedule; every query is submitted up front.
PolicyResult RunOpenLoop(ServicePolicy policy) {
  auto site = std::make_unique<Site>(ServiceSite());
  auto workload = exec::PrepareServiceWorkload(site.get(), ServiceLoad());
  TERTIO_CHECK(workload.ok(), "service workload setup failed");
  QueryScheduler scheduler(site.get(), policy);
  for (int q = 0; q < kOpenLoopQueries; ++q) {
    auto id = scheduler.Submit(
        MakeRequest(site.get(), *workload, q, static_cast<double>(q) * kOpenLoopInterarrival));
    TERTIO_CHECK(id.ok(), "open-loop submit rejected");
  }
  Status ran = scheduler.Run();
  TERTIO_CHECK(ran.ok(), "service run failed");
  PolicyResult result;
  result.stats = scheduler.service_stats();
  for (const QueryOutcome& out : scheduler.outcomes()) {
    TERTIO_CHECK(out.status.ok(), "open-loop query failed");
    result.responses.push_back(out.response_seconds().value());
    result.waits.push_back((out.start - out.arrival).value());
  }
  return result;
}

// N clients, each submitting its next query the moment its previous one
// completes (think time zero).
PolicyResult RunClosedLoop(ServicePolicy policy) {
  auto site = std::make_unique<Site>(ServiceSite());
  auto workload = exec::PrepareServiceWorkload(site.get(), ServiceLoad());
  TERTIO_CHECK(workload.ok(), "service workload setup failed");
  QueryScheduler scheduler(site.get(), policy);
  std::map<std::uint64_t, int> client_of;
  std::vector<int> remaining(kClosedLoopClients, kClosedLoopQueriesPerClient - 1);
  std::vector<int> sequence(kClosedLoopClients, 0);
  scheduler.set_on_complete([&](const QueryOutcome& out) {
    auto it = client_of.find(out.id);
    TERTIO_CHECK(it != client_of.end(), "outcome for unknown client");
    int client = it->second;
    if (remaining[static_cast<size_t>(client)]-- <= 0) return;
    int q = client + kClosedLoopClients * ++sequence[static_cast<size_t>(client)];
    auto id = scheduler.Submit(MakeRequest(site.get(), *workload, q, out.completion));
    TERTIO_CHECK(id.ok(), "closed-loop submit rejected");
    client_of[*id] = client;
  });
  for (int client = 0; client < kClosedLoopClients; ++client) {
    auto id = scheduler.Submit(MakeRequest(site.get(), *workload, client, 0.0));
    TERTIO_CHECK(id.ok(), "closed-loop submit rejected");
    client_of[*id] = client;
  }
  Status ran = scheduler.Run();
  TERTIO_CHECK(ran.ok(), "service run failed");
  PolicyResult result;
  result.stats = scheduler.service_stats();
  for (const QueryOutcome& out : scheduler.outcomes()) {
    TERTIO_CHECK(out.status.ok(), "closed-loop query failed");
    result.responses.push_back(out.response_seconds().value());
    result.waits.push_back((out.start - out.arrival).value());
  }
  return result;
}

// --- Zipf-skewed closed loop over the extent cache --------------------------

constexpr int kZipfClients = 3;
constexpr int kZipfQueriesPerClient = 6;

ServiceWorkloadConfig ZipfLoad() {
  ServiceWorkloadConfig config;
  config.s_cartridges = 4;
  config.s_bytes = 80 * kMB;
  config.r_relations = 6;
  config.r_bytes = 10 * kMB;
  config.phantom = true;
  return config;
}

SiteConfig ZipfSite(BlockCount cache_blocks) {
  SiteConfig config = ServiceSite();
  // Room for a cache of up to 4 S relations plus the session carves.
  config.disk_space_bytes = 1000 * kMB;
  config.cache_blocks = cache_blocks;
  return config;
}

// Deterministic 64-bit generator (SplitMix64) so every sweep point replays
// the identical query stream.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double NextUnit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

// Zipf(1) over `n` cartridges: cartridge k drawn with weight 1/(k+1)
// (~48/24/16/12% for n = 4).
int ZipfPick(SplitMix64* rng, int n) {
  double total = 0.0;
  for (int k = 1; k <= n; ++k) total += 1.0 / k;
  double u = rng->NextUnit() * total;
  double acc = 0.0;
  for (int k = 0; k < n; ++k) {
    acc += 1.0 / (k + 1);
    if (u < acc) return k;
  }
  return n - 1;
}

// Pre-drawn (r_index, s_index) streams, one per client, identical across
// every cache size in the sweep.
std::vector<std::vector<std::pair<int, int>>> PlanZipfQueries(int r_count, int s_count) {
  std::vector<std::vector<std::pair<int, int>>> plan(kZipfClients);
  for (int client = 0; client < kZipfClients; ++client) {
    SplitMix64 rng(0x5eedULL + static_cast<std::uint64_t>(client));
    for (int q = 0; q < kZipfQueriesPerClient; ++q) {
      int r_index = static_cast<int>(rng.Next() % static_cast<std::uint64_t>(r_count));
      plan[static_cast<size_t>(client)].emplace_back(r_index, ZipfPick(&rng, s_count));
    }
  }
  return plan;
}

PolicyResult RunZipfLoop(BlockCount cache_blocks) {
  auto site = std::make_unique<Site>(ZipfSite(cache_blocks));
  auto workload = exec::PrepareServiceWorkload(site.get(), ZipfLoad());
  TERTIO_CHECK(workload.ok(), "zipf workload setup failed");
  auto plan = PlanZipfQueries(static_cast<int>(workload->r.size()),
                              static_cast<int>(workload->s.size()));
  QueryScheduler scheduler(site.get(), ServicePolicy::kFifo);
  auto submit = [&](int client, int q, SimSeconds arrival) {
    auto [r_index, s_index] = plan[static_cast<size_t>(client)][static_cast<size_t>(q)];
    JoinRequest request;
    request.arrival = arrival;
    request.spec.r = &workload->r[static_cast<size_t>(r_index)];
    request.spec.s = &workload->s[static_cast<size_t>(s_index)];
    request.method = JoinMethodId::kCdtGh;
    request.memory_blocks = site->memory_blocks();
    request.disk_blocks = site->session_disk_blocks();
    return scheduler.Submit(request);
  };
  std::map<std::uint64_t, int> client_of;
  std::vector<int> sequence(kZipfClients, 0);
  scheduler.set_on_complete([&](const QueryOutcome& out) {
    auto it = client_of.find(out.id);
    TERTIO_CHECK(it != client_of.end(), "outcome for unknown client");
    int client = it->second;
    int next = ++sequence[static_cast<size_t>(client)];
    if (next >= kZipfQueriesPerClient) return;
    auto id = submit(client, next, out.completion);
    TERTIO_CHECK(id.ok(), "zipf submit rejected");
    client_of[*id] = client;
  });
  for (int client = 0; client < kZipfClients; ++client) {
    auto id = submit(client, 0, 0.0);
    TERTIO_CHECK(id.ok(), "zipf submit rejected");
    client_of[*id] = client;
  }
  Status ran = scheduler.Run();
  TERTIO_CHECK(ran.ok(), "zipf service run failed");
  PolicyResult result;
  result.stats = scheduler.service_stats();
  for (const QueryOutcome& out : scheduler.outcomes()) {
    TERTIO_CHECK(out.status.ok(), "zipf query failed");
    result.responses.push_back(out.response_seconds().value());
    result.waits.push_back((out.start - out.arrival).value());
  }
  return result;
}

void ReportZipf(BenchRecorder* recorder, ByteCount cache_bytes, const PolicyResult& result) {
  double p50 = Percentile(result.responses, 0.50);
  double p99 = Percentile(result.responses, 0.99);
  std::printf("zipf cache %4llu MB   p50 %9.1f s   p99 %9.1f s   makespan %9.1f s   "
              "tape read %8llu blk   cached %8llu blk   hits %llu/%llu\n",
              static_cast<unsigned long long>(cache_bytes / kMB), p50, p99,
              result.stats.makespan,
              static_cast<unsigned long long>(result.stats.tape_blocks_read.value()),
              static_cast<unsigned long long>(result.stats.tape_blocks_cached.value()),
              static_cast<unsigned long long>(result.stats.cache_hits),
              static_cast<unsigned long long>(result.stats.cache_hits +
                                              result.stats.cache_misses));
  std::string prefix =
      "zipf_cache_mb_" + std::to_string(cache_bytes / kMB) + "_";
  recorder->RecordMetric(prefix + "p50_seconds", p50);
  recorder->RecordMetric(prefix + "p99_seconds", p99);
  recorder->RecordMetric(prefix + "makespan_seconds", result.stats.makespan.value());
  recorder->RecordMetric(prefix + "tape_blocks_read",
                         static_cast<double>(result.stats.tape_blocks_read.value()));
  recorder->RecordMetric(prefix + "tape_blocks_cached",
                         static_cast<double>(result.stats.tape_blocks_cached.value()));
  recorder->RecordMetric(prefix + "cache_hits",
                         static_cast<double>(result.stats.cache_hits));
  recorder->RecordMetric(prefix + "cache_evictions",
                         static_cast<double>(result.stats.cache_evictions));
}

// --- Concurrent in-flight sweep: policy x max_in_flight ---------------------
//
// The tentpole measurement: a closed loop of joins scattered over several R
// and S cartridges, executed at max_in_flight 1 / 2 / 4 under each policy.
// The site scales with the cap (2 drives and a 1/cap share of memory and
// disk per session) so the sweep isolates what the dispatch loop and the
// robot-scheduling policy add, not raw hardware growth. The library charges
// per-slot arm travel, so the elevator's shorter sweeps are real seconds.

constexpr int kSweepClients = 4;
constexpr int kSweepQueriesPerClient = 3;

SiteConfig SweepSite(int max_in_flight) {
  SiteConfig config;
  config.with_library = true;
  config.drive_count = 2 * max_in_flight;
  config.memory_bytes = 32 * kMB;
  config.disk_space_bytes = 1000 * kMB;
  config.library_model.travel_seconds_per_slot = 1.0;
  return config;
}

ServiceWorkloadConfig SweepLoad() {
  ServiceWorkloadConfig config;
  config.s_cartridges = 4;
  config.s_bytes = 400 * kMB;
  config.r_relations = 8;
  config.r_cartridges = 4;
  config.r_bytes = 12 * kMB;
  config.phantom = true;
  return config;
}

struct SweepResult {
  ServiceStats stats;
  std::vector<double> responses;
  std::vector<double> waits;
};

// Closed loop: kSweepClients clients, each submitting its next query the
// moment its previous one completes. Query index q deterministically picks
// (R_{q mod 8}, S_{q mod 4}), identical across every (policy, cap) cell.
SweepResult RunSweepCell(ServicePolicy policy, int max_in_flight) {
  auto site = std::make_unique<Site>(SweepSite(max_in_flight));
  auto workload = exec::PrepareServiceWorkload(site.get(), SweepLoad());
  TERTIO_CHECK(workload.ok(), "sweep workload setup failed");
  exec::SchedulerOptions options;
  options.max_in_flight = max_in_flight;
  QueryScheduler scheduler(site.get(), policy, options);
  auto submit = [&](int q, SimSeconds arrival) {
    JoinRequest request;
    request.arrival = arrival;
    request.spec.r = &workload->r[static_cast<size_t>(q) % workload->r.size()];
    request.spec.s = &workload->s[static_cast<size_t>(q) % workload->s.size()];
    request.method = JoinMethodId::kCdtGh;
    request.memory_blocks = site->memory_blocks() / max_in_flight;
    request.disk_blocks = site->session_disk_blocks() / max_in_flight;
    return scheduler.Submit(request);
  };
  std::map<std::uint64_t, int> client_of;
  std::vector<int> sequence(kSweepClients, 0);
  scheduler.set_on_complete([&](const QueryOutcome& out) {
    auto it = client_of.find(out.id);
    TERTIO_CHECK(it != client_of.end(), "outcome for unknown client");
    int client = it->second;
    int next = ++sequence[static_cast<size_t>(client)];
    if (next >= kSweepQueriesPerClient) return;
    auto id = submit(client + kSweepClients * next, out.completion);
    TERTIO_CHECK(id.ok(), "sweep submit rejected");
    client_of[*id] = client;
  });
  for (int client = 0; client < kSweepClients; ++client) {
    auto id = submit(client, 0.0);
    TERTIO_CHECK(id.ok(), "sweep submit rejected");
    client_of[*id] = client;
  }
  Status ran = scheduler.Run();
  TERTIO_CHECK(ran.ok(), "sweep service run failed");
  SweepResult result;
  result.stats = scheduler.service_stats();
  for (const QueryOutcome& out : scheduler.outcomes()) {
    TERTIO_CHECK(out.status.ok(), "sweep query failed");
    result.responses.push_back(out.response_seconds().value());
    result.waits.push_back((out.start - out.arrival).value());
  }
  return result;
}

void ReportSweep(BenchRecorder* recorder, const char* policy, int max_in_flight,
                 const SweepResult& result) {
  double p50 = Percentile(result.responses, 0.50);
  double p99 = Percentile(result.responses, 0.99);
  double wait_p50 = Percentile(result.waits, 0.50);
  double wait_p99 = Percentile(result.waits, 0.99);
  std::printf("svc %-9s c%d   makespan %9.1f s   p50 %9.1f s   p99 %9.1f s   "
              "wait p50 %8.1f s   wait p99 %8.1f s   robot %4llu   peak %llu\n",
              policy, max_in_flight, result.stats.makespan, p50, p99, wait_p50, wait_p99,
              static_cast<unsigned long long>(result.stats.robot_exchanges),
              static_cast<unsigned long long>(result.stats.peak_in_flight));
  std::string prefix =
      std::string("svc_") + policy + "_c" + std::to_string(max_in_flight) + "_";
  recorder->RecordMetric(prefix + "makespan_seconds", result.stats.makespan.value());
  recorder->RecordMetric(prefix + "p50_seconds", p50);
  recorder->RecordMetric(prefix + "p99_seconds", p99);
  recorder->RecordMetric(prefix + "wait_p50_seconds", wait_p50);
  recorder->RecordMetric(prefix + "wait_p99_seconds", wait_p99);
  recorder->RecordMetric(prefix + "robot_exchanges",
                         static_cast<double>(result.stats.robot_exchanges));
  recorder->RecordMetric(prefix + "peak_in_flight",
                         static_cast<double>(result.stats.peak_in_flight));
  recorder->RecordMetric(prefix + "tape_blocks_read",
                         static_cast<double>(result.stats.tape_blocks_read.value()));
}

void Report(BenchRecorder* recorder, const char* loop, const char* policy,
            const PolicyResult& result) {
  double p50 = Percentile(result.responses, 0.50);
  double p99 = Percentile(result.responses, 0.99);
  std::printf("%-11s %-11s p50 %9.1f s   p99 %9.1f s   makespan %9.1f s   "
              "tape read %8llu blk   shared %8llu blk   shared-queries %llu\n",
              loop, policy, p50, p99, result.stats.makespan,
              static_cast<unsigned long long>(result.stats.tape_blocks_read.value()),
              static_cast<unsigned long long>(result.stats.tape_blocks_shared.value()),
              static_cast<unsigned long long>(result.stats.scan_shared_queries));
  std::string prefix = std::string(loop) + "_" + policy + "_";
  recorder->RecordMetric(prefix + "p50_seconds", p50);
  recorder->RecordMetric(prefix + "p99_seconds", p99);
  recorder->RecordMetric(prefix + "wait_p50_seconds", Percentile(result.waits, 0.50));
  recorder->RecordMetric(prefix + "wait_p99_seconds", Percentile(result.waits, 0.99));
  recorder->RecordMetric(prefix + "robot_exchanges",
                         static_cast<double>(result.stats.robot_exchanges));
  recorder->RecordMetric(prefix + "makespan_seconds", result.stats.makespan.value());
  recorder->RecordMetric(prefix + "tape_blocks_read",
                         static_cast<double>(result.stats.tape_blocks_read.value()));
  recorder->RecordMetric(prefix + "tape_blocks_shared",
                         static_cast<double>(result.stats.tape_blocks_shared.value()));
  recorder->RecordMetric(prefix + "scan_shared_queries",
                         static_cast<double>(result.stats.scan_shared_queries));
  recorder->RecordSim(prefix + "makespan", result.stats.makespan);
}

int Main(int argc, char** argv) {
  BenchRecorder recorder("bench_query_service", argc, argv);
  Banner("Query service: scan sharing vs FIFO",
         "Section 2 (Postgres/Paradise batching), service-level counterpart",
         "shared scan cuts total tape passes; p99 and makespan drop under load");

  PolicyResult open_fifo = RunOpenLoop(ServicePolicy::kFifo);
  PolicyResult open_shared = RunOpenLoop(ServicePolicy::kSharedScan);
  PolicyResult closed_fifo = RunClosedLoop(ServicePolicy::kFifo);
  PolicyResult closed_shared = RunClosedLoop(ServicePolicy::kSharedScan);

  Report(&recorder, "open", "fifo", open_fifo);
  Report(&recorder, "open", "shared", open_shared);
  Report(&recorder, "closed", "fifo", closed_fifo);
  Report(&recorder, "closed", "shared", closed_shared);

  // The headline numbers: saved physical passes and the p99 improvement
  // under the saturating (closed-loop) load.
  double saved_blocks = static_cast<double>(closed_fifo.stats.tape_blocks_read.value()) -
                        static_cast<double>(closed_shared.stats.tape_blocks_read.value());
  double p99_fifo = Percentile(closed_fifo.responses, 0.99);
  double p99_shared = Percentile(closed_shared.responses, 0.99);
  recorder.RecordMetric("closed_saved_tape_blocks", saved_blocks);
  recorder.RecordMetric("closed_p99_speedup",
                        p99_shared > 0.0 ? p99_fifo / p99_shared : 0.0);
  std::printf("\nclosed loop: sharing saves %.0f tape blocks, p99 %.2fx\n\n", saved_blocks,
              p99_shared > 0.0 ? p99_fifo / p99_shared : 0.0);

  // The concurrency sweep: policy x max_in_flight over a closed loop
  // scattered across 4 R and 4 S cartridges.
  std::printf("\n");
  struct PolicyName {
    ServicePolicy policy;
    const char* name;
  };
  const PolicyName kPolicies[] = {{ServicePolicy::kFifo, "fifo"},
                                  {ServicePolicy::kSharedScan, "shared"},
                                  {ServicePolicy::kElevator, "elevator"}};
  std::map<std::string, SweepResult> cells;
  for (const PolicyName& p : kPolicies) {
    for (int cap : {1, 2, 4}) {
      SweepResult cell = RunSweepCell(p.policy, cap);
      ReportSweep(&recorder, p.name, cap, cell);
      cells.emplace(std::string(p.name) + "_c" + std::to_string(cap), std::move(cell));
    }
  }
  // Headline: concurrent elevator dispatch against the serial FIFO baseline.
  const SweepResult& fifo_c1 = cells.at("fifo_c1");
  const SweepResult& elevator_c4 = cells.at("elevator_c4");
  double sweep_speedup = elevator_c4.stats.makespan > 0.0
                             ? fifo_c1.stats.makespan.value() /
                                   elevator_c4.stats.makespan.value()
                             : 0.0;
  recorder.RecordMetric("svc_elevator_c4_vs_fifo_c1_speedup", sweep_speedup);
  recorder.RecordMetric(
      "svc_elevator_c1_robot_exchange_savings",
      static_cast<double>(cells.at("fifo_c1").stats.robot_exchanges) -
          static_cast<double>(cells.at("elevator_c1").stats.robot_exchanges));
  std::printf("\nconcurrency sweep: elevator@c4 makespan %.2fx vs serial fifo, "
              "elevator@c1 saves %llu robot trips\n",
              sweep_speedup,
              static_cast<unsigned long long>(
                  cells.at("fifo_c1").stats.robot_exchanges -
                  cells.at("elevator_c1").stats.robot_exchanges));

  // The extent-cache sweep: cache sizes in multiples of one S relation
  // (80 MB), from disabled to "all four cartridges fit".
  const ByteCount s_bytes = ZipfLoad().s_bytes;
  const ByteCount kSweep[] = {0, s_bytes / 2, s_bytes, 2 * s_bytes, 4 * s_bytes};
  SiteConfig zipf_site = ZipfSite(0);
  std::vector<PolicyResult> sweep;
  for (ByteCount cache_bytes : kSweep) {
    sweep.push_back(RunZipfLoop(BytesToBlocks(cache_bytes, zipf_site.block_bytes)));
    ReportZipf(&recorder, cache_bytes, sweep.back());
  }

  // Headlines: the warm-cache tape-traffic drop and p99 speedup of the
  // largest cache against the cache-less baseline.
  const PolicyResult& cold = sweep.front();
  const PolicyResult& warm = sweep.back();
  double tape_drop = warm.stats.tape_blocks_read > 0
                         ? static_cast<double>(cold.stats.tape_blocks_read.value()) /
                               static_cast<double>(warm.stats.tape_blocks_read.value())
                         : 0.0;
  double p99_cold = Percentile(cold.responses, 0.99);
  double p99_warm = Percentile(warm.responses, 0.99);
  recorder.RecordMetric("zipf_tape_block_drop", tape_drop);
  recorder.RecordMetric("zipf_p99_speedup", p99_warm > 0.0 ? p99_cold / p99_warm : 0.0);
  std::printf("\nzipf closed loop: warm cache cuts tape blocks %.2fx, p99 %.2fx\n",
              tape_drop, p99_warm > 0.0 ? p99_cold / p99_warm : 0.0);
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Main(argc, argv); }
