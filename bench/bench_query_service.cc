// Multi-query join service: scan sharing vs FIFO under open- and
// closed-loop arrivals.
//
// The paper's related work (Section 2) credits Postgres and Paradise with
// batching queries against the same tape to save passes. bench_query_service
// measures the service-level version of that idea: a stream of joins whose
// outer relations live on a few library cartridges, executed by
// exec::QueryScheduler either FIFO (every query pays its own S pass) or with
// scan sharing (queued joins on an already-swept cartridge ride the leader's
// pass). Reported per policy: p50/p99 response time, makespan, and physical
// vs multicast tape blocks.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "exec/query_scheduler.h"
#include "exec/service_workload.h"
#include "exec/site.h"

namespace tertio::bench {
namespace {

using exec::JoinRequest;
using exec::QueryOutcome;
using exec::QueryScheduler;
using exec::ServicePolicy;
using exec::ServiceStats;
using exec::ServiceWorkload;
using exec::ServiceWorkloadConfig;
using exec::Site;
using exec::SiteConfig;

constexpr int kOpenLoopQueries = 12;
constexpr double kOpenLoopInterarrival = 600.0;  // seconds of virtual time
constexpr int kClosedLoopClients = 3;
constexpr int kClosedLoopQueriesPerClient = 4;

SiteConfig ServiceSite() {
  SiteConfig config;
  config.disk_space_bytes = 500 * kMB;
  config.memory_bytes = 16 * kMB;
  config.with_library = true;
  return config;
}

ServiceWorkloadConfig ServiceLoad() {
  ServiceWorkloadConfig config;
  config.s_cartridges = 2;
  config.s_bytes = 1000 * kMB;
  config.r_relations = 6;
  config.r_bytes = 18 * kMB;
  config.phantom = true;
  return config;
}

JoinRequest MakeRequest(Site* site, const ServiceWorkload& workload, int query_index,
                        SimSeconds arrival) {
  JoinRequest request;
  request.arrival = arrival;
  request.spec.r = &workload.r[static_cast<size_t>(query_index) % workload.r.size()];
  request.spec.s = &workload.s[static_cast<size_t>(query_index) % workload.s.size()];
  request.method = JoinMethodId::kCdtGh;
  request.memory_blocks = site->memory_blocks();
  request.disk_blocks = site->disk_blocks();
  return request;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  auto rank = static_cast<std::size_t>(p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

struct PolicyResult {
  ServiceStats stats;
  std::vector<double> responses;
};

// Fixed arrival schedule; every query is submitted up front.
PolicyResult RunOpenLoop(ServicePolicy policy) {
  auto site = std::make_unique<Site>(ServiceSite());
  auto workload = exec::PrepareServiceWorkload(site.get(), ServiceLoad());
  TERTIO_CHECK(workload.ok(), "service workload setup failed");
  QueryScheduler scheduler(site.get(), policy);
  for (int q = 0; q < kOpenLoopQueries; ++q) {
    auto id = scheduler.Submit(
        MakeRequest(site.get(), *workload, q, static_cast<double>(q) * kOpenLoopInterarrival));
    TERTIO_CHECK(id.ok(), "open-loop submit rejected");
  }
  Status ran = scheduler.Run();
  TERTIO_CHECK(ran.ok(), "service run failed");
  PolicyResult result;
  result.stats = scheduler.service_stats();
  for (const QueryOutcome& out : scheduler.outcomes()) {
    TERTIO_CHECK(out.status.ok(), "open-loop query failed");
    result.responses.push_back(out.response_seconds());
  }
  return result;
}

// N clients, each submitting its next query the moment its previous one
// completes (think time zero).
PolicyResult RunClosedLoop(ServicePolicy policy) {
  auto site = std::make_unique<Site>(ServiceSite());
  auto workload = exec::PrepareServiceWorkload(site.get(), ServiceLoad());
  TERTIO_CHECK(workload.ok(), "service workload setup failed");
  QueryScheduler scheduler(site.get(), policy);
  std::map<std::uint64_t, int> client_of;
  std::vector<int> remaining(kClosedLoopClients, kClosedLoopQueriesPerClient - 1);
  std::vector<int> sequence(kClosedLoopClients, 0);
  scheduler.set_on_complete([&](const QueryOutcome& out) {
    auto it = client_of.find(out.id);
    TERTIO_CHECK(it != client_of.end(), "outcome for unknown client");
    int client = it->second;
    if (remaining[static_cast<size_t>(client)]-- <= 0) return;
    int q = client + kClosedLoopClients * ++sequence[static_cast<size_t>(client)];
    auto id = scheduler.Submit(MakeRequest(site.get(), *workload, q, out.completion));
    TERTIO_CHECK(id.ok(), "closed-loop submit rejected");
    client_of[*id] = client;
  });
  for (int client = 0; client < kClosedLoopClients; ++client) {
    auto id = scheduler.Submit(MakeRequest(site.get(), *workload, client, 0.0));
    TERTIO_CHECK(id.ok(), "closed-loop submit rejected");
    client_of[*id] = client;
  }
  Status ran = scheduler.Run();
  TERTIO_CHECK(ran.ok(), "service run failed");
  PolicyResult result;
  result.stats = scheduler.service_stats();
  for (const QueryOutcome& out : scheduler.outcomes()) {
    TERTIO_CHECK(out.status.ok(), "closed-loop query failed");
    result.responses.push_back(out.response_seconds());
  }
  return result;
}

void Report(BenchRecorder* recorder, const char* loop, const char* policy,
            const PolicyResult& result) {
  double p50 = Percentile(result.responses, 0.50);
  double p99 = Percentile(result.responses, 0.99);
  std::printf("%-11s %-11s p50 %9.1f s   p99 %9.1f s   makespan %9.1f s   "
              "tape read %8llu blk   shared %8llu blk   shared-queries %llu\n",
              loop, policy, p50, p99, result.stats.makespan,
              static_cast<unsigned long long>(result.stats.tape_blocks_read),
              static_cast<unsigned long long>(result.stats.tape_blocks_shared),
              static_cast<unsigned long long>(result.stats.scan_shared_queries));
  std::string prefix = std::string(loop) + "_" + policy + "_";
  recorder->RecordMetric(prefix + "p50_seconds", p50);
  recorder->RecordMetric(prefix + "p99_seconds", p99);
  recorder->RecordMetric(prefix + "makespan_seconds", result.stats.makespan);
  recorder->RecordMetric(prefix + "tape_blocks_read",
                         static_cast<double>(result.stats.tape_blocks_read));
  recorder->RecordMetric(prefix + "tape_blocks_shared",
                         static_cast<double>(result.stats.tape_blocks_shared));
  recorder->RecordMetric(prefix + "scan_shared_queries",
                         static_cast<double>(result.stats.scan_shared_queries));
  recorder->RecordSim(prefix + "makespan", result.stats.makespan);
}

int Main(int argc, char** argv) {
  BenchRecorder recorder("bench_query_service", argc, argv);
  Banner("Query service: scan sharing vs FIFO",
         "Section 2 (Postgres/Paradise batching), service-level counterpart",
         "shared scan cuts total tape passes; p99 and makespan drop under load");

  PolicyResult open_fifo = RunOpenLoop(ServicePolicy::kFifo);
  PolicyResult open_shared = RunOpenLoop(ServicePolicy::kSharedScan);
  PolicyResult closed_fifo = RunClosedLoop(ServicePolicy::kFifo);
  PolicyResult closed_shared = RunClosedLoop(ServicePolicy::kSharedScan);

  Report(&recorder, "open", "fifo", open_fifo);
  Report(&recorder, "open", "shared", open_shared);
  Report(&recorder, "closed", "fifo", closed_fifo);
  Report(&recorder, "closed", "shared", closed_shared);

  // The headline numbers: saved physical passes and the p99 improvement
  // under the saturating (closed-loop) load.
  double saved_blocks = static_cast<double>(closed_fifo.stats.tape_blocks_read) -
                        static_cast<double>(closed_shared.stats.tape_blocks_read);
  double p99_fifo = Percentile(closed_fifo.responses, 0.99);
  double p99_shared = Percentile(closed_shared.responses, 0.99);
  recorder.RecordMetric("closed_saved_tape_blocks", saved_blocks);
  recorder.RecordMetric("closed_p99_speedup",
                        p99_shared > 0.0 ? p99_fifo / p99_shared : 0.0);
  std::printf("\nclosed loop: sharing saves %.0f tape blocks, p99 %.2fx\n", saved_blocks,
              p99_shared > 0.0 ? p99_fifo / p99_shared : 0.0);
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Main(argc, argv); }
