#pragma once

/// \file analytical_common.h
/// Shared sweep for Figures 1–3: expected response time of all seven
/// methods, relative to the tape read time of S, as |R|/M varies with
/// |S| = 10|R|, D = 32M, X_D = 2X_T (Section 5.3's exact setup).

#include <cmath>
#include <vector>

#include "bench/bench_util.h"

namespace tertio::bench {

/// Sweeps the cost model over the given |R|/M values, prints the
/// relative-response series, and records each method's absolute estimated
/// seconds into the bench record. \returns the recorder's exit code.
inline int RunAnalyticalSweep(const char* bench_name, const std::vector<double>& r_over_m,
                              int argc, char** argv) {
  // Section 5.3 is a pure transfer-only analysis; concrete scales cancel in
  // the relative metric. M = 2,000 blocks keeps all ratios integral.
  constexpr BlockCount kM = 2000;
  constexpr BytesPerSecond kTapeRate = 1.5e6;

  BenchRecorder recorder(bench_name, argc, argv);

  struct Row {
    SimSeconds optimum = 0.0;
    std::vector<Result<cost::CostBreakdown>> estimates;
  };
  std::vector<Row> rows = exec::ParallelSweep(
      r_over_m,
      [&](double x) {
        cost::CostParams params;
        params.r_blocks =
            static_cast<std::uint64_t>(x * static_cast<double>(kM.value()));
        params.s_blocks = 10 * params.r_blocks;
        params.memory_blocks = kM;
        params.disk_blocks = 32 * kM;
        params.tape_rate_bps = kTapeRate;
        params.disk_rate_bps = 2.0 * kTapeRate.value();  // X_D = 2 X_T
        params.disk_positioning_seconds = 0.0;   // the paper's transfer-only model
        Row row;
        row.optimum = cost::OptimumJoinSeconds(params);
        for (JoinMethodId method : kAllJoinMethods) {
          row.estimates.push_back(cost::Estimate(method, params));
        }
        return row;
      },
      recorder.threads());

  std::vector<std::string> labels;
  for (JoinMethodId method : kAllJoinMethods) {
    labels.emplace_back(JoinMethodName(method));
  }
  exec::SeriesReport series("|R|/M", labels);
  for (std::size_t i = 0; i < r_over_m.size(); ++i) {
    std::vector<double> values;
    for (std::size_t m = 0; m < rows[i].estimates.size(); ++m) {
      const auto& estimate = rows[i].estimates[m];
      values.push_back(estimate.ok() ? estimate->total_seconds / rows[i].optimum
                                     : std::nan(""));
      recorder.RecordSim(
          StrFormat("R/M=%g/%s", r_over_m[i],
                    std::string(JoinMethodName(kAllJoinMethods[m])).c_str()),
          estimate.ok() ? estimate->total_seconds
                        : SimSeconds(std::numeric_limits<double>::quiet_NaN()));
    }
    series.AddPoint(r_over_m[i], values);
  }
  series.Print();
  return recorder.Finish();
}

}  // namespace tertio::bench
