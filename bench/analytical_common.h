#pragma once

/// \file analytical_common.h
/// Shared sweep for Figures 1–3: expected response time of all seven
/// methods, relative to the tape read time of S, as |R|/M varies with
/// |S| = 10|R|, D = 32M, X_D = 2X_T (Section 5.3's exact setup).

#include <cmath>
#include <vector>

#include "bench/bench_util.h"

namespace tertio::bench {

/// Prints the relative-response series over the given |R|/M values.
inline void RunAnalyticalSweep(const std::vector<double>& r_over_m) {
  // Section 5.3 is a pure transfer-only analysis; concrete scales cancel in
  // the relative metric. M = 2,000 blocks keeps all ratios integral.
  constexpr BlockCount kM = 2000;
  constexpr double kTapeRate = 1.5e6;

  std::vector<std::string> labels;
  for (JoinMethodId method : kAllJoinMethods) {
    labels.emplace_back(JoinMethodName(method));
  }
  exec::SeriesReport series("|R|/M", labels);
  for (double x : r_over_m) {
    cost::CostParams params;
    params.r_blocks = static_cast<BlockCount>(x * kM);
    params.s_blocks = 10 * params.r_blocks;
    params.memory_blocks = kM;
    params.disk_blocks = 32 * kM;
    params.tape_rate_bps = kTapeRate;
    params.disk_rate_bps = 2.0 * kTapeRate;  // X_D = 2 X_T
    params.disk_positioning_seconds = 0.0;   // the paper's transfer-only model
    double optimum = cost::OptimumJoinSeconds(params);
    std::vector<double> values;
    for (JoinMethodId method : kAllJoinMethods) {
      auto estimate = cost::Estimate(method, params);
      values.push_back(estimate.ok() ? estimate->total_seconds / optimum
                                     : std::nan(""));
    }
    series.AddPoint(x, values);
  }
  series.Print();
}

}  // namespace tertio::bench
