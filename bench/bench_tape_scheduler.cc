/// \file bench_tape_scheduler.cc
/// Tape request scheduling (the paper's Section 2 related work): Postgres
/// and Paradise improve tape efficiency by batching and reordering the I/O
/// references of pre-executed queries. This harness quantifies that effect
/// on the tertio drive model: batches of random block-range reads executed
/// FIFO vs sorted vs elevator.

#include "bench/bench_util.h"
#include "tape/tape_scheduler.h"
#include "util/rng.h"

namespace tertio::bench {
namespace {

int Run() {
  Banner("Tape I/O scheduling — FIFO vs sorted vs elevator batches",
         "Section 2 (Postgres [15,16] / Paradise [19] reordering)",
         "reordering cuts repositioning and response by a large factor");
  constexpr BlockCount kTapeBlocks = 2'500'000;  // a full ~20 GB cartridge
  constexpr int kRequests = 64;
  constexpr BlockCount kRequestBlocks = 128;  // 1 MB subquery reads

  exec::TableReport table(
      {"policy", "batch", "response (s)", "repositions", "vs FIFO"});
  struct PolicyRow {
    const char* name;
    tape::SchedulePolicy policy;
  } policies[] = {{"FIFO", tape::SchedulePolicy::kFifo},
                  {"sorted", tape::SchedulePolicy::kSortedAscending},
                  {"elevator", tape::SchedulePolicy::kElevator}};

  for (int batch : {8, 64}) {
    double fifo_response = 0.0;
    for (const PolicyRow& row : policies) {
      sim::Simulation sim;
      tape::TapeVolume volume("archive", kDefaultBlockBytes);
      TERTIO_CHECK(volume.AppendPhantom(kTapeBlocks, kBaseCompressibility).ok(), "setup");
      tape::TapeDrive drive("drv", tape::TapeDriveModel::DLT4000(),
                            sim.CreateResource("tape"));
      TERTIO_CHECK(drive.Load(&volume, 0.0).ok(), "load");
      tape::TapeScheduler scheduler(&drive, row.policy);

      Rng rng(4242);
      SimSeconds cursor = 0.0;
      for (int issued = 0; issued < kRequests;) {
        for (int i = 0; i < batch && issued < kRequests; ++i, ++issued) {
          BlockIndex start = rng.NextBelow((kTapeBlocks - kRequestBlocks).value());
          scheduler.Submit({static_cast<std::uint64_t>(issued), start, kRequestBlocks});
        }
        auto done = scheduler.ExecuteBatch(cursor);
        TERTIO_CHECK(done.ok(), done.status.ToString());
        cursor = done.completions.back().interval.end;
      }
      if (row.policy == tape::SchedulePolicy::kFifo) fifo_response = cursor.value();
      table.AddRow({row.name, StrFormat("%d", batch), StrFormat("%.0f", cursor),
                    StrFormat("%llu", (unsigned long long)drive.stats().reposition_count),
                    StrFormat("%.2fx", fifo_response > 0 ? cursor / fifo_response : 1.0)});
    }
  }
  table.Print();
  std::printf(
      "\nLarger batches give the scheduler more to reorder — the mechanism\n"
      "behind Paradise's pre-execution batching. The tertio join methods do\n"
      "not need it (their tape access is sequential by construction).\n");
  return 0;
}

}  // namespace
}  // namespace tertio::bench

int main() { return tertio::bench::Run(); }
