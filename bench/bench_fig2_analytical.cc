/// \file bench_fig2_analytical.cc
/// Reproduces Figure 2: expected relative response for medium |R| — |R|/M in
/// [5, 35], |R| approaching D (= 32M). As |R| -> D the disk-tape hash
/// methods lose S-buffer space and blow up; TT-GH's setup cost rules it out;
/// CTT-GH stays largely unaffected.

#include "bench/analytical_common.h"

int main(int argc, char** argv) {
  tertio::bench::Banner("Figure 2 — analytical response, medium |R| (|R|/M in [5,35])",
                        "Section 5.3, Figure 2",
                        "DT-GH/CDT-GH explode as |R| -> D (=32M); CTT-GH flat");
  return tertio::bench::RunAnalyticalSweep(
      "fig2_analytical", {5, 8, 11, 14, 17, 20, 23, 26, 29, 31, 32, 33, 35}, argc, argv);
}
