/// \file bench_fig4_disk_utilization.cc
/// Reproduces Figure 4: disk space utilization during Step II of CTT-GH
/// (Join III of Table 3: |S| = 5,000 MB, |R| = 2,500 MB, D = 500 MB,
/// M = 16 MB).
///
/// The paper's figure shows a shark-toothed line for the even-numbered
/// iterations' buffer usage, the odd iterations filling the space between,
/// and total utilization at or near 100% — the signature of interleaved
/// double-buffering (one shared physical buffer, two logical buffers).

#include <algorithm>

#include "bench/bench_util.h"
#include "disk/allocator.h"

namespace tertio::bench {
namespace {

int Run(int argc, char** argv) {
  BenchRecorder recorder("fig4_disk_utilization", argc, argv);
  Banner("Figure 4 — disk space utilization in CTT-GH Step II (Join III)",
         "Section 7, Figure 4",
         "even/odd iteration usage alternates (shark teeth); total ~100%");
  exec::MachineConfig config = exec::MachineConfig::PaperTestbed(500 * kMB, 16 * kMB);
  exec::Machine machine(config);
  machine.disks().allocator().EnableTrace();

  exec::WorkloadConfig workload;
  workload.r_bytes = 2500 * kMB;
  workload.s_bytes = 5000 * kMB;
  workload.compressibility = kBaseCompressibility;
  workload.phantom = true;
  auto prepared = exec::PrepareWorkload(&machine, workload);
  TERTIO_CHECK(prepared.ok(), "workload setup failed");
  join::JoinSpec spec;
  spec.r = &prepared->r;
  spec.s = &prepared->s;
  auto executor = join::CreateJoinMethod(JoinMethodId::kCttGh);
  join::JoinContext ctx = machine.context();
  auto stats = executor->Execute(spec, ctx);
  TERTIO_CHECK(stats.ok(), stats.status().ToString());
  recorder.RecordSim("CTT-GH Join III", stats->response_seconds);

  // Replay the allocator trace over the Step II window, tracking usage by
  // iteration parity. Events are recorded in issue order; the virtual-time
  // overlap of the two logical buffers requires sorting by timestamp.
  std::vector<disk::UsageEvent> trace = machine.disks().allocator().trace();
  std::stable_sort(trace.begin(), trace.end(),
                   [](const disk::UsageEvent& a, const disk::UsageEvent& b) {
                     return a.time < b.time;
                   });
  BlockCount capacity = machine.disks().allocator().capacity_blocks();
  SimSeconds t_begin = stats->step1_seconds;
  SimSeconds t_end = stats->response_seconds;
  const int kSamples = 32;

  exec::SeriesReport series("time (s)", {"even-iter (MB)", "odd-iter (MB)", "total util (%)"});
  std::int64_t even = 0, odd = 0;
  size_t cursor = 0;
  double mean_util = 0.0;
  int counted = 0;
  for (int sample = 1; sample <= kSamples; ++sample) {
    SimSeconds t = t_begin + (t_end - t_begin) * sample / kSamples;
    while (cursor < trace.size() && trace[cursor].time <= t) {
      const disk::UsageEvent& event = trace[cursor];
      if (event.tag == "S-iter-even") even += event.delta_blocks;
      if (event.tag == "S-iter-odd") odd += event.delta_blocks;
      ++cursor;
    }
    double total_pct = 100.0 * static_cast<double>(even + odd) / static_cast<double>(capacity.value());
    series.AddPoint(
        t.value(), {static_cast<double>(
                BlocksToBytes(static_cast<BlockCount>(even), kDefaultBlockBytes).value()) /
                static_cast<double>(kMB.value()),
            static_cast<double>(
                BlocksToBytes(static_cast<BlockCount>(odd), kDefaultBlockBytes).value()) /
                static_cast<double>(kMB.value()),
            total_pct});
    // Skip warm-up and drain when judging steady-state utilization.
    if (sample > 2 && sample < kSamples - 1) {
      mean_util += total_pct;
      ++counted;
    }
  }
  series.Print(1);
  std::printf("\nSteady-state mean total utilization: %.1f%% (paper: at or near 100%%)\n",
              counted > 0 ? mean_util / counted : 0.0);
  recorder.RecordMetric("steady_state_mean_utilization_pct",
                        counted > 0 ? mean_util / counted : 0.0);
  return recorder.Finish();
}

}  // namespace
}  // namespace tertio::bench

int main(int argc, char** argv) { return tertio::bench::Run(argc, argv); }
