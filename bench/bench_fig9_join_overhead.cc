/// \file bench_fig9_join_overhead.cc
/// Reproduces Figure 9: relative join overhead vs memory size at the base
/// tape speed (25%-compressible data). The paper's CDT-GH bottoms out
/// around 40% overhead; CDT-NB/MB approaches the optimum at large M.

#include "bench/overhead_common.h"

int main(int argc, char** argv) {
  return tertio::bench::RunOverheadFigure(
      "fig9_join_overhead",
      "Figure 9 — relative join overhead (base tape speed, 25% compressible)",
      "Section 9, Figure 9", "CDT-GH lowest at small/medium M; NB best at large M",
      /*compressibility=*/0.25, argc, argv);
}
