/// \file bench_fig10_slow_tape.cc
/// Reproduces Figure 10: relative join overhead with a slower tape drive
/// (0%-compressible data). Concurrent methods are disk-bound, so their
/// absolute response is unchanged while the optimum grows — overhead falls
/// (paper: CDT-GH from ~40% to ~10%).

#include "bench/overhead_common.h"

int main(int argc, char** argv) {
  return tertio::bench::RunOverheadFigure(
      "fig10_slow_tape",
      "Figure 10 — relative join overhead, slower tape (0% compressible)",
      "Section 9, Figure 10",
      "overheads fall vs Figure 9; concurrent methods fall the most",
      /*compressibility=*/0.0, argc, argv);
}
