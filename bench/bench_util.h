#pragma once

/// \file bench_util.h
/// Shared scaffolding for the paper-reproduction harnesses.
///
/// Every bench binary reproduces one table or figure of the paper at the
/// paper's own parameters, in timing-only (phantom) mode: blocks are
/// accounted and devices charge virtual time, but no tuple bytes move, so a
/// 10 GB join runs in seconds of wall-clock.

#include <cstdio>
#include <string>

#include "cost/cost_model.h"
#include "exec/experiment.h"
#include "exec/machine.h"
#include "exec/report.h"
#include "join/join_method.h"
#include "util/string_util.h"

namespace tertio::bench {

/// The paper's base data compressibility. Section 6 enables drive
/// compression on synthetic data; Experiment 3's base run uses
/// 25%-compressible data, which we adopt everywhere unless a figure varies
/// it (Figures 10/11 use 0% and 50%).
inline constexpr double kBaseCompressibility = 0.25;

/// Prints the bench banner.
inline void Banner(const char* experiment, const char* paper_ref, const char* expectation) {
  std::printf("=============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper: %s\n", paper_ref);
  std::printf("Expected shape: %s\n", expectation);
  std::printf("=============================================================\n");
}

/// Runs a phantom (timing-only) join at paper scale; aborts the bench on
/// setup errors, returns an errored Result for per-point infeasibility.
inline Result<join::JoinStats> RunPaperJoin(ByteCount s_bytes, ByteCount r_bytes,
                                            ByteCount disk_bytes, ByteCount memory_bytes,
                                            JoinMethodId method,
                                            double compressibility = kBaseCompressibility) {
  exec::MachineConfig machine = exec::MachineConfig::PaperTestbed(disk_bytes, memory_bytes);
  exec::WorkloadConfig workload;
  workload.r_bytes = r_bytes;
  workload.s_bytes = s_bytes;
  workload.compressibility = compressibility;
  workload.phantom = true;
  return exec::RunJoinExperiment(machine, workload, method);
}

/// Bare sequential read time of both relations on one drive after the other
/// (Table 3's "Read S + R" column).
inline SimSeconds BareReadSeconds(ByteCount s_bytes, ByteCount r_bytes, double compressibility,
                                  const tape::TapeDriveModel& model) {
  return model.TransferSeconds(s_bytes, compressibility) +
         model.TransferSeconds(r_bytes, compressibility);
}

}  // namespace tertio::bench
