#pragma once

/// \file bench_util.h
/// Shared scaffolding for the paper-reproduction harnesses.
///
/// Every bench binary reproduces one table or figure of the paper at the
/// paper's own parameters, in timing-only (phantom) mode: blocks are
/// accounted and devices charge virtual time, but no tuple bytes move, so a
/// 10 GB join runs in seconds of wall-clock.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "cost/cost_model.h"
#include "exec/experiment.h"
#include "exec/machine.h"
#include "exec/parallel_sweep.h"
#include "exec/report.h"
#include "join/join_method.h"
#include "util/bench_json.h"
#include "util/string_util.h"

namespace tertio::bench {

/// Path the bench records merge into: $TERTIO_BENCH_JSON, else
/// BENCH_joins.json in the working directory.
inline std::string BenchJsonPath() {
  const char* env = std::getenv("TERTIO_BENCH_JSON");
  return env != nullptr && *env != '\0' ? env : "BENCH_joins.json";
}

/// Per-binary record of one bench invocation: wall-clock, worker count, the
/// simulated seconds of every join the bench ran, and free-form metrics
/// (tuples/sec and the like). Finish() merges the record into
/// BENCH_joins.json so the whole suite accumulates one machine-readable
/// perf file (see EXPERIMENTS.md for the schema).
class BenchRecorder {
 public:
  /// Parses --threads=N from argv (0 = all hardware threads).
  BenchRecorder(std::string name, int argc, char** argv)
      : name_(std::move(name)),
        threads_(exec::EffectiveSweepThreads(exec::ParseSweepThreads(argc, argv))),
        start_(std::chrono::steady_clock::now()) {}

  /// Worker count the bench's ParallelSweep calls should use.
  int threads() const { return threads_; }

  /// Records the simulated response time of one join run.
  void RecordSim(const std::string& label, SimSeconds sim_seconds) {
    runs_.emplace_back(label, sim_seconds.value());
  }

  /// Records a run that may have been infeasible; errors record null.
  void RecordJoin(const std::string& label, const Result<join::JoinStats>& stats) {
    RecordSim(label, stats.ok() ? stats->response_seconds
                                : std::numeric_limits<double>::quiet_NaN());
  }

  /// Records a named scalar (throughputs, speedups, ...).
  void RecordMetric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Writes the record. \returns 0 on success (bench main's exit code).
  int Finish() {
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    std::string json = "{ \"name\": \"" + JsonEscape(name_) + "\",\n";
    json += "      \"wall_seconds\": " + JsonNumber(wall) + ",\n";
    json += "      \"threads\": " + std::to_string(threads_) + ",\n";
    json += "      \"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      if (i != 0) json += ",";
      json += "\n        { \"label\": \"" + JsonEscape(runs_[i].first) +
              "\", \"sim_seconds\": " + JsonNumber(runs_[i].second) + " }";
    }
    json += runs_.empty() ? "],\n" : "\n      ],\n";
    json += "      \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i != 0) json += ",";
      json += "\n        \"" + JsonEscape(metrics_[i].first) +
              "\": " + JsonNumber(metrics_[i].second);
    }
    json += metrics_.empty() ? "} }" : "\n      } }";
    Status status = MergeBenchRecord(BenchJsonPath(), name_, json);
    if (!status.ok()) {
      std::fprintf(stderr, "bench record write failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("\n[%s] wall %.2f s, %d thread%s -> %s\n", name_.c_str(), wall, threads_,
                threads_ == 1 ? "" : "s", BenchJsonPath().c_str());
    return 0;
  }

 private:
  std::string name_;
  int threads_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> runs_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// The paper's base data compressibility. Section 6 enables drive
/// compression on synthetic data; Experiment 3's base run uses
/// 25%-compressible data, which we adopt everywhere unless a figure varies
/// it (Figures 10/11 use 0% and 50%).
inline constexpr double kBaseCompressibility = 0.25;

/// Prints the bench banner.
inline void Banner(const char* experiment, const char* paper_ref, const char* expectation) {
  std::printf("=============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper: %s\n", paper_ref);
  std::printf("Expected shape: %s\n", expectation);
  std::printf("=============================================================\n");
}

/// Runs a phantom (timing-only) join at paper scale; aborts the bench on
/// setup errors, returns an errored Result for per-point infeasibility.
inline Result<join::JoinStats> RunPaperJoin(ByteCount s_bytes, ByteCount r_bytes,
                                            ByteCount disk_bytes, ByteCount memory_bytes,
                                            JoinMethodId method,
                                            double compressibility = kBaseCompressibility,
                                            bool closed_form_commit = true) {
  exec::MachineConfig machine = exec::MachineConfig::PaperTestbed(disk_bytes, memory_bytes);
  exec::WorkloadConfig workload;
  workload.r_bytes = r_bytes;
  workload.s_bytes = s_bytes;
  workload.compressibility = compressibility;
  workload.phantom = true;
  workload.closed_form_commit = closed_form_commit;
  return exec::RunJoinExperiment(machine, workload, method);
}

/// Bare sequential read time of both relations on one drive after the other
/// (Table 3's "Read S + R" column).
inline SimSeconds BareReadSeconds(ByteCount s_bytes, ByteCount r_bytes, double compressibility,
                                  const tape::TapeDriveModel& model) {
  return model.TransferSeconds(s_bytes, compressibility) +
         model.TransferSeconds(r_bytes, compressibility);
}

}  // namespace tertio::bench
