#include "query/expr.h"

#include "util/string_util.h"

namespace tertio::query {

std::unique_ptr<Expr> Expr::MakeColumn(std::size_t index) {
  auto expr = std::unique_ptr<Expr>(new Expr(ExprKind::kColumn));
  expr->column_ = index;
  return expr;
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value value) {
  auto expr = std::unique_ptr<Expr>(new Expr(ExprKind::kLiteral));
  expr->literal_ = std::move(value);
  return expr;
}

std::unique_ptr<Expr> Expr::MakeBinary(ExprKind kind, std::unique_ptr<Expr> lhs,
                                       std::unique_ptr<Expr> rhs) {
  TERTIO_CHECK(lhs != nullptr && rhs != nullptr, "binary expression requires two operands");
  auto expr = std::unique_ptr<Expr>(new Expr(kind));
  expr->children_.push_back(std::move(lhs));
  expr->children_.push_back(std::move(rhs));
  return expr;
}

std::unique_ptr<Expr> Expr::MakeNot(std::unique_ptr<Expr> operand) {
  TERTIO_CHECK(operand != nullptr, "NOT requires an operand");
  auto expr = std::unique_ptr<Expr>(new Expr(ExprKind::kNot));
  expr->children_.push_back(std::move(operand));
  return expr;
}

namespace {

Result<bool> AsBool(const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) return *i != 0;
  return Status::InvalidArgument("boolean context requires an integer value");
}

/// Compares two values; mixed int/double comparisons promote to double.
Result<int> Compare(const Value& a, const Value& b) {
  const bool a_str = std::holds_alternative<std::string>(a);
  const bool b_str = std::holds_alternative<std::string>(b);
  if (a_str != b_str) {
    return Status::InvalidArgument("cannot compare a string with a number");
  }
  if (a_str) {
    const auto& sa = std::get<std::string>(a);
    const auto& sb = std::get<std::string>(b);
    return sa < sb ? -1 : (sa == sb ? 0 : 1);
  }
  TERTIO_ASSIGN_OR_RETURN(double da, ValueAsDouble(a));
  TERTIO_ASSIGN_OR_RETURN(double db, ValueAsDouble(b));
  return da < db ? -1 : (da == db ? 0 : 1);
}

Result<Value> Arithmetic(ExprKind kind, const Value& a, const Value& b) {
  // Integer op integer stays integral; anything else promotes to double.
  if (std::holds_alternative<std::int64_t>(a) && std::holds_alternative<std::int64_t>(b)) {
    std::int64_t x = std::get<std::int64_t>(a);
    std::int64_t y = std::get<std::int64_t>(b);
    switch (kind) {
      case ExprKind::kAdd:
        return Value{x + y};
      case ExprKind::kSub:
        return Value{x - y};
      case ExprKind::kMul:
        return Value{x * y};
      default:
        break;
    }
  }
  TERTIO_ASSIGN_OR_RETURN(double x, ValueAsDouble(a));
  TERTIO_ASSIGN_OR_RETURN(double y, ValueAsDouble(b));
  switch (kind) {
    case ExprKind::kAdd:
      return Value{x + y};
    case ExprKind::kSub:
      return Value{x - y};
    case ExprKind::kMul:
      return Value{x * y};
    default:
      return Status::Internal("non-arithmetic kind in Arithmetic");
  }
}

}  // namespace

Result<Value> Expr::Eval(const Row& row) const {
  switch (kind_) {
    case ExprKind::kColumn:
      if (column_ >= row.values.size()) {
        return Status::InvalidArgument(
            StrFormat("column %zu out of range (row has %zu columns)", column_,
                      row.values.size()));
      }
      return row.values[column_];
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kEq:
    case ExprKind::kNe:
    case ExprKind::kLt:
    case ExprKind::kLe:
    case ExprKind::kGt:
    case ExprKind::kGe: {
      TERTIO_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(row));
      TERTIO_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(row));
      TERTIO_ASSIGN_OR_RETURN(int cmp, Compare(lhs, rhs));
      bool result = false;
      switch (kind_) {
        case ExprKind::kEq:
          result = cmp == 0;
          break;
        case ExprKind::kNe:
          result = cmp != 0;
          break;
        case ExprKind::kLt:
          result = cmp < 0;
          break;
        case ExprKind::kLe:
          result = cmp <= 0;
          break;
        case ExprKind::kGt:
          result = cmp > 0;
          break;
        case ExprKind::kGe:
          result = cmp >= 0;
          break;
        default:
          break;
      }
      return Value{static_cast<std::int64_t>(result)};
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      TERTIO_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(row));
      TERTIO_ASSIGN_OR_RETURN(bool lb, AsBool(lhs));
      // Short-circuit evaluation.
      if (kind_ == ExprKind::kAnd && !lb) return Value{std::int64_t{0}};
      if (kind_ == ExprKind::kOr && lb) return Value{std::int64_t{1}};
      TERTIO_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(row));
      TERTIO_ASSIGN_OR_RETURN(bool rb, AsBool(rhs));
      return Value{static_cast<std::int64_t>(rb)};
    }
    case ExprKind::kNot: {
      TERTIO_ASSIGN_OR_RETURN(Value operand, children_[0]->Eval(row));
      TERTIO_ASSIGN_OR_RETURN(bool b, AsBool(operand));
      return Value{static_cast<std::int64_t>(!b)};
    }
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul: {
      TERTIO_ASSIGN_OR_RETURN(Value lhs, children_[0]->Eval(row));
      TERTIO_ASSIGN_OR_RETURN(Value rhs, children_[1]->Eval(row));
      return Arithmetic(kind_, lhs, rhs);
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace tertio::query
