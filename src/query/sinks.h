#pragma once

/// \file sinks.h
/// Push-based query operators.
///
/// A pipeline is a chain of RowSinks; the tertiary join pushes each joined
/// row into the head as it is produced, and Finish() flushes blocking
/// operators (aggregation) at end-of-stream. Because rows flow as the join
/// runs, the pipeline honors the paper's Section 3.2 assumption — the output
/// is consumed at production rate, never staged on storage.

#include <memory>
#include <unordered_map>
#include <vector>

#include "query/expr.h"
#include "query/row.h"
#include "util/status.h"

namespace tertio::query {

/// Consumer interface of one pipeline stage.
class RowSink {
 public:
  virtual ~RowSink() = default;

  /// Accepts one row.
  virtual Status Consume(const Row& row) = 0;

  /// End of stream: blocking operators emit downstream here.
  virtual Status Finish() { return Status::OK(); }
};

/// WHERE: forwards rows whose predicate evaluates to a non-zero integer.
class FilterSink final : public RowSink {
 public:
  FilterSink(ExprPtr predicate, RowSink* next);

  Status Consume(const Row& row) override;
  Status Finish() override { return next_->Finish(); }

  std::uint64_t rows_in() const { return rows_in_; }
  std::uint64_t rows_out() const { return rows_out_; }

 private:
  ExprPtr predicate_;
  RowSink* next_;
  std::uint64_t rows_in_ = 0;
  std::uint64_t rows_out_ = 0;
};

/// SELECT: maps each row through a list of expressions.
class ProjectSink final : public RowSink {
 public:
  ProjectSink(std::vector<ExprPtr> exprs, RowSink* next);

  Status Consume(const Row& row) override;
  Status Finish() override { return next_->Finish(); }

 private:
  std::vector<ExprPtr> exprs_;
  RowSink* next_;
};

enum class AggKind : uint8_t { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate: kind + input expression (ignored for kCount).
struct AggSpec {
  AggKind kind;
  ExprPtr input;  // may be null for kCount
};

/// GROUP BY + aggregates. Blocking: groups accumulate in memory (the paper's
/// premise is precisely that aggregation shrinks the output, so group state
/// is small); Finish() emits one row per group — group keys first, then
/// aggregate values — ordered by group key.
///
/// Groups live in a hash map keyed by a 64-bit digest of the key vector
/// (O(1) per row instead of an O(log n) vector-of-variant comparison chain);
/// digest collisions fall back to key equality, and Finish() sorts the
/// surviving groups so the emitted order is identical to the ordered-map
/// implementation this replaced.
class AggregateSink final : public RowSink {
 public:
  AggregateSink(std::vector<ExprPtr> group_by, std::vector<AggSpec> aggregates, RowSink* next);

  Status Consume(const Row& row) override;
  Status Finish() override;

  std::uint64_t group_count() const { return group_count_; }

 private:
  struct GroupState {
    std::vector<std::int64_t> counts;
    std::vector<double> sums;
    std::vector<Value> mins;
    std::vector<Value> maxs;
    bool initialized = false;
  };
  struct Group {
    std::vector<Value> key;
    GroupState state;
  };

  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggregates_;
  RowSink* next_;
  /// Key-vector digest -> groups sharing it (singleton chains in practice).
  std::unordered_map<std::uint64_t, std::vector<Group>> groups_;
  std::uint64_t group_count_ = 0;
};

/// Terminal: materializes every row (tests / small results).
class CollectSink final : public RowSink {
 public:
  Status Consume(const Row& row) override {
    rows_.push_back(row);
    return Status::OK();
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

/// Terminal: counts rows only.
class CountSink final : public RowSink {
 public:
  Status Consume(const Row&) override {
    ++count_;
    return Status::OK();
  }

  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// LIMIT: forwards at most `limit` rows, then silently drops the rest.
class LimitSink final : public RowSink {
 public:
  LimitSink(std::uint64_t limit, RowSink* next) : limit_(limit), next_(next) {
    TERTIO_CHECK(next != nullptr, "limit requires a downstream sink");
  }

  Status Consume(const Row& row) override {
    if (forwarded_ >= limit_) return Status::OK();
    ++forwarded_;
    return next_->Consume(row);
  }
  Status Finish() override { return next_->Finish(); }

 private:
  std::uint64_t limit_;
  RowSink* next_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace tertio::query
