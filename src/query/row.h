#pragma once

/// \file row.h
/// Runtime rows flowing through the query-operator layer.
///
/// The paper's output-cost discussion (Section 3.2) assumes the join
/// "pipelines its output to an aggregate operator or an operator with high
/// selectivity". tertio::query is that downstream pipeline: push-based
/// operators that consume joined rows as the tertiary join produces them, so
/// no join output is ever materialized to storage.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "relation/schema.h"
#include "relation/tuple.h"
#include "util/status.h"

namespace tertio::query {

/// One scalar value. Fixed-char columns surface as std::string (trimmed at
/// the first NUL).
using Value = std::variant<std::int64_t, double, std::string>;

/// One row: positional values.
struct Row {
  std::vector<Value> values;
};

/// Descriptor of the rows a pipeline stage produces.
struct RowSchema {
  struct Column {
    std::string name;
    rel::ColumnType type;
  };
  std::vector<Column> columns;

  /// Index of the column named `name`.
  Result<std::size_t> Find(const std::string& name) const {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == name) return i;
    }
    return Status::NotFound("no column named '" + name + "'");
  }

  /// Concatenation of two relation schemas, with columns prefixed
  /// "<alias>.<column>" — the shape of a joined row.
  static RowSchema Joined(const rel::Schema& r, const std::string& r_alias,
                          const rel::Schema& s, const std::string& s_alias);
};

/// Converts one tuple column to a Value.
Value ValueFromColumn(const rel::Tuple& tuple, std::size_t column);

/// Builds the joined row (R columns then S columns) from a match pair.
Row RowFromMatch(const rel::Tuple& r, const rel::Tuple& s);

/// Human-readable rendering (for examples and diagnostics).
std::string ValueToString(const Value& value);

/// True if two values are of the same alternative and equal.
bool ValueEquals(const Value& a, const Value& b);

/// Total order within a single alternative; mixed alternatives order by
/// alternative index (used by MinMax aggregates and sorting).
bool ValueLess(const Value& a, const Value& b);

/// Numeric view of a value (int64/double); strings are an error.
Result<double> ValueAsDouble(const Value& value);

}  // namespace tertio::query
