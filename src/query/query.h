#pragma once

/// \file query.h
/// End-to-end query execution: a tertiary join feeding a sink pipeline.
///
///   CollectSink result;
///   FilterSink filter(Gt(Col(3), Lit(100.0)), &result);
///   TertiaryQuery query;
///   query.r = &dim; query.s = &fact; query.pipeline = &filter;
///   auto stats = ExecuteQuery(query, ctx);
///
/// The join method is chosen by the advisor unless pinned; joined rows are
/// pushed through the pipeline as they are produced (never staged), matching
/// the paper's Section 3.2 output model.

#include <optional>

#include "join/advisor.h"
#include "join/join_method.h"
#include "query/sinks.h"

namespace tertio::query {

/// One query: R join S, then the row pipeline.
struct TertiaryQuery {
  const rel::Relation* r = nullptr;
  const rel::Relation* s = nullptr;
  std::size_t r_key_column = 0;
  std::size_t s_key_column = 0;
  /// Head of the sink pipeline receiving joined rows.
  RowSink* pipeline = nullptr;
  /// Pin a join method; unset = advisor's choice.
  std::optional<JoinMethodId> method;
  join::ExecutionOptions options;
};

/// Result: join statistics plus the method that ran.
struct QueryStats {
  JoinMethodId method;
  join::JoinStats join;
};

/// Derives analytical cost parameters from a live context (device rates,
/// memory and disk budgets) — what the advisor needs to plan a join on this
/// machine. Exposed for planners and tests.
cost::CostParams CostParamsFromContext(const join::JoinContext& ctx, const rel::Relation& r,
                                       const rel::Relation& s);

/// Runs the query. Rows flow through `query.pipeline`; Finish() is invoked
/// at end-of-stream. Requires full-data (non-phantom) relations.
Result<QueryStats> ExecuteQuery(const TertiaryQuery& query, const join::JoinContext& ctx);

}  // namespace tertio::query
