#include "query/sinks.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "hash/hasher.h"

namespace tertio::query {
namespace {

/// 64-bit digest of one group-key vector. Each element mixes its variant
/// alternative and content through splitmix64 (hash::HashKey), so keys that
/// differ only in type ((int64)1 vs 1.0) digest apart.
std::uint64_t HashKeyVector(const std::vector<Value>& key) {
  std::uint64_t digest = hash::HashKey(static_cast<std::int64_t>(key.size()));
  for (const Value& value : key) {
    std::uint64_t element = hash::HashKey(static_cast<std::int64_t>(value.index()));
    if (const auto* i = std::get_if<std::int64_t>(&value)) {
      element ^= hash::HashKey(*i);
    } else if (const auto* d = std::get_if<double>(&value)) {
      std::int64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(*d));
      std::memcpy(&bits, d, sizeof(bits));
      element ^= hash::HashKey(bits);
    } else {
      // FNV-1a over the string bytes, then one splitmix64 finalizer.
      const auto& s = std::get<std::string>(value);
      std::uint64_t fnv = 1469598103934665603ULL;
      for (char c : s) {
        fnv ^= static_cast<std::uint8_t>(c);
        fnv *= 1099511628211ULL;
      }
      element ^= hash::HashKey(static_cast<std::int64_t>(fnv));
    }
    digest = hash::HashKey(static_cast<std::int64_t>(digest ^ element));
  }
  return digest;
}

}  // namespace

FilterSink::FilterSink(ExprPtr predicate, RowSink* next)
    : predicate_(std::move(predicate)), next_(next) {
  TERTIO_CHECK(predicate_ != nullptr, "filter requires a predicate");
  TERTIO_CHECK(next != nullptr, "filter requires a downstream sink");
}

Status FilterSink::Consume(const Row& row) {
  ++rows_in_;
  TERTIO_ASSIGN_OR_RETURN(Value verdict, predicate_->Eval(row));
  const auto* flag = std::get_if<std::int64_t>(&verdict);
  if (flag == nullptr) {
    return Status::InvalidArgument("filter predicate must produce an integer");
  }
  if (*flag == 0) return Status::OK();
  ++rows_out_;
  return next_->Consume(row);
}

ProjectSink::ProjectSink(std::vector<ExprPtr> exprs, RowSink* next)
    : exprs_(std::move(exprs)), next_(next) {
  TERTIO_CHECK(!exprs_.empty(), "projection requires at least one expression");
  TERTIO_CHECK(next != nullptr, "projection requires a downstream sink");
}

Status ProjectSink::Consume(const Row& row) {
  Row out;
  out.values.reserve(exprs_.size());
  for (const ExprPtr& expr : exprs_) {
    TERTIO_ASSIGN_OR_RETURN(Value value, expr->Eval(row));
    out.values.push_back(std::move(value));
  }
  return next_->Consume(out);
}

AggregateSink::AggregateSink(std::vector<ExprPtr> group_by, std::vector<AggSpec> aggregates,
                             RowSink* next)
    : group_by_(std::move(group_by)), aggregates_(std::move(aggregates)), next_(next) {
  TERTIO_CHECK(next != nullptr, "aggregation requires a downstream sink");
  TERTIO_CHECK(!aggregates_.empty(), "aggregation requires at least one aggregate");
  for (const AggSpec& spec : aggregates_) {
    TERTIO_CHECK(spec.kind == AggKind::kCount || spec.input != nullptr,
                 "non-count aggregates require an input expression");
  }
}

Status AggregateSink::Consume(const Row& row) {
  std::vector<Value> key;
  key.reserve(group_by_.size());
  for (const ExprPtr& expr : group_by_) {
    TERTIO_ASSIGN_OR_RETURN(Value value, expr->Eval(row));
    key.push_back(std::move(value));
  }
  std::vector<Group>& chain = groups_[HashKeyVector(key)];
  Group* group = nullptr;
  for (Group& candidate : chain) {
    if (candidate.key == key) {
      group = &candidate;
      break;
    }
  }
  if (group == nullptr) {
    chain.push_back(Group{std::move(key), GroupState{}});
    group = &chain.back();
    ++group_count_;
  }
  GroupState& state = group->state;
  if (!state.initialized) {
    state.counts.assign(aggregates_.size(), 0);
    state.sums.assign(aggregates_.size(), 0.0);
    state.mins.assign(aggregates_.size(), Value{std::int64_t{0}});
    state.maxs.assign(aggregates_.size(), Value{std::int64_t{0}});
    state.initialized = true;
  }
  for (std::size_t i = 0; i < aggregates_.size(); ++i) {
    const AggSpec& spec = aggregates_[i];
    if (spec.kind == AggKind::kCount) {
      state.counts[i] += 1;
      continue;
    }
    TERTIO_ASSIGN_OR_RETURN(Value value, spec.input->Eval(row));
    switch (spec.kind) {
      case AggKind::kSum:
      case AggKind::kAvg: {
        TERTIO_ASSIGN_OR_RETURN(double d, ValueAsDouble(value));
        state.sums[i] += d;
        state.counts[i] += 1;
        break;
      }
      case AggKind::kMin:
        if (state.counts[i] == 0 || ValueLess(value, state.mins[i])) state.mins[i] = value;
        state.counts[i] += 1;
        break;
      case AggKind::kMax:
        if (state.counts[i] == 0 || ValueLess(state.maxs[i], value)) state.maxs[i] = value;
        state.counts[i] += 1;
        break;
      case AggKind::kCount:
        break;
    }
  }
  return Status::OK();
}

Status AggregateSink::Finish() {
  // Hash order is arbitrary; sort so the output order matches the ordered
  // map this hash table replaced (lexicographic on the key vector).
  std::vector<const Group*> ordered;
  ordered.reserve(group_count_);
  for (const auto& [digest, chain] : groups_) {
    for (const Group& group : chain) ordered.push_back(&group);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Group* a, const Group* b) { return a->key < b->key; });
  for (const Group* group : ordered) {
    const GroupState& state = group->state;
    Row out;
    out.values = group->key;
    for (std::size_t i = 0; i < aggregates_.size(); ++i) {
      switch (aggregates_[i].kind) {
        case AggKind::kCount:
          out.values.emplace_back(state.counts[i]);
          break;
        case AggKind::kSum:
          out.values.emplace_back(state.sums[i]);
          break;
        case AggKind::kAvg:
          out.values.emplace_back(state.counts[i] > 0
                                      ? state.sums[i] / static_cast<double>(state.counts[i])
                                      : 0.0);
          break;
        case AggKind::kMin:
          out.values.push_back(state.mins[i]);
          break;
        case AggKind::kMax:
          out.values.push_back(state.maxs[i]);
          break;
      }
    }
    TERTIO_RETURN_IF_ERROR(next_->Consume(out));
  }
  return next_->Finish();
}

}  // namespace tertio::query
