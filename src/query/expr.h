#pragma once

/// \file expr.h
/// Scalar expressions over rows: column references, literals, comparisons,
/// boolean connectives and arithmetic. Built with the free functions at the
/// bottom, e.g.
///
///   auto pred = And(Ge(Col(2), Lit(100.0)), Eq(Col(0), Lit(int64_t{42})));

#include <memory>
#include <vector>

#include "query/row.h"
#include "util/status.h"

namespace tertio::query {

enum class ExprKind : uint8_t {
  kColumn,
  kLiteral,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kAdd,
  kSub,
  kMul,
};

/// Immutable expression tree node.
class Expr {
 public:
  /// Evaluates against `row`. Type errors (e.g. adding strings) surface as
  /// InvalidArgument.
  Result<Value> Eval(const Row& row) const;

  ExprKind kind() const { return kind_; }

  // Node constructors (prefer the free builder functions below).
  static std::unique_ptr<Expr> MakeColumn(std::size_t index);
  static std::unique_ptr<Expr> MakeLiteral(Value value);
  static std::unique_ptr<Expr> MakeBinary(ExprKind kind, std::unique_ptr<Expr> lhs,
                                          std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> MakeNot(std::unique_ptr<Expr> operand);

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  std::size_t column_ = 0;
  Value literal_;
  std::vector<std::unique_ptr<Expr>> children_;
};

using ExprPtr = std::unique_ptr<Expr>;

inline ExprPtr Col(std::size_t index) { return Expr::MakeColumn(index); }
inline ExprPtr Lit(std::int64_t v) { return Expr::MakeLiteral(Value{v}); }
inline ExprPtr Lit(double v) { return Expr::MakeLiteral(Value{v}); }
inline ExprPtr Lit(std::string v) { return Expr::MakeLiteral(Value{std::move(v)}); }
inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kGe, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kOr, std::move(a), std::move(b));
}
inline ExprPtr Not(ExprPtr a) { return Expr::MakeNot(std::move(a)); }
inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(ExprKind::kMul, std::move(a), std::move(b));
}

}  // namespace tertio::query
