#include "query/query.h"

namespace tertio::query {

cost::CostParams CostParamsFromContext(const join::JoinContext& ctx, const rel::Relation& r,
                                       const rel::Relation& s) {
  cost::CostParams params;
  params.r_blocks = r.blocks;
  params.s_blocks = s.blocks;
  params.block_bytes = r.block_bytes;
  params.memory_blocks = ctx.memory->total_blocks();
  params.disk_blocks = ctx.disks->allocator().capacity_blocks();
  // Both drives share a model in tertio machines; S dominates the transfer
  // volume, so its compressibility sets the effective rate.
  params.tape_rate_bps = ctx.drive_s->model().EffectiveRate(s.compressibility);
  params.disk_rate_bps = ctx.disks->aggregate_rate_bps();
  if (ctx.disks->disk_count() > 0) {
    params.disk_positioning_seconds = ctx.disks->disk(0)->model().positioning_seconds;
  }
  return params;
}

Result<QueryStats> ExecuteQuery(const TertiaryQuery& query, const join::JoinContext& ctx) {
  if (query.r == nullptr || query.s == nullptr) {
    return Status::InvalidArgument("query requires both relations");
  }
  if (query.pipeline == nullptr) {
    return Status::InvalidArgument("query requires a sink pipeline");
  }
  if (query.r->phantom || query.s->phantom) {
    return Status::InvalidArgument("queries need full-data relations (phantom is timing-only)");
  }

  JoinMethodId method_id;
  if (query.method.has_value()) {
    method_id = *query.method;
  } else {
    TERTIO_ASSIGN_OR_RETURN(
        join::AdvisorReport advice,
        join::AdviseJoinMethod(CostParamsFromContext(ctx, *query.r, *query.s)));
    method_id = advice.best().method;
  }

  join::JoinSpec spec;
  spec.r = query.r;
  spec.s = query.s;
  spec.r_key_column = query.r_key_column;
  spec.s_key_column = query.s_key_column;
  spec.options = query.options;
  RowSink* pipeline = query.pipeline;
  spec.match_sink = [pipeline](const rel::Tuple& r_tuple, const rel::Tuple& s_tuple) {
    return pipeline->Consume(RowFromMatch(r_tuple, s_tuple));
  };

  auto method = join::CreateJoinMethod(method_id);
  QueryStats stats;
  stats.method = method_id;
  TERTIO_ASSIGN_OR_RETURN(stats.join, method->Execute(spec, ctx));
  TERTIO_RETURN_IF_ERROR(query.pipeline->Finish());
  return stats;
}

}  // namespace tertio::query
