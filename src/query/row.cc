#include "query/row.h"

#include "util/string_util.h"

namespace tertio::query {

RowSchema RowSchema::Joined(const rel::Schema& r, const std::string& r_alias,
                            const rel::Schema& s, const std::string& s_alias) {
  RowSchema schema;
  for (std::size_t i = 0; i < r.column_count(); ++i) {
    schema.columns.push_back(Column{r_alias + "." + r.column(i).name, r.column(i).type});
  }
  for (std::size_t i = 0; i < s.column_count(); ++i) {
    schema.columns.push_back(Column{s_alias + "." + s.column(i).name, s.column(i).type});
  }
  return schema;
}

Value ValueFromColumn(const rel::Tuple& tuple, std::size_t column) {
  switch (tuple.schema().column(column).type) {
    case rel::ColumnType::kInt64:
      return tuple.GetInt64(column);
    case rel::ColumnType::kDouble:
      return tuple.GetDouble(column);
    case rel::ColumnType::kFixedChar: {
      std::string_view raw = tuple.GetFixedChar(column);
      std::size_t nul = raw.find('\0');
      return std::string(nul == std::string_view::npos ? raw : raw.substr(0, nul));
    }
  }
  return std::int64_t{0};
}

Row RowFromMatch(const rel::Tuple& r, const rel::Tuple& s) {
  Row row;
  row.values.reserve(r.schema().column_count() + s.schema().column_count());
  for (std::size_t i = 0; i < r.schema().column_count(); ++i) {
    row.values.push_back(ValueFromColumn(r, i));
  }
  for (std::size_t i = 0; i < s.schema().column_count(); ++i) {
    row.values.push_back(ValueFromColumn(s, i));
  }
  return row;
}

std::string ValueToString(const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return StrFormat("%lld", static_cast<long long>(*i));
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return StrFormat("%g", *d);
  }
  return std::get<std::string>(value);
}

bool ValueEquals(const Value& a, const Value& b) { return a == b; }

bool ValueLess(const Value& a, const Value& b) { return a < b; }

Result<double> ValueAsDouble(const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&value)) return *d;
  return Status::InvalidArgument("string value where a number is required");
}

}  // namespace tertio::query
