#pragma once

/// \file pipeline_buffers.h
/// Pipeline adapters for the memory layer: buffer-space availability enters
/// the stage graph as events instead of raw SimSeconds handed back to
/// executors.
///
/// The double-buffering primitives of double_buffer.h account space over
/// virtual time; these adapters let a Pipeline-based executor declare "this
/// production may not begin before k slots are free" (InterleavedBuffer) or
/// "this refill may not begin before half-buffer i is drained"
/// (SplitDoubleBuffer) as dependencies, keeping the whole schedule inside
/// the stage graph.

#include "mem/double_buffer.h"
#include "sim/pipeline.h"
#include "util/status.h"

namespace tertio::mem {

/// Claims `count` slots of `buffer` for a producer and emits the
/// availability of the last slot as a pipeline event usable as a
/// dependency.
Result<sim::StageId> AcquireFreeStage(InterleavedBuffer& buffer, sim::Pipeline& pipe,
                                      std::string_view phase, BlockCount count);

/// SplitDoubleBuffer tracked with stages: FreeStage(i) is the stage that
/// last drained half-buffer i%2 (kNoStage while untouched); executors set it
/// to the consumer's final stage each iteration.
class SplitBufferStages {
 public:
  sim::StageId FreeStage(std::uint64_t iteration) const { return free_[iteration % 2]; }
  void SetBusyUntil(std::uint64_t iteration, sim::StageId stage) {
    free_[iteration % 2] = stage;
  }

 private:
  sim::StageId free_[2] = {sim::kNoStage, sim::kNoStage};
};

}  // namespace tertio::mem
