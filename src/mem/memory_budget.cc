#include "mem/memory_budget.h"

#include "sim/auditor.h"
#include "util/string_util.h"

namespace tertio::mem {

Status MemoryBudget::Reserve(BlockCount count, const std::string& tag) {
  if (reserved_ + count > total_) {
    // Refused, nothing committed: occupancy never exceeded M, so this is an
    // error for the caller but not an audit violation. The auditor hook
    // below only ever sees committed occupancy.
    return Status::ResourceExhausted(
        StrFormat("memory reservation '%s' of %llu blocks exceeds budget "
                  "(%llu of %llu blocks in use)",
                  tag.c_str(), static_cast<unsigned long long>(count.value()),
                  static_cast<unsigned long long>(reserved_.value()),
                  static_cast<unsigned long long>(total_.value())));
  }
  reserved_ += count;
  by_tag_[tag] += count;
  if (reserved_ > peak_) peak_ = reserved_;
  if (auditor_ != nullptr) auditor_->OnMemoryReserve(tag, count, reserved_, total_);
  return Status::OK();
}

Status MemoryBudget::Release(BlockCount count, const std::string& tag) {
  auto it = by_tag_.find(tag);
  BlockCount held = it == by_tag_.end() ? 0 : it->second;
  if (auditor_ != nullptr) auditor_->OnMemoryRelease(tag, count, held);
  if (held < count) {
    return Status::InvalidArgument(
        StrFormat("release of %llu blocks under '%s' exceeds its reservation",
                  static_cast<unsigned long long>(count.value()), tag.c_str()));
  }
  it->second -= count;
  if (it->second == 0) by_tag_.erase(it);
  reserved_ -= count;
  return Status::OK();
}

Status MemoryBudget::ReleaseAll(const std::string& tag) {
  auto it = by_tag_.find(tag);
  if (it == by_tag_.end()) return Status::OK();
  if (auditor_ != nullptr) auditor_->OnMemoryRelease(tag, it->second, it->second);
  reserved_ -= it->second;
  by_tag_.erase(it);
  return Status::OK();
}

BlockCount MemoryBudget::ReservedUnder(const std::string& tag) const {
  auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? 0 : it->second;
}

Result<BudgetLease> BudgetLease::Acquire(MemoryBudget* parent, BlockCount blocks,
                                         std::string tag) {
  if (parent == nullptr) return Status::InvalidArgument("budget lease requires a parent budget");
  TERTIO_RETURN_IF_ERROR(parent->Reserve(blocks, tag));
  return BudgetLease(parent, blocks, std::move(tag));
}

void BudgetLease::ReleaseNow() {
  if (parent_ == nullptr) return;
  Status released = parent_->Release(blocks_, tag_);
  // A lease releases exactly what it reserved, so over-release is impossible
  // unless the parent was mutated behind its back.
  TERTIO_CHECK(released.ok(), "budget lease release failed");
  parent_ = nullptr;
  blocks_ = 0;
}

}  // namespace tertio::mem
