#include "mem/pipeline_buffers.h"

namespace tertio::mem {

Result<sim::StageId> AcquireFreeStage(InterleavedBuffer& buffer, sim::Pipeline& pipe,
                                      std::string_view phase, BlockCount count) {
  TERTIO_ASSIGN_OR_RETURN(SimSeconds free_at, buffer.AcquireFree(count));
  return pipe.Event(phase, free_at);
}

}  // namespace tertio::mem
