#include "mem/double_buffer.h"

#include "util/string_util.h"

namespace tertio::mem {

Result<SimSeconds> InterleavedBuffer::AcquireFree(BlockCount count) {
  if (occupied_ + count > capacity_) {
    return Status::ResourceExhausted(
        StrFormat("buffer acquire of %llu blocks exceeds capacity (%llu occupied of %llu)",
                  static_cast<unsigned long long>(count.value()),
                  static_cast<unsigned long long>(occupied_.value()),
                  static_cast<unsigned long long>(capacity_.value())));
  }
  SimSeconds ready = 0.0;
  BlockCount remaining = count;
  while (remaining > 0) {
    TERTIO_CHECK(!free_segments_.empty(), "buffer accounting out of sync");
    Segment& seg = free_segments_.front();
    if (seg.free_at > ready) ready = seg.free_at;
    BlockCount take = seg.count < remaining ? seg.count : remaining;
    seg.count -= take;
    remaining -= take;
    if (seg.count == 0) free_segments_.pop_front();
  }
  occupied_ += count;
  return ready;
}

Status InterleavedBuffer::Release(BlockCount count, SimSeconds when) {
  if (count > occupied_) {
    return Status::InvalidArgument(
        StrFormat("release of %llu blocks exceeds occupancy (%llu)",
                  static_cast<unsigned long long>(count.value()),
                  static_cast<unsigned long long>(occupied_.value())));
  }
  if (when < last_release_) {
    return Status::InvalidArgument("buffer releases must carry non-decreasing times");
  }
  last_release_ = when;
  occupied_ -= count;
  if (!free_segments_.empty() && free_segments_.back().free_at == when) {
    free_segments_.back().count += count;
  } else {
    free_segments_.push_back(Segment{when, count});
  }
  return Status::OK();
}

}  // namespace tertio::mem
