#pragma once

/// \file memory_budget.h
/// Accounting for the fixed main-memory allotment M of the system model.
///
/// The paper allocates a fixed M blocks of main memory to the join (Section
/// 3.1) and charges every buffer against it — including the per-bucket write
/// buffers of the hashing methods, which "become significant" when the
/// bucket count is large (Section 6). MemoryBudget enforces that no join
/// method silently uses more memory than its Table 2 entry.

#include <map>
#include <string>
#include <utility>

#include "util/status.h"
#include "util/units.h"

namespace tertio::sim {
class Auditor;
}

namespace tertio::mem {

/// Block-granular budget with named reservations. A budget can be
/// partitioned: the service layer (exec/site.h) carves each query session's
/// M_q out of the site-wide budget with a BudgetLease and gives the session
/// its own MemoryBudget over the leased blocks, so per-session occupancy
/// bounds stay locally auditable while the site-wide sum can never exceed M.
class MemoryBudget {
 public:
  explicit MemoryBudget(BlockCount total_blocks) : total_(total_blocks) {}

  BlockCount total_blocks() const { return total_; }
  BlockCount reserved_blocks() const { return reserved_; }
  BlockCount free_blocks() const { return total_ - reserved_; }

  /// Reserves `count` blocks under `tag`; fails if the budget is exceeded.
  Status Reserve(BlockCount count, const std::string& tag);

  /// Releases `count` blocks from `tag`; fails on over-release.
  Status Release(BlockCount count, const std::string& tag);

  /// Releases everything held under `tag`.
  Status ReleaseAll(const std::string& tag);

  /// Blocks currently reserved under `tag`.
  BlockCount ReservedUnder(const std::string& tag) const;

  /// Largest reserved_blocks() ever observed — the method's true memory
  /// footprint, compared against Table 2 in tests.
  BlockCount peak_reserved_blocks() const { return peak_; }

  /// Registers a SimSan auditor (sim/auditor.h) observing every reserve and
  /// release — occupancy ≤ M and release ≤ reservation become audited
  /// invariants on top of the Status returns. Null detaches.
  void BindAuditor(sim::Auditor* auditor) { auditor_ = auditor; }

 private:
  BlockCount total_;
  BlockCount reserved_ = 0;
  BlockCount peak_ = 0;
  sim::Auditor* auditor_ = nullptr;
  std::map<std::string, BlockCount> by_tag_;
};

/// RAII partition of a parent budget: Acquire() reserves `blocks` under
/// `tag` in the parent; destruction (or ReleaseNow) returns them. Move-only.
class BudgetLease {
 public:
  BudgetLease() = default;
  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;
  BudgetLease(BudgetLease&& other) noexcept { *this = std::move(other); }
  BudgetLease& operator=(BudgetLease&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      parent_ = other.parent_;
      blocks_ = other.blocks_;
      tag_ = std::move(other.tag_);
      other.parent_ = nullptr;
      other.blocks_ = 0;
    }
    return *this;
  }
  ~BudgetLease() { ReleaseNow(); }

  /// Reserves `blocks` under `tag` in `parent`. Fails with the parent's
  /// ResourceExhausted when the partition does not fit.
  static Result<BudgetLease> Acquire(MemoryBudget* parent, BlockCount blocks, std::string tag);

  bool active() const { return parent_ != nullptr; }
  BlockCount blocks() const { return blocks_; }
  const std::string& tag() const { return tag_; }

  /// Returns the leased blocks to the parent. Idempotent.
  void ReleaseNow();

 private:
  BudgetLease(MemoryBudget* parent, BlockCount blocks, std::string tag)
      : parent_(parent), blocks_(blocks), tag_(std::move(tag)) {}

  MemoryBudget* parent_ = nullptr;
  BlockCount blocks_ = 0;
  std::string tag_;
};

}  // namespace tertio::mem
