#pragma once

/// \file memory_budget.h
/// Accounting for the fixed main-memory allotment M of the system model.
///
/// The paper allocates a fixed M blocks of main memory to the join (Section
/// 3.1) and charges every buffer against it — including the per-bucket write
/// buffers of the hashing methods, which "become significant" when the
/// bucket count is large (Section 6). MemoryBudget enforces that no join
/// method silently uses more memory than its Table 2 entry.

#include <map>
#include <string>

#include "util/status.h"
#include "util/units.h"

namespace tertio::sim {
class Auditor;
}

namespace tertio::mem {

/// Block-granular budget with named reservations.
class MemoryBudget {
 public:
  explicit MemoryBudget(BlockCount total_blocks) : total_(total_blocks) {}

  BlockCount total_blocks() const { return total_; }
  BlockCount reserved_blocks() const { return reserved_; }
  BlockCount free_blocks() const { return total_ - reserved_; }

  /// Reserves `count` blocks under `tag`; fails if the budget is exceeded.
  Status Reserve(BlockCount count, const std::string& tag);

  /// Releases `count` blocks from `tag`; fails on over-release.
  Status Release(BlockCount count, const std::string& tag);

  /// Releases everything held under `tag`.
  Status ReleaseAll(const std::string& tag);

  /// Blocks currently reserved under `tag`.
  BlockCount ReservedUnder(const std::string& tag) const;

  /// Largest reserved_blocks() ever observed — the method's true memory
  /// footprint, compared against Table 2 in tests.
  BlockCount peak_reserved_blocks() const { return peak_; }

  /// Registers a SimSan auditor (sim/auditor.h) observing every reserve and
  /// release — occupancy ≤ M and release ≤ reservation become audited
  /// invariants on top of the Status returns. Null detaches.
  void BindAuditor(sim::Auditor* auditor) { auditor_ = auditor; }

 private:
  BlockCount total_;
  BlockCount reserved_ = 0;
  BlockCount peak_ = 0;
  sim::Auditor* auditor_ = nullptr;
  std::map<std::string, BlockCount> by_tag_;
};

}  // namespace tertio::mem
