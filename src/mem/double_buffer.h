#pragma once

/// \file double_buffer.h
/// Timing primitives for the two double-buffering schemes of Section 4.
///
/// *Split* double-buffering (SplitDoubleBuffer) divides buffer space into two
/// halves: the producer fills one while the consumer drains the other. Each
/// chunk is half the size, doubling the number of iterations — the scheme the
/// paper describes only to reject, kept here for the ablation bench.
///
/// *Interleaved* double-buffering (InterleavedBuffer) shares one physical
/// buffer between two logical buffers: space released by the consumer of
/// iteration i is immediately refilled by the producer of iteration i+1, so
/// chunks stay full-size and utilization stays near 100% (Figure 4). The
/// class tracks, in virtual time, when each slot of the shared buffer becomes
/// free; executors ask for the time at which a production of k slots may
/// begin and report when consumptions release slots.
///
/// These primitives account *space over virtual time*; the data itself moves
/// through the tape/disk modules.

#include <deque>

#include "util/status.h"
#include "util/units.h"

namespace tertio::mem {

/// FIFO slot accounting for one shared physical buffer.
class InterleavedBuffer {
 public:
  explicit InterleavedBuffer(BlockCount capacity_blocks) : capacity_(capacity_blocks) {
    free_segments_.push_back(Segment{0.0, capacity_blocks});
  }

  BlockCount capacity_blocks() const { return capacity_; }

  /// Claims `count` slots for the producer. \returns the virtual time at
  /// which the last of the `count` slots is free (the production may not
  /// finish before then). Slots are claimed in the order they were freed.
  Result<SimSeconds> AcquireFree(BlockCount count);

  /// Reports that the consumer frees `count` slots at time `when`. Slots
  /// must be released in FIFO order with non-decreasing times.
  Status Release(BlockCount count, SimSeconds when);

  /// Slots currently claimed and not yet released.
  BlockCount occupied_blocks() const { return occupied_; }

 private:
  struct Segment {
    SimSeconds free_at;
    BlockCount count;
  };

  BlockCount capacity_;
  BlockCount occupied_ = 0;
  SimSeconds last_release_ = 0.0;
  std::deque<Segment> free_segments_;
};

/// Two fixed half-buffers used alternately (the rejected scheme, and the
/// memory buffers of CDT-NB/MB where interleaving is impossible because the
/// consumer needs its chunk resident for the whole iteration).
class SplitDoubleBuffer {
 public:
  SplitDoubleBuffer() = default;

  /// Time at which buffer `iteration % 2` is free for refill.
  SimSeconds FreeAt(std::uint64_t iteration) const { return free_at_[iteration % 2]; }

  /// Marks buffer `iteration % 2` as in use until `when`.
  void SetBusyUntil(std::uint64_t iteration, SimSeconds when) { free_at_[iteration % 2] = when; }

 private:
  SimSeconds free_at_[2] = {0.0, 0.0};
};

}  // namespace tertio::mem
