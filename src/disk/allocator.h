#pragma once

/// \file allocator.h
/// Block-granular space management across the disks of a group.
///
/// Section 4 of the paper requires "special disk striping routines to balance
/// the consumption of bandwidth and storage space" — an ordinary RAID layer
/// hides block placement, but interleaved double-buffering needs the space
/// freed by the consumer of iteration i to be immediately reusable by the
/// producer of iteration i+1 without disturbing ongoing reads. The allocator
/// therefore exposes explicit allocate/free of striped extents with a
/// per-disk free list, an optional disk mask (dedicating disks to a role),
/// and a timestamped utilization trace from which Figure 4's utilization
/// curves are drawn.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "disk/extent.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::sim {
class Auditor;
}

namespace tertio::disk {

/// One allocate (+delta) or free (-delta) event, timestamped in virtual time.
struct UsageEvent {
  SimSeconds time = 0.0;
  /// Signed occupancy change; Blocks is unsigned, so the raw type stays.
  // tertio-lint: allow(units-raw-param)
  std::int64_t delta_blocks = 0;
  BlockCount used_after = 0;
  /// Owner label, e.g. "R-buckets", "S-iter-even".
  std::string tag;
};

/// Free-list allocator over the disks of one group.
class DiskSpaceAllocator {
 public:
  /// \param per_disk_capacity capacity in blocks of each disk.
  /// \param stripe_unit granularity (blocks) of round-robin striping.
  DiskSpaceAllocator(std::vector<BlockCount> per_disk_capacity, BlockCount stripe_unit);

  /// Allocator whose free space is exactly `region` — extents on disks
  /// [0, disk_count) previously carved from another allocator. The service
  /// layer (exec/query_session.h) gives each query session a private
  /// allocator over its carve, so the session's D_q bound is a locally
  /// audited capacity while the underlying spindles stay shared.
  DiskSpaceAllocator(int disk_count, const ExtentList& region, BlockCount stripe_unit);

  /// Allocates `count` blocks striped round-robin across the disks enabled in
  /// `disk_mask` (empty mask = all disks). The event is timestamped `now` in
  /// the utilization trace under `tag`.
  Result<ExtentList> Allocate(BlockCount count, SimSeconds now, const std::string& tag,
                              const std::vector<bool>& disk_mask = {});

  /// Returns `extents` to the free lists.
  Status Free(const ExtentList& extents, SimSeconds now, const std::string& tag);

  BlockCount used_blocks() const { return used_; }
  BlockCount capacity_blocks() const { return capacity_; }
  BlockCount free_blocks() const { return capacity_ - used_; }
  BlockCount stripe_unit() const { return stripe_unit_; }

  /// Enables retention of the utilization trace (Figure 4).
  void EnableTrace(bool enabled = true) { trace_enabled_ = enabled; }
  const std::vector<UsageEvent>& trace() const { return trace_; }

  /// Largest count that a single Allocate can currently satisfy.
  BlockCount FreeBlocksOn(int disk) const;

  /// Registers a SimSan auditor (sim/auditor.h): every occupancy change is
  /// checked against the group capacity D and over-frees are reported. Null
  /// detaches.
  void BindAuditor(sim::Auditor* auditor) { auditor_ = auditor; }

 private:
  // start -> length, non-overlapping, coalesced.
  using FreeList = std::map<BlockIndex, BlockCount>;

  Result<Extent> AllocateOn(int disk, BlockCount max_count);
  void FreeOn(const Extent& extent);
  void Record(SimSeconds now, std::int64_t delta, const std::string& tag);

  std::vector<FreeList> free_lists_;
  std::vector<BlockCount> free_per_disk_;
  BlockCount stripe_unit_;
  BlockCount capacity_ = 0;
  BlockCount used_ = 0;
  int rr_cursor_ = 0;
  sim::Auditor* auditor_ = nullptr;
  bool trace_enabled_ = false;
  std::vector<UsageEvent> trace_;
};

}  // namespace tertio::disk
