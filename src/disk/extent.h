#pragma once

/// \file extent.h
/// A contiguous run of blocks on one disk of a striped group.

#include <cstdint>
#include <vector>

#include "util/status.h"
#include "util/units.h"

namespace tertio::disk {

/// Contiguous blocks [start, start+count) on disk `disk`.
struct Extent {
  int disk = 0;
  BlockIndex start = 0;
  BlockCount count = 0;

  bool operator==(const Extent&) const = default;
};

/// An allocation: ordered list of extents, possibly spanning several disks.
using ExtentList = std::vector<Extent>;

/// Total blocks covered by `extents`.
inline BlockCount TotalBlocks(const ExtentList& extents) {
  BlockCount total = 0;
  for (const Extent& e : extents) total += e.count;
  return total;
}

/// \returns the sub-range of `extents` covering blocks
/// [offset, offset + count) of the logical sequence they describe, or
/// InvalidArgument when the requested range extends past the sequence —
/// callers degrade gracefully instead of crashing the process.
Result<ExtentList> SliceExtents(const ExtentList& extents, BlockCount offset, BlockCount count);

}  // namespace tertio::disk
