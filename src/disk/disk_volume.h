#pragma once

/// \file disk_volume.h
/// One random-access disk: block store plus a costed request interface.

#include <cstdint>
#include <string>
#include <vector>

#include "disk/disk_model.h"
#include "sim/fault.h"
#include "sim/resource.h"
#include "util/block_payload.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::disk {

/// Cumulative per-disk activity counters.
struct DiskStats {
  BlockCount blocks_read = 0;
  BlockCount blocks_written = 0;
  std::uint64_t requests = 0;
  std::uint64_t positioned_requests = 0;  // requests that paid a seek
};

/// One disk drive bound to a sim::Resource. Requests are block-extent
/// granular; a request sequentially continuing the previous one (same start
/// as the previous end) pays no positioning time.
class DiskVolume {
 public:
  DiskVolume(std::string name, DiskModel model, sim::Resource* resource,
             BlockCount capacity_blocks, ByteCount block_bytes)
      : name_(std::move(name)),
        model_(model),
        resource_(resource),
        block_bytes_(block_bytes),
        // tertio-lint: allow(units-unwrap) — std::vector sizing needs the raw count.
        store_(capacity_blocks.value()) {
    TERTIO_CHECK(resource != nullptr, "disk requires a resource");
    TERTIO_CHECK(block_bytes > 0, "block size must be positive");
  }

  const std::string& name() const { return name_; }
  const DiskModel& model() const { return model_; }
  sim::Resource* resource() { return resource_; }
  const DiskStats& stats() const { return stats_; }
  BlockCount capacity_blocks() const { return store_.size(); }
  ByteCount block_bytes() const { return block_bytes_; }

  /// Attaches a fault source (not owned; may be null). Reads then draw
  /// transient errors and latent bad blocks from it; with no injector (or a
  /// disabled one) the costing path is untouched.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }
  sim::FaultInjector* fault_injector() const { return faults_; }

  /// Reads `count` blocks at `start` as one request. Payloads are appended to
  /// `out` when non-null.
  Result<sim::Interval> Read(BlockIndex start, BlockCount count, SimSeconds ready,
                             std::vector<BlockPayload>* out = nullptr);

  /// Writes `count` blocks at `start` as one request. `payloads`, when
  /// non-null, must hold exactly `count` entries; null writes phantoms.
  Result<sim::Interval> Write(BlockIndex start, BlockCount count, SimSeconds ready,
                              const BlockPayload* payloads = nullptr);

  /// True when a request starting at `start` would continue the previous one
  /// sequentially and therefore pay no positioning time. Used by coalesced
  /// transfers (sim/pipeline.h) to verify the replayed steady state.
  bool IsSequential(BlockIndex start) const {
    return any_request_ && start == next_sequential_;
  }

  /// Applies the state a coalesced batch of sequential requests would have
  /// left behind: `requests` request-count bumps, blocks read or phantom-
  /// written over [start, start+count), and the sequential cursor advanced to
  /// start+count. The caller (StripedDiskGroup) has already charged the
  /// device time through Resource::ScheduleBatch and verified every request
  /// continues the previous one, so no positioning is recorded.
  void CommitCoalesced(bool write, BlockIndex start, BlockCount count, std::uint64_t requests);

 private:
  Status CheckRange(BlockIndex start, BlockCount count) const;
  SimSeconds RequestCost(BlockIndex start, BlockCount count);

  std::string name_;
  DiskModel model_;
  sim::Resource* resource_;
  ByteCount block_bytes_;
  std::vector<BlockPayload> store_;
  BlockIndex next_sequential_ = 0;
  bool any_request_ = false;
  DiskStats stats_;
  sim::FaultInjector* faults_ = nullptr;
};

}  // namespace tertio::disk
