#include "disk/disk_volume.h"

#include "util/string_util.h"

namespace tertio::disk {

Status DiskVolume::CheckRange(BlockIndex start, BlockCount count) const {
  if (start + count > store_.size()) {
    return Status::InvalidArgument(
        StrFormat("request [%llu, %llu) exceeds capacity of disk %s (%zu blocks)",
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(start + count), name_.c_str(), store_.size()));
  }
  return Status::OK();
}

SimSeconds DiskVolume::RequestCost(BlockIndex start, BlockCount count) {
  SimSeconds cost = model_.TransferSeconds(count * block_bytes_);
  stats_.requests += 1;
  if (!any_request_ || start != next_sequential_) {
    cost += model_.positioning_seconds;
    stats_.positioned_requests += 1;
  }
  any_request_ = true;
  next_sequential_ = start + count;
  return cost;
}

Result<sim::Interval> DiskVolume::Read(BlockIndex start, BlockCount count, SimSeconds ready,
                                       std::vector<BlockPayload>* out) {
  TERTIO_RETURN_IF_ERROR(CheckRange(start, count));
  SimSeconds duration = RequestCost(start, count);
  if (out != nullptr) {
    out->reserve(out->size() + count);
    for (BlockIndex i = start; i < start + count; ++i) out->push_back(store_[i]);
  }
  stats_.blocks_read += count;
  return resource_->Schedule(ready, duration, count * block_bytes_, "disk.read");
}

Result<sim::Interval> DiskVolume::Write(BlockIndex start, BlockCount count, SimSeconds ready,
                                        const BlockPayload* payloads) {
  TERTIO_RETURN_IF_ERROR(CheckRange(start, count));
  SimSeconds duration = RequestCost(start, count);
  for (BlockCount i = 0; i < count; ++i) {
    store_[start + i] = payloads != nullptr ? payloads[i] : nullptr;
  }
  stats_.blocks_written += count;
  return resource_->Schedule(ready, duration, count * block_bytes_, "disk.write");
}

}  // namespace tertio::disk
