#include "disk/disk_volume.h"

#include "util/string_util.h"

namespace tertio::disk {

Status DiskVolume::CheckRange(BlockIndex start, BlockCount count) const {
  if (start + count > store_.size()) {
    return Status::InvalidArgument(
        StrFormat("request [%llu, %llu) exceeds capacity of disk %s (%zu blocks)",
                  static_cast<unsigned long long>(start.value()),
                  static_cast<unsigned long long>((start + count).value()), name_.c_str(), store_.size()));
  }
  return Status::OK();
}

SimSeconds DiskVolume::RequestCost(BlockIndex start, BlockCount count) {
  SimSeconds cost = model_.TransferSeconds(count * block_bytes_);
  stats_.requests += 1;
  if (!any_request_ || start != next_sequential_) {
    cost += model_.positioning_seconds;
    stats_.positioned_requests += 1;
  }
  any_request_ = true;
  next_sequential_ = start + count;
  return cost;
}

Result<sim::Interval> DiskVolume::Read(BlockIndex start, BlockCount count, SimSeconds ready,
                                       std::vector<BlockPayload>* out) {
  TERTIO_RETURN_IF_ERROR(CheckRange(start, count));
  if (faults_ != nullptr && faults_->enabled()) {
    sim::FaultInjector::ReadOutcome outcome = faults_->SimulateRead(
        start, count, model_.TransferSeconds(block_bytes_), model_.positioning_seconds);
    if (!outcome.completed) {
      // The request dies mid-flight: charge the blocks transferred before the
      // fault plus the recovery time the drive burned, deliver nothing, and
      // leave the head at the failed position so a retry repositions.
      SimSeconds wasted = RequestCost(start, outcome.clean_blocks) + outcome.recovery_seconds;
      stats_.blocks_read += outcome.clean_blocks;
      resource_->Schedule(ready, wasted, outcome.clean_blocks * block_bytes_,
                          "disk.read-failed");
      return Status::DeviceError(
          StrFormat("disk %s: unrecoverable read error at block %llu", name_.c_str(),
                    static_cast<unsigned long long>(outcome.failed_block.value())));
    }
    SimSeconds duration = RequestCost(start, count) + outcome.recovery_seconds;
    if (out != nullptr) {
      out->reserve(out->size() + count.value());
      for (BlockIndex i = start; i < start + count; ++i) out->push_back(store_[(i).value()]);
    }
    stats_.blocks_read += count;
    return resource_->Schedule(ready, duration, count * block_bytes_, "disk.read");
  }
  SimSeconds duration = RequestCost(start, count);
  if (out != nullptr) {
    out->reserve(out->size() + count.value());
    for (BlockIndex i = start; i < start + count; ++i) out->push_back(store_[(i).value()]);
  }
  stats_.blocks_read += count;
  return resource_->Schedule(ready, duration, count * block_bytes_, "disk.read");
}

void DiskVolume::CommitCoalesced(bool write, BlockIndex start, BlockCount count,
                                 std::uint64_t requests) {
  TERTIO_CHECK(start + count <= store_.size(), "coalesced disk commit exceeds capacity");
  stats_.requests += requests;
  any_request_ = true;
  next_sequential_ = start + count;
  if (write) {
    for (BlockCount i = 0; i < count; ++i) store_[(start + i).value()] = nullptr;
    stats_.blocks_written += count;
  } else {
    stats_.blocks_read += count;
  }
}

Result<sim::Interval> DiskVolume::Write(BlockIndex start, BlockCount count, SimSeconds ready,
                                        const BlockPayload* payloads) {
  TERTIO_RETURN_IF_ERROR(CheckRange(start, count));
  SimSeconds duration = RequestCost(start, count);
  for (BlockCount i = 0; i < count; ++i) {
    store_[(start + i).value()] = payloads != nullptr ? payloads[i.value()] : nullptr;
  }
  stats_.blocks_written += count;
  return resource_->Schedule(ready, duration, count * block_bytes_, "disk.write");
}

}  // namespace tertio::disk
