#include "disk/allocator.h"

#include <algorithm>

#include "sim/auditor.h"
#include "util/string_util.h"

namespace tertio::disk {

DiskSpaceAllocator::DiskSpaceAllocator(std::vector<BlockCount> per_disk_capacity,
                                       BlockCount stripe_unit)
    : stripe_unit_(stripe_unit) {
  TERTIO_CHECK(!per_disk_capacity.empty(), "allocator requires at least one disk");
  TERTIO_CHECK(stripe_unit > 0, "stripe unit must be positive");
  for (BlockCount cap : per_disk_capacity) {
    FreeList list;
    if (cap > 0) list.emplace(0, cap);
    free_lists_.push_back(std::move(list));
    free_per_disk_.push_back(cap);
    capacity_ += cap;
  }
}

DiskSpaceAllocator::DiskSpaceAllocator(int disk_count, const ExtentList& region,
                                       BlockCount stripe_unit)
    : stripe_unit_(stripe_unit) {
  TERTIO_CHECK(disk_count > 0, "allocator requires at least one disk");
  TERTIO_CHECK(stripe_unit > 0, "stripe unit must be positive");
  free_lists_.resize(static_cast<size_t>(disk_count));
  free_per_disk_.assign(static_cast<size_t>(disk_count), 0);
  for (const Extent& extent : region) {
    TERTIO_CHECK(extent.disk >= 0 && extent.disk < disk_count,
                 "region extent names a disk outside the group");
    FreeOn(extent);  // coalesces adjacent carve pieces back together
    capacity_ += extent.count;
  }
}

BlockCount DiskSpaceAllocator::FreeBlocksOn(int disk) const {
  return free_per_disk_[static_cast<size_t>(disk)];
}

Result<Extent> DiskSpaceAllocator::AllocateOn(int disk, BlockCount max_count) {
  FreeList& list = free_lists_[static_cast<size_t>(disk)];
  if (list.empty()) {
    return Status::ResourceExhausted(StrFormat("disk %d has no free space", disk));
  }
  // First fit: prefer the lowest-addressed hole (keeps data packed and
  // sequential requests adjacent).
  auto it = list.begin();
  BlockCount take = std::min(max_count, it->second);
  Extent extent{disk, it->first, take};
  BlockIndex new_start = it->first + take;
  BlockCount remaining = it->second - take;
  list.erase(it);
  if (remaining > 0) list.emplace(new_start, remaining);
  free_per_disk_[static_cast<size_t>(disk)] -= take;
  return extent;
}

Result<ExtentList> DiskSpaceAllocator::Allocate(BlockCount count, SimSeconds now,
                                                const std::string& tag,
                                                const std::vector<bool>& disk_mask) {
  if (count == 0) return ExtentList{};
  const int n = static_cast<int>(free_lists_.size());
  auto enabled = [&](int d) {
    return disk_mask.empty() || (d < static_cast<int>(disk_mask.size()) && disk_mask[d]);
  };
  BlockCount available = 0;
  for (int d = 0; d < n; ++d) {
    if (enabled(d)) available += free_per_disk_[static_cast<size_t>(d)];
  }
  if (available < count) {
    return Status::ResourceExhausted(
        StrFormat("allocation of %llu blocks exceeds free space (%llu blocks, tag=%s)",
                  static_cast<unsigned long long>(count.value()),
                  static_cast<unsigned long long>(available.value()), tag.c_str()));
  }

  ExtentList extents;
  BlockCount remaining = count;
  int guard = 0;
  while (remaining > 0) {
    TERTIO_CHECK(guard++ < 1'000'000, "allocator failed to converge");
    int disk = rr_cursor_;
    rr_cursor_ = (rr_cursor_ + 1) % n;
    if (!enabled(disk) || free_per_disk_[static_cast<size_t>(disk)] == 0) continue;
    BlockCount want = std::min(remaining, stripe_unit_);
    auto extent = AllocateOn(disk, want);
    if (!extent.ok()) continue;
    remaining -= extent->count;
    // Coalesce with the previous extent when contiguous on the same disk.
    if (!extents.empty() && extents.back().disk == extent->disk &&
        extents.back().start + extents.back().count == extent->start) {
      extents.back().count += extent->count;
    } else {
      extents.push_back(*extent);
    }
  }
  used_ += count;
  Record(now, static_cast<std::int64_t>(count.value()), tag);
  return extents;
}

void DiskSpaceAllocator::FreeOn(const Extent& extent) {
  FreeList& list = free_lists_[static_cast<size_t>(extent.disk)];
  auto [it, inserted] = list.emplace(extent.start, extent.count);
  TERTIO_CHECK(inserted, "double free of disk extent");
  // Merge with successor.
  auto next = std::next(it);
  if (next != list.end() && it->first + it->second == next->first) {
    it->second += next->second;
    list.erase(next);
  }
  // Merge with predecessor.
  if (it != list.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      list.erase(it);
    }
  }
  free_per_disk_[static_cast<size_t>(extent.disk)] += extent.count;
}

Status DiskSpaceAllocator::Free(const ExtentList& extents, SimSeconds now,
                                const std::string& tag) {
  BlockCount total = TotalBlocks(extents);
  if (total > used_) {
    if (auditor_ != nullptr) {
      auditor_->OnDiskOverfree(
          tag, StrFormat("free of %llu blocks exceeds the %llu currently allocated",
                         static_cast<unsigned long long>(total.value()),
                         static_cast<unsigned long long>(used_.value())));
    }
    return Status::Internal("freeing more blocks than are allocated");
  }
  for (const Extent& extent : extents) FreeOn(extent);
  used_ -= total;
  Record(now, -static_cast<std::int64_t>(total.value()), tag);
  return Status::OK();
}

void DiskSpaceAllocator::Record(SimSeconds now, std::int64_t delta, const std::string& tag) {
  if (auditor_ != nullptr) auditor_->OnDiskUsage(tag, now, used_, capacity_);
  if (!trace_enabled_) return;
  trace_.push_back(UsageEvent{now, delta, used_, tag});
}

}  // namespace tertio::disk
