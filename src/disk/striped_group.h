#pragma once

/// \file striped_group.h
/// The n-disk secondary-storage substrate of the system model.
///
/// The group owns its DiskVolumes and a DiskSpaceAllocator over them.
/// Logical reads and writes address ExtentLists; per-disk pieces of one
/// logical request are dispatched to their disks in parallel (each disk is
/// its own sim::Resource), so a striped transfer approaches the aggregate
/// rate X_D of Section 3.1 while two transfers directed at disjoint disks do
/// not disturb each other — the "finer control over usage of disk arms" of
/// Section 4.

#include <memory>
#include <string>
#include <vector>

#include "disk/allocator.h"
#include "disk/disk_volume.h"
#include "disk/extent.h"
#include "sim/pipeline.h"
#include "sim/simulation.h"
#include "util/status.h"

namespace tertio::disk {

/// Configuration of one disk group.
struct DiskGroupConfig {
  /// Model of each spindle (one entry per disk).
  std::vector<DiskModel> disks;
  /// Capacity per disk, blocks. Must match `disks` in length.
  std::vector<BlockCount> per_disk_capacity;
  ByteCount block_bytes = kDefaultBlockBytes;
  /// Striping granularity in blocks.
  BlockCount stripe_unit = 32;

  /// `n` identical disks evenly sharing `total_capacity_blocks`.
  static DiskGroupConfig Uniform(int n, DiskModel model, BlockCount total_capacity_blocks,
                                 ByteCount block_bytes = kDefaultBlockBytes,
                                 BlockCount stripe_unit = 32);
};

/// n disks + allocator, presented as one substrate.
class StripedDiskGroup {
 public:
  /// Creates the group, registering one resource per disk in `sim`.
  StripedDiskGroup(const DiskGroupConfig& config, sim::Simulation* sim);

  /// Session view over the spindles of an owning group: the device timelines
  /// (and therefore contention) are shared with the owner, but the space
  /// allocator is private and covers exactly `region` — the blocks a query
  /// session leased from the site allocator (exec/query_session.h).
  StripedDiskGroup(std::vector<DiskVolume*> spindles, const ExtentList& region,
                   BlockCount stripe_unit, ByteCount block_bytes);

  int disk_count() const { return static_cast<int>(disks_.size()); }
  DiskVolume* disk(int i) { return disks_[static_cast<size_t>(i)]; }
  DiskSpaceAllocator& allocator() { return allocator_; }
  const DiskSpaceAllocator& allocator() const { return allocator_; }
  ByteCount block_bytes() const { return block_bytes_; }

  /// Sum of per-disk sustained rates — the model's aggregate X_D.
  BytesPerSecond aggregate_rate_bps() const;

  /// Reads every extent in `extents` (one disk request per extent, issued at
  /// `ready`, parallel across disks). Payloads append to `out` in extent
  /// order when non-null. \returns the hull of the per-disk intervals.
  Result<sim::Interval> ReadExtents(const ExtentList& extents, SimSeconds ready,
                                    std::vector<BlockPayload>* out = nullptr);

  /// Writes blocks over `extents` in order. `payloads`, when non-null, must
  /// hold exactly TotalBlocks(extents) entries; null writes phantoms.
  Result<sim::Interval> WriteExtents(const ExtentList& extents, SimSeconds ready,
                                     const std::vector<BlockPayload>* payloads = nullptr);

  /// Steady-state cost profile for up to `max_chunks` chunked requests over
  /// `extents` starting at logical block `offset` (sim/pipeline.h
  /// coalescing). The striping pattern a chunk dissolves into rotates across
  /// disks with a period set by the chunk size and the stripe unit, so the
  /// profile carries one period's operations and a cycle length. Empty —
  /// per-chunk fallback — unless every disk request in the verified prefix
  /// sequentially continues that disk's previous one (no positioning time)
  /// and no disk carries an active fault plan.
  sim::ChunkCostProfile ExtentChunkProfile(const ExtentList& extents, BlockCount offset,
                                           BlockCount chunk, std::uint64_t max_chunks, bool write);

  /// Aggregated statistics across all disks.
  DiskStats TotalStats() const;

  /// Aggregated fault/recovery counters across all disks (zero when no disk
  /// carries an injector).
  sim::FaultStats TotalFaultStats() const;

  /// Emits a whole-extent-list read as one pipeline stage ready after
  /// `deps`, re-attempted in place up to `retry_limit` times on kDeviceError
  /// (payloads delivered by a failed attempt's earlier extents are discarded
  /// before the re-read). \returns the stage.
  Result<sim::StageId> IssueRead(sim::Pipeline& pipe, std::string_view phase,
                                 std::span<const sim::StageId> deps, const ExtentList& extents,
                                 std::vector<BlockPayload>* out = nullptr, int retry_limit = 0);
  Result<sim::StageId> IssueRead(sim::Pipeline& pipe, std::string_view phase,
                                 std::initializer_list<sim::StageId> deps,
                                 const ExtentList& extents,
                                 std::vector<BlockPayload>* out = nullptr,
                                 int retry_limit = 0) {
    return IssueRead(pipe, phase, std::span<const sim::StageId>(deps.begin(), deps.size()),
                     extents, out, retry_limit);
  }

  /// Emits a whole-extent-list write as one pipeline stage ready after
  /// `deps`. `payloads` null writes phantoms.
  Result<sim::StageId> IssueWrite(sim::Pipeline& pipe, std::string_view phase,
                                  std::span<const sim::StageId> deps, const ExtentList& extents,
                                  const std::vector<BlockPayload>* payloads = nullptr);
  Result<sim::StageId> IssueWrite(sim::Pipeline& pipe, std::string_view phase,
                                  std::initializer_list<sim::StageId> deps,
                                  const ExtentList& extents,
                                  const std::vector<BlockPayload>* payloads = nullptr) {
    return IssueWrite(pipe, phase, std::span<const sim::StageId>(deps.begin(), deps.size()),
                      extents, payloads);
  }

 private:
  /// Spindles owned by this group (empty in a session view).
  std::vector<std::unique_ptr<DiskVolume>> owned_;
  /// The spindles addressed by extents — owned or borrowed.
  std::vector<DiskVolume*> disks_;
  DiskSpaceAllocator allocator_;
  ByteCount block_bytes_;
};

/// Pipeline source streaming a disk-resident logical sequence: block
/// [offset, offset+count) of a Transfer maps to SliceExtents(extents,
/// offset, count). The ExtentList must outlive the source.
class ExtentReadSource final : public sim::BlockSource {
 public:
  ExtentReadSource(StripedDiskGroup* group, const ExtentList* extents)
      : group_(group), extents_(extents) {}

  Result<sim::Interval> Read(BlockCount offset, BlockCount count, SimSeconds ready,
                             std::vector<BlockPayload>* out) override;
  sim::ChunkCostProfile CostProfile(BlockCount offset, BlockCount chunk,
                                    std::uint64_t max_chunks) override {
    return group_->ExtentChunkProfile(*extents_, offset, chunk, max_chunks, /*write=*/false);
  }
  std::string_view device() const override { return "disks"; }

 private:
  StripedDiskGroup* group_;
  const ExtentList* extents_;
};

/// Pipeline sink writing a Transfer's chunks over a pre-allocated extent
/// list, sliced the same way.
class ExtentWriteSink final : public sim::BlockSink {
 public:
  ExtentWriteSink(StripedDiskGroup* group, const ExtentList* extents)
      : group_(group), extents_(extents) {}

  Result<sim::Interval> Write(BlockCount offset, BlockCount count, SimSeconds ready,
                              std::vector<BlockPayload>* payloads) override;
  sim::ChunkCostProfile CostProfile(BlockCount offset, BlockCount chunk,
                                    std::uint64_t max_chunks) override {
    return group_->ExtentChunkProfile(*extents_, offset, chunk, max_chunks, /*write=*/true);
  }
  std::string_view device() const override { return "disks"; }

 private:
  StripedDiskGroup* group_;
  const ExtentList* extents_;
};

}  // namespace tertio::disk
