#include "disk/extent_cache.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/auditor.h"
#include "util/string_util.h"

namespace tertio::disk {

ExtentCache::ExtentCache(std::string name, std::unique_ptr<StripedDiskGroup> view)
    : name_(std::move(name)), view_(std::move(view)) {
  TERTIO_CHECK(view_ != nullptr, "extent cache requires a disk view");
}

bool ExtentCache::Contains(const void* volume, BlockIndex start, BlockCount count) const {
  return entries_.find(Key{volume, start, count}) != entries_.end();
}

bool ExtentCache::Lookup(const void* volume, BlockIndex start, BlockCount count, SimSeconds now) {
  ++stats_.lookups;
  auto it = entries_.find(Key{volume, start, count});
  if (it == entries_.end() || now < it->second.ready) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  ++it->second.hits;
  it->second.last_use = std::max(it->second.last_use, now);
  return true;
}

Status ExtentCache::EvictUntil(BlockCount needed, SimSeconds now) {
  DiskSpaceAllocator& alloc = view_->allocator();
  while (alloc.free_blocks() < needed) {
    if (entries_.empty()) {
      return Status::Internal(StrFormat("extent cache %s: no entries left but %llu of %llu "
                                           "blocks free",
                                           name_.c_str(),
                                           static_cast<unsigned long long>(alloc.free_blocks().value()),
                                           static_cast<unsigned long long>(needed.value())));
    }
    auto victim = entries_.begin();
    double victim_score = std::numeric_limits<double>::infinity();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      double score = Score(it->second);
      if (score < victim_score) {
        victim_score = score;
        victim = it;
      }
    }
    BlockCount blocks = TotalBlocks(victim->second.extents);
    TERTIO_RETURN_IF_ERROR(alloc.Free(victim->second.extents, now, "cache:evict"));
    resident_ -= std::min(resident_, blocks);
    ++stats_.evictions;
    stats_.blocks_evicted += blocks;
    entries_.erase(victim);
    if (auditor_ != nullptr) auditor_->OnCacheEvict(name_, blocks, resident_);
  }
  return Status::OK();
}

Result<bool> ExtentCache::Admit(const void* volume, BlockIndex start, BlockCount count,
                                BytesPerSecond tape_rate_bps, SimSeconds now) {
  if (count == 0 || count > capacity_blocks()) return false;
  Key key{volume, start, count};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.last_use = std::max(it->second.last_use, now);
    return false;
  }
  TERTIO_RETURN_IF_ERROR(EvictUntil(count, now));
  TERTIO_ASSIGN_OR_RETURN(ExtentList extents,
                          view_->allocator().Allocate(count, now, "cache:fill"));
  // The fill pays the disk side of copying the pass that just swept the
  // extent off tape: a phantom striped write (the simulator never moves
  // payload bytes for cached data — the drive re-reads the tape volume's
  // block store on a hit, so served data is bit-identical).
  auto write = view_->WriteExtents(extents, now, nullptr);
  if (!write.ok()) {
    (void)view_->allocator().Free(extents, now, "cache:fill");  // best-effort unwind
    return write.status();
  }

  Entry entry;
  entry.extents = std::move(extents);
  entry.ready = write.value().end;
  entry.last_use = std::max(now, write.value().end);
  BytesPerSecond disk_rate = view_->aggregate_rate_bps();
  if (tape_rate_bps > 0.0 && disk_rate > 0.0 && disk_rate > tape_rate_bps) {
    double bytes = static_cast<double>(count.value()) * static_cast<double>(view_->block_bytes().value());
    entry.benefit_seconds = bytes / tape_rate_bps.value() - bytes / disk_rate.value();
  }
  entries_.emplace(key, std::move(entry));
  resident_ += count;
  ++stats_.fills;
  stats_.blocks_filled += count;
  if (auditor_ != nullptr) auditor_->OnCacheFill(name_, count, resident_, capacity_blocks());
  return true;
}

Result<sim::Interval> ExtentCache::ReadThrough(const void* volume, BlockIndex entry_start,
                                               BlockCount entry_count, BlockIndex start,
                                               BlockCount count, SimSeconds ready) {
  auto it = entries_.find(Key{volume, entry_start, entry_count});
  if (it == entries_.end()) {
    return Status::NotFound(StrFormat("extent cache %s: read-through of a non-resident entry "
                                         "at block %llu",
                                         name_.c_str(),
                                         static_cast<unsigned long long>(entry_start.value())));
  }
  if (start < entry_start || count > entry_count ||
      start - entry_start > entry_count - count) {
    return Status::InvalidArgument(
        StrFormat("extent cache %s: read [%llu, +%llu) outside entry [%llu, +%llu)",
                     name_.c_str(), static_cast<unsigned long long>(start.value()),
                     static_cast<unsigned long long>(count.value()),
                     static_cast<unsigned long long>(entry_start.value()),
                     static_cast<unsigned long long>(entry_count.value())));
  }
  TERTIO_ASSIGN_OR_RETURN(ExtentList slice,
                          SliceExtents(it->second.extents, start - entry_start, count));
  TERTIO_ASSIGN_OR_RETURN(sim::Interval interval, view_->ReadExtents(slice, ready, nullptr));
  stats_.blocks_served += count;
  ++it->second.hits;
  it->second.last_use = std::max(it->second.last_use, interval.end);
  return interval;
}

void ExtentCache::BindAuditor(sim::Auditor* auditor) {
  auditor_ = auditor;
  view_->allocator().BindAuditor(auditor);
}

}  // namespace tertio::disk
