#include "disk/striped_group.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace tertio::disk {

DiskGroupConfig DiskGroupConfig::Uniform(int n, DiskModel model, BlockCount total_capacity_blocks,
                                         ByteCount block_bytes, BlockCount stripe_unit) {
  DiskGroupConfig config;
  TERTIO_CHECK(n > 0, "disk group requires at least one disk");
  BlockCount per_disk = (total_capacity_blocks + static_cast<BlockCount>(n) - 1) /
                        static_cast<BlockCount>(n);
  for (int i = 0; i < n; ++i) {
    config.disks.push_back(model);
    config.per_disk_capacity.push_back(per_disk);
  }
  config.block_bytes = block_bytes;
  config.stripe_unit = stripe_unit;
  return config;
}

StripedDiskGroup::StripedDiskGroup(const DiskGroupConfig& config, sim::Simulation* sim)
    : allocator_(config.per_disk_capacity, config.stripe_unit),
      block_bytes_(config.block_bytes) {
  TERTIO_CHECK(sim != nullptr, "disk group requires a simulation");
  TERTIO_CHECK(config.disks.size() == config.per_disk_capacity.size(),
               "disk models and capacities must align");
  for (size_t i = 0; i < config.disks.size(); ++i) {
    // Allocator sizing: each spindle's capacity must be expressible in
    // bytes before the volume materializes its block store.
    Result<ByteCount> sized =
        CheckedBlocksToBytes(config.per_disk_capacity[i], config.block_bytes);
    TERTIO_CHECK(sized.ok(), sized.status().ToString());
    std::string name = StrFormat("disk%zu", i);
    sim::Resource* resource = sim->CreateResource(name);
    owned_.push_back(std::make_unique<DiskVolume>(name, config.disks[i], resource,
                                                  config.per_disk_capacity[i],
                                                  config.block_bytes));
    disks_.push_back(owned_.back().get());
  }
}

StripedDiskGroup::StripedDiskGroup(std::vector<DiskVolume*> spindles, const ExtentList& region,
                                   BlockCount stripe_unit, ByteCount block_bytes)
    : disks_(std::move(spindles)),
      allocator_(static_cast<int>(disks_.size()), region, stripe_unit),
      block_bytes_(block_bytes) {
  for (const auto* d : disks_) TERTIO_CHECK(d != nullptr, "session view requires live spindles");
}

BytesPerSecond StripedDiskGroup::aggregate_rate_bps() const {
  BytesPerSecond total = 0.0;
  for (const auto& d : disks_) total += d->model().transfer_rate_bps;
  return total;
}

Result<sim::Interval> StripedDiskGroup::ReadExtents(const ExtentList& extents, SimSeconds ready,
                                                    std::vector<BlockPayload>* out) {
  sim::Interval hull = sim::Interval::At(ready);
  bool first = true;
  for (const Extent& extent : extents) {
    if (extent.disk < 0 || extent.disk >= disk_count()) {
      return Status::InvalidArgument(StrFormat("extent names unknown disk %d", extent.disk));
    }
    TERTIO_ASSIGN_OR_RETURN(
        sim::Interval interval,
        disks_[static_cast<size_t>(extent.disk)]->Read(extent.start, extent.count, ready, out));
    hull = first ? interval : sim::Interval::Hull(hull, interval);
    first = false;
  }
  return hull;
}

Result<sim::Interval> StripedDiskGroup::WriteExtents(const ExtentList& extents, SimSeconds ready,
                                                     const std::vector<BlockPayload>* payloads) {
  if (payloads != nullptr && payloads->size() != TotalBlocks(extents)) {
    return Status::InvalidArgument(
        StrFormat("payload count %zu does not match extent blocks %llu", payloads->size(),
                  static_cast<unsigned long long>(TotalBlocks(extents).value())));
  }
  sim::Interval hull = sim::Interval::At(ready);
  bool first = true;
  size_t offset = 0;
  for (const Extent& extent : extents) {
    if (extent.disk < 0 || extent.disk >= disk_count()) {
      return Status::InvalidArgument(StrFormat("extent names unknown disk %d", extent.disk));
    }
    const BlockPayload* slice = payloads != nullptr ? payloads->data() + offset : nullptr;
    TERTIO_ASSIGN_OR_RETURN(
        sim::Interval interval,
        disks_[static_cast<size_t>(extent.disk)]->Write(extent.start, extent.count, ready, slice));
    offset += extent.count.value();
    hull = first ? interval : sim::Interval::Hull(hull, interval);
    first = false;
  }
  return hull;
}

Result<sim::StageId> StripedDiskGroup::IssueRead(sim::Pipeline& pipe, std::string_view phase,
                                                 std::span<const sim::StageId> deps,
                                                 const ExtentList& extents,
                                                 std::vector<BlockPayload>* out,
                                                 int retry_limit) {
  BlockCount blocks = TotalBlocks(extents);
  // A mid-extent-list failure may already have delivered the earlier
  // extents' payloads; drop them at the top of every attempt so a retry
  // produces the list exactly once.
  const std::size_t restore = out != nullptr ? out->size() : 0;
  return pipe.StageWithRetry(
      phase, "disks", deps, blocks, blocks * block_bytes_,
      [&](SimSeconds ready) {
        if (out != nullptr) out->resize(restore);
        return ReadExtents(extents, ready, out);
      },
      retry_limit);
}

Result<sim::StageId> StripedDiskGroup::IssueWrite(sim::Pipeline& pipe, std::string_view phase,
                                                  std::span<const sim::StageId> deps,
                                                  const ExtentList& extents,
                                                  const std::vector<BlockPayload>* payloads) {
  BlockCount blocks = TotalBlocks(extents);
  return pipe.Stage(phase, "disks", deps, blocks, blocks * block_bytes_,
                    [&](SimSeconds ready) { return WriteExtents(extents, ready, payloads); });
}

Result<sim::Interval> ExtentReadSource::Read(BlockCount offset, BlockCount count,
                                             SimSeconds ready,
                                             std::vector<BlockPayload>* out) {
  TERTIO_ASSIGN_OR_RETURN(ExtentList slice, SliceExtents(*extents_, offset, count));
  return group_->ReadExtents(slice, ready, out);
}

Result<sim::Interval> ExtentWriteSink::Write(BlockCount offset, BlockCount count,
                                             SimSeconds ready,
                                             std::vector<BlockPayload>* payloads) {
  TERTIO_ASSIGN_OR_RETURN(ExtentList slice, SliceExtents(*extents_, offset, count));
  return group_->WriteExtents(slice, ready, payloads);
}

sim::ChunkCostProfile StripedDiskGroup::ExtentChunkProfile(const ExtentList& extents,
                                                           BlockCount offset, BlockCount chunk,
                                                           std::uint64_t max_chunks, bool write) {
  if (chunk == 0 || max_chunks == 0) return {};
  // Any active fault plan must flow through the per-chunk path: it draws
  // from a seeded RNG stream whose consumption order is part of the
  // simulation's reproducibility contract.
  for (const auto& d : disks_) {
    if (d->fault_injector() != nullptr && d->fault_injector()->enabled()) return {};
  }
  BlockCount total = TotalBlocks(extents);
  if (offset >= total) return {};
  std::uint64_t n_max = (total - offset) / chunk;
  if (max_chunks < n_max) n_max = max_chunks;
  if (n_max < 2) return {};

  // A chunk dissolves into a sequence of per-disk pieces; the (disk, count)
  // sequence — the chunk's *pattern* — rotates across chunks with a period
  // of lcm(chunk, stripe ring) / chunk. Walk chunks verifying (a) every
  // piece sequentially continues its disk (the no-positioning steady state
  // the profile replays, anchored at the disks' live cursors) and (b) the
  // patterns are periodic, so one period's operations describe them all.
  using Pattern = std::vector<std::pair<int, BlockCount>>;
  // With 2 disks and a 32-block stripe unit the period is 64 / gcd(chunk, 64)
  // chunks at worst; accept up to that rather than guess beyond it.
  constexpr std::uint64_t kMaxCycle = 64;
  std::vector<Pattern> lead;
  std::vector<ExtentList> lead_slices;
  std::vector<BlockIndex> next(disks_.size(), 0);
  std::vector<bool> touched(disks_.size(), false);
  std::uint64_t cycle = 0;
  std::uint64_t verified = 0;
  for (std::uint64_t c = 0; c < n_max; ++c) {
    Result<ExtentList> slice = SliceExtents(extents, offset + c * chunk, chunk);
    if (!slice.ok()) break;
    bool ok = true;
    Pattern pattern;
    pattern.reserve(slice->size());
    for (const Extent& piece : *slice) {
      if (piece.disk < 0 || piece.disk >= disk_count()) {
        ok = false;
        break;
      }
      auto d = static_cast<size_t>(piece.disk);
      if (!touched[d]) {
        if (!disks_[d]->IsSequential(piece.start)) {
          ok = false;
          break;
        }
        touched[d] = true;
      } else if (piece.start != next[d]) {
        ok = false;
        break;
      }
      next[d] = piece.start + piece.count;
      pattern.emplace_back(piece.disk, piece.count);
    }
    if (!ok) break;
    if (cycle == 0) {
      if (c > 0 && pattern == lead[0]) {
        cycle = c;
      } else if (c >= kMaxCycle) {
        break;
      } else {
        lead.push_back(std::move(pattern));
        lead_slices.push_back(std::move(*slice));
        verified = c + 1;
        continue;
      }
    }
    if (pattern != lead[c % cycle]) break;
    verified = c + 1;
  }
  // A prefix that never repeated is itself the cycle (it was verified whole).
  if (cycle == 0) cycle = verified;
  if (cycle == 0) return {};
  std::uint64_t chunks = (verified / cycle) * cycle;
  if (chunks < 2) return {};

  sim::ChunkCostProfile profile;
  profile.chunks = chunks;
  profile.cycle = cycle;
  profile.ops_per_chunk.reserve(cycle);
  const char* tag = write ? "disk.write" : "disk.read";
  for (std::uint64_t c = 0; c < cycle; ++c) {
    const ExtentList& slice = lead_slices[c];
    profile.ops_per_chunk.push_back(static_cast<std::uint32_t>(slice.size()));
    for (const Extent& piece : slice) {
      auto d = static_cast<size_t>(piece.disk);
      ByteCount bytes = piece.count * block_bytes_;
      profile.ops.push_back({disks_[d]->resource(),
                             disks_[d]->model().TransferSeconds(bytes), bytes, tag});
    }
  }

  // Per-disk share of one cycle. Continuity makes each disk's pieces one
  // contiguous run, so a committed batch advances its cursor linearly.
  struct Share {
    int disk;
    BlockIndex first;
    BlockCount blocks;
    std::uint64_t requests;
  };
  std::vector<Share> shares;
  for (std::uint64_t c = 0; c < cycle; ++c) {
    for (const Extent& piece : lead_slices[c]) {
      auto it = std::find_if(shares.begin(), shares.end(),
                             [&](const Share& s) { return s.disk == piece.disk; });
      if (it == shares.end()) {
        shares.push_back(Share{piece.disk, piece.start, piece.count, 1});
      } else {
        it->blocks += piece.count;
        it->requests += 1;
      }
    }
  }
  profile.commit = [this, shares = std::move(shares), cycle, write](std::uint64_t committed) {
    std::uint64_t periods = committed / cycle;
    for (const Share& share : shares) {
      disks_[static_cast<size_t>(share.disk)]->CommitCoalesced(
          write, share.first, periods * share.blocks, periods * share.requests);
    }
  };
  return profile;
}

DiskStats StripedDiskGroup::TotalStats() const {
  DiskStats total;
  for (const auto& d : disks_) {
    total.blocks_read += d->stats().blocks_read;
    total.blocks_written += d->stats().blocks_written;
    total.requests += d->stats().requests;
    total.positioned_requests += d->stats().positioned_requests;
  }
  return total;
}

sim::FaultStats StripedDiskGroup::TotalFaultStats() const {
  sim::FaultStats total;
  for (const auto& d : disks_) {
    if (d->fault_injector() != nullptr) total.Add(d->fault_injector()->stats());
  }
  return total;
}

}  // namespace tertio::disk
