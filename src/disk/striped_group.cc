#include "disk/striped_group.h"

#include "util/string_util.h"

namespace tertio::disk {

DiskGroupConfig DiskGroupConfig::Uniform(int n, DiskModel model, BlockCount total_capacity_blocks,
                                         ByteCount block_bytes, BlockCount stripe_unit) {
  DiskGroupConfig config;
  TERTIO_CHECK(n > 0, "disk group requires at least one disk");
  BlockCount per_disk = (total_capacity_blocks + static_cast<BlockCount>(n) - 1) /
                        static_cast<BlockCount>(n);
  for (int i = 0; i < n; ++i) {
    config.disks.push_back(model);
    config.per_disk_capacity.push_back(per_disk);
  }
  config.block_bytes = block_bytes;
  config.stripe_unit = stripe_unit;
  return config;
}

StripedDiskGroup::StripedDiskGroup(const DiskGroupConfig& config, sim::Simulation* sim)
    : allocator_(config.per_disk_capacity, config.stripe_unit),
      block_bytes_(config.block_bytes) {
  TERTIO_CHECK(sim != nullptr, "disk group requires a simulation");
  TERTIO_CHECK(config.disks.size() == config.per_disk_capacity.size(),
               "disk models and capacities must align");
  for (size_t i = 0; i < config.disks.size(); ++i) {
    std::string name = StrFormat("disk%zu", i);
    sim::Resource* resource = sim->CreateResource(name);
    disks_.push_back(std::make_unique<DiskVolume>(name, config.disks[i], resource,
                                                  config.per_disk_capacity[i],
                                                  config.block_bytes));
  }
}

double StripedDiskGroup::aggregate_rate_bps() const {
  double total = 0.0;
  for (const auto& d : disks_) total += d->model().transfer_rate_bps;
  return total;
}

Result<sim::Interval> StripedDiskGroup::ReadExtents(const ExtentList& extents, SimSeconds ready,
                                                    std::vector<BlockPayload>* out) {
  sim::Interval hull = sim::Interval::At(ready);
  bool first = true;
  for (const Extent& extent : extents) {
    if (extent.disk < 0 || extent.disk >= disk_count()) {
      return Status::InvalidArgument(StrFormat("extent names unknown disk %d", extent.disk));
    }
    TERTIO_ASSIGN_OR_RETURN(
        sim::Interval interval,
        disks_[static_cast<size_t>(extent.disk)]->Read(extent.start, extent.count, ready, out));
    hull = first ? interval : sim::Interval::Hull(hull, interval);
    first = false;
  }
  return hull;
}

Result<sim::Interval> StripedDiskGroup::WriteExtents(const ExtentList& extents, SimSeconds ready,
                                                     const std::vector<BlockPayload>* payloads) {
  if (payloads != nullptr && payloads->size() != TotalBlocks(extents)) {
    return Status::InvalidArgument(
        StrFormat("payload count %zu does not match extent blocks %llu", payloads->size(),
                  static_cast<unsigned long long>(TotalBlocks(extents))));
  }
  sim::Interval hull = sim::Interval::At(ready);
  bool first = true;
  size_t offset = 0;
  for (const Extent& extent : extents) {
    if (extent.disk < 0 || extent.disk >= disk_count()) {
      return Status::InvalidArgument(StrFormat("extent names unknown disk %d", extent.disk));
    }
    const BlockPayload* slice = payloads != nullptr ? payloads->data() + offset : nullptr;
    TERTIO_ASSIGN_OR_RETURN(
        sim::Interval interval,
        disks_[static_cast<size_t>(extent.disk)]->Write(extent.start, extent.count, ready, slice));
    offset += extent.count;
    hull = first ? interval : sim::Interval::Hull(hull, interval);
    first = false;
  }
  return hull;
}

Result<sim::StageId> StripedDiskGroup::IssueRead(sim::Pipeline& pipe, std::string_view phase,
                                                 std::span<const sim::StageId> deps,
                                                 const ExtentList& extents,
                                                 std::vector<BlockPayload>* out,
                                                 int retry_limit) {
  BlockCount blocks = TotalBlocks(extents);
  // A mid-extent-list failure may already have delivered the earlier
  // extents' payloads; drop them at the top of every attempt so a retry
  // produces the list exactly once.
  const std::size_t restore = out != nullptr ? out->size() : 0;
  return pipe.StageWithRetry(
      phase, "disks", deps, blocks, blocks * block_bytes_,
      [&](SimSeconds ready) {
        if (out != nullptr) out->resize(restore);
        return ReadExtents(extents, ready, out);
      },
      retry_limit);
}

Result<sim::StageId> StripedDiskGroup::IssueWrite(sim::Pipeline& pipe, std::string_view phase,
                                                  std::span<const sim::StageId> deps,
                                                  const ExtentList& extents,
                                                  const std::vector<BlockPayload>* payloads) {
  BlockCount blocks = TotalBlocks(extents);
  return pipe.Stage(phase, "disks", deps, blocks, blocks * block_bytes_,
                    [&](SimSeconds ready) { return WriteExtents(extents, ready, payloads); });
}

Result<sim::Interval> ExtentReadSource::Read(BlockCount offset, BlockCount count,
                                             SimSeconds ready,
                                             std::vector<BlockPayload>* out) {
  TERTIO_ASSIGN_OR_RETURN(ExtentList slice, SliceExtents(*extents_, offset, count));
  return group_->ReadExtents(slice, ready, out);
}

Result<sim::Interval> ExtentWriteSink::Write(BlockCount offset, BlockCount count,
                                             SimSeconds ready,
                                             std::vector<BlockPayload>* payloads) {
  TERTIO_ASSIGN_OR_RETURN(ExtentList slice, SliceExtents(*extents_, offset, count));
  return group_->WriteExtents(slice, ready, payloads);
}

DiskStats StripedDiskGroup::TotalStats() const {
  DiskStats total;
  for (const auto& d : disks_) {
    total.blocks_read += d->stats().blocks_read;
    total.blocks_written += d->stats().blocks_written;
    total.requests += d->stats().requests;
    total.positioned_requests += d->stats().positioned_requests;
  }
  return total;
}

sim::FaultStats StripedDiskGroup::TotalFaultStats() const {
  sim::FaultStats total;
  for (const auto& d : disks_) {
    if (d->fault_injector() != nullptr) total.Add(d->fault_injector()->stats());
  }
  return total;
}

}  // namespace tertio::disk
