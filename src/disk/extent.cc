#include "disk/extent.h"

#include <algorithm>

#include "util/status.h"

namespace tertio::disk {

Result<ExtentList> SliceExtents(const ExtentList& extents, BlockCount offset, BlockCount count) {
  ExtentList out;
  BlockCount pos = 0;
  for (const Extent& e : extents) {
    if (count == 0) break;
    BlockCount ext_end = pos + e.count;
    if (ext_end <= offset) {
      pos = ext_end;
      continue;
    }
    BlockCount skip = offset > pos ? offset - pos : 0;
    BlockCount avail = e.count - skip;
    BlockCount take = std::min<BlockCount>(avail, count);
    out.push_back(Extent{e.disk, e.start + skip, take});
    count -= take;
    offset += take;
    pos = ext_end;
  }
  if (count != 0) {
    return Status::InvalidArgument("extent slice out of range: " + std::to_string(count.value()) +
                                   " blocks past the end of a " +
                                   std::to_string(TotalBlocks(extents).value()) + "-block sequence");
  }
  return out;
}

}  // namespace tertio::disk
