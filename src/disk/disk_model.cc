#include "disk/disk_model.h"

namespace tertio::disk {

DiskModel DiskModel::QuantumFireball1080() {
  DiskModel m;
  m.name = "Quantum Fireball 1080S";
  m.transfer_rate_bps = 4.2e6;
  m.positioning_seconds = 0.0145;  // ~10.5 ms seek + ~4 ms rotational (7200/2 rpm class)
  return m;
}

DiskModel DiskModel::QuantumLightning540() {
  DiskModel m;
  m.name = "Quantum Lightning 540S";
  m.transfer_rate_bps = 2.8e6;
  m.positioning_seconds = 0.017;
  return m;
}

DiskModel DiskModel::Ideal(BytesPerSecond rate_bps) {
  DiskModel m;
  m.name = "ideal-disk";
  m.transfer_rate_bps = rate_bps;
  m.positioning_seconds = 0.0;
  return m;
}

}  // namespace tertio::disk
