#pragma once

/// \file disk_model.h
/// Performance model of one disk drive.
///
/// The paper uses a transfer-only cost model for disks but justifies it by
/// requiring multi-page requests (≥30 blocks), under which positioning cost
/// is negligible (Section 3.2, citing [7]). tertio models positioning
/// explicitly — a per-request positioning time charged whenever a request
/// does not continue sequentially from the previous one — so that the ≥30
/// block claim is checkable and so that the random-I/O degradation the paper
/// observes for tiny hash-bucket writes (Section 9, smallest memory sizes)
/// emerges from the model instead of being hand-inserted.

#include <string>

#include "util/units.h"

namespace tertio::disk {

/// Static performance characteristics of one disk.
struct DiskModel {
  std::string name = "generic-disk";

  /// Sustained media transfer rate (the paper's X_D).
  BytesPerSecond transfer_rate_bps = 4.0e6;

  /// Average positioning time (seek + rotational latency) charged per
  /// discontiguous request.
  SimSeconds positioning_seconds = 0.012;

  /// Seconds to transfer `bytes` (excluding positioning).
  SimSeconds TransferSeconds(ByteCount bytes) const {
    return bytes / transfer_rate_bps;
  }

  /// Quantum Fireball 1080 (the 1 GB disk on each SCSI bus in the paper's
  /// testbed, Section 6).
  static DiskModel QuantumFireball1080();

  /// Quantum Lightning 540 (the second disk on the first SCSI bus).
  static DiskModel QuantumLightning540();

  /// Positioning-free disk for isolating algorithmic cost in tests.
  static DiskModel Ideal(BytesPerSecond rate_bps);
};

}  // namespace tertio::disk
