#pragma once

/// \file extent_cache.h
/// Cross-query cache of hot tape extents on disk — the HSM tier.
///
/// The paper treats disk purely as per-join scratch, but a multi-query
/// service (exec/query_scheduler.h) re-reads the same tape extents across
/// queries. The cache keeps whole relation extents disk-resident inside a
/// dedicated carve of the site's disk space: the carve is allocated from
/// the site allocator up front and managed by the cache's own region-view
/// DiskSpaceAllocator, so it is disjoint from every session's D_q carve and
/// Table 2's scratch bounds keep holding per session. A hit turns a tape
/// pass into striped disk reads at disk cost (the drive stays parked —
/// tape/tape_drive.h cache window); misses can be admitted after the join
/// that paid the physical pass.
///
/// Eviction is cost-aware (GreedyDual flavor): each entry's score is its
/// last-use virtual time plus the seconds one full re-read would save by
/// coming from disk instead of tape (bytes × tape-vs-disk cost delta), so
/// a recently used or expensive-to-refetch extent outlives a cheap stale
/// one. The cache never moves payload bytes — disk copies are phantom, and
/// the drive delivers payloads from the tape volume's block store — so data
/// served through the cache is bit-identical to a physical read.
///
/// Keys are opaque: (volume pointer, start block, block count) identifies a
/// relation extent without the disk layer depending on tape types. All
/// admission is whole-extent; a partially cached relation is not a hit.
///
/// Under SimSan every fill/evict reports to the auditor, which keeps an
/// independent ledger per cache: resident blocks must stay within the carve
/// and must always equal Σ fills − Σ evicts.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "disk/striped_group.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::sim {
class Auditor;
}

namespace tertio::disk {

/// Cumulative cache activity counters.
struct ExtentCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  /// Blocks delivered out of the cache (disk reads in place of tape reads).
  BlockCount blocks_served = 0;
  BlockCount blocks_filled = 0;
  BlockCount blocks_evicted = 0;
};

/// Site-owned disk cache of tape extents. Thread-compatible like the rest
/// of the simulator: one cache per Site, driven single-threaded.
class ExtentCache {
 public:
  /// \param view session-view StripedDiskGroup over the cache's carve:
  ///        shared spindles (cache traffic contends with scratch traffic),
  ///        private allocator whose capacity is the carve.
  ExtentCache(std::string name, std::unique_ptr<StripedDiskGroup> view);

  const std::string& name() const { return name_; }
  const ExtentCacheStats& stats() const { return stats_; }
  BlockCount capacity_blocks() const { return view_->allocator().capacity_blocks(); }
  BlockCount resident_blocks() const { return resident_; }
  std::size_t entry_count() const { return entries_.size(); }

  /// True when [start, start+count) of `volume` is resident, without
  /// touching counters or recency.
  bool Contains(const void* volume, BlockIndex start, BlockCount count) const;

  /// Hit test that counts: bumps lookups and hits/misses, and refreshes the
  /// entry's recency at `now` on a hit.
  bool Lookup(const void* volume, BlockIndex start, BlockCount count, SimSeconds now);

  /// Admits the extent, evicting lower-scored entries until it fits, and
  /// charges the fill as a phantom striped write at `now` (the disk-side
  /// cost of copying the just-swept pass). `tape_rate_bps` is the effective
  /// tape rate the extent would otherwise be read at — it sets the entry's
  /// retention benefit. \returns false (without error) when the extent can
  /// never fit or is already resident; true when the fill happened.
  Result<bool> Admit(const void* volume, BlockIndex start, BlockCount count,
                     BytesPerSecond tape_rate_bps, SimSeconds now);

  /// Charges the disk reads serving blocks [start, start+count) of the
  /// resident entry keyed by (volume, entry_start, entry_count), ready at
  /// `ready`. The reads are phantom — the caller (the tape drive's cache
  /// window) delivers payloads from the volume's own block store.
  Result<sim::Interval> ReadThrough(const void* volume, BlockIndex entry_start,
                                    BlockCount entry_count, BlockIndex start, BlockCount count,
                                    SimSeconds ready);

  /// Registers a SimSan auditor on the cache and its region allocator.
  /// Null detaches.
  void BindAuditor(sim::Auditor* auditor);

 private:
  using Key = std::tuple<const void*, BlockIndex, BlockCount>;

  struct Entry {
    ExtentList extents;
    /// Virtual time the entry's fill write completed; a Lookup earlier than
    /// this misses (the copy is still being written). Serial query streams
    /// never observe this — their lookups happen at a horizon that already
    /// covers the fill — but a concurrently dispatched query's start may
    /// precede another session's fill.
    SimSeconds ready = 0.0;
    SimSeconds last_use = 0.0;
    /// Seconds one full re-read saves coming from disk instead of tape.
    SimSeconds benefit_seconds = 0.0;
    std::uint64_t hits = 0;
  };

  /// GreedyDual retention score: recency aged by refetch benefit. The raw
  /// double is the heap ordering key, not a simulated duration.
  // tertio-lint: allow(units-unwrap)
  static double Score(const Entry& entry) { return (entry.last_use + entry.benefit_seconds).value(); }

  /// Evicts the lowest-scored entries until `needed` blocks are free.
  Status EvictUntil(BlockCount needed, SimSeconds now);

  std::string name_;
  std::unique_ptr<StripedDiskGroup> view_;
  std::map<Key, Entry> entries_;
  BlockCount resident_ = 0;
  ExtentCacheStats stats_;
  sim::Auditor* auditor_ = nullptr;
};

}  // namespace tertio::disk
