#pragma once

/// \file block_payload.h
/// The opaque unit of data held by simulated storage devices.
///
/// Tape and disk volumes store sequences of blocks. A block's payload is
/// either *real* (a byte buffer produced by the relation layer — used in
/// full-data runs, where joins are verified tuple-by-tuple) or *phantom*
/// (nullptr — used in timing-only runs at the paper's multi-GB scales, where
/// only block accounting matters). Payloads are shared immutably, so copying
/// a relation from tape to disk in the simulator costs virtual time but not
/// physical memory.

#include <cstdint>
#include <memory>
#include <vector>

namespace tertio {

/// Immutable byte buffer backing one block; nullptr means phantom.
using BlockPayload = std::shared_ptr<const std::vector<std::uint8_t>>;

/// \returns a payload owning a copy of `bytes`.
inline BlockPayload MakePayload(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

}  // namespace tertio
