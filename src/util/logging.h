#pragma once

/// \file logging.h
/// Minimal leveled logger. Off by default above kWarning so that benchmark
/// output stays clean; tests and examples can raise the level.

#include <sstream>
#include <string>

namespace tertio {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted to stderr.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const char* file, int line, const std::string& message);

/// Stream-style log statement collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tertio

#define TERTIO_LOG(level)                                                            \
  if (static_cast<int>(::tertio::LogLevel::level) < static_cast<int>(::tertio::GetLogLevel())) \
    ;                                                                                \
  else                                                                               \
    ::tertio::internal::LogMessage(::tertio::LogLevel::level, __FILE__, __LINE__).stream()
