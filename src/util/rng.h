#pragma once

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All randomness in tertio (synthetic data, skewed key distributions) flows
/// through Rng so that experiments and tests are exactly reproducible from a
/// seed. The generator is xoshiro256**, seeded via splitmix64.

#include <cstdint>

namespace tertio {

/// \returns a well-mixed 64-bit value for input `x` (splitmix64 finalizer).
/// Also used as the tuple-key hash in tertio::hash.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Deterministic xoshiro256** generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    for (auto& word : state_) {
      seed = SplitMix64(seed);
      word = seed;
    }
  }

  /// \returns a uniform 64-bit value.
  std::uint64_t Next() {
    auto rotl = [](std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// \returns a uniform value in [0, bound). `bound` must be nonzero.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  /// \returns a uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  std::uint64_t state_[4];
};

}  // namespace tertio
