#pragma once

/// \file math_util.h
/// Small arithmetic helpers shared across modules.

#include <cmath>
#include <cstdint>

#include "util/status.h"

namespace tertio {

/// \returns ceil(a / b). `b` must be nonzero.
template <typename T>
constexpr T CeilDiv(T a, T b) {
  return (a + b - 1) / b;
}

/// \returns a clamped to [lo, hi].
template <typename T>
constexpr T Clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// True if `a` and `b` are within `rel` relative tolerance of each other
/// (or both within `abs_tol` of zero).
inline bool ApproxEqual(double a, double b, double rel = 1e-9, double abs_tol = 1e-12) {
  double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= rel * scale;
}

/// \returns the smallest integer n such that n*n >= x.
inline std::uint64_t CeilSqrt(std::uint64_t x) {
  if (x == 0) return 0;
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  while (r * r < x) ++r;
  while (r > 0 && (r - 1) * (r - 1) >= x) --r;
  return r;
}

}  // namespace tertio
