#pragma once

/// \file bench_json.h
/// Machine-readable benchmark records: a tiny JSON emitter plus a
/// merge-by-name store for BENCH_*.json files.
///
/// Every bench binary contributes one record (wall-clock, thread count,
/// per-run simulated seconds, free-form metrics) to a shared file of the
/// shape
///
///   { "benches": [ { "name": "...", ... }, ... ] }
///
/// MergeBenchRecord replaces the record with the same name and appends new
/// ones, so re-running any subset of the suite keeps one current record per
/// bench — the perf trajectory across commits stays diffable.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tertio {

/// Escapes `s` for embedding inside a JSON string literal (quotes excluded).
std::string JsonEscape(std::string_view s);

/// Formats a double as JSON (finite shortest-ish form; NaN/inf become null).
std::string JsonNumber(double value);

/// Splits the body of a JSON array (text between '[' and ']') into its
/// top-level objects, honoring nested braces/brackets and string literals.
/// Non-object tokens are skipped.
std::vector<std::string> SplitTopLevelJsonObjects(std::string_view array_body);

/// \returns the string value of the top-level `"key"` in `object`, if any.
std::optional<std::string> ExtractJsonStringField(std::string_view object,
                                                  std::string_view key);

/// Merges `record_json` — a complete JSON object that carries
/// `"name": "<name>"` — into the "benches" array of the file at `path`,
/// replacing any existing record of the same name. Creates the file if
/// missing; a malformed existing file is an error (nothing is overwritten).
Status MergeBenchRecord(const std::string& path, const std::string& name,
                        const std::string& record_json);

}  // namespace tertio
