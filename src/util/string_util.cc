#include "util/string_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace tertio {

std::string FormatBytes(ByteCount bytes) {
  if (bytes >= kGB) return StrFormat("%.2f GB", static_cast<double>(bytes) / kGB);
  if (bytes >= kMB) return StrFormat("%.1f MB", static_cast<double>(bytes) / kMB);
  if (bytes >= kKB) return StrFormat("%.1f KB", static_cast<double>(bytes) / kKB);
  return StrFormat("%llu bytes", static_cast<unsigned long long>(bytes));
}

std::string FormatDuration(SimSeconds seconds) {
  if (seconds < 0) return "-" + FormatDuration(-seconds);
  if (seconds < 1.0) return StrFormat("%.0f ms", seconds * 1000.0);
  if (seconds < 120.0) return StrFormat("%.1f s", seconds);
  auto total = static_cast<long long>(std::llround(seconds));
  long long h = total / 3600;
  long long m = (total % 3600) / 60;
  long long s = total % 60;
  if (h > 0) return StrFormat("%lldh %02lldm %02llds", h, m, s);
  return StrFormat("%lldm %02llds", m, s);
}

std::string FormatFixed(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace tertio
