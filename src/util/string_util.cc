#include "util/string_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace tertio {

std::string FormatBytes(ByteCount bytes) {
  double raw = static_cast<double>(bytes.value());
  if (bytes >= kGB) return StrFormat("%.2f GB", raw / static_cast<double>(kGB.value()));
  if (bytes >= kMB) return StrFormat("%.1f MB", raw / static_cast<double>(kMB.value()));
  if (bytes >= kKB) return StrFormat("%.1f KB", raw / static_cast<double>(kKB.value()));
  return StrFormat("%llu bytes", static_cast<unsigned long long>(bytes.value()));
}

std::string FormatDuration(SimSeconds seconds) {
  if (seconds < 0) return "-" + FormatDuration(-seconds);
  if (seconds < 1.0) return StrFormat("%.0f ms", seconds.value() * 1000.0);
  if (seconds < 120.0) return StrFormat("%.1f s", seconds.value());
  auto total = static_cast<long long>(std::llround(seconds.value()));
  long long h = total / 3600;
  long long m = (total % 3600) / 60;
  long long s = total % 60;
  if (h > 0) return StrFormat("%lldh %02lldm %02llds", h, m, s);
  return StrFormat("%lldm %02llds", m, s);
}

std::string FormatFixed(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace tertio
