#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace tertio {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeviceError:
      return "DeviceError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "tertio: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

void DieCheckFailure(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "tertio: CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace tertio
