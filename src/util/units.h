#pragma once

/// \file units.h
/// Size and time units used throughout tertio.
///
/// The paper's system model (Section 3) expresses relation sizes, memory and
/// disk space in *blocks*, and device performance in sustained transfer
/// rates. tertio follows that convention: the block is the unit of space and
/// of I/O granularity, and virtual time is measured in seconds (double).
///
/// The paper reports sizes in decimal megabytes ("a 10,000 MB relation");
/// helpers below use decimal MB/GB to match the paper's tables, plus binary
/// KiB/MiB/GiB for buffer arithmetic.

#include <cstdint>

namespace tertio {

/// Count of fixed-size blocks (the paper's `|R|`, `|S|`, `M`, `D`, ...).
using BlockCount = std::uint64_t;

/// Index of a block within a volume or extent.
using BlockIndex = std::uint64_t;

/// Number of bytes.
using ByteCount = std::uint64_t;

/// Virtual time in seconds. All simulation timestamps and durations use this.
using SimSeconds = double;

inline constexpr ByteCount kKB = 1000;
inline constexpr ByteCount kMB = 1000 * kKB;
inline constexpr ByteCount kGB = 1000 * kMB;
inline constexpr ByteCount kKiB = 1024;
inline constexpr ByteCount kMiB = 1024 * kKiB;
inline constexpr ByteCount kGiB = 1024 * kMiB;

/// Default block size. The paper does not fix a block size; it reasons in
/// blocks and notes that ≥30-block disk requests amortize positioning. 8 KiB
/// matches mid-90s page practice and — importantly for reproducing Table 3 —
/// makes the hash methods' per-bucket write buffers fine-grained enough that
/// M = 16 MB can partition a 2.5 GB relation (the paper's own boundary,
/// M >= sqrt(|R|) in blocks).
inline constexpr ByteCount kDefaultBlockBytes = 8 * kKiB;

/// \returns the number of whole blocks needed to hold `bytes`.
constexpr BlockCount BytesToBlocks(ByteCount bytes, ByteCount block_bytes) {
  return (bytes + block_bytes - 1) / block_bytes;
}

constexpr ByteCount BlocksToBytes(BlockCount blocks, ByteCount block_bytes) {
  return blocks * block_bytes;
}

}  // namespace tertio
