#pragma once

/// \file units.h
/// Strong size and time units used throughout tertio.
///
/// The paper's system model (Section 3) expresses relation sizes, memory and
/// disk space in *blocks*, and device performance in sustained transfer
/// rates. tertio follows that convention: the block is the unit of space and
/// of I/O granularity, and virtual time is measured in seconds.
///
/// The paper's entire cost model is dimensional analysis — `|R|`, `M`, `D`
/// and the Table 2 scratch bounds are block counts, device behavior is
/// bytes/second, response time is seconds — so the units are *strong types*,
/// not typedefs: each dimension is a distinct wrapper around its raw
/// representation, and only dimension-legal operators exist.
///
///   * `Blocks`  (aliases `BlockCount`) — a count of fixed-size blocks.
///   * `BlockIdx` (aliases `BlockIndex`) — a *position* in block space. An
///     index is an affine point, not a vector: `BlockIdx + Blocks` moves it,
///     `BlockIdx - BlockIdx` measures a distance (in `Blocks`), but
///     `BlockIdx + BlockIdx` does not compile.
///   * `Bytes` (aliases `ByteCount`) — a number of bytes.
///   * `SimSeconds` — virtual time (timestamps and durations).
///   * `BytesPerSecond` — a sustained device transfer rate.
///
/// Legal cross-dimension arithmetic is spelled by name or by physics:
/// `BytesToBlocks(bytes, block_bytes)`, `BlocksToBytes(blocks, block_bytes)`
/// (overflow-safe; checked variants return Result), and
/// `Bytes / BytesPerSecond -> SimSeconds` — the transfer-time formula of
/// Section 3.2. Illegal mixes (`Blocks + Bytes`, `SimSeconds * SimSeconds`,
/// passing `Bytes` to a `Blocks` parameter) fail to compile; the negative
/// harness under tests/units_compile_fail/ proves it.
///
/// Design rules (see DESIGN.md "Unit discipline"):
///   * Construction *from* the raw representation is implicit: a literal has
///     no dimension yet, the receiving parameter or field declares it
///     (`BlockCount chunk = 8`). Cross-dimension values cannot take this
///     path because no strong type converts *out* implicitly.
///   * `.value()` is the only escape hatch back to the raw value; the
///     `units` pack of tertio_lint audits unwraps at dimension-bearing call
///     sites.
///   * Scaling an integer quantity by a floating-point factor does not
///     compile (it would silently truncate the factor); unwrap explicitly.
///   * All wrappers are zero-overhead: same size as the raw type, trivially
///     copyable, every operator constexpr and inlined (static_asserts
///     below; the release bench smoke is the runtime check).
///
/// The paper reports sizes in decimal megabytes ("a 10,000 MB relation");
/// helpers below use decimal MB/GB to match the paper's tables, plus binary
/// KiB/MiB/GiB for buffer arithmetic.

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>

#include "util/status.h"

namespace tertio {

namespace unit_internal {

/// A strong arithmetic wrapper: one dimension, one raw representation.
/// Same-dimension addition/subtraction/comparison, dimensionless scaling,
/// and the dimensionless ratio of two like quantities. Nothing else.
template <typename Tag, typename RepT>
class Quantity {
 public:
  using Rep = RepT;

  constexpr Quantity() = default;
  /// Implicit by design: a raw literal or counter has no dimension yet; the
  /// receiving parameter, field, or operand declares it. Dimension safety is
  /// not weakened because no strong type converts *out* implicitly.
  constexpr Quantity(Rep v) : v_(v) {}  // NOLINT(google-explicit-constructor)

  /// The raw value — the only way out of the dimension system.
  [[nodiscard]] constexpr Rep value() const { return v_; }

  // Same-dimension arithmetic.
  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity(a.v_ + b.v_); }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity(a.v_ - b.v_); }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity operator-() const
    requires(std::is_signed_v<Rep>)
  {
    return Quantity(-v_);
  }

  // Dimensionless scaling. For integer quantities the factor must itself be
  // integral: `blocks * 0.5` would truncate the factor to 0 before the
  // multiply, so it does not compile — unwrap explicitly instead.
  template <typename S>
    requires(std::is_arithmetic_v<S> && (std::is_integral_v<S> || std::is_floating_point_v<Rep>))
  friend constexpr Quantity operator*(Quantity a, S s) {
    return Quantity(a.v_ * static_cast<Rep>(s));
  }
  template <typename S>
    requires(std::is_arithmetic_v<S> && (std::is_integral_v<S> || std::is_floating_point_v<Rep>))
  friend constexpr Quantity operator*(S s, Quantity a) {
    return Quantity(static_cast<Rep>(s) * a.v_);
  }
  template <typename S>
    requires(std::is_arithmetic_v<S> && (std::is_integral_v<S> || std::is_floating_point_v<Rep>))
  friend constexpr Quantity operator/(Quantity a, S s) {
    return Quantity(a.v_ / static_cast<Rep>(s));
  }
  template <typename S>
    requires(std::is_arithmetic_v<S> && (std::is_integral_v<S> || std::is_floating_point_v<Rep>))
  constexpr Quantity& operator*=(S s) {
    v_ *= static_cast<Rep>(s);
    return *this;
  }
  template <typename S>
    requires(std::is_arithmetic_v<S> && (std::is_integral_v<S> || std::is_floating_point_v<Rep>))
  constexpr Quantity& operator/=(S s) {
    v_ /= static_cast<Rep>(s);
    return *this;
  }

  /// The ratio of two like quantities is dimensionless (integer division for
  /// integer reps — chunk counts, fan-out — exactly as the raw code did).
  friend constexpr Rep operator/(Quantity a, Quantity b) { return a.v_ / b.v_; }
  /// Remainder within a dimension keeps the dimension (tail blocks, bytes).
  friend constexpr Quantity operator%(Quantity a, Quantity b)
    requires(std::is_integral_v<Rep>)
  {
    return Quantity(a.v_ % b.v_);
  }

  // Counters.
  constexpr Quantity& operator++()
    requires(std::is_integral_v<Rep>)
  {
    ++v_;
    return *this;
  }
  constexpr Quantity operator++(int)
    requires(std::is_integral_v<Rep>)
  {
    Quantity old = *this;
    ++v_;
    return old;
  }
  constexpr Quantity& operator--()
    requires(std::is_integral_v<Rep>)
  {
    --v_;
    return *this;
  }
  constexpr Quantity operator--(int)
    requires(std::is_integral_v<Rep>)
  {
    Quantity old = *this;
    --v_;
    return old;
  }

  friend constexpr bool operator==(Quantity, Quantity) = default;
  friend constexpr auto operator<=>(Quantity, Quantity) = default;

  friend std::ostream& operator<<(std::ostream& os, Quantity q) { return os << q.v_; }

 private:
  Rep v_;
};

struct BlocksTag;
struct BytesTag;
struct SecondsTag;
struct RateTag;

}  // namespace unit_internal

/// Count of fixed-size blocks (the paper's `|R|`, `|S|`, `M`, `D`, ...).
using Blocks = unit_internal::Quantity<unit_internal::BlocksTag, std::uint64_t>;

/// Number of bytes.
using Bytes = unit_internal::Quantity<unit_internal::BytesTag, std::uint64_t>;

/// Virtual time in seconds. All simulation timestamps and durations use this.
using SimSeconds = unit_internal::Quantity<unit_internal::SecondsTag, double>;

/// A sustained transfer rate (the paper's X_T, X_D), bytes per second.
using BytesPerSecond = unit_internal::Quantity<unit_internal::RateTag, double>;

/// Position of a block within a volume, extent, or logical sequence — an
/// affine point in block space, distinct from the `Blocks` vector:
/// `idx + Blocks` and `idx - Blocks` move the point, `idx - idx` measures a
/// distance, `idx % Blocks` / `idx / Blocks` decompose it against a stride,
/// but two positions cannot be added.
class BlockIdx {
 public:
  using Rep = std::uint64_t;

  constexpr BlockIdx() = default;
  constexpr BlockIdx(Rep v) : v_(v) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] constexpr Rep value() const { return v_; }

  friend constexpr BlockIdx operator+(BlockIdx i, Blocks n) { return BlockIdx(i.v_ + n.value()); }
  friend constexpr BlockIdx operator+(Blocks n, BlockIdx i) { return BlockIdx(n.value() + i.v_); }
  friend constexpr BlockIdx operator-(BlockIdx i, Blocks n) { return BlockIdx(i.v_ - n.value()); }
  /// Distance between two positions.
  friend constexpr Blocks operator-(BlockIdx a, BlockIdx b) { return Blocks(a.v_ - b.v_); }
  /// Offset of the position within a `stride`-block unit (striping math).
  friend constexpr Blocks operator%(BlockIdx i, Blocks stride) {
    return Blocks(i.v_ % stride.value());
  }
  /// Which `stride`-block unit the position falls in (dimensionless ordinal).
  friend constexpr Rep operator/(BlockIdx i, Blocks stride) { return i.v_ / stride.value(); }

  constexpr BlockIdx& operator+=(Blocks n) {
    v_ += n.value();
    return *this;
  }
  constexpr BlockIdx& operator-=(Blocks n) {
    v_ -= n.value();
    return *this;
  }
  constexpr BlockIdx& operator++() {
    ++v_;
    return *this;
  }
  constexpr BlockIdx operator++(int) {
    BlockIdx old = *this;
    ++v_;
    return old;
  }
  constexpr BlockIdx& operator--() {
    --v_;
    return *this;
  }
  constexpr BlockIdx operator--(int) {
    BlockIdx old = *this;
    --v_;
    return old;
  }

  friend constexpr bool operator==(BlockIdx, BlockIdx) = default;
  friend constexpr auto operator<=>(BlockIdx, BlockIdx) = default;

  friend std::ostream& operator<<(std::ostream& os, BlockIdx i) { return os << i.v_; }

 private:
  Rep v_;
};

/// Seed-era names, kept as aliases: every signature spelled in terms of
/// BlockCount / BlockIndex / ByteCount is a strong-typed signature.
using BlockCount = Blocks;
using BlockIndex = BlockIdx;
using ByteCount = Bytes;

// Zero overhead, enforced: same size as the raw representation, trivially
// copyable (passes in registers, memcpy-safe), standard layout.
static_assert(sizeof(Blocks) == sizeof(std::uint64_t));
static_assert(sizeof(Bytes) == sizeof(std::uint64_t));
static_assert(sizeof(BlockIdx) == sizeof(std::uint64_t));
static_assert(sizeof(SimSeconds) == sizeof(double));
static_assert(sizeof(BytesPerSecond) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Blocks> && std::is_trivially_copyable_v<Bytes> &&
              std::is_trivially_copyable_v<BlockIdx> && std::is_trivially_copyable_v<SimSeconds> &&
              std::is_trivially_copyable_v<BytesPerSecond>);
static_assert(std::is_standard_layout_v<Blocks> && std::is_standard_layout_v<SimSeconds>);

/// Transfer time of `bytes` at a sustained `rate` — Section 3.2's only
/// byte/time bridge. (Defined as a free operator so the formula reads like
/// the paper: `bytes / X_T`.)
constexpr SimSeconds operator/(Bytes bytes, BytesPerSecond rate) {
  return SimSeconds(static_cast<double>(bytes.value()) / rate.value());
}

/// A position compared against a count is the array idiom (`idx < size`):
/// the count is measured from the origin. Comparison only — positions and
/// counts still do not mix in arithmetic or conversion.
constexpr std::strong_ordering operator<=>(BlockIdx i, Blocks n) {
  return i.value() <=> n.value();
}
constexpr bool operator==(BlockIdx i, Blocks n) { return i.value() == n.value(); }

/// Raw integers are dimensionless literals that adopt the dimension of the
/// strong operand (`idx < vec.size()`, `count != 0`). These exact-match
/// overloads keep such comparisons unambiguous between the position and
/// count interpretations (both of which a raw value can implicitly become).
template <typename S>
  requires std::is_integral_v<S>
constexpr std::strong_ordering operator<=>(BlockIdx i, S n) {
  return i.value() <=> static_cast<BlockIdx::Rep>(n);
}
template <typename S>
  requires std::is_integral_v<S>
constexpr bool operator==(BlockIdx i, S n) {
  return i.value() == static_cast<BlockIdx::Rep>(n);
}
template <typename S>
  requires std::is_integral_v<S>
constexpr std::strong_ordering operator<=>(Blocks a, S n) {
  return a.value() <=> static_cast<Blocks::Rep>(n);
}
template <typename S>
  requires std::is_integral_v<S>
constexpr bool operator==(Blocks a, S n) {
  return a.value() == static_cast<Blocks::Rep>(n);
}

/// The position `n` blocks past the origin (e.g. the end position of a
/// volume of `n` blocks) — the one sanctioned count→position conversion.
constexpr BlockIdx ToIndex(Blocks n) { return BlockIdx(n.value()); }

inline constexpr Bytes kKB{1000};
inline constexpr Bytes kMB{1000 * 1000};
inline constexpr Bytes kGB{std::uint64_t{1000} * 1000 * 1000};
inline constexpr Bytes kKiB{1024};
inline constexpr Bytes kMiB{1024 * 1024};
inline constexpr Bytes kGiB{std::uint64_t{1024} * 1024 * 1024};

/// Default block size. The paper does not fix a block size; it reasons in
/// blocks and notes that ≥30-block disk requests amortize positioning. 8 KiB
/// matches mid-90s page practice and — importantly for reproducing Table 3 —
/// makes the hash methods' per-bucket write buffers fine-grained enough that
/// M = 16 MB can partition a 2.5 GB relation (the paper's own boundary,
/// M >= sqrt(|R|) in blocks).
inline constexpr Bytes kDefaultBlockBytes = 8 * kKiB;

/// \returns the number of whole blocks needed to hold `bytes` (exact ceiling
/// division — wrap-proof for every `bytes`, unlike the textbook
/// `(a + b - 1) / b`). Aborts on a zero block size.
constexpr Blocks BytesToBlocks(Bytes bytes, Bytes block_bytes) {
  if (block_bytes.value() == 0) {
    internal::DieCheckFailure(__FILE__, __LINE__, "block_bytes != 0",
                              "BytesToBlocks: zero block size");
  }
  std::uint64_t q = bytes.value() / block_bytes.value();
  return Blocks(q + (bytes.value() % block_bytes.value() != 0 ? 1 : 0));
}

/// \returns `blocks` blocks' worth of bytes. Overflow-safe: a product that
/// would wrap the 64-bit byte count aborts (in a constant evaluation it
/// fails to compile) instead of silently producing a tiny byte count. Sizing
/// paths that want to *handle* the overflow use CheckedBlocksToBytes.
constexpr Bytes BlocksToBytes(Blocks blocks, Bytes block_bytes) {
  std::uint64_t out = 0;
  if (__builtin_mul_overflow(blocks.value(), block_bytes.value(), &out)) {
    internal::DieCheckFailure(__FILE__, __LINE__, "blocks * block_bytes overflows",
                              "BlocksToBytes: 64-bit byte count overflow");
  }
  return Bytes(out);
}

/// `count` blocks of `block_bytes` each — the paper's §3.2 size conversion
/// written as a product. Same overflow discipline as BlocksToBytes.
constexpr Bytes operator*(Blocks count, Bytes block_bytes) {
  return BlocksToBytes(count, block_bytes);
}
constexpr Bytes operator*(Bytes block_bytes, Blocks count) {
  return BlocksToBytes(count, block_bytes);
}

// A floating-point factor must not reach the Blocks*Bytes product: the
// implicit raw-to-quantity constructor would truncate it to an integral
// count of the *other* dimension first (0.9 * kMB == Blocks{0} * kMB == 0).
// Deleting the exact-match overloads turns that silent zero into a compile
// error; scale explicitly via .value() double math instead.
template <typename S>
  requires std::is_floating_point_v<S>
constexpr Bytes operator*(S, Bytes) = delete;
template <typename S>
  requires std::is_floating_point_v<S>
constexpr Bytes operator*(Bytes, S) = delete;
template <typename S>
  requires std::is_floating_point_v<S>
constexpr Bytes operator*(S, Blocks) = delete;
template <typename S>
  requires std::is_floating_point_v<S>
constexpr Bytes operator*(Blocks, S) = delete;

/// Overflow-checked BlocksToBytes: kInvalidArgument instead of aborting when
/// the byte count does not fit in 64 bits. Validation paths (SiteConfig,
/// allocator sizing) use this so a TB-class misconfiguration is a Status,
/// not a wrapped allocation.
inline Result<Bytes> CheckedBlocksToBytes(Blocks blocks, Bytes block_bytes) {
  std::uint64_t out = 0;
  if (__builtin_mul_overflow(blocks.value(), block_bytes.value(), &out)) {
    return Status::InvalidArgument("BlocksToBytes overflows 64-bit bytes: " +
                                   std::to_string(blocks.value()) + " blocks * " +
                                   std::to_string(block_bytes.value()) + " bytes/block");
  }
  return Bytes(out);
}

/// Checked BytesToBlocks: kInvalidArgument on a zero block size. (The
/// ceiling division itself cannot overflow.)
inline Result<Blocks> CheckedBytesToBlocks(Bytes bytes, Bytes block_bytes) {
  if (block_bytes.value() == 0) {
    return Status::InvalidArgument("BytesToBlocks: zero block size");
  }
  std::uint64_t q = bytes.value() / block_bytes.value();
  return Blocks(q + (bytes.value() % block_bytes.value() != 0 ? 1 : 0));
}

}  // namespace tertio

// Strong units hash like their raw values (extent maps, span keys).
template <>
struct std::hash<tertio::Blocks> {
  std::size_t operator()(tertio::Blocks b) const noexcept {
    return std::hash<std::uint64_t>{}(b.value());
  }
};
template <>
struct std::hash<tertio::Bytes> {
  std::size_t operator()(tertio::Bytes b) const noexcept {
    return std::hash<std::uint64_t>{}(b.value());
  }
};
template <>
struct std::hash<tertio::BlockIdx> {
  std::size_t operator()(tertio::BlockIdx i) const noexcept {
    return std::hash<std::uint64_t>{}(i.value());
  }
};
