#pragma once

/// \file string_util.h
/// Human-readable formatting used by reports, logs and error messages.

#include <cstdint>
#include <string>

#include "util/units.h"

namespace tertio {

/// "1.25 GB", "512.0 MB", "384 bytes" (decimal units, matching the paper).
std::string FormatBytes(ByteCount bytes);

/// "2h 13m 05s", "45.2 s", "730 ms".
std::string FormatDuration(SimSeconds seconds);

/// Fixed-point with `digits` decimals, e.g. FormatFixed(6.94, 1) == "6.9".
std::string FormatFixed(double value, int digits);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace tertio
