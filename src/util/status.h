#pragma once

/// \file status.h
/// Error propagation primitives for the tertio library.
///
/// tertio follows the Status / Result<T> idiom: fallible functions return a
/// Status (or a Result<T> carrying either a value or a Status) instead of
/// throwing. Exceptions are reserved for programming errors (violated
/// invariants), which abort via TERTIO_CHECK.

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace tertio {

/// Machine-readable category of an error.
enum class StatusCode : int8_t {
  kOk = 0,
  /// A caller-supplied argument is out of range or malformed.
  kInvalidArgument,
  /// The operation requires more memory / disk / tape space than reserved.
  kResourceExhausted,
  /// A named entity (volume, relation, bucket) does not exist.
  kNotFound,
  /// The object is in a state that does not admit the operation
  /// (e.g. reading from an unloaded tape drive).
  kFailedPrecondition,
  /// An arithmetic or accounting invariant failed inside the library.
  kInternal,
  /// The requested feature is valid but not implemented by this device or
  /// mode (e.g. read-reverse on a drive that lacks it).
  kUnimplemented,
  /// A device fault that survived the device's own bounded retries (an
  /// unrecoverable media error, a robot exchange that kept failing). Unlike
  /// the codes above this one is *retryable at a coarser granularity*: the
  /// pipeline may re-issue the failed chunk, resuming from its checkpoint.
  kDeviceError,
};

/// \returns the canonical spelling of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that can fail: a code plus a human-readable
/// message. A default-constructed Status is OK. Statuses are cheap to copy
/// when OK (no allocation).
///
/// [[nodiscard]]: silently dropping a Status swallows an error; call sites
/// that legitimately ignore one must say so with an explicit (void) cast
/// and a comment (tertio_lint audits those).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. An OK code with a
  /// message is normalized to a plain OK status.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeviceError(std::string msg) {
    return Status(StatusCode::kDeviceError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or a non-OK Status explaining why the value is
/// absent. Accessing the value of an errored Result aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return 42;`.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from an error status: `return Status::NotFound(...)`.
  /// Constructing a Result from an OK status is a programming error.
  Result(Status status) : storage_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (this->status().ok()) {
      storage_ = Status::Internal("Result constructed from OK status with no value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// The error (OK if a value is held).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  const T& value() const& {
    CheckHasValue();
    return std::get<T>(storage_);
  }
  T& value() & {
    CheckHasValue();
    return std::get<T>(storage_);
  }
  T&& value() && {
    CheckHasValue();
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \returns the held value, or `fallback` if this Result is an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(storage_);
    return fallback;
  }

 private:
  void CheckHasValue() const;
  std::variant<Status, T> storage_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
[[noreturn]] void DieCheckFailure(const char* file, int line, const char* expr,
                                  const std::string& msg);
}  // namespace internal

template <typename T>
void Result<T>::CheckHasValue() const {
  if (!ok()) internal::DieBadResultAccess(std::get<Status>(storage_));
}

}  // namespace tertio

/// Propagates a non-OK Status to the caller.
#define TERTIO_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::tertio::Status _tertio_status = (expr);        \
    if (!_tertio_status.ok()) return _tertio_status; \
  } while (false)

#define TERTIO_CONCAT_IMPL(a, b) a##b
#define TERTIO_CONCAT(a, b) TERTIO_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error propagates the Status, on
/// success assigns the value to `lhs` (which may include a declaration).
#define TERTIO_ASSIGN_OR_RETURN(lhs, expr)                            \
  TERTIO_ASSIGN_OR_RETURN_IMPL(TERTIO_CONCAT(_tertio_res_, __LINE__), lhs, expr)
#define TERTIO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

/// Aborts with a diagnostic if `cond` is false. For invariants, not for
/// recoverable errors.
#define TERTIO_CHECK(cond, msg)                                                    \
  do {                                                                             \
    if (!(cond)) ::tertio::internal::DieCheckFailure(__FILE__, __LINE__, #cond, (msg)); \
  } while (false)
