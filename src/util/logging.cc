#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace tertio {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

void EmitLog(LogLevel level, const char* file, int line, const std::string& message) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, message.c_str());
}

}  // namespace internal
}  // namespace tertio
