#include "util/bench_json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace tertio {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::vector<std::string> SplitTopLevelJsonObjects(std::string_view array_body) {
  std::vector<std::string> objects;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::size_t start = std::string_view::npos;
  for (std::size_t i = 0; i < array_body.size(); ++i) {
    char c = array_body[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      if (depth == 0 && c == '{') start = i;
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth == 0 && c == '}' && start != std::string_view::npos) {
        objects.emplace_back(array_body.substr(start, i - start + 1));
        start = std::string_view::npos;
      }
    }
  }
  return objects;
}

std::optional<std::string> ExtractJsonStringField(std::string_view object,
                                                  std::string_view key) {
  std::string needle = "\"" + std::string(key) + "\"";
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 0; i < object.size(); ++i) {
    char c = object[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '{':
      case '[':
        ++depth;
        continue;
      case '}':
      case ']':
        --depth;
        continue;
      case '"':
        break;
      default:
        continue;
    }
    // At an opening quote outside nested containers (depth 1 == inside the
    // object itself): check whether it starts the key we want.
    if (depth == 1 && object.substr(i, needle.size()) == needle) {
      std::size_t colon = object.find(':', i + needle.size());
      if (colon == std::string_view::npos) return std::nullopt;
      std::size_t open = object.find('"', colon + 1);
      if (open == std::string_view::npos) return std::nullopt;
      std::string value;
      for (std::size_t j = open + 1; j < object.size(); ++j) {
        if (object[j] == '\\' && j + 1 < object.size()) {
          value += object[j + 1];
          ++j;
        } else if (object[j] == '"') {
          return value;
        } else {
          value += object[j];
        }
      }
      return std::nullopt;
    }
    in_string = true;
  }
  return std::nullopt;
}

Status MergeBenchRecord(const std::string& path, const std::string& name,
                        const std::string& record_json) {
  std::vector<std::string> records;
  std::ifstream in(path);
  if (in.good()) {
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string content = buffer.str();
    std::size_t open = content.find('[');
    std::size_t close = content.rfind(']');
    if (content.find("\"benches\"") == std::string::npos || open == std::string::npos ||
        close == std::string::npos || close < open) {
      // Tolerate an empty/placeholder file; refuse to clobber anything else.
      std::string stripped;
      for (char c : content) {
        if (!std::isspace(static_cast<unsigned char>(c))) stripped += c;
      }
      if (!stripped.empty() && stripped != "{}") {
        return Status::InvalidArgument(path + " exists but is not a bench-record file");
      }
    } else {
      records = SplitTopLevelJsonObjects(
          std::string_view(content).substr(open + 1, close - open - 1));
    }
  }
  in.close();

  bool replaced = false;
  for (std::string& record : records) {
    if (ExtractJsonStringField(record, "name") == name) {
      record = record_json;
      replaced = true;
      break;
    }
  }
  if (!replaced) records.push_back(record_json);

  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::Internal("cannot write " + path);
  out << "{\n  \"benches\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "    " << records[i];
    if (i + 1 < records.size()) out << ",";
    out << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  if (!out.good()) return Status::Internal("failed writing " + path);
  return Status::OK();
}

}  // namespace tertio
