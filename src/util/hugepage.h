#pragma once

/// \file hugepage.h
/// Transparent-hugepage-backed allocation for large flat arrays.
///
/// A multi-megabyte open-addressed table on 4 KiB pages spends most of a
/// random probe in the dTLB: the page working set dwarfs the TLB, and x86
/// cores drop software prefetches whose address misses the dTLB, so a
/// prefetch pipeline over such a table quietly degrades to demand misses.
/// Backing the array with 2 MiB transparent hugepages shrinks the page
/// working set by 512x (a 64 MiB table becomes 32 pages — TLB-resident),
/// which is what lets the batched probe kernel's group prefetches land
/// (join/flat_table.cc).
///
/// HugePageAllocator is a drop-in std::allocator replacement: allocations
/// of kHugePageBytes or more come from a fresh anonymous mapping advised
/// MADV_HUGEPAGE *before first touch* (the madvise THP mode only promotes
/// madvised ranges, and promotion at fault time needs the advice in place
/// when the page faults in); smaller ones fall back to operator new. On
/// non-Linux targets everything falls back to operator new — the allocator
/// is an optimization, never a requirement.

#include <cstddef>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace tertio::util {

inline constexpr std::size_t kHugePageBytes = 2u << 20;

template <typename T>
struct HugePageAllocator {
  using value_type = T;

  HugePageAllocator() = default;
  template <typename U>
  constexpr HugePageAllocator(const HugePageAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
#if defined(__linux__)
    if (bytes >= kHugePageBytes) {
      void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (p == MAP_FAILED) throw std::bad_alloc();
      // Best-effort: if the kernel has THP disabled the advice fails and
      // the mapping still works on base pages. Huge requests always live in
      // mappings, so deallocate can route on size alone.
      (void)::madvise(p, bytes, MADV_HUGEPAGE);  // best-effort THP advice
      return static_cast<T*>(p);
    }
#endif
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
#if defined(__linux__)
    if (bytes >= kHugePageBytes) {
      // Huge requests are always mmap-backed (allocate throws instead of
      // mixing backings), so routing on size keeps the allocator stateless.
      ::munmap(static_cast<void*>(p), bytes);
      return;
    }
#endif
    ::operator delete(static_cast<void*>(p));
  }

  template <typename U>
  bool operator==(const HugePageAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace tertio::util
