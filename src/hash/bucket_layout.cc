#include "hash/bucket_layout.h"

#include "util/math_util.h"
#include "util/string_util.h"

namespace tertio::hash {

namespace {
constexpr BlockCount kDefaultPreferredWriteBuffer = 8;
}  // namespace

Result<BucketLayout> BucketLayout::Plan(BlockCount r_blocks, BlockCount memory_blocks,
                                        BlockCount preferred_write_buffer,
                                        std::uint32_t min_bucket_count) {
  if (r_blocks == 0) return Status::InvalidArgument("cannot partition an empty relation");
  if (memory_blocks == 0) return Status::InvalidArgument("memory budget is zero");
  if (min_bucket_count == 0) min_bucket_count = 1;
  BlockCount w_cap =
      preferred_write_buffer == 0 ? kDefaultPreferredWriteBuffer : preferred_write_buffer;

  // If R fits in memory outright, one bucket suffices (degenerates to an
  // in-memory hash join).
  if (min_bucket_count == 1 && r_blocks + 1 <= memory_blocks) {
    BlockCount w = Clamp<BlockCount>(memory_blocks - r_blocks, 1, w_cap);
    return BucketLayout{1, r_blocks, w, r_blocks + w};
  }

  // Choose the smallest B with ceil(|R|/B) + B*w <= M, preferring the
  // largest w that still fits. Smaller B means bigger buckets (fewer, larger
  // bucket transfers), so we scan B upward and take the first feasible plan.
  for (BlockCount w = w_cap; w >= 1; --w) {
    // For fixed w, feasibility of B requires r/B + B*w <= M. Scan B from the
    // memory lower bound upward; the left term falls, the right term grows,
    // so feasibility is a window — stop once B*w alone exceeds M.
    std::uint64_t b0 = CeilDiv<std::uint64_t>(r_blocks.value(), memory_blocks.value());
    if (b0 < min_bucket_count) b0 = min_bucket_count;
    for (std::uint64_t b = b0; b * w <= memory_blocks; ++b) {
      BlockCount bucket_blocks = CeilDiv<std::uint64_t>(r_blocks.value(), b);
      BlockCount footprint = bucket_blocks + b * w;
      if (footprint <= memory_blocks) {
        return BucketLayout{static_cast<std::uint32_t>(b), bucket_blocks, w, footprint};
      }
    }
  }
  return Status::ResourceExhausted(StrFormat(
      "memory of %llu blocks cannot partition a relation of %llu blocks "
      "(hash join requires roughly M >= 2*sqrt(|R|) = %llu blocks)",
      static_cast<unsigned long long>(memory_blocks.value()),
      static_cast<unsigned long long>(r_blocks.value()),
      static_cast<unsigned long long>(MinimumMemory(r_blocks).value())));
}

BlockCount BucketLayout::MinimumMemory(BlockCount r_blocks) {
  // With w = 1 the footprint ceil(r/B) + B is minimized near B = sqrt(r).
  BlockCount root = CeilSqrt(r_blocks.value());
  BlockCount best = ~std::uint64_t{0};
  for (BlockCount b = root > 2 ? root - 2 : 1; b <= root + 2; ++b) {
    if (b == 0) continue;
    BlockCount footprint = CeilDiv<std::uint64_t>(r_blocks.value(), b.value()) + b;
    if (footprint < best) best = footprint;
  }
  return best;
}

}  // namespace tertio::hash
