#pragma once

/// \file tape_bucket_run.h
/// A hashed copy of a relation stored as contiguous bucket runs on tape.
///
/// CTT-GH appends assembled buckets to the R tape; TT-GH writes R's buckets
/// to the S tape and S's buckets to the R tape (Section 5.2). The run
/// records where each bucket landed so Step II can stream them back.

#include <cstdint>
#include <vector>

#include "tape/tape_volume.h"
#include "util/units.h"

namespace tertio::hash {

/// Location of one bucket within a tape-resident hashed relation.
struct TapeBucketRegion {
  BlockIndex start = 0;
  BlockCount blocks = 0;
  std::uint64_t tuples = 0;
};

/// The whole hashed relation on tape: buckets stored contiguously, in
/// bucket-index order (the order Step II consumes them).
struct TapeBucketRun {
  tape::TapeVolume* volume = nullptr;
  double compressibility = 0.0;
  std::vector<TapeBucketRegion> regions;

  BlockCount total_blocks() const {
    BlockCount total = 0;
    for (const TapeBucketRegion& r : regions) total += r.blocks;
    return total;
  }
};

}  // namespace tertio::hash
