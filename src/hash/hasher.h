#pragma once

/// \file hasher.h
/// Join-key hashing and bucket assignment.
///
/// All hashing-based join methods must place a given key in the same bucket
/// on both the R and S sides; BucketOf is that single shared mapping.

#include <cstdint>

#include "util/rng.h"

namespace tertio::hash {

/// 64-bit mix of a join key (splitmix64 finalizer — uniform for both
/// sequential and random key sets).
inline std::uint64_t HashKey(std::int64_t key) {
  return SplitMix64(static_cast<std::uint64_t>(key));
}

/// Bucket index of `key` among `bucket_count` buckets.
inline std::uint32_t BucketOf(std::int64_t key, std::uint32_t bucket_count) {
  return static_cast<std::uint32_t>(HashKey(key) % bucket_count);
}

}  // namespace tertio::hash
