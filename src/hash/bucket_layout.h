#pragma once

/// \file bucket_layout.h
/// Planning the hash-bucket geometry of the Grace-style join methods.
///
/// Section 5.1.2 of the paper: the number of hash buckets is B = |R| / M
/// with the requirement M >= sqrt(|R|), which guarantees each R bucket fits
/// in memory when read back. Section 6 adds that the per-bucket main-memory
/// write buffers (which batch bucket appends into larger disk requests and
/// so tame the random-I/O penalty) are charged against M.
///
/// BucketLayout::Plan makes both constraints explicit: it chooses the
/// smallest bucket count B such that one full R bucket *plus* B write
/// buffers of w blocks fit in M, shrinking w toward 1 as memory tightens.
/// When even w = 1 cannot fit, the join is declared infeasible (the paper's
/// M >= sqrt(|R|) boundary, up to the constant from explicit write buffers).

#include <cstdint>

#include "util/status.h"
#include "util/units.h"

namespace tertio::hash {

/// Chosen bucket geometry.
struct BucketLayout {
  /// Number of hash buckets (the paper's B).
  std::uint32_t bucket_count = 0;
  /// Expected blocks per R bucket under uniform hashing: ceil(|R| / B).
  BlockCount r_bucket_blocks = 0;
  /// Per-bucket write-buffer size in blocks (w); flushes are w-block disk
  /// requests.
  BlockCount write_buffer_blocks = 0;
  /// Total memory footprint: r_bucket_blocks + bucket_count * w.
  BlockCount memory_blocks = 0;

  /// Plans a layout for partitioning a relation of `r_blocks` with
  /// `memory_blocks` of main memory. `preferred_write_buffer` caps w (larger
  /// w means bigger sequential flushes; 0 picks the library default).
  /// `min_bucket_count` forces at least that many buckets — the tape–tape
  /// methods need buckets no larger than the disk assembly area, i.e.
  /// B >= ceil(|R| / D).
  static Result<BucketLayout> Plan(BlockCount r_blocks, BlockCount memory_blocks,
                                   BlockCount preferred_write_buffer = 0,
                                   std::uint32_t min_bucket_count = 1);

  /// Smallest memory (blocks) for which Plan succeeds — the library's
  /// concrete version of the paper's M >= sqrt(|R|) requirement.
  static BlockCount MinimumMemory(BlockCount r_blocks);
};

}  // namespace tertio::hash
