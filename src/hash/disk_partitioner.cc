#include "hash/disk_partitioner.h"

#include "hash/hasher.h"
#include "relation/relation.h"
#include "relation/tuple.h"
#include "util/string_util.h"

namespace tertio::hash {

DiskPartitioner::DiskPartitioner(disk::StripedDiskGroup* disks, Options options)
    : disks_(disks), options_(std::move(options)) {
  TERTIO_CHECK(disks_ != nullptr, "partitioner requires a disk group");
  TERTIO_CHECK(options_.bucket_count > 0, "bucket count must be positive");
  TERTIO_CHECK(options_.write_buffer_blocks > 0, "write buffer must be positive");
  span_ = options_.bucket_span == 0 ? options_.bucket_count : options_.bucket_span;
  TERTIO_CHECK(options_.first_bucket + span_ <= options_.bucket_count,
               "bucket range exceeds bucket count");
  pending_.resize(span_);
  buckets_.resize(span_);
  if (options_.schema != nullptr) {
    for (auto& p : pending_) {
      p.builder =
          std::make_unique<rel::BlockBuilder>(options_.schema, disks_->block_bytes());
    }
  }
}

bool DiskPartitioner::Materialized(std::uint32_t bucket) const {
  return bucket >= options_.first_bucket && bucket < options_.first_bucket + span_;
}

Status DiskPartitioner::AddBlocks(std::span<const BlockPayload> blocks, SimSeconds ready) {
  if (options_.schema == nullptr) {
    return Status::FailedPrecondition("partitioner was configured without a schema");
  }
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, options_.schema));
    for (std::uint64_t i = 0; i < reader.record_count(); ++i) {
      rel::Tuple tuple(reader.record(i), options_.schema);
      std::int64_t key = tuple.GetInt64(options_.key_column);
      std::uint32_t bucket = BucketOf(key, options_.bucket_count);
      if (!Materialized(bucket)) continue;
      std::uint32_t local = bucket - options_.first_bucket;
      PendingBucket& p = pending_[local];
      TERTIO_RETURN_IF_ERROR(p.builder->Append(tuple.bytes()));
      buckets_[local].tuples += 1;
      if (p.data_ready < ready) p.data_ready = ready;
      if (p.builder->full()) {
        p.full_blocks.push_back(p.builder->Finish());
        TERTIO_RETURN_IF_ERROR(MaybeFlush(local, /*final=*/false));
      }
    }
  }
  return Status::OK();
}

Status DiskPartitioner::AddPhantomBlocks(BlockCount count, std::uint64_t tuples,
                                         SimSeconds ready) {
  // Spread `count` blocks uniformly over all B buckets; only the local span
  // materializes. Remainders carry across calls so long runs stay exact.
  std::uint64_t gross_blocks = count.value() * span_ + phantom_block_carry_;
  BlockCount local_blocks = gross_blocks / options_.bucket_count;
  phantom_block_carry_ = gross_blocks % options_.bucket_count;
  std::uint64_t gross_tuples = tuples * span_ + phantom_tuple_carry_;
  std::uint64_t local_tuples = gross_tuples / options_.bucket_count;
  phantom_tuple_carry_ = gross_tuples % options_.bucket_count;

  // Round-robin the materialized blocks across the span.
  for (BlockCount i = 0; i < local_blocks; ++i) {
    std::uint32_t local = phantom_cursor_;
    phantom_cursor_ = (phantom_cursor_ + 1) % span_;
    PendingBucket& p = pending_[local];
    p.phantom_pending += 1;
    if (p.data_ready < ready) p.data_ready = ready;
    TERTIO_RETURN_IF_ERROR(MaybeFlush(local, /*final=*/false));
  }
  // Tuple counts spread evenly (used only for statistics in phantom runs).
  if (span_ > 0 && local_tuples > 0) {
    std::uint64_t per = local_tuples / span_;
    std::uint64_t extra = local_tuples % span_;
    for (std::uint32_t b = 0; b < span_; ++b) {
      buckets_[b].tuples += per + (b < extra ? 1 : 0);
    }
  }
  return Status::OK();
}

Status DiskPartitioner::MaybeFlush(std::uint32_t local, bool final) {
  PendingBucket& p = pending_[local];
  while (true) {
    BlockCount encoded = p.full_blocks.size() + p.phantom_pending;
    if (encoded == 0) break;
    if (encoded < options_.write_buffer_blocks && !final) break;
    BlockCount chunk =
        encoded < options_.write_buffer_blocks ? encoded : options_.write_buffer_blocks;

    SimSeconds ready = p.data_ready;
    if (options_.space != nullptr) {
      TERTIO_ASSIGN_OR_RETURN(SimSeconds space_ready, options_.space->AcquireFree(chunk));
      if (space_ready > ready) ready = space_ready;
    }
    TERTIO_ASSIGN_OR_RETURN(disk::ExtentList extents,
                            disks_->allocator().Allocate(chunk, ready, options_.alloc_tag,
                                                         options_.disk_mask));
    sim::Interval interval;
    if (!p.full_blocks.empty()) {
      BlockCount real = p.full_blocks.size() < chunk ? p.full_blocks.size() : chunk;
      std::vector<BlockPayload> batch(p.full_blocks.begin(),
                                      p.full_blocks.begin() + static_cast<long>(real.value()));
      // A mixed real/phantom flush cannot happen: a partitioner sees either
      // real or phantom input exclusively.
      TERTIO_CHECK(real == chunk, "mixed real/phantom bucket flush");
      TERTIO_ASSIGN_OR_RETURN(interval, disks_->WriteExtents(extents, ready, &batch));
      p.full_blocks.erase(p.full_blocks.begin(), p.full_blocks.begin() + static_cast<long>(real.value()));
    } else {
      TERTIO_ASSIGN_OR_RETURN(interval, disks_->WriteExtents(extents, ready, nullptr));
      p.phantom_pending -= chunk;
    }

    DiskBucket& bucket = buckets_[local];
    for (const disk::Extent& e : extents) bucket.extents.push_back(e);
    bucket.blocks += chunk;
    if (interval.end > bucket.ready) bucket.ready = interval.end;
    if (interval.end > last_write_end_) last_write_end_ = interval.end;
    blocks_written_ += chunk;
    if (!final) break;  // non-final flush drains exactly one chunk at a time
  }
  return Status::OK();
}

Status DiskPartitioner::Flush() {
  for (std::uint32_t local = 0; local < span_; ++local) {
    PendingBucket& p = pending_[local];
    if (p.builder != nullptr && !p.builder->empty()) {
      p.full_blocks.push_back(p.builder->Finish());
    }
    TERTIO_RETURN_IF_ERROR(MaybeFlush(local, /*final=*/true));
  }
  return Status::OK();
}

Result<sim::Interval> PartitionerSink::Write(BlockCount offset, BlockCount count,
                                             SimSeconds ready,
                                             std::vector<BlockPayload>* payloads) {
  (void)offset;
  if (payloads == nullptr) {
    std::uint64_t tuples =
        std::min<std::uint64_t>(count.value() * tuples_per_block_,
                                chunk_tuple_cap_);
    TERTIO_RETURN_IF_ERROR(partitioner_->AddPhantomBlocks(count, tuples, ready));
  } else {
    TERTIO_RETURN_IF_ERROR(partitioner_->AddBlocks(*payloads, ready));
  }
  return sim::Interval{ready, std::max(ready, partitioner_->last_write_end())};
}

Result<sim::StageId> PartitionerSink::IssueFlush(sim::Pipeline& pipe, std::string_view phase,
                                                 std::initializer_list<sim::StageId> deps) {
  return pipe.Stage(phase, "disks", deps, 0, 0, [&](SimSeconds ready) -> Result<sim::Interval> {
    TERTIO_RETURN_IF_ERROR(partitioner_->Flush());
    return sim::Interval{ready, std::max(ready, partitioner_->last_write_end())};
  });
}

}  // namespace tertio::hash
