#pragma once

/// \file disk_partitioner.h
/// Streaming hash partitioning of a relation into disk-resident buckets.
///
/// This is the Step-I/Step-II workhorse of every Grace-style method in the
/// paper: input blocks arrive (from a tape read that completed at some
/// virtual time), each tuple is hashed to a bucket, and per-bucket memory
/// write buffers of w blocks batch the appends so each disk request is w
/// blocks long (Section 6: "the buffer allows for larger disk writes which
/// help reduce the seek penalty, as appending data to hash buckets on disk
/// involves random I/O").
///
/// Features used by specific methods:
///  * bucket-range filtering — CTT-GH/TT-GH Step I materializes only B/scans
///    buckets per scan of R, dropping the rest (Section 5.2.1);
///  * optional InterleavedBuffer gating — in the concurrent methods the
///    bucket space on disk is the shared double buffer of Section 4, so a
///    write may not begin before the consumer of the previous iteration has
///    freed the blocks being overwritten;
///  * phantom input — timing-only runs distribute blocks and tuple counts
///    uniformly across buckets (the paper's uniform-hashing assumption).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "disk/striped_group.h"
#include "mem/double_buffer.h"
#include "relation/block.h"
#include "relation/schema.h"
#include "sim/pipeline.h"
#include "util/block_payload.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::hash {

/// One materialized bucket on disk.
struct DiskBucket {
  disk::ExtentList extents;
  BlockCount blocks = 0;
  std::uint64_t tuples = 0;
  /// Virtual time at which the bucket's last block hit the disk.
  SimSeconds ready = 0.0;
};

/// Streaming partitioner writing buckets to a striped disk group.
class DiskPartitioner {
 public:
  struct Options {
    /// Schema of the input tuples; may be null for phantom-only input.
    const rel::Schema* schema = nullptr;
    /// Column index of the join key.
    std::size_t key_column = 0;
    /// Total bucket count B (the hash function's modulus).
    std::uint32_t bucket_count = 1;
    /// Per-bucket write-buffer size w, in blocks.
    BlockCount write_buffer_blocks = 1;
    /// Only buckets in [first_bucket, first_bucket + bucket_span) are
    /// materialized; tuples hashing elsewhere are dropped.
    std::uint32_t first_bucket = 0;
    std::uint32_t bucket_span = 0;  // 0 = all buckets
    /// Allocator tag for the buckets' disk space.
    std::string alloc_tag = "buckets";
    /// Restrict bucket space to these disks (empty = all).
    std::vector<bool> disk_mask;
    /// When set, flushes additionally wait for this shared buffer space
    /// (interleaved double-buffering of Section 4) and claim blocks from it.
    mem::InterleavedBuffer* space = nullptr;
  };

  DiskPartitioner(disk::StripedDiskGroup* disks, Options options);

  /// Hashes every tuple of `blocks` (which became available at `ready`).
  Status AddBlocks(std::span<const BlockPayload> blocks, SimSeconds ready);

  /// Accounts `count` phantom blocks holding `tuples` tuples, spread
  /// uniformly over all B buckets (available at `ready`).
  Status AddPhantomBlocks(BlockCount count, std::uint64_t tuples, SimSeconds ready);

  /// Flushes all partial write buffers. Must be called before buckets().
  Status Flush();

  /// Materialized buckets, indexed 0..bucket_span-1 (bucket `first_bucket+i`).
  const std::vector<DiskBucket>& buckets() const { return buckets_; }
  std::vector<DiskBucket>& buckets() { return buckets_; }

  /// Completion time of the last flushed write.
  SimSeconds last_write_end() const { return last_write_end_; }

  /// Total blocks written to disk so far.
  BlockCount blocks_written() const { return blocks_written_; }

 private:
  struct PendingBucket {
    std::vector<BlockPayload> full_blocks;  // encoded, not yet flushed
    std::unique_ptr<rel::BlockBuilder> builder;
    BlockCount phantom_pending = 0;
    std::uint64_t phantom_tuples_pending = 0;
    SimSeconds data_ready = 0.0;
  };

  bool Materialized(std::uint32_t bucket) const;
  /// Flushes `chunk` blocks (or whatever is pending if fewer and `final`).
  Status MaybeFlush(std::uint32_t local, bool final);

  disk::StripedDiskGroup* disks_;
  Options options_;
  std::uint32_t span_;
  std::vector<PendingBucket> pending_;
  std::vector<DiskBucket> buckets_;
  SimSeconds last_write_end_ = 0.0;
  BlockCount blocks_written_ = 0;
  // Remainder accounting for spreading phantom blocks/tuples over buckets.
  std::uint64_t phantom_block_carry_ = 0;
  std::uint64_t phantom_tuple_carry_ = 0;
  std::uint32_t phantom_cursor_ = 0;
};

/// Pipeline sink hashing a Transfer's chunks into disk buckets. Real chunks
/// feed AddBlocks; phantom chunks (null payloads) feed AddPhantomBlocks
/// with `tuples_per_block` tuples each, capped at `chunk_tuple_cap` per
/// chunk. The sink's write interval ends at the partitioner's trailing
/// flush, so a lock-step Transfer reproduces the sequential methods'
/// "tape waits for the hash writes" structure while a streaming Transfer
/// lets the writes trail (the concurrent methods).
class PartitionerSink final : public sim::BlockSink {
 public:
  PartitionerSink(DiskPartitioner* partitioner, std::uint64_t tuples_per_block,
                  std::uint64_t chunk_tuple_cap = std::numeric_limits<std::uint64_t>::max())
      : partitioner_(partitioner),
        tuples_per_block_(tuples_per_block),
        chunk_tuple_cap_(chunk_tuple_cap) {}

  Result<sim::Interval> Write(BlockCount offset, BlockCount count, SimSeconds ready,
                              std::vector<BlockPayload>* payloads) override;
  std::string_view device() const override { return "disks"; }

  /// Flushes trailing write buffers as a pipeline stage; its interval ends
  /// when the last buffered bucket write hits the disk.
  Result<sim::StageId> IssueFlush(sim::Pipeline& pipe, std::string_view phase,
                                  std::initializer_list<sim::StageId> deps);

 private:
  DiskPartitioner* partitioner_;
  std::uint64_t tuples_per_block_;
  std::uint64_t chunk_tuple_cap_;
};

}  // namespace tertio::hash
