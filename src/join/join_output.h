#pragma once

/// \file join_output.h
/// Join result accumulation and the cross-method result digest.
///
/// The paper assumes query output is pipelined to a consumer and charges no
/// I/O for it (Section 3.2); tertio therefore accumulates a count and an
/// order-independent checksum instead of materializing pairs. Two join
/// methods computed the same join iff their (tuples, checksum) agree — the
/// property the correctness tests assert for all seven methods against the
/// in-memory reference join.

#include <cstdint>
#include <functional>
#include <span>

#include "relation/tuple.h"
#include "util/rng.h"
#include "util/status.h"

namespace tertio::join {

/// Consumer of joined pairs. The paper's Section 3.2 assumes query output is
/// "pipelined to an unrelated process capable of receiving and processing
/// data at the output rate" — a MatchSink is that process. Pairs arrive in
/// an arbitrary, method-dependent order.
using MatchSink = std::function<Status(const rel::Tuple& r, const rel::Tuple& s)>;

/// FNV-1a over raw bytes (payload digests entering the pair checksum).
inline std::uint64_t HashBytes(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Accumulator for joined pairs, with an optional pipelined consumer.
class JoinOutput {
 public:
  /// Records the pair (r_tuple, s_tuple); digests are HashBytes of the full
  /// records. Addition is commutative, so methods may emit pairs in any
  /// order.
  void AddMatch(std::int64_t key, std::uint64_t r_digest, std::uint64_t s_digest) {
    ++tuples_;
    checksum_ += SplitMix64(SplitMix64(static_cast<std::uint64_t>(key)) ^
                            (r_digest * 0x9E3779B97F4A7C15ULL) ^ s_digest);
  }

  /// Records the pair and forwards the full tuples to the sink (if set).
  Status AddMatchWithRows(std::int64_t key, const rel::Tuple& r, const rel::Tuple& s) {
    AddMatch(key, HashBytes(r.bytes()), HashBytes(s.bytes()));
    if (sink_) return sink_(r, s);
    return Status::OK();
  }

  /// Attaches a pipelined consumer; pairs flow to it as they are produced.
  void set_sink(MatchSink sink) { sink_ = std::move(sink); }
  bool has_sink() const { return static_cast<bool>(sink_); }

  std::uint64_t tuples() const { return tuples_; }
  std::uint64_t checksum() const { return checksum_; }

  void MergeFrom(const JoinOutput& other) {
    tuples_ += other.tuples_;
    checksum_ += other.checksum_;
  }

 private:
  std::uint64_t tuples_ = 0;
  std::uint64_t checksum_ = 0;
  MatchSink sink_;
};

}  // namespace tertio::join
