#include "join/reference_join.h"

#include <vector>

#include "join/join_common.h"

namespace tertio::join {

Result<JoinOutput> ReferenceJoin(const rel::Relation& r, const rel::Relation& s,
                                 std::size_t r_key_column, std::size_t s_key_column) {
  if (r.phantom || s.phantom) {
    return Status::InvalidArgument("reference join requires real (non-phantom) relations");
  }
  if (r.volume == nullptr || s.volume == nullptr) {
    return Status::InvalidArgument("reference join requires tape-resident relations");
  }
  HashJoinTable table(&r.schema, r_key_column, /*build_is_r=*/true);
  std::vector<BlockPayload> blocks;
  for (BlockCount i = 0; i < r.blocks; ++i) {
    TERTIO_ASSIGN_OR_RETURN(BlockPayload payload, r.volume->ReadBlock(r.start_block + i));
    blocks.push_back(std::move(payload));
  }
  TERTIO_RETURN_IF_ERROR(table.AddBlocks(blocks));
  blocks.clear();

  JoinOutput output;
  for (BlockCount i = 0; i < s.blocks; ++i) {
    TERTIO_ASSIGN_OR_RETURN(BlockPayload payload, s.volume->ReadBlock(s.start_block + i));
    std::vector<BlockPayload> one{std::move(payload)};
    TERTIO_RETURN_IF_ERROR(table.Probe(one, &s.schema, s_key_column, &output));
  }
  return output;
}

}  // namespace tertio::join
