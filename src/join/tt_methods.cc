/// \file tt_methods.cc
/// The tape–tape Grace Hash Joins: CTT-GH (Section 5.2.1) and TT-GH
/// (Section 5.2.2) — the methods that work when D < |R|.
///
/// CTT-GH Step I builds a hashed copy of R *on the R tape*: R is scanned
/// ceil(|R|/D) times; each scan assembles a fraction of the buckets, in
/// full, on disk and appends them to the R tape. Step II then buffers S
/// buckets on disk (all D blocks, double-buffered) and streams the
/// tape-resident R buckets past them once per iteration.
///
/// TT-GH hashes R onto the S tape and S onto the R tape (eliminating tape
/// seeks between source and destination), then joins bucket pairs by
/// streaming both hashed tapes in parallel — at the price of also hashing S
/// from tape to tape, the setup cost that rules it out for large |S|.
///
/// Scheduling runs on sim::Pipeline: tape scans, bucket assembly, appends
/// and the dual-drive Step II streams are stages; per-drive chains are
/// StageIds and externally-computed readiness (bucket flush times) enters
/// the graph as events.

#include <algorithm>
#include <vector>

#include "hash/bucket_layout.h"
#include "hash/disk_partitioner.h"
#include "hash/tape_bucket_run.h"
#include "join/join_common.h"
#include "join/join_method.h"
#include "mem/double_buffer.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace tertio::join {
namespace {

/// Plans the bucket layout for a tape–tape method. Buckets of the largest
/// relation that must be *assembled on disk* have to fit the assembly area:
/// CTT-GH assembles only R's buckets (B >= ceil(|R|/D)), TT-GH assembles S's
/// as well (B >= ceil(|S|/D)). Full-data mode keeps one block of partial-
/// block slack per assembled bucket.
Result<hash::BucketLayout> PlanTt(const JoinSpec& spec, const JoinContext& ctx,
                                  BlockCount disk_free, BlockCount assembled_blocks) {
  BlockCount slack = spec.r->phantom ? 0 : 1;
  if (disk_free <= slack) {
    return Status::ResourceExhausted("tape-tape joins need some disk assembly space");
  }
  // Real hashing makes bucket sizes fluctuate around |rel|/B; plan with a
  // 25% margin so the largest bucket still fits both the disk assembly area
  // and the in-memory bucket allowance (avoiding overflow slices).
  BlockCount planned = spec.r->phantom ? assembled_blocks
                                       : assembled_blocks + assembled_blocks / 4;
  auto min_buckets =
      static_cast<std::uint32_t>(CeilDiv<std::uint64_t>(planned.value(), (disk_free - slack).value()));
  BlockCount planned_r =
      spec.r->phantom ? spec.r->blocks : spec.r->blocks + spec.r->blocks / 4 + 1;
  return hash::BucketLayout::Plan(planned_r, ctx.memory->total_blocks(),
                                  spec.options.preferred_write_buffer, min_buckets);
}

/// Hashes `relation` (read on `source`) into a contiguous bucket run
/// appended to the tape in `target`. Scans the relation once per bucket
/// group; each scan materializes as many full buckets as fit on disk.
/// \returns the stage completing the run.
Result<sim::StageId> HashRelationToTape(const JoinContext& ctx, sim::Pipeline& pipe,
                                        const rel::Relation& relation, std::size_t key_column,
                                        tape::TapeDrive* source, tape::TapeDrive* target,
                                        const hash::BucketLayout& layout, sim::StageId start,
                                        hash::TapeBucketRun* run, std::uint64_t* scan_count) {
  const bool phantom = relation.phantom;
  BlockCount disk_free = ctx.disks->allocator().free_blocks();
  // Each bucket needs its expected size plus one partial block of slack in
  // full-data mode.
  BlockCount per_bucket = CeilDiv<std::uint64_t>(relation.blocks.value(), layout.bucket_count) +
                          (phantom ? 0 : 1);
  auto per_scan = static_cast<std::uint32_t>(disk_free / per_bucket);
  if (per_scan == 0) {
    return Status::ResourceExhausted(
        StrFormat("disk space of %llu blocks cannot assemble even one bucket (%llu blocks)",
                  static_cast<unsigned long long>(disk_free.value()),
                  static_cast<unsigned long long>(per_bucket.value())));
  }
  per_scan = std::min(per_scan, layout.bucket_count);

  run->volume = target->volume();
  run->compressibility = relation.compressibility;
  run->regions.resize(layout.bucket_count);

  BlockCount chunk = DefaultTapeChunk(relation);
  std::uint64_t tuples_per_block =
      relation.blocks > 0 ? (relation.tuple_count + relation.blocks - 1) / relation.blocks : 0;
  sim::StageId cursor = start;
  std::uint64_t scans = 0;
  for (std::uint32_t first = 0; first < layout.bucket_count; first += per_scan, ++scans) {
    std::uint32_t span = std::min(per_scan, layout.bucket_count - first);
    hash::DiskPartitioner::Options options;
    options.schema = phantom ? nullptr : &relation.schema;
    options.key_column = key_column;
    options.bucket_count = layout.bucket_count;
    options.write_buffer_blocks = layout.write_buffer_blocks;
    options.first_bucket = first;
    options.bucket_span = span;
    options.alloc_tag = "tape-assembly";
    hash::DiskPartitioner partitioner(ctx.disks, options);

    // Scan the relation end to end (the source drive seeks back on demand);
    // hashing to disk streams behind the tape.
    tape::TapeReadSource scan_source(source, relation.start_block);
    hash::PartitionerSink scan_sink(&partitioner, tuples_per_block);
    sim::Pipeline::TransferPlan plan;
    plan.read_phase = "assemble-read";
    plan.write_phase = "assemble-write";
    plan.total = relation.blocks;
    plan.chunk = chunk;
    plan.streaming = true;
    plan.move_payloads = !phantom;
    plan.chunk_retry_limit = ctx.chunk_retry_limit;
    plan.allow_coalescing = ctx.coalesce_transfers;
    plan.closed_form_commit = ctx.closed_form_commit;
    TERTIO_ASSIGN_OR_RETURN(sim::Pipeline::TransferResult result,
                            pipe.Transfer(plan, scan_source, scan_sink, {cursor}));
    TERTIO_ASSIGN_OR_RETURN(sim::StageId flush,
                            scan_sink.IssueFlush(pipe, "assemble-flush", {result.last_read}));
    (void)flush;  // bucket readiness enters below as per-bucket events

    // Append the materialized buckets, in bucket order, to the target tape.
    sim::StageId append_chain = result.last_read;
    for (std::uint32_t local = 0; local < span; ++local) {
      hash::DiskBucket& bucket = partitioner.buckets()[local];
      hash::TapeBucketRegion& region = run->regions[first + local];
      region.start = ToIndex(target->volume()->size_blocks());
      region.blocks = bucket.blocks;
      region.tuples = bucket.tuples;
      if (bucket.blocks == 0) continue;
      std::vector<BlockPayload> payloads;
      TERTIO_ASSIGN_OR_RETURN(
          sim::StageId readback,
          ctx.disks->IssueRead(pipe, "assemble-readback",
                               {append_chain, pipe.Event("bucket-ready", bucket.ready)},
                               bucket.extents, phantom ? nullptr : &payloads,
                               ctx.chunk_retry_limit));
      TERTIO_ASSIGN_OR_RETURN(
          sim::StageId append,
          pipe.Stage("tape-append", target->name(), {readback}, bucket.blocks,
                     bucket.blocks * relation.block_bytes,
                     [&](SimSeconds ready) -> Result<sim::Interval> {
                       if (phantom) {
                         return target->AppendPhantom(bucket.blocks, relation.compressibility,
                                                      ready);
                       }
                       return target->Append(payloads, relation.compressibility, ready);
                     }));
      append_chain = append;
      TERTIO_RETURN_IF_ERROR(
          ctx.disks->allocator().Free(bucket.extents, pipe.end(append), "tape-assembly"));
      bucket.extents.clear();
    }
    cursor = append_chain;
  }
  if (scan_count != nullptr) *scan_count += scans;
  return cursor;
}

// ---------------------------------------------------------------- CTT-GH --

Result<JoinStats> ExecuteCttGh(const JoinSpec& spec, const JoinContext& ctx) {
  TERTIO_RETURN_IF_ERROR(ValidateSpecAndContext(spec, ctx));
  const rel::Relation& r = *spec.r;
  const rel::Relation& s = *spec.s;
  const bool phantom = r.phantom;
  BlockCount disk_free = ctx.disks->allocator().free_blocks();
  TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout, PlanTt(spec, ctx, disk_free, spec.r->blocks));
  StatsScope scope(ctx);
  TERTIO_RETURN_IF_ERROR(ctx.memory->Reserve(layout.memory_blocks, "ctt/memory"));
  BlockCount r_tape_size_before = r.volume->size_blocks();

  JoinStats stats;
  stats.method = std::string(JoinMethodName(JoinMethodId::kCttGh));
  stats.spans.set_retain(ctx.retain_spans);
  sim::Pipeline pipe(scope.start(), &stats.spans, ctx.sim->auditor());
  sim::StageId origin = pipe.Event("start", scope.start());

  // ---- Step I: hashed copy of R appended to the R tape.
  hash::TapeBucketRun run;
  std::uint64_t scans = 0;
  TERTIO_ASSIGN_OR_RETURN(
      sim::StageId step1_stage,
      HashRelationToTape(ctx, pipe, r, spec.r_key_column, ctx.drive_r, ctx.drive_r, layout,
                         origin, &run, &scans));
  SimSeconds step1_end = pipe.end(step1_stage);
  stats.step1_seconds = step1_end - scope.start();
  stats.r_scans = scans;

  // ---- Step II: S buckets on disk (all of D, double-buffered); R buckets
  // streamed from tape once per iteration.
  JoinOutput output;
  if (!phantom && spec.match_sink) output.set_sink(spec.match_sink);
  std::uint64_t overflow_slices = 0;
  BlockCount d = ctx.disks->allocator().free_blocks();
  BlockCount slab = d;
  if (!phantom) {
    if (d <= layout.bucket_count) {
      return Status::ResourceExhausted(
          "S buffer space must exceed one block per bucket in full-data mode");
    }
    slab = d - layout.bucket_count;
  }
  mem::InterleavedBuffer space(d);
  sim::StageId tape_s_chain = step1_stage;
  sim::StageId join_chain = step1_stage;
  BlockCount s_chunk = std::min<BlockCount>(DefaultTapeChunk(s), slab);
  std::uint64_t s_tuples_per_block =
      s.blocks > 0 ? (s.tuple_count + s.blocks - 1) / s.blocks : 0;

  for (BlockCount off = 0; off < s.blocks; off += slab) {
    BlockCount take_slab = std::min<BlockCount>(slab, s.blocks - off);
    hash::DiskPartitioner::Options s_options;
    s_options.schema = phantom ? nullptr : &s.schema;
    s_options.key_column = spec.s_key_column;
    s_options.bucket_count = layout.bucket_count;
    s_options.write_buffer_blocks = layout.write_buffer_blocks;
    s_options.alloc_tag = stats.iterations % 2 == 0 ? "S-iter-even" : "S-iter-odd";
    s_options.space = &space;
    hash::DiskPartitioner s_partitioner(ctx.disks, s_options);

    // Hash process: stream this slab from tape S into disk buckets.
    tape::TapeReadSource s_source(ctx.drive_s, s.start_block + off);
    hash::PartitionerSink s_sink(&s_partitioner, s_tuples_per_block);
    sim::Pipeline::TransferPlan plan;
    plan.read_phase = "s-hash-read";
    plan.write_phase = "s-hash-write";
    plan.total = take_slab;
    plan.chunk = s_chunk;
    plan.streaming = true;  // the hash process trails the tape
    plan.move_payloads = !phantom;
    plan.chunk_retry_limit = ctx.chunk_retry_limit;
    plan.allow_coalescing = ctx.coalesce_transfers;
    plan.closed_form_commit = ctx.closed_form_commit;
    TERTIO_ASSIGN_OR_RETURN(sim::Pipeline::TransferResult slab_result,
                            pipe.Transfer(plan, s_source, s_sink, {tape_s_chain}));
    tape_s_chain = slab_result.last_read;
    TERTIO_ASSIGN_OR_RETURN(sim::StageId flush,
                            s_sink.IssueFlush(pipe, "s-hash-flush", {tape_s_chain}));
    (void)flush;  // bucket readiness enters below as events

    // Join: stream R's tape-resident buckets past the disk-resident S
    // buckets — one full pass over hashed R per iteration. On drives with
    // READ REVERSE (the paper's footnote 2, after Knuth), odd iterations
    // walk the bucket run backwards so no locate back to the run's start is
    // ever needed; otherwise every iteration seeks back and reads forward.
    const bool reverse_pass = ctx.drive_r->model().supports_read_reverse &&
                              spec.options.use_read_reverse && stats.iterations % 2 == 1;
    for (std::uint32_t bi = 0; bi < layout.bucket_count; ++bi) {
      std::uint32_t b = reverse_pass ? layout.bucket_count - 1 - bi : bi;
      const hash::TapeBucketRegion& region = run.regions[b];
      hash::DiskBucket& sb = s_partitioner.buckets()[b];
      sim::StageId t = join_chain;
      if (region.blocks > 0 && reverse_pass && region.blocks <= layout.r_bucket_blocks) {
        // Backward read of the whole bucket (head is already at its end when
        // buckets are visited in descending order).
        if (ctx.drive_r->head_position() != region.start + region.blocks) {
          TERTIO_ASSIGN_OR_RETURN(
              t, pipe.Stage("r-run-locate", ctx.drive_r->name(), {t}, 0, 0,
                            [&](SimSeconds ready) {
                              return ctx.drive_r->Locate(region.start + region.blocks, ready);
                            }));
        }
        std::vector<BlockPayload> r_blocks;
        TERTIO_ASSIGN_OR_RETURN(
            t, pipe.Stage("r-run-read", ctx.drive_r->name(), {t}, region.blocks,
                          region.blocks * r.block_bytes,
                          [&](SimSeconds ready) {
                            return ctx.drive_r->ReadReverse(region.blocks, ready,
                                                            phantom ? nullptr : &r_blocks);
                          }));
        HashJoinTable table(&r.schema, spec.r_key_column, /*build_is_r=*/true,
                            /*capture_records=*/output.has_sink());
        if (!phantom) {
          TERTIO_RETURN_IF_ERROR(table.AddBlocks(r_blocks));
        }
        if (sb.blocks > 0) {
          TERTIO_ASSIGN_OR_RETURN(
              t, ScanDiskAndProbe(ctx, pipe, "s-bucket-scan", sb.extents,
                                  layout.write_buffer_blocks,
                                  {t, pipe.Event("s-bucket-ready", sb.ready)}, phantom,
                                  &s.schema, spec.s_key_column, phantom ? nullptr : &table,
                                  &output));
        }
      } else if (region.blocks > 0) {
        // Forward read into memory, possibly in slices on overflow.
        BlockCount offset = 0;
        std::uint64_t slices = 0;
        while (offset < region.blocks) {
          BlockCount take =
              std::min<BlockCount>(layout.r_bucket_blocks, region.blocks - offset);
          std::vector<BlockPayload> r_blocks;
          TERTIO_ASSIGN_OR_RETURN(
              sim::StageId read,
              ctx.drive_r->IssueRead(pipe, "r-run-read", {t}, region.start + offset, take,
                                     phantom ? nullptr : &r_blocks, ctx.chunk_retry_limit));
          t = read;
          HashJoinTable table(&r.schema, spec.r_key_column, /*build_is_r=*/true,
                              /*capture_records=*/output.has_sink());
          if (!phantom) {
            TERTIO_RETURN_IF_ERROR(table.AddBlocks(r_blocks));
          }
          if (sb.blocks > 0) {
            TERTIO_ASSIGN_OR_RETURN(
                t, ScanDiskAndProbe(ctx, pipe, "s-bucket-scan", sb.extents,
                                    layout.write_buffer_blocks,
                                    {t, pipe.Event("s-bucket-ready", sb.ready)}, phantom,
                                    &s.schema, spec.s_key_column,
                                    phantom ? nullptr : &table, &output));
          }
          offset += take;
          ++slices;
        }
        if (slices > 1) overflow_slices += slices - 1;
      } else if (sb.blocks > 0) {
        TERTIO_ASSIGN_OR_RETURN(
            t, ScanDiskAndProbe(ctx, pipe, "s-bucket-scan", sb.extents,
                                layout.write_buffer_blocks,
                                {t, pipe.Event("s-bucket-ready", sb.ready)}, phantom,
                                &s.schema, spec.s_key_column, nullptr, &output));
      }
      join_chain = t;
      if (sb.blocks > 0) {
        TERTIO_RETURN_IF_ERROR(
            ctx.disks->allocator().Free(sb.extents, pipe.end(join_chain), s_options.alloc_tag));
        TERTIO_RETURN_IF_ERROR(space.Release(sb.blocks, pipe.end(join_chain)));
        sb.extents.clear();
      }
    }
    stats.iterations += 1;
    stats.r_scans += 1;  // one pass over hashed R per iteration
  }

  SimSeconds finish = std::max(pipe.end(join_chain), pipe.end(tape_s_chain));
  stats.step2_seconds = finish - step1_end;
  stats.bucket_overflow_slices = overflow_slices;
  stats.chunk_retries = pipe.chunk_retries();
  scope.Fill(&stats);
  stats.response_seconds = std::max(stats.response_seconds, finish - scope.start());
  stats.output_valid = !phantom;
  stats.output_tuples = output.tuples();
  stats.output_checksum = output.checksum();
  stats.peak_disk_blocks = ctx.disks->allocator().used_blocks();

  // Reclaim the scratch region appended to the R tape.
  TERTIO_RETURN_IF_ERROR(r.volume->Truncate(r_tape_size_before));
  TERTIO_RETURN_IF_ERROR(ctx.memory->ReleaseAll("ctt/memory"));
  return stats;
}

// ----------------------------------------------------------------- TT-GH --

Result<JoinStats> ExecuteTtGh(const JoinSpec& spec, const JoinContext& ctx) {
  TERTIO_RETURN_IF_ERROR(ValidateSpecAndContext(spec, ctx));
  const rel::Relation& r = *spec.r;
  const rel::Relation& s = *spec.s;
  const bool phantom = r.phantom;
  BlockCount disk_free = ctx.disks->allocator().free_blocks();
  TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout, PlanTt(spec, ctx, disk_free, spec.s->blocks));
  StatsScope scope(ctx);
  TERTIO_RETURN_IF_ERROR(ctx.memory->Reserve(layout.memory_blocks, "tt/memory"));
  BlockCount r_tape_size_before = r.volume->size_blocks();
  BlockCount s_tape_size_before = s.volume->size_blocks();

  JoinStats stats;
  stats.method = std::string(JoinMethodName(JoinMethodId::kTtGh));
  stats.spans.set_retain(ctx.retain_spans);
  sim::Pipeline pipe(scope.start(), &stats.spans, ctx.sim->auditor());
  sim::StageId origin = pipe.Event("start", scope.start());

  // ---- Step I: hash R onto the S tape, then S onto the R tape.
  hash::TapeBucketRun r_run, s_run;
  std::uint64_t scans = 0;
  TERTIO_ASSIGN_OR_RETURN(
      sim::StageId r_hashed,
      HashRelationToTape(ctx, pipe, r, spec.r_key_column, ctx.drive_r, ctx.drive_s, layout,
                         origin, &r_run, &scans));
  stats.r_scans = scans;
  TERTIO_ASSIGN_OR_RETURN(
      sim::StageId step1_stage,
      HashRelationToTape(ctx, pipe, s, spec.s_key_column, ctx.drive_s, ctx.drive_r, layout,
                         r_hashed, &s_run, nullptr));
  SimSeconds step1_end = pipe.end(step1_stage);
  stats.step1_seconds = step1_end - scope.start();
  stats.iterations = CeilDiv<std::uint64_t>(r.blocks.value(), std::max<BlockCount>(disk_free, 1).value()) +
                     CeilDiv<std::uint64_t>(s.blocks.value(), std::max<BlockCount>(disk_free, 1).value());

  // ---- Step II: stream bucket pairs — R buckets from the S tape (drive S),
  // S buckets from the R tape (drive R) — in parallel.
  JoinOutput output;
  if (!phantom && spec.match_sink) output.set_sink(spec.match_sink);
  std::uint64_t overflow_slices = 0;
  sim::StageId drive_s_chain = step1_stage;  // reads R buckets
  sim::StageId drive_r_chain = step1_stage;  // reads S buckets
  BlockCount probe_chunk = std::max<BlockCount>(layout.write_buffer_blocks, 1);
  for (std::uint32_t b = 0; b < layout.bucket_count; ++b) {
    const hash::TapeBucketRegion& rb = r_run.regions[b];
    const hash::TapeBucketRegion& sb = s_run.regions[b];
    sim::StageId table_ready = drive_s_chain;
    HashJoinTable table(&r.schema, spec.r_key_column, /*build_is_r=*/true,
                        /*capture_records=*/output.has_sink());
    std::uint64_t slices = 0;
    BlockCount r_off = 0;
    do {
      BlockCount r_take = std::min<BlockCount>(layout.r_bucket_blocks, rb.blocks - r_off);
      if (rb.blocks > 0) {
        std::vector<BlockPayload> r_blocks;
        TERTIO_ASSIGN_OR_RETURN(
            sim::StageId read,
            ctx.drive_s->IssueRead(pipe, "r-bucket-read", {drive_s_chain}, rb.start + r_off,
                                   r_take, phantom ? nullptr : &r_blocks,
                                   ctx.chunk_retry_limit));
        drive_s_chain = read;
        table_ready = read;
        table.Clear();
        if (!phantom) {
          TERTIO_RETURN_IF_ERROR(table.AddBlocks(r_blocks));
        }
        ++slices;
      }
      // Stream the S bucket from the R tape through the table; the first
      // read waits for both the drive's queue and the build table.
      sim::StageId t = pipe.Barrier("pair-sync", {drive_r_chain, table_ready});
      tape::TapeReadSource sb_source(ctx.drive_r, sb.start);
      ProbeSink sink(phantom || rb.blocks == 0 ? nullptr : &table, &s.schema,
                     spec.s_key_column, &output);
      sim::Pipeline::TransferPlan plan;
      plan.read_phase = "s-bucket-read";
      plan.write_phase = "probe";
      plan.total = sb.blocks;
      plan.chunk = probe_chunk;
      plan.streaming = true;
      plan.move_payloads = !phantom;
      plan.chunk_retry_limit = ctx.chunk_retry_limit;
      plan.allow_coalescing = ctx.coalesce_transfers;
      plan.closed_form_commit = ctx.closed_form_commit;
      TERTIO_ASSIGN_OR_RETURN(sim::Pipeline::TransferResult result,
                              pipe.Transfer(plan, sb_source, sink, {t}));
      drive_r_chain = result.last_read == sim::kNoStage ? t : result.last_read;
      r_off += r_take;
    } while (r_off < rb.blocks);
    if (slices > 1) overflow_slices += slices - 1;
  }

  SimSeconds finish = std::max(pipe.end(drive_r_chain), pipe.end(drive_s_chain));
  stats.step2_seconds = finish - step1_end;
  stats.bucket_overflow_slices = overflow_slices;
  stats.r_scans += 1;  // the Step II pass over hashed R
  stats.chunk_retries = pipe.chunk_retries();
  scope.Fill(&stats);
  stats.response_seconds = std::max(stats.response_seconds, finish - scope.start());
  stats.output_valid = !phantom;
  stats.output_tuples = output.tuples();
  stats.output_checksum = output.checksum();
  stats.peak_disk_blocks = ctx.disks->allocator().used_blocks();

  TERTIO_RETURN_IF_ERROR(r.volume->Truncate(r_tape_size_before));
  TERTIO_RETURN_IF_ERROR(s.volume->Truncate(s_tape_size_before));
  TERTIO_RETURN_IF_ERROR(ctx.memory->ReleaseAll("tt/memory"));
  return stats;
}

class TtJoinMethod final : public JoinMethod {
 public:
  explicit TtJoinMethod(JoinMethodId id) : id_(id) {}

  JoinMethodId id() const override { return id_; }

  Result<ResourceRequirements> Requirements(const JoinSpec& spec,
                                            const JoinContext& ctx) const override {
    BlockCount disk_free = ctx.disks->allocator().free_blocks();
    TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout, PlanTt(spec, ctx, disk_free,
                            id_ == JoinMethodId::kCttGh ? spec.r->blocks : spec.s->blocks));
    ResourceRequirements req;
    req.memory_blocks = layout.memory_blocks;
    req.disk_blocks = CeilDiv<std::uint64_t>(spec.r->blocks.value(), layout.bucket_count) +
                      (spec.r->phantom ? 0 : 1);
    if (id_ == JoinMethodId::kCttGh) {
      req.tape_scratch_r_blocks = spec.r->blocks;
    } else {
      req.tape_scratch_r_blocks = spec.s->blocks;
      req.tape_scratch_s_blocks = spec.r->blocks;
    }
    return req;
  }

  Result<JoinStats> Execute(const JoinSpec& spec, const JoinContext& ctx) const override {
    return id_ == JoinMethodId::kCttGh ? ExecuteCttGh(spec, ctx) : ExecuteTtGh(spec, ctx);
  }

 private:
  JoinMethodId id_;
};

}  // namespace

std::unique_ptr<JoinMethod> MakeCttGh() {
  return std::make_unique<TtJoinMethod>(JoinMethodId::kCttGh);
}
std::unique_ptr<JoinMethod> MakeTtGh() {
  return std::make_unique<TtJoinMethod>(JoinMethodId::kTtGh);
}

}  // namespace tertio::join
