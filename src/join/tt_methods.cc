/// \file tt_methods.cc
/// The tape–tape Grace Hash Joins: CTT-GH (Section 5.2.1) and TT-GH
/// (Section 5.2.2) — the methods that work when D < |R|.
///
/// CTT-GH Step I builds a hashed copy of R *on the R tape*: R is scanned
/// ceil(|R|/D) times; each scan assembles a fraction of the buckets, in
/// full, on disk and appends them to the R tape. Step II then buffers S
/// buckets on disk (all D blocks, double-buffered) and streams the
/// tape-resident R buckets past them once per iteration.
///
/// TT-GH hashes R onto the S tape and S onto the R tape (eliminating tape
/// seeks between source and destination), then joins bucket pairs by
/// streaming both hashed tapes in parallel — at the price of also hashing S
/// from tape to tape, the setup cost that rules it out for large |S|.

#include <algorithm>
#include <vector>

#include "hash/bucket_layout.h"
#include "hash/disk_partitioner.h"
#include "hash/tape_bucket_run.h"
#include "join/join_common.h"
#include "join/join_method.h"
#include "mem/double_buffer.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace tertio::join {
namespace {

/// Plans the bucket layout for a tape–tape method. Buckets of the largest
/// relation that must be *assembled on disk* have to fit the assembly area:
/// CTT-GH assembles only R's buckets (B >= ceil(|R|/D)), TT-GH assembles S's
/// as well (B >= ceil(|S|/D)). Full-data mode keeps one block of partial-
/// block slack per assembled bucket.
Result<hash::BucketLayout> PlanTt(const JoinSpec& spec, const JoinContext& ctx,
                                  BlockCount disk_free, BlockCount assembled_blocks) {
  BlockCount slack = spec.r->phantom ? 0 : 1;
  if (disk_free <= slack) {
    return Status::ResourceExhausted("tape-tape joins need some disk assembly space");
  }
  // Real hashing makes bucket sizes fluctuate around |rel|/B; plan with a
  // 25% margin so the largest bucket still fits both the disk assembly area
  // and the in-memory bucket allowance (avoiding overflow slices).
  BlockCount planned = spec.r->phantom ? assembled_blocks
                                       : assembled_blocks + assembled_blocks / 4;
  auto min_buckets =
      static_cast<std::uint32_t>(CeilDiv<std::uint64_t>(planned, disk_free - slack));
  BlockCount planned_r =
      spec.r->phantom ? spec.r->blocks : spec.r->blocks + spec.r->blocks / 4 + 1;
  return hash::BucketLayout::Plan(planned_r, ctx.memory->total_blocks(),
                                  spec.options.preferred_write_buffer, min_buckets);
}

/// Hashes `relation` (read on `source`) into a contiguous bucket run
/// appended to the tape in `target`. Scans the relation once per bucket
/// group; each scan materializes as many full buckets as fit on disk.
/// \returns the completion time.
Result<SimSeconds> HashRelationToTape(const JoinContext& ctx, const rel::Relation& relation,
                                      std::size_t key_column, tape::TapeDrive* source,
                                      tape::TapeDrive* target,
                                      const hash::BucketLayout& layout, SimSeconds start,
                                      hash::TapeBucketRun* run, std::uint64_t* scan_count) {
  const bool phantom = relation.phantom;
  BlockCount disk_free = ctx.disks->allocator().free_blocks();
  // Each bucket needs its expected size plus one partial block of slack in
  // full-data mode.
  BlockCount per_bucket = CeilDiv<std::uint64_t>(relation.blocks, layout.bucket_count) +
                          (phantom ? 0 : 1);
  auto per_scan = static_cast<std::uint32_t>(disk_free / per_bucket);
  if (per_scan == 0) {
    return Status::ResourceExhausted(
        StrFormat("disk space of %llu blocks cannot assemble even one bucket (%llu blocks)",
                  static_cast<unsigned long long>(disk_free),
                  static_cast<unsigned long long>(per_bucket)));
  }
  per_scan = std::min(per_scan, layout.bucket_count);

  run->volume = target->volume();
  run->compressibility = relation.compressibility;
  run->regions.resize(layout.bucket_count);

  BlockCount chunk = DefaultTapeChunk(relation);
  std::uint64_t tuples_per_block =
      relation.blocks > 0 ? (relation.tuple_count + relation.blocks - 1) / relation.blocks : 0;
  SimSeconds cursor = start;
  std::uint64_t scans = 0;
  for (std::uint32_t first = 0; first < layout.bucket_count; first += per_scan, ++scans) {
    std::uint32_t span = std::min(per_scan, layout.bucket_count - first);
    hash::DiskPartitioner::Options options;
    options.schema = phantom ? nullptr : &relation.schema;
    options.key_column = key_column;
    options.bucket_count = layout.bucket_count;
    options.write_buffer_blocks = layout.write_buffer_blocks;
    options.first_bucket = first;
    options.bucket_span = span;
    options.alloc_tag = "tape-assembly";
    hash::DiskPartitioner partitioner(ctx.disks, options);

    // Scan the relation end to end (the source drive seeks back on demand).
    for (BlockCount off = 0; off < relation.blocks; off += chunk) {
      BlockCount take = std::min<BlockCount>(chunk, relation.blocks - off);
      std::vector<BlockPayload> payloads;
      TERTIO_ASSIGN_OR_RETURN(sim::Interval read,
                              source->Read(relation.start_block + off, take, cursor,
                                           phantom ? nullptr : &payloads));
      if (phantom) {
        TERTIO_RETURN_IF_ERROR(partitioner.AddPhantomBlocks(
            take, static_cast<std::uint64_t>(take) * tuples_per_block, read.end));
      } else {
        TERTIO_RETURN_IF_ERROR(partitioner.AddBlocks(payloads, read.end));
      }
      cursor = read.end;  // hashing to disk overlaps the tape scan
    }
    TERTIO_RETURN_IF_ERROR(partitioner.Flush());

    // Append the materialized buckets, in bucket order, to the target tape.
    SimSeconds append_cursor = cursor;
    for (std::uint32_t local = 0; local < span; ++local) {
      hash::DiskBucket& bucket = partitioner.buckets()[local];
      hash::TapeBucketRegion& region = run->regions[first + local];
      region.start = target->volume()->size_blocks();
      region.blocks = bucket.blocks;
      region.tuples = bucket.tuples;
      if (bucket.blocks == 0) continue;
      std::vector<BlockPayload> payloads;
      TERTIO_ASSIGN_OR_RETURN(
          sim::Interval readback,
          ctx.disks->ReadExtents(bucket.extents,
                                 std::max(append_cursor, bucket.ready),
                                 phantom ? nullptr : &payloads));
      sim::Interval append;
      if (phantom) {
        TERTIO_ASSIGN_OR_RETURN(append, target->AppendPhantom(bucket.blocks,
                                                              relation.compressibility,
                                                              readback.end));
      } else {
        TERTIO_ASSIGN_OR_RETURN(
            append, target->Append(payloads, relation.compressibility, readback.end));
      }
      append_cursor = append.end;
      TERTIO_RETURN_IF_ERROR(
          ctx.disks->allocator().Free(bucket.extents, append.end, "tape-assembly"));
      bucket.extents.clear();
    }
    cursor = append_cursor;
  }
  if (scan_count != nullptr) *scan_count += scans;
  return cursor;
}

// ---------------------------------------------------------------- CTT-GH --

Result<JoinStats> ExecuteCttGh(const JoinSpec& spec, const JoinContext& ctx) {
  TERTIO_RETURN_IF_ERROR(ValidateSpecAndContext(spec, ctx));
  const rel::Relation& r = *spec.r;
  const rel::Relation& s = *spec.s;
  const bool phantom = r.phantom;
  BlockCount disk_free = ctx.disks->allocator().free_blocks();
  TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout, PlanTt(spec, ctx, disk_free, spec.r->blocks));
  TERTIO_RETURN_IF_ERROR(ctx.memory->Reserve(layout.memory_blocks, "ctt/memory"));
  BlockCount r_tape_size_before = r.volume->size_blocks();

  StatsScope scope(ctx);
  JoinStats stats;
  stats.method = std::string(JoinMethodName(JoinMethodId::kCttGh));

  // ---- Step I: hashed copy of R appended to the R tape.
  hash::TapeBucketRun run;
  std::uint64_t scans = 0;
  TERTIO_ASSIGN_OR_RETURN(
      SimSeconds step1_end,
      HashRelationToTape(ctx, r, spec.r_key_column, ctx.drive_r, ctx.drive_r, layout,
                         scope.start(), &run, &scans));
  stats.step1_seconds = step1_end - scope.start();
  stats.r_scans = scans;

  // ---- Step II: S buckets on disk (all of D, double-buffered); R buckets
  // streamed from tape once per iteration.
  JoinOutput output;
  if (!phantom && spec.match_sink) output.set_sink(spec.match_sink);
  std::uint64_t overflow_slices = 0;
  BlockCount d = ctx.disks->allocator().free_blocks();
  BlockCount slab = d;
  if (!phantom) {
    if (d <= layout.bucket_count) {
      return Status::ResourceExhausted(
          "S buffer space must exceed one block per bucket in full-data mode");
    }
    slab = d - layout.bucket_count;
  }
  mem::InterleavedBuffer space(d);
  SimSeconds tape_s_cursor = step1_end;
  SimSeconds join_cursor = step1_end;
  BlockCount s_chunk = std::min<BlockCount>(DefaultTapeChunk(s), slab);
  std::uint64_t s_tuples_per_block =
      s.blocks > 0 ? (s.tuple_count + s.blocks - 1) / s.blocks : 0;

  for (BlockCount off = 0; off < s.blocks; off += slab) {
    BlockCount take_slab = std::min<BlockCount>(slab, s.blocks - off);
    hash::DiskPartitioner::Options s_options;
    s_options.schema = phantom ? nullptr : &s.schema;
    s_options.key_column = spec.s_key_column;
    s_options.bucket_count = layout.bucket_count;
    s_options.write_buffer_blocks = layout.write_buffer_blocks;
    s_options.alloc_tag = stats.iterations % 2 == 0 ? "S-iter-even" : "S-iter-odd";
    s_options.space = &space;
    hash::DiskPartitioner s_partitioner(ctx.disks, s_options);

    for (BlockCount done = 0; done < take_slab; done += s_chunk) {
      BlockCount take = std::min<BlockCount>(s_chunk, take_slab - done);
      std::vector<BlockPayload> payloads;
      TERTIO_ASSIGN_OR_RETURN(sim::Interval read,
                              ctx.drive_s->Read(s.start_block + off + done, take,
                                                tape_s_cursor, phantom ? nullptr : &payloads));
      if (phantom) {
        TERTIO_RETURN_IF_ERROR(s_partitioner.AddPhantomBlocks(
            take, static_cast<std::uint64_t>(take) * s_tuples_per_block, read.end));
      } else {
        TERTIO_RETURN_IF_ERROR(s_partitioner.AddBlocks(payloads, read.end));
      }
      tape_s_cursor = read.end;
    }
    TERTIO_RETURN_IF_ERROR(s_partitioner.Flush());

    // Join: stream R's tape-resident buckets past the disk-resident S
    // buckets — one full pass over hashed R per iteration. On drives with
    // READ REVERSE (the paper's footnote 2, after Knuth), odd iterations
    // walk the bucket run backwards so no locate back to the run's start is
    // ever needed; otherwise every iteration seeks back and reads forward.
    const bool reverse_pass = ctx.drive_r->model().supports_read_reverse &&
                              spec.options.use_read_reverse && stats.iterations % 2 == 1;
    for (std::uint32_t bi = 0; bi < layout.bucket_count; ++bi) {
      std::uint32_t b = reverse_pass ? layout.bucket_count - 1 - bi : bi;
      const hash::TapeBucketRegion& region = run.regions[b];
      hash::DiskBucket& sb = s_partitioner.buckets()[b];
      SimSeconds t = join_cursor;
      if (region.blocks > 0 && reverse_pass && region.blocks <= layout.r_bucket_blocks) {
        // Backward read of the whole bucket (head is already at its end when
        // buckets are visited in descending order).
        if (ctx.drive_r->head_position() != region.start + region.blocks) {
          TERTIO_ASSIGN_OR_RETURN(sim::Interval seek,
                                  ctx.drive_r->Locate(region.start + region.blocks, t));
          t = seek.end;
        }
        std::vector<BlockPayload> r_blocks;
        TERTIO_ASSIGN_OR_RETURN(
            sim::Interval read,
            ctx.drive_r->ReadReverse(region.blocks, t, phantom ? nullptr : &r_blocks));
        t = read.end;
        HashJoinTable table(&r.schema, spec.r_key_column, /*build_is_r=*/true,
                            /*capture_records=*/output.has_sink());
        if (!phantom) {
          TERTIO_RETURN_IF_ERROR(table.AddBlocks(r_blocks));
        }
        if (sb.blocks > 0) {
          TERTIO_ASSIGN_OR_RETURN(
              t, ScanDiskAndProbe(ctx, sb.extents, layout.write_buffer_blocks,
                                  std::max(t, sb.ready), phantom, &s.schema,
                                  spec.s_key_column, phantom ? nullptr : &table, &output));
        }
      } else if (region.blocks > 0) {
        // Forward read into memory, possibly in slices on overflow.
        BlockCount offset = 0;
        std::uint64_t slices = 0;
        while (offset < region.blocks) {
          BlockCount take =
              std::min<BlockCount>(layout.r_bucket_blocks, region.blocks - offset);
          std::vector<BlockPayload> r_blocks;
          TERTIO_ASSIGN_OR_RETURN(sim::Interval read,
                                  ctx.drive_r->Read(region.start + offset, take, t,
                                                    phantom ? nullptr : &r_blocks));
          t = read.end;
          HashJoinTable table(&r.schema, spec.r_key_column, /*build_is_r=*/true,
                              /*capture_records=*/output.has_sink());
          if (!phantom) {
            TERTIO_RETURN_IF_ERROR(table.AddBlocks(r_blocks));
          }
          if (sb.blocks > 0) {
            TERTIO_ASSIGN_OR_RETURN(
                t, ScanDiskAndProbe(ctx, sb.extents, layout.write_buffer_blocks,
                                    std::max(t, sb.ready), phantom, &s.schema,
                                    spec.s_key_column, phantom ? nullptr : &table, &output));
          }
          offset += take;
          ++slices;
        }
        if (slices > 1) overflow_slices += slices - 1;
      } else if (sb.blocks > 0) {
        TERTIO_ASSIGN_OR_RETURN(
            t, ScanDiskAndProbe(ctx, sb.extents, layout.write_buffer_blocks,
                                std::max(t, sb.ready), phantom, &s.schema, spec.s_key_column,
                                nullptr, &output));
      }
      join_cursor = t;
      if (sb.blocks > 0) {
        TERTIO_RETURN_IF_ERROR(
            ctx.disks->allocator().Free(sb.extents, join_cursor, s_options.alloc_tag));
        TERTIO_RETURN_IF_ERROR(space.Release(sb.blocks, join_cursor));
        sb.extents.clear();
      }
    }
    stats.iterations += 1;
    stats.r_scans += 1;  // one pass over hashed R per iteration
  }

  SimSeconds finish = std::max(join_cursor, tape_s_cursor);
  stats.step2_seconds = finish - step1_end;
  stats.bucket_overflow_slices = overflow_slices;
  scope.Fill(&stats);
  stats.response_seconds = std::max(stats.response_seconds, finish - scope.start());
  stats.output_valid = !phantom;
  stats.output_tuples = output.tuples();
  stats.output_checksum = output.checksum();
  stats.peak_disk_blocks = ctx.disks->allocator().used_blocks();

  // Reclaim the scratch region appended to the R tape.
  TERTIO_RETURN_IF_ERROR(r.volume->Truncate(r_tape_size_before));
  TERTIO_RETURN_IF_ERROR(ctx.memory->ReleaseAll("ctt/memory"));
  return stats;
}

// ----------------------------------------------------------------- TT-GH --

Result<JoinStats> ExecuteTtGh(const JoinSpec& spec, const JoinContext& ctx) {
  TERTIO_RETURN_IF_ERROR(ValidateSpecAndContext(spec, ctx));
  const rel::Relation& r = *spec.r;
  const rel::Relation& s = *spec.s;
  const bool phantom = r.phantom;
  BlockCount disk_free = ctx.disks->allocator().free_blocks();
  TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout, PlanTt(spec, ctx, disk_free, spec.s->blocks));
  TERTIO_RETURN_IF_ERROR(ctx.memory->Reserve(layout.memory_blocks, "tt/memory"));
  BlockCount r_tape_size_before = r.volume->size_blocks();
  BlockCount s_tape_size_before = s.volume->size_blocks();

  StatsScope scope(ctx);
  JoinStats stats;
  stats.method = std::string(JoinMethodName(JoinMethodId::kTtGh));

  // ---- Step I: hash R onto the S tape, then S onto the R tape.
  hash::TapeBucketRun r_run, s_run;
  std::uint64_t scans = 0;
  TERTIO_ASSIGN_OR_RETURN(
      SimSeconds r_hashed,
      HashRelationToTape(ctx, r, spec.r_key_column, ctx.drive_r, ctx.drive_s, layout,
                         scope.start(), &r_run, &scans));
  stats.r_scans = scans;
  TERTIO_ASSIGN_OR_RETURN(
      SimSeconds step1_end,
      HashRelationToTape(ctx, s, spec.s_key_column, ctx.drive_s, ctx.drive_r, layout, r_hashed,
                         &s_run, nullptr));
  stats.step1_seconds = step1_end - scope.start();
  stats.iterations = CeilDiv<std::uint64_t>(r.blocks, std::max<BlockCount>(disk_free, 1)) +
                     CeilDiv<std::uint64_t>(s.blocks, std::max<BlockCount>(disk_free, 1));

  // ---- Step II: stream bucket pairs — R buckets from the S tape (drive S),
  // S buckets from the R tape (drive R) — in parallel.
  JoinOutput output;
  if (!phantom && spec.match_sink) output.set_sink(spec.match_sink);
  std::uint64_t overflow_slices = 0;
  SimSeconds drive_s_cursor = step1_end;  // reads R buckets
  SimSeconds drive_r_cursor = step1_end;  // reads S buckets
  BlockCount probe_chunk = std::max<BlockCount>(layout.write_buffer_blocks, 1);
  for (std::uint32_t b = 0; b < layout.bucket_count; ++b) {
    const hash::TapeBucketRegion& rb = r_run.regions[b];
    const hash::TapeBucketRegion& sb = s_run.regions[b];
    SimSeconds table_ready = drive_s_cursor;
    HashJoinTable table(&r.schema, spec.r_key_column, /*build_is_r=*/true,
                        /*capture_records=*/output.has_sink());
    std::uint64_t slices = 0;
    BlockCount r_off = 0;
    do {
      BlockCount r_take = std::min<BlockCount>(layout.r_bucket_blocks, rb.blocks - r_off);
      if (rb.blocks > 0) {
        std::vector<BlockPayload> r_blocks;
        TERTIO_ASSIGN_OR_RETURN(sim::Interval read,
                                ctx.drive_s->Read(rb.start + r_off, r_take, drive_s_cursor,
                                                  phantom ? nullptr : &r_blocks));
        drive_s_cursor = read.end;
        table_ready = read.end;
        table.Clear();
        if (!phantom) {
          TERTIO_RETURN_IF_ERROR(table.AddBlocks(r_blocks));
        }
        ++slices;
      }
      // Stream the S bucket from the R tape through the table.
      SimSeconds t = std::max(drive_r_cursor, table_ready);
      for (BlockCount s_off = 0; s_off < sb.blocks; s_off += probe_chunk) {
        BlockCount s_take = std::min<BlockCount>(probe_chunk, sb.blocks - s_off);
        std::vector<BlockPayload> s_blocks;
        TERTIO_ASSIGN_OR_RETURN(sim::Interval read,
                                ctx.drive_r->Read(sb.start + s_off, s_take, t,
                                                  phantom ? nullptr : &s_blocks));
        t = read.end;
        if (!phantom && rb.blocks > 0) {
          TERTIO_RETURN_IF_ERROR(
              table.Probe(s_blocks, &s.schema, spec.s_key_column, &output));
        }
      }
      drive_r_cursor = t;
      r_off += r_take;
    } while (r_off < rb.blocks);
    if (slices > 1) overflow_slices += slices - 1;
  }

  SimSeconds finish = std::max(drive_r_cursor, drive_s_cursor);
  stats.step2_seconds = finish - step1_end;
  stats.bucket_overflow_slices = overflow_slices;
  stats.r_scans += 1;  // the Step II pass over hashed R
  scope.Fill(&stats);
  stats.response_seconds = std::max(stats.response_seconds, finish - scope.start());
  stats.output_valid = !phantom;
  stats.output_tuples = output.tuples();
  stats.output_checksum = output.checksum();
  stats.peak_disk_blocks = ctx.disks->allocator().used_blocks();

  TERTIO_RETURN_IF_ERROR(r.volume->Truncate(r_tape_size_before));
  TERTIO_RETURN_IF_ERROR(s.volume->Truncate(s_tape_size_before));
  TERTIO_RETURN_IF_ERROR(ctx.memory->ReleaseAll("tt/memory"));
  return stats;
}

class TtJoinMethod final : public JoinMethod {
 public:
  explicit TtJoinMethod(JoinMethodId id) : id_(id) {}

  JoinMethodId id() const override { return id_; }

  Result<ResourceRequirements> Requirements(const JoinSpec& spec,
                                            const JoinContext& ctx) const override {
    BlockCount disk_free = ctx.disks->allocator().free_blocks();
    TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout, PlanTt(spec, ctx, disk_free,
                            id_ == JoinMethodId::kCttGh ? spec.r->blocks : spec.s->blocks));
    ResourceRequirements req;
    req.memory_blocks = layout.memory_blocks;
    req.disk_blocks = CeilDiv<std::uint64_t>(spec.r->blocks, layout.bucket_count) +
                      (spec.r->phantom ? 0 : 1);
    if (id_ == JoinMethodId::kCttGh) {
      req.tape_scratch_r_blocks = spec.r->blocks;
    } else {
      req.tape_scratch_r_blocks = spec.s->blocks;
      req.tape_scratch_s_blocks = spec.r->blocks;
    }
    return req;
  }

  Result<JoinStats> Execute(const JoinSpec& spec, const JoinContext& ctx) const override {
    return id_ == JoinMethodId::kCttGh ? ExecuteCttGh(spec, ctx) : ExecuteTtGh(spec, ctx);
  }

 private:
  JoinMethodId id_;
};

}  // namespace

std::unique_ptr<JoinMethod> MakeCttGh() {
  return std::make_unique<TtJoinMethod>(JoinMethodId::kCttGh);
}
std::unique_ptr<JoinMethod> MakeTtGh() {
  return std::make_unique<TtJoinMethod>(JoinMethodId::kTtGh);
}

}  // namespace tertio::join
