#pragma once

/// \file advisor.h
/// Method selection: the paper's conclusions (Section 10) as an API.
///
/// Given the machine's resources and the relation sizes, the advisor ranks
/// the feasible methods by their analytical cost estimate and returns the
/// winner plus the full ranking. The paper's qualitative rules emerge from
/// the estimates:
///  * very large |R| (beyond disk) — CTT-GH is the sole candidate;
///  * ample disk but little memory — CDT-GH;
///  * a large fraction of R fits in memory — CDT-NB/MB.

#include <vector>

#include "cost/cost_model.h"
#include "cost/method_id.h"
#include "util/status.h"

namespace tertio::join {

/// One ranked candidate.
struct AdvisorChoice {
  JoinMethodId method;
  cost::CostBreakdown estimate;
};

/// Full advisor output: feasible methods ranked by estimated response time
/// (fastest first) plus the infeasible ones with their reasons.
struct AdvisorReport {
  std::vector<AdvisorChoice> ranked;
  struct Rejection {
    JoinMethodId method;
    Status reason;
  };
  std::vector<Rejection> rejected;

  const AdvisorChoice& best() const { return ranked.front(); }
};

/// Ranks all seven methods for the given configuration. Fails only if *no*
/// method is feasible.
Result<AdvisorReport> AdviseJoinMethod(const cost::CostParams& params);

}  // namespace tertio::join
