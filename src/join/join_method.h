#pragma once

/// \file join_method.h
/// The public interface of the seven tertiary join methods (Section 5).
///
/// Usage:
///   auto method = CreateJoinMethod(JoinMethodId::kCttGh);
///   TERTIO_ASSIGN_OR_RETURN(JoinStats stats, method->Execute(spec, ctx));
///
/// Execute runs the *whole* algorithm against the simulated devices in the
/// context: it moves the actual relation blocks, charges every I/O to the
/// device timelines, and returns both the join result digest and the
/// response-time breakdown. Scratch state (disk allocations, tape scratch
/// appends, memory reservations) is restored before returning, so the same
/// context can run several joins back to back.

#include <memory>
#include <string_view>

#include "cost/method_id.h"
#include "join/join_spec.h"
#include "util/status.h"

namespace tertio::join {

/// One of the paper's join algorithms.
class JoinMethod {
 public:
  virtual ~JoinMethod() = default;

  virtual JoinMethodId id() const = 0;
  std::string_view name() const { return JoinMethodName(id()); }

  /// Table 2: the minimum resources this method needs for `spec` in `ctx`
  /// (sizes that depend on |S_i| are evaluated against the context's actual
  /// memory and disk).
  virtual Result<ResourceRequirements> Requirements(const JoinSpec& spec,
                                                    const JoinContext& ctx) const = 0;

  /// Runs the join. Fails without side effects if the context cannot satisfy
  /// Requirements().
  virtual Result<JoinStats> Execute(const JoinSpec& spec, const JoinContext& ctx) const = 0;
};

/// Factory for the seven methods.
std::unique_ptr<JoinMethod> CreateJoinMethod(JoinMethodId id);

}  // namespace tertio::join
