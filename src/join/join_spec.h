#pragma once

/// \file join_spec.h
/// Inputs, outputs, and device context of one tertiary join execution.

#include <cstdint>
#include <string>

#include "cost/method_id.h"
#include "join/join_output.h"
#include "disk/striped_group.h"
#include "mem/memory_budget.h"
#include "relation/relation.h"
#include "sim/pipeline.h"
#include "sim/simulation.h"
#include "tape/tape_drive.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::join {

/// Tuning knobs shared by all executors.
struct ExecutionOptions {
  /// Preferred hash write-buffer size w (blocks per bucket flush; the
  /// planner shrinks it under memory pressure).
  BlockCount preferred_write_buffer = 8;
  /// Fraction of M the NB methods reserve for scanning R (paper: 10%).
  double nb_r_fraction = 0.1;
  /// Sub-chunks per buffer for interleaved double-buffering granularity.
  int interleave_slices = 8;
  /// On drives implementing SCSI READ REVERSE, let CTT-GH alternate scan
  /// direction over the hashed R run (the paper's footnote 2: bi-directional
  /// drives make repositioning between iterations unnecessary).
  bool use_read_reverse = true;
};

/// The join to compute: R |><| S on an equality key.
struct JoinSpec {
  const rel::Relation* r = nullptr;
  const rel::Relation* s = nullptr;
  std::size_t r_key_column = 0;
  std::size_t s_key_column = 0;
  ExecutionOptions options;
  /// Optional pipelined consumer of the joined pairs (Section 3.2's
  /// "pipelined to an unrelated process"). Ignored in phantom runs.
  MatchSink match_sink;
};

/// The devices and memory the join may use (Section 3.1's configuration).
struct JoinContext {
  sim::Simulation* sim = nullptr;
  /// Drive holding (and with scratch space for) tape R.
  tape::TapeDrive* drive_r = nullptr;
  /// Drive holding tape S.
  tape::TapeDrive* drive_s = nullptr;
  disk::StripedDiskGroup* disks = nullptr;
  mem::MemoryBudget* memory = nullptr;
  /// Robot resource when the machine has a tape library (exchange counting).
  sim::Resource* robot = nullptr;
  /// Earliest virtual time the join may begin. The single-query path leaves
  /// this 0 (the join anchors at the current horizon, the seed behavior);
  /// the service layer sets it to the query's admission time so a join on an
  /// idle site still starts no earlier than its arrival.
  SimSeconds not_before = 0.0;
  /// Anchor the join at exactly not_before instead of
  /// max(Horizon(), not_before), and measure response_seconds from
  /// per-resource horizon deltas instead of the global horizon. Set by the
  /// concurrent scheduler when other sessions are in flight: the global
  /// horizon then includes the *other* sessions' queued work, so anchoring
  /// or measuring against it would serialize independent joins. Off (the
  /// seed behavior) for the single-query path and for serial dispatch.
  bool exact_anchor = false;
  /// Retain every pipeline span in JoinStats::spans (per-phase summaries are
  /// always collected; full span lists of paper-scale joins are large).
  bool retain_spans = false;
  /// Chunk-level re-attempts the shared transfer helpers grant after a
  /// kDeviceError (a device fault that survived the device's own bounded
  /// retries). Every method inherits this recovery through
  /// StageRelationToDisk / ScanDiskAndProbe.
  int chunk_retry_limit = 3;
  /// Let eligible phantom transfers collapse their steady-state chunk
  /// recurrence into batched device commits (sim/pipeline.h). Bit-identical
  /// in simulated time and all aggregates; off forces the per-chunk path
  /// (the equivalence tests' reference).
  bool coalesce_transfers = true;
  /// Let coalesced windows commit their steady state in closed form (O(1)
  /// jumps over the chunk recurrence instead of an O(chunks) scalar replay;
  /// sim/pipeline.h). Bit-identical either way; off forces the full replay
  /// (the middle rung of the per-chunk / replay / closed-form equivalence
  /// ladder). Ignored when coalesce_transfers is off.
  bool closed_form_commit = true;
};

/// Everything a run reports. Timing is virtual; tuple counts are exact in
/// full-data mode and zero in timing-only (phantom) mode.
struct JoinStats {
  std::string method;
  /// Total response time (Steps I + II), seconds of virtual time.
  SimSeconds response_seconds = 0.0;
  SimSeconds step1_seconds = 0.0;
  SimSeconds step2_seconds = 0.0;

  /// True when the run moved real tuples and `output_*` are meaningful.
  bool output_valid = false;
  std::uint64_t output_tuples = 0;
  /// Order-independent digest over all joined pairs; equal digests across
  /// methods mean identical join results.
  std::uint64_t output_checksum = 0;

  BlockCount disk_blocks_read = 0;
  BlockCount disk_blocks_written = 0;
  BlockCount tape_blocks_read = 0;
  BlockCount tape_blocks_written = 0;
  /// Tape blocks this join received by piggybacking on another query's
  /// in-flight pass (scan sharing) instead of reading the tape itself.
  /// Always 0 outside the multi-query service.
  BlockCount tape_blocks_shared = 0;
  /// Tape blocks this join received from the cross-query disk extent cache
  /// (disk/extent_cache.h) at disk cost instead of reading the tape.
  /// Always 0 outside the multi-query service.
  BlockCount tape_blocks_cached = 0;
  std::uint64_t disk_requests = 0;

  /// Full passes over R (from any medium).
  std::uint64_t r_scans = 0;
  std::uint64_t iterations = 0;
  /// Extra build-side slices forced by hash-bucket overflow (0 under the
  /// paper's uniform-hashing assumption; >0 signals key skew absorbed by
  /// the graceful-degradation path).
  std::uint64_t bucket_overflow_slices = 0;

  /// Peak reservations observed during the run.
  BlockCount peak_memory_blocks = 0;
  BlockCount peak_disk_blocks = 0;

  /// Memory blocks this join still held when its stats were collected (the
  /// method's working reservation, excluding pre-existing reservations).
  BlockCount memory_occupied_blocks = 0;
  /// Robot operations (cartridge exchange trips) during the join.
  std::uint64_t robot_exchanges = 0;

  /// Fault-model counters (sim/fault.h), all zero in a fault-free run.
  /// Faults injected into this join's device operations (transient read
  /// errors + bad blocks discovered + robot exchange failures).
  std::uint64_t faults_injected = 0;
  /// Device-level bounded re-attempts that recovered.
  std::uint64_t fault_retries = 0;
  /// Latent bad blocks discovered and skip-and-remapped.
  std::uint64_t blocks_remapped = 0;
  /// Chunk-granular transfer re-issues after a hard device error (the
  /// pipeline's checkpoint-resume recovery).
  std::uint64_t chunk_retries = 0;
  /// Device time spent detecting and recovering from faults.
  SimSeconds recovery_seconds = 0.0;

  /// Per-phase pipeline spans of the run (always carries per-phase
  /// summaries; individual spans when JoinContext::retain_spans was set).
  /// Rendered by exec/report and sim/trace_report.
  sim::SpanTrace spans;

  BlockCount disk_traffic_blocks() const { return disk_blocks_read + disk_blocks_written; }
  BlockCount tape_traffic_blocks() const { return tape_blocks_read + tape_blocks_written; }
};

/// Table 2: what a method needs before it can run.
struct ResourceRequirements {
  BlockCount memory_blocks = 0;
  BlockCount disk_blocks = 0;
  BlockCount tape_scratch_r_blocks = 0;
  BlockCount tape_scratch_s_blocks = 0;
};

}  // namespace tertio::join
