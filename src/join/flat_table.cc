#include "join/flat_table.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <limits>

#include "join/simd.h"
#include "relation/block.h"
#include "relation/tuple.h"

namespace tertio::join {
namespace {

/// Slots ahead of the current record whose cache lines are prefetched
/// (the scalar kernels' lookahead ring, and the batched probe's second
/// pipeline stage: filter test + conditional slot prefetch).
constexpr std::size_t kPrefetchDistance = 8;

/// First pipeline stage of the batched probe: records are digested this far
/// ahead and their Bloom filter word is prefetched. The filter is a few
/// percent of the table and mostly cache-resident, so a short extra lead
/// over kPrefetchDistance is enough to have the word loaded by test time.
constexpr std::size_t kFilterDistance = 16;
static_assert(kFilterDistance >= kPrefetchDistance,
              "the filter stage must run ahead of the filter test");

inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

inline void PrefetchWrite(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/1);
#else
  (void)p;
#endif
}

}  // namespace

void FlatJoinTable::Rehash(std::size_t new_capacity) {
  std::vector<Slot, util::HugePageAllocator<Slot>> old = std::move(slots_);
  slots_.assign(new_capacity, Slot{});
  mask_ = new_capacity - 1;
  bloom_.assign(new_capacity / 8, 0);
  bloom_mask_ = new_capacity / 8 - 1;
  for (const Slot& slot : old) {
    if (slot.digest != 0) InsertSlot(slot);
  }
}

void FlatJoinTable::InsertSlot(const Slot& slot) {
  std::size_t idx = static_cast<std::size_t>(slot.digest) & mask_;
  while (slots_[idx].digest != 0) {
    idx = (idx + 1) & mask_;
  }
  slots_[idx] = slot;
  BloomAdd(slot.digest);
}

void FlatJoinTable::Reserve(std::uint64_t entries) {
  // Max load factor 0.7: capacity is the next power of two above
  // entries / 0.7, never below 16.
  std::size_t capacity = slots_.empty() ? 16 : slots_.size();
  while (static_cast<double>(entries) > 0.7 * static_cast<double>(capacity)) {
    capacity *= 2;
  }
  if (capacity != slots_.size()) Rehash(capacity);
}

void FlatJoinTable::Clear() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  std::fill(bloom_.begin(), bloom_.end(), 0);
  size_ = 0;
  arena_.clear();
}

Status FlatJoinTable::AddBlocks(std::span<const BlockPayload> blocks) {
  if (simd::ActiveLevel() == simd::Level::kScalar) return AddBlocksScalar(blocks);
  return AddBlocksBatched(blocks);
}

Status FlatJoinTable::Probe(std::span<const BlockPayload> blocks,
                            const rel::Schema* probe_schema, std::size_t probe_key_column,
                            JoinOutput* out) const {
  if (simd::ActiveLevel() == simd::Level::kScalar) {
    return ProbeScalar(blocks, probe_schema, probe_key_column, out);
  }
  return ProbeBatched(blocks, probe_schema, probe_key_column, out);
}

Status FlatJoinTable::AddBlocksScalar(std::span<const BlockPayload> blocks) {
  // One reservation for the whole batch (block headers are cheap to parse
  // twice): no rehash can happen mid-insert, so the prefetched slot
  // addresses below stay valid, and a chunk-sized batch grows the slot
  // array once instead of once per doubling.
  std::uint64_t incoming = 0;
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, build_schema_));
    incoming += reader.record_count();
  }
  Reserve(size_ + incoming);
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, build_schema_));
    const std::uint64_t n = reader.record_count();
    if (n == 0) continue;

    // Software-prefetch pipeline: digests run kPrefetchDistance records
    // ahead of the inserts, so the slot line of record i is (usually) in
    // cache by the time its insert scan starts.
    std::uint64_t digests[kPrefetchDistance];
    const std::uint64_t lead = std::min<std::uint64_t>(n, kPrefetchDistance);
    for (std::uint64_t i = 0; i < lead; ++i) {
      rel::Tuple tuple(reader.record(i), build_schema_);
      std::uint64_t digest = DigestOf(tuple.GetInt64(build_key_));
      digests[i % kPrefetchDistance] = digest;
      PrefetchWrite(&slots_[static_cast<std::size_t>(digest) & mask_]);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      // Read the current record's digest out of the ring before the
      // lookahead below reuses the same ring position (i + D ≡ i mod D).
      const std::uint64_t current_digest = digests[i % kPrefetchDistance];
      if (i + kPrefetchDistance < n) {
        rel::Tuple ahead(reader.record(i + kPrefetchDistance), build_schema_);
        std::uint64_t digest = DigestOf(ahead.GetInt64(build_key_));
        digests[i % kPrefetchDistance] = digest;
        PrefetchWrite(&slots_[static_cast<std::size_t>(digest) & mask_]);
      }
      rel::Tuple tuple(reader.record(i), build_schema_);
      Slot slot;
      slot.digest = current_digest;
      slot.key = tuple.GetInt64(build_key_);
      slot.record_digest = HashBytes(tuple.bytes());
      if (capture_records_) {
        std::span<const std::uint8_t> bytes = tuple.bytes();
        if (arena_.size() + bytes.size() >
            static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
          return Status::ResourceExhausted("flat table arena exceeds 4 GiB of build records");
        }
        slot.record_offset = static_cast<std::uint32_t>(arena_.size());
        slot.record_length = static_cast<std::uint32_t>(bytes.size());
        arena_.insert(arena_.end(), bytes.begin(), bytes.end());
      }
      InsertSlot(slot);
      ++size_;
    }
  }
  return Status::OK();
}

Status FlatJoinTable::ProbeScalar(std::span<const BlockPayload> blocks,
                                  const rel::Schema* probe_schema,
                                  std::size_t probe_key_column, JoinOutput* out) const {
  if (size_ == 0) return Status::OK();
  const bool pipeline = capture_records_ && out->has_sink();
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, probe_schema));
    const std::uint64_t n = reader.record_count();
    std::uint64_t digests[kPrefetchDistance];
    const std::uint64_t lead = std::min<std::uint64_t>(n, kPrefetchDistance);
    for (std::uint64_t i = 0; i < lead; ++i) {
      rel::Tuple tuple(reader.record(i), probe_schema);
      std::uint64_t digest = DigestOf(tuple.GetInt64(probe_key_column));
      digests[i % kPrefetchDistance] = digest;
      PrefetchRead(&slots_[static_cast<std::size_t>(digest) & mask_]);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      // Read before the lookahead reuses this ring position (i + D ≡ i).
      const std::uint64_t digest = digests[i % kPrefetchDistance];
      if (i + kPrefetchDistance < n) {
        rel::Tuple ahead(reader.record(i + kPrefetchDistance), probe_schema);
        std::uint64_t ahead_digest = DigestOf(ahead.GetInt64(probe_key_column));
        digests[i % kPrefetchDistance] = ahead_digest;
        PrefetchRead(&slots_[static_cast<std::size_t>(ahead_digest) & mask_]);
      }
      rel::Tuple tuple(reader.record(i), probe_schema);
      const std::int64_t key = tuple.GetInt64(probe_key_column);
      // The probe record's digest enters the pair checksum; computed lazily
      // on the first match so unmatched probes cost one slot load only.
      std::uint64_t probe_digest = 0;
      bool have_probe_digest = false;
      std::size_t idx = static_cast<std::size_t>(digest) & mask_;
      while (slots_[idx].digest != 0) {
        const Slot& slot = slots_[idx];
        // Digest first, key bytes only on digest equality: an (injected)
        // digest collision between unequal keys falls through to the key
        // compare and is rejected there.
        if (slot.digest == digest && slot.key == key) {
          if (!have_probe_digest) {
            probe_digest = HashBytes(tuple.bytes());
            have_probe_digest = true;
          }
          if (pipeline) {
            rel::Tuple build_tuple(
                std::span<const std::uint8_t>(arena_.data() + slot.record_offset,
                                              slot.record_length),
                build_schema_);
            const rel::Tuple& r = build_is_r_ ? build_tuple : tuple;
            const rel::Tuple& s = build_is_r_ ? tuple : build_tuple;
            TERTIO_RETURN_IF_ERROR(out->AddMatchWithRows(slot.key, r, s));
          } else if (build_is_r_) {
            out->AddMatch(slot.key, slot.record_digest, probe_digest);
          } else {
            out->AddMatch(slot.key, probe_digest, slot.record_digest);
          }
        }
        idx = (idx + 1) & mask_;
      }
    }
  }
  return Status::OK();
}

Status FlatJoinTable::AddBlocksBatched(std::span<const BlockPayload> blocks) {
  static_assert(sizeof(Slot) == 4 * sizeof(std::uint64_t), "group compares assume 32-byte slots");
  static_assert(offsetof(Slot, digest) == 0, "group compares read word 0 as the digest");
  // Same up-front reservation as the scalar path: no rehash mid-insert, so
  // the word view and prefetched lines below stay valid for the whole batch.
  std::uint64_t incoming = 0;
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, build_schema_));
    incoming += reader.record_count();
  }
  Reserve(size_ + incoming);
  const simd::Level level = simd::ActiveLevel();
  constexpr std::size_t kStride = sizeof(Slot) / sizeof(std::uint64_t);
  const std::uint64_t* slot_words = reinterpret_cast<const std::uint64_t*>(slots_.data());
  const std::size_t capacity = slots_.size();
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, build_schema_));
    const std::uint64_t n = reader.record_count();
    if (n == 0) continue;
    // Same paced prefetch ring as the scalar path (one prefetch issued per
    // record keeps the miss queue from overflowing, which a burst of a whole
    // batch's prefetches does not); the insert scan itself runs the SIMD
    // group-of-four empty-slot search.
    std::uint64_t digests[kPrefetchDistance];
    std::int64_t keys[kPrefetchDistance];
    auto stage = [&](BlockCount j) {
      rel::Tuple tuple(reader.record(j.value()), build_schema_);
      const std::int64_t key = tuple.GetInt64(build_key_);
      const std::uint64_t digest = DigestOf(key);
      keys[(j % kPrefetchDistance).value()] = key;
      digests[(j % kPrefetchDistance).value()] = digest;
      PrefetchWrite(&slots_[static_cast<std::size_t>(digest) & mask_]);
    };
    const std::uint64_t lead = std::min<std::uint64_t>(n, kPrefetchDistance);
    for (BlockCount j = 0; j < lead; ++j) stage(j);
    for (std::uint64_t i = 0; i < n; ++i) {
      // Read the current record's ring entries before the lookahead below
      // reuses the same ring position (i + D ≡ i mod D).
      Slot slot;
      slot.digest = digests[i % kPrefetchDistance];
      slot.key = keys[i % kPrefetchDistance];
      if (i + kPrefetchDistance < n) stage(i + kPrefetchDistance);
      rel::Tuple tuple(reader.record(i), build_schema_);
      slot.record_digest = HashBytes(tuple.bytes());
      if (capture_records_) {
        std::span<const std::uint8_t> bytes = tuple.bytes();
        if (arena_.size() + bytes.size() >
            static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
          return Status::ResourceExhausted("flat table arena exceeds 4 GiB of build records");
        }
        slot.record_offset = static_cast<std::uint32_t>(arena_.size());
        slot.record_length = static_cast<std::uint32_t>(bytes.size());
        arena_.insert(arena_.end(), bytes.begin(), bytes.end());
      }
      BloomAdd(slot.digest);
      // Empty-slot scan: the home slot is free for most inserts below the
      // 0.7 load ceiling, so test it with one scalar load and fall back to
      // group-of-four scans only when a cluster has to be crossed. The
      // first empty slot found is the same slot the scalar InsertSlot walk
      // lands on, so the two kernels build bit-identical tables.
      std::size_t idx = static_cast<std::size_t>(slot.digest) & mask_;
      if (slots_[idx].digest == 0) {
        slots_[idx] = slot;
        ++size_;
        continue;
      }
      idx = (idx + 1) & mask_;
      for (;;) {
        if (idx + 4 <= capacity) {
          const simd::Group4 g =
              simd::CompareDigests4(level, slot_words + idx * kStride, kStride, slot.digest);
          if (g.empty_mask != 0) {
            slots_[idx + static_cast<std::size_t>(std::countr_zero(g.empty_mask))] = slot;
            break;
          }
          idx += 4;
          if (idx == capacity) idx = 0;
        } else {
          // Group would run past the array end: scalar-step across the wrap.
          if (slots_[idx].digest == 0) {
            slots_[idx] = slot;
            break;
          }
          idx = (idx + 1) & mask_;
        }
      }
      ++size_;
    }
  }
  return Status::OK();
}

Status FlatJoinTable::ProbeBatched(std::span<const BlockPayload> blocks,
                                   const rel::Schema* probe_schema,
                                   std::size_t probe_key_column, JoinOutput* out) const {
  if (size_ == 0) return Status::OK();
  const simd::Level level = simd::ActiveLevel();
  const bool pipeline = capture_records_ && out->has_sink();
  constexpr std::size_t kStride = sizeof(Slot) / sizeof(std::uint64_t);
  const std::uint64_t* slot_words = reinterpret_cast<const std::uint64_t*>(slots_.data());
  const std::size_t capacity = slots_.size();
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, probe_schema));
    const std::uint64_t n = reader.record_count();
    if (n == 0) continue;
    // Two-stage software pipeline. Stage one (kFilterDistance ahead):
    // digest the record and prefetch its Bloom filter word. Stage two
    // (kPrefetchDistance ahead): test the filter — the word has had half a
    // ring of lead time to arrive — and prefetch the slot line only for
    // digests that may be present. By the time a surviving record is
    // processed its slot line has been in flight for kPrefetchDistance
    // records; rejected records skip the slot array entirely.
    std::uint64_t digests[kFilterDistance];
    std::int64_t keys[kFilterDistance];
    bool may_match[kPrefetchDistance];
    auto stage_digest = [&](BlockCount j) {
      rel::Tuple tuple(reader.record(j.value()), probe_schema);
      const std::int64_t key = tuple.GetInt64(probe_key_column);
      const std::uint64_t digest = DigestOf(key);
      keys[(j % kFilterDistance).value()] = key;
      digests[(j % kFilterDistance).value()] = digest;
      PrefetchRead(&bloom_[BloomWordOf(digest)]);
    };
    auto stage_filter = [&](BlockCount j) {
      const std::uint64_t digest = digests[(j % kFilterDistance).value()];
      const bool may = BloomMayContain(digest);
      may_match[(j % kPrefetchDistance).value()] = may;
      if (may) PrefetchRead(&slots_[static_cast<std::size_t>(digest) & mask_]);
    };
    const std::uint64_t lead_digest = std::min<std::uint64_t>(n, kFilterDistance);
    for (BlockCount j = 0; j < lead_digest; ++j) stage_digest(j);
    const std::uint64_t lead_filter = std::min<std::uint64_t>(n, kPrefetchDistance);
    for (BlockCount j = 0; j < lead_filter; ++j) stage_filter(j);
    for (std::uint64_t i = 0; i < n; ++i) {
      // Read the current record's ring entries before the stage calls below
      // reuse the same ring positions (i + D ≡ i mod D).
      const std::uint64_t digest = digests[i % kFilterDistance];
      const std::int64_t key = keys[i % kFilterDistance];
      const bool walk = may_match[i % kPrefetchDistance];
      if (i + kFilterDistance < n) stage_digest(i + kFilterDistance);
      if (i + kPrefetchDistance < n) stage_filter(i + kPrefetchDistance);
      if (!walk) continue;
      rel::Tuple tuple(reader.record(i), probe_schema);
      // Lazy probe digest, as in the scalar walk: unmatched probes never
      // hash their record bytes.
      std::uint64_t probe_digest = 0;
      bool have_probe_digest = false;
      auto emit = [&](const Slot& slot) -> Status {
        if (!have_probe_digest) {
          probe_digest = HashBytes(tuple.bytes());
          have_probe_digest = true;
        }
        if (pipeline) {
          rel::Tuple build_tuple(
              std::span<const std::uint8_t>(arena_.data() + slot.record_offset,
                                            slot.record_length),
              build_schema_);
          const rel::Tuple& r = build_is_r_ ? build_tuple : tuple;
          const rel::Tuple& s = build_is_r_ ? tuple : build_tuple;
          return out->AddMatchWithRows(slot.key, r, s);
        }
        if (build_is_r_) {
          out->AddMatch(slot.key, slot.record_digest, probe_digest);
        } else {
          out->AddMatch(slot.key, probe_digest, slot.record_digest);
        }
        return Status::OK();
      };
      std::size_t idx = static_cast<std::size_t>(digest) & mask_;
      bool open = true;
      while (open) {
        if (idx + 4 <= capacity) {
          const simd::Group4 g =
              simd::CompareDigests4(level, slot_words + idx * kStride, kStride, digest);
          std::uint32_t matches = g.match_mask;
          if (g.empty_mask != 0) {
            // The chain ends at the first empty slot; digests equal to the
            // probe's beyond it belong to other chains.
            matches &= (1u << std::countr_zero(g.empty_mask)) - 1u;
            open = false;
          }
          while (matches != 0) {
            const Slot& slot =
                slots_[idx + static_cast<std::size_t>(std::countr_zero(matches))];
            matches &= matches - 1;
            // Digest first, key bytes only on digest equality — an
            // (injected) digest collision between unequal keys is
            // rejected here, exactly as in the scalar walk.
            if (slot.key != key) continue;
            TERTIO_RETURN_IF_ERROR(emit(slot));
          }
          if (open) {
            idx += 4;
            if (idx == capacity) idx = 0;
          }
        } else {
          // Group would run past the array end: scalar-step across the wrap.
          const Slot& slot = slots_[idx];
          if (slot.digest == 0) {
            open = false;
          } else {
            if (slot.digest == digest && slot.key == key) {
              TERTIO_RETURN_IF_ERROR(emit(slot));
            }
            idx = (idx + 1) & mask_;
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace tertio::join
