#include "join/flat_table.h"

#include <algorithm>
#include <limits>

#include "relation/block.h"
#include "relation/tuple.h"

namespace tertio::join {
namespace {

/// Slots ahead of the current record whose cache lines are prefetched.
constexpr std::size_t kPrefetchDistance = 8;

inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

inline void PrefetchWrite(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/1);
#else
  (void)p;
#endif
}

}  // namespace

void FlatJoinTable::Rehash(std::size_t new_capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_capacity, Slot{});
  mask_ = new_capacity - 1;
  for (const Slot& slot : old) {
    if (slot.digest != 0) InsertSlot(slot);
  }
}

void FlatJoinTable::InsertSlot(const Slot& slot) {
  std::size_t idx = static_cast<std::size_t>(slot.digest) & mask_;
  while (slots_[idx].digest != 0) {
    idx = (idx + 1) & mask_;
  }
  slots_[idx] = slot;
}

void FlatJoinTable::Reserve(std::uint64_t entries) {
  // Max load factor 0.7: capacity is the next power of two above
  // entries / 0.7, never below 16.
  std::size_t capacity = slots_.empty() ? 16 : slots_.size();
  while (static_cast<double>(entries) > 0.7 * static_cast<double>(capacity)) {
    capacity *= 2;
  }
  if (capacity != slots_.size()) Rehash(capacity);
}

void FlatJoinTable::Clear() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  size_ = 0;
  arena_.clear();
}

Status FlatJoinTable::AddBlocks(std::span<const BlockPayload> blocks) {
  // One reservation for the whole batch (block headers are cheap to parse
  // twice): no rehash can happen mid-insert, so the prefetched slot
  // addresses below stay valid, and a chunk-sized batch grows the slot
  // array once instead of once per doubling.
  std::uint64_t incoming = 0;
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, build_schema_));
    incoming += reader.record_count();
  }
  Reserve(size_ + incoming);
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, build_schema_));
    const BlockCount n = reader.record_count();
    if (n == 0) continue;

    // Software-prefetch pipeline: digests run kPrefetchDistance records
    // ahead of the inserts, so the slot line of record i is (usually) in
    // cache by the time its insert scan starts.
    std::uint64_t digests[kPrefetchDistance];
    const BlockCount lead = std::min<BlockCount>(n, kPrefetchDistance);
    for (BlockCount i = 0; i < lead; ++i) {
      rel::Tuple tuple(reader.record(i), build_schema_);
      std::uint64_t digest = DigestOf(tuple.GetInt64(build_key_));
      digests[i % kPrefetchDistance] = digest;
      PrefetchWrite(&slots_[static_cast<std::size_t>(digest) & mask_]);
    }
    for (BlockCount i = 0; i < n; ++i) {
      // Read the current record's digest out of the ring before the
      // lookahead below reuses the same ring position (i + D ≡ i mod D).
      const std::uint64_t current_digest = digests[i % kPrefetchDistance];
      if (i + kPrefetchDistance < n) {
        rel::Tuple ahead(reader.record(i + kPrefetchDistance), build_schema_);
        std::uint64_t digest = DigestOf(ahead.GetInt64(build_key_));
        digests[i % kPrefetchDistance] = digest;
        PrefetchWrite(&slots_[static_cast<std::size_t>(digest) & mask_]);
      }
      rel::Tuple tuple(reader.record(i), build_schema_);
      Slot slot;
      slot.digest = current_digest;
      slot.key = tuple.GetInt64(build_key_);
      slot.record_digest = HashBytes(tuple.bytes());
      if (capture_records_) {
        std::span<const std::uint8_t> bytes = tuple.bytes();
        if (arena_.size() + bytes.size() >
            static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
          return Status::ResourceExhausted("flat table arena exceeds 4 GiB of build records");
        }
        slot.record_offset = static_cast<std::uint32_t>(arena_.size());
        slot.record_length = static_cast<std::uint32_t>(bytes.size());
        arena_.insert(arena_.end(), bytes.begin(), bytes.end());
      }
      InsertSlot(slot);
      ++size_;
    }
  }
  return Status::OK();
}

Status FlatJoinTable::Probe(std::span<const BlockPayload> blocks,
                            const rel::Schema* probe_schema, std::size_t probe_key_column,
                            JoinOutput* out) const {
  if (size_ == 0) return Status::OK();
  const bool pipeline = capture_records_ && out->has_sink();
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, probe_schema));
    const BlockCount n = reader.record_count();
    std::uint64_t digests[kPrefetchDistance];
    const BlockCount lead = std::min<BlockCount>(n, kPrefetchDistance);
    for (BlockCount i = 0; i < lead; ++i) {
      rel::Tuple tuple(reader.record(i), probe_schema);
      std::uint64_t digest = DigestOf(tuple.GetInt64(probe_key_column));
      digests[i % kPrefetchDistance] = digest;
      PrefetchRead(&slots_[static_cast<std::size_t>(digest) & mask_]);
    }
    for (BlockCount i = 0; i < n; ++i) {
      // Read before the lookahead reuses this ring position (i + D ≡ i).
      const std::uint64_t digest = digests[i % kPrefetchDistance];
      if (i + kPrefetchDistance < n) {
        rel::Tuple ahead(reader.record(i + kPrefetchDistance), probe_schema);
        std::uint64_t ahead_digest = DigestOf(ahead.GetInt64(probe_key_column));
        digests[i % kPrefetchDistance] = ahead_digest;
        PrefetchRead(&slots_[static_cast<std::size_t>(ahead_digest) & mask_]);
      }
      rel::Tuple tuple(reader.record(i), probe_schema);
      const std::int64_t key = tuple.GetInt64(probe_key_column);
      // The probe record's digest enters the pair checksum; computed lazily
      // on the first match so unmatched probes cost one slot load only.
      std::uint64_t probe_digest = 0;
      bool have_probe_digest = false;
      std::size_t idx = static_cast<std::size_t>(digest) & mask_;
      while (slots_[idx].digest != 0) {
        const Slot& slot = slots_[idx];
        // Digest first, key bytes only on digest equality: an (injected)
        // digest collision between unequal keys falls through to the key
        // compare and is rejected there.
        if (slot.digest == digest && slot.key == key) {
          if (!have_probe_digest) {
            probe_digest = HashBytes(tuple.bytes());
            have_probe_digest = true;
          }
          if (pipeline) {
            rel::Tuple build_tuple(
                std::span<const std::uint8_t>(arena_.data() + slot.record_offset,
                                              slot.record_length),
                build_schema_);
            const rel::Tuple& r = build_is_r_ ? build_tuple : tuple;
            const rel::Tuple& s = build_is_r_ ? tuple : build_tuple;
            TERTIO_RETURN_IF_ERROR(out->AddMatchWithRows(slot.key, r, s));
          } else if (build_is_r_) {
            out->AddMatch(slot.key, slot.record_digest, probe_digest);
          } else {
            out->AddMatch(slot.key, probe_digest, slot.record_digest);
          }
        }
        idx = (idx + 1) & mask_;
      }
    }
  }
  return Status::OK();
}

}  // namespace tertio::join
