#pragma once

/// \file simd.h
/// Vectorized slot-group compares for the flat join table.
///
/// This is the only file in the repository allowed to contain raw SIMD
/// intrinsics (tertio_lint rule `simd-intrinsics` pins that boundary). The
/// rest of the join layer sees three portable operations over a group of
/// four consecutive table slots:
///
///   CompareDigests4  — which of the four slot digests equal a probe digest,
///                      and which slots are empty (digest == 0)?
///   FindEmpty4       — which of the four slots are empty? (insert scans)
///
/// Both return little bitmasks (bit j = slot j), so the callers' chain-walk
/// logic is identical across instruction sets and the scalar fallback —
/// the equivalence tests in tests/flat_table_simd_test.cc hold the SIMD
/// paths to bit-identical outputs against the forced-scalar reference.
///
/// The table's slots are 32 bytes (four std::uint64_t words) with the digest
/// in word 0, so consecutive digests sit one `stride_words` apart; SSE2 has
/// no gather, so the kernels assemble two digests per 128-bit lane pair from
/// scalar loads (the compare, movemask, and branch-free mask logic are where
/// the vector units earn their keep, not the loads).
///
/// Instruction-set selection is runtime-dispatched: the baseline presets
/// compile with no -march assumptions, SSE2 is architectural on x86_64 and
/// NEON on AArch64, so the "best" level needs no compiler flags. Override
/// with the environment variable TERTIO_SIMD=scalar|native (the forced-
/// scalar CI job) or SetLevelForTest from tests.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define TERTIO_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__)
#define TERTIO_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace tertio::join::simd {

enum class Level : int {
  kScalar = 0,  ///< reference path: the original per-slot probe loop
  kSse2 = 1,    ///< x86-64 baseline (no SSE4.1 assumption)
  kNeon = 2,    ///< AArch64 baseline
};

/// Best level the build target architecturally guarantees (no CPUID needed:
/// SSE2 and NEON are baseline on their respective 64-bit ISAs).
constexpr Level BestSupportedLevel() {
#if defined(TERTIO_SIMD_SSE2)
  return Level::kSse2;
#elif defined(TERTIO_SIMD_NEON)
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

constexpr const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kNeon: return "neon";
  }
  return "unknown";
}

namespace internal {

/// -1 = uninitialized; otherwise holds a Level. Process-wide, so one env
/// read serves every table.
inline std::atomic<int>& LevelCell() {
  static std::atomic<int> cell{-1};
  return cell;
}

inline Level ResolveFromEnvironment() {
  const char* env = std::getenv("TERTIO_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) return Level::kScalar;
  // Any other value (including "native" and unset) takes the best level the
  // target guarantees; requesting an ISA the binary was not built for cannot
  // be honored, so there is no way to over-promise.
  return BestSupportedLevel();
}

}  // namespace internal

/// The dispatch level in effect for every FlatJoinTable in the process.
inline Level ActiveLevel() {
  int cached = internal::LevelCell().load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = static_cast<int>(internal::ResolveFromEnvironment());
    internal::LevelCell().store(cached, std::memory_order_relaxed);
  }
  return static_cast<Level>(cached);
}

/// Test hook: force a dispatch level (clamped to the build target's best).
/// Tests restore the default by calling ResetLevelForTest.
inline void SetLevelForTest(Level level) {
  if (static_cast<int>(level) > static_cast<int>(BestSupportedLevel())) {
    level = BestSupportedLevel();
  }
  internal::LevelCell().store(static_cast<int>(level), std::memory_order_relaxed);
}

inline void ResetLevelForTest() {
  internal::LevelCell().store(-1, std::memory_order_relaxed);
}

/// Result of one group-of-four digest compare. Bit j (j in 0..3) refers to
/// the slot at `slot_digests + j * stride_words`.
struct Group4 {
  std::uint32_t match_mask = 0;  ///< slot digest == probe digest
  std::uint32_t empty_mask = 0;  ///< slot digest == 0 (open-addressing end)
};

/// Portable reference kernel — also the forced-scalar path's group compare
/// in code that is structured around groups (the scalar *probe loop* in
/// flat_table.cc does not call this; it keeps the original per-slot walk).
inline Group4 CompareDigests4Scalar(const std::uint64_t* slot_digests,
                                    std::size_t stride_words, std::uint64_t digest) {
  Group4 g;
  for (std::uint32_t j = 0; j < 4; ++j) {
    const std::uint64_t d = slot_digests[j * stride_words];
    g.match_mask |= (d == digest ? 1u : 0u) << j;
    g.empty_mask |= (d == 0 ? 1u : 0u) << j;
  }
  return g;
}

#if defined(TERTIO_SIMD_SSE2)

namespace internal {

/// 64-bit lane equality on plain SSE2: _mm_cmpeq_epi64 is SSE4.1, so build
/// it from the 32-bit compare — a 64-bit lane is equal iff both of its
/// 32-bit halves compare equal, i.e. AND the compare with its half-swapped
/// self.
inline __m128i CmpEq64(__m128i a, __m128i b) {
  __m128i eq32 = _mm_cmpeq_epi32(a, b);
  __m128i swapped = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1));
  return _mm_and_si128(eq32, swapped);
}

/// Packs the two 64-bit lane predicates of (lo, hi) into bits 0..3:
/// movemask_pd reads the lane sign bits, two lanes per register.
inline std::uint32_t Mask64x4(__m128i lo, __m128i hi) {
  const std::uint32_t lo_bits =
      static_cast<std::uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(lo)));
  const std::uint32_t hi_bits =
      static_cast<std::uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(hi)));
  return lo_bits | (hi_bits << 2);
}

}  // namespace internal

inline Group4 CompareDigests4Sse2(const std::uint64_t* slot_digests,
                                  std::size_t stride_words, std::uint64_t digest) {
  // Slots are strided, not contiguous, and SSE2 has no gather: assemble two
  // digests per register from scalar loads.
  const __m128i d01 = _mm_set_epi64x(static_cast<long long>(slot_digests[stride_words]),
                                     static_cast<long long>(slot_digests[0]));
  const __m128i d23 = _mm_set_epi64x(static_cast<long long>(slot_digests[3 * stride_words]),
                                     static_cast<long long>(slot_digests[2 * stride_words]));
  const __m128i target = _mm_set1_epi64x(static_cast<long long>(digest));
  const __m128i zero = _mm_setzero_si128();
  Group4 g;
  g.match_mask = internal::Mask64x4(internal::CmpEq64(d01, target),
                                    internal::CmpEq64(d23, target));
  g.empty_mask = internal::Mask64x4(internal::CmpEq64(d01, zero),
                                    internal::CmpEq64(d23, zero));
  return g;
}

#endif  // TERTIO_SIMD_SSE2

#if defined(TERTIO_SIMD_NEON)

namespace internal {

/// Bits 0..3 from the 64-bit lane predicates of (lo, hi) (lanes are all-ones
/// or all-zero after vceqq_u64).
inline std::uint32_t Mask64x4(uint64x2_t lo, uint64x2_t hi) {
  return static_cast<std::uint32_t>(vgetq_lane_u64(lo, 0) & 1u) |
         static_cast<std::uint32_t>(vgetq_lane_u64(lo, 1) & 1u) << 1 |
         static_cast<std::uint32_t>(vgetq_lane_u64(hi, 0) & 1u) << 2 |
         static_cast<std::uint32_t>(vgetq_lane_u64(hi, 1) & 1u) << 3;
}

}  // namespace internal

inline Group4 CompareDigests4Neon(const std::uint64_t* slot_digests,
                                  std::size_t stride_words, std::uint64_t digest) {
  uint64x2_t d01 = vdupq_n_u64(slot_digests[0]);
  d01 = vsetq_lane_u64(slot_digests[stride_words], d01, 1);
  uint64x2_t d23 = vdupq_n_u64(slot_digests[2 * stride_words]);
  d23 = vsetq_lane_u64(slot_digests[3 * stride_words], d23, 1);
  const uint64x2_t target = vdupq_n_u64(digest);
  const uint64x2_t zero = vdupq_n_u64(0);
  Group4 g;
  g.match_mask = internal::Mask64x4(vceqq_u64(d01, target), vceqq_u64(d23, target));
  g.empty_mask = internal::Mask64x4(vceqq_u64(d01, zero), vceqq_u64(d23, zero));
  return g;
}

#endif  // TERTIO_SIMD_NEON

/// Group compare at the given dispatch level. Callers hoist ActiveLevel()
/// out of their loops; the switch then predicts perfectly.
inline Group4 CompareDigests4(Level level, const std::uint64_t* slot_digests,
                              std::size_t stride_words, std::uint64_t digest) {
  switch (level) {
#if defined(TERTIO_SIMD_SSE2)
    case Level::kSse2:
      return CompareDigests4Sse2(slot_digests, stride_words, digest);
#endif
#if defined(TERTIO_SIMD_NEON)
    case Level::kNeon:
      return CompareDigests4Neon(slot_digests, stride_words, digest);
#endif
    default:
      return CompareDigests4Scalar(slot_digests, stride_words, digest);
  }
}

}  // namespace tertio::join::simd
