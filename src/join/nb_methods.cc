/// \file nb_methods.cc
/// The Nested Block Join family: DT-NB (Section 5.1.1), CDT-NB/MB and
/// CDT-NB/DB (Section 5.1.3).
///
/// All three stage R on disk (Step I) and then iterate over S in memory-
/// sized chunks, scanning R from disk per chunk (Step II). They differ only
/// in how the S chunks are buffered:
///   DT-NB      — one memory buffer, strictly sequential;
///   CDT-NB/MB  — two half-size memory buffers, tape read of chunk i+1
///                overlaps the join of chunk i;
///   CDT-NB/DB  — one full-size chunk staged through an interleaved
///                double-buffered disk ring (Section 4), tape-to-disk
///                refill overlaps the join.
///
/// All scheduling runs on sim::Pipeline: every tape read, disk transfer and
/// join pass is a stage, and the overlap of the concurrent variants comes
/// from the declared dependencies (buffer-free stages, staging-done stage)
/// instead of hand-threaded completion times.

#include <algorithm>
#include <vector>

#include "join/join_common.h"
#include "join/join_method.h"
#include "mem/double_buffer.h"
#include "mem/pipeline_buffers.h"
#include "util/string_util.h"

namespace tertio::join {
namespace {

enum class NbMode { kSequential, kMemoryBuffered, kDiskBuffered };

/// Geometry shared by the NB methods: Mr blocks for scanning R, Ms per
/// S chunk.
struct NbGeometry {
  BlockCount mr = 0;
  BlockCount ms = 0;
  BlockCount memory_needed = 0;
  BlockCount disk_needed = 0;
};

Result<NbGeometry> PlanNb(NbMode mode, const JoinSpec& spec, const JoinContext& ctx) {
  BlockCount m = ctx.memory->total_blocks();
  auto mr = static_cast<BlockCount>(spec.options.nb_r_fraction * static_cast<double>(m.value()));
  if (mr == 0) mr = 1;
  if (m <= mr) {
    return Status::ResourceExhausted("memory too small for a nested-block join");
  }
  BlockCount ms_space = m - mr;
  NbGeometry g;
  g.mr = mr;
  g.ms = mode == NbMode::kMemoryBuffered ? ms_space / 2 : ms_space;
  if (g.ms == 0) {
    return Status::ResourceExhausted("memory too small to hold an S chunk");
  }
  g.memory_needed = mr + (mode == NbMode::kMemoryBuffered ? 2 * g.ms : g.ms);
  g.disk_needed = spec.r->blocks + (mode == NbMode::kDiskBuffered ? g.ms : 0);
  return g;
}

/// Joins one memory-resident S chunk against disk-resident R: builds a hash
/// table over the chunk and streams R through it in Mr-block requests.
/// \returns the stage completing the pass over R.
Result<sim::StageId> JoinChunkAgainstR(const JoinContext& ctx, const JoinSpec& spec,
                                       sim::Pipeline& pipe,
                                       const disk::ExtentList& r_extents, BlockCount mr,
                                       const std::vector<BlockPayload>& chunk, bool phantom,
                                       std::initializer_list<sim::StageId> deps,
                                       JoinOutput* output) {
  HashJoinTable table(&spec.s->schema, spec.s_key_column, /*build_is_r=*/false,
                      /*capture_records=*/output->has_sink());
  if (!phantom) {
    TERTIO_RETURN_IF_ERROR(table.AddBlocks(chunk));
  }
  return ScanDiskAndProbe(ctx, pipe, "r-scan", r_extents, mr, deps, phantom, &spec.r->schema,
                          spec.r_key_column, phantom ? nullptr : &table, output);
}

Result<JoinStats> ExecuteNb(NbMode mode, JoinMethodId id, const JoinSpec& spec,
                            const JoinContext& ctx) {
  TERTIO_RETURN_IF_ERROR(ValidateSpecAndContext(spec, ctx));
  TERTIO_ASSIGN_OR_RETURN(NbGeometry g, PlanNb(mode, spec, ctx));
  const rel::Relation& r = *spec.r;
  const rel::Relation& s = *spec.s;
  const bool phantom = r.phantom;
  if (ctx.disks->allocator().free_blocks() < g.disk_needed) {
    return Status::ResourceExhausted(
        StrFormat("%s needs %llu disk blocks, %llu free",
                  std::string(JoinMethodName(id)).c_str(),
                  static_cast<unsigned long long>(g.disk_needed.value()),
                  static_cast<unsigned long long>(ctx.disks->allocator().free_blocks().value())));
  }
  StatsScope scope(ctx);
  TERTIO_RETURN_IF_ERROR(ctx.memory->Reserve(g.mr, "nb/r-scan"));
  TERTIO_RETURN_IF_ERROR(
      ctx.memory->Reserve(g.memory_needed - g.mr, "nb/s-buffer"));

  JoinStats stats;
  stats.method = std::string(JoinMethodName(id));
  stats.spans.set_retain(ctx.retain_spans);
  sim::Pipeline pipe(scope.start(), &stats.spans, ctx.sim->auditor());

  // ---- Step I: copy R from tape to disk.
  TERTIO_ASSIGN_OR_RETURN(
      StagedRelation staged,
      StageRelationToDisk(ctx, pipe, ctx.drive_r, r, g.ms, mode != NbMode::kSequential,
                          "R-copy", {}));
  stats.step1_seconds = staged.done - scope.start();
  stats.peak_disk_blocks = ctx.disks->allocator().used_blocks();

  JoinOutput output;
  if (!phantom && spec.match_sink) output.set_sink(spec.match_sink);
  sim::StageId finish_stage = staged.done_stage;

  // ---- Step II: iterate over S.
  if (mode == NbMode::kSequential) {
    sim::StageId chain = staged.done_stage;
    for (BlockCount off = 0; off < s.blocks; off += g.ms) {
      BlockCount take = std::min<BlockCount>(g.ms, s.blocks - off);
      std::vector<BlockPayload> chunk;
      TERTIO_ASSIGN_OR_RETURN(
          sim::StageId read,
          ctx.drive_s->IssueRead(pipe, "s-read", {chain}, s.start_block + off, take,
                                 phantom ? nullptr : &chunk, ctx.chunk_retry_limit));
      TERTIO_ASSIGN_OR_RETURN(chain, JoinChunkAgainstR(ctx, spec, pipe, staged.extents, g.mr,
                                                       chunk, phantom, {read}, &output));
      stats.iterations += 1;
    }
    finish_stage = chain;
  } else if (mode == NbMode::kMemoryBuffered) {
    // Two half-size buffers: the tape read of chunk i waits only for the
    // join that drained buffer i%2, overlapping with the join of chunk i-1.
    mem::SplitBufferStages buffers;
    sim::StageId join_chain = staged.done_stage;
    std::uint64_t i = 0;
    for (BlockCount off = 0; off < s.blocks; off += g.ms, ++i) {
      BlockCount take = std::min<BlockCount>(g.ms, s.blocks - off);
      std::vector<BlockPayload> chunk;
      TERTIO_ASSIGN_OR_RETURN(
          sim::StageId read,
          ctx.drive_s->IssueRead(pipe, "s-read", {staged.done_stage, buffers.FreeStage(i)},
                                 s.start_block + off, take, phantom ? nullptr : &chunk,
                                 ctx.chunk_retry_limit));
      TERTIO_ASSIGN_OR_RETURN(
          join_chain, JoinChunkAgainstR(ctx, spec, pipe, staged.extents, g.mr, chunk, phantom,
                                        {read, join_chain}, &output));
      buffers.SetBusyUntil(i, join_chain);
      stats.iterations += 1;
    }
    finish_stage = join_chain;
  } else {  // kDiskBuffered
    // Interleaved double-buffered disk ring of Ms blocks (Section 4).
    TERTIO_ASSIGN_OR_RETURN(
        disk::ExtentList ring_extents,
        ctx.disks->allocator().Allocate(g.ms, staged.done, "S-ring"));
    stats.peak_disk_blocks = ctx.disks->allocator().used_blocks();
    mem::InterleavedBuffer ring(g.ms);
    BlockCount sub = std::max<BlockCount>(
        1, g.ms / static_cast<BlockCount>(std::max(1, spec.options.interleave_slices)));

    struct Piece {
      BlockCount ring_off = 0;
      BlockCount count = 0;
      sim::StageId write_stage = sim::kNoStage;
    };
    BlockCount ring_pos = 0;

    // Writes `count` blocks into the ring (splitting on wrap-around); both
    // halves depend only on the producing read.
    auto ring_write = [&](BlockCount count, sim::StageId read,
                          const std::vector<BlockPayload>* payloads) -> Result<Piece> {
      Piece piece{ring_pos, count, sim::kNoStage};
      BlockCount first = std::min<BlockCount>(count, g.ms - ring_pos);
      TERTIO_ASSIGN_OR_RETURN(disk::ExtentList slice,
                              SliceExtents(ring_extents, ring_pos, first));
      std::vector<BlockPayload> head, tail;
      const std::vector<BlockPayload>* head_ptr = nullptr;
      const std::vector<BlockPayload>* tail_ptr = nullptr;
      if (payloads != nullptr) {
        head.assign(payloads->begin(), payloads->begin() + static_cast<long>(first.value()));
        head_ptr = &head;
      }
      TERTIO_ASSIGN_OR_RETURN(sim::StageId w1,
                              ctx.disks->IssueWrite(pipe, "ring-write", {read}, slice, head_ptr));
      piece.write_stage = w1;
      if (first < count) {
        TERTIO_ASSIGN_OR_RETURN(disk::ExtentList wrap,
                                SliceExtents(ring_extents, 0, count - first));
        if (payloads != nullptr) {
          tail.assign(payloads->begin() + static_cast<long>(first.value()), payloads->end());
          tail_ptr = &tail;
        }
        TERTIO_ASSIGN_OR_RETURN(
            sim::StageId w2, ctx.disks->IssueWrite(pipe, "ring-write", {read}, wrap, tail_ptr));
        piece.write_stage = pipe.Barrier("ring-piece", {w1, w2});
      }
      ring_pos = (ring_pos + count) % g.ms;
      return piece;
    };

    // Reads a piece back; both halves of a wrapped piece start together.
    auto ring_read = [&](const Piece& piece, std::initializer_list<sim::StageId> deps,
                         std::vector<BlockPayload>* out) -> Result<sim::StageId> {
      BlockCount first = std::min<BlockCount>(piece.count, g.ms - piece.ring_off);
      TERTIO_ASSIGN_OR_RETURN(disk::ExtentList head_slice,
                              SliceExtents(ring_extents, piece.ring_off, first));
      TERTIO_ASSIGN_OR_RETURN(sim::StageId r1,
                              ctx.disks->IssueRead(pipe, "ring-read", deps, head_slice, out,
                                                   ctx.chunk_retry_limit));
      if (first < piece.count) {
        TERTIO_ASSIGN_OR_RETURN(disk::ExtentList wrap_slice,
                                SliceExtents(ring_extents, 0, piece.count - first));
        TERTIO_ASSIGN_OR_RETURN(sim::StageId r2,
                                ctx.disks->IssueRead(pipe, "ring-read", deps, wrap_slice, out,
                                                     ctx.chunk_retry_limit));
        return pipe.Barrier("ring-piece", {r1, r2});
      }
      return r1;
    };

    // Produces the sub-chunk at S offset `off` (`take` blocks): waits for
    // ring space (an event stage), reads tape, writes the ring.
    auto produce_piece = [&](BlockCount off, BlockCount take) -> Result<Piece> {
      TERTIO_ASSIGN_OR_RETURN(sim::StageId space,
                              mem::AcquireFreeStage(ring, pipe, "ring-space", take));
      std::vector<BlockPayload> payloads;
      TERTIO_ASSIGN_OR_RETURN(
          sim::StageId read,
          ctx.drive_s->IssueRead(pipe, "s-read", {space, staged.done_stage},
                                 s.start_block + off, take, phantom ? nullptr : &payloads,
                                 ctx.chunk_retry_limit));
      return ring_write(take, read, phantom ? nullptr : &payloads);
    };

    // Splits chunk [off, off+take) into sub-chunk descriptors.
    auto sub_offsets = [&](BlockCount off, BlockCount take) {
      std::vector<std::pair<BlockCount, BlockCount>> subs;
      for (BlockCount done = 0; done < take; done += sub) {
        subs.emplace_back(off + done, std::min<BlockCount>(sub, take - done));
      }
      return subs;
    };

    sim::StageId join_chain = staged.done_stage;
    BlockCount off = 0;
    BlockCount take = std::min<BlockCount>(g.ms, s.blocks);
    std::vector<Piece> current;
    for (auto [o, n] : sub_offsets(off, take)) {
      TERTIO_ASSIGN_OR_RETURN(Piece piece, produce_piece(o, n));
      current.push_back(piece);
    }

    while (take > 0) {
      BlockCount next_off = off + take;
      BlockCount next_take =
          next_off < s.blocks ? std::min<BlockCount>(g.ms, s.blocks - next_off) : 0;
      auto next_subs = sub_offsets(next_off, next_take);

      // Consume current chunk piece-by-piece, producing the next chunk into
      // the space each piece frees (the interleaving of Section 4).
      std::vector<BlockPayload> chunk;
      std::vector<Piece> next;
      size_t piece_count = std::max(current.size(), next_subs.size());
      sim::StageId t = join_chain;
      for (size_t j = 0; j < piece_count; ++j) {
        if (j < current.size()) {
          TERTIO_ASSIGN_OR_RETURN(
              t, ring_read(current[j], {t, current[j].write_stage},
                           phantom ? nullptr : &chunk));
          TERTIO_RETURN_IF_ERROR(ring.Release(current[j].count, pipe.end(t)));
        }
        if (j < next_subs.size()) {
          TERTIO_ASSIGN_OR_RETURN(Piece piece,
                                  produce_piece(next_subs[j].first, next_subs[j].second));
          next.push_back(piece);
        }
      }
      TERTIO_ASSIGN_OR_RETURN(join_chain,
                              JoinChunkAgainstR(ctx, spec, pipe, staged.extents, g.mr, chunk,
                                                phantom, {t}, &output));
      stats.iterations += 1;
      current = std::move(next);
      off = next_off;
      take = next_take;
    }
    finish_stage = join_chain;
    TERTIO_RETURN_IF_ERROR(
        ctx.disks->allocator().Free(ring_extents, pipe.end(finish_stage), "S-ring"));
  }

  SimSeconds finish = pipe.end(finish_stage);
  stats.step2_seconds = finish - staged.done;
  stats.r_scans = stats.iterations;
  stats.chunk_retries = pipe.chunk_retries();
  scope.Fill(&stats);
  stats.response_seconds = std::max(stats.response_seconds, finish - scope.start());
  stats.output_valid = !phantom;
  stats.output_tuples = output.tuples();
  stats.output_checksum = output.checksum();
  stats.peak_disk_blocks = std::max(stats.peak_disk_blocks, ctx.disks->allocator().used_blocks());

  // Restore scratch state.
  TERTIO_RETURN_IF_ERROR(ctx.disks->allocator().Free(staged.extents, finish, "R-copy"));
  TERTIO_RETURN_IF_ERROR(ctx.memory->ReleaseAll("nb/r-scan"));
  TERTIO_RETURN_IF_ERROR(ctx.memory->ReleaseAll("nb/s-buffer"));
  return stats;
}

class NbJoinMethod final : public JoinMethod {
 public:
  NbJoinMethod(JoinMethodId id, NbMode mode) : id_(id), mode_(mode) {}

  JoinMethodId id() const override { return id_; }

  Result<ResourceRequirements> Requirements(const JoinSpec& spec,
                                            const JoinContext& ctx) const override {
    TERTIO_ASSIGN_OR_RETURN(NbGeometry g, PlanNb(mode_, spec, ctx));
    ResourceRequirements req;
    req.memory_blocks = g.memory_needed;
    req.disk_blocks = g.disk_needed;
    return req;
  }

  Result<JoinStats> Execute(const JoinSpec& spec, const JoinContext& ctx) const override {
    return ExecuteNb(mode_, id_, spec, ctx);
  }

 private:
  JoinMethodId id_;
  NbMode mode_;
};

}  // namespace

std::unique_ptr<JoinMethod> MakeDtNb() {
  return std::make_unique<NbJoinMethod>(JoinMethodId::kDtNb, NbMode::kSequential);
}
std::unique_ptr<JoinMethod> MakeCdtNbMb() {
  return std::make_unique<NbJoinMethod>(JoinMethodId::kCdtNbMb, NbMode::kMemoryBuffered);
}
std::unique_ptr<JoinMethod> MakeCdtNbDb() {
  return std::make_unique<NbJoinMethod>(JoinMethodId::kCdtNbDb, NbMode::kDiskBuffered);
}

}  // namespace tertio::join
