#include "join/join_method.h"

namespace tertio::join {

// Defined in nb_methods.cc / gh_methods.cc / tt_methods.cc.
std::unique_ptr<JoinMethod> MakeDtNb();
std::unique_ptr<JoinMethod> MakeCdtNbMb();
std::unique_ptr<JoinMethod> MakeCdtNbDb();
std::unique_ptr<JoinMethod> MakeDtGh();
std::unique_ptr<JoinMethod> MakeCdtGh();
std::unique_ptr<JoinMethod> MakeCttGh();
std::unique_ptr<JoinMethod> MakeTtGh();

std::unique_ptr<JoinMethod> CreateJoinMethod(JoinMethodId id) {
  switch (id) {
    case JoinMethodId::kDtNb:
      return MakeDtNb();
    case JoinMethodId::kCdtNbMb:
      return MakeCdtNbMb();
    case JoinMethodId::kCdtNbDb:
      return MakeCdtNbDb();
    case JoinMethodId::kDtGh:
      return MakeDtGh();
    case JoinMethodId::kCdtGh:
      return MakeCdtGh();
    case JoinMethodId::kCttGh:
      return MakeCttGh();
    case JoinMethodId::kTtGh:
      return MakeTtGh();
  }
  return nullptr;
}

}  // namespace tertio::join
