#include "join/join_common.h"

#include <algorithm>

#include "relation/block.h"
#include "relation/tuple.h"
#include "util/string_util.h"

namespace tertio::join {

disk::ExtentList SliceExtents(const disk::ExtentList& extents, BlockCount offset,
                              BlockCount count) {
  disk::ExtentList out;
  BlockCount pos = 0;
  for (const disk::Extent& e : extents) {
    if (count == 0) break;
    BlockCount ext_end = pos + e.count;
    if (ext_end <= offset) {
      pos = ext_end;
      continue;
    }
    BlockCount skip = offset > pos ? offset - pos : 0;
    BlockCount avail = e.count - skip;
    BlockCount take = std::min<BlockCount>(avail, count);
    out.push_back(disk::Extent{e.disk, e.start + skip, take});
    count -= take;
    offset += take;
    pos = ext_end;
  }
  TERTIO_CHECK(count == 0, "extent slice out of range");
  return out;
}

Status HashJoinTable::AddBlocks(std::span<const BlockPayload> blocks) {
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, build_schema_));
    for (BlockCount i = 0; i < reader.record_count(); ++i) {
      rel::Tuple tuple(reader.record(i), build_schema_);
      Entry entry{HashBytes(tuple.bytes()), {}};
      if (capture_records_) {
        entry.bytes.assign(tuple.bytes().begin(), tuple.bytes().end());
      }
      entries_.emplace(tuple.GetInt64(build_key_), std::move(entry));
    }
  }
  return Status::OK();
}

Status HashJoinTable::Probe(std::span<const BlockPayload> blocks,
                            const rel::Schema* probe_schema, std::size_t probe_key_column,
                            JoinOutput* out) const {
  const bool pipeline = capture_records_ && out->has_sink();
  for (const BlockPayload& payload : blocks) {
    TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                            rel::BlockReader::Open(payload, probe_schema));
    for (BlockCount i = 0; i < reader.record_count(); ++i) {
      rel::Tuple tuple(reader.record(i), probe_schema);
      std::int64_t key = tuple.GetInt64(probe_key_column);
      std::uint64_t probe_digest = HashBytes(tuple.bytes());
      auto [begin, end] = entries_.equal_range(key);
      for (auto it = begin; it != end; ++it) {
        if (pipeline) {
          rel::Tuple build_tuple(it->second.bytes, build_schema_);
          const rel::Tuple& r = build_is_r_ ? build_tuple : tuple;
          const rel::Tuple& s = build_is_r_ ? tuple : build_tuple;
          TERTIO_RETURN_IF_ERROR(out->AddMatchWithRows(key, r, s));
        } else if (build_is_r_) {
          out->AddMatch(key, it->second.digest, probe_digest);
        } else {
          out->AddMatch(key, probe_digest, it->second.digest);
        }
      }
    }
  }
  return Status::OK();
}

Status ValidateSpecAndContext(const JoinSpec& spec, const JoinContext& ctx) {
  if (spec.r == nullptr || spec.s == nullptr) {
    return Status::InvalidArgument("join spec requires both relations");
  }
  if (ctx.sim == nullptr || ctx.drive_r == nullptr || ctx.drive_s == nullptr ||
      ctx.disks == nullptr || ctx.memory == nullptr) {
    return Status::InvalidArgument("join context is incomplete");
  }
  if (spec.r->blocks == 0 || spec.s->blocks == 0) {
    return Status::InvalidArgument("cannot join empty relations");
  }
  if (spec.r->blocks > spec.s->blocks) {
    return Status::InvalidArgument("R must be the smaller relation (swap the inputs)");
  }
  if (spec.r->phantom != spec.s->phantom) {
    return Status::InvalidArgument("relations must both be real or both be phantom");
  }
  if (ctx.drive_r->volume() != spec.r->volume) {
    return Status::FailedPrecondition("tape R is not mounted in drive R");
  }
  if (ctx.drive_s->volume() != spec.s->volume) {
    return Status::FailedPrecondition("tape S is not mounted in drive S");
  }
  if (spec.r->block_bytes != ctx.disks->block_bytes() ||
      spec.s->block_bytes != ctx.disks->block_bytes()) {
    return Status::InvalidArgument("relation and disk block sizes disagree");
  }
  return Status::OK();
}

StatsScope::StatsScope(const JoinContext& ctx)
    : ctx_(ctx),
      start_(ctx.sim->Horizon()),
      tape_r_before_(ctx.drive_r->stats()),
      tape_s_before_(ctx.drive_s->stats()),
      disk_before_(ctx.disks->TotalStats()) {}

void StatsScope::Fill(JoinStats* stats) const {
  const tape::TapeDriveStats& r = ctx_.drive_r->stats();
  const tape::TapeDriveStats& s = ctx_.drive_s->stats();
  disk::DiskStats d = ctx_.disks->TotalStats();
  stats->tape_blocks_read =
      (r.blocks_read - tape_r_before_.blocks_read) + (s.blocks_read - tape_s_before_.blocks_read);
  stats->tape_blocks_written = (r.blocks_written - tape_r_before_.blocks_written) +
                               (s.blocks_written - tape_s_before_.blocks_written);
  stats->disk_blocks_read = d.blocks_read - disk_before_.blocks_read;
  stats->disk_blocks_written = d.blocks_written - disk_before_.blocks_written;
  stats->disk_requests = d.requests - disk_before_.requests;
  stats->response_seconds = ctx_.sim->Horizon() - start_;
  stats->peak_memory_blocks = ctx_.memory->peak_reserved_blocks();
}

Result<StagedRelation> StageRelationToDisk(const JoinContext& ctx, tape::TapeDrive* drive,
                                           const rel::Relation& relation,
                                           BlockCount chunk_blocks, bool concurrent,
                                           const std::string& alloc_tag, SimSeconds start) {
  if (chunk_blocks == 0) chunk_blocks = 1;
  TERTIO_ASSIGN_OR_RETURN(disk::ExtentList extents,
                          ctx.disks->allocator().Allocate(relation.blocks, start, alloc_tag));
  StagedRelation staged;
  staged.extents = std::move(extents);

  SimSeconds cursor = start;          // sequential process cursor
  SimSeconds last_write_end = start;  // concurrent: writes trail reads
  BlockCount offset = 0;
  while (offset < relation.blocks) {
    BlockCount take = std::min<BlockCount>(chunk_blocks, relation.blocks - offset);
    std::vector<BlockPayload> payloads;
    std::vector<BlockPayload>* out = relation.phantom ? nullptr : &payloads;
    TERTIO_ASSIGN_OR_RETURN(
        sim::Interval read,
        drive->Read(relation.start_block + offset, take, cursor, out));
    disk::ExtentList slice = SliceExtents(staged.extents, offset, take);
    TERTIO_ASSIGN_OR_RETURN(sim::Interval write,
                            ctx.disks->WriteExtents(slice, read.end,
                                                    relation.phantom ? nullptr : &payloads));
    if (concurrent) {
      // Next tape read streams on; writes complete in their own time.
      cursor = read.end;
      last_write_end = std::max(last_write_end, write.end);
    } else {
      // Sequential: the single process waits for the write.
      cursor = write.end;
      last_write_end = write.end;
    }
    offset += take;
  }
  staged.done = std::max(cursor, last_write_end);
  return staged;
}

Result<SimSeconds> ScanDiskAndProbe(const JoinContext& ctx, const disk::ExtentList& extents,
                                    BlockCount chunk_blocks, SimSeconds ready, bool phantom,
                                    const rel::Schema* probe_schema, std::size_t probe_key,
                                    const HashJoinTable* table, JoinOutput* out) {
  if (chunk_blocks == 0) chunk_blocks = 1;
  BlockCount total = disk::TotalBlocks(extents);
  BlockCount offset = 0;
  SimSeconds cursor = ready;
  while (offset < total) {
    BlockCount take = std::min<BlockCount>(chunk_blocks, total - offset);
    disk::ExtentList slice = SliceExtents(extents, offset, take);
    std::vector<BlockPayload> payloads;
    TERTIO_ASSIGN_OR_RETURN(
        sim::Interval read,
        ctx.disks->ReadExtents(slice, cursor, phantom ? nullptr : &payloads));
    cursor = read.end;
    if (!phantom && table != nullptr) {
      TERTIO_RETURN_IF_ERROR(table->Probe(payloads, probe_schema, probe_key, out));
    }
    offset += take;
  }
  return cursor;
}

BlockCount DefaultTapeChunk(const rel::Relation& relation) {
  // Stream in ~1/64ths of the relation, clamped to a sensible request size.
  BlockCount chunk = relation.blocks / 64;
  if (chunk < 8) chunk = 8;
  if (chunk > 2048) chunk = 2048;
  if (chunk > relation.blocks) chunk = relation.blocks;
  return chunk;
}

}  // namespace tertio::join
