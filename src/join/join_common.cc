#include "join/join_common.h"

#include <algorithm>

#include "relation/block.h"
#include "relation/tuple.h"
#include "util/string_util.h"

namespace tertio::join {

Result<sim::Interval> ProbeSink::Write(BlockCount offset, BlockCount count, SimSeconds ready,
                                       std::vector<BlockPayload>* payloads) {
  (void)offset;
  (void)count;
  if (payloads != nullptr && table_ != nullptr) {
    TERTIO_RETURN_IF_ERROR(table_->Probe(*payloads, schema_, key_, out_));
  }
  return sim::Interval::At(ready);
}

Status ValidateSpecAndContext(const JoinSpec& spec, const JoinContext& ctx) {
  if (spec.r == nullptr || spec.s == nullptr) {
    return Status::InvalidArgument("join spec requires both relations");
  }
  if (ctx.sim == nullptr || ctx.drive_r == nullptr || ctx.drive_s == nullptr ||
      ctx.disks == nullptr || ctx.memory == nullptr) {
    return Status::InvalidArgument("join context is incomplete");
  }
  if (spec.r->blocks == 0 || spec.s->blocks == 0) {
    return Status::InvalidArgument("cannot join empty relations");
  }
  if (spec.r->blocks > spec.s->blocks) {
    return Status::InvalidArgument("R must be the smaller relation (swap the inputs)");
  }
  if (spec.r->phantom != spec.s->phantom) {
    return Status::InvalidArgument("relations must both be real or both be phantom");
  }
  if (ctx.drive_r->volume() != spec.r->volume) {
    return Status::FailedPrecondition("tape R is not mounted in drive R");
  }
  if (ctx.drive_s->volume() != spec.s->volume) {
    return Status::FailedPrecondition("tape S is not mounted in drive S");
  }
  if (spec.r->block_bytes != ctx.disks->block_bytes() ||
      spec.s->block_bytes != ctx.disks->block_bytes()) {
    return Status::InvalidArgument("relation and disk block sizes disagree");
  }
  return Status::OK();
}

sim::FaultStats ContextFaultStats(const JoinContext& ctx) {
  sim::FaultStats total;
  if (ctx.drive_r != nullptr && ctx.drive_r->fault_injector() != nullptr) {
    total.Add(ctx.drive_r->fault_injector()->stats());
  }
  if (ctx.drive_s != nullptr && ctx.drive_s->fault_injector() != nullptr &&
      ctx.drive_s != ctx.drive_r) {
    total.Add(ctx.drive_s->fault_injector()->stats());
  }
  if (ctx.disks != nullptr) total.Add(ctx.disks->TotalFaultStats());
  return total;
}

StatsScope::StatsScope(const JoinContext& ctx)
    : ctx_(ctx),
      start_(ctx.exact_anchor ? ctx.not_before
                              : std::max(ctx.sim->Horizon(), ctx.not_before)),
      tape_r_before_(ctx.drive_r->stats()),
      tape_s_before_(ctx.drive_s->stats()),
      disk_before_(ctx.disks->TotalStats()),
      mem_reserved_before_(ctx.memory->reserved_blocks()),
      robot_ops_before_(ctx.robot != nullptr ? ctx.robot->stats().op_count : 0),
      faults_before_(ContextFaultStats(ctx)) {
  if (ctx.exact_anchor) {
    resource_horizons_before_.reserve(ctx.sim->resources().size());
    for (const auto& r : ctx.sim->resources()) {
      resource_horizons_before_.push_back(r->stats().horizon);
    }
  }
}

void StatsScope::Fill(JoinStats* stats) const {
  // SimSan: a join just finished — cross-check the O(1) horizon cache
  // against a recomputation before reporting response time off it.
  ctx_.sim->AuditHorizon();
  const tape::TapeDriveStats& r = ctx_.drive_r->stats();
  const tape::TapeDriveStats& s = ctx_.drive_s->stats();
  disk::DiskStats d = ctx_.disks->TotalStats();
  stats->tape_blocks_read =
      (r.blocks_read - tape_r_before_.blocks_read) + (s.blocks_read - tape_s_before_.blocks_read);
  stats->tape_blocks_written = (r.blocks_written - tape_r_before_.blocks_written) +
                               (s.blocks_written - tape_s_before_.blocks_written);
  stats->tape_blocks_shared = (r.blocks_shared - tape_r_before_.blocks_shared) +
                              (s.blocks_shared - tape_s_before_.blocks_shared);
  stats->tape_blocks_cached = (r.blocks_cached - tape_r_before_.blocks_cached) +
                              (s.blocks_cached - tape_s_before_.blocks_cached);
  stats->disk_blocks_read = d.blocks_read - disk_before_.blocks_read;
  stats->disk_blocks_written = d.blocks_written - disk_before_.blocks_written;
  stats->disk_requests = d.requests - disk_before_.requests;
  if (ctx_.exact_anchor) {
    // Another session may be in flight on other devices (or queued later on
    // shared ones), so the global horizon is not this join's end. The join
    // ends at the latest horizon among the resources *it* advanced.
    SimSeconds join_end = start_;
    const auto& resources = ctx_.sim->resources();
    for (std::size_t i = 0; i < resources.size(); ++i) {
      SimSeconds after = resources[i]->stats().horizon;
      SimSeconds before =
          i < resource_horizons_before_.size() ? resource_horizons_before_[i] : 0.0;
      if (after > before && after > join_end) join_end = after;
    }
    stats->response_seconds = join_end - start_;
  } else {
    stats->response_seconds = ctx_.sim->Horizon() - start_;
  }
  stats->peak_memory_blocks = ctx_.memory->peak_reserved_blocks();
  BlockCount reserved = ctx_.memory->reserved_blocks();
  stats->memory_occupied_blocks =
      reserved > mem_reserved_before_ ? reserved - mem_reserved_before_ : 0;
  stats->robot_exchanges =
      ctx_.robot != nullptr ? ctx_.robot->stats().op_count - robot_ops_before_ : 0;
  sim::FaultStats faults = ContextFaultStats(ctx_);
  stats->faults_injected = faults.faults() - faults_before_.faults();
  stats->fault_retries = faults.retries - faults_before_.retries;
  stats->blocks_remapped = faults.bad_blocks_remapped - faults_before_.bad_blocks_remapped;
  stats->recovery_seconds = faults.recovery_seconds - faults_before_.recovery_seconds;
}

Result<StagedRelation> StageRelationToDisk(const JoinContext& ctx, sim::Pipeline& pipe,
                                           tape::TapeDrive* drive,
                                           const rel::Relation& relation,
                                           BlockCount chunk_blocks, bool concurrent,
                                           const std::string& alloc_tag,
                                           std::span<const sim::StageId> deps) {
  if (chunk_blocks == 0) chunk_blocks = 1;
  TERTIO_ASSIGN_OR_RETURN(disk::ExtentList extents,
                          ctx.disks->allocator().Allocate(relation.blocks, pipe.ReadyAfter(deps),
                                                          alloc_tag));
  StagedRelation staged;
  staged.extents = std::move(extents);

  tape::TapeReadSource source(drive, relation.start_block);
  disk::ExtentWriteSink sink(ctx.disks, &staged.extents);
  sim::Pipeline::TransferPlan plan;
  plan.read_phase = "stage:tape-read";
  plan.write_phase = "stage:disk-write";
  plan.total = relation.blocks;
  plan.chunk = chunk_blocks;
  plan.streaming = concurrent;
  plan.move_payloads = !relation.phantom;
  plan.chunk_retry_limit = ctx.chunk_retry_limit;
  plan.allow_coalescing = ctx.coalesce_transfers;
  plan.closed_form_commit = ctx.closed_form_commit;
  TERTIO_ASSIGN_OR_RETURN(sim::Pipeline::TransferResult result,
                          pipe.Transfer(plan, source, sink, deps));
  staged.done_stage = pipe.Event("stage:done", result.done);
  staged.done = pipe.end(staged.done_stage);
  return staged;
}

Result<sim::StageId> ScanDiskAndProbe(const JoinContext& ctx, sim::Pipeline& pipe,
                                      std::string_view phase, const disk::ExtentList& extents,
                                      BlockCount chunk_blocks,
                                      std::span<const sim::StageId> deps, bool phantom,
                                      const rel::Schema* probe_schema, std::size_t probe_key,
                                      const HashJoinTable* table, JoinOutput* out) {
  if (chunk_blocks == 0) chunk_blocks = 1;
  disk::ExtentReadSource source(ctx.disks, &extents);
  ProbeSink sink(table, probe_schema, probe_key, out);
  sim::Pipeline::TransferPlan plan;
  plan.read_phase = phase;
  plan.write_phase = "probe";
  plan.total = disk::TotalBlocks(extents);
  plan.chunk = chunk_blocks;
  plan.streaming = true;  // reads chain read-to-read; probing is free
  plan.move_payloads = !phantom;
  plan.chunk_retry_limit = ctx.chunk_retry_limit;
  plan.allow_coalescing = ctx.coalesce_transfers;
  plan.closed_form_commit = ctx.closed_form_commit;
  TERTIO_ASSIGN_OR_RETURN(sim::Pipeline::TransferResult result,
                          pipe.Transfer(plan, source, sink, deps));
  if (result.last_read == sim::kNoStage) return pipe.Barrier(phase, deps);
  return result.last_read;
}

BlockCount DefaultTapeChunk(const rel::Relation& relation) {
  // Stream in ~1/64ths of the relation, clamped to a sensible request size.
  BlockCount chunk = relation.blocks / 64;
  if (chunk < 8) chunk = 8;
  if (chunk > 2048) chunk = 2048;
  if (chunk > relation.blocks) chunk = relation.blocks;
  return chunk;
}

}  // namespace tertio::join
