#pragma once

/// \file legacy_table.h
/// The seed's std::unordered_multimap join table, kept verbatim as a
/// compile-time reference implementation.
///
/// Production code uses FlatJoinTable (flat_table.h). This header exists so
/// that (a) tests/join_correctness_test.cc can assert the two substrates
/// compute identical match sets over generated workloads and (b)
/// bench_micro_substrates can report the flat table's build/probe speedup
/// against the node-per-entry baseline it replaced. Do not use it in
/// executors.

#include <cstdint>
#include <span>
// tertio-lint: allow(unordered-map) — this IS the multimap baseline.
#include <unordered_map>
#include <vector>

#include "join/join_output.h"
#include "relation/block.h"
#include "relation/schema.h"
#include "relation/tuple.h"
#include "util/block_payload.h"
#include "util/status.h"

namespace tertio::join {

/// The pre-flat-table implementation: one multimap node plus (when records
/// are captured) one heap-allocated byte vector per build tuple.
class LegacyMultimapJoinTable {
 public:
  LegacyMultimapJoinTable(const rel::Schema* build_schema, std::size_t build_key_column,
                          bool build_is_r, bool capture_records = false)
      : build_schema_(build_schema),
        build_key_(build_key_column),
        build_is_r_(build_is_r),
        capture_records_(capture_records) {}

  Status AddBlocks(std::span<const BlockPayload> blocks) {
    for (const BlockPayload& payload : blocks) {
      TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                              rel::BlockReader::Open(payload, build_schema_));
      for (std::uint64_t i = 0; i < reader.record_count(); ++i) {
        rel::Tuple tuple(reader.record(i), build_schema_);
        Entry entry{HashBytes(tuple.bytes()), {}};
        if (capture_records_) {
          entry.bytes.assign(tuple.bytes().begin(), tuple.bytes().end());
        }
        entries_.emplace(tuple.GetInt64(build_key_), std::move(entry));
      }
    }
    return Status::OK();
  }

  Status Probe(std::span<const BlockPayload> blocks, const rel::Schema* probe_schema,
               std::size_t probe_key_column, JoinOutput* out) const {
    const bool pipeline = capture_records_ && out->has_sink();
    for (const BlockPayload& payload : blocks) {
      TERTIO_ASSIGN_OR_RETURN(rel::BlockReader reader,
                              rel::BlockReader::Open(payload, probe_schema));
      for (std::uint64_t i = 0; i < reader.record_count(); ++i) {
        rel::Tuple tuple(reader.record(i), probe_schema);
        std::int64_t key = tuple.GetInt64(probe_key_column);
        std::uint64_t probe_digest = HashBytes(tuple.bytes());
        auto [begin, end] = entries_.equal_range(key);
        for (auto it = begin; it != end; ++it) {
          if (pipeline) {
            rel::Tuple build_tuple(it->second.bytes, build_schema_);
            const rel::Tuple& r = build_is_r_ ? build_tuple : tuple;
            const rel::Tuple& s = build_is_r_ ? tuple : build_tuple;
            TERTIO_RETURN_IF_ERROR(out->AddMatchWithRows(key, r, s));
          } else if (build_is_r_) {
            out->AddMatch(key, it->second.digest, probe_digest);
          } else {
            out->AddMatch(key, probe_digest, it->second.digest);
          }
        }
      }
    }
    return Status::OK();
  }

  std::uint64_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

 private:
  struct Entry {
    std::uint64_t digest;
    std::vector<std::uint8_t> bytes;  // filled only when capture_records_
  };

  const rel::Schema* build_schema_;
  std::size_t build_key_;
  bool build_is_r_;
  bool capture_records_;
  // tertio-lint: allow(unordered-map) — the baseline under comparison.
  std::unordered_multimap<std::int64_t, Entry> entries_;
};

}  // namespace tertio::join
