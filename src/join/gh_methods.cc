/// \file gh_methods.cc
/// The disk–tape Grace Hash Join pair: DT-GH (Section 5.1.2) and CDT-GH
/// (Section 5.1.4).
///
/// Step I partitions R from tape into B hash buckets on disk. Step II reads
/// S from tape in slabs of d = D - |R| blocks, partitions each slab into S
/// buckets on disk, and joins every (R-bucket, S-bucket) pair: the R bucket
/// is read into memory as the build side, the S bucket streams through it.
/// CDT-GH overlaps the tape read + hashing of slab i+1 with the join of slab
/// i, double-buffering the S-bucket disk space through one shared
/// interleaved buffer (Section 4).
///
/// Both steps are declared sim::Pipeline transfers: the sequential variant's
/// "tape waits for the hash writes" is the lock-step dependency shape, the
/// concurrent variant's overlap is the streaming shape, and bucket readiness
/// enters the stage graph as events.

#include <algorithm>
#include <vector>

#include "hash/bucket_layout.h"
#include "hash/disk_partitioner.h"
#include "join/join_common.h"
#include "join/join_method.h"
#include "mem/double_buffer.h"
#include "util/string_util.h"

namespace tertio::join {
namespace {

/// Joins one R bucket (build) against one S bucket (probe), both disk-
/// resident. Handles bucket overflow: if the R bucket exceeds the memory
/// allowance, it is processed in memory-sized slices, re-scanning the S
/// bucket per slice (the paper assumes uniform hashing and never overflows;
/// tertio degrades gracefully on skew instead). \returns the stage
/// completing the pair.
Result<sim::StageId> JoinBucketPair(const JoinContext& ctx, const JoinSpec& spec,
                                    sim::Pipeline& pipe, const hash::DiskBucket& r_bucket,
                                    const hash::DiskBucket& s_bucket,
                                    BlockCount r_memory_allowance, BlockCount probe_chunk,
                                    bool phantom, sim::StageId ready, JoinOutput* output,
                                    std::uint64_t* overflow_slices) {
  if (r_bucket.blocks == 0 || s_bucket.blocks == 0) {
    // Still pay for reading whichever side exists (its tuples match nothing).
    sim::StageId t = ready;
    if (r_bucket.blocks > 0) {
      TERTIO_ASSIGN_OR_RETURN(
          t, ctx.disks->IssueRead(pipe, "r-bucket-read", {t}, r_bucket.extents, nullptr,
                                  ctx.chunk_retry_limit));
    }
    if (s_bucket.blocks > 0) {
      TERTIO_ASSIGN_OR_RETURN(
          t, ScanDiskAndProbe(ctx, pipe, "s-bucket-scan", s_bucket.extents, probe_chunk, {t},
                              phantom, &spec.s->schema, spec.s_key_column, nullptr, output));
    }
    return t;
  }

  sim::StageId t = ready;
  BlockCount offset = 0;
  std::uint64_t slices = 0;
  while (offset < r_bucket.blocks) {
    BlockCount take = std::min<BlockCount>(r_memory_allowance, r_bucket.blocks - offset);
    TERTIO_ASSIGN_OR_RETURN(disk::ExtentList slice,
                            SliceExtents(r_bucket.extents, offset, take));
    std::vector<BlockPayload> r_blocks;
    TERTIO_ASSIGN_OR_RETURN(
        sim::StageId read,
        ctx.disks->IssueRead(pipe, "r-bucket-read",
                             {t, pipe.Event("r-bucket-ready", r_bucket.ready)}, slice,
                             phantom ? nullptr : &r_blocks, ctx.chunk_retry_limit));
    t = read;
    HashJoinTable table(&spec.r->schema, spec.r_key_column, /*build_is_r=*/true,
                        /*capture_records=*/output->has_sink());
    if (!phantom) {
      TERTIO_RETURN_IF_ERROR(table.AddBlocks(r_blocks));
    }
    TERTIO_ASSIGN_OR_RETURN(
        t, ScanDiskAndProbe(ctx, pipe, "s-bucket-scan", s_bucket.extents, probe_chunk,
                            {t, pipe.Event("s-bucket-ready", s_bucket.ready)}, phantom,
                            &spec.s->schema, spec.s_key_column, phantom ? nullptr : &table,
                            output));
    offset += take;
    ++slices;
  }
  if (slices > 1 && overflow_slices != nullptr) *overflow_slices += slices - 1;
  return t;
}

/// Step I shared by DT-GH / CDT-GH: partition R from tape into disk buckets.
/// Sequential mode makes the tape wait for each flush (lock-step transfer);
/// concurrent mode streams the tape and lets the disk writes trail.
/// \returns the stage completing the partitioning (trailing flush included).
Result<sim::StageId> PartitionRToDisk(const JoinContext& ctx, const JoinSpec& spec,
                                      sim::Pipeline& pipe, bool concurrent,
                                      hash::DiskPartitioner* partitioner) {
  const rel::Relation& r = *spec.r;
  const bool phantom = r.phantom;
  std::uint64_t tuples_per_block =
      r.blocks > 0 ? (r.tuple_count + r.blocks - 1) / r.blocks : 0;
  tape::TapeReadSource source(ctx.drive_r, r.start_block);
  hash::PartitionerSink sink(partitioner, tuples_per_block, r.tuple_count);
  sim::Pipeline::TransferPlan plan;
  plan.read_phase = "r-hash-read";
  plan.write_phase = "r-hash-write";
  plan.total = r.blocks;
  plan.chunk = DefaultTapeChunk(r);
  plan.streaming = concurrent;
  plan.move_payloads = !phantom;
  plan.chunk_retry_limit = ctx.chunk_retry_limit;
  plan.allow_coalescing = ctx.coalesce_transfers;
  plan.closed_form_commit = ctx.closed_form_commit;
  TERTIO_ASSIGN_OR_RETURN(sim::Pipeline::TransferResult result,
                          pipe.Transfer(plan, source, sink, {}));
  return sink.IssueFlush(pipe, "r-hash-flush",
                         {concurrent ? result.last_read : result.last_write});
}

enum class GhMode { kSequential, kConcurrent };

Result<hash::BucketLayout> PlanGh(const JoinSpec& spec, const JoinContext& ctx) {
  // Real hashing makes bucket sizes fluctuate around |R|/B; plan with a 25%
  // margin so the in-memory bucket allowance absorbs the variance instead of
  // falling back to overflow slices (which re-scan the S bucket).
  BlockCount planned = spec.r->phantom ? spec.r->blocks
                                       : spec.r->blocks + spec.r->blocks / 4 + 1;
  return hash::BucketLayout::Plan(planned, ctx.memory->total_blocks(),
                                  spec.options.preferred_write_buffer);
}

Result<JoinStats> ExecuteGh(GhMode mode, JoinMethodId id, const JoinSpec& spec,
                            const JoinContext& ctx) {
  TERTIO_RETURN_IF_ERROR(ValidateSpecAndContext(spec, ctx));
  TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout, PlanGh(spec, ctx));
  const rel::Relation& r = *spec.r;
  const rel::Relation& s = *spec.s;
  const bool phantom = r.phantom;
  const bool concurrent = mode == GhMode::kConcurrent;

  BlockCount disk_free = ctx.disks->allocator().free_blocks();
  if (disk_free <= r.blocks) {
    return Status::ResourceExhausted(
        StrFormat("%s needs disk space beyond |R| (=%llu blocks) to buffer S; only %llu free",
                  std::string(JoinMethodName(id)).c_str(),
                  static_cast<unsigned long long>(r.blocks.value()),
                  static_cast<unsigned long long>(disk_free.value())));
  }
  // Real tuples re-encode into fresh blocks; partitioned R can exceed |R| by
  // one partial block per bucket, and each S slab needs the same slack.
  if (!phantom && disk_free <= r.blocks + 2 * static_cast<BlockCount>(layout.bucket_count)) {
    return Status::ResourceExhausted(
        "full-data mode needs |R| plus two blocks per bucket of disk space");
  }
  StatsScope scope(ctx);
  TERTIO_RETURN_IF_ERROR(ctx.memory->Reserve(layout.memory_blocks, "gh/memory"));

  JoinStats stats;
  stats.method = std::string(JoinMethodName(id));
  stats.spans.set_retain(ctx.retain_spans);
  sim::Pipeline pipe(scope.start(), &stats.spans, ctx.sim->auditor());

  // ---- Step I: hash R from tape into disk buckets.
  hash::DiskPartitioner::Options r_options;
  r_options.schema = phantom ? nullptr : &r.schema;
  r_options.key_column = spec.r_key_column;
  r_options.bucket_count = layout.bucket_count;
  r_options.write_buffer_blocks = layout.write_buffer_blocks;
  r_options.alloc_tag = "R-buckets";
  hash::DiskPartitioner r_partitioner(ctx.disks, r_options);
  TERTIO_ASSIGN_OR_RETURN(sim::StageId step1_stage,
                          PartitionRToDisk(ctx, spec, pipe, concurrent, &r_partitioner));
  SimSeconds step1_end = pipe.end(step1_stage);
  stats.step1_seconds = step1_end - scope.start();
  stats.peak_disk_blocks = ctx.disks->allocator().used_blocks();

  // ---- Step II: slabs of S. The S buffer d is whatever disk space the
  // partitioned R left free (the paper's d = D - |R|).
  BlockCount d = ctx.disks->allocator().free_blocks();
  BlockCount slab = d;
  if (!phantom) {
    TERTIO_CHECK(d > layout.bucket_count, "disk margin check failed");
    slab = d - layout.bucket_count;
  }
  JoinOutput output;
  if (!phantom && spec.match_sink) output.set_sink(spec.match_sink);
  std::uint64_t overflow_slices = 0;
  mem::InterleavedBuffer space(d);
  sim::StageId tape_chain = step1_stage;
  sim::StageId join_chain = step1_stage;
  BlockCount s_chunk = std::min<BlockCount>(DefaultTapeChunk(s), slab);
  std::uint64_t s_tuples_per_block = s.blocks > 0 ? (s.tuple_count + s.blocks - 1) / s.blocks : 0;

  for (BlockCount off = 0; off < s.blocks; off += slab) {
    BlockCount take_slab = std::min<BlockCount>(slab, s.blocks - off);
    hash::DiskPartitioner::Options s_options;
    s_options.schema = phantom ? nullptr : &s.schema;
    s_options.key_column = spec.s_key_column;
    s_options.bucket_count = layout.bucket_count;
    s_options.write_buffer_blocks = layout.write_buffer_blocks;
    s_options.alloc_tag = stats.iterations % 2 == 0 ? "S-iter-even" : "S-iter-odd";
    s_options.space = &space;
    hash::DiskPartitioner s_partitioner(ctx.disks, s_options);

    // Hash process: stream this slab from tape S into disk buckets.
    tape::TapeReadSource s_source(ctx.drive_s, s.start_block + off);
    hash::PartitionerSink s_sink(&s_partitioner, s_tuples_per_block);
    sim::Pipeline::TransferPlan plan;
    plan.read_phase = "s-hash-read";
    plan.write_phase = "s-hash-write";
    plan.total = take_slab;
    plan.chunk = s_chunk;
    plan.streaming = concurrent;
    plan.move_payloads = !phantom;
    plan.chunk_retry_limit = ctx.chunk_retry_limit;
    plan.allow_coalescing = ctx.coalesce_transfers;
    plan.closed_form_commit = ctx.closed_form_commit;
    TERTIO_ASSIGN_OR_RETURN(sim::Pipeline::TransferResult slab_result,
                            pipe.Transfer(plan, s_source, s_sink, {tape_chain}));
    tape_chain = concurrent ? slab_result.last_read : slab_result.last_write;
    TERTIO_ASSIGN_OR_RETURN(sim::StageId flush,
                            s_sink.IssueFlush(pipe, "s-hash-flush", {tape_chain}));
    if (!concurrent) {
      tape_chain = flush;
      join_chain = pipe.Barrier("slab-hashed", {join_chain, tape_chain});
    }

    // Join process: every bucket pair of this slab.
    for (std::uint32_t b = 0; b < layout.bucket_count; ++b) {
      const hash::DiskBucket& rb = r_partitioner.buckets()[b];
      hash::DiskBucket& sb = s_partitioner.buckets()[b];
      TERTIO_ASSIGN_OR_RETURN(
          join_chain,
          JoinBucketPair(ctx, spec, pipe, rb, sb, layout.r_bucket_blocks,
                         layout.write_buffer_blocks, phantom, join_chain, &output,
                         &overflow_slices));
      if (sb.blocks > 0) {
        TERTIO_RETURN_IF_ERROR(
            ctx.disks->allocator().Free(sb.extents, pipe.end(join_chain), s_options.alloc_tag));
        TERTIO_RETURN_IF_ERROR(space.Release(sb.blocks, pipe.end(join_chain)));
        sb.extents.clear();
      }
    }
    if (!concurrent) tape_chain = pipe.Barrier("slab-joined", {tape_chain, join_chain});
    stats.iterations += 1;
  }

  SimSeconds finish = std::max(pipe.end(join_chain), pipe.end(tape_chain));
  stats.step2_seconds = finish - step1_end;
  stats.bucket_overflow_slices = overflow_slices;
  stats.r_scans = stats.iterations;  // R's buckets are re-read per slab
  stats.chunk_retries = pipe.chunk_retries();
  scope.Fill(&stats);
  stats.response_seconds = std::max(stats.response_seconds, finish - scope.start());
  stats.output_valid = !phantom;
  stats.output_tuples = output.tuples();
  stats.output_checksum = output.checksum();
  stats.peak_disk_blocks =
      std::max(stats.peak_disk_blocks, ctx.disks->allocator().used_blocks());

  // Restore scratch state.
  for (hash::DiskBucket& rb : r_partitioner.buckets()) {
    if (!rb.extents.empty()) {
      TERTIO_RETURN_IF_ERROR(ctx.disks->allocator().Free(rb.extents, finish, "R-buckets"));
    }
  }
  TERTIO_RETURN_IF_ERROR(ctx.memory->ReleaseAll("gh/memory"));
  return stats;
}

class GhJoinMethod final : public JoinMethod {
 public:
  GhJoinMethod(JoinMethodId id, GhMode mode) : id_(id), mode_(mode) {}

  JoinMethodId id() const override { return id_; }

  Result<ResourceRequirements> Requirements(const JoinSpec& spec,
                                            const JoinContext& ctx) const override {
    TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout, PlanGh(spec, ctx));
    ResourceRequirements req;
    req.memory_blocks = layout.memory_blocks;
    req.disk_blocks = spec.r->blocks +
                      (spec.r->phantom ? 1 : layout.bucket_count + 1);
    return req;
  }

  Result<JoinStats> Execute(const JoinSpec& spec, const JoinContext& ctx) const override {
    return ExecuteGh(mode_, id_, spec, ctx);
  }

 private:
  JoinMethodId id_;
  GhMode mode_;
};

}  // namespace

std::unique_ptr<JoinMethod> MakeDtGh() {
  return std::make_unique<GhJoinMethod>(JoinMethodId::kDtGh, GhMode::kSequential);
}
std::unique_ptr<JoinMethod> MakeCdtGh() {
  return std::make_unique<GhJoinMethod>(JoinMethodId::kCdtGh, GhMode::kConcurrent);
}

}  // namespace tertio::join
