/// \file gh_methods.cc
/// The disk–tape Grace Hash Join pair: DT-GH (Section 5.1.2) and CDT-GH
/// (Section 5.1.4).
///
/// Step I partitions R from tape into B hash buckets on disk. Step II reads
/// S from tape in slabs of d = D - |R| blocks, partitions each slab into S
/// buckets on disk, and joins every (R-bucket, S-bucket) pair: the R bucket
/// is read into memory as the build side, the S bucket streams through it.
/// CDT-GH overlaps the tape read + hashing of slab i+1 with the join of slab
/// i, double-buffering the S-bucket disk space through one shared
/// interleaved buffer (Section 4).

#include <algorithm>
#include <vector>

#include "hash/bucket_layout.h"
#include "hash/disk_partitioner.h"
#include "join/join_common.h"
#include "join/join_method.h"
#include "mem/double_buffer.h"
#include "util/string_util.h"

namespace tertio::join {
namespace {

/// Joins one R bucket (build) against one S bucket (probe), both disk-
/// resident. Handles bucket overflow: if the R bucket exceeds the memory
/// allowance, it is processed in memory-sized slices, re-scanning the S
/// bucket per slice (the paper assumes uniform hashing and never overflows;
/// tertio degrades gracefully on skew instead).
Result<SimSeconds> JoinBucketPair(const JoinContext& ctx, const JoinSpec& spec,
                                  const hash::DiskBucket& r_bucket,
                                  const hash::DiskBucket& s_bucket,
                                  BlockCount r_memory_allowance, BlockCount probe_chunk,
                                  bool phantom, SimSeconds ready, JoinOutput* output,
                                  std::uint64_t* overflow_slices) {
  if (r_bucket.blocks == 0 || s_bucket.blocks == 0) {
    // Still pay for reading whichever side exists (its tuples match nothing).
    SimSeconds t = ready;
    if (r_bucket.blocks > 0) {
      TERTIO_ASSIGN_OR_RETURN(sim::Interval read,
                              ctx.disks->ReadExtents(r_bucket.extents, t, nullptr));
      t = read.end;
    }
    if (s_bucket.blocks > 0) {
      TERTIO_ASSIGN_OR_RETURN(
          t, ScanDiskAndProbe(ctx, s_bucket.extents, probe_chunk, t, phantom, &spec.s->schema,
                              spec.s_key_column, nullptr, output));
    }
    return t;
  }

  SimSeconds t = ready;
  BlockCount offset = 0;
  std::uint64_t slices = 0;
  while (offset < r_bucket.blocks) {
    BlockCount take = std::min<BlockCount>(r_memory_allowance, r_bucket.blocks - offset);
    disk::ExtentList slice = SliceExtents(r_bucket.extents, offset, take);
    std::vector<BlockPayload> r_blocks;
    TERTIO_ASSIGN_OR_RETURN(sim::Interval read,
                            ctx.disks->ReadExtents(slice, std::max(t, r_bucket.ready),
                                                   phantom ? nullptr : &r_blocks));
    t = read.end;
    HashJoinTable table(&spec.r->schema, spec.r_key_column, /*build_is_r=*/true,
                        /*capture_records=*/output->has_sink());
    if (!phantom) {
      TERTIO_RETURN_IF_ERROR(table.AddBlocks(r_blocks));
    }
    TERTIO_ASSIGN_OR_RETURN(
        t, ScanDiskAndProbe(ctx, s_bucket.extents, probe_chunk,
                            std::max(t, s_bucket.ready), phantom, &spec.s->schema,
                            spec.s_key_column, phantom ? nullptr : &table, output));
    offset += take;
    ++slices;
  }
  if (slices > 1 && overflow_slices != nullptr) *overflow_slices += slices - 1;
  return t;
}

/// Step I shared by DT-GH / CDT-GH: partition R from tape into disk buckets.
/// Sequential mode makes the tape wait for each flush; concurrent mode
/// streams the tape and lets the disk writes trail.
Result<SimSeconds> PartitionRToDisk(const JoinContext& ctx, const JoinSpec& spec,
                                    const hash::BucketLayout& layout, bool concurrent,
                                    SimSeconds start, hash::DiskPartitioner* partitioner) {
  const rel::Relation& r = *spec.r;
  const bool phantom = r.phantom;
  BlockCount chunk = DefaultTapeChunk(r);
  std::uint64_t tuples_per_block =
      r.blocks > 0 ? (r.tuple_count + r.blocks - 1) / r.blocks : 0;
  SimSeconds t = start;
  for (BlockCount off = 0; off < r.blocks; off += chunk) {
    BlockCount take = std::min<BlockCount>(chunk, r.blocks - off);
    std::vector<BlockPayload> payloads;
    TERTIO_ASSIGN_OR_RETURN(
        sim::Interval read,
        ctx.drive_r->Read(r.start_block + off, take, t, phantom ? nullptr : &payloads));
    if (phantom) {
      std::uint64_t tuples = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(take) * tuples_per_block,
          r.tuple_count);
      TERTIO_RETURN_IF_ERROR(partitioner->AddPhantomBlocks(take, tuples, read.end));
    } else {
      TERTIO_RETURN_IF_ERROR(partitioner->AddBlocks(payloads, read.end));
    }
    t = concurrent ? read.end : std::max(read.end, partitioner->last_write_end());
  }
  TERTIO_RETURN_IF_ERROR(partitioner->Flush());
  (void)layout;
  return std::max(t, partitioner->last_write_end());
}

enum class GhMode { kSequential, kConcurrent };

Result<hash::BucketLayout> PlanGh(const JoinSpec& spec, const JoinContext& ctx) {
  // Real hashing makes bucket sizes fluctuate around |R|/B; plan with a 25%
  // margin so the in-memory bucket allowance absorbs the variance instead of
  // falling back to overflow slices (which re-scan the S bucket).
  BlockCount planned = spec.r->phantom ? spec.r->blocks
                                       : spec.r->blocks + spec.r->blocks / 4 + 1;
  return hash::BucketLayout::Plan(planned, ctx.memory->total_blocks(),
                                  spec.options.preferred_write_buffer);
}

Result<JoinStats> ExecuteGh(GhMode mode, JoinMethodId id, const JoinSpec& spec,
                            const JoinContext& ctx) {
  TERTIO_RETURN_IF_ERROR(ValidateSpecAndContext(spec, ctx));
  TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout, PlanGh(spec, ctx));
  const rel::Relation& r = *spec.r;
  const rel::Relation& s = *spec.s;
  const bool phantom = r.phantom;
  const bool concurrent = mode == GhMode::kConcurrent;

  BlockCount disk_free = ctx.disks->allocator().free_blocks();
  if (disk_free <= r.blocks) {
    return Status::ResourceExhausted(
        StrFormat("%s needs disk space beyond |R| (=%llu blocks) to buffer S; only %llu free",
                  std::string(JoinMethodName(id)).c_str(),
                  static_cast<unsigned long long>(r.blocks),
                  static_cast<unsigned long long>(disk_free)));
  }
  // Real tuples re-encode into fresh blocks; partitioned R can exceed |R| by
  // one partial block per bucket, and each S slab needs the same slack.
  if (!phantom && disk_free <= r.blocks + 2 * static_cast<BlockCount>(layout.bucket_count)) {
    return Status::ResourceExhausted(
        "full-data mode needs |R| plus two blocks per bucket of disk space");
  }
  TERTIO_RETURN_IF_ERROR(ctx.memory->Reserve(layout.memory_blocks, "gh/memory"));

  StatsScope scope(ctx);
  JoinStats stats;
  stats.method = std::string(JoinMethodName(id));

  // ---- Step I: hash R from tape into disk buckets.
  hash::DiskPartitioner::Options r_options;
  r_options.schema = phantom ? nullptr : &r.schema;
  r_options.key_column = spec.r_key_column;
  r_options.bucket_count = layout.bucket_count;
  r_options.write_buffer_blocks = layout.write_buffer_blocks;
  r_options.alloc_tag = "R-buckets";
  hash::DiskPartitioner r_partitioner(ctx.disks, r_options);
  TERTIO_ASSIGN_OR_RETURN(
      SimSeconds step1_end,
      PartitionRToDisk(ctx, spec, layout, concurrent, scope.start(), &r_partitioner));
  stats.step1_seconds = step1_end - scope.start();
  stats.peak_disk_blocks = ctx.disks->allocator().used_blocks();

  // ---- Step II: slabs of S. The S buffer d is whatever disk space the
  // partitioned R left free (the paper's d = D - |R|).
  BlockCount d = ctx.disks->allocator().free_blocks();
  BlockCount slab = d;
  if (!phantom) {
    TERTIO_CHECK(d > layout.bucket_count, "disk margin check failed");
    slab = d - layout.bucket_count;
  }
  JoinOutput output;
  if (!phantom && spec.match_sink) output.set_sink(spec.match_sink);
  std::uint64_t overflow_slices = 0;
  mem::InterleavedBuffer space(d);
  SimSeconds tape_cursor = step1_end;
  SimSeconds join_cursor = step1_end;
  BlockCount s_chunk = std::min<BlockCount>(DefaultTapeChunk(s), slab);
  std::uint64_t s_tuples_per_block = s.blocks > 0 ? (s.tuple_count + s.blocks - 1) / s.blocks : 0;

  for (BlockCount off = 0; off < s.blocks; off += slab) {
    BlockCount take_slab = std::min<BlockCount>(slab, s.blocks - off);
    hash::DiskPartitioner::Options s_options;
    s_options.schema = phantom ? nullptr : &s.schema;
    s_options.key_column = spec.s_key_column;
    s_options.bucket_count = layout.bucket_count;
    s_options.write_buffer_blocks = layout.write_buffer_blocks;
    s_options.alloc_tag = stats.iterations % 2 == 0 ? "S-iter-even" : "S-iter-odd";
    s_options.space = &space;
    hash::DiskPartitioner s_partitioner(ctx.disks, s_options);

    // Hash process: stream this slab from tape S into disk buckets.
    for (BlockCount done = 0; done < take_slab; done += s_chunk) {
      BlockCount take = std::min<BlockCount>(s_chunk, take_slab - done);
      std::vector<BlockPayload> payloads;
      TERTIO_ASSIGN_OR_RETURN(sim::Interval read,
                              ctx.drive_s->Read(s.start_block + off + done, take, tape_cursor,
                                                phantom ? nullptr : &payloads));
      if (phantom) {
        TERTIO_RETURN_IF_ERROR(s_partitioner.AddPhantomBlocks(
            take, static_cast<std::uint64_t>(take) * s_tuples_per_block, read.end));
      } else {
        TERTIO_RETURN_IF_ERROR(s_partitioner.AddBlocks(payloads, read.end));
      }
      tape_cursor = concurrent ? read.end
                               : std::max(read.end, s_partitioner.last_write_end());
    }
    TERTIO_RETURN_IF_ERROR(s_partitioner.Flush());
    if (!concurrent) {
      tape_cursor = std::max(tape_cursor, s_partitioner.last_write_end());
      join_cursor = std::max(join_cursor, tape_cursor);
    }

    // Join process: every bucket pair of this slab.
    for (std::uint32_t b = 0; b < layout.bucket_count; ++b) {
      const hash::DiskBucket& rb = r_partitioner.buckets()[b];
      hash::DiskBucket& sb = s_partitioner.buckets()[b];
      TERTIO_ASSIGN_OR_RETURN(
          join_cursor,
          JoinBucketPair(ctx, spec, rb, sb, layout.r_bucket_blocks,
                         layout.write_buffer_blocks, phantom, join_cursor, &output,
                         &overflow_slices));
      if (sb.blocks > 0) {
        TERTIO_RETURN_IF_ERROR(
            ctx.disks->allocator().Free(sb.extents, join_cursor, s_options.alloc_tag));
        TERTIO_RETURN_IF_ERROR(space.Release(sb.blocks, join_cursor));
        sb.extents.clear();
      }
    }
    if (!concurrent) tape_cursor = std::max(tape_cursor, join_cursor);
    stats.iterations += 1;
  }

  SimSeconds finish = std::max(join_cursor, tape_cursor);
  stats.step2_seconds = finish - step1_end;
  stats.bucket_overflow_slices = overflow_slices;
  stats.r_scans = stats.iterations;  // R's buckets are re-read per slab
  scope.Fill(&stats);
  stats.response_seconds = std::max(stats.response_seconds, finish - scope.start());
  stats.output_valid = !phantom;
  stats.output_tuples = output.tuples();
  stats.output_checksum = output.checksum();
  stats.peak_disk_blocks =
      std::max(stats.peak_disk_blocks, ctx.disks->allocator().used_blocks());

  // Restore scratch state.
  for (hash::DiskBucket& rb : r_partitioner.buckets()) {
    if (!rb.extents.empty()) {
      TERTIO_RETURN_IF_ERROR(ctx.disks->allocator().Free(rb.extents, finish, "R-buckets"));
    }
  }
  TERTIO_RETURN_IF_ERROR(ctx.memory->ReleaseAll("gh/memory"));
  return stats;
}

class GhJoinMethod final : public JoinMethod {
 public:
  GhJoinMethod(JoinMethodId id, GhMode mode) : id_(id), mode_(mode) {}

  JoinMethodId id() const override { return id_; }

  Result<ResourceRequirements> Requirements(const JoinSpec& spec,
                                            const JoinContext& ctx) const override {
    TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout, PlanGh(spec, ctx));
    ResourceRequirements req;
    req.memory_blocks = layout.memory_blocks;
    req.disk_blocks = spec.r->blocks +
                      (spec.r->phantom ? 1 : layout.bucket_count + 1);
    return req;
  }

  Result<JoinStats> Execute(const JoinSpec& spec, const JoinContext& ctx) const override {
    return ExecuteGh(mode_, id_, spec, ctx);
  }

 private:
  JoinMethodId id_;
  GhMode mode_;
};

}  // namespace

std::unique_ptr<JoinMethod> MakeDtGh() {
  return std::make_unique<GhJoinMethod>(JoinMethodId::kDtGh, GhMode::kSequential);
}
std::unique_ptr<JoinMethod> MakeCdtGh() {
  return std::make_unique<GhJoinMethod>(JoinMethodId::kCdtGh, GhMode::kConcurrent);
}

}  // namespace tertio::join
