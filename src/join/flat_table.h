#pragma once

/// \file flat_table.h
/// Cache-friendly build/probe substrate of the full-data join paths.
///
/// FlatJoinTable replaces the original std::unordered_multimap table: slots
/// live in one contiguous open-addressed array (linear probing) keyed by the
/// splitmix64 digest of the join key (hash/hasher.h), and captured build
/// records are packed back-to-back in a per-table arena addressed by
/// (offset, length) handles — no per-entry heap allocation, no node pointer
/// chases. AddBlocks and Probe run a short software-prefetch pipeline over
/// the slot array, so the dependent cache miss per tuple largely overlaps
/// with decoding the next records.
///
/// Probes compare the stored 64-bit key digest first and the key itself only
/// on digest equality; a digest collision between unequal keys therefore
/// never produces a match (see FlatTableDigestCollision in
/// tests/join_correctness_test.cc).
///
/// Two kernel generations coexist behind a runtime dispatch (join/simd.h):
/// the original per-record loops (the forced-scalar reference, selected with
/// TERTIO_SIMD=scalar or simd::SetLevelForTest) and a batched kernel built
/// as a two-stage software pipeline. Stage one digests records a full filter
/// distance ahead and prefetches their blocked-Bloom filter word; stage two
/// tests the filter half a ring later and prefetches the slot line only for
/// digests that may be present. Probes the filter rejects — the common case
/// for selective joins — never touch the slot array at all; survivors walk
/// their chain with SSE2/NEON group-of-four digest compares. Both kernels
/// emit the identical match sequence (tests/flat_table_simd_test.cc).

#include <cstdint>
#include <span>
#include <vector>

#include "hash/hasher.h"
#include "join/join_output.h"
#include "relation/schema.h"
#include "util/block_payload.h"
#include "util/hugepage.h"
#include "util/status.h"

namespace tertio::join {

/// Hash of a join key, used for slot placement and the digest-first probe
/// compare. Injectable so tests can force digest collisions; production code
/// always uses hash::HashKey (a 64-bit bijection).
using KeyHashFn = std::uint64_t (*)(std::int64_t);

/// In-memory hash table over the build side of one (sub-)join.
///
/// Stores, per key, the digest of every build record, so probes can emit the
/// exact pair set without keeping full tuples around. `build_is_r` fixes
/// which side of the output pair the build records occupy. When
/// `capture_records` is set the full build records are retained (in the
/// arena) so that probes can pipeline whole joined rows to a MatchSink (the
/// build side is memory-resident by construction — that is the join methods'
/// invariant).
class FlatJoinTable {
 public:
  FlatJoinTable(const rel::Schema* build_schema, std::size_t build_key_column, bool build_is_r,
                bool capture_records = false, KeyHashFn key_hash = nullptr)
      : build_schema_(build_schema),
        build_key_(build_key_column),
        build_is_r_(build_is_r),
        capture_records_(capture_records),
        key_hash_(key_hash != nullptr ? key_hash : &hash::HashKey) {}

  /// Adds every tuple in `blocks` to the table.
  Status AddBlocks(std::span<const BlockPayload> blocks);

  /// Probes every tuple in `blocks` (from the other relation), emitting all
  /// matching pairs into `out`.
  Status Probe(std::span<const BlockPayload> blocks, const rel::Schema* probe_schema,
               std::size_t probe_key_column, JoinOutput* out) const;

  std::uint64_t size() const { return size_; }

  /// Drops all entries but keeps the slot array and arena capacity (the
  /// tape-tape methods rebuild per bucket slice).
  void Clear();

  /// Grows the slot array so `entries` fit without rehashing mid-insert.
  void Reserve(std::uint64_t entries);

 private:
  /// One slot: 32 bytes, two per cache line. digest == 0 marks an empty
  /// slot; key digests are remapped off 0 in DigestOf.
  struct Slot {
    std::uint64_t digest = 0;
    std::int64_t key = 0;
    /// HashBytes of the full build record (enters the pair checksum).
    std::uint64_t record_digest = 0;
    /// Arena handle of the captured record bytes (capture_records_ only).
    std::uint32_t record_offset = 0;
    std::uint32_t record_length = 0;
  };

  std::uint64_t DigestOf(std::int64_t key) const {
    std::uint64_t digest = key_hash_(key);
    // 0 is the empty-slot marker; remap to a fixed odd constant.
    return digest != 0 ? digest : 0x9E3779B97F4A7C15ULL;
  }

  void Rehash(std::size_t new_capacity);
  void InsertSlot(const Slot& slot);

  /// The original per-record loops — the reference semantics the batched
  /// kernels must reproduce exactly, and the baseline of the probe_* bench
  /// speedup metrics.
  Status AddBlocksScalar(std::span<const BlockPayload> blocks);
  Status ProbeScalar(std::span<const BlockPayload> blocks, const rel::Schema* probe_schema,
                     std::size_t probe_key_column, JoinOutput* out) const;

  /// Batched kernels: two-stage digest/filter pipeline + SIMD group-of-four
  /// slot compares (join/simd.h).
  Status AddBlocksBatched(std::span<const BlockPayload> blocks);
  Status ProbeBatched(std::span<const BlockPayload> blocks, const rel::Schema* probe_schema,
                      std::size_t probe_key_column, JoinOutput* out) const;

  /// Blocked Bloom prefilter over the stored digests: one 64-bit filter word
  /// per eight slots, four bits per key, all drawn from digest bits the slot
  /// index (low bits) does not use. Every insert path sets the bits, so a
  /// negative test proves the digest is absent — the filter only ever skips
  /// chain walks that could not have matched, never real matches.
  static std::uint64_t BloomBitsOf(std::uint64_t digest) {
    return (1ull << ((digest >> 38) & 63)) | (1ull << ((digest >> 44) & 63)) |
           (1ull << ((digest >> 50) & 63)) | (1ull << ((digest >> 56) & 63));
  }
  std::size_t BloomWordOf(std::uint64_t digest) const {
    return static_cast<std::size_t>(digest >> 32) & bloom_mask_;
  }
  void BloomAdd(std::uint64_t digest) { bloom_[BloomWordOf(digest)] |= BloomBitsOf(digest); }
  bool BloomMayContain(std::uint64_t digest) const {
    const std::uint64_t bits = BloomBitsOf(digest);
    return (bloom_[BloomWordOf(digest)] & bits) == bits;
  }

  const rel::Schema* build_schema_;
  std::size_t build_key_;
  bool build_is_r_;
  bool capture_records_;
  KeyHashFn key_hash_;

  /// Power-of-two size, linear probing. Hugepage-backed above 2 MiB: paper-
  /// scale tables have page working sets far beyond the dTLB on 4 KiB pages,
  /// and x86 drops prefetches that miss the dTLB — THP backing is what makes
  /// both kernels' prefetch pipelines effective (util/hugepage.h).
  std::vector<Slot, util::HugePageAllocator<Slot>> slots_;
  std::size_t mask_ = 0;
  /// One filter word per eight slots (3% of the table), kept in lockstep
  /// with slots_ by Rehash/Clear and every insert.
  std::vector<std::uint64_t, util::HugePageAllocator<std::uint64_t>> bloom_;
  std::size_t bloom_mask_ = 0;
  std::uint64_t size_ = 0;
  std::vector<std::uint8_t> arena_;  // captured record bytes, back-to-back
};

}  // namespace tertio::join
