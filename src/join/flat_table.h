#pragma once

/// \file flat_table.h
/// Cache-friendly build/probe substrate of the full-data join paths.
///
/// FlatJoinTable replaces the original std::unordered_multimap table: slots
/// live in one contiguous open-addressed array (linear probing) keyed by the
/// splitmix64 digest of the join key (hash/hasher.h), and captured build
/// records are packed back-to-back in a per-table arena addressed by
/// (offset, length) handles — no per-entry heap allocation, no node pointer
/// chases. AddBlocks and Probe run a short software-prefetch pipeline over
/// the slot array, so the dependent cache miss per tuple largely overlaps
/// with decoding the next records.
///
/// Probes compare the stored 64-bit key digest first and the key itself only
/// on digest equality; a digest collision between unequal keys therefore
/// never produces a match (see FlatTableDigestCollision in
/// tests/join_correctness_test.cc).

#include <cstdint>
#include <span>
#include <vector>

#include "hash/hasher.h"
#include "join/join_output.h"
#include "relation/schema.h"
#include "util/block_payload.h"
#include "util/status.h"

namespace tertio::join {

/// Hash of a join key, used for slot placement and the digest-first probe
/// compare. Injectable so tests can force digest collisions; production code
/// always uses hash::HashKey (a 64-bit bijection).
using KeyHashFn = std::uint64_t (*)(std::int64_t);

/// In-memory hash table over the build side of one (sub-)join.
///
/// Stores, per key, the digest of every build record, so probes can emit the
/// exact pair set without keeping full tuples around. `build_is_r` fixes
/// which side of the output pair the build records occupy. When
/// `capture_records` is set the full build records are retained (in the
/// arena) so that probes can pipeline whole joined rows to a MatchSink (the
/// build side is memory-resident by construction — that is the join methods'
/// invariant).
class FlatJoinTable {
 public:
  FlatJoinTable(const rel::Schema* build_schema, std::size_t build_key_column, bool build_is_r,
                bool capture_records = false, KeyHashFn key_hash = nullptr)
      : build_schema_(build_schema),
        build_key_(build_key_column),
        build_is_r_(build_is_r),
        capture_records_(capture_records),
        key_hash_(key_hash != nullptr ? key_hash : &hash::HashKey) {}

  /// Adds every tuple in `blocks` to the table.
  Status AddBlocks(std::span<const BlockPayload> blocks);

  /// Probes every tuple in `blocks` (from the other relation), emitting all
  /// matching pairs into `out`.
  Status Probe(std::span<const BlockPayload> blocks, const rel::Schema* probe_schema,
               std::size_t probe_key_column, JoinOutput* out) const;

  std::uint64_t size() const { return size_; }

  /// Drops all entries but keeps the slot array and arena capacity (the
  /// tape-tape methods rebuild per bucket slice).
  void Clear();

  /// Grows the slot array so `entries` fit without rehashing mid-insert.
  void Reserve(std::uint64_t entries);

 private:
  /// One slot: 32 bytes, two per cache line. digest == 0 marks an empty
  /// slot; key digests are remapped off 0 in DigestOf.
  struct Slot {
    std::uint64_t digest = 0;
    std::int64_t key = 0;
    /// HashBytes of the full build record (enters the pair checksum).
    std::uint64_t record_digest = 0;
    /// Arena handle of the captured record bytes (capture_records_ only).
    std::uint32_t record_offset = 0;
    std::uint32_t record_length = 0;
  };

  std::uint64_t DigestOf(std::int64_t key) const {
    std::uint64_t digest = key_hash_(key);
    // 0 is the empty-slot marker; remap to a fixed odd constant.
    return digest != 0 ? digest : 0x9E3779B97F4A7C15ULL;
  }

  void Rehash(std::size_t new_capacity);
  void InsertSlot(const Slot& slot);

  const rel::Schema* build_schema_;
  std::size_t build_key_;
  bool build_is_r_;
  bool capture_records_;
  KeyHashFn key_hash_;

  std::vector<Slot> slots_;  // power-of-two size, linear probing
  std::size_t mask_ = 0;
  std::uint64_t size_ = 0;
  std::vector<std::uint8_t> arena_;  // captured record bytes, back-to-back
};

}  // namespace tertio::join
