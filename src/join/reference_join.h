#pragma once

/// \file reference_join.h
/// Uncosted in-memory equi-join used as the correctness oracle.
///
/// Reads both relations directly off their tape volumes (no device timing)
/// and computes the full join in memory. Every tertiary method must produce
/// the same (tuples, checksum) pair.

#include "join/join_output.h"
#include "relation/relation.h"
#include "util/status.h"

namespace tertio::join {

/// Computes R |><| S entirely in memory. Fails on phantom relations.
Result<JoinOutput> ReferenceJoin(const rel::Relation& r, const rel::Relation& s,
                                 std::size_t r_key_column, std::size_t s_key_column);

}  // namespace tertio::join
