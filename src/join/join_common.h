#pragma once

/// \file join_common.h
/// Machinery shared by the seven join-method executors.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "disk/extent.h"
#include "join/flat_table.h"
#include "join/join_output.h"
#include "join/join_spec.h"
#include "sim/pipeline.h"
#include "util/status.h"

namespace tertio::join {

/// \returns the sub-range of `extents` covering blocks
/// [offset, offset + count) of the logical sequence they describe.
/// (Lives in disk/extent.h; re-exported for the executors.)
using disk::SliceExtents;

/// The build/probe table of every executor: the flat open-addressed table
/// (flat_table.h). The name survives from the seed's multimap implementation
/// (now tests-only, legacy_table.h).
using HashJoinTable = FlatJoinTable;

/// Pipeline sink probing a Transfer's chunks through a hash table — the
/// "consumer is the CPU" end of a scan. Probing is free in the system model
/// (Section 3.2); the sink exists so consumption is a declared stage.
class ProbeSink final : public sim::BlockSink {
 public:
  /// `table` may be null (scan without probing, e.g. an empty build side).
  ProbeSink(const HashJoinTable* table, const rel::Schema* probe_schema,
            std::size_t probe_key_column, JoinOutput* out)
      : table_(table), schema_(probe_schema), key_(probe_key_column), out_(out) {}

  Result<sim::Interval> Write(BlockCount offset, BlockCount count, SimSeconds ready,
                              std::vector<BlockPayload>* payloads) override;
  /// Probing is free in the system model, so phantom chunks coalesce freely.
  sim::ChunkCostProfile CostProfile(BlockCount offset, BlockCount chunk,
                                    std::uint64_t max_chunks) override {
    (void)offset;
    (void)chunk;
    return sim::ChunkCostProfile::Free(max_chunks);
  }
  std::string_view device() const override { return "mem"; }

 private:
  const HashJoinTable* table_;
  const rel::Schema* schema_;
  std::size_t key_;
  JoinOutput* out_;
};

/// Validates a spec against a context: relations present, |R| <= |S|, both
/// real or both phantom, tapes mounted in the right drives.
Status ValidateSpecAndContext(const JoinSpec& spec, const JoinContext& ctx);

/// Captures device statistics at construction; Fill() writes the deltas
/// (traffic, requests, response time since construction) into a JoinStats.
/// Construct it *before* the method reserves memory so the occupancy delta
/// attributes the method's own reservations.
class StatsScope {
 public:
  explicit StatsScope(const JoinContext& ctx);

  /// Virtual time at which this scope (join) began — the horizon when it was
  /// constructed (or exactly ctx.not_before under JoinContext::exact_anchor).
  /// All of the join's operations start at or after this.
  SimSeconds start() const { return start_; }

  /// Fills traffic/request deltas and response time (horizon - start; under
  /// exact_anchor, the latest per-resource horizon this join advanced minus
  /// start, so another in-flight session's timeline does not count).
  void Fill(JoinStats* stats) const;

 private:
  const JoinContext& ctx_;
  SimSeconds start_;
  tape::TapeDriveStats tape_r_before_;
  tape::TapeDriveStats tape_s_before_;
  disk::DiskStats disk_before_;
  BlockCount mem_reserved_before_;
  std::uint64_t robot_ops_before_;
  sim::FaultStats faults_before_;
  /// Per-resource horizons at construction, index-aligned with
  /// sim.resources(); only captured under exact_anchor.
  std::vector<SimSeconds> resource_horizons_before_;
};

/// Aggregated fault counters of every device in `ctx` (drives + disks);
/// zero when no device carries an injector.
sim::FaultStats ContextFaultStats(const JoinContext& ctx);

/// Result of staging (copying) a relation from tape to disk.
struct StagedRelation {
  disk::ExtentList extents;  // in tape order
  /// Stage marking the copy complete (last read and last write done).
  sim::StageId done_stage = sim::kNoStage;
  SimSeconds done = 0.0;
};

/// Copies `relation` from the drive currently holding it to disk, as a
/// declared Transfer starting no earlier than `deps`. Sequential mode
/// alternates tape read / disk write; concurrent mode streams the tape while
/// writes trail behind (CDT variants' Step I).
Result<StagedRelation> StageRelationToDisk(const JoinContext& ctx, sim::Pipeline& pipe,
                                           tape::TapeDrive* drive,
                                           const rel::Relation& relation,
                                           BlockCount chunk_blocks, bool concurrent,
                                           const std::string& alloc_tag,
                                           std::span<const sim::StageId> deps);
inline Result<StagedRelation> StageRelationToDisk(const JoinContext& ctx, sim::Pipeline& pipe,
                                                  tape::TapeDrive* drive,
                                                  const rel::Relation& relation,
                                                  BlockCount chunk_blocks, bool concurrent,
                                                  const std::string& alloc_tag,
                                                  std::initializer_list<sim::StageId> deps) {
  return StageRelationToDisk(ctx, pipe, drive, relation, chunk_blocks, concurrent, alloc_tag,
                             std::span<const sim::StageId>(deps.begin(), deps.size()));
}

/// Scans `extents` (a disk-resident relation) in `chunk_blocks` requests
/// starting no earlier than `deps`; when `table` is non-null each chunk is
/// probed into `out`. Reads stream (chunk i+1 follows chunk i). \returns the
/// stage completing the scan.
Result<sim::StageId> ScanDiskAndProbe(const JoinContext& ctx, sim::Pipeline& pipe,
                                      std::string_view phase, const disk::ExtentList& extents,
                                      BlockCount chunk_blocks,
                                      std::span<const sim::StageId> deps, bool phantom,
                                      const rel::Schema* probe_schema, std::size_t probe_key,
                                      const HashJoinTable* table, JoinOutput* out);
inline Result<sim::StageId> ScanDiskAndProbe(const JoinContext& ctx, sim::Pipeline& pipe,
                                             std::string_view phase,
                                             const disk::ExtentList& extents,
                                             BlockCount chunk_blocks,
                                             std::initializer_list<sim::StageId> deps,
                                             bool phantom, const rel::Schema* probe_schema,
                                             std::size_t probe_key, const HashJoinTable* table,
                                             JoinOutput* out) {
  return ScanDiskAndProbe(ctx, pipe, phase, extents, chunk_blocks,
                          std::span<const sim::StageId>(deps.begin(), deps.size()), phantom,
                          probe_schema, probe_key, table, out);
}

/// Default tape read chunk for streaming a relation (blocks).
BlockCount DefaultTapeChunk(const rel::Relation& relation);

}  // namespace tertio::join
