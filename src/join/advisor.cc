#include "join/advisor.h"

#include <algorithm>

namespace tertio::join {

Result<AdvisorReport> AdviseJoinMethod(const cost::CostParams& params) {
  AdvisorReport report;
  for (JoinMethodId method : kAllJoinMethods) {
    auto estimate = cost::Estimate(method, params);
    if (estimate.ok()) {
      report.ranked.push_back(AdvisorChoice{method, estimate.value()});
    } else {
      report.rejected.push_back(AdvisorReport::Rejection{method, estimate.status()});
    }
  }
  if (report.ranked.empty()) {
    return Status::ResourceExhausted(
        "no join method is feasible for this configuration (too little memory?)");
  }
  std::stable_sort(report.ranked.begin(), report.ranked.end(),
                   [](const AdvisorChoice& a, const AdvisorChoice& b) {
                     return a.estimate.total_seconds < b.estimate.total_seconds;
                   });
  return report;
}

}  // namespace tertio::join
