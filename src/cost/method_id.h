#pragma once

/// \file method_id.h
/// Identifiers for the seven tertiary join methods of Section 5.
///
/// Shared between the analytical cost model (tertio::cost) and the
/// executable implementations (tertio::join).

#include <array>
#include <string_view>

namespace tertio {

/// The paper's method names (Table 2).
enum class JoinMethodId : int {
  /// Disk–Tape Nested Block Join (sequential).
  kDtNb = 0,
  /// Concurrent Disk–Tape Nested Block Join, memory buffering.
  kCdtNbMb,
  /// Concurrent Disk–Tape Nested Block Join, disk buffering.
  kCdtNbDb,
  /// Disk–Tape Grace Hash Join (sequential).
  kDtGh,
  /// Concurrent Disk–Tape Grace Hash Join.
  kCdtGh,
  /// Concurrent Tape–Tape Grace Hash Join.
  kCttGh,
  /// Tape–Tape Grace Hash Join (sequential).
  kTtGh,
};

inline constexpr std::array<JoinMethodId, 7> kAllJoinMethods = {
    JoinMethodId::kDtNb,  JoinMethodId::kCdtNbMb, JoinMethodId::kCdtNbDb,
    JoinMethodId::kDtGh,  JoinMethodId::kCdtGh,   JoinMethodId::kCttGh,
    JoinMethodId::kTtGh,
};

/// Paper spelling, e.g. "CDT-NB/MB".
constexpr std::string_view JoinMethodName(JoinMethodId id) {
  switch (id) {
    case JoinMethodId::kDtNb:
      return "DT-NB";
    case JoinMethodId::kCdtNbMb:
      return "CDT-NB/MB";
    case JoinMethodId::kCdtNbDb:
      return "CDT-NB/DB";
    case JoinMethodId::kDtGh:
      return "DT-GH";
    case JoinMethodId::kCdtGh:
      return "CDT-GH";
    case JoinMethodId::kCttGh:
      return "CTT-GH";
    case JoinMethodId::kTtGh:
      return "TT-GH";
  }
  return "?";
}

/// Parses a paper spelling ("CDT-NB/MB", case-sensitive) back to an id;
/// returns false if `name` is not a method name.
constexpr bool ParseJoinMethodName(std::string_view name, JoinMethodId* out) {
  for (JoinMethodId id : kAllJoinMethods) {
    if (JoinMethodName(id) == name) {
      *out = id;
      return true;
    }
  }
  return false;
}

/// True for the methods that overlap tape and disk I/O.
constexpr bool IsConcurrentMethod(JoinMethodId id) {
  switch (id) {
    case JoinMethodId::kCdtNbMb:
    case JoinMethodId::kCdtNbDb:
    case JoinMethodId::kCdtGh:
    case JoinMethodId::kCttGh:
      return true;
    case JoinMethodId::kDtNb:
    case JoinMethodId::kDtGh:
    case JoinMethodId::kTtGh:
      return false;
  }
  return false;
}

/// True for the methods that require D >= |R| (disk–tape methods).
constexpr bool IsDiskTapeMethod(JoinMethodId id) {
  return id != JoinMethodId::kCttGh && id != JoinMethodId::kTtGh;
}

/// True for the hashing-based methods.
constexpr bool IsHashMethod(JoinMethodId id) {
  return id == JoinMethodId::kDtGh || id == JoinMethodId::kCdtGh ||
         id == JoinMethodId::kCttGh || id == JoinMethodId::kTtGh;
}

}  // namespace tertio
