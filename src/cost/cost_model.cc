#include "cost/cost_model.h"

#include <algorithm>

#include "hash/bucket_layout.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace tertio::cost {
namespace {

/// Device-time helpers bound to one parameter set.
class Calc {
 public:
  explicit Calc(const CostParams& p) : p_(p) {}

  SimSeconds TapeSeconds(BlockCount blocks) const {
    return static_cast<double>(blocks.value()) * static_cast<double>(p_.block_bytes.value()) /
           p_.tape_rate_bps.value();
  }
  SimSeconds DiskSeconds(BlockCount blocks) const {
    return static_cast<double>(blocks.value()) * static_cast<double>(p_.block_bytes.value()) /
           p_.disk_rate_bps.value();
  }
  /// Tape-seconds of a pass over `blocks` of the *original* S when a
  /// fraction of S sits in the extent cache: the cached fraction of the
  /// pass reads at disk rate. With nothing cached this is exactly
  /// TapeSeconds (no blended arithmetic), preserving bit-identity of the
  /// cache-less estimates.
  SimSeconds STapeSeconds(BlockCount blocks) const {
    if (p_.s_cached_blocks == 0 || p_.s_blocks == 0) return TapeSeconds(blocks);
    double cached_fraction = static_cast<double>(std::min(p_.s_cached_blocks, p_.s_blocks).value()) /
                             static_cast<double>(p_.s_blocks.value());
    double bytes = static_cast<double>(blocks.value()) * static_cast<double>(p_.block_bytes.value());
    return bytes * (1.0 - cached_fraction) / p_.tape_rate_bps.value() +
           bytes * cached_fraction / p_.disk_rate_bps.value();
  }
  /// Positioning cost of transferring `blocks` in requests of `chunk`.
  SimSeconds Positioning(BlockCount blocks, BlockCount chunk) const {
    if (p_.disk_positioning_seconds <= 0.0 || blocks == 0) return 0.0;
    if (chunk == 0) chunk = 1;
    return static_cast<double>(CeilDiv<std::uint64_t>(blocks.value(), chunk.value())) *
           p_.disk_positioning_seconds;
  }

 private:
  const CostParams& p_;
};

Status ValidateCommon(const CostParams& p) {
  if (p.r_blocks == 0 || p.s_blocks == 0) {
    return Status::InvalidArgument("relations must be non-empty");
  }
  if (p.r_blocks > p.s_blocks) {
    return Status::InvalidArgument("R must be the smaller relation (|R| <= |S|)");
  }
  if (p.memory_blocks == 0) return Status::InvalidArgument("memory must be positive");
  if (p.tape_rate_bps <= 0.0 || p.disk_rate_bps <= 0.0) {
    return Status::InvalidArgument("device rates must be positive");
  }
  return Status::OK();
}

/// NB-method buffer split: Mr blocks for scanning R, the rest for S.
Status NbSplit(const CostParams& p, BlockCount* mr, BlockCount* ms_space) {
  BlockCount mr_val = static_cast<BlockCount>(p.nb_r_fraction * static_cast<double>(p.memory_blocks.value()));
  if (mr_val == 0) mr_val = 1;
  if (mr_val + 1 > p.memory_blocks) {
    return Status::ResourceExhausted("memory too small for a nested-block join (need >= 2 blocks)");
  }
  *mr = mr_val;
  *ms_space = p.memory_blocks - mr_val;
  return Status::OK();
}

Result<CostBreakdown> EstimateDtNb(const CostParams& p) {
  Calc c(p);
  BlockCount mr = 0, ms = 0;
  TERTIO_RETURN_IF_ERROR(NbSplit(p, &mr, &ms));
  if (p.disk_blocks < p.r_blocks) {
    return Status::ResourceExhausted("DT-NB requires D >= |R| to stage R on disk");
  }
  std::uint64_t n = CeilDiv<std::uint64_t>(p.s_blocks.value(), ms.value());
  CostBreakdown out;
  out.step1_seconds = c.TapeSeconds(p.r_blocks) + c.DiskSeconds(p.r_blocks) +
                      c.Positioning(p.r_blocks, ms);
  out.step2_seconds = c.STapeSeconds(p.s_blocks) +
                      static_cast<double>(n) * (c.DiskSeconds(p.r_blocks) +
                                                c.Positioning(p.r_blocks, mr));
  out.total_seconds = out.step1_seconds + out.step2_seconds;
  out.disk_traffic_blocks = p.r_blocks + n * p.r_blocks;
  out.tape_traffic_blocks = p.r_blocks + p.s_blocks;
  out.r_scans = n;
  out.iterations = n;
  out.disk_space_blocks = p.r_blocks;
  out.memory_required_blocks = 2;
  return out;
}

Result<CostBreakdown> EstimateCdtNbMb(const CostParams& p) {
  Calc c(p);
  BlockCount mr = 0, ms_space = 0;
  TERTIO_RETURN_IF_ERROR(NbSplit(p, &mr, &ms_space));
  BlockCount ms = ms_space / 2;  // two S buffers
  if (ms == 0) return Status::ResourceExhausted("memory too small to split into two S buffers");
  if (p.disk_blocks < p.r_blocks) {
    return Status::ResourceExhausted("CDT-NB/MB requires D >= |R| to stage R on disk");
  }
  std::uint64_t n = CeilDiv<std::uint64_t>(p.s_blocks.value(), ms.value());
  SimSeconds join_iter = c.DiskSeconds(p.r_blocks) + c.Positioning(p.r_blocks, mr);
  SimSeconds read_iter = c.STapeSeconds(ms);
  CostBreakdown out;
  out.step1_seconds =
      std::max(c.TapeSeconds(p.r_blocks), c.DiskSeconds(p.r_blocks) +
                                              c.Positioning(p.r_blocks, ms));
  out.step2_seconds = read_iter + (n > 0 ? static_cast<double>(n - 1) : 0.0) *
                                      std::max(read_iter, join_iter) +
                      join_iter;
  out.total_seconds = out.step1_seconds + out.step2_seconds;
  out.disk_traffic_blocks = p.r_blocks + n * p.r_blocks;
  out.tape_traffic_blocks = p.r_blocks + p.s_blocks;
  out.r_scans = n;
  out.iterations = n;
  out.disk_space_blocks = p.r_blocks;
  out.memory_required_blocks = 3;
  return out;
}

Result<CostBreakdown> EstimateCdtNbDb(const CostParams& p) {
  Calc c(p);
  BlockCount mr = 0, ms = 0;
  TERTIO_RETURN_IF_ERROR(NbSplit(p, &mr, &ms));  // one full-size S buffer in memory
  if (p.disk_blocks < p.r_blocks + ms) {
    return Status::ResourceExhausted("CDT-NB/DB requires D >= |R| + |Si| for the disk buffer");
  }
  std::uint64_t n = CeilDiv<std::uint64_t>(p.s_blocks.value(), ms.value());
  // Steady state: tape refills Ms while the disk serves Ms (buffer write) +
  // Ms (buffer read) + R (scan of R).
  SimSeconds tape_iter = c.STapeSeconds(ms);
  SimSeconds disk_iter = c.DiskSeconds(2 * ms + p.r_blocks) + c.Positioning(ms, ms) * 2 +
                         c.Positioning(p.r_blocks, mr);
  SimSeconds first_fill = c.STapeSeconds(ms) + c.DiskSeconds(ms);
  SimSeconds last_join = c.DiskSeconds(ms + p.r_blocks) + c.Positioning(p.r_blocks, mr);
  CostBreakdown out;
  out.step1_seconds =
      std::max(c.TapeSeconds(p.r_blocks), c.DiskSeconds(p.r_blocks) +
                                              c.Positioning(p.r_blocks, ms));
  out.step2_seconds = first_fill +
                      (n > 1 ? static_cast<double>(n - 1) * std::max(tape_iter, disk_iter) : 0.0) +
                      last_join;
  out.total_seconds = out.step1_seconds + out.step2_seconds;
  out.disk_traffic_blocks = p.r_blocks + 2 * p.s_blocks + n * p.r_blocks;
  out.tape_traffic_blocks = p.r_blocks + p.s_blocks;
  out.r_scans = n;
  out.iterations = n;
  out.disk_space_blocks = p.r_blocks + ms;
  out.memory_required_blocks = 2;
  return out;
}

/// Shared Grace geometry: bucket layout + per-iteration S buffer d.
struct GraceGeometry {
  hash::BucketLayout layout;
  BlockCount d = 0;  // S buffer on disk per iteration
  std::uint64_t iterations = 0;
};

Result<GraceGeometry> PlanDiskTapeGrace(const CostParams& p) {
  TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout,
                          hash::BucketLayout::Plan(p.r_blocks, p.memory_blocks,
                                                   p.write_buffer_blocks));
  if (p.disk_blocks <= p.r_blocks) {
    return Status::ResourceExhausted(
        StrFormat("disk space of %llu blocks cannot hold R (%llu) plus an S buffer",
                  static_cast<unsigned long long>(p.disk_blocks.value()),
                  static_cast<unsigned long long>(p.r_blocks.value())));
  }
  GraceGeometry g;
  g.layout = layout;
  g.d = p.disk_blocks - p.r_blocks;
  g.iterations = CeilDiv<std::uint64_t>(p.s_blocks.value(), g.d.value());
  return g;
}

Result<CostBreakdown> EstimateDtGh(const CostParams& p) {
  Calc c(p);
  TERTIO_ASSIGN_OR_RETURN(GraceGeometry g, PlanDiskTapeGrace(p));
  BlockCount w = g.layout.write_buffer_blocks;
  std::uint64_t n = g.iterations;
  CostBreakdown out;
  out.step1_seconds =
      c.TapeSeconds(p.r_blocks) + c.DiskSeconds(p.r_blocks) + c.Positioning(p.r_blocks, w);
  // Per iteration: read d from tape, hash-write d, then join every bucket
  // pair: read the R bucket (R total per iteration) and the S bucket (d).
  out.step2_seconds = c.STapeSeconds(p.s_blocks) + c.DiskSeconds(2 * p.s_blocks) +
                      c.Positioning(p.s_blocks, w) * 2 +
                      static_cast<double>(n) *
                          (c.DiskSeconds(p.r_blocks) + c.Positioning(p.r_blocks, w));
  out.total_seconds = out.step1_seconds + out.step2_seconds;
  out.disk_traffic_blocks = p.r_blocks + n * p.r_blocks + 2 * p.s_blocks;
  out.tape_traffic_blocks = p.r_blocks + p.s_blocks;
  out.r_scans = n;
  out.iterations = n;
  out.disk_space_blocks = p.disk_blocks;
  out.memory_required_blocks = g.layout.memory_blocks;
  return out;
}

Result<CostBreakdown> EstimateCdtGh(const CostParams& p) {
  Calc c(p);
  TERTIO_ASSIGN_OR_RETURN(GraceGeometry g, PlanDiskTapeGrace(p));
  BlockCount w = g.layout.write_buffer_blocks;
  std::uint64_t n = g.iterations;
  // Average S consumed per iteration (the last slab may be partial).
  BlockCount slab = CeilDiv<std::uint64_t>(p.s_blocks.value(), n);
  SimSeconds tape_iter = c.STapeSeconds(slab);
  SimSeconds disk_iter = c.DiskSeconds(2 * slab + p.r_blocks) +
                         c.Positioning(2 * slab + p.r_blocks, w);
  SimSeconds fill = std::max(c.STapeSeconds(slab), c.DiskSeconds(slab) + c.Positioning(slab, w));
  SimSeconds last_join = c.DiskSeconds(slab + p.r_blocks) + c.Positioning(slab + p.r_blocks, w);
  CostBreakdown out;
  out.step1_seconds = std::max(c.TapeSeconds(p.r_blocks),
                               c.DiskSeconds(p.r_blocks) + c.Positioning(p.r_blocks, w));
  out.step2_seconds =
      fill + (n > 1 ? static_cast<double>(n - 1) * std::max(tape_iter, disk_iter) : 0.0) +
      last_join;
  out.total_seconds = out.step1_seconds + out.step2_seconds;
  out.disk_traffic_blocks = p.r_blocks + n * p.r_blocks + 2 * p.s_blocks;
  out.tape_traffic_blocks = p.r_blocks + p.s_blocks;
  out.r_scans = n;
  out.iterations = n;
  out.disk_space_blocks = p.disk_blocks;
  out.memory_required_blocks = g.layout.memory_blocks;
  return out;
}

Result<CostBreakdown> EstimateCttGh(const CostParams& p) {
  Calc c(p);
  TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout,
                          hash::BucketLayout::Plan(p.r_blocks, p.memory_blocks,
                                                   p.write_buffer_blocks));
  if (p.disk_blocks == 0) return Status::ResourceExhausted("CTT-GH requires some disk space");
  BlockCount w = layout.write_buffer_blocks;
  std::uint64_t scans = CeilDiv<std::uint64_t>(p.r_blocks.value(), p.disk_blocks.value());
  std::uint64_t n = CeilDiv<std::uint64_t>(p.s_blocks.value(), p.disk_blocks.value());
  // Per-scan assembly slice and per-iteration S slab (capped by the data).
  BlockCount slice = CeilDiv<std::uint64_t>(p.r_blocks.value(), scans);
  BlockCount slab = CeilDiv<std::uint64_t>(p.s_blocks.value(), n);

  // Step I, per scan: stream R from tape while assembling a slice of
  // buckets on disk (overlapped), then stream the slice back and append it
  // to the R tape (read-back overlaps the append; both are bounded by the
  // slower medium). The last scan assembles the tail fraction of R.
  SimSeconds scan_hash = std::max(c.TapeSeconds(p.r_blocks),
                                  c.DiskSeconds(slice) + c.Positioning(slice, w));
  SimSeconds scan_append =
      std::max(c.DiskSeconds(slice) + c.Positioning(slice, w), c.TapeSeconds(slice));
  CostBreakdown out;
  out.step1_seconds = static_cast<double>(scans) * (scan_hash + scan_append);

  // Step II, per iteration: read a slab of S (tape S), read all hashed R
  // buckets (tape R), and serve 2*slab of disk traffic — all overlapped.
  SimSeconds iter = std::max({c.STapeSeconds(slab), c.TapeSeconds(p.r_blocks),
                              c.DiskSeconds(2 * slab) + c.Positioning(2 * slab, w)});
  SimSeconds fill = std::max(c.STapeSeconds(slab), c.DiskSeconds(slab) + c.Positioning(slab, w));
  SimSeconds last_join = std::max(c.TapeSeconds(p.r_blocks),
                                  c.DiskSeconds(slab) + c.Positioning(slab, w));
  out.step2_seconds =
      fill + (n > 1 ? static_cast<double>(n - 1) * iter : 0.0) + last_join;
  out.total_seconds = out.step1_seconds + out.step2_seconds;
  out.disk_traffic_blocks = 2 * p.r_blocks + 2 * p.s_blocks;
  out.tape_traffic_blocks =
      scans * p.r_blocks + p.r_blocks + n * p.r_blocks + p.s_blocks;
  out.r_scans = scans + n;
  out.iterations = n;
  out.disk_space_blocks = p.disk_blocks;
  out.memory_required_blocks = layout.memory_blocks;
  out.tape_scratch_r_blocks = p.r_blocks;
  return out;
}

Result<CostBreakdown> EstimateTtGh(const CostParams& p) {
  Calc c(p);
  TERTIO_ASSIGN_OR_RETURN(hash::BucketLayout layout,
                          hash::BucketLayout::Plan(p.r_blocks, p.memory_blocks,
                                                   p.write_buffer_blocks));
  if (p.disk_blocks == 0) return Status::ResourceExhausted("TT-GH requires some disk space");
  BlockCount w = layout.write_buffer_blocks;
  std::uint64_t scans_r = CeilDiv<std::uint64_t>(p.r_blocks.value(), p.disk_blocks.value());
  std::uint64_t scans_s = CeilDiv<std::uint64_t>(p.s_blocks.value(), p.disk_blocks.value());
  BlockCount slice_r = CeilDiv<std::uint64_t>(p.r_blocks.value(), scans_r);
  BlockCount slice_s = CeilDiv<std::uint64_t>(p.s_blocks.value(), scans_s);

  // Hashing R to the S tape: the append (drive S) overlaps the next scan's
  // read (drive R), so each scan costs roughly one pass over the relation
  // plus disk work for its slice; one trailing append remains.
  // The S scans read the original S, which the extent cache may hold; the
  // R scans and every Step II bucket stream read (re)partitioned scratch,
  // which is never cached.
  auto scan_cost = [&](BlockCount rel_blocks, BlockCount slice, bool s_side) {
    return std::max(s_side ? c.STapeSeconds(rel_blocks) : c.TapeSeconds(rel_blocks),
                    c.DiskSeconds(2 * slice) + c.Positioning(2 * slice, w));
  };
  CostBreakdown out;
  out.step1_seconds =
      static_cast<double>(scans_r) * scan_cost(p.r_blocks, slice_r, /*s_side=*/false) +
      c.TapeSeconds(slice_r) +
      static_cast<double>(scans_s) * scan_cost(p.s_blocks, slice_s, /*s_side=*/true) +
      c.TapeSeconds(slice_s);
  // Step II: stream R buckets (tape S drive) and S buckets (tape R drive) in
  // parallel.
  out.step2_seconds = std::max(c.TapeSeconds(p.r_blocks), c.TapeSeconds(p.s_blocks));
  out.total_seconds = out.step1_seconds + out.step2_seconds;
  out.disk_traffic_blocks = 2 * p.r_blocks + 2 * p.s_blocks;
  out.tape_traffic_blocks = scans_r * p.r_blocks + p.r_blocks + scans_s * p.s_blocks +
                            p.s_blocks + p.r_blocks + p.s_blocks;
  out.r_scans = scans_r + 1;
  out.iterations = scans_r + scans_s;
  out.disk_space_blocks = p.disk_blocks;
  out.memory_required_blocks = layout.memory_blocks;
  out.tape_scratch_r_blocks = p.s_blocks;
  out.tape_scratch_s_blocks = p.r_blocks;
  return out;
}

}  // namespace

Result<CostBreakdown> Estimate(JoinMethodId method, const CostParams& params) {
  TERTIO_RETURN_IF_ERROR(ValidateCommon(params));
  switch (method) {
    case JoinMethodId::kDtNb:
      return EstimateDtNb(params);
    case JoinMethodId::kCdtNbMb:
      return EstimateCdtNbMb(params);
    case JoinMethodId::kCdtNbDb:
      return EstimateCdtNbDb(params);
    case JoinMethodId::kDtGh:
      return EstimateDtGh(params);
    case JoinMethodId::kCdtGh:
      return EstimateCdtGh(params);
    case JoinMethodId::kCttGh:
      return EstimateCttGh(params);
    case JoinMethodId::kTtGh:
      return EstimateTtGh(params);
  }
  return Status::InvalidArgument("unknown join method");
}

Result<CostParams> WithLocalOutput(CostParams params, double output_bandwidth_share) {
  if (output_bandwidth_share < 0.0 || output_bandwidth_share >= 1.0) {
    return Status::InvalidArgument("output bandwidth share must be in [0, 1)");
  }
  params.disk_rate_bps *= 1.0 - output_bandwidth_share;
  return params;
}

SimSeconds OptimumJoinSeconds(const CostParams& params) {
  return static_cast<double>(params.s_blocks.value()) * static_cast<double>(params.block_bytes.value()) /
         params.tape_rate_bps.value();
}

double RelativeJoinOverhead(SimSeconds response, const CostParams& params) {
  SimSeconds optimum = OptimumJoinSeconds(params);
  return optimum > 0.0 ? response / optimum - 1.0 : 0.0;
}

}  // namespace tertio::cost
