#pragma once

/// \file cost_model.h
/// Closed-form response-time and resource estimates for the seven methods.
///
/// The paper presents expected response times (Figures 1–3) "calculated
/// using cost formulas derived for each join method" but defers the
/// derivation to its reference [13]. The formulas below are re-derived from
/// the method descriptions in Section 5 under the paper's own cost model
/// (Section 3.2):
///
///  * transfer-only device costs: t_T(b) = b·bs / X_T, t_D(b) = b·bs / X_D;
///  * sequential methods sum the I/O of their single process;
///  * concurrent methods overlap tape and disk per iteration, so a
///    steady-state iteration costs max(tape work, disk work);
///  * optional per-request disk positioning cost (0 reproduces the paper's
///    pure transfer-only analysis; nonzero reproduces the random-I/O
///    degradation the measurements show at tiny write buffers).
///
/// Each estimate also reports the resource requirements of Table 2 and the
/// traffic/scan counts behind Figures 6 and 7.

#include "cost/method_id.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::cost {

/// Inputs of one estimate (all sizes in blocks, rates in bytes/second).
struct CostParams {
  BlockCount r_blocks = 0;       // |R| (smaller relation)
  BlockCount s_blocks = 0;       // |S|
  BlockCount memory_blocks = 0;  // M
  BlockCount disk_blocks = 0;    // D
  ByteCount block_bytes = kDefaultBlockBytes;
  BytesPerSecond tape_rate_bps = 1.5e6;  // effective X_T (compression included)
  BytesPerSecond disk_rate_bps = 8.0e6;  // aggregate X_D
  /// Per-request disk positioning time; 0 = the paper's transfer-only model.
  SimSeconds disk_positioning_seconds = 0.0;
  /// Preferred hash write-buffer size w (blocks per bucket flush).
  BlockCount write_buffer_blocks = 8;
  /// Fraction of M the NB methods reserve for scanning R (paper: 10%).
  double nb_r_fraction = 0.1;
  /// Blocks of S resident in the cross-query extent cache
  /// (disk/extent_cache.h). That fraction of every pass over the original S
  /// is served at the disk rate instead of the tape rate, so the estimates
  /// (and join::Advisor rankings built on them) reflect a partially
  /// disk-resident S. 0 — the default — reproduces the paper's pure-tape
  /// model exactly.
  BlockCount s_cached_blocks = 0;
};

/// Outputs of one estimate.
struct CostBreakdown {
  SimSeconds step1_seconds = 0.0;  // preparing R (copy or hash)
  SimSeconds step2_seconds = 0.0;  // the iterative join phase
  SimSeconds total_seconds = 0.0;
  /// Blocks moved to/from disk (reads + writes) — Figure 7.
  BlockCount disk_traffic_blocks = 0;
  /// Blocks moved to/from tape (both drives).
  BlockCount tape_traffic_blocks = 0;
  /// Full passes over R, from whatever medium holds it.
  std::uint64_t r_scans = 0;
  /// Iterations of the Step II loop.
  std::uint64_t iterations = 0;
  /// Disk space the method needs — Figure 6 / Table 2.
  BlockCount disk_space_blocks = 0;
  /// Minimum memory for feasibility — Table 2.
  BlockCount memory_required_blocks = 0;
  /// Scratch tape space on the R / S tapes — Table 2.
  BlockCount tape_scratch_r_blocks = 0;
  BlockCount tape_scratch_s_blocks = 0;
};

/// Estimates `method` under `params`. Fails with kResourceExhausted /
/// kInvalidArgument when the method is infeasible in that configuration
/// (e.g. CDT-GH with D <= |R|, hash joins below the memory bound).
Result<CostBreakdown> Estimate(JoinMethodId method, const CostParams& params);

/// Section 3.2's local-output case: "if the join output is to be stored
/// locally, the effect of writing the output has been taken into account in
/// X_D" — i.e. the aggregate disk rate the join sees shrinks by the share
/// of bandwidth the output writes consume. \returns params with the disk
/// rate reduced accordingly; `output_bandwidth_share` must be in [0, 1).
Result<CostParams> WithLocalOutput(CostParams params, double output_bandwidth_share);

/// The optimum join time of Section 9: the bare tape transfer time of S.
SimSeconds OptimumJoinSeconds(const CostParams& params);

/// Relative join overhead of a response time against the optimum
/// (response/optimum - 1).
double RelativeJoinOverhead(SimSeconds response, const CostParams& params);

}  // namespace tertio::cost
