#pragma once

/// \file auditor.h
/// SimSan — the simulation invariant auditor.
///
/// The paper's results rest on resource invariants the simulator otherwise
/// trusts silently: a serial device serves one operation at a time, buffer
/// occupancy never exceeds the memory allotment M, scratch space never
/// exceeds D / T_R / T_S (Table 2), and every declared transfer moves
/// exactly the bytes it promises. A violated invariant would not crash the
/// simulation — it would skew every reproduced figure. SimSan is the
/// sanitizer for that failure class.
///
/// The Auditor is a passive observer: instrumented layers (sim::Resource,
/// sim::Pipeline, mem::MemoryBudget, disk::DiskSpaceAllocator,
/// tape::TapeVolume) call its On*() hooks when an auditor is bound and never
/// otherwise change behavior, so audited and unaudited runs are
/// bit-identical in simulated time. Violations are collected — never thrown —
/// and surfaced through Check(), which returns a Status carrying a
/// replayable diagnostic trace of the offending intervals.
///
/// Binding is explicit (Simulation::EnableAudit() / Machine::EnableAudit())
/// in all builds; under the TERTIO_SIMSAN compile option (on in the Debug,
/// asan and tsan presets) every Simulation auto-enables its auditor and
/// hard-fails at destruction if a violation was recorded, making the whole
/// test and bench suite run sanitized.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/interval.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::sim {

#if defined(TERTIO_SIMSAN)
inline constexpr bool kSimSanEnabled = true;
#else
inline constexpr bool kSimSanEnabled = false;
#endif

/// The invariant classes SimSan audits.
enum class AuditKind : int {
  /// A serial resource was occupied by two operations at once.
  kIntervalOverlap,
  /// An operation's interval ends before it starts, or starts before the
  /// operation became eligible.
  kTimeRegression,
  /// A pipeline stage began before its dependencies finished (or before the
  /// pipeline's virtual origin).
  kCausality,
  /// Memory-buffer occupancy exceeded the allotment M.
  kBufferOvercommit,
  /// Scratch occupancy exceeded its bound: disk (D) or tape (T_R / T_S).
  kScratchOvercommit,
  /// A Transfer's block accounting broke: completed != expected, or
  /// issued != completed + dropped-to-retries.
  kByteConservation,
  /// The cached Simulation horizon disagrees with the recomputed maximum
  /// over its resources.
  kHorizonIncoherence,
  /// Bookkeeping went negative (over-release, free of unowned space).
  kAccounting,
  /// A pipeline stage used a phase label missing from span_registry.h.
  kUnregisteredSpan,
  /// A drive lease broke exclusivity: two sessions held the same drive at
  /// once, or a session released a drive it never held.
  kLeaseExclusivity,
};

std::string_view AuditKindToString(AuditKind kind);

/// One recorded invariant violation. `intervals` holds the offending
/// occupancy intervals (most recent last) so the schedule around the
/// violation can be replayed from the diagnostic alone.
struct AuditViolation {
  AuditKind kind;
  /// The resource / budget / phase the violation is attributed to.
  std::string subject;
  std::string detail;
  std::vector<Interval> intervals;
};

/// Collects invariant checks and violations for one simulated system.
/// Thread-compatible, not thread-safe — one auditor per Simulation, matching
/// the simulator's single-threaded-by-design contract (parallel sweeps use
/// one Machine, and therefore one auditor, per worker).
class Auditor {
 public:
  // --- Hooks called by the instrumented layers -----------------------------

  /// A Resource committed `interval` for an operation eligible at `ready`.
  void OnSchedule(std::string_view resource, SimSeconds ready, Interval interval,
                  ByteCount bytes);

  /// A Resource committed a coalesced batch of `op_count` back-to-back
  /// operations occupying `hull` (first operation's start to last
  /// operation's end). Exclusivity is audited at batch granularity: the hull
  /// may not overlap the previously committed operation, and subsequent
  /// operations are checked against the hull's end.
  void OnScheduleBatch(std::string_view resource, Interval hull, std::uint64_t op_count,
                       ByteCount bytes);

  /// A Resource was individually reset: its timeline restarts at zero.
  void OnResourceReset(std::string_view resource);

  /// A Pipeline committed a stage under `phase` on `device`.
  void OnStage(std::string_view phase, std::string_view device, SimSeconds pipeline_start,
               SimSeconds ready, Interval interval);

  /// A Pipeline committed a coalesced batch of `stages` chunk stages under
  /// `phase` occupying `hull`. `ready` is the first chunk's ready time.
  void OnStageBatch(std::string_view phase, std::string_view device, SimSeconds pipeline_start,
                    SimSeconds ready, Interval hull, std::uint64_t stages);

  /// A Pipeline::Transfer finished. `expected` is the block count the plan
  /// promised (total minus resume offset), `completed` the blocks whose read
  /// and write both committed, `issued` every block handed to the source
  /// (including failed attempts), `dropped` blocks of failed attempts
  /// discarded to chunk retries.
  void OnTransferEnd(std::string_view read_phase, BlockCount expected, BlockCount completed,
                     BlockCount issued, BlockCount dropped);

  /// MemoryBudget committed (or refused) a reservation; `reserved_after` is
  /// the occupancy after the call.
  void OnMemoryReserve(std::string_view tag, BlockCount requested, BlockCount reserved_after,
                       BlockCount total);

  /// MemoryBudget released `released` blocks under `tag`, of which
  /// `held_under_tag` were actually reserved.
  void OnMemoryRelease(std::string_view tag, BlockCount released, BlockCount held_under_tag);

  /// DiskSpaceAllocator occupancy changed (allocate or free) at `now`.
  void OnDiskUsage(std::string_view tag, SimSeconds now, BlockCount used_after,
                   BlockCount capacity);

  /// DiskSpaceAllocator was asked to free space it does not track.
  void OnDiskOverfree(std::string_view tag, std::string detail);

  /// A tape volume's recorded size changed (append or truncate).
  /// `capacity` of 0 means unbounded.
  void OnTapeOccupancy(std::string_view volume, BlockCount size_after, BlockCount capacity);

  /// An extent cache (disk/extent_cache.h) filled `blocks` of a tape extent
  /// onto disk; `resident_after` is its occupancy after the fill. The
  /// auditor keeps its own fill/evict ledger per cache, so both the
  /// capacity bound (resident <= cache carve) and byte conservation
  /// (Σ fills − Σ evicts == resident) are checked independently of the
  /// cache's own counters.
  void OnCacheFill(std::string_view cache, BlockCount blocks, BlockCount resident_after,
                   BlockCount capacity);

  /// An extent cache evicted `blocks`; `resident_after` is its occupancy
  /// after the eviction.
  void OnCacheEvict(std::string_view cache, BlockCount blocks, BlockCount resident_after);

  /// The Simulation compared its cached horizon against a recomputation.
  void OnHorizonCheck(SimSeconds cached, SimSeconds recomputed);

  /// A Site leased `drive` to `holder`. The auditor keeps a per-drive holder
  /// ledger, so a lease of a drive another session still holds is a
  /// kLeaseExclusivity violation regardless of what the Site's own free-list
  /// believes — overlapping QuerySessions must partition the drive pool.
  void OnDriveLease(std::string_view drive, std::string_view holder);

  /// A Site took `drive` back from `holder` (empty holder = unknown caller).
  void OnDriveRelease(std::string_view drive, std::string_view holder);

  // --- Results -------------------------------------------------------------

  bool clean() const { return violations_.empty(); }
  const std::vector<AuditViolation>& violations() const { return violations_; }

  /// Total invariant evaluations performed (a run that was never audited
  /// reports 0 — positive tests assert this is > 0 so a silently-unbound
  /// auditor cannot masquerade as a clean one).
  std::uint64_t checks_performed() const { return checks_; }

  /// OK when clean; otherwise kInternal carrying TraceString().
  Status Check() const;

  /// Human-readable, replayable dump of every violation and its intervals.
  std::string TraceString() const;

  /// Forgets violations, counters and per-resource state.
  void Clear();

 private:
  struct ResourceState {
    bool any = false;
    Interval last;
    /// Ring of the most recent intervals, oldest first after Snapshot().
    std::vector<Interval> recent;
    std::size_t ring_pos = 0;
  };

  static constexpr std::size_t kRecentRing = 8;
  /// Violations retained; later ones only bump dropped_violations_.
  static constexpr std::size_t kMaxViolations = 64;

  ResourceState& StateFor(std::string_view resource);
  void Remember(ResourceState& state, Interval interval);
  std::vector<Interval> Snapshot(const ResourceState& state, Interval offending) const;
  void Report(AuditKind kind, std::string_view subject, std::string detail,
              std::vector<Interval> intervals);

  /// Independent fill/evict ledger per extent cache.
  struct CacheLedger {
    BlockCount resident = 0;
  };

  std::map<std::string, ResourceState, std::less<>> resources_;
  std::map<std::string, CacheLedger, std::less<>> caches_;
  /// Per-drive current lease holder (empty value = free).
  std::map<std::string, std::string, std::less<>> drive_holders_;
  std::vector<AuditViolation> violations_;
  std::uint64_t dropped_violations_ = 0;
  std::uint64_t checks_ = 0;
};

}  // namespace tertio::sim
