#pragma once

/// \file resource.h
/// A simulated device timeline.
///
/// Every physical device in the system model of Section 3 — each tape drive,
/// each disk arm, the robot of a tape library, optionally the CPU — is a
/// Resource. A Resource serves operations one at a time, in the order they
/// are issued (a FIFO device queue): an operation issued with ready time `r`
/// and duration `d` starts at max(r, time the previous operation finished)
/// and occupies the device for `d` seconds.
///
/// Concurrency between devices (the paper's "parallel I/O") arises naturally:
/// operations on *different* resources with overlapping intervals proceed in
/// parallel; the join executor threads completion times between them to
/// express data dependencies.
///
/// Because operations are served strictly in issue order, executors must
/// issue operations per resource in their logical order. All join methods in
/// tertio do this by construction (they model sequential device queues).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/interval.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::sim {

class Auditor;

/// The Simulation's O(1) horizon cache. Resources bound to a cell push their
/// operation end times into `max_end`; an individually reset resource cannot
/// recompute the maximum alone, so Reset() marks the cell stale and the
/// owner (Simulation::Horizon()) lazily recomputes from its resources.
struct HorizonCell {
  SimSeconds max_end = 0.0;
  bool stale = false;
};

/// One completed operation, retained when tracing is enabled.
struct OpRecord {
  Interval interval;
  ByteCount bytes = 0;
  /// Short static label, e.g. "tape.read", "disk.write". Callers pass string
  /// literals; the record does not own the storage.
  const char* tag = "";
};

/// Aggregate counters maintained for every resource, trace or no trace.
struct ResourceStats {
  std::uint64_t op_count = 0;
  ByteCount bytes_transferred = 0;
  SimSeconds busy_seconds = 0.0;
  /// End of the last scheduled operation.
  SimSeconds horizon = 0.0;
};

/// A device timeline. Not thread-safe; the simulation is single-threaded by
/// design (deterministic).
class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Schedules an operation that becomes eligible at `ready` and occupies the
  /// device for `duration` seconds. \returns the interval it occupies.
  Interval Schedule(SimSeconds ready, SimSeconds duration, ByteCount bytes = 0,
                    const char* tag = "");

  /// Commits `cycles` repetitions of a fixed cycle of back-to-back operations
  /// as one batch — the device half of the pipeline's coalesced fast path
  /// (pipeline.h). The caller has already replayed the per-operation
  /// recurrence and supplies `hull` = [first operation's start, last
  /// operation's end]; this call updates the timeline and the aggregate
  /// counters exactly as `cycles * cycle_durations.size()` individual
  /// Schedule() calls would have: op_count and bytes gain the full
  /// multiplicity, and busy_seconds accumulates every per-operation duration
  /// in commit order so the float sum is bit-identical to the per-op path.
  /// Requires hull.start >= available_at() (the batch replay started from
  /// this device's live timeline) and tracing disabled (a batch retains no
  /// per-op records).
  Interval ScheduleBatch(std::uint64_t cycles, std::span<const SimSeconds> cycle_durations,
                         std::span<const ByteCount> cycle_bytes, Interval hull,
                         const char* tag = "");

  /// Time at which the device becomes free.
  SimSeconds available_at() const { return available_; }

  const ResourceStats& stats() const { return stats_; }

  /// Fraction of [0, until] the device was busy. `until` defaults to the
  /// device's own horizon.
  double Utilization(SimSeconds until = -1.0) const;

  /// Enables retention of per-operation records (off by default: traces for
  /// multi-GB joins are large).
  void EnableTrace(bool enabled = true) {
    trace_enabled_ = enabled;
    if (enabled && trace_.capacity() == 0) trace_.reserve(kTraceReserve);
  }
  bool trace_enabled() const { return trace_enabled_; }
  const std::vector<OpRecord>& trace() const { return trace_; }

  /// Clears the timeline, statistics and trace. Marks any bound horizon
  /// cell stale so the owning Simulation recomputes its cached horizon
  /// instead of serving a value that includes this resource's old timeline.
  void Reset();

  /// Registers a max-horizon cell maintained on every Schedule() — the
  /// Simulation's O(1) Horizon() cache. The cell must outlive the resource.
  void BindHorizonCell(HorizonCell* cell) { horizon_cell_ = cell; }

  /// Registers a SimSan auditor observing every Schedule()/Reset() (see
  /// sim/auditor.h). Auditing never changes scheduling; a null pointer
  /// detaches. The auditor must outlive the resource.
  void BindAuditor(Auditor* auditor) { auditor_ = auditor; }

 private:
  /// Initial trace capacity: enough for every unit-test and report-tool
  /// trace without regrowth, negligible when tracing stays off.
  static constexpr std::size_t kTraceReserve = 1024;

  std::string name_;
  SimSeconds available_ = 0.0;
  ResourceStats stats_;
  HorizonCell* horizon_cell_ = nullptr;
  Auditor* auditor_ = nullptr;
  bool trace_enabled_ = false;
  std::vector<OpRecord> trace_;
};

}  // namespace tertio::sim
