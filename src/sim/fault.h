#pragma once

/// \file fault.h
/// Deterministic fault injection for the simulated devices.
///
/// The paper's joins run for hours against DLT drives, where media defects
/// and robot glitches are routine; tertio's devices were perfect. A
/// FaultPlan describes, per device class, how imperfect they should be:
///
///  * transient read errors — a read attempt of one block fails with a
///    fixed probability and is retried (reposition + re-read + exponential
///    backoff) up to a bounded number of times, after which the operation
///    fails hard with StatusCode::kDeviceError;
///  * latent bad blocks — a fixed fraction of media *positions* is
///    defective. A defect is a property of the position (stable across
///    retries and re-reads), discovered on first contact: the failed
///    attempt is charged, then the device skip-and-remaps the block to a
///    spare region and never faults there again;
///  * robot exchange failures — a cartridge exchange trip fails with a
///    fixed probability and is re-tried, each failed trip costing a full
///    exchange.
///
/// All randomness flows through one seeded Rng per injector plus a
/// position-keyed hash for bad blocks, so a (plan, workload) pair replays
/// exactly. With every rate at zero — the default — the injectors are never
/// consulted and device timings are bit-identical to a fault-free build.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>

#include "util/rng.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::sim {

/// Fault behaviour of one device class.
struct FaultProfile {
  /// Probability that one block's read attempt fails transiently.
  double transient_read_error_rate = 0.0;
  /// Fraction of media positions carrying a latent defect.
  double bad_block_rate = 0.0;
  /// Probability that one robot exchange trip fails (libraries only).
  double exchange_failure_rate = 0.0;
  /// Bounded retries per fault site before the operation fails hard.
  int max_retries = 4;
  /// Base backoff charged before a retry; doubles per consecutive retry.
  SimSeconds retry_backoff_seconds = 0.1;
  /// Skip-and-remap penalty charged once per discovered bad block.
  SimSeconds remap_seconds = 2.0;

  bool enabled() const {
    return transient_read_error_rate > 0.0 || bad_block_rate > 0.0 ||
           exchange_failure_rate > 0.0;
  }
};

/// One plan for a whole machine: per-class profiles plus the seed.
struct FaultPlan {
  std::uint64_t seed = 1;
  FaultProfile tape;
  FaultProfile disk;
  /// Only the exchange fields of the robot profile are consulted.
  FaultProfile robot;

  bool enabled() const { return tape.enabled() || disk.enabled() || robot.enabled(); }

  /// Parses a comma-separated spec, e.g.
  ///   "seed=7,tape-transient=1e-4,tape-bad=1e-6,disk-transient=1e-5,
  ///    exchange=0.01,retries=4,backoff=0.1,remap=2"
  /// Unknown keys or malformed values are errors.
  static Result<FaultPlan> Parse(std::string_view spec);
};

/// Cumulative fault/recovery counters of one injector.
struct FaultStats {
  std::uint64_t transient_faults = 0;
  std::uint64_t bad_blocks_remapped = 0;
  std::uint64_t exchange_faults = 0;
  /// Bounded re-attempts that recovered (retried reads + retried trips).
  std::uint64_t retries = 0;
  /// Fault sites that exhausted their retries (surfaced as kDeviceError).
  std::uint64_t hard_failures = 0;
  /// Device time spent detecting and recovering from faults.
  SimSeconds recovery_seconds = 0.0;

  std::uint64_t faults() const {
    return transient_faults + bad_blocks_remapped + exchange_faults;
  }

  void Add(const FaultStats& other);
};

/// The per-device fault source. Devices consult it inside their costed
/// operations; it answers with the extra time recovery took (or the point
/// where recovery gave up) and keeps the running FaultStats.
class FaultInjector {
 public:
  FaultInjector(const FaultProfile& profile, std::uint64_t plan_seed, std::string_view device);

  const FaultProfile& profile() const { return profile_; }
  const FaultStats& stats() const { return stats_; }
  const std::string& device() const { return device_; }
  bool enabled() const { return profile_.enabled(); }

  /// Outcome of walking one read request through the fault model.
  struct ReadOutcome {
    /// Recovery time to add to the clean transfer cost (failed attempts,
    /// repositions, backoff, remaps).
    SimSeconds recovery_seconds = 0.0;
    /// Blocks delivered before the walk stopped (== count on success).
    BlockCount clean_blocks = 0;
    bool completed = true;
    /// Media position of the unrecoverable fault when !completed.
    BlockIndex failed_block = 0;
  };

  /// Simulates reading [start, start+count): draws transient faults per
  /// block attempt, discovers latent bad blocks, and prices every recovery
  /// action at `seconds_per_block` (one wasted re-read) plus
  /// `reposition_seconds` (backing the head up) plus backoff.
  ReadOutcome SimulateRead(BlockIndex start, BlockCount count, SimSeconds seconds_per_block,
                           SimSeconds reposition_seconds);

  /// Outcome of one cartridge exchange through the fault model.
  struct ExchangeOutcome {
    /// Failed trips before the successful one (each costs a full exchange).
    int failed_attempts = 0;
    bool completed = true;
  };
  /// `exchange_seconds` is what one trip costs; failed trips are booked as
  /// recovery time (the caller schedules them on the robot resource).
  ExchangeOutcome SimulateExchange(SimSeconds exchange_seconds);

  /// Whether `position` carries a latent (not yet remapped) defect — a pure
  /// function of (plan seed, device, position), so tests can predict it.
  bool IsLatentBadBlock(BlockIndex position) const;

 private:
  FaultProfile profile_;
  std::uint64_t position_salt_;
  std::string device_;
  Rng rng_;
  std::unordered_set<BlockIndex> remapped_;
  FaultStats stats_;
};

}  // namespace tertio::sim
