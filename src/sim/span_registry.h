#pragma once

/// \file span_registry.h
/// The canonical registry of pipeline span (phase) labels.
///
/// Every stage a join method dispatches carries a phase label that ends up
/// in per-phase report tables (exec/report), Gantt timelines and CSV export
/// (sim/trace_report), and the JSON bench schema. A typo'd label silently
/// forks a phase row, so the labels are centralized here and enforced twice:
///
///  - statically by tools/lint/tertio_lint.py, which cross-checks every
///    phase literal in src/join and src/sim (and any special-cased label in
///    trace_report / exec/report) against this registry, in both directions
///    (unknown labels and orphaned registry entries are both findings);
///  - dynamically by SimSan (sim/auditor.h), which flags any stage committed
///    under an unregistered label when an auditor is bound.
///
/// Pipelines constructed without an auditor (unit tests, ad-hoc harnesses)
/// may use any label; the registry governs the join executors.

#include <algorithm>
#include <string_view>

namespace tertio::sim {

/// All phase labels the pipeline engine and the seven join executors emit,
/// sorted lexicographically (binary-searched by IsRegisteredSpan).
inline constexpr std::string_view kRegisteredSpans[] = {
    // tt_methods: tape-to-tape bucket assembly and pairing.
    "assemble-flush",
    "assemble-read",
    "assemble-readback",
    "assemble-write",
    "bucket-ready",
    "pair-sync",
    // join_common: disk-scan consumption (the CPU end of a probe transfer).
    "probe",
    // gh_methods / tt_methods: R-side bucket traffic.
    "r-bucket-read",
    "r-bucket-ready",
    "r-hash-flush",
    "r-hash-read",
    "r-hash-write",
    "r-run-locate",
    "r-run-read",
    // nb_methods: R staging scan.
    "r-scan",
    // pipeline engine: chunk-granular fault recovery marker.
    "recovery:chunk-retry",
    // nb_methods: interleaved double-buffer ring.
    "ring-piece",
    "ring-read",
    "ring-space",
    "ring-write",
    // gh_methods / tt_methods: S-side bucket traffic.
    "s-bucket-read",
    "s-bucket-ready",
    "s-bucket-scan",
    "s-hash-flush",
    "s-hash-read",
    "s-hash-write",
    // nb_methods: streaming S from tape.
    "s-read",
    // gh_methods: slab barriers of the hashed-join inner loop.
    "slab-hashed",
    "slab-joined",
    // join_common: Step I staging (tape -> disk) and its completion event.
    "stage:disk-write",
    "stage:done",
    "stage:tape-read",
    // tt_methods: virtual-origin marker of a pipeline.
    "start",
    // tt_methods: appending assembled buckets to scratch tape.
    "tape-append",
};

/// \returns true when `phase` is a canonical span label.
constexpr bool IsRegisteredSpan(std::string_view phase) {
  return std::binary_search(std::begin(kRegisteredSpans), std::end(kRegisteredSpans), phase);
}

static_assert(std::is_sorted(std::begin(kRegisteredSpans), std::end(kRegisteredSpans)),
              "kRegisteredSpans must stay sorted for binary_search");

}  // namespace tertio::sim
