#include "sim/pipeline.h"

#include <algorithm>

#include "sim/auditor.h"

namespace tertio::sim {

std::size_t SpanTrace::PhaseIndex(std::string_view phase, std::string_view device,
                                  Interval interval) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].phase == phase) return i;
  }
  PhaseSummary summary;
  summary.phase = std::string(phase);
  summary.device = std::string(device);
  summary.window = interval;
  phases_.push_back(std::move(summary));
  return phases_.size() - 1;
}

void SpanTrace::Record(std::string_view phase, std::string_view device, BlockCount blocks,
                       ByteCount bytes, Interval interval) {
  if (retain_) {
    spans_.push_back(Span{std::string(phase), std::string(device), blocks, bytes, interval});
  }
  PhaseSummary& summary = phases_[PhaseIndex(phase, device, interval)];
  if (summary.device != device) summary.device = "";
  summary.stage_count += 1;
  summary.blocks += blocks;
  summary.bytes += bytes;
  summary.busy_seconds += interval.duration();
  summary.window = Interval::Hull(summary.window, interval);
  window_ = has_window_ ? Interval::Hull(window_, interval) : interval;
  has_window_ = true;
}

void SpanTrace::Clear() {
  spans_.clear();
  phases_.clear();
  window_ = Interval{};
  has_window_ = false;
}

SimSeconds Pipeline::ReadyAfter(std::span<const StageId> deps) const {
  SimSeconds ready = start_;
  for (StageId dep : deps) {
    if (dep == kNoStage) continue;
    TERTIO_CHECK(dep < intervals_.size(), "pipeline stage depends on an undispatched stage");
    if (intervals_[dep].end > ready) ready = intervals_[dep].end;
  }
  return ready;
}

StageId Pipeline::Commit(std::string_view phase, std::string_view device, BlockCount blocks,
                         ByteCount bytes, SimSeconds ready, Interval interval) {
  intervals_.push_back(interval);
  if (!any_stage_ || interval.end > horizon_) horizon_ = std::max(horizon_, interval.end);
  any_stage_ = true;
  if (trace_ != nullptr) trace_->Record(phase, device, blocks, bytes, interval);
  if (auditor_ != nullptr) auditor_->OnStage(phase, device, start_, ready, interval);
  return intervals_.size() - 1;
}

Result<StageId> Pipeline::Stage(std::string_view phase, std::string_view device,
                                std::span<const StageId> deps, BlockCount blocks,
                                ByteCount bytes, const StageOp& op) {
  SimSeconds ready = ReadyAfter(deps);
  TERTIO_ASSIGN_OR_RETURN(Interval interval, op(ready));
  return Commit(phase, device, blocks, bytes, ready, interval);
}

Result<StageId> Pipeline::StageWithRetry(std::string_view phase, std::string_view device,
                                         std::span<const StageId> deps, BlockCount blocks,
                                         ByteCount bytes, const StageOp& op, int retry_limit) {
  int attempts = 0;
  for (;;) {
    Result<StageId> stage = Stage(phase, device, deps, blocks, bytes, op);
    if (stage.ok()) return stage;
    // The device model has already charged the failed attempt's time; a
    // kDeviceError is retryable in place. Anything else propagates.
    if (stage.status().code() != StatusCode::kDeviceError || attempts >= retry_limit) {
      return stage;
    }
    ++attempts;
    ++chunk_retries_;
    if (trace_ != nullptr) {
      trace_->Record("recovery:chunk-retry", device, blocks, 0, Interval::At(ReadyAfter(deps)));
    }
  }
}

StageId Pipeline::Event(std::string_view phase, SimSeconds when) {
  SimSeconds at = std::max(start_, when);
  return Commit(phase, "", 0, 0, at, Interval::At(at));
}

StageId Pipeline::Barrier(std::string_view phase, std::span<const StageId> deps) {
  SimSeconds at = ReadyAfter(deps);
  return Commit(phase, "", 0, 0, at, Interval::At(at));
}

Result<Pipeline::TransferResult> Pipeline::Transfer(const TransferPlan& plan,
                                                    BlockSource& source, BlockSink& sink,
                                                    std::span<const StageId> deps) {
  BlockCount chunk = plan.chunk == 0 ? 1 : plan.chunk;
  TransferResult result;
  result.source_done = ReadyAfter(deps);
  result.done = result.source_done;
  std::vector<StageId> read_deps(deps.begin(), deps.end());
  read_deps.push_back(kNoStage);  // slot for the chaining dependency
  // A resumed transfer (checkpoint from an earlier failed attempt) skips
  // chunks that already completed both their read and their write.
  const BlockCount resume_at = plan.checkpoint != nullptr ? plan.checkpoint->completed_blocks : 0;
  // SimSan conservation ledger: every block handed to the source is either
  // sunk (read and write both committed) or dropped to a chunk retry.
  BlockCount issued_blocks = 0;
  BlockCount sunk_blocks = 0;
  BlockCount dropped_blocks = 0;
  for (BlockCount offset = resume_at; offset < plan.total; offset += chunk) {
    BlockCount take = std::min<BlockCount>(chunk, plan.total - offset);
    // Streaming: chunk i+1's read follows read i. Lock-step: it waits for
    // write i (the paper's sequential single-process structure).
    read_deps.back() = plan.streaming ? result.last_read : result.last_write;
    int attempts = 0;
    for (;;) {
      std::vector<BlockPayload> payloads;
      std::vector<BlockPayload>* moved = plan.move_payloads ? &payloads : nullptr;
      issued_blocks += take;
      Result<StageId> read =
          Stage(plan.read_phase, source.device(), std::span<const StageId>(read_deps), take, 0,
                [&](SimSeconds ready) { return source.Read(offset, take, ready, moved); });
      Result<StageId> write = Status::Internal("unreached");
      if (read.ok()) {
        write = Stage(plan.write_phase, sink.device(), {*read}, take, 0,
                      [&](SimSeconds ready) { return sink.Write(offset, take, ready, moved); });
      }
      if (read.ok() && write.ok()) {
        sunk_blocks += take;
        if (result.first_read == kNoStage) result.first_read = *read;
        result.last_read = *read;
        result.last_write = *write;
        result.source_done = end(*read);
        result.done = std::max(result.done, std::max(end(*read), end(*write)));
        break;
      }
      // The device model has already charged the failed attempt's time.
      // A kDeviceError is retryable at chunk granularity: re-issue this
      // chunk's read and write (a failed-mid-chunk read delivered nothing,
      // so the re-read produces the full chunk). Anything else propagates.
      const Status failure = read.ok() ? write.status() : read.status();
      if (failure.code() != StatusCode::kDeviceError || attempts >= plan.chunk_retry_limit) {
        return failure;
      }
      ++attempts;
      ++chunk_retries_;
      dropped_blocks += take;
      if (plan.checkpoint != nullptr) ++plan.checkpoint->chunk_retries;
      // Surface the recovery in the span trace (a marker, not a stage: the
      // failed attempt's device time is inside the device's own timeline).
      if (trace_ != nullptr) {
        trace_->Record("recovery:chunk-retry", source.device(), take, 0,
                       Interval::At(ReadyAfter(std::span<const StageId>(read_deps))));
      }
    }
    if (plan.checkpoint != nullptr) plan.checkpoint->completed_blocks = offset + take;
  }
  // Conservation is audited only for transfers that ran to completion; an
  // aborted transfer returns above with its checkpoint mid-stream.
  if (auditor_ != nullptr) {
    BlockCount expected = plan.total > resume_at ? plan.total - resume_at : 0;
    auditor_->OnTransferEnd(plan.read_phase, expected, sunk_blocks, issued_blocks,
                            dropped_blocks);
  }
  return result;
}

Result<Interval> CollectSink::Write(BlockCount offset, BlockCount count, SimSeconds ready,
                                    std::vector<BlockPayload>* payloads) {
  (void)offset;
  (void)count;
  if (out_ != nullptr && payloads != nullptr) {
    out_->insert(out_->end(), payloads->begin(), payloads->end());
  }
  return Interval::At(ready);
}

}  // namespace tertio::sim
