#include "sim/pipeline.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/auditor.h"
#include "sim/closed_form.h"
#include "sim/resource.h"

namespace tertio::sim {

void DurationRunList::Append(SimSeconds value) {
  values_.push_back(value);
  if (!runs_.empty()) {
    Run& tail = runs_.back();
    // Extend an open scalar tail run instead of opening a run per term.
    if (tail.repeats == 1 &&
        static_cast<std::size_t>(tail.offset) + tail.length == values_.size() - 1) {
      ++tail.length;
      ++terms_;
      return;
    }
  }
  runs_.push_back(Run{static_cast<std::uint32_t>(values_.size() - 1), 1, 1});
  ++terms_;
}

void DurationRunList::AppendRun(std::span<const SimSeconds> pattern, std::uint64_t repeats) {
  if (pattern.empty() || repeats == 0) return;
  const auto offset = static_cast<std::uint32_t>(values_.size());
  values_.insert(values_.end(), pattern.begin(), pattern.end());
  runs_.push_back(Run{offset, static_cast<std::uint32_t>(pattern.size()), repeats});
  terms_ += pattern.size() * repeats;
}

SimSeconds DurationRunList::Accumulate(SimSeconds acc) const {
  for (const Run& run : runs_) {
    const std::span<const SimSeconds> pattern(values_.data() + run.offset, run.length);
    if (run.repeats == 1) {
      for (SimSeconds d : pattern) acc += d;
    } else {
      acc = IteratedAddCycle(acc, pattern, run.repeats);
    }
  }
  return acc;
}

std::size_t SpanTrace::PhaseIndex(std::string_view phase, std::string_view device,
                                  Interval interval) {
  auto pos = std::lower_bound(
      by_phase_.begin(), by_phase_.end(), phase,
      [this](std::uint32_t index, std::string_view label) { return phases_[index].phase < label; });
  if (pos != by_phase_.end() && phases_[*pos].phase == phase) return *pos;
  PhaseSummary summary;
  summary.phase = std::string(phase);
  summary.device = std::string(device);
  summary.window = interval;
  phases_.push_back(std::move(summary));
  by_phase_.insert(pos, static_cast<std::uint32_t>(phases_.size() - 1));
  return phases_.size() - 1;
}

void SpanTrace::Record(std::string_view phase, std::string_view device, BlockCount blocks,
                       ByteCount bytes, Interval interval) {
  if (retain_) {
    spans_.push_back(Span{std::string(phase), std::string(device), blocks, bytes, interval});
  }
  PhaseSummary& summary = phases_[PhaseIndex(phase, device, interval)];
  if (summary.device != device) summary.device = "";
  summary.stage_count += 1;
  summary.blocks += blocks;
  summary.bytes += bytes;
  summary.busy_seconds += interval.duration();
  summary.window = Interval::Hull(summary.window, interval);
  window_ = has_window_ ? Interval::Hull(window_, interval) : interval;
  has_window_ = true;
}

void SpanTrace::RecordBatch(std::string_view phase, std::string_view device, BlockCount blocks,
                            ByteCount bytes, Interval hull, std::uint64_t stages,
                            const DurationRunList& stage_durations) {
  TERTIO_CHECK(!retain_, "a coalesced batch cannot be recorded into a retained span list");
  TERTIO_CHECK(stage_durations.terms() == stages,
               "a coalesced batch needs one duration term per stage");
  PhaseSummary& summary = phases_[PhaseIndex(phase, device, hull)];
  if (summary.device != device) summary.device = "";
  summary.stage_count += stages;
  summary.blocks += blocks;
  summary.bytes += bytes;
  // The phase's busy accumulator must see the same float additions, in the
  // same order, as `stages` individual Record() calls; run-compressed terms
  // replay through the exact closed form.
  summary.busy_seconds = stage_durations.Accumulate(summary.busy_seconds);
  summary.window = Interval::Hull(summary.window, hull);
  window_ = has_window_ ? Interval::Hull(window_, hull) : hull;
  has_window_ = true;
}

void SpanTrace::Clear() {
  spans_.clear();
  phases_.clear();
  by_phase_.clear();
  window_ = Interval{};
  has_window_ = false;
}

ChunkCostProfile ChunkCostProfile::Free(std::uint64_t max_chunks) {
  ChunkCostProfile profile;
  profile.chunks = max_chunks;
  profile.cycle = 1;
  profile.ops_per_chunk = {0};
  return profile;
}

SimSeconds Pipeline::ReadyAfter(std::span<const StageId> deps) const {
  SimSeconds ready = start_;
  for (StageId dep : deps) {
    if (dep == kNoStage) continue;
    TERTIO_CHECK(dep < intervals_.size(), "pipeline stage depends on an undispatched stage");
    if (intervals_[dep].end > ready) ready = intervals_[dep].end;
  }
  return ready;
}

StageId Pipeline::Commit(std::string_view phase, std::string_view device, BlockCount blocks,
                         ByteCount bytes, SimSeconds ready, Interval interval) {
  intervals_.push_back(interval);
  if (!any_stage_ || interval.end > horizon_) horizon_ = std::max(horizon_, interval.end);
  any_stage_ = true;
  if (trace_ != nullptr) trace_->Record(phase, device, blocks, bytes, interval);
  if (auditor_ != nullptr) auditor_->OnStage(phase, device, start_, ready, interval);
  return intervals_.size() - 1;
}

StageId Pipeline::CommitBatch(std::string_view phase, std::string_view device,
                              BlockCount blocks, ByteCount bytes, SimSeconds ready,
                              Interval hull, std::uint64_t stages,
                              const DurationRunList& stage_durations) {
  intervals_.push_back(hull);
  if (!any_stage_ || hull.end > horizon_) horizon_ = std::max(horizon_, hull.end);
  any_stage_ = true;
  if (trace_ != nullptr) {
    trace_->RecordBatch(phase, device, blocks, bytes, hull, stages, stage_durations);
  }
  if (auditor_ != nullptr) auditor_->OnStageBatch(phase, device, start_, ready, hull, stages);
  return intervals_.size() - 1;
}

Result<StageId> Pipeline::Stage(std::string_view phase, std::string_view device,
                                std::span<const StageId> deps, BlockCount blocks,
                                ByteCount bytes, const StageOp& op) {
  SimSeconds ready = ReadyAfter(deps);
  TERTIO_ASSIGN_OR_RETURN(Interval interval, op(ready));
  return Commit(phase, device, blocks, bytes, ready, interval);
}

Result<StageId> Pipeline::StageWithRetry(std::string_view phase, std::string_view device,
                                         std::span<const StageId> deps, BlockCount blocks,
                                         ByteCount bytes, const StageOp& op, int retry_limit) {
  int attempts = 0;
  for (;;) {
    Result<StageId> stage = Stage(phase, device, deps, blocks, bytes, op);
    if (stage.ok()) return stage;
    // The device model has already charged the failed attempt's time; a
    // kDeviceError is retryable in place. Anything else propagates.
    if (stage.status().code() != StatusCode::kDeviceError || attempts >= retry_limit) {
      return stage;
    }
    ++attempts;
    ++chunk_retries_;
    if (trace_ != nullptr) {
      trace_->Record("recovery:chunk-retry", device, blocks, 0, Interval::At(ReadyAfter(deps)));
    }
  }
}

StageId Pipeline::Event(std::string_view phase, SimSeconds when) {
  SimSeconds at = std::max(start_, when);
  return Commit(phase, "", 0, 0, at, Interval::At(at));
}

StageId Pipeline::Barrier(std::string_view phase, std::span<const StageId> deps) {
  SimSeconds at = ReadyAfter(deps);
  return Commit(phase, "", 0, 0, at, Interval::At(at));
}

namespace {

std::uint64_t Gcd(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Structural validity of a CostProfile answer. A malformed profile (an
/// endpoint bug) silently falls back to the always-correct per-chunk path.
bool ProfileShapeOk(const ChunkCostProfile& p) {
  if (p.chunks == 0 || p.cycle == 0 || p.chunks % p.cycle != 0) return false;
  if (p.ops_per_chunk.size() != static_cast<std::size_t>(p.cycle)) return false;
  std::size_t total = 0;
  for (std::uint32_t count : p.ops_per_chunk) total += count;
  if (total != p.ops.size()) return false;
  for (const ChunkCostProfile::Op& op : p.ops) {
    if (op.resource == nullptr || !(op.seconds >= 0.0)) return false;
  }
  return true;
}

}  // namespace

std::uint64_t Pipeline::CoalesceChunks(const TransferPlan& plan, BlockSource& source,
                                    BlockSink& sink, std::span<const StageId> deps,
                                    BlockCount offset, BlockCount chunk, std::uint64_t want,
                                    TransferResult& result) {
  ChunkCostProfile src = source.CostProfile(offset, chunk, want);
  if (!ProfileShapeOk(src)) return 0;
  ChunkCostProfile snk = sink.CostProfile(offset, chunk, want);
  if (!ProfileShapeOk(snk)) return 0;
  // The batch must cover whole pattern periods of both endpoints.
  const std::uint64_t period = src.cycle / Gcd(src.cycle, snk.cycle) * snk.cycle;
  std::uint64_t n = std::min({want, src.chunks, snk.chunks});
  n -= n % period;
  if (n < 2) return 0;

  // Map every cycle op to a slot holding the live timeline of its resource.
  // A resource may appear several times within a cycle (multiple pieces of
  // one striped chunk) but never on both sides: the per-chunk schedule
  // interleaves read and write operations on a shared device, which the
  // two-sided batched replay cannot reproduce.
  struct Slot {
    Resource* resource = nullptr;
    SimSeconds available = 0.0;
    SimSeconds first_start = 0.0;
    bool read_side = false;
    bool any = false;
  };
  std::vector<Slot> slots;
  auto slot_for = [&slots](Resource* resource, bool read_side) -> int {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].resource == resource) {
        return slots[i].read_side == read_side ? static_cast<int>(i) : -1;
      }
    }
    // A per-op trace cannot be reconstructed from a batch.
    if (resource->trace_enabled()) return -1;
    slots.push_back(Slot{resource, resource->available_at(), 0.0, read_side, false});
    return static_cast<int>(slots.size() - 1);
  };
  std::vector<int> src_slot(src.ops.size());
  std::vector<int> snk_slot(snk.ops.size());
  for (std::size_t i = 0; i < src.ops.size(); ++i) {
    if ((src_slot[i] = slot_for(src.ops[i].resource, true)) < 0) return 0;
  }
  for (std::size_t i = 0; i < snk.ops.size(); ++i) {
    if ((snk_slot[i] = slot_for(snk.ops[i].resource, false)) < 0) return 0;
  }

  auto prefix_of = [](const ChunkCostProfile& p) {
    std::vector<std::size_t> prefix(p.ops_per_chunk.size() + 1, 0);
    for (std::size_t i = 0; i < p.ops_per_chunk.size(); ++i) {
      prefix[i + 1] = prefix[i] + p.ops_per_chunk[i];
    }
    return prefix;
  };
  const std::vector<std::size_t> src_prefix = prefix_of(src);
  const std::vector<std::size_t> snk_prefix = prefix_of(snk);

  // --- The steady-state recurrence -----------------------------------------
  // Replay, in plain scalar arithmetic, exactly the float operations the
  // per-chunk loop would have issued: chunk k's read becomes ready at the
  // chain end (read k-1 streaming, write k-1 lock-step) floored at the
  // transfer's base ready; each device op starts at max(ready, device
  // available) and occupies its constant duration; a chunk's interval is the
  // hull of its ops (or a zero-length interval at ready for a free
  // endpoint). Nothing is committed until the whole run is replayed.
  const SimSeconds base_ready = ReadyAfter(deps);
  bool have_read = result.last_read != kNoStage;
  bool have_write = result.last_write != kNoStage;
  SimSeconds read_chain = have_read ? end(result.last_read) : 0.0;
  SimSeconds write_chain = have_write ? end(result.last_write) : 0.0;

  DurationRunList read_durations;
  DurationRunList write_durations;

  // Guard state of the closed-form jump (see DESIGN.md §5.1). While a
  // verification period replays, every computed operation end is observed:
  // the jump translates the whole recurrence state by 2^t * delta, which is
  // exact and rounding-equivalent only if, for every observed value r, the
  // shift is an even multiple of r's ulp (round-half-even decisions at exact
  // ties survive even grid translations) and r stays inside its binade.
  struct JumpWatch {
    SimSeconds delta = 0.0;
    int lsb = 0;  // delta = odd * 2^lsb
    bool ok = false;
    int t_min = 0;                     // jump size 2^t needs t >= t_min
    std::uint64_t max_jump = ~0ull >> 1;  // headroom bound on 2^t
    bool active = false;

    void Arm(SimSeconds d) {
      active = true;
      t_min = 0;
      max_jump = ~0ull >> 1;
      delta = d;
      ok = d > 0.0 && d >= 0x1p-1021 && std::isfinite(d.value()) && std::ilogb(d.value()) < 1023;
      if (!ok) return;
      const int e = std::ilogb(d.value());
      const auto mantissa = static_cast<std::uint64_t>(std::ldexp(d.value(), 52 - e));
      lsb = e - 52 + std::countr_zero(mantissa);
    }
    void Observe(SimSeconds r) {
      if (!active || !ok) return;
      if (!(r >= 0x1p-1021)) {  // degenerate near-zero time: no grid to argue on
        ok = false;
        return;
      }
      const int e = std::ilogb(r.value());
      if (e >= 1023) {
        ok = false;
        return;
      }
      // Parity: 2^t * delta must be a multiple of 2 * ulp(r) = 2^{e-51}.
      const int need = (e - 51) - lsb;
      if (need > t_min) t_min = need;
      // Headroom: r + 2^t * delta must stay below 2^{e+1} (margin 2 strides;
      // the division's rounding can overstate the quotient by at most one).
      const SimSeconds top = std::ldexp(1.0, e + 1);
      std::uint64_t room = static_cast<std::uint64_t>((top - r) / delta);
      room = room > 2 ? room - 2 : 0;
      if (room < max_jump) max_jump = room;
    }
  };
  JumpWatch watch;

  auto run_chunk_ops = [&slots, &watch](const ChunkCostProfile& p,
                                        const std::vector<std::size_t>& prefix,
                                        const std::vector<int>& op_slot, std::uint64_t k,
                                        SimSeconds ready) {
    const std::size_t cyc = static_cast<std::size_t>(k % p.cycle);
    const std::size_t first = prefix[cyc];
    const std::size_t last = prefix[cyc + 1];
    if (first == last) return Interval::At(ready);
    Interval hull;
    for (std::size_t i = first; i < last; ++i) {
      Slot& slot = slots[static_cast<std::size_t>(op_slot[i])];
      SimSeconds start = ready > slot.available ? ready : slot.available;
      Interval interval{start, start + p.ops[i].seconds};
      slot.available = interval.end;
      if (!slot.any) {
        slot.first_start = start;
        slot.any = true;
      }
      if (watch.active) watch.Observe(interval.end);
      hull = i == first ? interval : Interval::Hull(hull, interval);
    }
    return hull;
  };

  Interval read_hull;
  Interval write_hull;
  SimSeconds first_read_ready = 0.0;
  SimSeconds first_write_ready = 0.0;
  std::uint64_t k = 0;
  // Duration patterns of the current verification period (one term per
  // chunk); `capture` routes replay_chunk's outputs into them.
  std::vector<SimSeconds> pattern_read;
  std::vector<SimSeconds> pattern_write;
  bool capture_pattern = false;

  auto replay_chunk = [&]() {
    SimSeconds ready = base_ready;
    if (plan.streaming) {
      if (have_read && read_chain > ready) ready = read_chain;
    } else {
      if (have_write && write_chain > ready) ready = write_chain;
    }
    Interval read_iv = run_chunk_ops(src, src_prefix, src_slot, k, ready);
    read_durations.Append(read_iv.duration());
    if (capture_pattern) pattern_read.push_back(read_iv.duration());
    read_hull = k == 0 ? read_iv : Interval::Hull(read_hull, read_iv);
    have_read = true;
    read_chain = read_iv.end;
    // The write's ready is its read's end (ReadyAfter({read}), which the
    // chain structure guarantees is at or after the pipeline origin).
    Interval write_iv = run_chunk_ops(snk, snk_prefix, snk_slot, k, read_iv.end);
    write_durations.Append(write_iv.duration());
    if (capture_pattern) pattern_write.push_back(write_iv.duration());
    write_hull = k == 0 ? write_iv : Interval::Hull(write_hull, write_iv);
    have_write = true;
    write_chain = write_iv.end;
    if (k == 0) {
      first_read_ready = ready;
      first_write_ready = read_iv.end;
    }
    ++k;
  };
  auto replay_periods = [&](std::uint64_t count) {
    for (std::uint64_t c = 0; c < count * period; ++c) replay_chunk();
  };

  if (!plan.closed_form_commit) {
    // The O(chunks) reference: replay every chunk of the window scalar.
    replay_periods(n / period);
  } else {
    // Closed-form commit: replay scalar until two consecutive periods are
    // related by one exact uniform translation delta (every recurrence-state
    // component advanced by delta, each addition exact), then jump 2^t
    // periods by translating the state — valid by induction because every
    // value the jumped periods would compute is an even-grid translation of
    // a value observed in the verified period (JumpWatch above). Any failed
    // check falls back to scalar replay with exponential backoff, which is
    // always correct.
    std::vector<SimSeconds> state_a;
    std::vector<SimSeconds> state_b;
    auto snapshot = [&](std::vector<SimSeconds>& out) {
      out.clear();
      for (const Slot& slot : slots) out.push_back(slot.available);
      out.push_back(read_chain);
      out.push_back(write_chain);
    };
    // Exact uniform translation: b[i] == a[i] + delta with a TwoSum error of
    // zero (the addition is exact, not merely round-tripping).
    auto translated = [](const std::vector<SimSeconds>& a, const std::vector<SimSeconds>& b,
                         SimSeconds delta) {
      for (std::size_t i = 0; i < a.size(); ++i) {
        const SimSeconds sum = a[i] + delta;
        if (sum != b[i]) return false;
        const SimSeconds db = sum - a[i];
        const SimSeconds err = (delta - db) + (a[i] - (sum - db));
        if (err != 0.0) return false;
      }
      return true;
    };
    std::uint64_t backoff = 1;
    while (k < n) {
      std::uint64_t remaining = (n - k) / period;
      if (remaining < 4) {
        replay_periods(remaining);
        break;
      }
      snapshot(state_a);
      replay_periods(1);
      snapshot(state_b);
      remaining -= 1;
      const SimSeconds delta = state_b.back() - state_a.back();
      if (!(delta >= 0.0) || !std::isfinite(delta.value()) || !translated(state_a, state_b, delta)) {
        const std::uint64_t step = std::min<std::uint64_t>(backoff, remaining);
        replay_periods(step);
        if (backoff < 64) backoff *= 2;
        continue;
      }
      if (delta == 0.0) {
        // Frozen steady state: every further period replays the recurrence
        // from an identical state, so the remaining periods repeat the last
        // period's durations with no state change at all.
        capture_pattern = true;
        pattern_read.clear();
        pattern_write.clear();
        replay_periods(1);
        capture_pattern = false;
        remaining -= 1;
        snapshot(state_a);
        if (!translated(state_b, state_a, 0.0)) continue;  // not frozen after all
        read_durations.AppendRun(pattern_read, remaining);
        write_durations.AppendRun(pattern_write, remaining);
        k += remaining * period;
        break;
      }
      // Watched verification period: guards accumulate over every computed
      // value, and the period's durations become the jump's repeat pattern.
      watch.Arm(delta);
      capture_pattern = true;
      pattern_read.clear();
      pattern_write.clear();
      replay_periods(1);
      capture_pattern = false;
      watch.active = false;
      remaining -= 1;
      snapshot(state_a);
      if (!watch.ok || !translated(state_b, state_a, delta)) {
        const std::uint64_t step = std::min<std::uint64_t>(backoff, remaining);
        replay_periods(step);
        if (backoff < 64) backoff *= 2;
        continue;
      }
      const std::uint64_t cap = std::min<std::uint64_t>(watch.max_jump, remaining);
      int t = watch.t_min;
      if (t > 62 || cap == 0 || (std::uint64_t{1} << t) > cap) {
        const std::uint64_t step = std::min<std::uint64_t>(backoff, remaining);
        replay_periods(step);
        if (backoff < 64) backoff *= 2;
        continue;
      }
      while (t < 62 && (std::uint64_t{2} << t) <= cap) ++t;
      const std::uint64_t jump = std::uint64_t{1} << t;
      const SimSeconds shift = std::ldexp(delta.value(), t);  // exact power-of-two scale
      for (Slot& slot : slots) slot.available += shift;
      read_chain += shift;
      write_chain += shift;
      // Chunk interval ends are monotone along the window, so the hull ends
      // are exactly the (translated) chain ends.
      read_hull.end = read_chain;
      write_hull.end = write_chain;
      read_durations.AppendRun(pattern_read, jump);
      write_durations.AppendRun(pattern_write, jump);
      k += jump * period;
      backoff = 1;
    }
  }

  // --- Commit --------------------------------------------------------------
  // Device timelines first: one batch per resource. Each resource is
  // single-side, so its own operation order (its cycle durations repeated
  // n / period times) matches the per-chunk schedule exactly.
  struct SlotBatch {
    std::vector<SimSeconds> durations;
    std::vector<ByteCount> bytes;
    const char* tag = "";
  };
  std::vector<SlotBatch> batches(slots.size());
  for (std::uint64_t k = 0; k < period; ++k) {
    auto fold = [&batches, k](const ChunkCostProfile& p,
                              const std::vector<std::size_t>& prefix,
                              const std::vector<int>& op_slot) {
      const std::size_t cyc = static_cast<std::size_t>(k % p.cycle);
      for (std::size_t i = prefix[cyc]; i < prefix[cyc + 1]; ++i) {
        SlotBatch& batch = batches[static_cast<std::size_t>(op_slot[i])];
        batch.durations.push_back(p.ops[i].seconds);
        batch.bytes.push_back(p.ops[i].bytes);
        batch.tag = p.ops[i].tag;
      }
    };
    fold(src, src_prefix, src_slot);
    fold(snk, snk_prefix, snk_slot);
  }
  const std::uint64_t cycles = n / period;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].any) continue;
    slots[i].resource->ScheduleBatch(cycles, batches[i].durations, batches[i].bytes,
                                     Interval{slots[i].first_start, slots[i].available},
                                     batches[i].tag);
  }
  if (src.commit) src.commit(n);
  if (snk.commit) snk.commit(n);

  // Two batched stages, in the order the per-chunk loop first records the
  // phases (read before write).
  StageId read_stage = CommitBatch(plan.read_phase, source.device(), n * chunk, 0,
                                   first_read_ready, read_hull, n, read_durations);
  StageId write_stage = CommitBatch(plan.write_phase, sink.device(), n * chunk, 0,
                                    first_write_ready, write_hull, n, write_durations);
  if (result.first_read == kNoStage) result.first_read = read_stage;
  result.last_read = read_stage;
  result.last_write = write_stage;
  result.source_done = end(read_stage);
  result.done = std::max(result.done, std::max(read_hull.end, write_hull.end));
  coalesced_chunks_ += n;
  return n;
}

Result<Pipeline::TransferResult> Pipeline::Transfer(const TransferPlan& plan,
                                                    BlockSource& source, BlockSink& sink,
                                                    std::span<const StageId> deps) {
  BlockCount chunk = plan.chunk == 0 ? 1 : plan.chunk;
  TransferResult result;
  result.source_done = ReadyAfter(deps);
  result.done = result.source_done;
  std::vector<StageId> read_deps(deps.begin(), deps.end());
  read_deps.push_back(kNoStage);  // slot for the chaining dependency
  // A resumed transfer (checkpoint from an earlier failed attempt) skips
  // chunks that already completed both their read and their write.
  const BlockCount resume_at = plan.checkpoint != nullptr ? plan.checkpoint->completed_blocks : 0;
  // SimSan conservation ledger: every block handed to the source is either
  // sunk (read and write both committed) or dropped to a chunk retry.
  BlockCount issued_blocks = 0;
  BlockCount sunk_blocks = 0;
  BlockCount dropped_blocks = 0;
  // The coalesced fast path needs a plan with no per-chunk obligations:
  // payload movement and checkpoints demand per-chunk work, retained spans
  // demand per-chunk records, and distinct phases keep the batched
  // busy-seconds accumulation order identical to the interleaved per-chunk
  // one (reads and writes land in different phase summaries).
  const bool plan_coalescible = plan.allow_coalescing && plan.checkpoint == nullptr &&
                                !plan.move_payloads && plan.read_phase != plan.write_phase &&
                                (trace_ == nullptr || !trace_->retain());
  for (BlockCount offset = resume_at; offset < plan.total; offset += chunk) {
    BlockCount take = std::min<BlockCount>(chunk, plan.total - offset);
    // Re-attempt coalescing at every full-chunk offset: ineligible windows
    // (a cold head position, a fresh allocation's first seek, a fault plan)
    // run per-chunk below and the steady state re-arms after them.
    if (plan_coalescible && take == chunk) {
      std::uint64_t want = (plan.total - offset) / chunk;
      if (want >= 2) {
        std::uint64_t did = CoalesceChunks(plan, source, sink, deps, offset, chunk, want, result);
        if (did > 0) {
          issued_blocks += did * chunk;
          sunk_blocks += did * chunk;
          if (plan.checkpoint != nullptr) plan.checkpoint->completed_blocks = offset + did * chunk;
          offset += (did - 1) * chunk;
          continue;
        }
      }
    }
    // Streaming: chunk i+1's read follows read i. Lock-step: it waits for
    // write i (the paper's sequential single-process structure).
    read_deps.back() = plan.streaming ? result.last_read : result.last_write;
    int attempts = 0;
    for (;;) {
      std::vector<BlockPayload> payloads;
      std::vector<BlockPayload>* moved = plan.move_payloads ? &payloads : nullptr;
      issued_blocks += take;
      Result<StageId> read =
          Stage(plan.read_phase, source.device(), std::span<const StageId>(read_deps), take, 0,
                [&](SimSeconds ready) { return source.Read(offset, take, ready, moved); });
      Result<StageId> write = Status::Internal("unreached");
      if (read.ok()) {
        write = Stage(plan.write_phase, sink.device(), {*read}, take, 0,
                      [&](SimSeconds ready) { return sink.Write(offset, take, ready, moved); });
      }
      if (read.ok() && write.ok()) {
        sunk_blocks += take;
        if (result.first_read == kNoStage) result.first_read = *read;
        result.last_read = *read;
        result.last_write = *write;
        result.source_done = end(*read);
        result.done = std::max(result.done, std::max(end(*read), end(*write)));
        break;
      }
      // The device model has already charged the failed attempt's time.
      // A kDeviceError is retryable at chunk granularity: re-issue this
      // chunk's read and write (a failed-mid-chunk read delivered nothing,
      // so the re-read produces the full chunk). Anything else propagates.
      const Status failure = read.ok() ? write.status() : read.status();
      if (failure.code() != StatusCode::kDeviceError || attempts >= plan.chunk_retry_limit) {
        return failure;
      }
      ++attempts;
      ++chunk_retries_;
      dropped_blocks += take;
      if (plan.checkpoint != nullptr) ++plan.checkpoint->chunk_retries;
      // Surface the recovery in the span trace (a marker, not a stage: the
      // failed attempt's device time is inside the device's own timeline).
      if (trace_ != nullptr) {
        trace_->Record("recovery:chunk-retry", source.device(), take, 0,
                       Interval::At(ReadyAfter(std::span<const StageId>(read_deps))));
      }
    }
    if (plan.checkpoint != nullptr) plan.checkpoint->completed_blocks = offset + take;
  }
  // Conservation is audited only for transfers that ran to completion; an
  // aborted transfer returns above with its checkpoint mid-stream.
  if (auditor_ != nullptr) {
    BlockCount expected = plan.total > resume_at ? plan.total - resume_at : 0;
    auditor_->OnTransferEnd(plan.read_phase, expected, sunk_blocks, issued_blocks,
                            dropped_blocks);
  }
  return result;
}

Result<Interval> CollectSink::Write(BlockCount offset, BlockCount count, SimSeconds ready,
                                    std::vector<BlockPayload>* payloads) {
  (void)offset;
  (void)count;
  if (out_ != nullptr && payloads != nullptr) {
    out_->insert(out_->end(), payloads->begin(), payloads->end());
  }
  return Interval::At(ready);
}

}  // namespace tertio::sim
