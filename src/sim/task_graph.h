#pragma once

/// \file task_graph.h
/// Declarative scheduling of dependent operations onto resources.
///
/// Most tertio join executors thread completion times imperatively, but some
/// pipelines (and several tests and ablations) are easier to express as an
/// explicit DAG: each task names a resource, a duration, and the tasks that
/// must finish before it may start. TaskGraph::Run computes the resulting
/// schedule with list scheduling in task-insertion order, which matches the
/// FIFO device-queue semantics of Resource.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/resource.h"
#include "util/status.h"

namespace tertio::sim {

using TaskId = std::size_t;

/// A DAG of operations over a set of resources.
class TaskGraph {
 public:
  /// Adds a task occupying `resource` for `duration` seconds once all `deps`
  /// have finished. Dependencies must refer to previously added tasks.
  /// `action`, if provided, runs when the task is dispatched (in dependency
  /// order) — this is where executors perform the real data movement.
  TaskId Add(Resource* resource, SimSeconds duration, std::vector<TaskId> deps,
             const char* tag = "", std::function<void()> action = nullptr,
             ByteCount bytes = 0);

  /// Schedules every task. Tasks are dispatched in insertion order; a task's
  /// start is max(finish of deps, resource availability). \returns the
  /// makespan (latest finish time), or an error for malformed dependencies.
  Result<SimSeconds> Run();

  /// Interval assigned to `id` by Run().
  Interval interval(TaskId id) const { return tasks_[id].interval; }

  std::size_t size() const { return tasks_.size(); }

 private:
  struct Task {
    Resource* resource;
    SimSeconds duration;
    std::vector<TaskId> deps;
    const char* tag;
    std::function<void()> action;
    ByteCount bytes;
    Interval interval;
  };
  std::vector<Task> tasks_;
};

}  // namespace tertio::sim
