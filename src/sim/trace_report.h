#pragma once

/// \file trace_report.h
/// Rendering device traces: ASCII Gantt timelines and CSV export.
///
/// Requires EnableTrace() on the resources of interest before the run. The
/// Gantt view makes the parallel-I/O structure of the concurrent join
/// methods visible at a glance: overlapping busy spans on the tape and disk
/// rows are exactly the overlap the methods exist to create.

#include <ostream>
#include <string>

#include "sim/pipeline.h"
#include "sim/simulation.h"

namespace tertio::sim {

/// Options for the ASCII timeline.
struct GanttOptions {
  /// Window rendered; end <= start means [0, horizon].
  SimSeconds window_start = 0.0;
  SimSeconds window_end = 0.0;
  /// Character cells across the window.
  int width = 100;
};

/// Renders one row per traced resource; '#' cells are >=50% busy, '+' cells
/// partially busy, '.' idle. Resources without traces render as "(no
/// trace)".
std::string RenderGantt(const Simulation& sim, const GanttOptions& options = {});

/// Writes "resource,tag,start,end,bytes" rows for every traced operation.
void WriteTraceCsv(const Simulation& sim, std::ostream& out);

/// Renders a pipeline span trace as one Gantt row per phase — the
/// per-method phase timeline (Figure 4 generalized to every join method).
/// Uses individual spans when the trace retained them, otherwise each
/// phase's busy time is spread uniformly over its window (marked '~').
std::string RenderSpanGantt(const SpanTrace& trace, const GanttOptions& options = {});

/// Writes "phase,device,start,end,blocks,bytes" rows for every retained
/// span (falls back to one summary row per phase when spans were not
/// retained).
void WriteSpanCsv(const SpanTrace& trace, std::ostream& out);

}  // namespace tertio::sim
