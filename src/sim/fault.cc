#include "sim/fault.h"

#include <charconv>
#include <cstdlib>
#include <string>

namespace tertio::sim {

void FaultStats::Add(const FaultStats& other) {
  transient_faults += other.transient_faults;
  bad_blocks_remapped += other.bad_blocks_remapped;
  exchange_faults += other.exchange_faults;
  retries += other.retries;
  hard_failures += other.hard_failures;
  recovery_seconds += other.recovery_seconds;
}

namespace {

Result<double> ParseDouble(std::string_view key, std::string_view text) {
  // std::from_chars<double> is spotty across standard libraries; strtod on a
  // NUL-terminated copy is portable and accepts the same "1e-4" spellings.
  std::string buf(text);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) {
    return Status::InvalidArgument("faults: bad value for '" + std::string(key) + "': '" +
                                   buf + "'");
  }
  return value;
}

Result<std::uint64_t> ParseUint(std::string_view key, std::string_view text) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("faults: bad value for '" + std::string(key) + "': '" +
                                   std::string(text) + "'");
  }
  return value;
}

Result<double> ParseRate(std::string_view key, std::string_view text) {
  TERTIO_ASSIGN_OR_RETURN(double value, ParseDouble(key, text));
  if (value < 0.0 || value > 1.0) {
    return Status::InvalidArgument("faults: '" + std::string(key) +
                                   "' must be a probability in [0, 1]");
  }
  return value;
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view() : rest.substr(comma + 1);
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("faults: expected key=value, got '" + std::string(item) +
                                     "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);

    if (key == "seed") {
      TERTIO_ASSIGN_OR_RETURN(plan.seed, ParseUint(key, value));
    } else if (key == "tape-transient") {
      TERTIO_ASSIGN_OR_RETURN(plan.tape.transient_read_error_rate, ParseRate(key, value));
    } else if (key == "tape-bad") {
      TERTIO_ASSIGN_OR_RETURN(plan.tape.bad_block_rate, ParseRate(key, value));
    } else if (key == "disk-transient") {
      TERTIO_ASSIGN_OR_RETURN(plan.disk.transient_read_error_rate, ParseRate(key, value));
    } else if (key == "disk-bad") {
      TERTIO_ASSIGN_OR_RETURN(plan.disk.bad_block_rate, ParseRate(key, value));
    } else if (key == "exchange") {
      TERTIO_ASSIGN_OR_RETURN(plan.robot.exchange_failure_rate, ParseRate(key, value));
    } else if (key == "retries") {
      TERTIO_ASSIGN_OR_RETURN(std::uint64_t retries, ParseUint(key, value));
      plan.tape.max_retries = static_cast<int>(retries);
      plan.disk.max_retries = static_cast<int>(retries);
      plan.robot.max_retries = static_cast<int>(retries);
    } else if (key == "backoff") {
      TERTIO_ASSIGN_OR_RETURN(double backoff, ParseDouble(key, value));
      if (backoff < 0.0) return Status::InvalidArgument("faults: 'backoff' must be >= 0");
      plan.tape.retry_backoff_seconds = backoff;
      plan.disk.retry_backoff_seconds = backoff;
    } else if (key == "remap") {
      TERTIO_ASSIGN_OR_RETURN(double remap, ParseDouble(key, value));
      if (remap < 0.0) return Status::InvalidArgument("faults: 'remap' must be >= 0");
      plan.tape.remap_seconds = remap;
      plan.disk.remap_seconds = remap;
    } else {
      return Status::InvalidArgument("faults: unknown key '" + std::string(key) + "'");
    }
  }
  return plan;
}

namespace {

std::uint64_t HashName(std::string_view name) {
  std::uint64_t h = 0x8B1A9953C4611232ULL;
  for (char c : name) h = SplitMix64(h ^ static_cast<unsigned char>(c));
  return h;
}

}  // namespace

FaultInjector::FaultInjector(const FaultProfile& profile, std::uint64_t plan_seed,
                             std::string_view device)
    : profile_(profile),
      position_salt_(SplitMix64(plan_seed ^ HashName(device))),
      device_(device),
      rng_(SplitMix64(position_salt_ ^ 0xFA017EC7ULL)) {}

bool FaultInjector::IsLatentBadBlock(BlockIndex position) const {
  if (profile_.bad_block_rate <= 0.0) return false;
  if (remapped_.count(position) != 0) return false;
  // Defects are a property of the media position: hash (salt, position) to a
  // uniform [0,1) and compare against the rate. Stable across retries.
  const std::uint64_t h = SplitMix64(position_salt_ ^ (position.value() * 0x9E3779B97F4A7C15ULL));
  const double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < profile_.bad_block_rate;
}

FaultInjector::ReadOutcome FaultInjector::SimulateRead(BlockIndex start, BlockCount count,
                                                       SimSeconds seconds_per_block,
                                                       SimSeconds reposition_seconds) {
  ReadOutcome outcome;
  for (BlockCount i = 0; i < count; ++i) {
    const BlockIndex position = start + i;

    if (IsLatentBadBlock(position)) {
      // One wasted attempt discovers the defect, then the device skips and
      // remaps the block to a spare region; the position never faults again.
      outcome.recovery_seconds += seconds_per_block + reposition_seconds + profile_.remap_seconds;
      remapped_.insert(position);
      ++stats_.bad_blocks_remapped;
      stats_.recovery_seconds +=
          seconds_per_block + reposition_seconds + profile_.remap_seconds;
    }

    // Each read attempt of this block may fail transiently; retry with
    // reposition + re-read + doubling backoff up to max_retries times.
    int failed_attempts = 0;
    while (profile_.transient_read_error_rate > 0.0 &&
           rng_.NextDouble() < profile_.transient_read_error_rate) {
      ++failed_attempts;
      ++stats_.transient_faults;
      if (failed_attempts > profile_.max_retries) {
        // The site exhausted its retries: the wasted attempts are already
        // charged; the caller surfaces kDeviceError at this position.
        ++stats_.hard_failures;
        outcome.completed = false;
        outcome.failed_block = position;
        outcome.clean_blocks = i;
        return outcome;
      }
      ++stats_.retries;
      const SimSeconds backoff =
          profile_.retry_backoff_seconds * static_cast<double>(1ULL << (failed_attempts - 1));
      const SimSeconds cost = seconds_per_block + reposition_seconds + backoff;
      outcome.recovery_seconds += cost;
      stats_.recovery_seconds += cost;
    }
  }
  outcome.clean_blocks = count;
  return outcome;
}

FaultInjector::ExchangeOutcome FaultInjector::SimulateExchange(SimSeconds exchange_seconds) {
  ExchangeOutcome outcome;
  while (profile_.exchange_failure_rate > 0.0 &&
         rng_.NextDouble() < profile_.exchange_failure_rate) {
    ++outcome.failed_attempts;
    ++stats_.exchange_faults;
    stats_.recovery_seconds += exchange_seconds;
    if (outcome.failed_attempts > profile_.max_retries) {
      ++stats_.hard_failures;
      outcome.completed = false;
      return outcome;
    }
    ++stats_.retries;
  }
  return outcome;
}

}  // namespace tertio::sim
