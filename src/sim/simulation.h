#pragma once

/// \file simulation.h
/// Registry of the resources participating in one simulated system.
///
/// A Simulation owns nothing but names: modules register the Resources they
/// create so that experiments can reset the whole system between runs and
/// report per-device utilization in one place.

#include <memory>
#include <string>
#include <vector>

#include "sim/resource.h"

namespace tertio::sim {

/// Owns the resources of one simulated machine.
///
/// Not copyable or movable: registered resources hold a pointer into the
/// simulation's cached horizon cell.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Creates and registers a resource.
  Resource* CreateResource(std::string name) {
    resources_.push_back(std::make_unique<Resource>(std::move(name)));
    resources_.back()->BindHorizonCell(&horizon_);
    return resources_.back().get();
  }

  /// Latest horizon across all resources — the response time of whatever was
  /// scheduled, measured from time zero. O(1): maintained incrementally on
  /// every operation commit (StatsScope and the bench loops poll this on
  /// their hot paths). Resetting an individual registered Resource directly
  /// leaves the cache stale; reset the whole system through Reset().
  SimSeconds Horizon() const { return horizon_; }

  /// Resets every registered resource (and the cached horizon) to time zero.
  void Reset() {
    for (auto& r : resources_) r->Reset();
    horizon_ = 0.0;
  }

  const std::vector<std::unique_ptr<Resource>>& resources() const { return resources_; }

 private:
  std::vector<std::unique_ptr<Resource>> resources_;
  SimSeconds horizon_ = 0.0;
};

}  // namespace tertio::sim
