#pragma once

/// \file simulation.h
/// Registry of the resources participating in one simulated system.
///
/// A Simulation owns nothing but names: modules register the Resources they
/// create so that experiments can reset the whole system between runs and
/// report per-device utilization in one place. It also owns the optional
/// SimSan auditor (sim/auditor.h) observing those resources.

#include <memory>
#include <string>
#include <vector>

#include "sim/auditor.h"
#include "sim/resource.h"

namespace tertio::sim {

/// Owns the resources of one simulated machine.
///
/// Not copyable or movable: registered resources hold a pointer into the
/// simulation's cached horizon cell.
class Simulation {
 public:
  Simulation() {
    // Under the TERTIO_SIMSAN build option every simulated system is audited
    // from birth; see ~Simulation() for the hard-fail.
    if constexpr (kSimSanEnabled) EnableAudit();
  }
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  ~Simulation() {
    if constexpr (kSimSanEnabled) {
      if (auditor_ != nullptr && !auditor_->clean()) {
        internal::DieCheckFailure(__FILE__, __LINE__, "auditor->clean()",
                                  auditor_->TraceString());
      }
    }
  }

  /// Creates and registers a resource.
  Resource* CreateResource(std::string name) {
    resources_.push_back(std::make_unique<Resource>(std::move(name)));
    resources_.back()->BindHorizonCell(&horizon_);
    resources_.back()->BindAuditor(auditor_.get());
    return resources_.back().get();
  }

  /// Latest horizon across all resources — the response time of whatever was
  /// scheduled, measured from time zero. O(1) on the hot path: maintained
  /// incrementally on every operation commit (StatsScope and the bench loops
  /// poll this constantly). Resetting an individual registered Resource
  /// marks the cache stale, and the next call recomputes it from the
  /// surviving timelines — an O(resources) step that only follows a reset.
  SimSeconds Horizon() const {
    if (horizon_.stale) {
      horizon_.max_end = 0.0;
      for (const auto& r : resources_) {
        if (r->stats().horizon > horizon_.max_end) horizon_.max_end = r->stats().horizon;
      }
      horizon_.stale = false;
    }
    return horizon_.max_end;
  }

  /// Resets every registered resource (and the cached horizon) to time zero.
  void Reset() {
    for (auto& r : resources_) r->Reset();
    horizon_ = HorizonCell{};
  }

  /// Creates the SimSan auditor (if absent) and binds it to every current
  /// and future resource. Idempotent. Automatic under TERTIO_SIMSAN;
  /// explicit in other builds (tests, harnesses). \returns the auditor.
  Auditor* EnableAudit() {
    if (auditor_ == nullptr) {
      auditor_ = std::make_unique<Auditor>();
      for (auto& r : resources_) r->BindAuditor(auditor_.get());
    }
    return auditor_.get();
  }

  /// The bound auditor, or nullptr when this simulation is not audited.
  Auditor* auditor() const { return auditor_.get(); }

  /// Verifies the cached horizon against a recomputation over all resources,
  /// reporting any mismatch to the auditor. No-op when unaudited.
  void AuditHorizon() const {
    if (auditor_ == nullptr) return;
    SimSeconds recomputed = 0.0;
    for (const auto& r : resources_) {
      if (r->stats().horizon > recomputed) recomputed = r->stats().horizon;
    }
    auditor_->OnHorizonCheck(Horizon(), recomputed);
  }

  const std::vector<std::unique_ptr<Resource>>& resources() const { return resources_; }

 private:
  std::vector<std::unique_ptr<Resource>> resources_;
  std::unique_ptr<Auditor> auditor_;
  mutable HorizonCell horizon_;
};

}  // namespace tertio::sim
