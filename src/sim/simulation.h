#pragma once

/// \file simulation.h
/// Registry of the resources participating in one simulated system.
///
/// A Simulation owns nothing but names: modules register the Resources they
/// create so that experiments can reset the whole system between runs and
/// report per-device utilization in one place.

#include <memory>
#include <string>
#include <vector>

#include "sim/resource.h"

namespace tertio::sim {

/// Owns the resources of one simulated machine.
class Simulation {
 public:
  /// Creates and registers a resource.
  Resource* CreateResource(std::string name) {
    resources_.push_back(std::make_unique<Resource>(std::move(name)));
    return resources_.back().get();
  }

  /// Latest horizon across all resources — the response time of whatever was
  /// scheduled, measured from time zero.
  SimSeconds Horizon() const {
    SimSeconds h = 0.0;
    for (const auto& r : resources_) {
      if (r->stats().horizon > h) h = r->stats().horizon;
    }
    return h;
  }

  /// Resets every registered resource to time zero.
  void Reset() {
    for (auto& r : resources_) r->Reset();
  }

  const std::vector<std::unique_ptr<Resource>>& resources() const { return resources_; }

 private:
  std::vector<std::unique_ptr<Resource>> resources_;
};

}  // namespace tertio::sim
