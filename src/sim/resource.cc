#include "sim/resource.h"

#include "sim/auditor.h"
#include "sim/closed_form.h"

namespace tertio::sim {

Interval Resource::Schedule(SimSeconds ready, SimSeconds duration, ByteCount bytes,
                            const char* tag) {
  TERTIO_CHECK(ready >= 0.0, "operation ready time must be non-negative");
  TERTIO_CHECK(duration >= 0.0, "operation duration must be non-negative");
  SimSeconds start = ready > available_ ? ready : available_;
  Interval interval{start, start + duration};
  available_ = interval.end;
  stats_.op_count += 1;
  stats_.bytes_transferred += bytes;
  stats_.busy_seconds += duration;
  if (interval.end > stats_.horizon) stats_.horizon = interval.end;
  if (horizon_cell_ != nullptr && interval.end > horizon_cell_->max_end) {
    horizon_cell_->max_end = interval.end;
  }
  if (trace_enabled_) trace_.push_back(OpRecord{interval, bytes, tag});
  if (auditor_ != nullptr) auditor_->OnSchedule(name_, ready, interval, bytes);
  return interval;
}

Interval Resource::ScheduleBatch(std::uint64_t cycles,
                                 std::span<const SimSeconds> cycle_durations,
                                 std::span<const ByteCount> cycle_bytes, Interval hull,
                                 const char* tag) {
  TERTIO_CHECK(cycles > 0, "a batch must commit at least one cycle");
  TERTIO_CHECK(!cycle_durations.empty(), "a batch cycle must hold at least one operation");
  TERTIO_CHECK(cycle_durations.size() == cycle_bytes.size(),
               "batch cycle durations and bytes must align");
  TERTIO_CHECK(hull.start >= available_, "batch hull starts inside the committed timeline");
  TERTIO_CHECK(hull.end >= hull.start, "batch hull ends before it starts");
  TERTIO_CHECK(!trace_enabled_, "a coalesced batch cannot retain per-operation trace records");
  available_ = hull.end;
  stats_.op_count += cycles * cycle_durations.size();
  ByteCount bytes_per_cycle = 0;
  for (ByteCount b : cycle_bytes) bytes_per_cycle += b;
  stats_.bytes_transferred += cycles * bytes_per_cycle;
  // Busy time must accumulate per operation in commit order: float addition
  // is not associative, so a naive `cycles * sum` would drift from the
  // per-op path in low-order bits. The closed form replays that exact
  // iterated rounding in O(binades crossed) instead of O(cycles).
  stats_.busy_seconds = IteratedAddCycle(stats_.busy_seconds, cycle_durations, cycles);
  if (hull.end > stats_.horizon) stats_.horizon = hull.end;
  if (horizon_cell_ != nullptr && hull.end > horizon_cell_->max_end) {
    horizon_cell_->max_end = hull.end;
  }
  if (auditor_ != nullptr) {
    auditor_->OnScheduleBatch(name_, hull, cycles * cycle_durations.size(),
                              cycles * bytes_per_cycle);
  }
  (void)tag;
  return hull;
}

double Resource::Utilization(SimSeconds until) const {
  SimSeconds span = until < 0.0 ? stats_.horizon : until;
  if (span <= 0.0) return 0.0;
  double u = stats_.busy_seconds / span;
  return u > 1.0 ? 1.0 : u;
}

void Resource::Reset() {
  available_ = 0.0;
  stats_ = ResourceStats{};
  trace_.clear();
  // The cell's cached maximum may rest on this resource's discarded
  // timeline; only the owner of all bound resources can recompute it.
  if (horizon_cell_ != nullptr) horizon_cell_->stale = true;
  if (auditor_ != nullptr) auditor_->OnResourceReset(name_);
}

}  // namespace tertio::sim
