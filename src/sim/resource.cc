#include "sim/resource.h"

#include "sim/auditor.h"

namespace tertio::sim {

Interval Resource::Schedule(SimSeconds ready, SimSeconds duration, ByteCount bytes,
                            const char* tag) {
  TERTIO_CHECK(ready >= 0.0, "operation ready time must be non-negative");
  TERTIO_CHECK(duration >= 0.0, "operation duration must be non-negative");
  SimSeconds start = ready > available_ ? ready : available_;
  Interval interval{start, start + duration};
  available_ = interval.end;
  stats_.op_count += 1;
  stats_.bytes_transferred += bytes;
  stats_.busy_seconds += duration;
  if (interval.end > stats_.horizon) stats_.horizon = interval.end;
  if (horizon_cell_ != nullptr && interval.end > horizon_cell_->max_end) {
    horizon_cell_->max_end = interval.end;
  }
  if (trace_enabled_) trace_.push_back(OpRecord{interval, bytes, tag});
  if (auditor_ != nullptr) auditor_->OnSchedule(name_, ready, interval, bytes);
  return interval;
}

double Resource::Utilization(SimSeconds until) const {
  SimSeconds span = until < 0.0 ? stats_.horizon : until;
  if (span <= 0.0) return 0.0;
  double u = stats_.busy_seconds / span;
  return u > 1.0 ? 1.0 : u;
}

void Resource::Reset() {
  available_ = 0.0;
  stats_ = ResourceStats{};
  trace_.clear();
  // The cell's cached maximum may rest on this resource's discarded
  // timeline; only the owner of all bound resources can recompute it.
  if (horizon_cell_ != nullptr) horizon_cell_->stale = true;
  if (auditor_ != nullptr) auditor_->OnResourceReset(name_);
}

}  // namespace tertio::sim
