#include "sim/trace_report.h"

#include <algorithm>
#include <vector>

#include "util/string_util.h"

namespace tertio::sim {

std::string RenderGantt(const Simulation& sim, const GanttOptions& options) {
  SimSeconds t0 = options.window_start;
  SimSeconds t1 = options.window_end > options.window_start ? options.window_end
                                                            : sim.Horizon();
  int width = options.width < 10 ? 10 : options.width;
  if (t1 <= t0) return "(empty window)\n";
  const double lo = t0.value();
  const double hi = t1.value();
  double cell = (hi - lo) / width;

  // Column widths for the resource labels.
  std::size_t label_width = 0;
  for (const auto& resource : sim.resources()) {
    label_width = std::max(label_width, resource->name().size());
  }

  std::string out = StrFormat("%-*s  %.1fs", static_cast<int>(label_width), "", t0);
  out += std::string(width > 12 ? static_cast<size_t>(width - 12) : 0, ' ');
  out += StrFormat("%.1fs\n", t1);
  for (const auto& resource : sim.resources()) {
    out += StrFormat("%-*s  ", static_cast<int>(label_width), resource->name().c_str());
    if (resource->trace().empty() && resource->stats().op_count > 0) {
      out += "(no trace)\n";
      continue;
    }
    std::vector<double> busy(static_cast<size_t>(width), 0.0);
    for (const OpRecord& op : resource->trace()) {
      double s = std::max(op.interval.start.value(), lo);
      double e = std::min(op.interval.end.value(), hi);
      if (e <= s) continue;
      int first = static_cast<int>((s - lo) / cell);
      int last = static_cast<int>((e - lo) / cell);
      last = std::min(last, width - 1);
      for (int c = first; c <= last; ++c) {
        double cs = lo + c * cell;
        double ce = cs + cell;
        busy[static_cast<size_t>(c)] += std::max(0.0, std::min(e, ce) - std::max(s, cs));
      }
    }
    for (int c = 0; c < width; ++c) {
      double fraction = busy[static_cast<size_t>(c)] / cell;
      out += fraction >= 0.5 ? '#' : (fraction > 0.01 ? '+' : '.');
    }
    out += StrFormat("  %4.0f%%\n", 100.0 * resource->Utilization(t1));
  }
  return out;
}

std::string RenderSpanGantt(const SpanTrace& trace, const GanttOptions& options) {
  if (trace.empty()) return "(no spans)\n";
  SimSeconds t0 = options.window_start;
  SimSeconds t1 = options.window_end > options.window_start ? options.window_end
                                                            : trace.window().end;
  int width = options.width < 10 ? 10 : options.width;
  if (t1 <= t0) return "(empty window)\n";
  const double lo = t0.value();
  const double hi = t1.value();
  double cell = (hi - lo) / width;

  std::size_t label_width = 0;
  for (const PhaseSummary& phase : trace.phases()) {
    label_width = std::max(label_width, phase.phase.size());
  }

  std::string out = StrFormat("%-*s  %.1fs", static_cast<int>(label_width), "", t0);
  out += std::string(width > 12 ? static_cast<size_t>(width - 12) : 0, ' ');
  out += StrFormat("%.1fs\n", t1);
  for (const PhaseSummary& phase : trace.phases()) {
    out += StrFormat("%-*s  ", static_cast<int>(label_width), phase.phase.c_str());
    std::vector<double> busy(static_cast<size_t>(width), 0.0);
    auto accumulate = [&](SimSeconds span_start, SimSeconds span_end, double density) {
      double s = std::max(span_start.value(), lo);
      double e = std::min(span_end.value(), hi);
      if (e <= s) return;
      int first = static_cast<int>((s - lo) / cell);
      int last = std::min(static_cast<int>((e - lo) / cell), width - 1);
      for (int c = first; c <= last; ++c) {
        double cs = lo + c * cell;
        double ce = cs + cell;
        busy[static_cast<size_t>(c)] +=
            density * std::max(0.0, std::min(e, ce) - std::max(s, cs));
      }
    };
    bool approximate = !trace.retain();
    if (approximate) {
      // Spread the phase's busy time uniformly over its window.
      double window = phase.window.duration().value();
      double density = window > 0.0 ? phase.busy_seconds.value() / window : 1.0;
      accumulate(phase.window.start, phase.window.end, density);
    } else {
      for (const Span& span : trace.spans()) {
        if (span.phase != phase.phase) continue;
        accumulate(span.interval.start, span.interval.end, 1.0);
      }
    }
    for (int c = 0; c < width; ++c) {
      double fraction = busy[static_cast<size_t>(c)] / cell;
      char mark = fraction >= 0.5 ? '#' : (fraction > 0.01 ? '+' : '.');
      if (approximate && mark == '#') mark = '~';
      out += mark;
    }
    out += StrFormat("  %6.1fs busy\n", phase.busy_seconds.value());
  }
  return out;
}

void WriteSpanCsv(const SpanTrace& trace, std::ostream& out) {
  out << "phase,device,start,end,blocks,bytes\n";
  if (trace.retain()) {
    for (const Span& span : trace.spans()) {
      out << span.phase << ',' << span.device << ',' << span.interval.start << ','
          << span.interval.end << ',' << span.blocks << ',' << span.bytes << '\n';
    }
    return;
  }
  for (const PhaseSummary& phase : trace.phases()) {
    out << phase.phase << ',' << phase.device << ',' << phase.window.start << ','
        << phase.window.end << ',' << phase.blocks << ',' << phase.bytes << '\n';
  }
}

void WriteTraceCsv(const Simulation& sim, std::ostream& out) {
  out << "resource,tag,start,end,bytes\n";
  for (const auto& resource : sim.resources()) {
    for (const OpRecord& op : resource->trace()) {
      out << resource->name() << ',' << op.tag << ',' << op.interval.start << ','
          << op.interval.end << ',' << op.bytes << '\n';
    }
  }
}

}  // namespace tertio::sim
