#include "sim/closed_form.h"

#include <cmath>

namespace tertio::sim {
namespace {

/// One scalar cycle of the reference loop.
inline SimSeconds OneCycle(SimSeconds acc, std::span<const SimSeconds> deltas) {
  for (SimSeconds d : deltas) acc += d;
  return acc;
}

/// The uniform rounding grid containing a finite t >= 0. Values in
/// [0, 2^-1021) all sit on the subnormal grid of spacing 2^-1074; values in
/// a normal binade [2^e, 2^{e+1}) sit on the grid of the binade's ulp
/// 2^{e-52}. In both cases the segment's upper boundary lies exactly 2^53
/// grid units above zero, so `index` (= t / u, an exact division by a power
/// of two) always fits 53 bits and the boundary test never has to form the
/// boundary as a double (2^1024 would overflow for the topmost binade).
struct Segment {
  SimSeconds u = 0.0;        // grid spacing
  std::uint64_t index = 0;   // t / u, exact, < 2^53
};

inline Segment SegmentOf(SimSeconds t) {
  if (t < 0x1p-1021) {
    return Segment{0x1p-1074, static_cast<std::uint64_t>(t.value() / 0x1p-1074)};
  }
  const int e = std::ilogb(t.value());
  const SimSeconds u = std::ldexp(1.0, e - 52);
  return Segment{u, static_cast<std::uint64_t>(t / u)};
}

inline constexpr std::uint64_t kSegmentTopIndex = std::uint64_t{1} << 53;

}  // namespace

SimSeconds IteratedAddCycle(SimSeconds acc, std::span<const SimSeconds> deltas,
                            std::uint64_t cycles) {
  if (cycles == 0 || deltas.empty()) return acc;
  // The grid arguments below need a finite non-negative accumulator and
  // finite non-negative deltas (the simulator checks durations >= 0; -0.0 is
  // excluded so monotonicity and signed-zero cases never arise). Anything
  // else takes the literal loop.
  bool fast = std::isfinite(acc.value()) && !std::signbit(acc.value());
  bool all_zero = true;
  for (SimSeconds d : deltas) {
    if (!std::isfinite(d.value()) || std::signbit(d.value())) fast = false;
    if (d != 0.0) all_zero = false;
  }
  // A cycle of (signed) zeros reaches its fixed point after one cycle.
  if (all_zero && fast) return OneCycle(acc, deltas);
  if (!fast) {
    while (cycles-- > 0) acc = OneCycle(acc, deltas);
    return acc;
  }

  while (cycles > 0) {
    const Segment seg = SegmentOf(acc);
    // Scalar warm-up inside the current segment. Adding non-negative deltas
    // is monotone, so a cycle whose end stays inside the segment had every
    // intermediate value inside it too, and consecutive in-segment cycle
    // ends differ by an exact multiple of the grid spacing (Sterbenz for a
    // normal binade; subnormal-range subtraction is always exact).
    SimSeconds t = acc;
    SimSeconds ends[3];
    int got = 0;
    while (got < 3) {
      t = OneCycle(t, deltas);
      --cycles;
      if (!std::isfinite(t.value())) return t;  // saturated at +inf: absorbing
      if (cycles == 0) return t;
      if (SegmentOf(t).u != seg.u) break;  // crossed a boundary: re-anchor
      ends[got++] = t;
    }
    if (got < 3) {
      acc = t;
      continue;
    }
    const SimSeconds d1 = ends[1] - ends[0];
    const SimSeconds d2 = ends[2] - ends[1];
    // Within one segment the realized cycle advance depends on the current
    // value only through the parity of its grid index (round-half-even
    // resolves exact ties toward even indices), and a map on two parities is
    // purely periodic with period <= 2 after one cycle. So from ends[0] the
    // advance sequence is (d1, d2, d1, d2, ...), except that when d1 != d2
    // the first period may be pre-periodic: the tail is either alternating
    // (next advance d1) or constant d2 — one more scalar cycle decides.
    if (d1 == 0.0 && d2 == 0.0) return ends[2];  // absorbed: fixed point
    const std::uint64_t m1 = static_cast<std::uint64_t>(d1 / seg.u);
    const std::uint64_t m2 = static_cast<std::uint64_t>(d2 / seg.u);
    std::uint64_t m = 0;        // grid advance per jump stride
    std::uint64_t stride = 0;   // cycles per jump stride
    if (d1 == d2) {
      m = m1;
      stride = 1;
      t = ends[2];
    } else {
      t = OneCycle(ends[2], deltas);
      --cycles;
      if (!std::isfinite(t.value())) return t;
      if (cycles == 0) return t;
      if (SegmentOf(t).u != seg.u) {
        acc = t;
        continue;
      }
      const SimSeconds d3 = t - ends[2];
      if (d3 == d1) {
        m = m1 + m2;  // alternating tail: two cycles advance d2 + d1
        stride = 2;
      } else if (d3 == d2) {
        m = m2;  // constant tail
        stride = 1;
      } else {
        acc = t;  // cannot happen per the parity argument; stay scalar
        continue;
      }
    }
    // Jump: k strides advance exactly k*m grid units (monotone cycles whose
    // ends stay strictly below the segment top keep every intermediate on
    // this grid, so the scalar loop would have realized the same advances).
    const std::uint64_t index = static_cast<std::uint64_t>(t / seg.u);
    const std::uint64_t room = kSegmentTopIndex - index;  // > 0
    std::uint64_t k = cycles / stride;
    if (m > 0 && room > m) {
      const std::uint64_t k_room = (room - 1) / m;  // land strictly below top
      if (k > k_room) k = k_room;
    } else {
      k = 0;  // the boundary is within one stride: keep stepping scalar
    }
    if (k == 0) {
      acc = t;
      continue;
    }
    // k*m <= room - 1 < 2^53: the product converts to double exactly, the
    // multiply by the power-of-two spacing is exact, and the sum lands on a
    // grid point inside the segment — also exact.
    acc = t + static_cast<double>(k * m) * seg.u;
    cycles -= k * stride;
  }
  return acc;
}

}  // namespace tertio::sim
