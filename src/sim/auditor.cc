#include "sim/auditor.h"

#include <utility>

#include "sim/span_registry.h"
#include "util/string_util.h"

namespace tertio::sim {

namespace {

std::string FormatInterval(const Interval& interval) {
  return StrFormat("[%.9f, %.9f)", interval.start, interval.end);
}

unsigned long long ull(BlockCount v) { return static_cast<unsigned long long>(v.value()); }

}  // namespace

std::string_view AuditKindToString(AuditKind kind) {
  switch (kind) {
    case AuditKind::kIntervalOverlap:
      return "IntervalOverlap";
    case AuditKind::kTimeRegression:
      return "TimeRegression";
    case AuditKind::kCausality:
      return "Causality";
    case AuditKind::kBufferOvercommit:
      return "BufferOvercommit";
    case AuditKind::kScratchOvercommit:
      return "ScratchOvercommit";
    case AuditKind::kByteConservation:
      return "ByteConservation";
    case AuditKind::kHorizonIncoherence:
      return "HorizonIncoherence";
    case AuditKind::kAccounting:
      return "Accounting";
    case AuditKind::kUnregisteredSpan:
      return "UnregisteredSpan";
    case AuditKind::kLeaseExclusivity:
      return "LeaseExclusivity";
  }
  return "Unknown";
}

Auditor::ResourceState& Auditor::StateFor(std::string_view resource) {
  auto it = resources_.find(resource);
  if (it == resources_.end()) {
    it = resources_.emplace(std::string(resource), ResourceState{}).first;
  }
  return it->second;
}

void Auditor::Remember(ResourceState& state, Interval interval) {
  if (state.recent.size() < kRecentRing) {
    state.recent.push_back(interval);
  } else {
    state.recent[state.ring_pos] = interval;
    state.ring_pos = (state.ring_pos + 1) % kRecentRing;
  }
}

std::vector<Interval> Auditor::Snapshot(const ResourceState& state, Interval offending) const {
  // Unroll the ring oldest-first, then append the offending interval so the
  // diagnostic replays the schedule in commit order.
  std::vector<Interval> out;
  out.reserve(state.recent.size() + 1);
  for (std::size_t i = 0; i < state.recent.size(); ++i) {
    out.push_back(state.recent[(state.ring_pos + i) % state.recent.size()]);
  }
  out.push_back(offending);
  return out;
}

void Auditor::Report(AuditKind kind, std::string_view subject, std::string detail,
                     std::vector<Interval> intervals) {
  if (violations_.size() >= kMaxViolations) {
    ++dropped_violations_;
    return;
  }
  violations_.push_back(AuditViolation{kind, std::string(subject), std::move(detail),
                                       std::move(intervals)});
}

void Auditor::OnSchedule(std::string_view resource, SimSeconds ready, Interval interval,
                         ByteCount bytes) {
  (void)bytes;
  ResourceState& state = StateFor(resource);
  checks_ += 3;
  if (interval.end < interval.start) {
    Report(AuditKind::kTimeRegression, resource,
           StrFormat("operation interval %s ends before it starts",
                     FormatInterval(interval).c_str()),
           Snapshot(state, interval));
  }
  if (interval.start < ready) {
    Report(AuditKind::kTimeRegression, resource,
           StrFormat("operation started at %.9f before its ready time %.9f", interval.start,
                     ready),
           Snapshot(state, interval));
  }
  // Interval exclusivity: a serial device's next operation may not begin
  // before the previous one finished. Exact comparison is sound — starts are
  // computed as max(ready, previous end), which is exact in IEEE doubles.
  if (state.any && interval.start < state.last.end) {
    Report(AuditKind::kIntervalOverlap, resource,
           StrFormat("operation %s overlaps the previous operation %s",
                     FormatInterval(interval).c_str(), FormatInterval(state.last).c_str()),
           Snapshot(state, interval));
  }
  state.any = true;
  state.last = interval;
  Remember(state, interval);
}

void Auditor::OnScheduleBatch(std::string_view resource, Interval hull, std::uint64_t op_count,
                              ByteCount bytes) {
  (void)bytes;
  ResourceState& state = StateFor(resource);
  checks_ += 3;
  if (hull.end < hull.start) {
    Report(AuditKind::kTimeRegression, resource,
           StrFormat("coalesced batch of %llu operations %s ends before it starts",
                     static_cast<unsigned long long>(op_count),
                     FormatInterval(hull).c_str()),
           Snapshot(state, hull));
  }
  if (op_count == 0) {
    Report(AuditKind::kAccounting, resource, "coalesced batch committed zero operations",
           Snapshot(state, hull));
  }
  // Interval exclusivity with multiplicity: the batch occupies the device
  // back-to-back from its first start, so the whole hull must sit after the
  // previously committed operation; later operations are checked against
  // the hull's end.
  if (state.any && hull.start < state.last.end) {
    Report(AuditKind::kIntervalOverlap, resource,
           StrFormat("coalesced batch %s (%llu operations) overlaps the previous operation %s",
                     FormatInterval(hull).c_str(),
                     static_cast<unsigned long long>(op_count),
                     FormatInterval(state.last).c_str()),
           Snapshot(state, hull));
  }
  state.any = true;
  state.last = hull;
  Remember(state, hull);
}

void Auditor::OnResourceReset(std::string_view resource) {
  auto it = resources_.find(resource);
  if (it != resources_.end()) it->second = ResourceState{};
}

void Auditor::OnStage(std::string_view phase, std::string_view device,
                      SimSeconds pipeline_start, SimSeconds ready, Interval interval) {
  checks_ += 4;
  if (interval.end < interval.start) {
    Report(AuditKind::kTimeRegression, phase,
           StrFormat("stage interval %s on '%.*s' ends before it starts",
                     FormatInterval(interval).c_str(), static_cast<int>(device.size()),
                     device.data()),
           {interval});
  }
  if (interval.start < ready) {
    Report(AuditKind::kCausality, phase,
           StrFormat("stage began at %.9f before its dependencies finished at %.9f",
                     interval.start, ready),
           {Interval::At(ready), interval});
  }
  if (interval.start < pipeline_start) {
    Report(AuditKind::kCausality, phase,
           StrFormat("stage began at %.9f before the pipeline's virtual origin %.9f",
                     interval.start, pipeline_start),
           {Interval::At(pipeline_start), interval});
  }
  if (!IsRegisteredSpan(phase)) {
    Report(AuditKind::kUnregisteredSpan, phase,
           "phase label is not in sim/span_registry.h (typo'd labels silently fork report "
           "rows; register it or fix the call site)",
           {interval});
  }
}

void Auditor::OnStageBatch(std::string_view phase, std::string_view device,
                           SimSeconds pipeline_start, SimSeconds ready, Interval hull,
                           std::uint64_t stages) {
  checks_ += 4;
  if (hull.end < hull.start) {
    Report(AuditKind::kTimeRegression, phase,
           StrFormat("coalesced stage batch %s (%llu stages) on '%.*s' ends before it starts",
                     FormatInterval(hull).c_str(), static_cast<unsigned long long>(stages),
                     static_cast<int>(device.size()), device.data()),
           {hull});
  }
  if (hull.start < ready) {
    Report(AuditKind::kCausality, phase,
           StrFormat("coalesced stage batch began at %.9f before its dependencies finished "
                     "at %.9f",
                     hull.start, ready),
           {Interval::At(ready), hull});
  }
  if (hull.start < pipeline_start) {
    Report(AuditKind::kCausality, phase,
           StrFormat("coalesced stage batch began at %.9f before the pipeline's virtual "
                     "origin %.9f",
                     hull.start, pipeline_start),
           {Interval::At(pipeline_start), hull});
  }
  if (!IsRegisteredSpan(phase)) {
    Report(AuditKind::kUnregisteredSpan, phase,
           "phase label is not in sim/span_registry.h (typo'd labels silently fork report "
           "rows; register it or fix the call site)",
           {hull});
  }
}

void Auditor::OnTransferEnd(std::string_view read_phase, BlockCount expected,
                            BlockCount completed, BlockCount issued, BlockCount dropped) {
  checks_ += 2;
  if (completed != expected) {
    Report(AuditKind::kByteConservation, read_phase,
           StrFormat("transfer completed %llu blocks but the plan promised %llu",
                     ull(completed), ull(expected)),
           {});
  }
  if (issued != completed + dropped) {
    Report(AuditKind::kByteConservation, read_phase,
           StrFormat("blocks sourced (%llu) != blocks sunk (%llu) + blocks dropped to "
                     "retries (%llu)",
                     ull(issued), ull(completed), ull(dropped)),
           {});
  }
}

void Auditor::OnMemoryReserve(std::string_view tag, BlockCount requested,
                              BlockCount reserved_after, BlockCount total) {
  checks_ += 1;
  if (reserved_after > total) {
    Report(AuditKind::kBufferOvercommit, tag,
           StrFormat("memory occupancy %llu blocks exceeds the allotment M = %llu after a "
                     "%llu-block reservation",
                     ull(reserved_after), ull(total), ull(requested)),
           {});
  }
}

void Auditor::OnMemoryRelease(std::string_view tag, BlockCount released,
                              BlockCount held_under_tag) {
  checks_ += 1;
  if (released > held_under_tag) {
    Report(AuditKind::kAccounting, tag,
           StrFormat("release of %llu blocks exceeds the %llu reserved under the tag",
                     ull(released), ull(held_under_tag)),
           {});
  }
}

void Auditor::OnDiskUsage(std::string_view tag, SimSeconds now, BlockCount used_after,
                          BlockCount capacity) {
  checks_ += 1;
  if (used_after > capacity) {
    Report(AuditKind::kScratchOvercommit, tag,
           StrFormat("disk scratch occupancy %llu blocks exceeds D = %llu blocks at t=%.9f",
                     ull(used_after), ull(capacity), now),
           {Interval::At(now)});
  }
}

void Auditor::OnDiskOverfree(std::string_view tag, std::string detail) {
  checks_ += 1;
  Report(AuditKind::kAccounting, tag, std::move(detail), {});
}

void Auditor::OnTapeOccupancy(std::string_view volume, BlockCount size_after,
                              BlockCount capacity) {
  checks_ += 1;
  if (capacity != 0 && size_after > capacity) {
    Report(AuditKind::kScratchOvercommit, volume,
           StrFormat("tape occupancy %llu blocks exceeds the volume capacity %llu "
                     "(Table 2 scratch bound)",
                     ull(size_after), ull(capacity)),
           {});
  }
}

void Auditor::OnCacheFill(std::string_view cache, BlockCount blocks, BlockCount resident_after,
                          BlockCount capacity) {
  checks_ += 2;
  CacheLedger& ledger = caches_[std::string(cache)];
  ledger.resident += blocks;
  if (resident_after > capacity) {
    Report(AuditKind::kScratchOvercommit, cache,
           StrFormat("cache occupancy %llu blocks exceeds the cache carve of %llu blocks "
                     "after a %llu-block fill",
                     ull(resident_after), ull(capacity), ull(blocks)),
           {});
  }
  if (ledger.resident != resident_after) {
    Report(AuditKind::kByteConservation, cache,
           StrFormat("cache reports %llu resident blocks but its fills minus evictions sum "
                     "to %llu",
                     ull(resident_after), ull(ledger.resident)),
           {});
  }
}

void Auditor::OnCacheEvict(std::string_view cache, BlockCount blocks, BlockCount resident_after) {
  checks_ += 2;
  CacheLedger& ledger = caches_[std::string(cache)];
  if (blocks > ledger.resident) {
    Report(AuditKind::kAccounting, cache,
           StrFormat("eviction of %llu blocks exceeds the %llu the ledger holds resident",
                     ull(blocks), ull(ledger.resident)),
           {});
    ledger.resident = 0;
  } else {
    ledger.resident -= blocks;
  }
  if (ledger.resident != resident_after) {
    Report(AuditKind::kByteConservation, cache,
           StrFormat("cache reports %llu resident blocks after eviction but its fills minus "
                     "evictions sum to %llu",
                     ull(resident_after), ull(ledger.resident)),
           {});
  }
}

void Auditor::OnHorizonCheck(SimSeconds cached, SimSeconds recomputed) {
  checks_ += 1;
  if (cached != recomputed) {
    Report(AuditKind::kHorizonIncoherence, "simulation",
           StrFormat("cached horizon %.9f != recomputed maximum %.9f over all resources "
                     "(stale horizon cell?)",
                     cached, recomputed),
           {Interval::At(cached), Interval::At(recomputed)});
  }
}

void Auditor::OnDriveLease(std::string_view drive, std::string_view holder) {
  checks_ += 1;
  std::string& current = drive_holders_[std::string(drive)];
  if (!current.empty()) {
    Report(AuditKind::kLeaseExclusivity, drive,
           StrFormat("leased to '%.*s' while still held by '%s'",
                     static_cast<int>(holder.size()), holder.data(), current.c_str()),
           {});
  }
  // An anonymous lease still occupies the drive in the ledger; "?" keeps it
  // distinct from the empty string that means "free".
  current = holder.empty() ? std::string("?") : std::string(holder);
}

void Auditor::OnDriveRelease(std::string_view drive, std::string_view holder) {
  checks_ += 1;
  std::string& current = drive_holders_[std::string(drive)];
  if (current.empty()) {
    Report(AuditKind::kLeaseExclusivity, drive,
           StrFormat("released by '%.*s' but no session holds it",
                     static_cast<int>(holder.size()), holder.data()),
           {});
  } else if (!holder.empty() && current != "?" && current != holder) {
    Report(AuditKind::kLeaseExclusivity, drive,
           StrFormat("released by '%.*s' but held by '%s'",
                     static_cast<int>(holder.size()), holder.data(), current.c_str()),
           {});
  }
  current.clear();
}

Status Auditor::Check() const {
  if (clean()) return Status::OK();
  return Status::Internal(TraceString());
}

std::string Auditor::TraceString() const {
  std::string out = StrFormat("SimSan: %zu invariant violation(s)", violations_.size());
  if (dropped_violations_ > 0) {
    out += StrFormat(" (+%llu dropped)", static_cast<unsigned long long>(dropped_violations_));
  }
  out += StrFormat(" after %llu checks\n", static_cast<unsigned long long>(checks_));
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    const AuditViolation& v = violations_[i];
    out += StrFormat("  #%zu %.*s on '%s': %s\n", i + 1,
                     static_cast<int>(AuditKindToString(v.kind).size()),
                     AuditKindToString(v.kind).data(), v.subject.c_str(), v.detail.c_str());
    if (!v.intervals.empty()) {
      out += "     replay:";
      for (const Interval& interval : v.intervals) {
        out += " " + FormatInterval(interval);
      }
      out += "\n";
    }
  }
  return out;
}

void Auditor::Clear() {
  resources_.clear();
  caches_.clear();
  drive_holders_.clear();
  violations_.clear();
  dropped_violations_ = 0;
  checks_ = 0;
}

}  // namespace tertio::sim
