#pragma once

/// \file interval.h
/// A half-open span of virtual time [start, end).

#include "util/units.h"

namespace tertio::sim {

/// The virtual-time span occupied by one scheduled operation.
struct Interval {
  SimSeconds start = 0.0;
  SimSeconds end = 0.0;

  SimSeconds duration() const { return end - start; }

  /// Interval covering both `a` and `b`.
  static Interval Hull(const Interval& a, const Interval& b) {
    return Interval{a.start < b.start ? a.start : b.start, a.end > b.end ? a.end : b.end};
  }

  /// A zero-length interval at time `t` (used for free operations).
  static Interval At(SimSeconds t) { return Interval{t, t}; }
};

}  // namespace tertio::sim
