#pragma once

/// \file closed_form.h
/// Exact closed forms for iterated IEEE-754 accumulation.
///
/// The coalesced transfer fast path (pipeline.h) must keep every float
/// aggregate bit-identical to the per-chunk schedule it replaces, and those
/// aggregates are built by *iterated rounded addition* — a resource's
/// busy_seconds grows by the same cycle of durations once per committed
/// chunk. Float addition is not associative, so `n * d` drifts from the loop
/// in low-order bits; but rounded addition of a fixed delta is *exactly
/// affine within one binade*: every representable value in [2^e, 2^{e+1}) is
/// an integer multiple of the ulp u = 2^{e-52}, the realized step
/// fl(t + d) - t depends on t only through the parity of t/u (round-half-
/// even resolves ties toward even grid indices), and the parity orbit of a
/// fixed step cycle is periodic with period <= 2 after one warm-up cycle.
/// IteratedAddCycle therefore replays a handful of cycles scalar, reads off
/// the realized per-cycle advance, and jumps to the binade boundary with
/// exact integer grid arithmetic — O(binades crossed) instead of O(n), and
/// bit-identical to the literal loop by construction. DESIGN.md §5.1 carries
/// the full derivation.

#include <cstdint>
#include <span>

#include "util/units.h"

namespace tertio::sim {

/// Exact result of the reference loop
///
///   for (uint64_t c = 0; c < cycles; ++c)
///     for (SimSeconds d : deltas) acc += d;
///
/// computed in O(deltas * binades crossed). Bit-identical to the loop for
/// every input; non-finite or negative inputs (which the simulator never
/// produces — durations are checked non-negative) fall back to the literal
/// loop.
SimSeconds IteratedAddCycle(SimSeconds acc, std::span<const SimSeconds> deltas,
                            std::uint64_t cycles);

/// Single-delta convenience: exact result of `n` iterations of `acc += delta`.
inline SimSeconds IteratedAdd(SimSeconds acc, SimSeconds delta, std::uint64_t n) {
  return IteratedAddCycle(acc, std::span<const SimSeconds>(&delta, 1), n);
}

}  // namespace tertio::sim
