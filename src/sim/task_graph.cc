#include "sim/task_graph.h"

#include "util/string_util.h"

namespace tertio::sim {

TaskId TaskGraph::Add(Resource* resource, SimSeconds duration, std::vector<TaskId> deps,
                      const char* tag, std::function<void()> action, ByteCount bytes) {
  TERTIO_CHECK(resource != nullptr, "task requires a resource");
  tasks_.push_back(Task{resource, duration, std::move(deps), tag, std::move(action), bytes, {}});
  return tasks_.size() - 1;
}

Result<SimSeconds> TaskGraph::Run() {
  SimSeconds makespan = 0.0;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    Task& task = tasks_[id];
    SimSeconds ready = 0.0;
    for (TaskId dep : task.deps) {
      if (dep >= id) {
        return Status::InvalidArgument(
            StrFormat("task %zu depends on task %zu which is not scheduled before it", id, dep));
      }
      if (tasks_[dep].interval.end > ready) ready = tasks_[dep].interval.end;
    }
    if (task.action) task.action();
    task.interval = task.resource->Schedule(ready, task.duration, task.bytes, task.tag);
    if (task.interval.end > makespan) makespan = task.interval.end;
  }
  return makespan;
}

}  // namespace tertio::sim
