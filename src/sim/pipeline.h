#pragma once

/// \file pipeline.h
/// The chunked-transfer pipeline engine shared by every join executor.
///
/// TaskGraph (task_graph.h) schedules a *static* DAG whose durations are
/// known up front. Device operations in tertio are state-dependent — a tape
/// read's cost depends on where the head stopped, a disk write's on the
/// extent layout — so executors cannot declare durations ahead of time.
/// Pipeline generalizes TaskGraph's list scheduling to that case: stages are
/// dispatched eagerly, in insertion order (matching the FIFO device-queue
/// semantics of Resource exactly as TaskGraph::Run does), and each stage's
/// operation computes its own occupancy interval by charging the device
/// model when dispatched. A stage's ready time is the latest finish of its
/// dependencies — the scheduler derives the overlap structure of the
/// paper's concurrent methods from declared dependencies instead of each
/// executor hand-threading `max()` arithmetic over raw SimSeconds.
///
/// On top of the stage primitive, Transfer() expresses the paper's central
/// I/O idiom — "stream N blocks from device A to device B through a double
/// buffer" (Section 4) — as one declared operation: a BlockSource and a
/// BlockSink are connected chunk by chunk, either lock-step (sequential
/// methods: the producer waits for each consumption) or streaming
/// (concurrent methods: the producer runs ahead, consumption trails).
///
/// Every stage carries a named *span* (phase label, device, block/byte
/// volume, occupancy interval). Spans aggregate into per-phase summaries in
/// a SpanTrace — collected into JoinStats and rendered by exec/report and
/// sim/trace_report — giving a Figure-4-style phase timeline for every
/// method.

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/interval.h"
#include "util/block_payload.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::sim {

class Auditor;
class Resource;

using StageId = std::size_t;

/// Sentinel for "no stage" — ignored in dependency lists, so optional
/// dependencies can be threaded without branching.
inline constexpr StageId kNoStage = std::numeric_limits<StageId>::max();

/// One pipeline stage's occupancy of a device, retained when the trace
/// retains spans.
struct Span {
  std::string phase;
  std::string device;
  BlockCount blocks = 0;
  ByteCount bytes = 0;
  Interval interval;
};

/// Aggregate of every span sharing one phase label.
struct PhaseSummary {
  std::string phase;
  std::string device;  // "" when spans of several devices share the phase
  std::uint64_t stage_count = 0;
  BlockCount blocks = 0;
  ByteCount bytes = 0;
  /// Sum of span durations (device busy time attributed to the phase).
  SimSeconds busy_seconds = 0.0;
  /// Hull of the phase's span intervals.
  Interval window;
};

/// Realized per-stage durations of a coalesced batch, stored as runs: a run
/// is `repeats` back-to-back repetitions of a contiguous pattern of values.
/// The steady-state replay's durations are piecewise periodic, so a
/// million-chunk batch stores O(replayed periods) values while Accumulate()
/// reproduces the exact term-by-term float sum through the closed form
/// (closed_form.h) — bit-identical to adding every term one at a time.
class DurationRunList {
 public:
  /// Appends one value (a run of length 1, merged into an open tail run).
  void Append(SimSeconds value);
  /// Appends `repeats` back-to-back repetitions of `pattern` (copied).
  void AppendRun(std::span<const SimSeconds> pattern, std::uint64_t repeats);

  /// Total terms represented (sum of length * repeats over runs).
  std::uint64_t terms() const { return terms_; }
  bool empty() const { return terms_ == 0; }

  /// `acc` after every term, in order, is added into it — bit-identical to
  /// the literal loop over the expanded sequence.
  SimSeconds Accumulate(SimSeconds acc) const;

 private:
  struct Run {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
    std::uint64_t repeats = 0;
  };
  std::vector<SimSeconds> values_;
  std::vector<Run> runs_;
  std::uint64_t terms_ = 0;
};

/// Collects the spans of one run. Per-phase summaries are always maintained
/// (bounded by the number of distinct phase labels); individual spans are
/// retained only when set_retain(true) — full traces of paper-scale joins
/// are large.
class SpanTrace {
 public:
  void set_retain(bool retain) { retain_ = retain; }
  bool retain() const { return retain_; }

  void Record(std::string_view phase, std::string_view device, BlockCount blocks,
              ByteCount bytes, Interval interval);

  /// Individual spans (empty unless set_retain(true) before the run).
  const std::vector<Span>& spans() const { return spans_; }

  /// Per-phase aggregates, in order of first appearance.
  const std::vector<PhaseSummary>& phases() const { return phases_; }

  /// Hull of all recorded spans ([0,0] when nothing was recorded).
  Interval window() const { return window_; }

  /// Records a coalesced batch of `stages` chunk stages sharing one phase as
  /// one call: `blocks`/`bytes` are batch totals, `hull` covers every chunk's
  /// interval, and `stage_durations` (one term per chunk, in commit order)
  /// feed the phase's busy-seconds accumulator in the exact term order of
  /// `stages` individual Record() calls — run-compressed terms go through
  /// the closed form, so the float sum is bit-identical either way. Only
  /// valid when spans are not retained (a batch has no per-chunk records).
  void RecordBatch(std::string_view phase, std::string_view device, BlockCount blocks,
                   ByteCount bytes, Interval hull, std::uint64_t stages,
                   const DurationRunList& stage_durations);

  bool empty() const { return phases_.empty(); }
  void Clear();

 private:
  // Phase lookup goes through a sorted index over phases_ (by label):
  // first-appearance order in phases_ itself is preserved for deterministic
  // reports, while Record() pays O(log phases) instead of a linear scan per
  // stage — hashed containers are banned in src/sim (tertio_lint).
  std::size_t PhaseIndex(std::string_view phase, std::string_view device, Interval interval);

  bool retain_ = false;
  std::vector<Span> spans_;
  std::vector<PhaseSummary> phases_;
  /// Indices into phases_, sorted by phase label (the Record() lookup index).
  std::vector<std::uint32_t> by_phase_;
  Interval window_;
  bool has_window_ = false;
};

/// Answer of a BlockSource/BlockSink to "what would a run of `max_chunks`
/// equal-size chunks cost, and is that cost provably constant?" — the
/// eligibility half of the pipeline's coalesced fast path (see
/// Pipeline::TransferPlan::allow_coalescing). A default-constructed profile
/// (chunks == 0) means "not coalescible": the transfer keeps the per-chunk
/// path. Computing a profile must not mutate device state; the bookkeeping
/// the per-chunk path would have applied (head positions, block counters,
/// store contents) is deferred to `commit`.
struct ChunkCostProfile {
  /// One device operation of the cycle, issued at its chunk's ready time.
  struct Op {
    Resource* resource = nullptr;
    SimSeconds seconds = 0.0;
    ByteCount bytes = 0;
    /// Static label for the device timeline, e.g. "tape.read".
    const char* tag = "";
  };

  /// Chunks (from the queried offset) whose device cost is provably the
  /// cycle below. 0 = not coalescible. Always a multiple of `cycle`.
  /// (A chunk count is dimensionless — a number of requests, not blocks.)
  std::uint64_t chunks = 0;
  /// Pattern period in chunks: `ops` lists the operations of `cycle`
  /// consecutive chunks (chunk-major; `ops_per_chunk[i]` entries for the
  /// i-th chunk of the cycle). Striped layouts whose piece pattern rotates
  /// across disks repeat with cycle > 1; single-device endpoints use 1.
  std::uint64_t cycle = 1;
  std::vector<std::uint32_t> ops_per_chunk;
  std::vector<Op> ops;
  /// Applies the endpoint's deferred bookkeeping for the `committed_chunks`
  /// chunks actually batched (a multiple of `cycle`, at most `chunks`).
  /// Called once, after the device timelines are committed. May be empty
  /// for stateless endpoints.
  std::function<void(std::uint64_t committed_chunks)> commit;

  /// Profile of a free endpoint (zero-cost, stateless — a memory sink):
  /// every chunk is a zero-duration operation at its ready time.
  static ChunkCostProfile Free(std::uint64_t max_chunks);
};

/// Producer side of a Transfer: a logical sequence of blocks read in chunks.
/// Implementations charge the device model and return the occupied interval
/// (tape::TapeReadSource, disk::ExtentReadSource, ...).
class BlockSource {
 public:
  virtual ~BlockSource() = default;

  /// Reads blocks [offset, offset+count) of the logical sequence, eligible
  /// at `ready`. When `out` is non-null the payloads are appended (phantom
  /// blocks append nullptr); null means timing-only.
  virtual Result<Interval> Read(BlockCount offset, BlockCount count, SimSeconds ready,
                                std::vector<BlockPayload>* out) = 0;

  /// Device label for spans, e.g. "tapeR", "disks".
  virtual std::string_view device() const = 0;

  /// Cost profile of a prospective coalesced run of up to `max_chunks`
  /// chunks of `chunk` blocks each starting at `offset`. The default ("not
  /// coalescible") keeps the per-chunk path.
  virtual ChunkCostProfile CostProfile(BlockCount offset, BlockCount chunk,
                                       std::uint64_t max_chunks) {
    (void)offset;
    (void)chunk;
    (void)max_chunks;
    return {};
  }
};

/// Consumer side of a Transfer. `payloads` is null in timing-only runs.
class BlockSink {
 public:
  virtual ~BlockSink() = default;

  virtual Result<Interval> Write(BlockCount offset, BlockCount count, SimSeconds ready,
                                 std::vector<BlockPayload>* payloads) = 0;

  virtual std::string_view device() const = 0;

  /// See BlockSource::CostProfile.
  virtual ChunkCostProfile CostProfile(BlockCount offset, BlockCount chunk,
                                       std::uint64_t max_chunks) {
    (void)offset;
    (void)chunk;
    (void)max_chunks;
    return {};
  }
};

/// The eager stage scheduler. One Pipeline spans one join execution (or one
/// phase of it); its virtual origin is the time the execution became
/// eligible to run.
class Pipeline {
 public:
  /// A stage operation: performs the device work, eligible at `ready`, and
  /// returns the interval it occupied.
  using StageOp = std::function<Result<Interval>(SimSeconds ready)>;

  /// \param start virtual time before which no stage may begin.
  /// \param trace optional span collector (spans are dropped when null).
  /// \param auditor optional SimSan observer (sim/auditor.h): every
  ///        committed stage is causality-checked and every completed
  ///        Transfer's block accounting verified. Never alters scheduling.
  explicit Pipeline(SimSeconds start, SpanTrace* trace = nullptr, Auditor* auditor = nullptr)
      : start_(start), trace_(trace), auditor_(auditor) {}

  SimSeconds start() const { return start_; }

  /// Latest finish of `deps` (entries equal to kNoStage are ignored),
  /// floored at start().
  SimSeconds ReadyAfter(std::span<const StageId> deps) const;

  /// Dispatches a stage: runs `op` with ready = ReadyAfter(deps) and records
  /// its span under `phase`.
  Result<StageId> Stage(std::string_view phase, std::string_view device,
                        std::span<const StageId> deps, BlockCount blocks, ByteCount bytes,
                        const StageOp& op);
  Result<StageId> Stage(std::string_view phase, std::string_view device,
                        std::initializer_list<StageId> deps, BlockCount blocks, ByteCount bytes,
                        const StageOp& op) {
    return Stage(phase, device, std::span<const StageId>(deps.begin(), deps.size()), blocks,
                 bytes, op);
  }

  /// Stage() with bounded in-place re-attempts after kDeviceError: the
  /// failed attempt's device time is already charged by the device model, so
  /// a retry simply re-runs `op` (which must be re-runnable — device reads
  /// deliver no payloads on failure). Other error codes propagate
  /// immediately. This is the chunk-recovery primitive behind Transfer();
  /// executors issuing bare scan stages use it directly.
  Result<StageId> StageWithRetry(std::string_view phase, std::string_view device,
                                 std::span<const StageId> deps, BlockCount blocks,
                                 ByteCount bytes, const StageOp& op, int retry_limit);

  /// A zero-duration marker at max(start(), when): lets externally-computed
  /// readiness (a bucket's flush time, buffer-space availability) enter the
  /// dependency graph as a stage.
  StageId Event(std::string_view phase, SimSeconds when);

  /// A zero-duration stage at ReadyAfter(deps) — a named synchronization
  /// point joining several chains.
  StageId Barrier(std::string_view phase, std::span<const StageId> deps);
  StageId Barrier(std::string_view phase, std::initializer_list<StageId> deps) {
    return Barrier(phase, std::span<const StageId>(deps.begin(), deps.size()));
  }

  /// Completion time / occupancy of a dispatched stage.
  SimSeconds end(StageId id) const { return intervals_[id].end; }
  Interval interval(StageId id) const { return intervals_[id]; }

  /// Latest finish over every dispatched stage (start() when none).
  SimSeconds Horizon() const { return horizon_; }

  std::size_t size() const { return intervals_.size(); }

  /// Chunk re-attempts performed by Transfer() across this pipeline's
  /// lifetime (kDeviceError recoveries at transfer granularity).
  std::uint64_t chunk_retries() const { return chunk_retries_; }

  /// Chunks committed through the coalesced fast path across this
  /// pipeline's lifetime (0 when every transfer ran per-chunk).
  std::uint64_t coalesced_chunks() const { return coalesced_chunks_; }

  /// Resumable progress of one Transfer. A caller that passes a checkpoint
  /// can re-issue a Transfer that failed with kDeviceError and have it pick
  /// up at the first incomplete chunk instead of re-running the whole pass —
  /// the join-level recovery unit of the fault model (fault.h).
  struct TransferCheckpoint {
    /// Blocks whose read AND write stages completed. A resumed Transfer
    /// starts its chunk loop here.
    BlockCount completed_blocks = 0;
    /// Chunk re-attempts spent so far (in-place retries after kDeviceError).
    std::uint64_t chunk_retries = 0;
  };

  /// One declared chunked transfer from `source` to `sink`.
  struct TransferPlan {
    /// Span labels for the producer/consumer stages.
    std::string_view read_phase;
    std::string_view write_phase;
    /// Blocks to move and the chunk (request) granularity.
    BlockCount total = 0;
    BlockCount chunk = 1;
    /// Streaming (concurrent methods): chunk i+1's read follows read i, the
    /// sink trails behind. Lock-step (sequential methods): chunk i+1's read
    /// waits for write i — the single process of the DT methods.
    bool streaming = false;
    /// Move real payloads from source to sink (false = timing-only).
    bool move_payloads = false;
    /// In-place re-attempts per chunk after a kDeviceError before the error
    /// propagates. The failed attempt's device time is already charged by the
    /// device model; the retry simply re-issues the chunk's read and write.
    /// Other error codes always propagate immediately.
    int chunk_retry_limit = 0;
    /// Optional resume point: when non-null the transfer starts at
    /// `checkpoint->completed_blocks` and keeps the struct current after
    /// every completed chunk, so the caller can re-issue on failure.
    TransferCheckpoint* checkpoint = nullptr;
    /// Allow the coalesced fast path: when both endpoints prove their
    /// per-chunk cost constant over a run of full chunks (CostProfile) and
    /// the plan moves no payloads, keeps no checkpoint, and retains no
    /// per-span trace, the steady-state read/write recurrence is replayed in
    /// closed O(chunks) scalar form and committed as ONE batched read stage
    /// plus ONE batched write stage — bit-identical in simulated seconds and
    /// every span/resource aggregate to the per-chunk loop. Ineligible
    /// windows (fault plans, positioning boundaries, tail chunks) fall back
    /// per-chunk and coalescing re-arms after them. Off forces per-chunk
    /// scheduling for every chunk (A/B validation, tests).
    bool allow_coalescing = true;
    /// Commit eligible windows in closed form: after a scalar warm-up the
    /// steady-state recurrence repeats as an exact per-period translation on
    /// the float grid, and the remaining periods are committed with O(1)
    /// arithmetic per jump instead of an O(chunks) replay — bit-identical in
    /// simulated seconds and every aggregate (the jump fires only when the
    /// translation is verified exact; see DESIGN.md §5.1). Off keeps the
    /// coalesced window's full scalar replay (the O(chunks) reference; the
    /// three-way equivalence tests compare per-chunk / replay / closed form).
    bool closed_form_commit = true;
  };

  struct TransferResult {
    StageId first_read = kNoStage;
    StageId last_read = kNoStage;
    StageId last_write = kNoStage;
    /// Finish of the producer (last read).
    SimSeconds source_done = 0.0;
    /// Finish of the whole transfer (max over reads and writes).
    SimSeconds done = 0.0;
  };

  /// Streams `plan.total` blocks through `plan.chunk`-block requests,
  /// issuing read stages on the source and write stages on the sink with
  /// the dependency structure selected by `plan.streaming`. The first read
  /// additionally waits for `deps`.
  Result<TransferResult> Transfer(const TransferPlan& plan, BlockSource& source,
                                  BlockSink& sink, std::span<const StageId> deps);
  Result<TransferResult> Transfer(const TransferPlan& plan, BlockSource& source,
                                  BlockSink& sink, std::initializer_list<StageId> deps = {}) {
    return Transfer(plan, source, sink, std::span<const StageId>(deps.begin(), deps.size()));
  }

 private:
  StageId Commit(std::string_view phase, std::string_view device, BlockCount blocks,
                 ByteCount bytes, SimSeconds ready, Interval interval);
  StageId CommitBatch(std::string_view phase, std::string_view device, BlockCount blocks,
                      ByteCount bytes, SimSeconds ready, Interval hull, std::uint64_t stages,
                      const DurationRunList& stage_durations);

  /// Attempts to commit `want` full chunks starting at `offset` through the
  /// coalesced fast path. \returns the chunks committed (0 = ineligible;
  /// the caller falls back per-chunk and may re-attempt at a later offset).
  std::uint64_t CoalesceChunks(const TransferPlan& plan, BlockSource& source, BlockSink& sink,
                               std::span<const StageId> deps, BlockCount offset,
                               BlockCount chunk, std::uint64_t want, TransferResult& result);

  SimSeconds start_;
  SpanTrace* trace_;
  Auditor* auditor_ = nullptr;
  std::vector<Interval> intervals_;
  SimSeconds horizon_ = 0.0;
  bool any_stage_ = false;
  std::uint64_t chunk_retries_ = 0;
  std::uint64_t coalesced_chunks_ = 0;
};

/// A zero-cost sink that collects payloads in memory — the "consumer is the
/// CPU" end of a transfer (building a hash table, probing). Memory transfers
/// are free in the system model (Section 3.2); the sink exists so the
/// transfer's consumption is still a declared, span-carrying stage.
class CollectSink final : public BlockSink {
 public:
  /// \param out destination for payloads; may be null (discard).
  explicit CollectSink(std::vector<BlockPayload>* out, std::string_view device = "mem")
      : out_(out), device_(device) {}

  Result<Interval> Write(BlockCount offset, BlockCount count, SimSeconds ready,
                         std::vector<BlockPayload>* payloads) override;
  std::string_view device() const override { return device_; }

  /// Memory consumption is free and (in a non-moving transfer) stateless,
  /// so any run of chunks is coalescible.
  ChunkCostProfile CostProfile(BlockCount offset, BlockCount chunk,
                               std::uint64_t max_chunks) override {
    (void)offset;
    (void)chunk;
    return ChunkCostProfile::Free(max_chunks);
  }

 private:
  std::vector<BlockPayload>* out_;
  std::string device_;
};

}  // namespace tertio::sim
