#pragma once

/// \file block.h
/// Fixed-size block codec: packing records into BlockPayloads and back.
///
/// Layout: a small header (magic + record count) followed by densely packed
/// fixed-width records. Blocks are the unit of all simulated I/O; the codec
/// is the boundary between the storage substrates (which move opaque
/// payloads) and the relational layer (which sees tuples).

#include <cstdint>
#include <span>
#include <vector>

#include "relation/schema.h"
#include "util/block_payload.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::rel {

inline constexpr ByteCount kBlockHeaderBytes = 8;
inline constexpr uint32_t kBlockMagic = 0x74424C4B;  // "tBLK"

/// Accumulates records and emits full blocks.
class BlockBuilder {
 public:
  BlockBuilder(const Schema* schema, ByteCount block_bytes);

  /// True if no record has been appended since the last Finish().
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == capacity_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t record_count() const { return count_; }

  /// Appends one record (must be exactly schema->record_bytes() long).
  Status Append(std::span<const uint8_t> record);

  /// Emits the current (possibly partial) block and resets. The emitted
  /// block is always block_bytes long (zero-padded).
  BlockPayload Finish();

 private:
  const Schema* schema_;
  ByteCount block_bytes_;
  std::uint64_t capacity_;
  std::uint64_t count_ = 0;
  std::vector<uint8_t> buffer_;
};

/// Decodes records from one block payload.
class BlockReader {
 public:
  /// The payload must have been produced by BlockBuilder with `schema`.
  static Result<BlockReader> Open(const BlockPayload& payload, const Schema* schema);

  std::uint64_t record_count() const { return count_; }

  /// Raw bytes of record `i`.
  std::span<const uint8_t> record(std::uint64_t i) const;

 private:
  BlockReader(BlockPayload payload, const Schema* schema, std::uint64_t count)
      : payload_(std::move(payload)), schema_(schema), count_(count) {}

  BlockPayload payload_;
  const Schema* schema_;
  std::uint64_t count_;
};

}  // namespace tertio::rel
