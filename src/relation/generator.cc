#include "relation/generator.h"

#include <algorithm>
#include <cmath>

#include "relation/block.h"
#include "relation/tuple.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace tertio::rel {

KeySampler::KeySampler(KeySequence sequence, uint64_t key_domain, double zipf_theta, uint64_t seed)
    : sequence_(sequence), domain_(key_domain), theta_(zipf_theta), rng_(seed) {
  TERTIO_CHECK(domain_ > 0, "key domain must be positive");
  if (sequence_ == KeySequence::kZipf) {
    // Build the CDF once. Zipf over ranks 1..domain with exponent theta;
    // ranks are scrambled through SplitMix64 so hot keys spread over the
    // domain instead of clustering at its start.
    zipf_cdf_.resize(domain_);
    double sum = 0.0;
    for (uint64_t i = 0; i < domain_; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
      zipf_cdf_[i] = sum;
    }
    for (double& v : zipf_cdf_) v /= sum;
  }
}

int64_t KeySampler::Next(uint64_t index) {
  switch (sequence_) {
    case KeySequence::kSequentialUnique:
      return static_cast<int64_t>(index % domain_);
    case KeySequence::kForeignKeyUniform:
    case KeySequence::kUniformRandom:
      return static_cast<int64_t>(rng_.NextBelow(domain_));
    case KeySequence::kZipf: {
      double u = rng_.NextDouble();
      auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
      uint64_t rank = static_cast<uint64_t>(it - zipf_cdf_.begin());
      if (rank >= domain_) rank = domain_ - 1;
      return static_cast<int64_t>(SplitMix64(rank) % domain_);
    }
  }
  return 0;
}

Result<Relation> GenerateOnTape(const GeneratorConfig& config, tape::TapeVolume* volume) {
  if (volume == nullptr) return Status::InvalidArgument("generator requires a tape volume");
  if (config.record_bytes <= 8) {
    return Status::InvalidArgument("record_bytes must exceed the 8-byte key");
  }
  if (config.compressibility < 0.0 || config.compressibility >= 1.0) {
    return Status::InvalidArgument("compressibility must be in [0, 1)");
  }

  Relation relation;
  relation.name = config.name;
  relation.schema = Schema::KeyPayload(config.record_bytes);
  relation.tuple_count = config.tuple_count;
  relation.compressibility = config.compressibility;
  relation.block_bytes = volume->block_bytes();
  relation.phantom = config.phantom;
  relation.volume = volume;
  relation.start_block = ToIndex(volume->size_blocks());

  std::uint64_t per_block = TuplesPerBlock(relation.schema, volume->block_bytes());
  relation.blocks = config.tuple_count == 0
                        ? 0
                        : CeilDiv<uint64_t>(config.tuple_count, per_block);

  if (config.phantom) {
    TERTIO_RETURN_IF_ERROR(volume->AppendPhantom(relation.blocks, config.compressibility));
    return relation;
  }

  uint64_t domain = config.key_domain != 0 ? config.key_domain : config.tuple_count;
  if (domain == 0) return relation;  // empty relation: nothing to write
  KeySampler sampler(config.keys, domain, config.zipf_theta, config.seed);
  BlockBuilder builder(&relation.schema, volume->block_bytes());
  TupleBuilder tuple(&relation.schema);
  for (uint64_t i = 0; i < config.tuple_count; ++i) {
    int64_t key = sampler.Next(i);
    tuple.SetInt64(0, key);
    // Payload derived from the key so that joined pairs can be integrity-
    // checked end-to-end.
    tuple.SetFixedChar(1, StrFormat("%s#%lld", config.name.c_str(),
                                    static_cast<long long>(key)));
    TERTIO_RETURN_IF_ERROR(builder.Append(tuple.bytes()));
    if (builder.full()) {
      TERTIO_RETURN_IF_ERROR(volume->Append(builder.Finish(), config.compressibility));
    }
  }
  if (!builder.empty()) {
    TERTIO_RETURN_IF_ERROR(volume->Append(builder.Finish(), config.compressibility));
  }
  TERTIO_CHECK(ToIndex(volume->size_blocks()) - relation.start_block == relation.blocks,
               "generated block count diverged from descriptor");
  return relation;
}

}  // namespace tertio::rel
