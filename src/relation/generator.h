#pragma once

/// \file generator.h
/// Synthetic relation generation (the paper's Section 6 workloads).
///
/// The paper's experiments use synthetic relations whose *sizes* and data
/// *compressibility* are the controlled variables. The generator writes a
/// relation onto a tape volume uncosted (the paper assumes the input tapes
/// already exist) in one of two modes:
///
///  * real tuples (`phantom = false`): every block holds packed records with
///    a controllable join-key distribution, so joins can be verified
///    tuple-by-tuple against a reference join;
///  * phantom (`phantom = true`): only block accounting, for timing-only
///    runs at the paper's multi-GB scales.

#include <cstdint>
#include <string>

#include "relation/relation.h"
#include "tape/tape_volume.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::rel {

/// How join keys are drawn.
enum class KeySequence : uint8_t {
  /// key = 0, 1, 2, ... (unique) — the canonical dimension relation R.
  kSequentialUnique,
  /// key uniform over [0, key_domain) — the canonical fact relation S
  /// referencing R; with R sequential-unique over the same domain, every S
  /// tuple matches exactly one R tuple.
  kForeignKeyUniform,
  /// key uniform over [0, key_domain), duplicates allowed on both sides.
  kUniformRandom,
  /// key Zipf-distributed over [0, key_domain) — skew stress for the hash
  /// partitioner's overflow handling (the paper assumes uniform hashing).
  kZipf,
};

/// Parameters of one synthetic relation.
struct GeneratorConfig {
  std::string name = "rel";
  /// Total record width; must exceed the 8-byte key.
  ByteCount record_bytes = 100;
  uint64_t tuple_count = 0;
  /// Fraction of each block the tape drive's compressor removes, in [0, 1).
  double compressibility = 0.25;
  uint64_t seed = 42;
  KeySequence keys = KeySequence::kSequentialUnique;
  /// Key domain for the non-sequential sequences (0 = tuple_count).
  uint64_t key_domain = 0;
  /// Zipf exponent (only for kZipf).
  double zipf_theta = 1.0;
  /// Generate phantom blocks (timing-only).
  bool phantom = false;
};

/// Appends the generated relation to `volume` (uncosted — experiment setup)
/// and returns its descriptor. The volume's block size is used.
Result<Relation> GenerateOnTape(const GeneratorConfig& config, tape::TapeVolume* volume);

/// Key sampler shared by the generator and tests.
class KeySampler {
 public:
  KeySampler(KeySequence sequence, uint64_t key_domain, double zipf_theta, uint64_t seed);

  /// The `index`-th key (sequential) or the next sampled key (random draws).
  int64_t Next(uint64_t index);

 private:
  KeySequence sequence_;
  uint64_t domain_;
  double theta_;
  Rng rng_;
  std::vector<double> zipf_cdf_;  // built lazily for kZipf
};

}  // namespace tertio::rel
