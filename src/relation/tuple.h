#pragma once

/// \file tuple.h
/// Typed access to fixed-width records.

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "relation/schema.h"
#include "util/status.h"

namespace tertio::rel {

/// Read-only typed view over one record's bytes. The underlying storage must
/// outlive the view.
class Tuple {
 public:
  Tuple(std::span<const uint8_t> bytes, const Schema* schema) : bytes_(bytes), schema_(schema) {}

  const Schema& schema() const { return *schema_; }
  std::span<const uint8_t> bytes() const { return bytes_; }

  int64_t GetInt64(size_t col) const {
    int64_t v;
    std::memcpy(&v, bytes_.data() + schema_->offset(col), sizeof(v));
    return v;
  }

  double GetDouble(size_t col) const {
    double v;
    std::memcpy(&v, bytes_.data() + schema_->offset(col), sizeof(v));
    return v;
  }

  std::string_view GetFixedChar(size_t col) const {
    return std::string_view(reinterpret_cast<const char*>(bytes_.data() + schema_->offset(col)),
                            schema_->column(col).width);
  }

 private:
  std::span<const uint8_t> bytes_;
  const Schema* schema_;
};

/// Builds one record into an internal buffer.
class TupleBuilder {
 public:
  explicit TupleBuilder(const Schema* schema)
      // tertio-lint: allow(units-unwrap) — std::vector sizing needs the raw count.
      : schema_(schema), buffer_(schema->record_bytes().value(), 0) {}

  TupleBuilder& SetInt64(size_t col, int64_t v) {
    std::memcpy(buffer_.data() + schema_->offset(col), &v, sizeof(v));
    return *this;
  }

  TupleBuilder& SetDouble(size_t col, double v) {
    std::memcpy(buffer_.data() + schema_->offset(col), &v, sizeof(v));
    return *this;
  }

  /// Copies `s` (truncated / zero-padded) into a fixed-char column.
  TupleBuilder& SetFixedChar(size_t col, std::string_view s) {
    uint32_t width = schema_->column(col).width;
    size_t n = s.size() < width ? s.size() : width;
    std::memset(buffer_.data() + schema_->offset(col), 0, width);
    std::memcpy(buffer_.data() + schema_->offset(col), s.data(), n);
    return *this;
  }

  std::span<const uint8_t> bytes() const { return buffer_; }

 private:
  const Schema* schema_;
  std::vector<uint8_t> buffer_;
};

}  // namespace tertio::rel
