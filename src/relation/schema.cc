#include "relation/schema.h"

#include "relation/block.h"
#include "util/string_util.h"

namespace tertio::rel {

Result<Schema> Schema::Create(std::vector<Column> columns) {
  if (columns.empty()) return Status::InvalidArgument("schema requires at least one column");
  Schema schema;
  uint32_t offset = 0;
  for (Column& col : columns) {
    switch (col.type) {
      case ColumnType::kInt64:
      case ColumnType::kDouble:
        col.width = 8;
        break;
      case ColumnType::kFixedChar:
        if (col.width == 0) {
          return Status::InvalidArgument(
              StrFormat("fixed-char column '%s' requires a positive width", col.name.c_str()));
        }
        break;
    }
    schema.offsets_.push_back(offset);
    offset += col.width;
    schema.columns_.push_back(std::move(col));
  }
  schema.record_bytes_ = offset;
  return schema;
}

Schema Schema::KeyPayload(ByteCount record_bytes) {
  TERTIO_CHECK(record_bytes > 8, "record must be wider than the 8-byte key");
  auto schema = Create({Column{"key", ColumnType::kInt64, 8},
                        Column{"payload", ColumnType::kFixedChar,
                               static_cast<uint32_t>((record_bytes - 8).value())}});
  return std::move(schema).value();
}

Result<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound(StrFormat("no column named '%s'", name.c_str()));
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type ||
        columns_[i].width != other.columns_[i].width) {
      return false;
    }
  }
  return true;
}

std::uint64_t TuplesPerBlock(const Schema& schema, ByteCount block_bytes) {
  TERTIO_CHECK(block_bytes > kBlockHeaderBytes + schema.record_bytes(),
               "block too small for one record");
  return (block_bytes - kBlockHeaderBytes) / schema.record_bytes();
}

}  // namespace tertio::rel
