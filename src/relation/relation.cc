#include "relation/relation.h"

namespace tertio::rel {

Status ForEachTuple(std::span<const BlockPayload> payloads, const Schema* schema,
                    const std::function<void(const Tuple&)>& fn) {
  for (const BlockPayload& payload : payloads) {
    TERTIO_ASSIGN_OR_RETURN(BlockReader reader, BlockReader::Open(payload, schema));
    for (std::uint64_t i = 0; i < reader.record_count(); ++i) {
      fn(Tuple(reader.record(i), schema));
    }
  }
  return Status::OK();
}

Result<uint64_t> CountTuples(std::span<const BlockPayload> payloads, const Schema* schema) {
  uint64_t count = 0;
  TERTIO_RETURN_IF_ERROR(ForEachTuple(payloads, schema, [&](const Tuple&) { ++count; }));
  return count;
}

}  // namespace tertio::rel
