#pragma once

/// \file schema.h
/// Fixed-width relational schemas.
///
/// tertio relations use fixed-width records: an 8-byte signed integer, an
/// 8-byte double, or a fixed-length character field per column. Fixed widths
/// keep block packing exact, which is what the paper's block-count arithmetic
/// assumes.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/units.h"

namespace tertio::rel {

enum class ColumnType : uint8_t { kInt64, kDouble, kFixedChar };

/// One column: name, type, and byte width (fixed by type except kFixedChar).
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// Width in bytes; meaningful for kFixedChar, derived otherwise.
  uint32_t width = 8;
};

/// An ordered list of columns with precomputed record offsets.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; fixed-char columns must carry a positive width.
  static Result<Schema> Create(std::vector<Column> columns);

  /// Convenience: the canonical experiment schema — an int64 join key plus a
  /// fixed-char payload padding the record to `record_bytes`.
  static Schema KeyPayload(ByteCount record_bytes);

  size_t column_count() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  uint32_t offset(size_t i) const { return offsets_[i]; }
  ByteCount record_bytes() const { return record_bytes_; }

  /// Index of the column named `name`.
  Result<size_t> FindColumn(const std::string& name) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  ByteCount record_bytes_ = 0;
};

/// Records that fit in one block after the block header.
std::uint64_t TuplesPerBlock(const Schema& schema, ByteCount block_bytes);

}  // namespace tertio::rel
