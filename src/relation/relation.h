#pragma once

/// \file relation.h
/// Descriptor of a stored relation and helpers to scan it.
///
/// A Relation records where a relation's blocks live (a tape volume region),
/// its schema, cardinality, and the data properties the device models need
/// (compressibility). The descriptor does not own the volume.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "relation/block.h"
#include "relation/schema.h"
#include "relation/tuple.h"
#include "tape/tape_volume.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::rel {

/// A relation stored contiguously on one tape volume.
struct Relation {
  std::string name;
  Schema schema;
  uint64_t tuple_count = 0;
  /// Blocks occupied on the medium (the paper's |R| / |S|).
  BlockCount blocks = 0;
  double compressibility = 0.0;
  ByteCount block_bytes = kDefaultBlockBytes;
  /// True when the blocks are phantom (timing-only runs).
  bool phantom = false;

  /// Home tape and position of the first block.
  tape::TapeVolume* volume = nullptr;
  BlockIndex start_block = 0;

  ByteCount bytes() const { return blocks * block_bytes; }
};

/// Invokes `fn` for every tuple in `payloads` (in order). Fails on phantom
/// or malformed blocks.
Status ForEachTuple(std::span<const BlockPayload> payloads, const Schema* schema,
                    const std::function<void(const Tuple&)>& fn);

/// Counts tuples across `payloads`.
Result<uint64_t> CountTuples(std::span<const BlockPayload> payloads, const Schema* schema);

}  // namespace tertio::rel
