#include "relation/block.h"

#include <cstring>

#include "util/string_util.h"

namespace tertio::rel {

BlockBuilder::BlockBuilder(const Schema* schema, ByteCount block_bytes)
    : schema_(schema), block_bytes_(block_bytes), capacity_(TuplesPerBlock(*schema, block_bytes)) {
  TERTIO_CHECK(schema != nullptr, "block builder requires a schema");
  buffer_.reserve(block_bytes.value());
  buffer_.resize(kBlockHeaderBytes.value(), 0);
}

Status BlockBuilder::Append(std::span<const uint8_t> record) {
  if (record.size() != schema_->record_bytes()) {
    return Status::InvalidArgument(
        StrFormat("record of %zu bytes does not match schema record size %llu", record.size(),
                  static_cast<unsigned long long>(schema_->record_bytes().value())));
  }
  if (full()) {
    return Status::ResourceExhausted("block is full; call Finish() first");
  }
  buffer_.insert(buffer_.end(), record.begin(), record.end());
  ++count_;
  return Status::OK();
}

BlockPayload BlockBuilder::Finish() {
  uint32_t magic = kBlockMagic;
  auto count32 = static_cast<uint32_t>(count_);
  std::memcpy(buffer_.data(), &magic, sizeof(magic));
  std::memcpy(buffer_.data() + sizeof(magic), &count32, sizeof(count32));
  buffer_.resize(block_bytes_.value(), 0);
  BlockPayload payload = MakePayload(std::move(buffer_));
  buffer_ = {};
  buffer_.reserve(block_bytes_.value());
  buffer_.resize(kBlockHeaderBytes.value(), 0);
  count_ = 0;
  return payload;
}

Result<BlockReader> BlockReader::Open(const BlockPayload& payload, const Schema* schema) {
  TERTIO_CHECK(schema != nullptr, "block reader requires a schema");
  if (payload == nullptr) {
    return Status::InvalidArgument("cannot decode a phantom block (timing-only data)");
  }
  if (payload->size() < kBlockHeaderBytes) {
    return Status::InvalidArgument("block payload shorter than header");
  }
  uint32_t magic = 0;
  uint32_t count = 0;
  std::memcpy(&magic, payload->data(), sizeof(magic));
  std::memcpy(&count, payload->data() + sizeof(magic), sizeof(count));
  if (magic != kBlockMagic) {
    return Status::InvalidArgument("block payload has wrong magic (not a tertio block)");
  }
  if (kBlockHeaderBytes + count * schema->record_bytes() > payload->size()) {
    return Status::InvalidArgument("block record count exceeds payload size");
  }
  return BlockReader(payload, schema, count);
}

std::span<const uint8_t> BlockReader::record(std::uint64_t i) const {
  TERTIO_CHECK(i < count_, "record index out of range");
  const uint8_t* base = payload_->data() + kBlockHeaderBytes.value() + i * schema_->record_bytes().value();
  return std::span<const uint8_t>(base, schema_->record_bytes().value());
}

}  // namespace tertio::rel
