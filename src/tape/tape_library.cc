#include "tape/tape_library.h"

#include "util/string_util.h"

namespace tertio::tape {

Result<int> TapeLibrary::AddCartridge(std::unique_ptr<TapeVolume> volume) {
  if (volume == nullptr) return Status::InvalidArgument("cannot add a null cartridge");
  if (static_cast<int>(slots_.size()) >= model_.slots) {
    return Status::ResourceExhausted(
        StrFormat("library %s is full (%d slots)", model_.name.c_str(), model_.slots));
  }
  slots_.push_back(Slot{std::move(volume), nullptr});
  return static_cast<int>(slots_.size()) - 1;
}

Result<TapeVolume*> TapeLibrary::CartridgeAt(int slot) {
  if (slot < 0 || slot >= static_cast<int>(slots_.size())) {
    return Status::NotFound(StrFormat("no cartridge in slot %d", slot));
  }
  return slots_[static_cast<size_t>(slot)].volume.get();
}

Result<int> TapeLibrary::FindSlotOf(const TapeDrive* drive) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].mounted_in == drive) return static_cast<int>(i);
  }
  return Status::NotFound(
      StrFormat("drive %s holds no cartridge from this library", drive->name().c_str()));
}

Result<sim::Interval> TapeLibrary::Mount(int slot, TapeDrive* drive, SimSeconds ready) {
  if (drive == nullptr) return Status::InvalidArgument("cannot mount into a null drive");
  if (slot < 0 || slot >= static_cast<int>(slots_.size())) {
    return Status::NotFound(StrFormat("no cartridge in slot %d", slot));
  }
  Slot& target = slots_[static_cast<size_t>(slot)];
  if (target.mounted_in != nullptr && target.mounted_in != drive) {
    return Status::FailedPrecondition(
        StrFormat("cartridge in slot %d is mounted in drive %s", slot,
                  target.mounted_in->name().c_str()));
  }
  if (target.mounted_in == drive) {
    return sim::Interval::At(ready);  // Already mounted: no-op.
  }

  SimSeconds cursor = ready;
  // If the drive holds one of our cartridges, return it first.
  if (auto home = FindSlotOf(drive); home.ok()) {
    slots_[static_cast<size_t>(home.value())].mounted_in = nullptr;
    drive->ForceMount(nullptr);
    sim::Interval eject = robot_->Schedule(cursor, model_.exchange_seconds, 0, "robot.eject");
    cursor = eject.end;
  }
  sim::Interval inject = robot_->Schedule(cursor, model_.exchange_seconds, 0, "robot.inject");
  target.mounted_in = drive;
  TERTIO_ASSIGN_OR_RETURN(sim::Interval load, drive->Load(target.volume.get(), inject.end));
  return sim::Interval{ready, load.end};
}

Result<sim::Interval> TapeLibrary::Dismount(TapeDrive* drive, SimSeconds ready) {
  if (drive == nullptr) return Status::InvalidArgument("cannot dismount a null drive");
  TERTIO_ASSIGN_OR_RETURN(int home, FindSlotOf(drive));
  TERTIO_ASSIGN_OR_RETURN(sim::Interval unload, drive->Unload(ready));
  sim::Interval stow = robot_->Schedule(unload.end, model_.exchange_seconds, 0, "robot.stow");
  slots_[static_cast<size_t>(home)].mounted_in = nullptr;
  return sim::Interval{ready, stow.end};
}

}  // namespace tertio::tape
