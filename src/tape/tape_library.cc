#include "tape/tape_library.h"

#include "util/string_util.h"

namespace tertio::tape {

Result<int> TapeLibrary::AddCartridge(std::unique_ptr<TapeVolume> volume) {
  if (volume == nullptr) return Status::InvalidArgument("cannot add a null cartridge");
  if (static_cast<int>(slots_.size()) >= model_.slots) {
    return Status::ResourceExhausted(
        StrFormat("library %s is full (%d slots)", model_.name.c_str(), model_.slots));
  }
  slots_.push_back(Slot{std::move(volume), nullptr});
  return static_cast<int>(slots_.size()) - 1;
}

Result<TapeVolume*> TapeLibrary::CartridgeAt(int slot) {
  if (slot < 0 || slot >= static_cast<int>(slots_.size())) {
    return Status::NotFound(StrFormat("no cartridge in slot %d", slot));
  }
  return slots_[static_cast<size_t>(slot)].volume.get();
}

Result<int> TapeLibrary::SlotOf(const TapeVolume* volume) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].volume.get() == volume) return static_cast<int>(i);
  }
  return Status::NotFound("volume is not a cartridge of this library");
}

Result<int> TapeLibrary::FindSlotOf(const TapeDrive* drive) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].mounted_in == drive) return static_cast<int>(i);
  }
  return Status::NotFound(
      StrFormat("drive %s holds no cartridge from this library", drive->name().c_str()));
}

Result<sim::Interval> TapeLibrary::RobotTrip(const char* tag, SimSeconds ready,
                                             int dest_slot) {
  SimSeconds trip_seconds =
      model_.exchange_seconds +
      model_.travel_seconds_per_slot * ExchangeDistance(dest_slot);
  if (faults_ != nullptr && faults_->enabled()) {
    sim::FaultInjector::ExchangeOutcome outcome =
        faults_->SimulateExchange(model_.exchange_seconds);
    for (int i = 0; i < outcome.failed_attempts; ++i) {
      // Each failed trip occupies the robot for a full exchange.
      sim::Interval failed =
          robot_->Schedule(ready, model_.exchange_seconds, 0, "robot.exchange-failed");
      ready = failed.end;
    }
    if (!outcome.completed) {
      return Status::DeviceError(
          StrFormat("library %s: robot exchange kept failing", model_.name.c_str()));
    }
  }
  sim::Interval trip = robot_->Schedule(ready, trip_seconds, 0, tag);
  robot_position_ = dest_slot;
  return trip;
}

Result<sim::Interval> TapeLibrary::Mount(int slot, TapeDrive* drive, SimSeconds ready) {
  if (drive == nullptr) return Status::InvalidArgument("cannot mount into a null drive");
  if (slot < 0 || slot >= static_cast<int>(slots_.size())) {
    return Status::NotFound(StrFormat("no cartridge in slot %d", slot));
  }
  Slot& target = slots_[static_cast<size_t>(slot)];
  if (target.mounted_in != nullptr && target.mounted_in != drive) {
    return Status::FailedPrecondition(
        StrFormat("cartridge in slot %d is mounted in drive %s", slot,
                  target.mounted_in->name().c_str()));
  }
  if (target.mounted_in == drive) {
    return sim::Interval::At(ready);  // Already mounted: no-op.
  }

  SimSeconds cursor = ready;
  // If the drive holds one of our cartridges, return it first: the drive
  // rewinds and unloads (charged on the drive's own timeline), then the
  // robot makes the eject trip. Slot state changes only after each physical
  // step succeeds, so a failure leaves the bookkeeping consistent.
  if (auto home = FindSlotOf(drive); home.ok()) {
    TERTIO_ASSIGN_OR_RETURN(sim::Interval rewind, drive->Rewind(cursor));
    TERTIO_ASSIGN_OR_RETURN(sim::Interval unload, drive->Unload(rewind.end));
    TERTIO_ASSIGN_OR_RETURN(sim::Interval eject,
                            RobotTrip("robot.eject", unload.end, home.value()));
    slots_[static_cast<size_t>(home.value())].mounted_in = nullptr;
    cursor = eject.end;
  }
  TERTIO_ASSIGN_OR_RETURN(sim::Interval inject, RobotTrip("robot.inject", cursor, slot));
  TERTIO_ASSIGN_OR_RETURN(sim::Interval load, drive->Load(target.volume.get(), inject.end));
  // Only now is the cartridge actually in the drive.
  target.mounted_in = drive;
  return sim::Interval{ready, load.end};
}

Result<sim::Interval> TapeLibrary::Dismount(TapeDrive* drive, SimSeconds ready) {
  if (drive == nullptr) return Status::InvalidArgument("cannot dismount a null drive");
  TERTIO_ASSIGN_OR_RETURN(int home, FindSlotOf(drive));
  TERTIO_ASSIGN_OR_RETURN(sim::Interval rewind, drive->Rewind(ready));
  TERTIO_ASSIGN_OR_RETURN(sim::Interval unload, drive->Unload(rewind.end));
  TERTIO_ASSIGN_OR_RETURN(sim::Interval stow, RobotTrip("robot.stow", unload.end, home));
  slots_[static_cast<size_t>(home)].mounted_in = nullptr;
  return sim::Interval{ready, stow.end};
}

}  // namespace tertio::tape
