#include "tape/tape_scheduler.h"

#include <algorithm>

namespace tertio::tape {

void TapeScheduler::Order(std::vector<TapeReadRequest>* batch) const {
  // Equal start positions tie-break on request id: with several sessions
  // submitting into one scheduler, submission interleaving must not change
  // the executed order of an otherwise identical batch.
  auto by_position = [](const TapeReadRequest& a, const TapeReadRequest& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.id < b.id;
  };
  switch (policy_) {
    case SchedulePolicy::kFifo:
      return;
    case SchedulePolicy::kSortedAscending:
      std::sort(batch->begin(), batch->end(), by_position);
      return;
    case SchedulePolicy::kElevator: {
      std::sort(batch->begin(), batch->end(), by_position);
      // Rotate so the sweep starts at the first request at or after the
      // current head position.
      BlockIndex head = drive_->head_position();
      auto pivot = std::find_if(batch->begin(), batch->end(),
                                [head](const TapeReadRequest& r) { return r.start >= head; });
      std::rotate(batch->begin(), pivot, batch->end());
      return;
    }
  }
}

TapeScheduler::BatchResult TapeScheduler::ExecuteBatch(SimSeconds ready, bool capture) {
  std::vector<TapeReadRequest> batch = std::move(pending_);
  pending_.clear();
  Order(&batch);
  BatchResult result;
  result.completions.reserve(batch.size());
  SimSeconds cursor = ready;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const TapeReadRequest& request = batch[i];
    TapeReadCompletion completion;
    completion.id = request.id;
    Result<sim::Interval> interval = drive_->Read(request.start, request.count, cursor,
                                                  capture ? &completion.payloads : nullptr);
    if (!interval.ok()) {
      // Don't lose the rest of the batch: the failed request and every
      // unexecuted one go back to the head of the pending queue, ahead of
      // anything submitted since this batch was taken.
      result.status = interval.status();
      result.requeued = batch.size() - i;
      pending_.insert(pending_.begin(), batch.begin() + static_cast<std::ptrdiff_t>(i),
                      batch.end());
      return result;
    }
    completion.interval = *interval;
    cursor = completion.interval.end;
    result.completions.push_back(std::move(completion));
  }
  return result;
}

}  // namespace tertio::tape
