#include "tape/tape_scheduler.h"

#include <algorithm>

namespace tertio::tape {

void TapeScheduler::Order(std::vector<TapeReadRequest>* batch) const {
  switch (policy_) {
    case SchedulePolicy::kFifo:
      return;
    case SchedulePolicy::kSortedAscending:
      std::stable_sort(batch->begin(), batch->end(),
                       [](const TapeReadRequest& a, const TapeReadRequest& b) {
                         return a.start < b.start;
                       });
      return;
    case SchedulePolicy::kElevator: {
      std::stable_sort(batch->begin(), batch->end(),
                       [](const TapeReadRequest& a, const TapeReadRequest& b) {
                         return a.start < b.start;
                       });
      // Rotate so the sweep starts at the first request at or after the
      // current head position.
      BlockIndex head = drive_->head_position();
      auto pivot = std::find_if(batch->begin(), batch->end(),
                                [head](const TapeReadRequest& r) { return r.start >= head; });
      std::rotate(batch->begin(), pivot, batch->end());
      return;
    }
  }
}

Result<std::vector<TapeReadCompletion>> TapeScheduler::ExecuteBatch(SimSeconds ready,
                                                                    bool capture) {
  std::vector<TapeReadRequest> batch = std::move(pending_);
  pending_.clear();
  Order(&batch);
  std::vector<TapeReadCompletion> completions;
  completions.reserve(batch.size());
  SimSeconds cursor = ready;
  for (const TapeReadRequest& request : batch) {
    TapeReadCompletion completion;
    completion.id = request.id;
    TERTIO_ASSIGN_OR_RETURN(
        completion.interval,
        drive_->Read(request.start, request.count, cursor,
                     capture ? &completion.payloads : nullptr));
    cursor = completion.interval.end;
    completions.push_back(std::move(completion));
  }
  return completions;
}

}  // namespace tertio::tape
