#include "tape/spanned_volume.h"

#include <algorithm>

#include "util/string_util.h"

namespace tertio::tape {

Result<SpannedVolumeSet> SpannedVolumeSet::Create(TapeLibrary* library, std::vector<int> slots) {
  if (library == nullptr) return Status::InvalidArgument("spanned set requires a library");
  if (slots.empty()) return Status::InvalidArgument("spanned set requires at least one slot");
  SpannedVolumeSet set;
  set.library_ = library;
  set.slots_ = std::move(slots);
  for (int slot : set.slots_) {
    TERTIO_ASSIGN_OR_RETURN(TapeVolume * volume, library->CartridgeAt(slot));
    set.sizes_.push_back(volume->size_blocks());
    set.total_blocks_ += volume->size_blocks();
  }
  return set;
}

Result<SpannedVolumeSet::Location> SpannedVolumeSet::Resolve(BlockIndex logical) const {
  BlockIndex offset = logical;
  for (size_t member = 0; member < sizes_.size(); ++member) {
    if (offset < sizes_[member]) {
      return Location{static_cast<int>(member), offset};
    }
    offset -= sizes_[member];
  }
  return Status::InvalidArgument(
      StrFormat("logical block %llu beyond spanned set of %llu blocks",
                static_cast<unsigned long long>(logical.value()),
                static_cast<unsigned long long>(total_blocks_.value())));
}

Result<sim::Interval> SpannedReader::Read(BlockIndex start, BlockCount count, SimSeconds ready,
                                          std::vector<BlockPayload>* out) {
  if (count == 0) return sim::Interval::At(ready);
  if (start + count > set_->total_blocks()) {
    return Status::InvalidArgument("spanned read beyond end of set");
  }
  sim::Interval hull = sim::Interval::At(ready);
  bool first = true;
  SimSeconds cursor = ready;
  BlockIndex logical = start;
  BlockCount remaining = count;
  while (remaining > 0) {
    TERTIO_ASSIGN_OR_RETURN(SpannedVolumeSet::Location loc, set_->Resolve(logical));
    int slot = set_->slot_of(loc.member);
    TERTIO_ASSIGN_OR_RETURN(TapeVolume * volume, set_->library()->CartridgeAt(slot));
    if (drive_->volume() != volume) {
      TERTIO_ASSIGN_OR_RETURN(sim::Interval mounted,
                              set_->library()->Mount(slot, drive_, cursor));
      cursor = mounted.end;
      ++exchanges_;
    }
    BlockCount take =
        std::min<BlockCount>(remaining, ToIndex(set_->blocks_of(loc.member)) - loc.local);
    TERTIO_ASSIGN_OR_RETURN(sim::Interval read, drive_->Read(loc.local, take, cursor, out));
    cursor = read.end;
    hull = first ? read : sim::Interval::Hull(hull, read);
    hull.start = std::min(hull.start, ready);
    first = false;
    logical += take;
    remaining -= take;
  }
  hull.end = cursor;
  return hull;
}

}  // namespace tertio::tape
