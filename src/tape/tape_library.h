#pragma once

/// \file tape_library.h
/// An automated tape library: cartridge slots plus a robot arm.
///
/// The paper's cost model argues that media-exchange delays (~30 s) are
/// negligible against full-tape transfer times and excludes them; the library
/// model exists so that this claim is *checked* by tests and so that
/// multi-cartridge relations (a relation spanning several tapes) can be
/// simulated. The robot is a resource of its own: exchanges on one drive can
/// overlap transfers on another.

#include <memory>
#include <string>
#include <vector>

#include "sim/resource.h"
#include "tape/tape_drive.h"
#include "tape/tape_model.h"
#include "tape/tape_volume.h"
#include "util/status.h"

namespace tertio::tape {

/// Slots, robot, and mount bookkeeping for a set of drives.
class TapeLibrary {
 public:
  TapeLibrary(TapeLibraryModel model, sim::Resource* robot)
      : model_(std::move(model)), robot_(robot) {
    TERTIO_CHECK(robot != nullptr, "tape library requires a robot resource");
  }

  const TapeLibraryModel& model() const { return model_; }
  sim::Resource* robot() { return robot_; }

  /// Attaches a fault source for robot exchanges (not owned; may be null).
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }
  sim::FaultInjector* fault_injector() const { return faults_; }

  /// Inserts `volume` into the first free slot. \returns the slot index.
  Result<int> AddCartridge(std::unique_ptr<TapeVolume> volume);

  /// The volume in `slot` (may be mounted in a drive).
  Result<TapeVolume*> CartridgeAt(int slot);

  /// The home slot of `volume`, or NotFound if it is not a cartridge of this
  /// library. Lets the service layer map a relation to the cartridge queue
  /// it must wait on.
  Result<int> SlotOf(const TapeVolume* volume) const;

  /// The drive `slot`'s cartridge is currently mounted in, or null.
  TapeDrive* MountedIn(int slot) const {
    if (slot < 0 || slot >= static_cast<int>(slots_.size())) return nullptr;
    return slots_[static_cast<size_t>(slot)].mounted_in;
  }

  /// The slot the robot arm last exchanged with (0 before any trip — the
  /// arm parks at the first slot). The elevator service policy sweeps its
  /// cartridge queue relative to this position.
  int robot_position() const { return robot_position_; }

  /// Slots of arm travel a trip to `slot` would cost from the current
  /// position. With TapeLibraryModel::travel_seconds_per_slot == 0 this is
  /// informational only (every trip costs exchange_seconds regardless);
  /// otherwise each slot of distance adds that much robot time.
  int ExchangeDistance(int slot) const {
    int d = slot - robot_position_;
    return d < 0 ? -d : d;
  }

  /// Mounts the cartridge in `slot` into `drive`. If the drive holds another
  /// cartridge it is exchanged (one robot trip to return it, one to fetch the
  /// new one) and returned to its home slot. \returns the interval covering
  /// robot motion plus drive load.
  Result<sim::Interval> Mount(int slot, TapeDrive* drive, SimSeconds ready);

  /// Returns the cartridge in `drive` to its home slot.
  Result<sim::Interval> Dismount(TapeDrive* drive, SimSeconds ready);

  int slot_count() const { return static_cast<int>(slots_.size()); }

 private:
  struct Slot {
    std::unique_ptr<TapeVolume> volume;
    TapeDrive* mounted_in = nullptr;
  };

  Result<int> FindSlotOf(const TapeDrive* drive) const;

  /// One robot exchange trip to `dest_slot` at `ready`, drawing exchange
  /// failures from the injector (each failed trip occupies the robot for a
  /// full exchange). Charges travel_seconds_per_slot for the arm distance and
  /// leaves the arm parked at `dest_slot`.
  Result<sim::Interval> RobotTrip(const char* tag, SimSeconds ready, int dest_slot);

  TapeLibraryModel model_;
  sim::Resource* robot_;
  std::vector<Slot> slots_;
  sim::FaultInjector* faults_ = nullptr;
  int robot_position_ = 0;
};

}  // namespace tertio::tape
