#include "tape/tape_model.h"

namespace tertio::tape {

TapeDriveModel TapeDriveModel::DLT4000() {
  TapeDriveModel m;
  m.name = "Quantum DLT-4000 (20GB mode)";
  m.native_rate_bps = 1.5e6;
  m.max_compression_gain = 2.0;
  m.compression_enabled = true;
  m.reposition_seconds = 1.0;
  m.locate_base_seconds = 8.0;
  m.locate_seconds_per_byte = 2.5e-9;
  m.rewind_seconds = 10.0;
  m.load_seconds = 25.0;
  m.supports_read_reverse = false;
  return m;
}

TapeDriveModel TapeDriveModel::Ideal(BytesPerSecond rate_bps) {
  TapeDriveModel m;
  m.name = "ideal-tape";
  m.native_rate_bps = rate_bps;
  m.max_compression_gain = 1.0;
  m.compression_enabled = false;
  m.reposition_seconds = 0.0;
  m.locate_base_seconds = 0.0;
  m.locate_seconds_per_byte = 0.0;
  m.rewind_seconds = 0.0;
  m.load_seconds = 0.0;
  m.supports_read_reverse = true;
  return m;
}

TapeLibraryModel TapeLibraryModel::SmallAutoloader() {
  TapeLibraryModel m;
  m.name = "autoloader-16";
  m.exchange_seconds = 30.0;
  m.slots = 16;
  return m;
}

}  // namespace tertio::tape
