#pragma once

/// \file tape_drive.h
/// A simulated tape drive: head position, streaming state, and costed I/O.
///
/// The drive binds a TapeDriveModel to a sim::Resource (its device timeline).
/// All operations take the virtual time at which the request becomes ready
/// and return the interval the drive was occupied, so executors can overlap
/// tape I/O with disk I/O on other resources — the parallel I/O at the heart
/// of the paper's concurrent join methods.
///
/// Streaming semantics: a read or append that continues exactly where the
/// head stopped streams at the sustained rate; any discontiguous access pays
/// a locate (distance-dependent) plus a repositioning penalty. The drive's
/// internal buffer is assumed large enough to hide producer/consumer stalls
/// during contiguous access (Section 3.2 of the paper).

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/fault.h"
#include "sim/pipeline.h"
#include "sim/resource.h"
#include "tape/tape_model.h"
#include "tape/tape_volume.h"
#include "util/status.h"

namespace tertio::tape {

/// Cumulative drive activity counters.
struct TapeDriveStats {
  BlockCount blocks_read = 0;
  BlockCount blocks_written = 0;
  /// Blocks delivered out of a shared-pass window (multicast from another
  /// query's in-flight sequential pass) without occupying the drive.
  BlockCount blocks_shared = 0;
  /// Blocks delivered out of a disk-resident cache window (the HSM extent
  /// cache, disk/extent_cache.h) instead of the tape — the drive stays idle
  /// and the disk charges the read.
  BlockCount blocks_cached = 0;
  std::uint64_t locate_count = 0;
  std::uint64_t reposition_count = 0;
  std::uint64_t rewind_count = 0;
  std::uint64_t load_count = 0;
};

/// One simulated drive. Mount volumes either directly via Load() (the
/// paper's setup: "tapes have been inserted and loaded before the join
/// begins") or through a TapeLibrary robot.
class TapeDrive {
 public:
  TapeDrive(std::string name, TapeDriveModel model, sim::Resource* resource)
      : name_(std::move(name)), model_(model), resource_(resource) {
    TERTIO_CHECK(resource != nullptr, "tape drive requires a resource");
  }

  const std::string& name() const { return name_; }
  const TapeDriveModel& model() const { return model_; }
  sim::Resource* resource() { return resource_; }
  const TapeDriveStats& stats() const { return stats_; }

  bool loaded() const { return volume_ != nullptr; }
  TapeVolume* volume() { return volume_; }
  BlockIndex head_position() const { return head_; }

  /// Attaches a fault source (not owned; may be null). Reads then draw
  /// transient errors and latent bad blocks from it; with no injector (or a
  /// disabled one) the costing path is untouched.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }
  sim::FaultInjector* fault_injector() const { return faults_; }

  /// Inserts and loads `volume`; the head is left at block 0.
  Result<sim::Interval> Load(TapeVolume* volume, SimSeconds ready);

  /// Ejects the current volume (costed as a load).
  Result<sim::Interval> Unload(SimSeconds ready);

  /// Reads `count` blocks starting at `start`. If `out` is non-null the
  /// payloads are appended to it (phantom blocks append nullptr).
  Result<sim::Interval> Read(BlockIndex start, BlockCount count, SimSeconds ready,
                             std::vector<BlockPayload>* out = nullptr);

  /// Appends real blocks at end-of-data.
  Result<sim::Interval> Append(const std::vector<BlockPayload>& payloads, double compressibility,
                               SimSeconds ready);

  /// Appends `count` phantom blocks at end-of-data.
  Result<sim::Interval> AppendPhantom(BlockCount count, double compressibility, SimSeconds ready);

  /// Rewinds to block 0 (serpentine: cheap and size-independent).
  Result<sim::Interval> Rewind(SimSeconds ready);

  /// Positions the head at `target` without transferring data (SCSI
  /// LOCATE). No-op if already there.
  Result<sim::Interval> Locate(BlockIndex target, SimSeconds ready);

  /// Reads `count` blocks *backwards*, ending at the current head position
  /// (SCSI READ REVERSE). Errors with kUnimplemented if the model lacks it.
  Result<sim::Interval> ReadReverse(BlockCount count, SimSeconds ready,
                                    std::vector<BlockPayload>* out = nullptr);

  /// Used by TapeLibrary: swap cartridges without charging drive time (the
  /// robot charges its own exchange time).
  void ForceMount(TapeVolume* volume) {
    volume_ = volume;
    head_ = 0;
    ClearSharedPassWindow();
    ClearCacheWindow();
  }

  /// True when [start, start+count) lies inside [outer_start,
  /// outer_start+outer_count). Written subtraction-side so huge start/count
  /// values cannot overflow the comparison into a false positive.
  static bool RangeContains(BlockIndex outer_start, BlockCount outer_count, BlockIndex start,
                            BlockCount count) {
    return start >= outer_start && count <= outer_count &&
           start - outer_start <= outer_count - count;
  }

  /// Declares [start, start+count) of the mounted volume covered by an
  /// in-flight sequential pass that other queries may piggyback on (the
  /// service layer's scan sharing, exec/query_scheduler.h). While the window
  /// is set, a Read fully inside it delivers payloads at zero drive cost —
  /// the data is multicast from the one physical pass — counted in
  /// stats().blocks_shared instead of blocks_read, without moving the head.
  void SetSharedPassWindow(BlockIndex start, BlockCount count) {
    shared_window_volume_ = volume_;
    shared_window_start_ = start;
    shared_window_count_ = count;
  }
  void ClearSharedPassWindow() {
    shared_window_volume_ = nullptr;
    shared_window_count_ = 0;
  }
  bool shared_pass_active() const {
    return shared_window_volume_ != nullptr && shared_window_volume_ == volume_;
  }

  /// Charges the device time of a cache-window read of [start, start+count)
  /// ready at `ready` — the disk-side cost of serving the blocks from the
  /// HSM extent cache. Payload delivery stays with the drive.
  using CachedReadFn =
      std::function<Result<sim::Interval>(BlockIndex start, BlockCount count, SimSeconds ready)>;

  /// Declares [start, start+count) of the mounted volume resident in the
  /// cross-query extent cache (disk/extent_cache.h). While the window is
  /// set, a Read fully inside it is served by `reader` — the blocks arrive
  /// from the disk copy at disk cost, the drive never moves, and the blocks
  /// count in stats().blocks_cached instead of blocks_read. An active
  /// shared-pass window wins over the cache window (multicast is free).
  void SetCacheWindow(BlockIndex start, BlockCount count, CachedReadFn reader) {
    cache_window_volume_ = volume_;
    cache_window_start_ = start;
    cache_window_count_ = count;
    cache_reader_ = std::move(reader);
  }
  void ClearCacheWindow() {
    cache_window_volume_ = nullptr;
    cache_window_count_ = 0;
    cache_reader_ = nullptr;
  }
  bool cache_window_active() const {
    return cache_window_volume_ != nullptr && cache_window_volume_ == volume_ &&
           cache_reader_ != nullptr;
  }

  /// Steady-state cost profile for up to `max_chunks` sequential reads of
  /// `chunk` blocks starting at `start` (sim/pipeline.h coalescing). Empty —
  /// per-chunk fallback — unless the head already sits at `start` (so no
  /// locate is charged), no fault plan is active, and the stored
  /// compressibility is uniform over the prefix (so every chunk's mean, and
  /// therefore its transfer time, is bit-identical).
  sim::ChunkCostProfile ReadCostProfile(BlockIndex start, BlockCount chunk,
                                        std::uint64_t max_chunks);

  /// Steady-state cost profile for up to `max_chunks` phantom appends of
  /// `chunk` blocks at end-of-data. Empty unless the head is parked at
  /// end-of-data, no fault plan is active, and the remaining capacity admits
  /// at least one chunk.
  sim::ChunkCostProfile AppendCostProfile(double compressibility, BlockCount chunk,
                                          std::uint64_t max_chunks);

  /// Emits a read of [start, start+count) as one pipeline stage ready after
  /// `deps`, re-attempted in place up to `retry_limit` times on kDeviceError
  /// (a failed read delivers nothing, so a re-read is clean). \returns the
  /// stage.
  Result<sim::StageId> IssueRead(sim::Pipeline& pipe, std::string_view phase,
                                 std::span<const sim::StageId> deps, BlockIndex start,
                                 BlockCount count, std::vector<BlockPayload>* out = nullptr,
                                 int retry_limit = 0);
  Result<sim::StageId> IssueRead(sim::Pipeline& pipe, std::string_view phase,
                                 std::initializer_list<sim::StageId> deps, BlockIndex start,
                                 BlockCount count, std::vector<BlockPayload>* out = nullptr,
                                 int retry_limit = 0) {
    return IssueRead(pipe, phase, std::span<const sim::StageId>(deps.begin(), deps.size()),
                     start, count, out, retry_limit);
  }

 private:
  Status CheckLoaded() const;

  /// Seconds to move the head to `target` (0 if already there), charging a
  /// locate + reposition when the access is discontiguous.
  SimSeconds SeekCost(BlockIndex target);

  /// True when [start, start+count) lies inside the active shared window.
  bool InSharedPassWindow(BlockIndex start, BlockCount count) const {
    return shared_pass_active() &&
           RangeContains(shared_window_start_, shared_window_count_, start, count);
  }

  /// True when [start, start+count) lies inside the active cache window.
  bool InCacheWindow(BlockIndex start, BlockCount count) const {
    return cache_window_active() &&
           RangeContains(cache_window_start_, cache_window_count_, start, count);
  }

  std::string name_;
  TapeDriveModel model_;
  sim::Resource* resource_;
  TapeVolume* volume_ = nullptr;
  BlockIndex head_ = 0;
  TapeDriveStats stats_;
  sim::FaultInjector* faults_ = nullptr;
  /// Shared-pass window state; valid only while the declaring volume stays
  /// mounted (a Load/ForceMount/Unload invalidates it).
  TapeVolume* shared_window_volume_ = nullptr;
  BlockIndex shared_window_start_ = 0;
  BlockCount shared_window_count_ = 0;
  /// Cache window state; same mount-lifetime rules as the shared window.
  TapeVolume* cache_window_volume_ = nullptr;
  BlockIndex cache_window_start_ = 0;
  BlockCount cache_window_count_ = 0;
  CachedReadFn cache_reader_;
};

/// Pipeline source streaming a tape-resident relation: block offset k of a
/// Transfer maps to tape block base + k on `drive`.
class TapeReadSource final : public sim::BlockSource {
 public:
  TapeReadSource(TapeDrive* drive, BlockIndex base) : drive_(drive), base_(base) {}

  Result<sim::Interval> Read(BlockCount offset, BlockCount count, SimSeconds ready,
                             std::vector<BlockPayload>* out) override {
    return drive_->Read(base_ + offset, count, ready, out);
  }
  sim::ChunkCostProfile CostProfile(BlockCount offset, BlockCount chunk,
                                    std::uint64_t max_chunks) override {
    return drive_->ReadCostProfile(base_ + offset, chunk, max_chunks);
  }
  std::string_view device() const override { return drive_->name(); }

 private:
  TapeDrive* drive_;
  BlockIndex base_;
};

/// Pipeline sink appending a Transfer's chunks at end-of-data on `drive`.
class TapeAppendSink final : public sim::BlockSink {
 public:
  TapeAppendSink(TapeDrive* drive, double compressibility)
      : drive_(drive), compressibility_(compressibility) {}

  Result<sim::Interval> Write(BlockCount offset, BlockCount count, SimSeconds ready,
                              std::vector<BlockPayload>* payloads) override {
    (void)offset;
    if (payloads == nullptr) return drive_->AppendPhantom(count, compressibility_, ready);
    return drive_->Append(*payloads, compressibility_, ready);
  }
  sim::ChunkCostProfile CostProfile(BlockCount offset, BlockCount chunk,
                                    std::uint64_t max_chunks) override {
    (void)offset;
    return drive_->AppendCostProfile(compressibility_, chunk, max_chunks);
  }
  std::string_view device() const override { return drive_->name(); }

 private:
  TapeDrive* drive_;
  double compressibility_;
};

}  // namespace tertio::tape
