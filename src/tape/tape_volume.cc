#include "tape/tape_volume.h"

#include <algorithm>

#include "sim/auditor.h"
#include "util/string_util.h"

namespace tertio::tape {

Status TapeVolume::Append(BlockPayload payload, double compressibility) {
  if (compressibility < 0.0 || compressibility >= 1.0) {
    return Status::InvalidArgument("compressibility must be in [0, 1)");
  }
  if (capacity_blocks_ != 0 && blocks_.size() >= capacity_blocks_) {
    return Status::ResourceExhausted(
        StrFormat("tape %s is full (%llu blocks)", name_.c_str(),
                  static_cast<unsigned long long>(capacity_blocks_.value())));
  }
  NoteAppendRun(static_cast<float>(compressibility));
  blocks_.push_back(Entry{std::move(payload), static_cast<float>(compressibility)});
  if (auditor_ != nullptr) auditor_->OnTapeOccupancy(name_, blocks_.size(), capacity_blocks_);
  return Status::OK();
}

Status TapeVolume::AppendPhantom(BlockCount count, double compressibility) {
  if (compressibility < 0.0 || compressibility >= 1.0) {
    return Status::InvalidArgument("compressibility must be in [0, 1)");
  }
  if (capacity_blocks_ != 0 && blocks_.size() + count > capacity_blocks_) {
    return Status::ResourceExhausted(
        StrFormat("tape %s cannot hold %llu more blocks", name_.c_str(),
                  static_cast<unsigned long long>(count.value())));
  }
  if (count > 0) NoteAppendRun(static_cast<float>(compressibility));
  blocks_.insert(blocks_.end(), count.value(), Entry{nullptr, static_cast<float>(compressibility)});
  if (auditor_ != nullptr) auditor_->OnTapeOccupancy(name_, blocks_.size(), capacity_blocks_);
  return Status::OK();
}

void TapeVolume::NoteAppendRun(float compressibility) {
  if (runs_.empty() || runs_.back().compressibility != compressibility) {
    runs_.push_back(Run{blocks_.size(), compressibility});
  }
}

Result<BlockPayload> TapeVolume::ReadBlock(BlockIndex index) const {
  TERTIO_RETURN_IF_ERROR(CheckRange(index, 1));
  return blocks_[(index).value()].payload;
}

Result<double> TapeVolume::Compressibility(BlockIndex index) const {
  TERTIO_RETURN_IF_ERROR(CheckRange(index, 1));
  return static_cast<double>(blocks_[(index).value()].compressibility);
}

Result<double> TapeVolume::MeanCompressibility(BlockIndex start, BlockCount count) const {
  TERTIO_RETURN_IF_ERROR(CheckRange(start, count));
  if (count == 0) return 0.0;
  double sum = 0.0;
  for (BlockIndex i = start; i < start + count; ++i) {
    sum += blocks_[(i).value()].compressibility;
  }
  return sum / static_cast<double>(count.value());
}

std::uint64_t TapeVolume::UniformPrefixChunks(BlockIndex start, BlockCount chunk,
                                           std::uint64_t max_chunks) const {
  if (chunk == 0 || start >= blocks_.size()) return 0;
  std::uint64_t whole = (blocks_.size() - start) / chunk;
  if (max_chunks < whole) whole = max_chunks;
  if (whole == 0) return 0;
  // Adjacent runs always differ in value, so the uniform extent from `start`
  // is exactly the remainder of the run containing it.
  auto next = std::upper_bound(
      runs_.begin(), runs_.end(), start,
      [](BlockIndex index, const Run& run) { return index < run.begin; });
  const BlockIndex run_end = next == runs_.end() ? blocks_.size() : next->begin;
  const std::uint64_t uniform = (run_end - start) / chunk;
  return uniform < whole ? uniform : whole;
}

Status TapeVolume::Truncate(BlockCount new_size) {
  if (new_size > blocks_.size()) {
    return Status::InvalidArgument(
        StrFormat("cannot truncate tape %s to %llu blocks: only %zu recorded", name_.c_str(),
                  static_cast<unsigned long long>(new_size.value()), blocks_.size()));
  }
  blocks_.resize(new_size.value());
  while (!runs_.empty() && runs_.back().begin >= new_size) runs_.pop_back();
  return Status::OK();
}

Status TapeVolume::CheckRange(BlockIndex start, BlockCount count) const {
  if (start + count > blocks_.size()) {
    return Status::InvalidArgument(
        StrFormat("range [%llu, %llu) out of bounds on tape %s (%zu blocks)",
                  static_cast<unsigned long long>(start.value()),
                  static_cast<unsigned long long>((start + count).value()), name_.c_str(), blocks_.size()));
  }
  return Status::OK();
}

}  // namespace tertio::tape
