#include "tape/tape_volume.h"

#include "sim/auditor.h"
#include "util/string_util.h"

namespace tertio::tape {

Status TapeVolume::Append(BlockPayload payload, double compressibility) {
  if (compressibility < 0.0 || compressibility >= 1.0) {
    return Status::InvalidArgument("compressibility must be in [0, 1)");
  }
  if (capacity_blocks_ != 0 && blocks_.size() >= capacity_blocks_) {
    return Status::ResourceExhausted(
        StrFormat("tape %s is full (%llu blocks)", name_.c_str(),
                  static_cast<unsigned long long>(capacity_blocks_)));
  }
  blocks_.push_back(Entry{std::move(payload), static_cast<float>(compressibility)});
  if (auditor_ != nullptr) auditor_->OnTapeOccupancy(name_, blocks_.size(), capacity_blocks_);
  return Status::OK();
}

Status TapeVolume::AppendPhantom(BlockCount count, double compressibility) {
  if (compressibility < 0.0 || compressibility >= 1.0) {
    return Status::InvalidArgument("compressibility must be in [0, 1)");
  }
  if (capacity_blocks_ != 0 && blocks_.size() + count > capacity_blocks_) {
    return Status::ResourceExhausted(
        StrFormat("tape %s cannot hold %llu more blocks", name_.c_str(),
                  static_cast<unsigned long long>(count)));
  }
  blocks_.insert(blocks_.end(), count, Entry{nullptr, static_cast<float>(compressibility)});
  if (auditor_ != nullptr) auditor_->OnTapeOccupancy(name_, blocks_.size(), capacity_blocks_);
  return Status::OK();
}

Result<BlockPayload> TapeVolume::ReadBlock(BlockIndex index) const {
  TERTIO_RETURN_IF_ERROR(CheckRange(index, 1));
  return blocks_[index].payload;
}

Result<double> TapeVolume::Compressibility(BlockIndex index) const {
  TERTIO_RETURN_IF_ERROR(CheckRange(index, 1));
  return static_cast<double>(blocks_[index].compressibility);
}

Result<double> TapeVolume::MeanCompressibility(BlockIndex start, BlockCount count) const {
  TERTIO_RETURN_IF_ERROR(CheckRange(start, count));
  if (count == 0) return 0.0;
  double sum = 0.0;
  for (BlockIndex i = start; i < start + count; ++i) {
    sum += blocks_[i].compressibility;
  }
  return sum / static_cast<double>(count);
}

Status TapeVolume::Truncate(BlockCount new_size) {
  if (new_size > blocks_.size()) {
    return Status::InvalidArgument(
        StrFormat("cannot truncate tape %s to %llu blocks: only %zu recorded", name_.c_str(),
                  static_cast<unsigned long long>(new_size), blocks_.size()));
  }
  blocks_.resize(new_size);
  return Status::OK();
}

Status TapeVolume::CheckRange(BlockIndex start, BlockCount count) const {
  if (start + count > blocks_.size()) {
    return Status::InvalidArgument(
        StrFormat("range [%llu, %llu) out of bounds on tape %s (%zu blocks)",
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(start + count), name_.c_str(), blocks_.size()));
  }
  return Status::OK();
}

}  // namespace tertio::tape
