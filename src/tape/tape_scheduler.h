#pragma once

/// \file tape_scheduler.h
/// Batching and reordering of random tape read requests.
///
/// The paper's related work (Section 2) describes how Postgres [15,16] and
/// Paradise [19] improve tape efficiency by collecting the I/O references of
/// pre-executed queries and *reordering* them before touching the drive —
/// complementary to tertio's join methods, whose access patterns are already
/// sequential. TapeScheduler provides that facility for workloads that are
/// not: callers submit block-range reads in arrival order and the scheduler
/// executes the batch in an order that minimizes head movement.

#include <cstdint>
#include <vector>

#include "tape/tape_drive.h"
#include "util/status.h"

namespace tertio::tape {

/// How a batch is ordered before execution.
enum class SchedulePolicy : uint8_t {
  /// Arrival order (the unscheduled baseline).
  kFifo,
  /// Ascending start position (one sweep from beginning of tape).
  kSortedAscending,
  /// Elevator: continue from the current head position to end-of-tape, then
  /// wrap to the lowest remaining request.
  kElevator,
};

/// One submitted request.
struct TapeReadRequest {
  std::uint64_t id = 0;
  BlockIndex start = 0;
  BlockCount count = 0;
};

/// One finished request.
struct TapeReadCompletion {
  std::uint64_t id = 0;
  sim::Interval interval;
  std::vector<BlockPayload> payloads;  // filled when capture was requested
};

/// Collects requests and executes them as ordered batches on one drive.
class TapeScheduler {
 public:
  TapeScheduler(TapeDrive* drive, SchedulePolicy policy) : drive_(drive), policy_(policy) {
    TERTIO_CHECK(drive != nullptr, "scheduler requires a drive");
  }

  SchedulePolicy policy() const { return policy_; }
  std::size_t pending() const { return pending_.size(); }

  /// Queues one read (validated against the mounted volume at execution).
  void Submit(const TapeReadRequest& request) { pending_.push_back(request); }

  /// Outcome of one batch execution. A mid-batch device error does not lose
  /// work: the completions executed before the failure are returned, and the
  /// failed request plus every unexecuted one are back in the pending queue
  /// (ahead of later submissions), so the caller can retry with another
  /// ExecuteBatch once it has handled `status`.
  struct BatchResult {
    std::vector<TapeReadCompletion> completions;
    Status status;
    /// Requests returned to the pending queue (0 when status is OK).
    std::size_t requeued = 0;

    bool ok() const { return status.ok(); }
  };

  /// Executes every pending request, earliest start `ready`. Completions are
  /// returned in execution order. `capture` fills payloads.
  BatchResult ExecuteBatch(SimSeconds ready, bool capture = false);

 private:
  /// Orders `batch` in place according to the policy.
  void Order(std::vector<TapeReadRequest>* batch) const;

  TapeDrive* drive_;
  SchedulePolicy policy_;
  std::vector<TapeReadRequest> pending_;
};

}  // namespace tertio::tape
