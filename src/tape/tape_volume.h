#pragma once

/// \file tape_volume.h
/// The recorded content of one tape cartridge.
///
/// A TapeVolume is an append-only sequence of fixed-size blocks. Each block
/// carries an optional real payload (full-data runs) and the compressibility
/// of its data, which determines the effective transfer rate when the block
/// moves through a compressing drive. Volumes can be truncated back to a
/// logical end-of-data marker, which is how scratch space on the R and S
/// tapes (the paper's T_R and T_S) is reclaimed between experiments.

#include <cstdint>
#include <string>
#include <vector>

#include "util/block_payload.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::sim {
class Auditor;
}

namespace tertio::tape {

/// Content of one cartridge. Thread-compatible, not thread-safe.
class TapeVolume {
 public:
  /// \param name label for diagnostics, e.g. "tape-R".
  /// \param block_bytes size of every block on this volume.
  /// \param capacity_blocks maximum number of blocks (0 = unlimited).
  TapeVolume(std::string name, ByteCount block_bytes, BlockCount capacity_blocks = 0)
      : name_(std::move(name)), block_bytes_(block_bytes), capacity_blocks_(capacity_blocks) {
    TERTIO_CHECK(block_bytes > 0, "block size must be positive");
  }

  const std::string& name() const { return name_; }
  ByteCount block_bytes() const { return block_bytes_; }
  BlockCount capacity_blocks() const { return capacity_blocks_; }
  BlockCount size_blocks() const { return blocks_.size(); }
  ByteCount size_bytes() const { return size_blocks() * block_bytes_; }

  /// Appends one block with a real payload.
  Status Append(BlockPayload payload, double compressibility);

  /// Appends `count` phantom blocks (timing-only data).
  Status AppendPhantom(BlockCount count, double compressibility);

  /// Payload of block `index` (nullptr for phantom blocks).
  Result<BlockPayload> ReadBlock(BlockIndex index) const;

  /// Compressibility of block `index`.
  Result<double> Compressibility(BlockIndex index) const;

  /// Mean compressibility over [start, start+count) — used by the drive to
  /// cost a multi-block transfer.
  Result<double> MeanCompressibility(BlockIndex start, BlockCount count) const;

  /// Number of leading whole `chunk`-block chunks from `start` (at most
  /// `max_chunks`, clamped to the recorded range) whose blocks all carry the
  /// same stored compressibility as block `start`. Within such a prefix every
  /// chunk's MeanCompressibility is bit-identical, so a coalesced transfer
  /// can replay one chunk's cost for all of them. O(log runs): appends keep
  /// a run-length index of equal-compressibility runs.
  std::uint64_t UniformPrefixChunks(BlockIndex start, BlockCount chunk, std::uint64_t max_chunks) const;

  /// Discards all blocks at and after `new_size` (rewriting scratch space).
  Status Truncate(BlockCount new_size);

  /// Registers a SimSan auditor (sim/auditor.h): every append is checked
  /// against the volume capacity — the paper's T_R / T_S scratch bounds for
  /// the R/S tapes. Null detaches.
  void BindAuditor(sim::Auditor* auditor) { auditor_ = auditor; }

 private:
  struct Entry {
    BlockPayload payload;  // nullptr = phantom
    float compressibility;
  };
  /// One maximal run of equal-compressibility blocks starting at `begin`;
  /// it extends to the next run's begin (or end-of-data). Adjacent runs
  /// always differ in value: appends merge into the last run when they can.
  struct Run {
    BlockIndex begin;
    float compressibility;
  };

  Status CheckRange(BlockIndex start, BlockCount count) const;
  /// Extends the run index for blocks about to be appended at end-of-data.
  void NoteAppendRun(float compressibility);

  std::string name_;
  ByteCount block_bytes_;
  BlockCount capacity_blocks_;
  sim::Auditor* auditor_ = nullptr;
  std::vector<Entry> blocks_;
  std::vector<Run> runs_;
};

}  // namespace tertio::tape
