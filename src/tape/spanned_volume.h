#pragma once

/// \file spanned_volume.h
/// Relations larger than one cartridge.
///
/// Section 3.2 assumes "without loss of generality ... that each relation
/// fits on a single tape". SpannedVolumeSet implements the general case the
/// paper waves away: an ordered set of library cartridges forming one
/// logical block address space, and a reader that streams logical ranges
/// through a drive, letting the robot exchange cartridges at the
/// boundaries. The per-exchange cost (~30 s) against a full-cartridge
/// transfer (hours) is exactly the ratio the paper's assumption relies on —
/// here it is charged, not assumed away.

#include <vector>

#include "tape/tape_library.h"
#include "util/status.h"

namespace tertio::tape {

/// An ordered set of cartridges in one library presenting a single logical
/// block address space.
class SpannedVolumeSet {
 public:
  /// \param library the library holding every member cartridge.
  /// \param slots member slots, in logical order.
  static Result<SpannedVolumeSet> Create(TapeLibrary* library, std::vector<int> slots);

  BlockCount total_blocks() const { return total_blocks_; }
  int cartridge_count() const { return static_cast<int>(slots_.size()); }
  TapeLibrary* library() { return library_; }

  /// Maps a logical block to (member index, block within that cartridge).
  struct Location {
    int member = 0;
    BlockIndex local = 0;
  };
  Result<Location> Resolve(BlockIndex logical) const;

  int slot_of(int member) const { return slots_[static_cast<size_t>(member)]; }
  BlockCount blocks_of(int member) const { return sizes_[static_cast<size_t>(member)]; }

 private:
  SpannedVolumeSet() = default;

  TapeLibrary* library_ = nullptr;
  std::vector<int> slots_;
  std::vector<BlockCount> sizes_;  // snapshot at creation
  BlockCount total_blocks_ = 0;
};

/// Streams logical block ranges of a spanned set through one drive,
/// mounting cartridges on demand.
class SpannedReader {
 public:
  SpannedReader(SpannedVolumeSet* set, TapeDrive* drive) : set_(set), drive_(drive) {
    TERTIO_CHECK(set != nullptr && drive != nullptr, "spanned reader needs a set and a drive");
  }

  /// Reads logical blocks [start, start+count), performing robot exchanges
  /// at cartridge boundaries. \returns the covering interval; payloads
  /// append to `out` in logical order when non-null.
  Result<sim::Interval> Read(BlockIndex start, BlockCount count, SimSeconds ready,
                             std::vector<BlockPayload>* out = nullptr);

  /// Robot exchanges performed by this reader so far.
  std::uint64_t exchanges() const { return exchanges_; }

 private:
  SpannedVolumeSet* set_;
  TapeDrive* drive_;
  std::uint64_t exchanges_ = 0;
};

}  // namespace tertio::tape
