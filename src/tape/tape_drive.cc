#include "tape/tape_drive.h"

#include <cstdlib>

#include "util/string_util.h"

namespace tertio::tape {

Status TapeDrive::CheckLoaded() const {
  if (volume_ == nullptr) {
    return Status::FailedPrecondition(StrFormat("drive %s has no tape loaded", name_.c_str()));
  }
  return Status::OK();
}

SimSeconds TapeDrive::SeekCost(BlockIndex target) {
  if (target == head_) return 0.0;
  ByteCount distance_bytes =
      (target > head_ ? target - head_ : head_ - target) * volume_->block_bytes();
  stats_.locate_count += 1;
  stats_.reposition_count += 1;
  return model_.locate_base_seconds +
         model_.locate_seconds_per_byte * static_cast<double>(distance_bytes.value()) +
         model_.reposition_seconds;
}

Result<sim::Interval> TapeDrive::Load(TapeVolume* volume, SimSeconds ready) {
  if (volume == nullptr) return Status::InvalidArgument("cannot load a null volume");
  volume_ = volume;
  head_ = 0;
  ClearSharedPassWindow();
  ClearCacheWindow();
  stats_.load_count += 1;
  return resource_->Schedule(ready, model_.load_seconds, 0, "tape.load");
}

Result<sim::Interval> TapeDrive::Unload(SimSeconds ready) {
  TERTIO_RETURN_IF_ERROR(CheckLoaded());
  // Both windows describe ranges of the departing volume; leaving them set
  // would let a later Load of the same cartridge serve stale free/cached
  // reads from a window nobody re-declared.
  ClearSharedPassWindow();
  ClearCacheWindow();
  volume_ = nullptr;
  head_ = 0;
  return resource_->Schedule(ready, model_.load_seconds, 0, "tape.unload");
}

Result<sim::Interval> TapeDrive::Read(BlockIndex start, BlockCount count, SimSeconds ready,
                                      std::vector<BlockPayload>* out) {
  TERTIO_RETURN_IF_ERROR(CheckLoaded());
  TERTIO_ASSIGN_OR_RETURN(double mean_c, volume_->MeanCompressibility(start, count));
  if (InSharedPassWindow(start, count)) {
    // The requested range is covered by another query's in-flight sequential
    // pass: multicast its data instead of re-reading the tape. No head
    // motion, no drive occupancy, no fault draw — the physical pass already
    // paid (and drew) for these blocks.
    if (out != nullptr) {
      out->reserve(out->size() + count.value());
      for (BlockIndex i = start; i < start + count; ++i) {
        TERTIO_ASSIGN_OR_RETURN(BlockPayload payload, volume_->ReadBlock(i));
        out->push_back(std::move(payload));
      }
    }
    stats_.blocks_shared += count;
    return sim::Interval::At(ready);
  }
  if (InCacheWindow(start, count)) {
    // The range is resident in the cross-query extent cache: the disk copy
    // serves it at disk cost while the drive stays parked — no head motion,
    // no drive occupancy, no fault draw. Payloads still come from the
    // volume's block store, so data delivered through the cache is
    // bit-identical to a physical read.
    if (out != nullptr) {
      out->reserve(out->size() + count.value());
      for (BlockIndex i = start; i < start + count; ++i) {
        TERTIO_ASSIGN_OR_RETURN(BlockPayload payload, volume_->ReadBlock(i));
        out->push_back(std::move(payload));
      }
    }
    stats_.blocks_cached += count;
    return cache_reader_(start, count, ready);
  }
  if (faults_ != nullptr && faults_->enabled()) {
    sim::FaultInjector::ReadOutcome outcome =
        faults_->SimulateRead(start, count, model_.TransferSeconds(volume_->block_bytes(), mean_c),
                              model_.reposition_seconds);
    if (!outcome.completed) {
      // Unrecoverable media error: charge the seek, the blocks streamed
      // before the fault, and the recovery time burned retrying; deliver
      // nothing and leave the head at the failed position. A chunk-level
      // retry (pipeline) will reposition and re-read from `start`.
      ByteCount clean_bytes = outcome.clean_blocks * volume_->block_bytes();
      SimSeconds wasted = SeekCost(start) + model_.TransferSeconds(clean_bytes, mean_c) +
                          outcome.recovery_seconds;
      head_ = outcome.failed_block;
      stats_.blocks_read += outcome.clean_blocks;
      resource_->Schedule(ready, wasted, clean_bytes, "tape.read-failed");
      return Status::DeviceError(
          StrFormat("drive %s: unrecoverable read error at block %llu", name_.c_str(),
                    static_cast<unsigned long long>(outcome.failed_block.value())));
    }
    SimSeconds duration = SeekCost(start);
    ByteCount bytes = count * volume_->block_bytes();
    duration += model_.TransferSeconds(bytes, mean_c) + outcome.recovery_seconds;
    if (out != nullptr) {
      out->reserve(out->size() + count.value());
      for (BlockIndex i = start; i < start + count; ++i) {
        TERTIO_ASSIGN_OR_RETURN(BlockPayload payload, volume_->ReadBlock(i));
        out->push_back(std::move(payload));
      }
    }
    head_ = start + count;
    stats_.blocks_read += count;
    return resource_->Schedule(ready, duration, bytes, "tape.read");
  }
  SimSeconds duration = SeekCost(start);
  ByteCount bytes = count * volume_->block_bytes();
  duration += model_.TransferSeconds(bytes, mean_c);
  if (out != nullptr) {
    out->reserve(out->size() + count.value());
    for (BlockIndex i = start; i < start + count; ++i) {
      TERTIO_ASSIGN_OR_RETURN(BlockPayload payload, volume_->ReadBlock(i));
      out->push_back(std::move(payload));
    }
  }
  head_ = start + count;
  stats_.blocks_read += count;
  return resource_->Schedule(ready, duration, bytes, "tape.read");
}

Result<sim::Interval> TapeDrive::Append(const std::vector<BlockPayload>& payloads,
                                        double compressibility, SimSeconds ready) {
  TERTIO_RETURN_IF_ERROR(CheckLoaded());
  BlockIndex end = ToIndex(volume_->size_blocks());
  SimSeconds duration = SeekCost(end);
  for (const BlockPayload& payload : payloads) {
    TERTIO_RETURN_IF_ERROR(volume_->Append(payload, compressibility));
  }
  ByteCount bytes = payloads.size() * volume_->block_bytes();
  duration += model_.TransferSeconds(bytes, compressibility);
  head_ = ToIndex(volume_->size_blocks());
  stats_.blocks_written += payloads.size();
  return resource_->Schedule(ready, duration, bytes, "tape.write");
}

Result<sim::Interval> TapeDrive::AppendPhantom(BlockCount count, double compressibility,
                                               SimSeconds ready) {
  TERTIO_RETURN_IF_ERROR(CheckLoaded());
  BlockIndex end = ToIndex(volume_->size_blocks());
  SimSeconds duration = SeekCost(end);
  TERTIO_RETURN_IF_ERROR(volume_->AppendPhantom(count, compressibility));
  ByteCount bytes = count * volume_->block_bytes();
  duration += model_.TransferSeconds(bytes, compressibility);
  head_ = ToIndex(volume_->size_blocks());
  stats_.blocks_written += count;
  return resource_->Schedule(ready, duration, bytes, "tape.write");
}

Result<sim::Interval> TapeDrive::Locate(BlockIndex target, SimSeconds ready) {
  TERTIO_RETURN_IF_ERROR(CheckLoaded());
  if (target > volume_->size_blocks()) {
    return Status::InvalidArgument("locate target beyond end of data");
  }
  SimSeconds duration = SeekCost(target);
  head_ = target;
  return resource_->Schedule(ready, duration, 0, "tape.locate");
}

Result<sim::Interval> TapeDrive::Rewind(SimSeconds ready) {
  TERTIO_RETURN_IF_ERROR(CheckLoaded());
  head_ = 0;
  stats_.rewind_count += 1;
  return resource_->Schedule(ready, model_.rewind_seconds, 0, "tape.rewind");
}

Result<sim::Interval> TapeDrive::ReadReverse(BlockCount count, SimSeconds ready,
                                             std::vector<BlockPayload>* out) {
  TERTIO_RETURN_IF_ERROR(CheckLoaded());
  if (!model_.supports_read_reverse) {
    return Status::Unimplemented(
        StrFormat("drive %s does not implement READ REVERSE", name_.c_str()));
  }
  if (count > head_) {
    return Status::InvalidArgument("read-reverse would cross beginning-of-tape");
  }
  BlockIndex start = head_ - count;
  TERTIO_ASSIGN_OR_RETURN(double mean_c, volume_->MeanCompressibility(start, count));
  ByteCount bytes = count * volume_->block_bytes();
  SimSeconds duration = model_.TransferSeconds(bytes, mean_c);
  if (out != nullptr) {
    for (BlockIndex i = head_; i-- > start;) {
      TERTIO_ASSIGN_OR_RETURN(BlockPayload payload, volume_->ReadBlock(i));
      out->push_back(std::move(payload));
    }
  }
  head_ = start;
  stats_.blocks_read += count;
  return resource_->Schedule(ready, duration, bytes, "tape.read-reverse");
}

sim::ChunkCostProfile TapeDrive::ReadCostProfile(BlockIndex start, BlockCount chunk,
                                                 std::uint64_t max_chunks) {
  if (volume_ == nullptr || chunk == 0 || max_chunks == 0) return {};
  // Any active fault plan must flow through the per-chunk path: it draws
  // from a seeded RNG stream whose consumption order is part of the
  // simulation's reproducibility contract.
  if (faults_ != nullptr && faults_->enabled()) return {};
  // A shared-pass or cache window forces the per-chunk path too: whether a
  // chunk is multicast / disk-served or physically read is decided per
  // Read().
  if (shared_pass_active() || cache_window_active()) return {};
  // The steady state replayed here begins with SeekCost(start) == 0; a cold
  // head runs one per-chunk read first and the caller re-attempts after it.
  if (head_ != start) return {};
  std::uint64_t n = volume_->UniformPrefixChunks(start, chunk, max_chunks);
  if (n == 0) return {};
  Result<double> mean_c = volume_->MeanCompressibility(start, chunk);
  if (!mean_c.ok()) return {};
  ByteCount bytes = chunk * volume_->block_bytes();
  sim::ChunkCostProfile profile;
  profile.chunks = n;
  profile.cycle = 1;
  profile.ops_per_chunk = {1};
  profile.ops = {{resource_, model_.TransferSeconds(bytes, *mean_c), bytes, "tape.read"}};
  profile.commit = [this, start, chunk](std::uint64_t committed) {
    head_ = start + committed * chunk;
    stats_.blocks_read += committed * chunk;
  };
  return profile;
}

sim::ChunkCostProfile TapeDrive::AppendCostProfile(double compressibility, BlockCount chunk,
                                                   std::uint64_t max_chunks) {
  if (volume_ == nullptr || chunk == 0 || max_chunks == 0) return {};
  if (faults_ != nullptr && faults_->enabled()) return {};
  if (compressibility < 0.0 || compressibility >= 1.0) return {};
  // Replaying SeekCost(end-of-data) == 0 requires the head already parked
  // there — true from the second chunk of any append stream onward.
  if (head_ != volume_->size_blocks()) return {};
  std::uint64_t n = max_chunks;
  if (volume_->capacity_blocks() != 0) {
    BlockCount room = volume_->capacity_blocks() - volume_->size_blocks();
    if (room / chunk < n) n = room / chunk;
  }
  if (n == 0) return {};
  ByteCount bytes = chunk * volume_->block_bytes();
  sim::ChunkCostProfile profile;
  profile.chunks = n;
  profile.cycle = 1;
  profile.ops_per_chunk = {1};
  profile.ops = {{resource_, model_.TransferSeconds(bytes, compressibility), bytes, "tape.write"}};
  profile.commit = [this, compressibility, chunk](std::uint64_t committed) {
    Status appended = volume_->AppendPhantom(committed * chunk, compressibility);
    TERTIO_CHECK(appended.ok(), "coalesced tape append exceeded the capacity it pre-checked");
    head_ = ToIndex(volume_->size_blocks());
    stats_.blocks_written += committed * chunk;
  };
  return profile;
}

Result<sim::StageId> TapeDrive::IssueRead(sim::Pipeline& pipe, std::string_view phase,
                                          std::span<const sim::StageId> deps, BlockIndex start,
                                          BlockCount count, std::vector<BlockPayload>* out,
                                          int retry_limit) {
  ByteCount bytes = volume_ != nullptr ? count * volume_->block_bytes() : 0;
  return pipe.StageWithRetry(
      phase, name_, deps, count, bytes,
      [&](SimSeconds ready) { return Read(start, count, ready, out); }, retry_limit);
}

}  // namespace tertio::tape
