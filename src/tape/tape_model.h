#pragma once

/// \file tape_model.h
/// Performance model of a magnetic tape drive and of a tape robot.
///
/// The paper's experiments use Quantum DLT-4000 drives (20 GB density mode,
/// compression enabled) behind Fast SCSI-2. The model below captures the
/// effects the paper's cost model names explicitly (Section 3.2):
///
///  * a constant sustained transfer rate X_T, scaled by data compressibility
///    when compression is enabled (Sections 6, 9: compressible data raises
///    the *effective* user-data rate, up to the drive's maximum compression
///    gain);
///  * streaming vs stop/start operation: a repositioning penalty is charged
///    when the head must move to a non-contiguous position or reverse
///    direction, while back-to-back sequential transfers stream freely (the
///    drive's internal buffer is assumed to hide short producer/consumer
///    stalls, as the paper assumes);
///  * serpentine geometry: rewind/locate of large files costs seconds, not
///    hours (the paper: "a 5 GB tape file might take an hour to read but only
///    10 seconds to rewind");
///  * media load/unload and robot exchange delays (~30 s per exchange),
///    modeled by TapeLibrary even though the studied joins read tapes
///    end-to-end and amortize them to negligibility — having them in the
///    model lets tests *check* that claim instead of assuming it.

#include <string>

#include "util/math_util.h"
#include "util/units.h"

namespace tertio::tape {

/// Static performance characteristics of one tape drive.
struct TapeDriveModel {
  std::string name = "generic-tape";

  /// Sustained native (uncompressed) transfer rate (the paper's X_T).
  BytesPerSecond native_rate_bps = 1.5e6;

  /// Maximum effective-rate multiplier achievable through compression
  /// (DLT-4000 advertises 2:1).
  double max_compression_gain = 2.0;

  /// Whether hardware compression is enabled (paper: enabled).
  bool compression_enabled = true;

  /// Penalty for leaving streaming mode: reposition after a head seek,
  /// direction change, or interleaved write/read at a different position.
  SimSeconds reposition_seconds = 0.5;

  /// Constant component of a locate/seek to an arbitrary block.
  SimSeconds locate_base_seconds = 5.0;

  /// Additional locate cost per byte of distance travelled (serpentine
  /// tracks make this much faster than reading).
  double locate_seconds_per_byte = 2.0e-9;

  /// Full rewind of a serpentine cartridge.
  SimSeconds rewind_seconds = 10.0;

  /// Loading a cartridge that is already in the drive mouth.
  SimSeconds load_seconds = 20.0;

  /// Whether the drive implements SCSI READ REVERSE (optional per the
  /// standard; the studied algorithms do not require it).
  bool supports_read_reverse = false;

  /// Effective user-data transfer rate for data with the given
  /// compressibility in [0,1). 0.25-compressible data stores only 75% of its
  /// bytes on the medium, so user data moves 1/0.75x faster, capped at
  /// max_compression_gain.
  BytesPerSecond EffectiveRate(double compressibility) const {
    if (!compression_enabled || compressibility <= 0.0) return native_rate_bps;
    double gain = 1.0 / (1.0 - compressibility);
    if (gain > max_compression_gain) gain = max_compression_gain;
    return native_rate_bps * gain;
  }

  /// Seconds to transfer `bytes` of user data with the given compressibility.
  SimSeconds TransferSeconds(ByteCount bytes, double compressibility) const {
    return bytes / EffectiveRate(compressibility);
  }

  /// Quantum DLT-4000 in 20 GB density mode, compression on — the drive used
  /// throughout the paper's evaluation (Section 6).
  static TapeDriveModel DLT4000();

  /// An idealized drive with no penalties — useful for isolating algorithmic
  /// cost in tests.
  static TapeDriveModel Ideal(BytesPerSecond rate_bps);
};

/// Static characteristics of a tape library (robot).
struct TapeLibraryModel {
  std::string name = "generic-library";
  /// One media exchange: eject, move, inject (paper: ~30 s).
  SimSeconds exchange_seconds = 30.0;
  /// Number of cartridge slots.
  int slots = 16;
  /// Additional robot travel cost per slot of distance between the robot's
  /// current position and the slot it exchanges with. 0 (the default, and
  /// the paper's flat ~30 s exchange model) makes every trip cost exactly
  /// exchange_seconds; a positive value lets the service layer's elevator
  /// policy (exec/query_scheduler.h) minimize real arm travel.
  SimSeconds travel_seconds_per_slot = 0.0;

  static TapeLibraryModel SmallAutoloader();
};

}  // namespace tertio::tape
