#include "exec/site.h"

#include "util/string_util.h"

namespace tertio::exec {

Status SiteConfig::Validate() const {
  if (block_bytes == 0) return Status::InvalidArgument("block_bytes must be positive");
  if (drive_count < 2) {
    return Status::InvalidArgument("a site needs at least two tape drives (R and S)");
  }
  if (disk_count <= 0) return Status::InvalidArgument("disk_count must be positive");
  if (memory_bytes < block_bytes) {
    return Status::InvalidArgument(
        StrFormat("memory budget of %llu bytes is smaller than one %llu-byte block",
                  static_cast<unsigned long long>(memory_bytes.value()),
                  static_cast<unsigned long long>(block_bytes.value())));
  }
  if (disk_space_bytes < block_bytes) {
    return Status::InvalidArgument("disk space is smaller than one block");
  }
  if (stripe_unit == 0) return Status::InvalidArgument("stripe_unit must be positive");
  // TB-class misconfigurations must surface here as a Status, not later as a
  // silently wrapped allocation: the disk capacity rounded up to whole
  // blocks, and the cache carve, must both re-express as 64-bit byte counts.
  Result<ByteCount> disk_roundtrip =
      CheckedBlocksToBytes(BytesToBlocks(disk_space_bytes, block_bytes), block_bytes);
  if (!disk_roundtrip.ok()) return disk_roundtrip.status();
  Result<ByteCount> cache_sized = CheckedBlocksToBytes(cache_blocks, block_bytes);
  if (!cache_sized.ok()) return cache_sized.status();
  if (cache_blocks > 0 && cache_blocks >= BytesToBlocks(disk_space_bytes, block_bytes)) {
    return Status::InvalidArgument(
        StrFormat("extent cache of %llu blocks leaves no disk space for query sessions "
                  "(site has %llu)",
                  static_cast<unsigned long long>(cache_blocks.value()),
                  static_cast<unsigned long long>(BytesToBlocks(disk_space_bytes, block_bytes).value())));
  }
  return Status::OK();
}

Result<std::unique_ptr<Site>> Site::Create(const SiteConfig& config) {
  TERTIO_RETURN_IF_ERROR(config.Validate());
  return std::make_unique<Site>(config);
}

Site::Site(const SiteConfig& config)
    : config_(config),
      memory_(BytesToBlocks(config.memory_bytes, config.block_bytes)) {
  Status valid = config.Validate();
  TERTIO_CHECK(valid.ok(), "invalid site configuration (use Site::Create for the Status)");
  // Resource creation order matters for reproducibility: disks, then the
  // drive pool, then the robot — the order the seed Machine used, so a
  // 2-drive site is device-for-device identical to it.
  disk::DiskGroupConfig group_config = disk::DiskGroupConfig::Uniform(
      config.disk_count, config.disk_model,
      BytesToBlocks(config.disk_space_bytes, config.block_bytes), config.block_bytes,
      config.stripe_unit);
  disks_ = std::make_unique<disk::StripedDiskGroup>(group_config, &sim_);
  if (config.cache_blocks > 0) {
    // Carve the cache's region out of the site allocator up front — held for
    // the site's lifetime, so it is disjoint from every session's D_q carve
    // by construction. The cache gets a session-style view over the shared
    // spindles (cache traffic contends with scratch traffic for the arms)
    // with a private allocator covering exactly the carve.
    Result<disk::ExtentList> carve =
        disks_->allocator().Allocate(config.cache_blocks, 0.0, "extent-cache");
    TERTIO_CHECK(carve.ok(), "extent-cache carve failed despite validated capacity");
    cache_carve_ = std::move(carve.value());
    std::vector<disk::DiskVolume*> spindles;
    for (int i = 0; i < disks_->disk_count(); ++i) spindles.push_back(disks_->disk(i));
    extent_cache_ = std::make_unique<disk::ExtentCache>(
        "extent-cache", std::make_unique<disk::StripedDiskGroup>(
                            std::move(spindles), cache_carve_, config.stripe_unit,
                            config.block_bytes));
  }
  for (int i = 0; i < config.drive_count; ++i) {
    // Drives 0 and 1 keep the seed's names (and therefore fault-stream
    // seeds); extra pool drives are numbered.
    std::string name = i == 0 ? "tapeR" : i == 1 ? "tapeS" : StrFormat("tape%d", i);
    drives_.push_back(
        std::make_unique<tape::TapeDrive>(name, config.tape_model, sim_.CreateResource(name)));
  }
  drive_leased_.assign(drives_.size(), false);
  if (config.with_library) {
    library_ = std::make_unique<tape::TapeLibrary>(config.library_model,
                                                   sim_.CreateResource("robot"));
  }
  if (config.faults.enabled()) {
    // One injector per device, each with a seed derived from the plan seed
    // and the device name, so per-device fault streams are independent yet
    // exactly reproducible.
    auto attach = [&](const sim::FaultProfile& profile, const std::string& device) {
      injectors_.push_back(
          std::make_unique<sim::FaultInjector>(profile, config.faults.seed, device));
      return injectors_.back().get();
    };
    for (auto& drive : drives_) {
      drive->set_fault_injector(attach(config.faults.tape, drive->name()));
    }
    for (int i = 0; i < disks_->disk_count(); ++i) {
      disk::DiskVolume* d = disks_->disk(i);
      d->set_fault_injector(attach(config.faults.disk, d->name()));
    }
    if (library_ != nullptr) {
      library_->set_fault_injector(attach(config.faults.robot, "robot"));
    }
  }
  // Under TERTIO_SIMSAN the Simulation constructed itself audited; bind the
  // non-Resource layers to the same auditor.
  if (sim_.auditor() != nullptr) BindAuditor(sim_.auditor());
}

sim::Auditor* Site::EnableAudit() {
  sim::Auditor* auditor = sim_.EnableAudit();
  BindAuditor(auditor);
  return auditor;
}

void Site::BindAuditor(sim::Auditor* auditor) {
  memory_.BindAuditor(auditor);
  disks_->allocator().BindAuditor(auditor);
  if (extent_cache_ != nullptr) extent_cache_->BindAuditor(auditor);
  if (library_ != nullptr) {
    for (int slot = 0; slot < library_->slot_count(); ++slot) {
      Result<tape::TapeVolume*> cartridge = library_->CartridgeAt(slot);
      if (cartridge.ok()) (*cartridge)->BindAuditor(auditor);
    }
  }
}

Result<int> Site::AddCartridge(std::unique_ptr<tape::TapeVolume> volume) {
  if (library_ == nullptr) {
    return Status::FailedPrecondition("site has no tape library to hold cartridges");
  }
  if (volume != nullptr && sim_.auditor() != nullptr) volume->BindAuditor(sim_.auditor());
  return library_->AddCartridge(std::move(volume));
}

DriveLease& DriveLease::operator=(DriveLease&& other) noexcept {
  if (this != &other) {
    Release();
    site_ = other.site_;
    drives_ = std::move(other.drives_);
    holder_ = std::move(other.holder_);
    other.site_ = nullptr;
    other.drives_.clear();
  }
  return *this;
}

void DriveLease::Release() {
  if (site_ == nullptr) return;
  site_->ReleaseDrivesTagged(drives_, holder_);
  site_ = nullptr;
  drives_.clear();
}

Result<std::vector<int>> Site::PickDrives(int n, std::string_view holder,
                                          const std::vector<int>& preferred) {
  std::vector<int> picked;
  auto take = [&](int i) {
    if (i < 0 || i >= drive_count()) return;
    if (drive_leased_[static_cast<size_t>(i)]) return;
    for (int p : picked) {
      if (p == i) return;
    }
    if (static_cast<int>(picked.size()) < n) picked.push_back(i);
  };
  for (int p : preferred) take(p);
  for (int i = 0; i < drive_count(); ++i) take(i);
  if (static_cast<int>(picked.size()) < n) {
    return Status::ResourceExhausted(
        StrFormat("need %d free tape drives, %d available", n, free_drives()));
  }
  for (int i : picked) {
    drive_leased_[static_cast<size_t>(i)] = true;
    if (sim_.auditor() != nullptr) {
      sim_.auditor()->OnDriveLease(drives_[static_cast<size_t>(i)]->name(), holder);
    }
  }
  return picked;
}

void Site::ReleaseDrivesTagged(const std::vector<int>& indices, std::string_view holder) {
  for (int i : indices) {
    if (i < 0 || i >= drive_count()) continue;
    drive_leased_[static_cast<size_t>(i)] = false;
    if (sim_.auditor() != nullptr) {
      sim_.auditor()->OnDriveRelease(drives_[static_cast<size_t>(i)]->name(), holder);
    }
  }
}

Result<DriveLease> Site::LeaseDrives(int n, std::string_view holder,
                                     const std::vector<int>& preferred) {
  TERTIO_ASSIGN_OR_RETURN(std::vector<int> picked, PickDrives(n, holder, preferred));
  return DriveLease(this, std::move(picked), std::string(holder));
}

Result<std::vector<int>> Site::AcquireDrives(int n) { return PickDrives(n, "", {}); }

void Site::ReleaseDrives(const std::vector<int>& indices) {
  ReleaseDrivesTagged(indices, "");
}

int Site::free_drives() const {
  int n = 0;
  for (bool leased : drive_leased_) {
    if (!leased) ++n;
  }
  return n;
}

sim::FaultStats Site::TotalFaultStats() const {
  sim::FaultStats total;
  for (const auto& injector : injectors_) total.Add(injector->stats());
  return total;
}

}  // namespace tertio::exec
