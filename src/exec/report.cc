#include "exec/report.h"

#include <cmath>
#include <cstdio>

#include "util/status.h"
#include "util/string_util.h"

namespace tertio::exec {

TableReport::TableReport(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TableReport::AddRow(std::vector<std::string> cells) {
  TERTIO_CHECK(cells.size() == headers_.size(), "row width must match headers");
  rows_.push_back(std::move(cells));
}

std::string TableReport::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += StrFormat("%-*s", static_cast<int>(widths[c]) + 2, row[c].c_str());
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t rule = 0;
  for (size_t w : widths) rule += w + 2;
  out += std::string(rule > 2 ? rule - 2 : rule, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TableReport::Print() const { std::fputs(Render().c_str(), stdout); }

SeriesReport::SeriesReport(std::string x_label, std::vector<std::string> series_labels)
    : x_label_(std::move(x_label)), labels_(std::move(series_labels)) {}

void SeriesReport::AddPoint(double x, std::vector<double> values) {
  TERTIO_CHECK(values.size() == labels_.size(), "point width must match series labels");
  points_.push_back(Point{x, std::move(values)});
}

std::string SeriesReport::Render(int precision) const {
  TableReport table([&] {
    std::vector<std::string> headers{x_label_};
    headers.insert(headers.end(), labels_.begin(), labels_.end());
    return headers;
  }());
  for (const Point& point : points_) {
    std::vector<std::string> row{FormatFixed(point.x, 2)};
    for (double v : point.values) {
      row.push_back(std::isnan(v) ? "-" : FormatFixed(v, precision));
    }
    table.AddRow(std::move(row));
  }
  return table.Render();
}

void SeriesReport::Print(int precision) const {
  std::fputs(Render(precision).c_str(), stdout);
}

TableReport SpanSummaryTable(const sim::SpanTrace& trace, bool include_markers) {
  TableReport table({"phase", "device", "stages", "blocks", "busy(s)", "start(s)", "end(s)"});
  for (const sim::PhaseSummary& phase : trace.phases()) {
    if (!include_markers && phase.busy_seconds == 0.0 && phase.blocks == 0) continue;
    table.AddRow({phase.phase,
                  phase.device.empty() ? "*" : phase.device,
                  StrFormat("%llu", static_cast<unsigned long long>(phase.stage_count)),
                  StrFormat("%llu", static_cast<unsigned long long>(phase.blocks.value())),
                  FormatFixed(phase.busy_seconds.value(), 2),
                  FormatFixed(phase.window.start.value(), 2),
                  FormatFixed(phase.window.end.value(), 2)});
  }
  return table;
}

TableReport FaultSummaryTable(const sim::FaultStats& stats) {
  TableReport table({"counter", "value"});
  auto count = [](std::uint64_t v) {
    return StrFormat("%llu", static_cast<unsigned long long>(v));
  };
  table.AddRow({"transient read faults", count(stats.transient_faults)});
  table.AddRow({"bad blocks remapped", count(stats.bad_blocks_remapped)});
  table.AddRow({"robot exchange faults", count(stats.exchange_faults)});
  table.AddRow({"device retries (recovered)", count(stats.retries)});
  table.AddRow({"hard failures (chunk-retried)", count(stats.hard_failures)});
  table.AddRow({"recovery time (s)", FormatFixed(stats.recovery_seconds.value(), 2)});
  return table;
}

}  // namespace tertio::exec
