#pragma once

/// \file query_session.h
/// The per-query half of the split Machine: a lease of site resources.
///
/// A QuerySession leases two tape drives, a memory partition M_q and a disk
/// carve D_q from a Site and presents them as a join::JoinContext, so all
/// seven executors run unchanged against a slice of a shared installation.
/// The session's budget and allocator are its own objects — under SimSan
/// the per-session bounds (occupancy <= M_q, disk usage <= D_q) are audited
/// independently of the site-wide ones — while the disk spindles and the
/// simulation are shared, so cross-session device contention is real.
/// Closing the session returns everything to the site.

#include <memory>
#include <string>
#include <vector>

#include "exec/site.h"
#include "join/join_spec.h"
#include "mem/memory_budget.h"

namespace tertio::exec {

/// What a session leases from the site.
struct SessionResources {
  /// Accounting tag; memory/disk reservations appear as "session:<name>".
  std::string name = "main";
  /// Memory partition M_q, blocks.
  BlockCount memory_blocks = 0;
  /// Disk carve D_q, blocks.
  BlockCount disk_blocks = 0;
  /// Positional drive preferences: preferred_drives[0] is the wanted R
  /// drive, [1] the wanted S drive, -1 (or absent) = no preference. A
  /// preferred drive is taken when free (the scheduler routes a shared-scan
  /// follower onto the drive that already holds the leader's S cartridge);
  /// empty reproduces the legacy lowest-indexed pick exactly.
  std::vector<int> preferred_drives;
};

/// One open lease. Create with Open(); resources return on destruction.
class QuerySession {
 public:
  /// Leases two drives, `memory_blocks` of M and `disk_blocks` of D from
  /// `site`. Fails with ResourceExhausted when the site cannot cover the
  /// lease (the scheduler's admission control surfaces this to clients).
  static Result<std::unique_ptr<QuerySession>> Open(Site* site, const SessionResources& res);

  ~QuerySession();
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  Site* site() { return site_; }
  const std::string& name() const { return name_; }
  tape::TapeDrive* drive_r() { return site_->drive(drive_indices_[0]); }
  tape::TapeDrive* drive_s() { return site_->drive(drive_indices_[1]); }
  mem::MemoryBudget& memory() { return memory_; }
  disk::StripedDiskGroup& disks() { return *disks_; }

  /// Mounts the cartridge in `slot` into the session's R (resp. S) drive via
  /// the site robot, charged on the robot and drive timelines.
  Result<sim::Interval> MountR(int slot, SimSeconds ready);
  Result<sim::Interval> MountS(int slot, SimSeconds ready);

  /// Uncosted mounts of loose (non-library) volumes — the paper's "tapes
  /// have been inserted and loaded before the join begins" setup, used by
  /// the single-query Machine facade.
  void ForceMount(tape::TapeVolume* r, tape::TapeVolume* s);

  /// If the site's extent cache holds relation `s` (which must already be
  /// mounted in the session's S drive), arms the drive's cache window so
  /// every S read inside the relation is served from the disk copy at disk
  /// cost. `now` is the virtual time of the lookup (the query's start): an
  /// entry still being filled at `now` does not hit, and the concurrent
  /// scheduler must not pass the global horizon here, which may include
  /// another in-flight session's future. The lookup counts a cache hit or
  /// miss either way. \returns true when the window was armed. The window is
  /// disarmed when the session closes.
  bool EnableCachedSRead(const rel::Relation& s, SimSeconds now);

  /// The context handed to join executors. `not_before` anchors the join no
  /// earlier than the given virtual time (a query must not start before it
  /// arrived, even on an idle site).
  join::JoinContext context(SimSeconds not_before = 0.0);

 private:
  QuerySession(Site* site, SessionResources res, DriveLease drives,
               std::vector<int> drive_order, mem::BudgetLease lease,
               disk::ExtentList carve);

  Site* site_;
  std::string name_;
  /// RAII guard over the leased drives; declared before the other leases so
  /// the drives return to the pool last, matching the legacy close order.
  DriveLease drive_lease_;
  /// The leased drives in [R, S] role order (a permutation of
  /// drive_lease_.drives() honoring SessionResources::preferred_drives).
  std::vector<int> drive_indices_;
  mem::BudgetLease lease_;
  /// Session-local budget over the leased M_q blocks.
  mem::MemoryBudget memory_;
  /// Blocks carved from the site allocator, freed back on close.
  disk::ExtentList carve_;
  /// Session view of the disk group: shared spindles, private allocator
  /// over the carve.
  std::unique_ptr<disk::StripedDiskGroup> disks_;
  /// True while this session has a cache window armed on its S drive.
  bool cache_window_armed_ = false;
};

}  // namespace tertio::exec
