#pragma once

/// \file experiment.h
/// End-to-end experiment driving: generate the workload, run a method,
/// collect stats — the loop behind every table and figure reproduction.

#include <cstdint>
#include <string>

#include "cost/cost_model.h"
#include "exec/machine.h"
#include "join/join_method.h"
#include "relation/generator.h"
#include "util/status.h"

namespace tertio::exec {

/// The synthetic workload of one experiment.
struct WorkloadConfig {
  ByteCount r_bytes = 0;
  ByteCount s_bytes = 0;
  /// Data compressibility (drives the effective tape rate; paper base: 25%).
  double compressibility = 0.25;
  ByteCount record_bytes = 100;
  std::uint64_t seed = 42;
  /// Timing-only (paper-scale) vs full-data (verifiable) runs.
  bool phantom = true;
  /// Commit-path selectors forwarded to JoinContext (join/join_spec.h) —
  /// all three combinations are bit-identical in simulated outcome; the
  /// non-default settings are the references in equivalence spot-checks.
  bool coalesce_transfers = true;
  bool closed_form_commit = true;
};

/// The generated relations plus the machine they live on.
struct PreparedWorkload {
  rel::Relation r;
  rel::Relation s;
};

/// Generates R and S onto the machine's tapes (uncosted) and mounts them.
Result<PreparedWorkload> PrepareWorkload(Machine* machine, const WorkloadConfig& workload);

/// One full run: prepare the workload on a fresh machine and execute the
/// method. \returns the join statistics.
Result<join::JoinStats> RunJoinExperiment(const MachineConfig& machine_config,
                                          const WorkloadConfig& workload, JoinMethodId method);

/// Cost-model parameters matching a machine + workload (for analytical
/// cross-checks and the advisor).
cost::CostParams CostParamsFor(const Machine& machine, const WorkloadConfig& workload);

}  // namespace tertio::exec
