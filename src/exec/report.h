#pragma once

/// \file report.h
/// Plain-text tables and series for the benchmark harnesses — each bench
/// prints the same rows/series its paper table or figure reports.

#include <string>
#include <vector>

#include "sim/fault.h"
#include "sim/pipeline.h"
#include "util/units.h"

namespace tertio::exec {

/// Fixed-column ASCII table.
class TableReport {
 public:
  explicit TableReport(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with aligned columns and a header rule.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// A figure as data: one x column, several named y series.
class SeriesReport {
 public:
  SeriesReport(std::string x_label, std::vector<std::string> series_labels);

  /// Adds one x position. `values` aligns with the series labels; NaN
  /// renders as "-" (method infeasible at that point).
  void AddPoint(double x, std::vector<double> values);

  std::string Render(int precision = 2) const;
  void Print(int precision = 2) const;

 private:
  std::string x_label_;
  std::vector<std::string> labels_;
  struct Point {
    double x;
    std::vector<double> values;
  };
  std::vector<Point> points_;
};

/// Per-phase table over a join's span trace: phase, device, stages, blocks,
/// busy seconds, and the phase window — the tabular companion of
/// sim::RenderSpanGantt. Skips zero-duration marker phases (events,
/// barriers) unless `include_markers`.
TableReport SpanSummaryTable(const sim::SpanTrace& trace, bool include_markers = false);

/// One-row-per-counter table over a FaultStats aggregate: faults injected,
/// recoveries, remaps, hard failures, and the recovery time they cost.
TableReport FaultSummaryTable(const sim::FaultStats& stats);

}  // namespace tertio::exec
