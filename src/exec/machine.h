#pragma once

/// \file machine.h
/// Assembly of one simulated system per Section 3.1: two tape drives, n
/// disks, M blocks of memory — plus an optional tape library.
///
/// A Machine owns the simulation, devices, volumes and memory budget, and
/// hands executors a JoinContext. One Machine = one experiment run; create a
/// fresh Machine (cheap) for independent timings.

#include <memory>
#include <vector>

#include "disk/striped_group.h"
#include "join/join_spec.h"
#include "mem/memory_budget.h"
#include "sim/fault.h"
#include "sim/simulation.h"
#include "tape/tape_drive.h"
#include "tape/tape_library.h"
#include "util/units.h"

namespace tertio::exec {

/// Configuration of one machine.
struct MachineConfig {
  ByteCount block_bytes = kDefaultBlockBytes;
  tape::TapeDriveModel tape_model = tape::TapeDriveModel::DLT4000();
  int disk_count = 2;
  disk::DiskModel disk_model = disk::DiskModel::QuantumFireball1080();
  /// Total disk space D available to the join.
  ByteCount disk_space_bytes = 500 * kMB;
  /// Main memory M allocated to the join.
  ByteCount memory_bytes = 16 * kMB;
  BlockCount stripe_unit = 32;
  /// Attach a robot library (media-exchange modeling) instead of
  /// pre-loaded drives.
  bool with_library = false;
  tape::TapeLibraryModel library_model = tape::TapeLibraryModel::SmallAutoloader();
  /// Fault model of the machine's devices (sim/fault.h). Disabled by
  /// default: no injectors are created and device timings are bit-identical
  /// to a fault-free build.
  sim::FaultPlan faults;

  /// The paper's testbed (Section 6): two DLT-4000 drives, two disks, with
  /// the experiment's D and M.
  static MachineConfig PaperTestbed(ByteCount disk_space_bytes, ByteCount memory_bytes);
};

/// One simulated system.
class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }
  sim::Simulation& sim() { return sim_; }
  disk::StripedDiskGroup& disks() { return *disks_; }
  mem::MemoryBudget& memory() { return memory_; }
  tape::TapeDrive& drive_r() { return *drive_r_; }
  tape::TapeDrive& drive_s() { return *drive_s_; }
  tape::TapeVolume& tape_r() { return *tape_r_; }
  tape::TapeVolume& tape_s() { return *tape_s_; }
  tape::TapeLibrary* library() { return library_.get(); }

  ByteCount block_bytes() const { return config_.block_bytes; }
  BlockCount memory_blocks() const { return memory_.total_blocks(); }
  BlockCount disk_blocks() const;

  /// Mounts the R/S volumes uncosted ("the tapes have been inserted and
  /// loaded into the tape drives before the join operation begins").
  void MountTapes();

  /// The context handed to join executors.
  join::JoinContext context();

  /// Effective tape rate (bytes/s) for data of the given compressibility.
  double EffectiveTapeRate(double compressibility) const {
    return config_.tape_model.EffectiveRate(compressibility);
  }

  /// Aggregate disk rate X_D (bytes/s).
  double AggregateDiskRate() const { return disks_->aggregate_rate_bps(); }

  /// Whether this machine injects faults.
  bool faults_enabled() const { return config_.faults.enabled(); }

  /// Machine-wide fault/recovery counters (zero with faults disabled).
  sim::FaultStats TotalFaultStats() const;

  /// Enables SimSan (sim/auditor.h) on this machine: the simulation's
  /// auditor observes every device timeline, the memory budget, the disk
  /// allocator and both scratch tapes. Idempotent; automatic in
  /// TERTIO_SIMSAN builds. \returns the auditor.
  sim::Auditor* EnableAudit();

  /// The machine's auditor, or nullptr when auditing is not enabled.
  sim::Auditor* auditor() const { return sim_.auditor(); }

 private:
  void BindAuditor(sim::Auditor* auditor);

  MachineConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<disk::StripedDiskGroup> disks_;
  mem::MemoryBudget memory_;
  std::unique_ptr<tape::TapeDrive> drive_r_;
  std::unique_ptr<tape::TapeDrive> drive_s_;
  std::unique_ptr<tape::TapeVolume> tape_r_;
  std::unique_ptr<tape::TapeVolume> tape_s_;
  std::unique_ptr<tape::TapeLibrary> library_;
  /// One injector per device, owned here; devices hold raw pointers.
  std::vector<std::unique_ptr<sim::FaultInjector>> injectors_;
};

}  // namespace tertio::exec
