#pragma once

/// \file machine.h
/// Single-query facade over the Site/QuerySession split (site.h,
/// query_session.h): one simulated system per Section 3.1 — two tape
/// drives, n disks, M blocks of memory, optional library — with the whole
/// site leased to one session.
///
/// A Machine owns a Site plus one QuerySession that leases every drive,
/// block of memory and block of disk, and hands executors that session's
/// JoinContext. One Machine = one experiment run; create a fresh Machine
/// (cheap) for independent timings. Multi-query workloads use Site +
/// QueryScheduler directly.

#include <memory>

#include "exec/query_session.h"
#include "exec/site.h"
#include "join/join_spec.h"
#include "util/units.h"

namespace tertio::exec {

/// Configuration of one machine.
struct MachineConfig {
  ByteCount block_bytes = kDefaultBlockBytes;
  tape::TapeDriveModel tape_model = tape::TapeDriveModel::DLT4000();
  int disk_count = 2;
  disk::DiskModel disk_model = disk::DiskModel::QuantumFireball1080();
  /// Total disk space D available to the join.
  ByteCount disk_space_bytes = 500 * kMB;
  /// Main memory M allocated to the join.
  ByteCount memory_bytes = 16 * kMB;
  BlockCount stripe_unit = 32;
  /// Attach a robot library (media-exchange modeling) instead of
  /// pre-loaded drives.
  bool with_library = false;
  tape::TapeLibraryModel library_model = tape::TapeLibraryModel::SmallAutoloader();
  /// Fault model of the machine's devices (sim/fault.h). Disabled by
  /// default: no injectors are created and device timings are bit-identical
  /// to a fault-free build.
  sim::FaultPlan faults;

  /// The paper's testbed (Section 6): two DLT-4000 drives, two disks, with
  /// the experiment's D and M.
  static MachineConfig PaperTestbed(ByteCount disk_space_bytes, ByteCount memory_bytes);

  /// Rejects configurations that would otherwise fail obscurely downstream
  /// (non-positive disk_count, memory smaller than one block, zero
  /// stripe_unit, ...). The Machine constructor aborts on a bad config; call
  /// this first to get a Status instead.
  Status Validate() const;

  /// The equivalent two-drive site configuration.
  SiteConfig ToSiteConfig() const;
};

/// One simulated system.
class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }
  Site& site() { return *site_; }
  QuerySession& session() { return *session_; }
  sim::Simulation& sim() { return site_->sim(); }
  disk::StripedDiskGroup& disks() { return session_->disks(); }
  mem::MemoryBudget& memory() { return session_->memory(); }
  tape::TapeDrive& drive_r() { return *session_->drive_r(); }
  tape::TapeDrive& drive_s() { return *session_->drive_s(); }
  tape::TapeVolume& tape_r() { return *tape_r_; }
  tape::TapeVolume& tape_s() { return *tape_s_; }
  tape::TapeLibrary* library() { return site_->library(); }

  ByteCount block_bytes() const { return config_.block_bytes; }
  BlockCount memory_blocks() const { return session_->memory().total_blocks(); }
  BlockCount disk_blocks() const { return session_->disks().allocator().capacity_blocks(); }

  /// Mounts the R/S volumes uncosted ("the tapes have been inserted and
  /// loaded into the tape drives before the join operation begins").
  void MountTapes() { session_->ForceMount(tape_r_.get(), tape_s_.get()); }

  /// The context handed to join executors.
  join::JoinContext context() { return session_->context(); }

  /// Effective tape rate (bytes/s) for data of the given compressibility.
  BytesPerSecond EffectiveTapeRate(double compressibility) const {
    return config_.tape_model.EffectiveRate(compressibility);
  }

  /// Aggregate disk rate X_D (bytes/s).
  BytesPerSecond AggregateDiskRate() const { return site_->AggregateDiskRate(); }

  /// Whether this machine injects faults.
  bool faults_enabled() const { return config_.faults.enabled(); }

  /// Machine-wide fault/recovery counters (zero with faults disabled).
  sim::FaultStats TotalFaultStats() const { return site_->TotalFaultStats(); }

  /// Enables SimSan (sim/auditor.h) on this machine: the simulation's
  /// auditor observes every device timeline, the memory budgets, the disk
  /// allocators and both scratch tapes. Idempotent; automatic in
  /// TERTIO_SIMSAN builds. \returns the auditor.
  sim::Auditor* EnableAudit();

  /// The machine's auditor, or nullptr when auditing is not enabled.
  sim::Auditor* auditor() const { return site_->auditor(); }

 private:
  void BindAuditor(sim::Auditor* auditor);

  MachineConfig config_;
  std::unique_ptr<Site> site_;
  std::unique_ptr<tape::TapeVolume> tape_r_;
  std::unique_ptr<tape::TapeVolume> tape_s_;
  /// The one session leasing the whole site. Declared after the volumes it
  /// mounts, before anything that might use it.
  std::unique_ptr<QuerySession> session_;
};

}  // namespace tertio::exec
