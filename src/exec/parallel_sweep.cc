#include "exec/parallel_sweep.h"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

namespace tertio::exec {

int EffectiveSweepThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ParseSweepThreads(int argc, char** argv) {
  constexpr const char kFlag[] = "--threads=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      long value = std::strtol(argv[i] + sizeof(kFlag) - 1, nullptr, 10);
      if (value > 0) return static_cast<int>(value);
    }
  }
  return 0;
}

void ParallelFor(std::size_t count, int threads, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::size_t workers = static_cast<std::size_t>(EffectiveSweepThreads(threads));
  if (workers > count) workers = count;
  if (workers <= 1) {
    // The seed's serial path, on the calling thread.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto run = [&](std::size_t worker) {
    for (std::size_t i = worker; i < count; i += workers) {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back(run, w);
  }
  run(0);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tertio::exec
