#include "exec/query_session.h"

#include <utility>

#include "util/string_util.h"

namespace tertio::exec {

Result<std::unique_ptr<QuerySession>> QuerySession::Open(Site* site,
                                                         const SessionResources& res) {
  if (site == nullptr) return Status::InvalidArgument("session requires a site");
  if (res.memory_blocks == 0) {
    return Status::InvalidArgument("a session needs at least one memory block");
  }
  std::string tag = StrFormat("session:%s", res.name.c_str());
  TERTIO_ASSIGN_OR_RETURN(std::vector<int> drives, site->AcquireDrives(2));
  Result<mem::BudgetLease> lease = mem::BudgetLease::Acquire(&site->memory(),
                                                             res.memory_blocks, tag);
  if (!lease.ok()) {
    site->ReleaseDrives(drives);
    return lease.status();
  }
  Result<disk::ExtentList> carve =
      site->disks().allocator().Allocate(res.disk_blocks, site->sim().Horizon(), tag);
  if (!carve.ok()) {
    site->ReleaseDrives(drives);
    return carve.status();
  }
  return std::unique_ptr<QuerySession>(new QuerySession(
      site, res, std::move(drives), std::move(*lease), std::move(*carve)));
}

QuerySession::QuerySession(Site* site, SessionResources res, std::vector<int> drives,
                           mem::BudgetLease lease, disk::ExtentList carve)
    : site_(site),
      name_(std::move(res.name)),
      drive_indices_(std::move(drives)),
      lease_(std::move(lease)),
      memory_(res.memory_blocks),
      carve_(std::move(carve)) {
  std::vector<disk::DiskVolume*> spindles;
  spindles.reserve(static_cast<size_t>(site_->disks().disk_count()));
  for (int i = 0; i < site_->disks().disk_count(); ++i) {
    spindles.push_back(site_->disks().disk(i));
  }
  disks_ = std::make_unique<disk::StripedDiskGroup>(std::move(spindles), carve_,
                                                    site_->config().stripe_unit,
                                                    site_->block_bytes());
  if (site_->auditor() != nullptr) {
    memory_.BindAuditor(site_->auditor());
    disks_->allocator().BindAuditor(site_->auditor());
  }
}

QuerySession::~QuerySession() {
  // A cache window is session intent on shared drive state; disarm it so a
  // later session on the same drive cannot inherit a window pointing at an
  // entry this session looked up (it may be evicted by then).
  if (cache_window_armed_) drive_s()->ClearCacheWindow();
  Status freed = site_->disks().allocator().Free(carve_, site_->sim().Horizon(),
                                                 StrFormat("session:%s", name_.c_str()));
  TERTIO_CHECK(freed.ok(), "session failed to return its disk carve");
  site_->ReleaseDrives(drive_indices_);
}

Result<sim::Interval> QuerySession::MountR(int slot, SimSeconds ready) {
  if (site_->library() == nullptr) {
    return Status::FailedPrecondition("site has no tape library");
  }
  return site_->library()->Mount(slot, drive_r(), ready);
}

Result<sim::Interval> QuerySession::MountS(int slot, SimSeconds ready) {
  if (site_->library() == nullptr) {
    return Status::FailedPrecondition("site has no tape library");
  }
  return site_->library()->Mount(slot, drive_s(), ready);
}

void QuerySession::ForceMount(tape::TapeVolume* r, tape::TapeVolume* s) {
  drive_r()->ForceMount(r);
  drive_s()->ForceMount(s);
}

bool QuerySession::EnableCachedSRead(const rel::Relation& s) {
  disk::ExtentCache* cache = site_->extent_cache();
  if (cache == nullptr || s.volume == nullptr || s.blocks == 0) return false;
  if (drive_s()->volume() != s.volume) return false;
  if (!cache->Lookup(s.volume, s.start_block, s.blocks, site_->sim().Horizon())) return false;
  const void* token = s.volume;
  BlockIndex entry_start = s.start_block;
  BlockCount entry_count = s.blocks;
  drive_s()->SetCacheWindow(
      entry_start, entry_count,
      [cache, token, entry_start, entry_count](BlockIndex start, BlockCount count,
                                               SimSeconds ready) {
        return cache->ReadThrough(token, entry_start, entry_count, start, count, ready);
      });
  cache_window_armed_ = true;
  return true;
}

join::JoinContext QuerySession::context(SimSeconds not_before) {
  join::JoinContext ctx;
  ctx.sim = &site_->sim();
  ctx.drive_r = drive_r();
  ctx.drive_s = drive_s();
  ctx.disks = disks_.get();
  ctx.memory = &memory_;
  ctx.robot = site_->library() != nullptr ? site_->library()->robot() : nullptr;
  ctx.not_before = not_before;
  return ctx;
}

}  // namespace tertio::exec
