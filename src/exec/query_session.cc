#include "exec/query_session.h"

#include <utility>

#include "util/string_util.h"

namespace tertio::exec {

Result<std::unique_ptr<QuerySession>> QuerySession::Open(Site* site,
                                                         const SessionResources& res) {
  if (site == nullptr) return Status::InvalidArgument("session requires a site");
  if (res.memory_blocks == 0) {
    return Status::InvalidArgument("a session needs at least one memory block");
  }
  std::string tag = StrFormat("session:%s", res.name.c_str());
  std::vector<int> want;
  for (int p : res.preferred_drives) {
    if (p >= 0) want.push_back(p);
  }
  // The DriveLease guard is the single release path: every failure below
  // simply returns and the guard's destructor puts the drives back, so a
  // failed admission cannot leak a drive.
  TERTIO_ASSIGN_OR_RETURN(DriveLease drives, site->LeaseDrives(2, tag, want));
  // Map the leased pair onto [R, S] roles: an S (resp. R) preference that
  // landed in the wrong position is swapped into place. With no preferences
  // the pick order is already the legacy [lowest, next-lowest] = [R, S].
  std::vector<int> order = drives.drives();
  int want_r = !res.preferred_drives.empty() ? res.preferred_drives[0] : -1;
  int want_s = res.preferred_drives.size() > 1 ? res.preferred_drives[1] : -1;
  if (want_s >= 0 && order[0] == want_s && order[1] != want_s) std::swap(order[0], order[1]);
  if (want_r >= 0 && order[1] == want_r && order[0] != want_r) std::swap(order[0], order[1]);
  Result<mem::BudgetLease> lease = mem::BudgetLease::Acquire(&site->memory(),
                                                             res.memory_blocks, tag);
  if (!lease.ok()) return lease.status();
  Result<disk::ExtentList> carve =
      site->disks().allocator().Allocate(res.disk_blocks, site->sim().Horizon(), tag);
  if (!carve.ok()) return carve.status();
  return std::unique_ptr<QuerySession>(new QuerySession(
      site, res, std::move(drives), std::move(order), std::move(*lease), std::move(*carve)));
}

QuerySession::QuerySession(Site* site, SessionResources res, DriveLease drives,
                           std::vector<int> drive_order, mem::BudgetLease lease,
                           disk::ExtentList carve)
    : site_(site),
      name_(std::move(res.name)),
      drive_lease_(std::move(drives)),
      drive_indices_(std::move(drive_order)),
      lease_(std::move(lease)),
      memory_(res.memory_blocks),
      carve_(std::move(carve)) {
  std::vector<disk::DiskVolume*> spindles;
  spindles.reserve(static_cast<size_t>(site_->disks().disk_count()));
  for (int i = 0; i < site_->disks().disk_count(); ++i) {
    spindles.push_back(site_->disks().disk(i));
  }
  disks_ = std::make_unique<disk::StripedDiskGroup>(std::move(spindles), carve_,
                                                    site_->config().stripe_unit,
                                                    site_->block_bytes());
  if (site_->auditor() != nullptr) {
    memory_.BindAuditor(site_->auditor());
    disks_->allocator().BindAuditor(site_->auditor());
  }
}

QuerySession::~QuerySession() {
  // A cache window is session intent on shared drive state; disarm it so a
  // later session on the same drive cannot inherit a window pointing at an
  // entry this session looked up (it may be evicted by then).
  if (cache_window_armed_) drive_s()->ClearCacheWindow();
  Status freed = site_->disks().allocator().Free(carve_, site_->sim().Horizon(),
                                                 StrFormat("session:%s", name_.c_str()));
  TERTIO_CHECK(freed.ok(), "session failed to return its disk carve");
  // drive_lease_ releases the drives in its destructor, after the members
  // declared below it, preserving the legacy carve-then-drives close order.
}

Result<sim::Interval> QuerySession::MountR(int slot, SimSeconds ready) {
  if (site_->library() == nullptr) {
    return Status::FailedPrecondition("site has no tape library");
  }
  return site_->library()->Mount(slot, drive_r(), ready);
}

Result<sim::Interval> QuerySession::MountS(int slot, SimSeconds ready) {
  if (site_->library() == nullptr) {
    return Status::FailedPrecondition("site has no tape library");
  }
  return site_->library()->Mount(slot, drive_s(), ready);
}

void QuerySession::ForceMount(tape::TapeVolume* r, tape::TapeVolume* s) {
  drive_r()->ForceMount(r);
  drive_s()->ForceMount(s);
}

bool QuerySession::EnableCachedSRead(const rel::Relation& s, SimSeconds now) {
  disk::ExtentCache* cache = site_->extent_cache();
  if (cache == nullptr || s.volume == nullptr || s.blocks == 0) return false;
  if (drive_s()->volume() != s.volume) return false;
  if (!cache->Lookup(s.volume, s.start_block, s.blocks, now)) return false;
  const void* token = s.volume;
  BlockIndex entry_start = s.start_block;
  BlockCount entry_count = s.blocks;
  drive_s()->SetCacheWindow(
      entry_start, entry_count,
      [cache, token, entry_start, entry_count](BlockIndex start, BlockCount count,
                                               SimSeconds ready) {
        return cache->ReadThrough(token, entry_start, entry_count, start, count, ready);
      });
  cache_window_armed_ = true;
  return true;
}

join::JoinContext QuerySession::context(SimSeconds not_before) {
  join::JoinContext ctx;
  ctx.sim = &site_->sim();
  ctx.drive_r = drive_r();
  ctx.drive_s = drive_s();
  ctx.disks = disks_.get();
  ctx.memory = &memory_;
  ctx.robot = site_->library() != nullptr ? site_->library()->robot() : nullptr;
  ctx.not_before = not_before;
  return ctx;
}

}  // namespace tertio::exec
