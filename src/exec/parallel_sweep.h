#pragma once

/// \file parallel_sweep.h
/// Deterministic multi-threaded sweep driver for the experiment harnesses.
///
/// Every figure/table reproduction runs dozens of independent simulated
/// joins: each sweep point builds a fresh Machine, so points share no state
/// and any schedule produces the same per-point results. ParallelSweep
/// exploits that: it spreads the points over a fixed pool of workers with a
/// static block-cyclic assignment (worker w runs points w, w+T, w+2T, ... —
/// no work stealing, no scheduling nondeterminism) and returns results in
/// input order. With threads == 1 it runs the points inline on the calling
/// thread, byte-for-byte the seed's serial path.
///
/// Simulated times are a function of the point alone; wall-clock is the only
/// thing the thread count changes.

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace tertio::exec {

/// Worker count actually used for `requested` (0 = all hardware threads).
int EffectiveSweepThreads(int requested);

/// Parses a `--threads=N` argument out of argv (any position). Unrecognized
/// arguments are ignored. \returns the requested thread count (0 = default:
/// all hardware threads).
int ParseSweepThreads(int argc, char** argv);

/// Runs body(0) ... body(count - 1) across `threads` workers (0 = all
/// hardware threads). Worker w executes indices w, w + T, w + 2T, ... in
/// increasing order. Blocks until every index ran. `body` must be
/// thread-safe across distinct indices.
void ParallelFor(std::size_t count, int threads, const std::function<void(std::size_t)>& body);

/// Maps `fn` over `points` with ParallelFor; results come back in input
/// order, regardless of thread count or scheduling.
template <typename Point, typename Fn>
auto ParallelSweep(const std::vector<Point>& points, Fn&& fn, int threads = 0)
    -> std::vector<decltype(fn(std::declval<const Point&>()))> {
  using R = decltype(fn(std::declval<const Point&>()));
  std::vector<std::optional<R>> slots(points.size());
  ParallelFor(points.size(), threads,
              [&](std::size_t i) { slots[i].emplace(fn(points[i])); });
  std::vector<R> results;
  results.reserve(points.size());
  for (std::optional<R>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace tertio::exec
