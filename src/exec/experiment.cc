#include "exec/experiment.h"

namespace tertio::exec {

Result<PreparedWorkload> PrepareWorkload(Machine* machine, const WorkloadConfig& workload) {
  if (machine == nullptr) return Status::InvalidArgument("workload requires a machine");
  if (workload.r_bytes == 0 || workload.s_bytes == 0) {
    return Status::InvalidArgument("workload relations must be non-empty");
  }
  ByteCount bb = machine->block_bytes();
  rel::GeneratorConfig r_config;
  r_config.name = "R";
  r_config.record_bytes = workload.record_bytes;
  r_config.compressibility = workload.compressibility;
  r_config.seed = workload.seed;
  r_config.phantom = workload.phantom;
  r_config.keys = rel::KeySequence::kSequentialUnique;
  // Tuple counts sized so the relation occupies the requested bytes.
  std::uint64_t tuples_per_block =
      rel::TuplesPerBlock(rel::Schema::KeyPayload(workload.record_bytes), bb);
  r_config.tuple_count = BytesToBlocks(workload.r_bytes, bb).value() * tuples_per_block;

  rel::GeneratorConfig s_config = r_config;
  s_config.name = "S";
  s_config.seed = workload.seed + 1;
  s_config.keys = rel::KeySequence::kForeignKeyUniform;
  s_config.key_domain = r_config.tuple_count;
  s_config.tuple_count = BytesToBlocks(workload.s_bytes, bb).value() * tuples_per_block;

  PreparedWorkload prepared;
  TERTIO_ASSIGN_OR_RETURN(prepared.r, rel::GenerateOnTape(r_config, &machine->tape_r()));
  TERTIO_ASSIGN_OR_RETURN(prepared.s, rel::GenerateOnTape(s_config, &machine->tape_s()));
  machine->MountTapes();
  return prepared;
}

Result<join::JoinStats> RunJoinExperiment(const MachineConfig& machine_config,
                                          const WorkloadConfig& workload, JoinMethodId method) {
  Machine machine(machine_config);
  TERTIO_ASSIGN_OR_RETURN(PreparedWorkload prepared, PrepareWorkload(&machine, workload));
  join::JoinSpec spec;
  spec.r = &prepared.r;
  spec.s = &prepared.s;
  std::unique_ptr<join::JoinMethod> executor = join::CreateJoinMethod(method);
  TERTIO_CHECK(executor != nullptr, "unknown join method");
  join::JoinContext ctx = machine.context();
  ctx.coalesce_transfers = workload.coalesce_transfers;
  ctx.closed_form_commit = workload.closed_form_commit;
  return executor->Execute(spec, ctx);
}

cost::CostParams CostParamsFor(const Machine& machine, const WorkloadConfig& workload) {
  cost::CostParams params;
  ByteCount bb = machine.config().block_bytes;
  params.block_bytes = bb;
  params.r_blocks = BytesToBlocks(workload.r_bytes, bb);
  params.s_blocks = BytesToBlocks(workload.s_bytes, bb);
  params.memory_blocks = BytesToBlocks(machine.config().memory_bytes, bb);
  params.disk_blocks = BytesToBlocks(machine.config().disk_space_bytes, bb);
  params.tape_rate_bps = machine.EffectiveTapeRate(workload.compressibility);
  params.disk_rate_bps = machine.AggregateDiskRate();
  params.disk_positioning_seconds = machine.config().disk_model.positioning_seconds;
  return params;
}

}  // namespace tertio::exec
