#include "exec/service_workload.h"

#include <algorithm>
#include <memory>
#include <string>

#include "relation/generator.h"
#include "util/string_util.h"

namespace tertio::exec {

Result<ServiceWorkload> PrepareServiceWorkload(Site* site,
                                               const ServiceWorkloadConfig& config) {
  if (site == nullptr) return Status::InvalidArgument("workload requires a site");
  if (site->library() == nullptr) {
    return Status::FailedPrecondition("service workload requires a site with a library");
  }
  if (config.s_cartridges <= 0 || config.r_relations <= 0 || config.r_cartridges <= 0 ||
      config.s_bytes == 0 || config.r_bytes == 0) {
    return Status::InvalidArgument("service workload needs positive relation counts and sizes");
  }
  ByteCount bb = site->block_bytes();
  std::uint64_t tuples_per_block =
      rel::TuplesPerBlock(rel::Schema::KeyPayload(config.record_bytes), bb);

  ServiceWorkload workload;

  // R relations are distributed over r_cartridges tapes (GenerateOnTape
  // appends; relation j lands on cartridge j mod r_cartridges). The default
  // single cartridge keeps every query's inner side on the same tape — and
  // is byte-identical to the original layout, including generation order and
  // per-relation seeds.
  std::vector<std::unique_ptr<tape::TapeVolume>> r_volumes;
  int r_cartridges = std::min(config.r_cartridges, config.r_relations);
  for (int c = 0; c < r_cartridges; ++c) {
    std::string name = c == 0 ? std::string("cart-R") : StrFormat("cart-R%d", c);
    r_volumes.push_back(std::make_unique<tape::TapeVolume>(name, bb));
  }
  std::uint64_t r_tuples = BytesToBlocks(config.r_bytes, bb).value() * tuples_per_block;
  std::vector<int> r_cartridge_of;
  for (int j = 0; j < config.r_relations; ++j) {
    rel::GeneratorConfig r_config;
    r_config.name = StrFormat("R%d", j);
    r_config.record_bytes = config.record_bytes;
    r_config.compressibility = config.compressibility;
    r_config.seed = config.seed + static_cast<std::uint64_t>(2 * j);
    r_config.phantom = config.phantom;
    r_config.keys = rel::KeySequence::kSequentialUnique;
    r_config.tuple_count = r_tuples;
    int cartridge = j % r_cartridges;
    TERTIO_ASSIGN_OR_RETURN(rel::Relation relation,
                            rel::GenerateOnTape(r_config, r_volumes[static_cast<size_t>(cartridge)].get()));
    workload.r.push_back(std::move(relation));
    r_cartridge_of.push_back(cartridge);
  }
  std::vector<int> r_cartridge_slots;
  for (auto& volume : r_volumes) {
    TERTIO_ASSIGN_OR_RETURN(int slot, site->AddCartridge(std::move(volume)));
    r_cartridge_slots.push_back(slot);
  }
  workload.r_slot = r_cartridge_slots.front();
  for (int cartridge : r_cartridge_of) {
    workload.r_slots.push_back(r_cartridge_slots[static_cast<size_t>(cartridge)]);
  }

  std::uint64_t s_tuples = BytesToBlocks(config.s_bytes, bb).value() * tuples_per_block;
  for (int k = 0; k < config.s_cartridges; ++k) {
    auto s_volume = std::make_unique<tape::TapeVolume>(StrFormat("cart-S%d", k), bb);
    rel::GeneratorConfig s_config;
    s_config.name = StrFormat("S%d", k);
    s_config.record_bytes = config.record_bytes;
    s_config.compressibility = config.compressibility;
    s_config.seed = config.seed + 1 + static_cast<std::uint64_t>(2 * k);
    s_config.phantom = config.phantom;
    s_config.keys = rel::KeySequence::kForeignKeyUniform;
    // Foreign keys reference the R key space, so every R_j |><| S_k join
    // has real matches in full-data mode.
    s_config.key_domain = r_tuples;
    s_config.tuple_count = s_tuples;
    TERTIO_ASSIGN_OR_RETURN(rel::Relation relation, rel::GenerateOnTape(s_config, s_volume.get()));
    workload.s.push_back(std::move(relation));
    TERTIO_ASSIGN_OR_RETURN(int slot, site->AddCartridge(std::move(s_volume)));
    workload.s_slots.push_back(slot);
  }
  return workload;
}

}  // namespace tertio::exec
