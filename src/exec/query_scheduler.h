#pragma once

/// \file query_scheduler.h
/// Multi-query join service over one Site.
///
/// The scheduler accepts a stream of JoinRequests, admission-checks each
/// against the site's memory/disk/drive budgets, and executes admitted
/// queries against per-query sessions. Requests are indexed by the cartridge
/// their outer (S) relation lives on; under the kSharedScan policy, queued
/// joins whose S cartridge is about to be swept piggyback on the leader's
/// sequential pass — their S reads are multicast from the one physical pass
/// (tape/tape_drive.h shared-pass window) instead of re-reading the tape.
/// This is the service-level counterpart of the Postgres/Paradise batching
/// the paper cites in Section 2.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "cost/method_id.h"
#include "exec/query_session.h"
#include "exec/site.h"
#include "join/join_spec.h"

namespace tertio::exec {

/// How the service orders and executes its queue.
enum class ServicePolicy : std::uint8_t {
  /// Strict arrival order, every query pays its own tape passes.
  kFifo,
  /// Arrival order for leaders, but queued joins on the leader's S
  /// cartridge join its pass (scan sharing).
  kSharedScan,
};

/// One join submitted to the service.
struct JoinRequest {
  /// Assigned by Submit() when left 0.
  std::uint64_t id = 0;
  /// Virtual time the query arrived; it can never start earlier.
  SimSeconds arrival = 0.0;
  join::JoinSpec spec;
  JoinMethodId method = JoinMethodId::kCdtGh;
  /// Memory partition M_q the query's session leases.
  BlockCount memory_blocks = 0;
  /// Disk carve D_q the query's session leases.
  BlockCount disk_blocks = 0;
};

/// The service-level record of one finished (or failed) query.
struct QueryOutcome {
  std::uint64_t id = 0;
  Status status;
  join::JoinStats stats;
  SimSeconds arrival = 0.0;
  /// Virtual time the join itself was anchored (>= arrival).
  SimSeconds start = 0.0;
  /// Virtual time the join completed.
  SimSeconds completion = 0.0;
  /// True when this query's S scan rode another query's pass.
  bool scan_shared = false;
  /// True when this query's S scan was served from the disk extent cache.
  bool cached = false;

  /// Queue wait + execution, the latency the client observes.
  SimSeconds response_seconds() const { return completion - arrival; }
};

/// Aggregates over one service run.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Queries whose S scan was multicast from another query's pass.
  std::uint64_t scan_shared_queries = 0;
  /// Queries whose S scan was served from the disk extent cache.
  std::uint64_t cached_queries = 0;
  BlockCount tape_blocks_read = 0;
  BlockCount tape_blocks_shared = 0;
  /// Blocks served from the extent cache in place of tape reads.
  BlockCount tape_blocks_cached = 0;
  /// Extent-cache counters at the end of the run (zero without a cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_fills = 0;
  std::uint64_t cache_evictions = 0;
  /// Horizon when the queue drained.
  SimSeconds makespan = 0.0;
};

/// Admission control + per-cartridge queues + scan-shared execution.
class QueryScheduler {
 public:
  QueryScheduler(Site* site, ServicePolicy policy);

  ServicePolicy policy() const { return policy_; }

  /// Admission control: the site must have a library holding both
  /// relations' cartridges, and the request's M_q/D_q/drive demands must
  /// fit the site outright (a demand no schedule could ever satisfy is
  /// rejected now, not queued forever). \returns the request id.
  Result<std::uint64_t> Submit(JoinRequest request);

  /// Queries queued against the cartridge in `slot` (S side).
  std::size_t pending_on(int slot) const;
  std::size_t pending() const { return queue_.size(); }

  /// Called after each query completes, while the service is still
  /// running — a closed-loop client submits its next query from here.
  void set_on_complete(std::function<void(const QueryOutcome&)> fn) {
    on_complete_ = std::move(fn);
  }

  /// Drains the queue (including queries submitted from on_complete),
  /// executing admitted joins in arrival order. Per-query failures land in
  /// their outcomes; Run itself fails only on service-level invariants.
  Status Run();

  const std::vector<QueryOutcome>& outcomes() const { return outcomes_; }
  ServiceStats service_stats() const;

 private:
  /// Pops the earliest-arrived request (ties by id).
  JoinRequest PopNext();
  /// Removes request `id` from `queue_` and returns it.
  JoinRequest Take(std::uint64_t id);
  void Unindex(const JoinRequest& request);
  /// Returns a popped request to the queue (and the cartridge index) with
  /// its id and arrival intact — used when a follower's leader failed and
  /// the follower must wait its regular turn instead.
  void Requeue(JoinRequest request);
  /// True when `id` is already on the pending queue.
  bool IsQueued(std::uint64_t id) const;
  /// Executes one query on its own session; fills and records the outcome.
  QueryOutcome ExecuteOne(JoinRequest request, bool scan_shared);

  Site* site_;
  ServicePolicy policy_;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  /// Admitted, not yet executed.
  std::vector<JoinRequest> queue_;
  /// S-cartridge slot -> queued request ids, arrival order.
  std::map<int, std::deque<std::uint64_t>> cartridge_queues_;
  std::vector<QueryOutcome> outcomes_;
  SimSeconds makespan_ = 0.0;
  std::function<void(const QueryOutcome&)> on_complete_;
};

}  // namespace tertio::exec
