#pragma once

/// \file query_scheduler.h
/// Multi-query join service over one Site.
///
/// The scheduler accepts a stream of JoinRequests, admission-checks each
/// against the site's memory/disk/drive budgets, and executes admitted
/// queries against per-query sessions. Requests are indexed by the cartridge
/// their outer (S) relation lives on; under the kSharedScan policy, queued
/// joins whose S cartridge is about to be swept piggyback on the leader's
/// sequential pass — their S reads are multicast from the one physical pass
/// (tape/tape_drive.h shared-pass window) instead of re-reading the tape.
/// This is the service-level counterpart of the Postgres/Paradise batching
/// the paper cites in Section 2.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "cost/method_id.h"
#include "exec/query_session.h"
#include "exec/site.h"
#include "join/join_spec.h"

namespace tertio::exec {

/// How the service orders and executes its queue.
enum class ServicePolicy : std::uint8_t {
  /// Strict arrival order, every query pays its own tape passes.
  kFifo,
  /// Arrival order for leaders, but queued joins on the leader's S
  /// cartridge join its pass (scan sharing).
  kSharedScan,
  /// Elevator (SCAN) over library slots: among arrived queries, dispatch the
  /// one whose S cartridge is nearest the robot's sweep position in the
  /// current sweep direction, reversing at the ends — fewer long arm trips
  /// than arrival order when queries scatter across cartridges. An aging
  /// bound (SchedulerOptions::elevator_aging_seconds) force-promotes any
  /// query the sweep has bypassed too long, so no cartridge starves.
  kElevator,
};

/// Dispatch-loop knobs (policy-independent).
struct SchedulerOptions {
  /// Maximum QuerySessions in flight at once. 1 (the default) reproduces
  /// the serial scheduler bit-for-bit; higher values overlap admitted
  /// queries in virtual time whenever the site's free drives, memory and
  /// session disk space cover another request.
  int max_in_flight = 1;
  /// kElevator only: once a queued, already-arrived query has been bypassed
  /// by the sweep for longer than this, it is dispatched next regardless of
  /// slot distance.
  SimSeconds elevator_aging_seconds = 3600.0;
};

/// One join submitted to the service.
struct JoinRequest {
  /// Assigned by Submit() when left 0.
  std::uint64_t id = 0;
  /// Virtual time the query arrived; it can never start earlier.
  SimSeconds arrival = 0.0;
  join::JoinSpec spec;
  JoinMethodId method = JoinMethodId::kCdtGh;
  /// Memory partition M_q the query's session leases.
  BlockCount memory_blocks = 0;
  /// Disk carve D_q the query's session leases.
  BlockCount disk_blocks = 0;
};

/// The service-level record of one finished (or failed) query.
struct QueryOutcome {
  std::uint64_t id = 0;
  Status status;
  join::JoinStats stats;
  SimSeconds arrival = 0.0;
  /// Virtual time the join itself was anchored (>= arrival).
  SimSeconds start = 0.0;
  /// Virtual time the join completed.
  SimSeconds completion = 0.0;
  /// True when this query's S scan rode another query's pass.
  bool scan_shared = false;
  /// True when this query's S scan was served from the disk extent cache.
  bool cached = false;

  /// Queue wait + execution, the latency the client observes.
  SimSeconds response_seconds() const { return completion - arrival; }
};

/// Aggregates over one service run.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Queries whose S scan was multicast from another query's pass.
  std::uint64_t scan_shared_queries = 0;
  /// Queries whose S scan was served from the disk extent cache.
  std::uint64_t cached_queries = 0;
  BlockCount tape_blocks_read = 0;
  BlockCount tape_blocks_shared = 0;
  /// Blocks served from the extent cache in place of tape reads.
  BlockCount tape_blocks_cached = 0;
  /// Extent-cache counters at the end of the run (zero without a cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_fills = 0;
  std::uint64_t cache_evictions = 0;
  /// Robot operations (mount/dismount trips, including faulted re-tries)
  /// over the whole run — the arm traffic the elevator policy minimizes.
  std::uint64_t robot_exchanges = 0;
  /// Most sessions simultaneously in flight in virtual time.
  std::uint64_t peak_in_flight = 0;
  /// Horizon when the queue drained.
  SimSeconds makespan = 0.0;
};

/// Admission control + per-cartridge queues + scan-shared execution.
class QueryScheduler {
 public:
  QueryScheduler(Site* site, ServicePolicy policy, SchedulerOptions options = {});

  ServicePolicy policy() const { return policy_; }
  const SchedulerOptions& options() const { return options_; }

  /// Admission control: the site must have a library holding both
  /// relations' cartridges, and the request's M_q/D_q/drive demands must
  /// fit the site outright (a demand no schedule could ever satisfy is
  /// rejected now, not queued forever). \returns the request id.
  Result<std::uint64_t> Submit(JoinRequest request);

  /// Queries queued against the cartridge in `slot` (S side).
  std::size_t pending_on(int slot) const;
  std::size_t pending() const { return queue_.size(); }

  /// Called after each query completes, while the service is still
  /// running — a closed-loop client submits its next query from here.
  void set_on_complete(std::function<void(const QueryOutcome&)> fn) {
    on_complete_ = std::move(fn);
  }

  /// Drains the queue (including queries submitted from on_complete) with an
  /// event-driven dispatch loop. With in-flight capacity and resources to
  /// spare, the policy's next candidate is dispatched on its own session;
  /// otherwise the earliest completion retires first (virtual-time order, so
  /// closed-loop clients observe completions in order). With
  /// max_in_flight=1 every dispatch happens on an otherwise-idle service and
  /// takes the serial path, bit-identical to the legacy scheduler. Per-query
  /// failures land in their outcomes; Run itself fails only on
  /// service-level invariants.
  Status Run();

  const std::vector<QueryOutcome>& outcomes() const { return outcomes_; }
  ServiceStats service_stats() const;

 private:
  /// One dispatched-but-not-retired query: its already-simulated outcome
  /// plus the session whose leases it still holds in virtual time.
  struct InFlight {
    QueryOutcome outcome;
    std::unique_ptr<QuerySession> session;
    /// Dispatch order, the retirement tie-break at equal completions.
    std::uint64_t seq = 0;
  };

  /// Pops the earliest-arrived request (ties by id).
  JoinRequest PopNext();
  /// Removes request `id` from `queue_` and returns it.
  JoinRequest Take(std::uint64_t id);
  void Unindex(const JoinRequest& request);
  /// Returns a popped request to the queue (and the cartridge index) with
  /// its id and arrival intact — used when a follower's leader failed and
  /// the follower must wait its regular turn instead.
  void Requeue(JoinRequest request);
  /// True when `id` is already on the pending queue.
  bool IsQueued(std::uint64_t id) const;
  /// Executes one query on its own session; fills and records the outcome.
  /// The serial path: anchors at the global horizon, exactly the legacy
  /// scheduler's behavior.
  QueryOutcome ExecuteOne(JoinRequest request, bool scan_shared);
  /// Executes one query dispatched at `dispatch` while other sessions are in
  /// flight: the join anchors exactly at its own mount-completion time
  /// (JoinContext::exact_anchor), not the poisoned global horizon. On
  /// success `*session_out` keeps the session alive until retirement.
  QueryOutcome ExecuteConcurrent(JoinRequest request, SimSeconds dispatch,
                                 std::unique_ptr<QuerySession>* session_out);
  /// Runs one serial leader iteration (plus its shared-scan followers under
  /// kSharedScan) exactly as the legacy scheduler did.
  void RunSerialGroup(JoinRequest leader);
  /// The id of the request the policy would dispatch next (0 = empty queue).
  std::uint64_t PickCandidate();
  /// kElevator: the eligible request nearest the sweep position in the sweep
  /// direction, unless one has aged past the bound (then the oldest).
  std::uint64_t PickElevator();
  /// True when the site can open another 2-drive session for `request` right
  /// now: enough free drives/memory/session disk, and neither of the
  /// request's cartridges is mounted in a drive another session holds.
  bool ResourcesFit(const JoinRequest& request);
  /// Index of the free-or-leased drive holding the cartridge in `slot`, or
  /// -1 when unmounted.
  int DriveIndexHolding(int slot) const;
  /// Positional [R, S] drive preferences routing the session onto drives
  /// already holding its cartridges.
  std::vector<int> PreferredDrivesFor(const JoinRequest& request) const;
  /// Retires the earliest-completing in-flight query: closes its session,
  /// records the outcome, fires on_complete, advances the retirement clock.
  void RetireEarliest();
  /// True when another queued request shares `leader`'s S slot and has
  /// arrived by `when` (a shared-scan group wants to form).
  bool HasArrivedFollowers(const JoinRequest& leader, SimSeconds when) const;

  Site* site_;
  ServicePolicy policy_;
  SchedulerOptions options_;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  /// Admitted, not yet executed.
  std::vector<JoinRequest> queue_;
  /// S-cartridge slot -> queued request ids, arrival order.
  std::map<int, std::deque<std::uint64_t>> cartridge_queues_;
  std::vector<QueryOutcome> outcomes_;
  /// Dispatched, not yet retired (their completions are already simulated).
  std::vector<InFlight> in_flight_;
  /// Virtual dispatch cursor: max of all dispatch times and retired
  /// completions so far. The next dispatch happens at max(clock_, arrival).
  SimSeconds clock_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t peak_in_flight_ = 0;
  std::uint64_t robot_exchanges_ = 0;
  /// kElevator sweep state: last dispatched slot and sweep direction.
  int sweep_pos_ = 0;
  int sweep_dir_ = 1;
  SimSeconds makespan_ = 0.0;
  std::function<void(const QueryOutcome&)> on_complete_;
};

}  // namespace tertio::exec
