#include "exec/machine.h"

namespace tertio::exec {

MachineConfig MachineConfig::PaperTestbed(ByteCount disk_space_bytes, ByteCount memory_bytes) {
  MachineConfig config;
  config.block_bytes = kDefaultBlockBytes;
  config.tape_model = tape::TapeDriveModel::DLT4000();
  config.disk_count = 2;
  config.disk_model = disk::DiskModel::QuantumFireball1080();
  config.disk_space_bytes = disk_space_bytes;
  config.memory_bytes = memory_bytes;
  return config;
}

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(BytesToBlocks(config.memory_bytes, config.block_bytes)) {
  disk::DiskGroupConfig group_config = disk::DiskGroupConfig::Uniform(
      config.disk_count, config.disk_model,
      BytesToBlocks(config.disk_space_bytes, config.block_bytes), config.block_bytes,
      config.stripe_unit);
  disks_ = std::make_unique<disk::StripedDiskGroup>(group_config, &sim_);
  drive_r_ = std::make_unique<tape::TapeDrive>("tapeR", config.tape_model,
                                               sim_.CreateResource("tapeR"));
  drive_s_ = std::make_unique<tape::TapeDrive>("tapeS", config.tape_model,
                                               sim_.CreateResource("tapeS"));
  tape_r_ = std::make_unique<tape::TapeVolume>("tape-R", config.block_bytes);
  tape_s_ = std::make_unique<tape::TapeVolume>("tape-S", config.block_bytes);
  if (config.with_library) {
    library_ = std::make_unique<tape::TapeLibrary>(config.library_model,
                                                   sim_.CreateResource("robot"));
  }
  if (config.faults.enabled()) {
    // One injector per device, each with a seed derived from the plan seed
    // and the device name, so per-device fault streams are independent yet
    // exactly reproducible.
    auto attach = [&](const sim::FaultProfile& profile, const std::string& device) {
      injectors_.push_back(
          std::make_unique<sim::FaultInjector>(profile, config.faults.seed, device));
      return injectors_.back().get();
    };
    drive_r_->set_fault_injector(attach(config.faults.tape, drive_r_->name()));
    drive_s_->set_fault_injector(attach(config.faults.tape, drive_s_->name()));
    for (int i = 0; i < disks_->disk_count(); ++i) {
      disk::DiskVolume* d = disks_->disk(i);
      d->set_fault_injector(attach(config.faults.disk, d->name()));
    }
    if (library_ != nullptr) {
      library_->set_fault_injector(attach(config.faults.robot, "robot"));
    }
  }
  // Under TERTIO_SIMSAN the Simulation constructed itself audited; bind the
  // non-Resource layers (budget, allocator, scratch volumes) to the same
  // auditor. In other builds this is a no-op until EnableAudit().
  if (sim_.auditor() != nullptr) BindAuditor(sim_.auditor());
}

sim::Auditor* Machine::EnableAudit() {
  sim::Auditor* auditor = sim_.EnableAudit();
  BindAuditor(auditor);
  return auditor;
}

void Machine::BindAuditor(sim::Auditor* auditor) {
  memory_.BindAuditor(auditor);
  disks_->allocator().BindAuditor(auditor);
  tape_r_->BindAuditor(auditor);
  tape_s_->BindAuditor(auditor);
}

sim::FaultStats Machine::TotalFaultStats() const {
  sim::FaultStats total;
  for (const auto& injector : injectors_) total.Add(injector->stats());
  return total;
}

BlockCount Machine::disk_blocks() const { return disks_->allocator().capacity_blocks(); }

void Machine::MountTapes() {
  drive_r_->ForceMount(tape_r_.get());
  drive_s_->ForceMount(tape_s_.get());
}

join::JoinContext Machine::context() {
  join::JoinContext ctx;
  ctx.sim = &sim_;
  ctx.drive_r = drive_r_.get();
  ctx.drive_s = drive_s_.get();
  ctx.disks = disks_.get();
  ctx.memory = &memory_;
  ctx.robot = library_ != nullptr ? library_->robot() : nullptr;
  return ctx;
}

}  // namespace tertio::exec
