#include "exec/machine.h"

namespace tertio::exec {

MachineConfig MachineConfig::PaperTestbed(ByteCount disk_space_bytes, ByteCount memory_bytes) {
  MachineConfig config;
  config.block_bytes = kDefaultBlockBytes;
  config.tape_model = tape::TapeDriveModel::DLT4000();
  config.disk_count = 2;
  config.disk_model = disk::DiskModel::QuantumFireball1080();
  config.disk_space_bytes = disk_space_bytes;
  config.memory_bytes = memory_bytes;
  return config;
}

SiteConfig MachineConfig::ToSiteConfig() const {
  SiteConfig site;
  site.block_bytes = block_bytes;
  site.tape_model = tape_model;
  site.drive_count = 2;
  site.disk_count = disk_count;
  site.disk_model = disk_model;
  site.disk_space_bytes = disk_space_bytes;
  site.memory_bytes = memory_bytes;
  site.stripe_unit = stripe_unit;
  site.with_library = with_library;
  site.library_model = library_model;
  site.faults = faults;
  return site;
}

Status MachineConfig::Validate() const { return ToSiteConfig().Validate(); }

Machine::Machine(const MachineConfig& config) : config_(config) {
  Status valid = config.Validate();
  TERTIO_CHECK(valid.ok(), "invalid machine configuration (call Validate() for the Status)");
  site_ = std::make_unique<Site>(config.ToSiteConfig());
  tape_r_ = std::make_unique<tape::TapeVolume>("tape-R", config.block_bytes);
  tape_s_ = std::make_unique<tape::TapeVolume>("tape-S", config.block_bytes);
  // One session leasing everything: drives 0/1, all of M, all of D. Its
  // budget and allocator then behave exactly like the seed Machine's own.
  SessionResources all;
  all.name = "main";
  all.memory_blocks = site_->memory_blocks();
  all.disk_blocks = site_->disk_blocks();
  Result<std::unique_ptr<QuerySession>> session = QuerySession::Open(site_.get(), all);
  TERTIO_CHECK(session.ok(), "whole-site session lease cannot fail on a fresh site");
  session_ = std::move(*session);
  if (site_->auditor() != nullptr) BindAuditor(site_->auditor());
}

sim::Auditor* Machine::EnableAudit() {
  sim::Auditor* auditor = site_->EnableAudit();
  // The session opened before audit was enabled; bind its layers too.
  session_->memory().BindAuditor(auditor);
  session_->disks().allocator().BindAuditor(auditor);
  BindAuditor(auditor);
  return auditor;
}

void Machine::BindAuditor(sim::Auditor* auditor) {
  tape_r_->BindAuditor(auditor);
  tape_s_->BindAuditor(auditor);
}

}  // namespace tertio::exec
