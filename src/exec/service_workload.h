#pragma once

/// \file service_workload.h
/// Synthetic multi-query workloads for the join service.
///
/// The single-query experiment driver (experiment.h) generates one R and one
/// S onto a Machine's loose tapes. The service works against library
/// cartridges instead: this helper populates a Site's library with one large
/// S relation per cartridge and several small R relations sharing one
/// cartridge, so a stream of joins "R_j |><| S_k" can be composed where many
/// queries target the same S cartridge — the scan-sharing case.

#include <cstdint>
#include <vector>

#include "exec/site.h"
#include "relation/relation.h"
#include "util/status.h"

namespace tertio::exec {

/// Shape of the generated cartridge population.
struct ServiceWorkloadConfig {
  /// Distinct S relations, one per cartridge.
  int s_cartridges = 1;
  /// Bytes of each S relation.
  ByteCount s_bytes = 0;
  /// Distinct R relations, all appended to one shared cartridge.
  int r_relations = 1;
  /// Cartridges the R relations are distributed over (relation j goes to
  /// cartridge j mod r_cartridges, in generation order). 1 (the default,
  /// bit-identical to the original single-cartridge layout) makes every
  /// query contend for the same R tape — which serializes the whole service,
  /// since an in-flight query keeps it mounted. Concurrency benches spread R
  /// over several cartridges.
  int r_cartridges = 1;
  /// Bytes of each R relation.
  ByteCount r_bytes = 0;
  double compressibility = 0.25;
  ByteCount record_bytes = 100;
  std::uint64_t seed = 42;
  /// Timing-only blocks (paper scale) vs full data.
  bool phantom = true;
};

/// The populated library: descriptors plus the slots they live in.
struct ServiceWorkload {
  std::vector<rel::Relation> r;
  std::vector<rel::Relation> s;
  /// Slot of the first R cartridge (the only one when r_cartridges == 1).
  int r_slot = -1;
  /// Slot of the cartridge holding each R relation (parallel to `r`).
  std::vector<int> r_slots;
  /// Slot of each S cartridge (parallel to `s`).
  std::vector<int> s_slots;
};

/// Generates the relations onto fresh cartridges in the site's library
/// (uncosted — experiment setup). The site must have a library with enough
/// free slots (1 + s_cartridges).
Result<ServiceWorkload> PrepareServiceWorkload(Site* site, const ServiceWorkloadConfig& config);

}  // namespace tertio::exec
