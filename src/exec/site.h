#pragma once

/// \file site.h
/// The shared half of the split Machine: one simulated installation whose
/// devices serve many queries.
///
/// A Site owns the simulation, the tape library, a pool of drives, the
/// striped disk group and the site-wide memory budget M. It executes
/// nothing itself — queries lease slices of it through exec::QuerySession
/// and a stream of queries is driven through exec::QueryScheduler. The
/// legacy single-query Machine (machine.h) survives as a facade over a Site
/// plus one session that leases everything.

#include <memory>
#include <string>
#include <vector>

#include "disk/extent_cache.h"
#include "disk/striped_group.h"
#include "mem/memory_budget.h"
#include "sim/fault.h"
#include "sim/simulation.h"
#include "tape/tape_drive.h"
#include "tape/tape_library.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::exec {

/// Configuration of one site. The first two drives reproduce the paper's
/// testbed (Section 3.1) exactly; extra drives extend the pool.
struct SiteConfig {
  ByteCount block_bytes = kDefaultBlockBytes;
  tape::TapeDriveModel tape_model = tape::TapeDriveModel::DLT4000();
  /// Tape drives in the pool; a join leases two (R and S).
  int drive_count = 2;
  int disk_count = 2;
  disk::DiskModel disk_model = disk::DiskModel::QuantumFireball1080();
  /// Total disk space D shared by all sessions.
  ByteCount disk_space_bytes = 500 * kMB;
  /// Site-wide main memory M, partitioned across sessions.
  ByteCount memory_bytes = 16 * kMB;
  BlockCount stripe_unit = 32;
  /// Blocks of the disk space reserved for the cross-query extent cache
  /// (disk/extent_cache.h) — the HSM tier. 0 disables the cache entirely
  /// (bit-identical to a cache-less site). The carve comes out of
  /// disk_space_bytes, shrinking what sessions can lease.
  BlockCount cache_blocks = 0;
  /// Attach a robot library (media-exchange modeling). Required by the
  /// query service, which addresses relations by cartridge slot.
  bool with_library = false;
  tape::TapeLibraryModel library_model = tape::TapeLibraryModel::SmallAutoloader();
  /// Fault model of the site's devices (sim/fault.h).
  sim::FaultPlan faults;

  /// Rejects configurations that would otherwise fail obscurely downstream:
  /// non-positive disk/drive counts, a memory budget smaller than one
  /// block, a zero stripe unit or block size, disk space below one block.
  Status Validate() const;
};

/// The shared installation: simulation + devices + site-wide budgets.
class Site {
 public:
  /// Aborts (TERTIO_CHECK) on an invalid config; use Create() to get a
  /// Status instead.
  explicit Site(const SiteConfig& config);

  /// Validating factory.
  static Result<std::unique_ptr<Site>> Create(const SiteConfig& config);

  const SiteConfig& config() const { return config_; }
  sim::Simulation& sim() { return sim_; }
  disk::StripedDiskGroup& disks() { return *disks_; }
  mem::MemoryBudget& memory() { return memory_; }
  tape::TapeLibrary* library() { return library_.get(); }

  int drive_count() const { return static_cast<int>(drives_.size()); }
  tape::TapeDrive* drive(int i) { return drives_[static_cast<size_t>(i)].get(); }

  ByteCount block_bytes() const { return config_.block_bytes; }
  BlockCount memory_blocks() const { return memory_.total_blocks(); }
  BlockCount disk_blocks() const { return disks_->allocator().capacity_blocks(); }

  /// Disk blocks available to query sessions: total capacity minus the
  /// extent-cache carve. Admission control and session carve sizing must use
  /// this, not disk_blocks(), or sessions would be admitted against space
  /// the cache holds.
  BlockCount session_disk_blocks() const {
    return disks_->allocator().capacity_blocks() - config_.cache_blocks;
  }

  /// The cross-query extent cache, or null when cache_blocks == 0.
  disk::ExtentCache* extent_cache() { return extent_cache_.get(); }

  /// Inserts a cartridge into the library (the site must have one); under
  /// SimSan the cartridge's scratch bounds are audited like any volume.
  Result<int> AddCartridge(std::unique_ptr<tape::TapeVolume> volume);

  /// Leases the lowest-indexed `n` free drives. Fails with
  /// ResourceExhausted when fewer are free.
  Result<std::vector<int>> AcquireDrives(int n);
  void ReleaseDrives(const std::vector<int>& indices);
  int free_drives() const;

  /// Effective tape rate (bytes/s) for data of the given compressibility.
  BytesPerSecond EffectiveTapeRate(double compressibility) const {
    return config_.tape_model.EffectiveRate(compressibility);
  }

  /// Aggregate disk rate X_D (bytes/s).
  BytesPerSecond AggregateDiskRate() const { return disks_->aggregate_rate_bps(); }

  bool faults_enabled() const { return config_.faults.enabled(); }

  /// Site-wide fault/recovery counters (zero with faults disabled).
  sim::FaultStats TotalFaultStats() const;

  /// Enables SimSan on the site: every device timeline, the site budget,
  /// the site allocator and every library cartridge become audited.
  /// Idempotent; automatic in TERTIO_SIMSAN builds. \returns the auditor.
  sim::Auditor* EnableAudit();
  sim::Auditor* auditor() const { return sim_.auditor(); }

 private:
  void BindAuditor(sim::Auditor* auditor);

  SiteConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<disk::StripedDiskGroup> disks_;
  /// The cache's carve out of the site allocator (held for the site's
  /// lifetime) and the cache managing it; both null when cache_blocks == 0.
  disk::ExtentList cache_carve_;
  std::unique_ptr<disk::ExtentCache> extent_cache_;
  mem::MemoryBudget memory_;
  std::vector<std::unique_ptr<tape::TapeDrive>> drives_;
  std::vector<bool> drive_leased_;
  std::unique_ptr<tape::TapeLibrary> library_;
  /// One injector per device, owned here; devices hold raw pointers.
  std::vector<std::unique_ptr<sim::FaultInjector>> injectors_;
};

}  // namespace tertio::exec
