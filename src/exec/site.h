#pragma once

/// \file site.h
/// The shared half of the split Machine: one simulated installation whose
/// devices serve many queries.
///
/// A Site owns the simulation, the tape library, a pool of drives, the
/// striped disk group and the site-wide memory budget M. It executes
/// nothing itself — queries lease slices of it through exec::QuerySession
/// and a stream of queries is driven through exec::QueryScheduler. The
/// legacy single-query Machine (machine.h) survives as a facade over a Site
/// plus one session that leases everything.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "disk/extent_cache.h"
#include "disk/striped_group.h"
#include "mem/memory_budget.h"
#include "sim/fault.h"
#include "sim/simulation.h"
#include "tape/tape_drive.h"
#include "tape/tape_library.h"
#include "util/status.h"
#include "util/units.h"

namespace tertio::exec {

/// Configuration of one site. The first two drives reproduce the paper's
/// testbed (Section 3.1) exactly; extra drives extend the pool.
struct SiteConfig {
  ByteCount block_bytes = kDefaultBlockBytes;
  tape::TapeDriveModel tape_model = tape::TapeDriveModel::DLT4000();
  /// Tape drives in the pool; a join leases two (R and S).
  int drive_count = 2;
  int disk_count = 2;
  disk::DiskModel disk_model = disk::DiskModel::QuantumFireball1080();
  /// Total disk space D shared by all sessions.
  ByteCount disk_space_bytes = 500 * kMB;
  /// Site-wide main memory M, partitioned across sessions.
  ByteCount memory_bytes = 16 * kMB;
  BlockCount stripe_unit = 32;
  /// Blocks of the disk space reserved for the cross-query extent cache
  /// (disk/extent_cache.h) — the HSM tier. 0 disables the cache entirely
  /// (bit-identical to a cache-less site). The carve comes out of
  /// disk_space_bytes, shrinking what sessions can lease.
  BlockCount cache_blocks = 0;
  /// Attach a robot library (media-exchange modeling). Required by the
  /// query service, which addresses relations by cartridge slot.
  bool with_library = false;
  tape::TapeLibraryModel library_model = tape::TapeLibraryModel::SmallAutoloader();
  /// Fault model of the site's devices (sim/fault.h).
  sim::FaultPlan faults;

  /// Rejects configurations that would otherwise fail obscurely downstream:
  /// non-positive disk/drive counts, a memory budget smaller than one
  /// block, a zero stripe unit or block size, disk space below one block.
  Status Validate() const;
};

class Site;

/// RAII lease over a set of tape drives. The only sanctioned way to take
/// drives out of the Site pool (tertio_lint flags raw AcquireDrives calls
/// outside src/exec): error paths that unwind a half-built session release
/// their drives through the guard's destructor, so no admission failure can
/// leak a drive. Movable, not copyable.
class DriveLease {
 public:
  DriveLease() = default;
  DriveLease(const DriveLease&) = delete;
  DriveLease& operator=(const DriveLease&) = delete;
  DriveLease(DriveLease&& other) noexcept { *this = std::move(other); }
  DriveLease& operator=(DriveLease&& other) noexcept;
  ~DriveLease() { Release(); }

  /// Returns the drives to the pool now (idempotent).
  void Release();

  bool active() const { return site_ != nullptr; }
  const std::vector<int>& drives() const { return drives_; }
  const std::string& holder() const { return holder_; }

 private:
  friend class Site;
  DriveLease(Site* site, std::vector<int> drives, std::string holder)
      : site_(site), drives_(std::move(drives)), holder_(std::move(holder)) {}

  Site* site_ = nullptr;
  std::vector<int> drives_;
  std::string holder_;
};

/// The shared installation: simulation + devices + site-wide budgets.
class Site {
 public:
  /// Aborts (TERTIO_CHECK) on an invalid config; use Create() to get a
  /// Status instead.
  explicit Site(const SiteConfig& config);

  /// Validating factory.
  static Result<std::unique_ptr<Site>> Create(const SiteConfig& config);

  const SiteConfig& config() const { return config_; }
  sim::Simulation& sim() { return sim_; }
  disk::StripedDiskGroup& disks() { return *disks_; }
  mem::MemoryBudget& memory() { return memory_; }
  tape::TapeLibrary* library() { return library_.get(); }

  int drive_count() const { return static_cast<int>(drives_.size()); }
  tape::TapeDrive* drive(int i) { return drives_[static_cast<size_t>(i)].get(); }

  ByteCount block_bytes() const { return config_.block_bytes; }
  BlockCount memory_blocks() const { return memory_.total_blocks(); }
  BlockCount disk_blocks() const { return disks_->allocator().capacity_blocks(); }

  /// Disk blocks available to query sessions: total capacity minus the
  /// extent-cache carve. Admission control and session carve sizing must use
  /// this, not disk_blocks(), or sessions would be admitted against space
  /// the cache holds.
  BlockCount session_disk_blocks() const {
    return disks_->allocator().capacity_blocks() - config_.cache_blocks;
  }

  /// The cross-query extent cache, or null when cache_blocks == 0.
  disk::ExtentCache* extent_cache() { return extent_cache_.get(); }

  /// Inserts a cartridge into the library (the site must have one); under
  /// SimSan the cartridge's scratch bounds are audited like any volume.
  Result<int> AddCartridge(std::unique_ptr<tape::TapeVolume> volume);

  /// Leases `n` free drives as an RAII guard under `holder` (the session
  /// name; SimSan's lease-exclusivity ledger is keyed on it). Drives listed
  /// in `preferred` are taken first when free — the scheduler uses this to
  /// route a follower onto the drive already holding its leader's cartridge —
  /// then the lowest-indexed free drives fill the remainder, which with an
  /// empty preference list reproduces the legacy lowest-indexed pick exactly.
  /// Fails with ResourceExhausted when fewer than `n` are free.
  Result<DriveLease> LeaseDrives(int n, std::string_view holder,
                                 const std::vector<int>& preferred = {});

  /// Raw (non-RAII) lease of the lowest-indexed `n` free drives. Prefer
  /// LeaseDrives; tertio_lint flags calls to this outside src/exec.
  Result<std::vector<int>> AcquireDrives(int n);
  void ReleaseDrives(const std::vector<int>& indices);
  int free_drives() const;
  bool drive_leased(int i) const {
    return i >= 0 && i < drive_count() && drive_leased_[static_cast<size_t>(i)];
  }

  /// Effective tape rate (bytes/s) for data of the given compressibility.
  BytesPerSecond EffectiveTapeRate(double compressibility) const {
    return config_.tape_model.EffectiveRate(compressibility);
  }

  /// Aggregate disk rate X_D (bytes/s).
  BytesPerSecond AggregateDiskRate() const { return disks_->aggregate_rate_bps(); }

  bool faults_enabled() const { return config_.faults.enabled(); }

  /// Site-wide fault/recovery counters (zero with faults disabled).
  sim::FaultStats TotalFaultStats() const;

  /// Enables SimSan on the site: every device timeline, the site budget,
  /// the site allocator and every library cartridge become audited.
  /// Idempotent; automatic in TERTIO_SIMSAN builds. \returns the auditor.
  sim::Auditor* EnableAudit();
  sim::Auditor* auditor() const { return sim_.auditor(); }

 private:
  friend class DriveLease;

  void BindAuditor(sim::Auditor* auditor);

  /// Marks `n` drives leased (preferred first, then lowest-indexed) and
  /// reports each to the auditor's lease ledger under `holder`.
  Result<std::vector<int>> PickDrives(int n, std::string_view holder,
                                      const std::vector<int>& preferred);
  void ReleaseDrivesTagged(const std::vector<int>& indices, std::string_view holder);

  SiteConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<disk::StripedDiskGroup> disks_;
  /// The cache's carve out of the site allocator (held for the site's
  /// lifetime) and the cache managing it; both null when cache_blocks == 0.
  disk::ExtentList cache_carve_;
  std::unique_ptr<disk::ExtentCache> extent_cache_;
  mem::MemoryBudget memory_;
  std::vector<std::unique_ptr<tape::TapeDrive>> drives_;
  std::vector<bool> drive_leased_;
  std::unique_ptr<tape::TapeLibrary> library_;
  /// One injector per device, owned here; devices hold raw pointers.
  std::vector<std::unique_ptr<sim::FaultInjector>> injectors_;
};

}  // namespace tertio::exec
