#include "exec/query_scheduler.h"

#include <algorithm>
#include <limits>

#include "join/join_method.h"
#include "util/string_util.h"

namespace tertio::exec {

QueryScheduler::QueryScheduler(Site* site, ServicePolicy policy, SchedulerOptions options)
    : site_(site), policy_(policy), options_(options) {
  TERTIO_CHECK(site != nullptr, "scheduler requires a site");
  TERTIO_CHECK(options_.max_in_flight >= 1, "max_in_flight must be at least 1");
}

Result<std::uint64_t> QueryScheduler::Submit(JoinRequest request) {
  ++submitted_;
  auto reject = [&](Status status) -> Result<std::uint64_t> {
    ++rejected_;
    return status;
  };
  if (request.spec.r == nullptr || request.spec.s == nullptr) {
    return reject(Status::InvalidArgument("join request requires both relations"));
  }
  tape::TapeLibrary* library = site_->library();
  if (library == nullptr) {
    return reject(Status::FailedPrecondition(
        "the query service needs a site with a tape library (relations are "
        "addressed by cartridge)"));
  }
  Result<int> r_slot = library->SlotOf(request.spec.r->volume);
  Result<int> s_slot = library->SlotOf(request.spec.s->volume);
  if (!r_slot.ok() || !s_slot.ok()) {
    return reject(Status::FailedPrecondition(
        "a requested relation is not resident on a library cartridge"));
  }
  // Demands no schedule could ever satisfy are rejected now rather than
  // queued forever; transient shortages are what the queue is for.
  if (request.memory_blocks == 0 || request.memory_blocks > site_->memory_blocks()) {
    return reject(Status::ResourceExhausted(
        StrFormat("memory demand of %llu blocks exceeds the site's %llu",
                  static_cast<unsigned long long>(request.memory_blocks.value()),
                  static_cast<unsigned long long>(site_->memory_blocks().value()))));
  }
  if (request.disk_blocks > site_->session_disk_blocks()) {
    return reject(Status::ResourceExhausted(
        StrFormat("disk demand of %llu blocks exceeds the site's %llu available to sessions",
                  static_cast<unsigned long long>(request.disk_blocks.value()),
                  static_cast<unsigned long long>(site_->session_disk_blocks().value()))));
  }
  // Explicit ids must be unique among pending requests: a duplicate would
  // put the same id twice into the cartridge index, and Take()/Unindex()
  // would later pair the wrong request with the wrong index entry.
  if (request.id == 0) {
    if (next_id_ == std::numeric_limits<std::uint64_t>::max() && IsQueued(next_id_)) {
      return reject(Status::ResourceExhausted("request id space exhausted"));
    }
    request.id = next_id_;
  } else if (IsQueued(request.id)) {
    return reject(Status::InvalidArgument(
        StrFormat("request id %llu is already queued",
                  static_cast<unsigned long long>(request.id))));
  }
  // Advance the auto-id cursor past every id seen, saturating instead of
  // wrapping back to ids that may still be queued.
  if (request.id >= next_id_) {
    next_id_ = request.id == std::numeric_limits<std::uint64_t>::max() ? request.id
                                                                       : request.id + 1;
  }
  std::uint64_t id = request.id;
  cartridge_queues_[*s_slot].push_back(id);
  queue_.push_back(std::move(request));
  return id;
}

std::size_t QueryScheduler::pending_on(int slot) const {
  auto it = cartridge_queues_.find(slot);
  return it == cartridge_queues_.end() ? 0 : it->second.size();
}

void QueryScheduler::Unindex(const JoinRequest& request) {
  Result<int> slot = site_->library()->SlotOf(request.spec.s->volume);
  if (!slot.ok()) return;
  auto it = cartridge_queues_.find(*slot);
  if (it == cartridge_queues_.end()) return;
  auto pos = std::find(it->second.begin(), it->second.end(), request.id);
  if (pos != it->second.end()) it->second.erase(pos);
  if (it->second.empty()) cartridge_queues_.erase(it);
}

JoinRequest QueryScheduler::PopNext() {
  auto best = std::min_element(queue_.begin(), queue_.end(),
                               [](const JoinRequest& a, const JoinRequest& b) {
                                 if (a.arrival != b.arrival) return a.arrival < b.arrival;
                                 return a.id < b.id;
                               });
  JoinRequest request = std::move(*best);
  queue_.erase(best);
  Unindex(request);
  return request;
}

bool QueryScheduler::IsQueued(std::uint64_t id) const {
  return std::any_of(queue_.begin(), queue_.end(),
                     [id](const JoinRequest& r) { return r.id == id; });
}

void QueryScheduler::Requeue(JoinRequest request) {
  Result<int> slot = site_->library()->SlotOf(request.spec.s->volume);
  if (slot.ok()) cartridge_queues_[*slot].push_back(request.id);
  queue_.push_back(std::move(request));
}

JoinRequest QueryScheduler::Take(std::uint64_t id) {
  auto pos = std::find_if(queue_.begin(), queue_.end(),
                          [id](const JoinRequest& r) { return r.id == id; });
  TERTIO_CHECK(pos != queue_.end(), "taking a request that is not queued");
  JoinRequest request = std::move(*pos);
  queue_.erase(pos);
  Unindex(request);
  return request;
}

int QueryScheduler::DriveIndexHolding(int slot) const {
  tape::TapeDrive* holder = site_->library()->MountedIn(slot);
  if (holder == nullptr) return -1;
  for (int i = 0; i < site_->drive_count(); ++i) {
    if (site_->drive(i) == holder) return i;
  }
  return -1;
}

std::vector<int> QueryScheduler::PreferredDrivesFor(const JoinRequest& request) const {
  Result<int> r_slot = site_->library()->SlotOf(request.spec.r->volume);
  Result<int> s_slot = site_->library()->SlotOf(request.spec.s->volume);
  int want_r = r_slot.ok() ? DriveIndexHolding(*r_slot) : -1;
  int want_s = s_slot.ok() ? DriveIndexHolding(*s_slot) : -1;
  if (want_r < 0 && want_s < 0) return {};
  return {want_r, want_s};
}

QueryOutcome QueryScheduler::ExecuteOne(JoinRequest request, bool scan_shared) {
  QueryOutcome out;
  out.id = request.id;
  out.arrival = request.arrival;
  out.scan_shared = scan_shared;

  SessionResources res;
  res.name = StrFormat("q%llu", static_cast<unsigned long long>(request.id));
  res.memory_blocks = request.memory_blocks;
  res.disk_blocks = request.disk_blocks;
  // Route the session onto drives already holding its cartridges. On a
  // 2-drive site with the legacy R-in-drive-0 / S-in-drive-1 mount history
  // this reproduces the legacy [0, 1] pick exactly; on wider sites it keeps
  // a query whose cartridge another session left mounted executable.
  res.preferred_drives = PreferredDrivesFor(request);
  Result<std::unique_ptr<QuerySession>> session = QuerySession::Open(site_, res);
  if (!session.ok()) {
    out.status = session.status();
    out.completion = site_->sim().Horizon();
    return out;
  }

  tape::TapeLibrary* library = site_->library();
  Result<int> r_slot = library->SlotOf(request.spec.r->volume);
  Result<int> s_slot = library->SlotOf(request.spec.s->volume);
  // Admission checked residency; a cartridge cannot leave the library.
  TERTIO_CHECK(r_slot.ok() && s_slot.ok(), "admitted relation left the library");
  SimSeconds cursor = std::max(site_->sim().Horizon(), request.arrival);
  Result<sim::Interval> mounted_r = (*session)->MountR(*r_slot, cursor);
  Result<sim::Interval> mounted_s =
      mounted_r.ok() ? (*session)->MountS(*s_slot, cursor) : mounted_r;
  if (!mounted_s.ok()) {
    out.status = mounted_s.status();
    out.completion = site_->sim().Horizon();
    return out;
  }

  // A scan-shared follower rides the leader's multicast window for free;
  // otherwise probe the extent cache, arming the S drive's cache window on
  // a hit so the S passes read the disk copy.
  disk::ExtentCache* cache = site_->extent_cache();
  bool cache_hit = false;
  if (cache != nullptr && !scan_shared) {
    cache_hit = (*session)->EnableCachedSRead(*request.spec.s, site_->sim().Horizon());
  }

  join::JoinContext ctx = (*session)->context(request.arrival);
  std::unique_ptr<join::JoinMethod> executor = join::CreateJoinMethod(request.method);
  TERTIO_CHECK(executor != nullptr, "unknown join method");
  // The join anchors exactly here (join_common.h StatsScope), so the
  // service-level start is known before execution.
  out.start = std::max(site_->sim().Horizon(), request.arrival);
  Result<join::JoinStats> stats = executor->Execute(request.spec, ctx);
  if (!stats.ok()) {
    out.status = stats.status();
    out.completion = site_->sim().Horizon();
    return out;
  }
  out.stats = std::move(*stats);
  out.completion = out.start + out.stats.response_seconds;
  out.scan_shared = out.stats.tape_blocks_shared > 0;
  out.cached = out.stats.tape_blocks_cached > 0;

  if (cache != nullptr && !cache_hit && !out.scan_shared) {
    // The join just paid a physical pass over S; admit the extent so the
    // next query on it reads disk. Admission failure (e.g. a faulted fill
    // write) only costs the copy — the query itself already succeeded.
    const rel::Relation& s = *request.spec.s;
    (void)cache->Admit(s.volume, s.start_block, s.blocks,  // failure only skips the copy
                       site_->EffectiveTapeRate(s.compressibility), site_->sim().Horizon());
  }
  return out;
}

QueryOutcome QueryScheduler::ExecuteConcurrent(JoinRequest request, SimSeconds dispatch,
                                               std::unique_ptr<QuerySession>* session_out) {
  QueryOutcome out;
  out.id = request.id;
  out.arrival = request.arrival;
  // A failure below completes the query at its dispatch time (the global
  // horizon is another in-flight session's future, not this query's).
  out.start = dispatch;
  out.completion = dispatch;

  SessionResources res;
  res.name = StrFormat("q%llu", static_cast<unsigned long long>(request.id));
  res.memory_blocks = request.memory_blocks;
  res.disk_blocks = request.disk_blocks;
  res.preferred_drives = PreferredDrivesFor(request);
  Result<std::unique_ptr<QuerySession>> session = QuerySession::Open(site_, res);
  if (!session.ok()) {
    out.status = session.status();
    return out;
  }

  tape::TapeLibrary* library = site_->library();
  Result<int> r_slot = library->SlotOf(request.spec.r->volume);
  Result<int> s_slot = library->SlotOf(request.spec.s->volume);
  TERTIO_CHECK(r_slot.ok() && s_slot.ok(), "admitted relation left the library");
  Result<sim::Interval> mounted_r = (*session)->MountR(*r_slot, dispatch);
  Result<sim::Interval> mounted_s =
      mounted_r.ok() ? (*session)->MountS(*s_slot, dispatch) : mounted_r;
  if (!mounted_s.ok()) {
    out.status = mounted_s.status();
    return out;
  }
  // The join anchors exactly when this query's mounts are done — not at the
  // global horizon, which includes the other in-flight sessions' work.
  SimSeconds start = std::max(dispatch, std::max(mounted_r->end, mounted_s->end));

  disk::ExtentCache* cache = site_->extent_cache();
  bool cache_hit = false;
  if (cache != nullptr) {
    cache_hit = (*session)->EnableCachedSRead(*request.spec.s, start);
  }

  join::JoinContext ctx = (*session)->context(start);
  ctx.exact_anchor = true;
  std::unique_ptr<join::JoinMethod> executor = join::CreateJoinMethod(request.method);
  TERTIO_CHECK(executor != nullptr, "unknown join method");
  out.start = start;
  Result<join::JoinStats> stats = executor->Execute(request.spec, ctx);
  if (!stats.ok()) {
    out.status = stats.status();
    return out;
  }
  out.stats = std::move(*stats);
  out.completion = out.start + out.stats.response_seconds;
  out.scan_shared = out.stats.tape_blocks_shared > 0;
  out.cached = out.stats.tape_blocks_cached > 0;

  if (cache != nullptr && !cache_hit && !out.scan_shared) {
    const rel::Relation& s = *request.spec.s;
    (void)cache->Admit(s.volume, s.start_block, s.blocks,  // failure only skips the copy
                       site_->EffectiveTapeRate(s.compressibility), out.completion);
  }
  // The session stays open (drives, M_q, D_q held) until the query retires
  // in virtual-completion order.
  *session_out = std::move(*session);
  return out;
}

bool QueryScheduler::ResourcesFit(const JoinRequest& request) {
  if (site_->free_drives() < 2) return false;
  // A cartridge mounted in a drive another session holds pins the query: it
  // can only run once that session retires (Mount refuses to steal it).
  for (const rel::Relation* relation : {request.spec.r, request.spec.s}) {
    Result<int> slot = site_->library()->SlotOf(relation->volume);
    if (!slot.ok()) return false;
    int holder = DriveIndexHolding(*slot);
    if (holder >= 0 && site_->drive_leased(holder)) return false;
  }
  if (site_->memory().reserved_blocks() + request.memory_blocks > site_->memory_blocks()) {
    return false;
  }
  if (site_->disks().allocator().free_blocks() < request.disk_blocks) return false;
  return true;
}

bool QueryScheduler::HasArrivedFollowers(const JoinRequest& leader, SimSeconds when) const {
  Result<int> slot = site_->library()->SlotOf(leader.spec.s->volume);
  if (!slot.ok()) return false;
  auto it = cartridge_queues_.find(*slot);
  if (it == cartridge_queues_.end()) return false;
  for (std::uint64_t id : it->second) {
    if (id == leader.id) continue;
    auto pos = std::find_if(queue_.begin(), queue_.end(),
                            [id](const JoinRequest& r) { return r.id == id; });
    if (pos != queue_.end() && pos->arrival <= when) return true;
  }
  return false;
}

std::uint64_t QueryScheduler::PickElevator() {
  if (queue_.empty()) return 0;
  SimSeconds min_arrival = queue_.front().arrival;
  for (const JoinRequest& r : queue_) min_arrival = std::min(min_arrival, r.arrival);
  // The eligibility reference: nothing dispatches before the earliest
  // arrival, and the sweep only reorders queries that have arrived by then.
  SimSeconds ref = std::max(clock_, min_arrival);

  // Aging bound: a query the sweep has bypassed for longer than the limit
  // goes next, oldest first — the elevator's starvation valve.
  const JoinRequest* aged = nullptr;
  for (const JoinRequest& r : queue_) {
    if (r.arrival > ref || ref - r.arrival <= options_.elevator_aging_seconds) continue;
    if (aged == nullptr || r.arrival < aged->arrival ||
        (r.arrival == aged->arrival && r.id < aged->id)) {
      aged = &r;
    }
  }
  if (aged != nullptr) return aged->id;

  auto slot_of = [&](const JoinRequest& r) {
    Result<int> slot = site_->library()->SlotOf(r.spec.s->volume);
    return slot.ok() ? *slot : 0;
  };
  // SCAN: nearest eligible S slot in the sweep direction; deterministic
  // tie-break by (slot, arrival, id) so outcomes are independent of
  // submission interleaving.
  const JoinRequest* best = nullptr;
  int best_slot = 0;
  auto scan = [&](int dir) {
    for (const JoinRequest& r : queue_) {
      if (r.arrival > ref) continue;
      int slot = slot_of(r);
      if (dir > 0 ? slot < sweep_pos_ : slot > sweep_pos_) continue;
      int dist = slot > sweep_pos_ ? slot - sweep_pos_ : sweep_pos_ - slot;
      int best_dist = best_slot > sweep_pos_ ? best_slot - sweep_pos_ : sweep_pos_ - best_slot;
      if (best == nullptr || dist < best_dist ||
          (dist == best_dist &&
           (r.arrival < best->arrival || (r.arrival == best->arrival && r.id < best->id)))) {
        best = &r;
        best_slot = slot;
      }
    }
  };
  scan(sweep_dir_);
  if (best == nullptr) {
    // End of the sweep: reverse. Every eligible slot lies behind us now.
    sweep_dir_ = -sweep_dir_;
    scan(sweep_dir_);
  }
  TERTIO_CHECK(best != nullptr, "elevator found no eligible request on either side");
  sweep_pos_ = best_slot;
  return best->id;
}

std::uint64_t QueryScheduler::PickCandidate() {
  if (queue_.empty()) return 0;
  if (policy_ == ServicePolicy::kElevator) return PickElevator();
  auto best = std::min_element(queue_.begin(), queue_.end(),
                               [](const JoinRequest& a, const JoinRequest& b) {
                                 if (a.arrival != b.arrival) return a.arrival < b.arrival;
                                 return a.id < b.id;
                               });
  return best->id;
}

void QueryScheduler::RetireEarliest() {
  TERTIO_CHECK(!in_flight_.empty(), "retiring with nothing in flight");
  std::size_t pick = 0;
  for (std::size_t i = 1; i < in_flight_.size(); ++i) {
    const QueryOutcome& a = in_flight_[i].outcome;
    const QueryOutcome& b = in_flight_[pick].outcome;
    if (a.completion < b.completion ||
        (a.completion == b.completion && in_flight_[i].seq < in_flight_[pick].seq)) {
      pick = i;
    }
  }
  InFlight record = std::move(in_flight_[pick]);
  in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(pick));
  // Close the session first (legacy order: resources return before the
  // completion callback observes the outcome).
  record.session.reset();
  clock_ = std::max(clock_, record.outcome.completion);
  outcomes_.push_back(std::move(record.outcome));
  if (on_complete_) on_complete_(outcomes_.back());
}

void QueryScheduler::RunSerialGroup(JoinRequest leader) {
  SimSeconds leader_start = std::max(site_->sim().Horizon(), leader.arrival);

  // Under kSharedScan, queued joins on the leader's S cartridge that have
  // already arrived ride its pass instead of paying their own.
  std::vector<JoinRequest> followers;
  if (policy_ == ServicePolicy::kSharedScan) {
    Result<int> slot = site_->library()->SlotOf(leader.spec.s->volume);
    if (slot.ok()) {
      std::vector<std::uint64_t> ids;
      if (auto it = cartridge_queues_.find(*slot); it != cartridge_queues_.end()) {
        ids.assign(it->second.begin(), it->second.end());
      }
      for (std::uint64_t id : ids) {
        auto pos = std::find_if(queue_.begin(), queue_.end(),
                                [id](const JoinRequest& r) { return r.id == id; });
        if (pos != queue_.end() && pos->arrival <= leader_start) {
          followers.push_back(Take(id));
        }
      }
      // The cartridge index holds ids in submission order, which a
      // closed-loop client's Submit() interleaving can permute; execute
      // followers in (arrival, id) order so outcomes never depend on it.
      std::sort(followers.begin(), followers.end(),
                [](const JoinRequest& a, const JoinRequest& b) {
                  if (a.arrival != b.arrival) return a.arrival < b.arrival;
                  return a.id < b.id;
                });
    }
  }

  const rel::Relation* leader_s = leader.spec.s;
  QueryOutcome lead_out = ExecuteOne(std::move(leader), /*scan_shared=*/false);
  bool lead_ok = lead_out.status.ok();
  clock_ = std::max(clock_, lead_out.completion);
  outcomes_.push_back(std::move(lead_out));
  if (on_complete_) on_complete_(outcomes_.back());
  peak_in_flight_ = std::max<std::uint64_t>(peak_in_flight_, 1);

  if (!followers.empty()) {
    if (!lead_ok) {
      // The leader failed, so its pass never swept S and there is nothing
      // to ride. Executing the followers here anyway would jump them over
      // every earlier-arrived query on other cartridges (priority
      // inversion); put them back instead — PopNext re-serves them in
      // plain arrival order, and one of them becomes a leader in its own
      // right. (No livelock: the failed leader's outcome is recorded, not
      // requeued.)
      for (JoinRequest& follower : followers) Requeue(std::move(follower));
      return;
    }
    // The leader's pass swept its S relation's blocks; declare them a
    // shared window on the drive still holding the cartridge so the
    // followers' S reads are multicast instead of re-read. (The window is
    // drive state: it survives the followers' session churn as long as
    // the cartridge stays mounted.)
    tape::TapeDrive* holder = nullptr;
    Result<int> slot = site_->library()->SlotOf(leader_s->volume);
    if (slot.ok()) holder = site_->library()->MountedIn(*slot);
    if (holder != nullptr) {
      holder->SetSharedPassWindow(leader_s->start_block, leader_s->blocks);
    }
    for (JoinRequest& follower : followers) {
      QueryOutcome out = ExecuteOne(std::move(follower), holder != nullptr);
      clock_ = std::max(clock_, out.completion);
      outcomes_.push_back(std::move(out));
      if (on_complete_) on_complete_(outcomes_.back());
    }
    if (holder != nullptr) holder->ClearSharedPassWindow();
  }
}

Status QueryScheduler::Run() {
  std::uint64_t robot_ops_before = 0;
  if (site_->library() != nullptr) {
    robot_ops_before = site_->library()->robot()->stats().op_count;
  }
  // Event-driven dispatch: each iteration either dispatches the policy's
  // next candidate (when capacity and site resources allow) or retires the
  // earliest in-flight completion. Retirement precedes any dispatch at or
  // after that completion, so closed-loop submissions from on_complete are
  // visible to every later dispatch decision, and outcomes_ is ordered by
  // virtual completion time.
  while (!queue_.empty() || !in_flight_.empty()) {
    std::uint64_t candidate_id = PickCandidate();
    if (candidate_id == 0) {
      // Nothing queued: retire in-flight work (closed-loop clients may
      // submit more from the completions) until the service is idle.
      if (in_flight_.empty()) break;
      RetireEarliest();
      continue;
    }
    if (options_.max_in_flight <= 1) {
      // Serial capacity: the legacy path, bit-identical to the serial
      // scheduler. Admission shortfalls execute anyway and fail into their
      // outcomes, as the legacy scheduler did.
      RunSerialGroup(Take(candidate_id));
      continue;
    }
    auto pos = std::find_if(queue_.begin(), queue_.end(),
                            [candidate_id](const JoinRequest& r) {
                              return r.id == candidate_id;
                            });
    TERTIO_CHECK(pos != queue_.end(), "candidate left the queue");
    const JoinRequest* candidate = &*pos;
    SimSeconds dispatch = std::max(clock_, candidate->arrival);
    // Retire everything completing by the dispatch time first — those
    // sessions' resources are free again at `dispatch`, and their
    // closed-loop submissions may change the candidate.
    if (!in_flight_.empty()) {
      SimSeconds earliest = in_flight_.front().outcome.completion;
      for (const InFlight& record : in_flight_) {
        earliest = std::min(earliest, record.outcome.completion);
      }
      if (earliest <= dispatch) {
        RetireEarliest();
        continue;
      }
    }
    bool fits = static_cast<int>(in_flight_.size()) < options_.max_in_flight &&
                ResourcesFit(*candidate);
    if (!fits) {
      if (in_flight_.empty()) {
        // The demand exceeds even an idle site: execute serially anyway and
        // fail into the outcome, exactly the legacy behavior.
        RunSerialGroup(Take(candidate_id));
      } else {
        RetireEarliest();
      }
      continue;
    }
    if (policy_ == ServicePolicy::kSharedScan && HasArrivedFollowers(*candidate, dispatch)) {
      // A shared-scan group wants to form around this candidate. Groups
      // execute as one serial unit (the multicast window spans the whole
      // pass); drain the in-flight sessions so the group starts clean.
      if (in_flight_.empty()) {
        RunSerialGroup(Take(candidate_id));
      } else {
        RetireEarliest();
      }
      continue;
    }
    InFlight record;
    record.seq = next_seq_++;
    JoinRequest request = Take(candidate_id);
    clock_ = dispatch;
    record.outcome = ExecuteConcurrent(std::move(request), dispatch, &record.session);
    in_flight_.push_back(std::move(record));
    peak_in_flight_ =
        std::max<std::uint64_t>(peak_in_flight_, in_flight_.size());
  }
  makespan_ = site_->sim().Horizon();
  if (site_->library() != nullptr) {
    robot_exchanges_ += site_->library()->robot()->stats().op_count - robot_ops_before;
  }
  return Status::OK();
}

ServiceStats QueryScheduler::service_stats() const {
  ServiceStats stats;
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.makespan = makespan_;
  stats.robot_exchanges = robot_exchanges_;
  stats.peak_in_flight = peak_in_flight_;
  for (const QueryOutcome& out : outcomes_) {
    if (out.status.ok()) {
      ++stats.completed;
    } else {
      ++stats.failed;
    }
    if (out.scan_shared) ++stats.scan_shared_queries;
    if (out.cached) ++stats.cached_queries;
    stats.tape_blocks_read += out.stats.tape_blocks_read;
    stats.tape_blocks_shared += out.stats.tape_blocks_shared;
    stats.tape_blocks_cached += out.stats.tape_blocks_cached;
  }
  if (disk::ExtentCache* cache = site_->extent_cache(); cache != nullptr) {
    stats.cache_hits = cache->stats().hits;
    stats.cache_misses = cache->stats().misses;
    stats.cache_fills = cache->stats().fills;
    stats.cache_evictions = cache->stats().evictions;
  }
  return stats;
}

}  // namespace tertio::exec
