#include "exec/query_scheduler.h"

#include <algorithm>
#include <limits>

#include "join/join_method.h"
#include "util/string_util.h"

namespace tertio::exec {

QueryScheduler::QueryScheduler(Site* site, ServicePolicy policy)
    : site_(site), policy_(policy) {
  TERTIO_CHECK(site != nullptr, "scheduler requires a site");
}

Result<std::uint64_t> QueryScheduler::Submit(JoinRequest request) {
  ++submitted_;
  auto reject = [&](Status status) -> Result<std::uint64_t> {
    ++rejected_;
    return status;
  };
  if (request.spec.r == nullptr || request.spec.s == nullptr) {
    return reject(Status::InvalidArgument("join request requires both relations"));
  }
  tape::TapeLibrary* library = site_->library();
  if (library == nullptr) {
    return reject(Status::FailedPrecondition(
        "the query service needs a site with a tape library (relations are "
        "addressed by cartridge)"));
  }
  Result<int> r_slot = library->SlotOf(request.spec.r->volume);
  Result<int> s_slot = library->SlotOf(request.spec.s->volume);
  if (!r_slot.ok() || !s_slot.ok()) {
    return reject(Status::FailedPrecondition(
        "a requested relation is not resident on a library cartridge"));
  }
  // Demands no schedule could ever satisfy are rejected now rather than
  // queued forever; transient shortages are what the queue is for.
  if (request.memory_blocks == 0 || request.memory_blocks > site_->memory_blocks()) {
    return reject(Status::ResourceExhausted(
        StrFormat("memory demand of %llu blocks exceeds the site's %llu",
                  static_cast<unsigned long long>(request.memory_blocks.value()),
                  static_cast<unsigned long long>(site_->memory_blocks().value()))));
  }
  if (request.disk_blocks > site_->session_disk_blocks()) {
    return reject(Status::ResourceExhausted(
        StrFormat("disk demand of %llu blocks exceeds the site's %llu available to sessions",
                  static_cast<unsigned long long>(request.disk_blocks.value()),
                  static_cast<unsigned long long>(site_->session_disk_blocks().value()))));
  }
  // Explicit ids must be unique among pending requests: a duplicate would
  // put the same id twice into the cartridge index, and Take()/Unindex()
  // would later pair the wrong request with the wrong index entry.
  if (request.id == 0) {
    if (next_id_ == std::numeric_limits<std::uint64_t>::max() && IsQueued(next_id_)) {
      return reject(Status::ResourceExhausted("request id space exhausted"));
    }
    request.id = next_id_;
  } else if (IsQueued(request.id)) {
    return reject(Status::InvalidArgument(
        StrFormat("request id %llu is already queued",
                  static_cast<unsigned long long>(request.id))));
  }
  // Advance the auto-id cursor past every id seen, saturating instead of
  // wrapping back to ids that may still be queued.
  if (request.id >= next_id_) {
    next_id_ = request.id == std::numeric_limits<std::uint64_t>::max() ? request.id
                                                                       : request.id + 1;
  }
  std::uint64_t id = request.id;
  cartridge_queues_[*s_slot].push_back(id);
  queue_.push_back(std::move(request));
  return id;
}

std::size_t QueryScheduler::pending_on(int slot) const {
  auto it = cartridge_queues_.find(slot);
  return it == cartridge_queues_.end() ? 0 : it->second.size();
}

void QueryScheduler::Unindex(const JoinRequest& request) {
  Result<int> slot = site_->library()->SlotOf(request.spec.s->volume);
  if (!slot.ok()) return;
  auto it = cartridge_queues_.find(*slot);
  if (it == cartridge_queues_.end()) return;
  auto pos = std::find(it->second.begin(), it->second.end(), request.id);
  if (pos != it->second.end()) it->second.erase(pos);
  if (it->second.empty()) cartridge_queues_.erase(it);
}

JoinRequest QueryScheduler::PopNext() {
  auto best = std::min_element(queue_.begin(), queue_.end(),
                               [](const JoinRequest& a, const JoinRequest& b) {
                                 if (a.arrival != b.arrival) return a.arrival < b.arrival;
                                 return a.id < b.id;
                               });
  JoinRequest request = std::move(*best);
  queue_.erase(best);
  Unindex(request);
  return request;
}

bool QueryScheduler::IsQueued(std::uint64_t id) const {
  return std::any_of(queue_.begin(), queue_.end(),
                     [id](const JoinRequest& r) { return r.id == id; });
}

void QueryScheduler::Requeue(JoinRequest request) {
  Result<int> slot = site_->library()->SlotOf(request.spec.s->volume);
  if (slot.ok()) cartridge_queues_[*slot].push_back(request.id);
  queue_.push_back(std::move(request));
}

JoinRequest QueryScheduler::Take(std::uint64_t id) {
  auto pos = std::find_if(queue_.begin(), queue_.end(),
                          [id](const JoinRequest& r) { return r.id == id; });
  TERTIO_CHECK(pos != queue_.end(), "taking a request that is not queued");
  JoinRequest request = std::move(*pos);
  queue_.erase(pos);
  Unindex(request);
  return request;
}

QueryOutcome QueryScheduler::ExecuteOne(JoinRequest request, bool scan_shared) {
  QueryOutcome out;
  out.id = request.id;
  out.arrival = request.arrival;
  out.scan_shared = scan_shared;

  SessionResources res;
  res.name = StrFormat("q%llu", static_cast<unsigned long long>(request.id));
  res.memory_blocks = request.memory_blocks;
  res.disk_blocks = request.disk_blocks;
  Result<std::unique_ptr<QuerySession>> session = QuerySession::Open(site_, res);
  if (!session.ok()) {
    out.status = session.status();
    out.completion = site_->sim().Horizon();
    return out;
  }

  tape::TapeLibrary* library = site_->library();
  Result<int> r_slot = library->SlotOf(request.spec.r->volume);
  Result<int> s_slot = library->SlotOf(request.spec.s->volume);
  // Admission checked residency; a cartridge cannot leave the library.
  TERTIO_CHECK(r_slot.ok() && s_slot.ok(), "admitted relation left the library");
  SimSeconds cursor = std::max(site_->sim().Horizon(), request.arrival);
  Result<sim::Interval> mounted_r = (*session)->MountR(*r_slot, cursor);
  Result<sim::Interval> mounted_s =
      mounted_r.ok() ? (*session)->MountS(*s_slot, cursor) : mounted_r;
  if (!mounted_s.ok()) {
    out.status = mounted_s.status();
    out.completion = site_->sim().Horizon();
    return out;
  }

  // A scan-shared follower rides the leader's multicast window for free;
  // otherwise probe the extent cache, arming the S drive's cache window on
  // a hit so the S passes read the disk copy.
  disk::ExtentCache* cache = site_->extent_cache();
  bool cache_hit = false;
  if (cache != nullptr && !scan_shared) {
    cache_hit = (*session)->EnableCachedSRead(*request.spec.s);
  }

  join::JoinContext ctx = (*session)->context(request.arrival);
  std::unique_ptr<join::JoinMethod> executor = join::CreateJoinMethod(request.method);
  TERTIO_CHECK(executor != nullptr, "unknown join method");
  // The join anchors exactly here (join_common.h StatsScope), so the
  // service-level start is known before execution.
  out.start = std::max(site_->sim().Horizon(), request.arrival);
  Result<join::JoinStats> stats = executor->Execute(request.spec, ctx);
  if (!stats.ok()) {
    out.status = stats.status();
    out.completion = site_->sim().Horizon();
    return out;
  }
  out.stats = std::move(*stats);
  out.completion = out.start + out.stats.response_seconds;
  out.scan_shared = out.stats.tape_blocks_shared > 0;
  out.cached = out.stats.tape_blocks_cached > 0;

  if (cache != nullptr && !cache_hit && !out.scan_shared) {
    // The join just paid a physical pass over S; admit the extent so the
    // next query on it reads disk. Admission failure (e.g. a faulted fill
    // write) only costs the copy — the query itself already succeeded.
    const rel::Relation& s = *request.spec.s;
    (void)cache->Admit(s.volume, s.start_block, s.blocks,  // failure only skips the copy
                       site_->EffectiveTapeRate(s.compressibility), site_->sim().Horizon());
  }
  return out;
}

Status QueryScheduler::Run() {
  while (!queue_.empty()) {
    JoinRequest leader = PopNext();
    SimSeconds leader_start = std::max(site_->sim().Horizon(), leader.arrival);

    // Under kSharedScan, queued joins on the leader's S cartridge that have
    // already arrived ride its pass instead of paying their own.
    std::vector<JoinRequest> followers;
    if (policy_ == ServicePolicy::kSharedScan) {
      Result<int> slot = site_->library()->SlotOf(leader.spec.s->volume);
      if (slot.ok()) {
        std::vector<std::uint64_t> ids;
        if (auto it = cartridge_queues_.find(*slot); it != cartridge_queues_.end()) {
          ids.assign(it->second.begin(), it->second.end());
        }
        for (std::uint64_t id : ids) {
          auto pos = std::find_if(queue_.begin(), queue_.end(),
                                  [id](const JoinRequest& r) { return r.id == id; });
          if (pos != queue_.end() && pos->arrival <= leader_start) {
            followers.push_back(Take(id));
          }
        }
      }
    }

    const rel::Relation* leader_s = leader.spec.s;
    QueryOutcome lead_out = ExecuteOne(std::move(leader), /*scan_shared=*/false);
    bool lead_ok = lead_out.status.ok();
    outcomes_.push_back(std::move(lead_out));
    if (on_complete_) on_complete_(outcomes_.back());

    if (!followers.empty()) {
      if (!lead_ok) {
        // The leader failed, so its pass never swept S and there is nothing
        // to ride. Executing the followers here anyway would jump them over
        // every earlier-arrived query on other cartridges (priority
        // inversion); put them back instead — PopNext re-serves them in
        // plain arrival order, and one of them becomes a leader in its own
        // right. (No livelock: the failed leader's outcome is recorded, not
        // requeued.)
        for (JoinRequest& follower : followers) Requeue(std::move(follower));
        continue;
      }
      // The leader's pass swept its S relation's blocks; declare them a
      // shared window on the drive still holding the cartridge so the
      // followers' S reads are multicast instead of re-read. (The window is
      // drive state: it survives the followers' session churn as long as
      // the cartridge stays mounted.)
      tape::TapeDrive* holder = nullptr;
      Result<int> slot = site_->library()->SlotOf(leader_s->volume);
      if (slot.ok()) holder = site_->library()->MountedIn(*slot);
      if (holder != nullptr) {
        holder->SetSharedPassWindow(leader_s->start_block, leader_s->blocks);
      }
      for (JoinRequest& follower : followers) {
        QueryOutcome out = ExecuteOne(std::move(follower), holder != nullptr);
        outcomes_.push_back(std::move(out));
        if (on_complete_) on_complete_(outcomes_.back());
      }
      if (holder != nullptr) holder->ClearSharedPassWindow();
    }
  }
  makespan_ = site_->sim().Horizon();
  return Status::OK();
}

ServiceStats QueryScheduler::service_stats() const {
  ServiceStats stats;
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.makespan = makespan_;
  for (const QueryOutcome& out : outcomes_) {
    if (out.status.ok()) {
      ++stats.completed;
    } else {
      ++stats.failed;
    }
    if (out.scan_shared) ++stats.scan_shared_queries;
    if (out.cached) ++stats.cached_queries;
    stats.tape_blocks_read += out.stats.tape_blocks_read;
    stats.tape_blocks_shared += out.stats.tape_blocks_shared;
    stats.tape_blocks_cached += out.stats.tape_blocks_cached;
  }
  if (disk::ExtentCache* cache = site_->extent_cache(); cache != nullptr) {
    stats.cache_hits = cache->stats().hits;
    stats.cache_misses = cache->stats().misses;
    stats.cache_fills = cache->stats().fills;
    stats.cache_evictions = cache->stats().evictions;
  }
  return stats;
}

}  // namespace tertio::exec
