/// \file tertio_cli.cc
/// Command-line front end to the tertio library.
///
///   tertio_cli advise   --r-mb 2500 --s-mb 10000 --disk-mb 500 --memory-mb 16
///   tertio_cli estimate --method CTT-GH --r-mb 2500 --s-mb 10000 --disk-mb 500 --memory-mb 16
///   tertio_cli run      --method CTT-GH --r-mb 2500 --s-mb 10000 --disk-mb 500 --memory-mb 16
///   tertio_cli sweep    --r-mb 18 --s-mb 1000 --disk-mb 50   (Experiment-3 style M sweep)
///   tertio_cli serve    --r-mb 18 --s-mb 1000 --disk-mb 500 --memory-mb 16
///                       --queries 8 [--clients 3] [--interarrival 600] [--cartridges 2]
///
/// Common flags: --compressibility F (default 0.25), --gantt (run only:
/// print the device timeline; small joins only — traces are large),
/// --spans (run only: print the per-phase span table and phase timeline).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "exec/experiment.h"
#include "exec/machine.h"
#include "exec/query_scheduler.h"
#include "exec/report.h"
#include "exec/service_workload.h"
#include "join/advisor.h"
#include "join/join_method.h"
#include "sim/trace_report.h"
#include "util/string_util.h"

using namespace tertio;

namespace {

struct Flags {
  std::map<std::string, std::string> values;
  bool gantt = false;
  bool spans = false;

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  std::string GetString(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return values.count(key) > 0; }
};

int Usage() {
  std::fprintf(stderr,
               "usage: tertio_cli <advise|estimate|run|sweep|serve> --r-mb N --s-mb N "
               "--disk-mb N --memory-mb N [--method NAME] [--compressibility F] "
               "[--faults SPEC] [--gantt] [--spans]\n"
               "serve:   multi-query service; also takes "
               "[--policy fifo|shared|elevator] [--max-in-flight N] [--aging S] "
               "[--drives N] [--queries N] [--clients N] [--interarrival S] "
               "[--cartridges N] [--r-relations N] [--r-cartridges N] "
               "[--cache-blocks N]\n"
               "methods: DT-NB CDT-NB/MB CDT-NB/DB DT-GH CDT-GH CTT-GH TT-GH\n"
               "faults:  comma list, e.g. "
               "seed=7,tape-transient=1e-4,tape-bad=1e-6,disk-transient=1e-5,"
               "exchange=0.01,retries=4,backoff=0.1,remap=2\n");
  return 2;
}

Result<Flags> Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--gantt") {
      flags.gantt = true;
      continue;
    }
    if (arg == "--spans") {
      flags.spans = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) return Status::InvalidArgument("unexpected argument " + arg);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      continue;
    }
    if (i + 1 >= argc) return Status::InvalidArgument("flag " + arg + " needs a value");
    flags.values[arg.substr(2)] = argv[++i];
  }
  for (const char* required : {"r-mb", "s-mb", "disk-mb", "memory-mb"}) {
    if (!flags.Has(required)) {
      return Status::InvalidArgument(std::string("missing --") + required);
    }
  }
  return flags;
}

cost::CostParams ParamsFrom(const Flags& flags) {
  cost::CostParams params;
  params.r_blocks = BytesToBlocks(
      static_cast<ByteCount>(flags.GetDouble("r-mb", 0) * static_cast<double>(kMB.value())), kDefaultBlockBytes);
  params.s_blocks = BytesToBlocks(
      static_cast<ByteCount>(flags.GetDouble("s-mb", 0) * static_cast<double>(kMB.value())), kDefaultBlockBytes);
  params.disk_blocks = BytesToBlocks(
      static_cast<ByteCount>(flags.GetDouble("disk-mb", 0) * static_cast<double>(kMB.value())), kDefaultBlockBytes);
  params.memory_blocks = BytesToBlocks(
      static_cast<ByteCount>(flags.GetDouble("memory-mb", 0) * static_cast<double>(kMB.value())), kDefaultBlockBytes);
  double c = flags.GetDouble("compressibility", 0.25);
  params.tape_rate_bps = tape::TapeDriveModel::DLT4000().EffectiveRate(c);
  params.disk_rate_bps = 2 * disk::DiskModel::QuantumFireball1080().transfer_rate_bps;
  params.disk_positioning_seconds =
      disk::DiskModel::QuantumFireball1080().positioning_seconds;
  return params;
}

std::string Seconds(SimSeconds s) {
  return StrFormat("%s (%.0f s)", FormatDuration(s).c_str(), s);
}

int CmdAdvise(const Flags& flags) {
  auto report = join::AdviseJoinMethod(ParamsFrom(flags));
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  exec::TableReport table({"rank", "method", "est. response", "Step I", "iterations",
                           "disk traffic (MB)"});
  int rank = 1;
  for (const auto& choice : report->ranked) {
    table.AddRow({StrFormat("%d", rank++), std::string(JoinMethodName(choice.method)),
                  FormatDuration(choice.estimate.total_seconds),
                  FormatDuration(choice.estimate.step1_seconds),
                  StrFormat("%llu", (unsigned long long)choice.estimate.iterations),
                  StrFormat("%.0f",
                            static_cast<double>(BlocksToBytes(
                                choice.estimate.disk_traffic_blocks, kDefaultBlockBytes).value()) /
                                static_cast<double>(kMB.value()))});
  }
  table.Print();
  for (const auto& rejection : report->rejected) {
    std::printf("%-10s infeasible: %s\n", std::string(JoinMethodName(rejection.method)).c_str(),
                rejection.reason.message().c_str());
  }
  return 0;
}

int CmdEstimate(const Flags& flags) {
  JoinMethodId method;
  if (!ParseJoinMethodName(flags.GetString("method", ""), &method)) {
    std::fprintf(stderr, "unknown or missing --method\n");
    return 2;
  }
  auto estimate = cost::Estimate(method, ParamsFrom(flags));
  if (!estimate.ok()) {
    std::fprintf(stderr, "%s\n", estimate.status().ToString().c_str());
    return 1;
  }
  std::printf("method           %s\n", std::string(JoinMethodName(method)).c_str());
  std::printf("Step I           %s\n", Seconds(estimate->step1_seconds).c_str());
  std::printf("Step II          %s\n", Seconds(estimate->step2_seconds).c_str());
  std::printf("total            %s\n", Seconds(estimate->total_seconds).c_str());
  std::printf("optimum (read S) %s\n",
              Seconds(cost::OptimumJoinSeconds(ParamsFrom(flags))).c_str());
  std::printf("overhead         %.0f%%\n",
              100.0 * cost::RelativeJoinOverhead(estimate->total_seconds, ParamsFrom(flags)));
  std::printf("iterations       %llu, R scans %llu\n",
              (unsigned long long)estimate->iterations, (unsigned long long)estimate->r_scans);
  std::printf("disk traffic     %s, tape traffic %s\n",
              FormatBytes(BlocksToBytes(estimate->disk_traffic_blocks, kDefaultBlockBytes))
                  .c_str(),
              FormatBytes(BlocksToBytes(estimate->tape_traffic_blocks, kDefaultBlockBytes))
                  .c_str());
  std::printf("needs            M >= %s, D >= %s, T_R %s, T_S %s\n",
              FormatBytes(BlocksToBytes(estimate->memory_required_blocks, kDefaultBlockBytes))
                  .c_str(),
              FormatBytes(BlocksToBytes(estimate->disk_space_blocks, kDefaultBlockBytes))
                  .c_str(),
              FormatBytes(BlocksToBytes(estimate->tape_scratch_r_blocks, kDefaultBlockBytes))
                  .c_str(),
              FormatBytes(BlocksToBytes(estimate->tape_scratch_s_blocks, kDefaultBlockBytes))
                  .c_str());
  return 0;
}

int CmdRun(const Flags& flags) {
  JoinMethodId method;
  if (!ParseJoinMethodName(flags.GetString("method", ""), &method)) {
    std::fprintf(stderr, "unknown or missing --method\n");
    return 2;
  }
  exec::MachineConfig config = exec::MachineConfig::PaperTestbed(
      static_cast<ByteCount>(flags.GetDouble("disk-mb", 0) * static_cast<double>(kMB.value())),
      static_cast<ByteCount>(flags.GetDouble("memory-mb", 0) * static_cast<double>(kMB.value())));
  if (flags.Has("faults")) {
    auto plan = sim::FaultPlan::Parse(flags.GetString("faults", ""));
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 2;
    }
    config.faults = *plan;
  }
  exec::Machine machine(config);
  if (flags.gantt) {
    for (const auto& resource : machine.sim().resources()) resource->EnableTrace();
  }
  exec::WorkloadConfig workload;
  workload.r_bytes = static_cast<ByteCount>(flags.GetDouble("r-mb", 0) * static_cast<double>(kMB.value()));
  workload.s_bytes = static_cast<ByteCount>(flags.GetDouble("s-mb", 0) * static_cast<double>(kMB.value()));
  workload.compressibility = flags.GetDouble("compressibility", 0.25);
  workload.phantom = true;
  auto prepared = exec::PrepareWorkload(&machine, workload);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  join::JoinSpec spec;
  spec.r = &prepared->r;
  spec.s = &prepared->s;
  auto executor = join::CreateJoinMethod(method);
  join::JoinContext ctx = machine.context();
  ctx.retain_spans = flags.spans;
  auto stats = executor->Execute(spec, ctx);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("method       %s (simulated at paper scale)\n", stats->method.c_str());
  std::printf("Step I       %s\n", Seconds(stats->step1_seconds).c_str());
  std::printf("Step II      %s\n", Seconds(stats->step2_seconds).c_str());
  std::printf("response     %s\n", Seconds(stats->response_seconds).c_str());
  std::printf("iterations   %llu, R scans %llu\n", (unsigned long long)stats->iterations,
              (unsigned long long)stats->r_scans);
  std::printf("tape         %s read, %s written\n",
              FormatBytes(BlocksToBytes(stats->tape_blocks_read, config.block_bytes)).c_str(),
              FormatBytes(BlocksToBytes(stats->tape_blocks_written, config.block_bytes))
                  .c_str());
  std::printf("disk         %s moved in %llu requests\n",
              FormatBytes(BlocksToBytes(stats->disk_traffic_blocks(), config.block_bytes))
                  .c_str(),
              (unsigned long long)stats->disk_requests);
  if (machine.faults_enabled()) {
    std::printf("faults       %llu injected, %llu retries, %llu chunk retries, "
                "%s recovering\n",
                (unsigned long long)stats->faults_injected,
                (unsigned long long)stats->fault_retries,
                (unsigned long long)stats->chunk_retries,
                FormatDuration(stats->recovery_seconds).c_str());
    std::printf("\n");
    exec::FaultSummaryTable(machine.TotalFaultStats()).Print();
  }
  if (flags.spans) {
    std::printf("\n");
    exec::SpanSummaryTable(stats->spans).Print();
    std::printf("\n%s", sim::RenderSpanGantt(stats->spans).c_str());
  }
  if (flags.gantt) {
    std::printf("\n%s", sim::RenderGantt(machine.sim()).c_str());
  }
  return 0;
}

int CmdSweep(const Flags& flags) {
  auto r_bytes = static_cast<ByteCount>(flags.GetDouble("r-mb", 0) * static_cast<double>(kMB.value()));
  auto s_bytes = static_cast<ByteCount>(flags.GetDouble("s-mb", 0) * static_cast<double>(kMB.value()));
  auto d_bytes = static_cast<ByteCount>(flags.GetDouble("disk-mb", 0) * static_cast<double>(kMB.value()));
  double c = flags.GetDouble("compressibility", 0.25);
  exec::SeriesReport series("M/|R|", {"DT-NB", "CDT-NB/MB", "CDT-NB/DB", "DT-GH", "CDT-GH"});
  for (double f : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    std::vector<double> row;
    for (JoinMethodId method : {JoinMethodId::kDtNb, JoinMethodId::kCdtNbMb,
                                JoinMethodId::kCdtNbDb, JoinMethodId::kDtGh,
                                JoinMethodId::kCdtGh}) {
      exec::MachineConfig config = exec::MachineConfig::PaperTestbed(
          d_bytes, static_cast<ByteCount>(f * static_cast<double>(r_bytes.value())));
      exec::WorkloadConfig workload;
      workload.r_bytes = r_bytes;
      workload.s_bytes = s_bytes;
      workload.compressibility = c;
      workload.phantom = true;
      auto stats = exec::RunJoinExperiment(config, workload, method);
      row.push_back(stats.ok() ? stats->response_seconds.value()
                               : std::numeric_limits<double>::quiet_NaN());
    }
    series.AddPoint(f, row);
  }
  series.Print(0);
  return 0;
}

// Drives a multi-query stream through exec::QueryScheduler under one policy.
// Open loop (--interarrival) unless --clients > 0 makes it closed loop.
struct ServeResult {
  exec::ServiceStats stats;
  std::vector<double> responses;
};

Result<ServeResult> RunService(const Flags& flags, exec::ServicePolicy policy) {
  int max_in_flight = std::max(1, static_cast<int>(flags.GetDouble("max-in-flight", 1)));
  exec::SiteConfig site_config;
  site_config.disk_space_bytes = static_cast<ByteCount>(flags.GetDouble("disk-mb", 0) * static_cast<double>(kMB.value()));
  site_config.memory_bytes = static_cast<ByteCount>(flags.GetDouble("memory-mb", 0) * static_cast<double>(kMB.value()));
  site_config.with_library = true;
  // Concurrency needs drives: default two per in-flight session.
  site_config.drive_count =
      static_cast<int>(flags.GetDouble("drives", 2.0 * max_in_flight));
  // HSM tier: carve this many blocks of the disk into the cross-query
  // extent cache (0 = disabled).
  site_config.cache_blocks = static_cast<BlockCount>(flags.GetDouble("cache-blocks", 0));
  if (flags.Has("faults")) {
    TERTIO_ASSIGN_OR_RETURN(site_config.faults,
                            sim::FaultPlan::Parse(flags.GetString("faults", "")));
  }
  TERTIO_RETURN_IF_ERROR(site_config.Validate());
  exec::Site site(site_config);

  exec::ServiceWorkloadConfig load;
  load.s_bytes = static_cast<ByteCount>(flags.GetDouble("s-mb", 0) * static_cast<double>(kMB.value()));
  load.r_bytes = static_cast<ByteCount>(flags.GetDouble("r-mb", 0) * static_cast<double>(kMB.value()));
  load.s_cartridges = static_cast<int>(flags.GetDouble("cartridges", 2));
  load.r_relations = static_cast<int>(flags.GetDouble("r-relations", 4));
  load.r_cartridges = static_cast<int>(flags.GetDouble("r-cartridges", 1));
  load.compressibility = flags.GetDouble("compressibility", 0.25);
  TERTIO_ASSIGN_OR_RETURN(exec::ServiceWorkload workload,
                          exec::PrepareServiceWorkload(&site, load));

  JoinMethodId method = JoinMethodId::kCdtGh;
  if (flags.Has("method") && !ParseJoinMethodName(flags.GetString("method", ""), &method)) {
    return Status::InvalidArgument("unknown --method");
  }
  auto make_request = [&](int q, SimSeconds arrival) {
    exec::JoinRequest request;
    request.arrival = arrival;
    request.spec.r = &workload.r[static_cast<size_t>(q) % workload.r.size()];
    request.spec.s = &workload.s[static_cast<size_t>(q) % workload.s.size()];
    request.method = method;
    // Each in-flight session gets an equal share of memory and disk.
    request.memory_blocks = site.memory_blocks() / max_in_flight;
    request.disk_blocks = site.session_disk_blocks() / max_in_flight;
    return request;
  };

  int queries = static_cast<int>(flags.GetDouble("queries", 8));
  int clients = static_cast<int>(flags.GetDouble("clients", 0));
  double interarrival = flags.GetDouble("interarrival", 600.0);
  exec::SchedulerOptions options;
  options.max_in_flight = max_in_flight;
  options.elevator_aging_seconds =
      flags.GetDouble("aging", options.elevator_aging_seconds.value());
  exec::QueryScheduler scheduler(&site, policy, options);
  if (clients > 0) {
    // Closed loop: each completion triggers that client's next query.
    int issued = clients;
    scheduler.set_on_complete([&](const exec::QueryOutcome& out) {
      if (issued >= queries) return;
      auto id = scheduler.Submit(make_request(issued++, out.completion));
      TERTIO_CHECK(id.ok(), "closed-loop submit rejected");
    });
    for (int c = 0; c < std::min(clients, queries); ++c) {
      TERTIO_RETURN_IF_ERROR(scheduler.Submit(make_request(c, 0.0)).status());
    }
  } else {
    for (int q = 0; q < queries; ++q) {
      TERTIO_RETURN_IF_ERROR(
          scheduler.Submit(make_request(q, static_cast<double>(q) * interarrival)).status());
    }
  }
  TERTIO_RETURN_IF_ERROR(scheduler.Run());

  ServeResult result;
  result.stats = scheduler.service_stats();
  for (const exec::QueryOutcome& out : scheduler.outcomes()) {
    if (!out.status.ok()) return out.status;
    result.responses.push_back(out.response_seconds().value());
  }
  std::sort(result.responses.begin(), result.responses.end());
  return result;
}

double ServePercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

const char* PolicyLabel(exec::ServicePolicy policy) {
  switch (policy) {
    case exec::ServicePolicy::kFifo:
      return "fifo";
    case exec::ServicePolicy::kSharedScan:
      return "shared-scan";
    case exec::ServicePolicy::kElevator:
      return "elevator";
  }
  return "?";
}

int CmdServe(const Flags& flags) {
  // Default: compare every policy side by side; --policy narrows to one.
  std::vector<exec::ServicePolicy> policies = {exec::ServicePolicy::kFifo,
                                               exec::ServicePolicy::kSharedScan,
                                               exec::ServicePolicy::kElevator};
  if (flags.Has("policy")) {
    std::string name = flags.GetString("policy", "");
    if (name == "fifo") {
      policies = {exec::ServicePolicy::kFifo};
    } else if (name == "shared" || name == "shared-scan") {
      policies = {exec::ServicePolicy::kSharedScan};
    } else if (name == "elevator") {
      policies = {exec::ServicePolicy::kElevator};
    } else {
      std::fprintf(stderr, "unknown --policy %s (fifo|shared|elevator)\n", name.c_str());
      return 2;
    }
  }
  exec::TableReport table({"policy", "queries", "p50 resp", "p99 resp", "makespan",
                           "tape read (MB)", "shared (MB)", "cached (MB)", "shared queries",
                           "robot", "peak"});
  for (exec::ServicePolicy policy : policies) {
    auto result = RunService(flags, policy);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    table.AddRow(
        {PolicyLabel(policy),
         StrFormat("%llu", (unsigned long long)result->stats.completed),
         FormatDuration(ServePercentile(result->responses, 0.50)),
         FormatDuration(ServePercentile(result->responses, 0.99)),
         FormatDuration(result->stats.makespan),
         StrFormat("%.0f", static_cast<double>(BlocksToBytes(result->stats.tape_blocks_read,
                                                             kDefaultBlockBytes).value()) /
                                static_cast<double>(kMB.value())),
         StrFormat("%.0f", static_cast<double>(BlocksToBytes(result->stats.tape_blocks_shared,
                                                             kDefaultBlockBytes).value()) /
                                static_cast<double>(kMB.value())),
         StrFormat("%.0f", static_cast<double>(BlocksToBytes(result->stats.tape_blocks_cached,
                                                             kDefaultBlockBytes).value()) /
                                static_cast<double>(kMB.value())),
         StrFormat("%llu", (unsigned long long)result->stats.scan_shared_queries),
         StrFormat("%llu", (unsigned long long)result->stats.robot_exchanges),
         StrFormat("%llu", (unsigned long long)result->stats.peak_in_flight)});
  }
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  auto flags = Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return Usage();
  }
  if (command == "advise") return CmdAdvise(*flags);
  if (command == "estimate") return CmdEstimate(*flags);
  if (command == "run") return CmdRun(*flags);
  if (command == "sweep") return CmdSweep(*flags);
  if (command == "serve") return CmdServe(*flags);
  return Usage();
}
