#!/usr/bin/env python3
"""tertio_lint — repo-specific static analysis for the tertio codebase.

Three check families, all tuned to invariants the compiler cannot see:

1. error-discipline: `Status` and `Result<T>` in src/util/status.h must be
   declared [[nodiscard]] (the compiler then flags every discarded return;
   this check keeps the attribute from regressing), and explicit `(void)`
   discards of a call must carry a justifying comment on the same line.

2. hot-path hygiene: the simulator and the join executors must stay
   deterministic and allocation-predictable, so `std::unordered_map` /
   `std::unordered_multimap` (iteration-order nondeterminism), `rand` /
   `srand` (hidden global state) and wall-clock reads (`std::chrono` clocks,
   `gettimeofday`, `clock_gettime`, `time(...)`) are banned in src/join and
   src/sim. Waive a specific line with `// tertio-lint: allow(<rule>)` on
   that line or the line above.

3. span-registry: every pipeline phase label used by the join executors and
   the pipeline engine must appear in src/sim/span_registry.h, and every
   registry entry must be used somewhere (no orphans). Phase literals
   special-cased by sim/trace_report.cc or src/exec/report.cc must be
   registered too — a typo'd label silently forks a report row.

4. mount-encapsulation: direct `TapeLibrary::Mount` calls are confined to
   src/tape and src/exec. Everywhere else, mounts must go through
   exec::QuerySession (MountR/MountS) or the QueryScheduler, which charge
   the robot/drive timelines and keep slot bookkeeping consistent with
   session drive leases. Waive a deliberate exception with
   `// tertio-lint: allow(mount)`.

5. cache-encapsulation: mutating the cross-query extent cache
   (`ExtentCache::Admit` / `ExtentCache::ReadThrough`) is confined to
   src/disk and src/exec. The cache's residency ledger, the SimSan byte
   accounting, and the tape drives' cache windows only stay consistent when
   fills and read-throughs flow through QuerySession/QueryScheduler. Waive
   with `// tertio-lint: allow(extent-cache)`.

6. simd-encapsulation: raw SIMD intrinsics (`_mm_*`, `vld1q_*`/`vceqq_*`/
   `vgetq_*` and friends) and the intrinsic headers (<emmintrin.h>,
   <immintrin.h>, <arm_neon.h>, ...) are confined to src/join/simd.h, the
   runtime-dispatched abstraction with a portable scalar fallback. Everything
   else calls the simd:: wrappers, so a build without SSE2/NEON still
   compiles and a forced-scalar run exercises identical logic. CMake files
   must not hard-wire `-march=`/`-mcpu=`/`-mtune=` into default flags:
   baseline binaries stay portable and ISA selection happens at runtime.

Exit status: 0 with no findings, 1 otherwise. Output: `file:line: [rule] msg`.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent.parent

REGISTRY = REPO / "src" / "sim" / "span_registry.h"
STATUS_H = REPO / "src" / "util" / "status.h"

# Directories whose sources are "hot path" for rule 2.
HOT_DIRS = ("src/join", "src/sim")
# Directories scanned for span-label usage (rule 3).
SPAN_USE_DIRS = ("src/join", "src/sim")
# Report renderers whose special-cased phase literals must be registered.
REPORT_FILES = ("src/sim/trace_report.cc", "src/exec/report.cc")

WAIVER_RE = re.compile(r"//\s*tertio-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

BANNED = [
    # rule name, regex, message
    ("unordered-map", re.compile(r"\bstd::unordered_(?:multi)?map\b"),
     "hashed maps are banned in hot paths (nondeterministic iteration order); "
     "use the flat table, std::map, or a vector"),
    ("rand", re.compile(r"\b(?:std::)?s?rand\s*\("),
     "rand()/srand() hide global state; use util/rng.h (seeded, per-stream)"),
    ("wall-clock", re.compile(
        r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"
        r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\b(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "wall-clock reads in the simulator break virtual-time determinism; "
     "thread SimSeconds through instead"),
]

# Call shapes that carry a pipeline phase label as their first string literal.
PHASE_PATTERNS = [
    re.compile(r"\b(?:Stage|StageWithRetry|Event|Barrier|Record)\(\s*\"([^\"]+)\""),
    re.compile(r"\b(?:read_phase|write_phase)\s*=\s*\"([^\"]+)\""),
    re.compile(r"\bIssue(?:Read|Write|Flush)\(\s*\w+,\s*\"([^\"]+)\""),
    re.compile(r"\bScanDiskAndProbe\(\s*\w+,\s*\w+,\s*\"([^\"]+)\""),
    re.compile(r"\bAcquireFreeStage\(\s*\w+,\s*\w+,\s*\"([^\"]+)\""),
]

# Phase literals compared or special-cased inside the report renderers.
REPORT_PHASE_RE = re.compile(r"\bphase(?:\.phase)?\s*==\s*\"([^\"]+)\"")

# A discarded *call* — `(void)Foo(...)`, `(void)obj.Method(...)`. Plain
# `(void)name;` parameter silencers are fine and not matched.
VOID_DISCARD_RE = re.compile(r"^\s*\(void\)\s*[A-Za-z_][\w:.>-]*\s*\(")

# Directories scanned for direct library mounts (rule 4), and the layers
# allowed to perform them. Member-call shape only (`x.Mount(` / `x->Mount(`),
# so MountR/ForceMount/MountTapes wrappers do not match.
MOUNT_DIRS = ("src", "tools", "examples", "bench")
MOUNT_ALLOWED = ("src/tape", "src/exec")
MOUNT_RE = re.compile(r"(?:\.|->)\s*Mount\s*\(")

# Directories scanned for direct extent-cache mutation (rule 5), and the
# layers allowed to perform it. Lookup/Contains/stats are read-only and fine
# anywhere; Admit and ReadThrough move bytes and must stay encapsulated.
CACHE_DIRS = ("src", "tools", "examples", "bench")
CACHE_ALLOWED = ("src/disk", "src/exec")
CACHE_RE = re.compile(r"(?:\.|->)\s*(?:Admit|ReadThrough)\s*\(")

# Directories scanned for raw SIMD usage (rule 6), and the single header
# allowed to contain it. Matches both the intrinsic call shapes (x86 `_mm_*`
# / `_mm256_*`, NEON `v...q_...` loads/compares) and the headers that
# declare them, so a dormant include is caught too.
SIMD_DIRS = ("src", "tools", "examples", "bench", "tests")
SIMD_ALLOWED = ("src/join/simd.h",)
SIMD_RE = re.compile(
    r"\b_mm(?:256|512)?_[a-z0-9_]+\s*\("
    r"|\bv(?:ld|st)[1-4]q?_[a-z0-9_]+\s*\("
    r"|\bv(?:ceq|cgt|clt|and|orr|eor|add|sub|mov|get|set|dup|reinterpret)q?_[a-z0-9_]+\s*\(")
SIMD_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:x|e|p|t|s|n|w|a|i)mmintrin\.h>"
    r"|#\s*include\s*<(?:immintrin|arm_neon|arm_sve)\.h>")
# Architecture-pinning flags banned from CMake defaults.
MARCH_RE = re.compile(r"-m(?:arch|cpu|tune)=")


class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO) if self.path.is_absolute() else self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string-free preprocessor noise,
    preserving line structure so reported line numbers stay correct."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append(c + nxt)
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c)
        elif state == "char":
            if c == "\\":
                out.append(c + nxt)
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def waivers_for(lines: list[str], lineno: int) -> set[str]:
    """Rules waived for 1-based `lineno` via allow() on it or the line above."""
    waived: set[str] = set()
    for candidate in (lineno - 1, lineno - 2):
        if 0 <= candidate < len(lines):
            m = WAIVER_RE.search(lines[candidate])
            if m:
                waived.update(r.strip() for r in m.group(1).split(","))
    return waived


def iter_sources(dirs: tuple[str, ...]):
    for d in dirs:
        root = REPO / d
        for path in sorted(root.rglob("*")):
            if path.suffix in (".h", ".cc", ".cpp") and path.is_file():
                yield path


def check_error_discipline(findings: list[Finding]) -> None:
    text = STATUS_H.read_text()
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Status\b", text):
        findings.append(Finding(STATUS_H, 1, "nodiscard",
                                "class Status must be declared [[nodiscard]]"))
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Result\b", text):
        findings.append(Finding(STATUS_H, 1, "nodiscard",
                                "class Result<T> must be declared [[nodiscard]]"))
    # Explicit discards must explain themselves.
    for path in iter_sources(("src", "tools")):
        raw_lines = path.read_text().splitlines()
        stripped = strip_comments(path.read_text()).splitlines()
        for idx, line in enumerate(stripped):
            if VOID_DISCARD_RE.match(line):
                raw = raw_lines[idx] if idx < len(raw_lines) else ""
                if "//" not in raw and "discard" not in waivers_for(raw_lines, idx + 1):
                    findings.append(Finding(
                        path, idx + 1, "discard",
                        "(void)-discard of a return value needs a justifying "
                        "comment on the same line (or tertio-lint: allow(discard))"))


def check_hot_paths(findings: list[Finding]) -> None:
    for path in iter_sources(HOT_DIRS):
        raw = path.read_text()
        raw_lines = raw.splitlines()
        stripped = strip_comments(raw).splitlines()
        for idx, line in enumerate(stripped):
            for rule, pattern, message in BANNED:
                if pattern.search(line) and rule not in waivers_for(raw_lines, idx + 1):
                    findings.append(Finding(path, idx + 1, rule, message))
        # The include behind the banned containers, so a dormant include
        # can't reintroduce them silently.
        for idx, line in enumerate(stripped):
            if re.search(r"#\s*include\s*<unordered_map>", line) \
                    and "unordered-map" not in waivers_for(raw_lines, idx + 1):
                findings.append(Finding(path, idx + 1, "unordered-map",
                                        "#include <unordered_map> in a hot-path directory"))


def check_mount_encapsulation(findings: list[Finding]) -> None:
    for path in iter_sources(MOUNT_DIRS):
        rel = path.relative_to(REPO).as_posix()
        if any(rel.startswith(prefix + "/") for prefix in MOUNT_ALLOWED):
            continue
        raw = path.read_text()
        raw_lines = raw.splitlines()
        stripped = strip_comments(raw).splitlines()
        for idx, line in enumerate(stripped):
            if MOUNT_RE.search(line) and "mount" not in waivers_for(raw_lines, idx + 1):
                findings.append(Finding(
                    path, idx + 1, "mount",
                    "direct TapeLibrary::Mount outside src/tape and src/exec bypasses "
                    "session mount accounting; use exec::QuerySession MountR/MountS "
                    "(or tertio-lint: allow(mount) for a deliberate exception)"))


def check_cache_encapsulation(findings: list[Finding]) -> None:
    for path in iter_sources(CACHE_DIRS):
        rel = path.relative_to(REPO).as_posix()
        if any(rel.startswith(prefix + "/") for prefix in CACHE_ALLOWED):
            continue
        raw = path.read_text()
        raw_lines = raw.splitlines()
        stripped = strip_comments(raw).splitlines()
        for idx, line in enumerate(stripped):
            if CACHE_RE.search(line) and "extent-cache" not in waivers_for(raw_lines, idx + 1):
                findings.append(Finding(
                    path, idx + 1, "extent-cache",
                    "direct ExtentCache::Admit/ReadThrough outside src/disk and src/exec "
                    "bypasses the cache's residency ledger and SimSan byte accounting; "
                    "go through QuerySession/QueryScheduler "
                    "(or tertio-lint: allow(extent-cache) for a deliberate exception)"))


def check_simd_encapsulation(findings: list[Finding]) -> None:
    for path in iter_sources(SIMD_DIRS):
        rel = path.relative_to(REPO).as_posix()
        if rel in SIMD_ALLOWED:
            continue
        raw = path.read_text()
        raw_lines = raw.splitlines()
        stripped = strip_comments(raw).splitlines()
        for idx, line in enumerate(stripped):
            if (SIMD_RE.search(line) or SIMD_INCLUDE_RE.search(line)) \
                    and "simd" not in waivers_for(raw_lines, idx + 1):
                findings.append(Finding(
                    path, idx + 1, "simd",
                    "raw SIMD intrinsics outside src/join/simd.h; call the "
                    "runtime-dispatched simd:: wrappers so forced-scalar runs "
                    "stay bit-identical (or tertio-lint: allow(simd))"))
    # CMake defaults must stay portable: no -march/-mcpu/-mtune pinning.
    for cmake in sorted(REPO.rglob("CMakeLists.txt")):
        if "build" in cmake.relative_to(REPO).parts:
            continue
        for idx, line in enumerate(cmake.read_text().splitlines()):
            if MARCH_RE.search(line) and "tertio-lint: allow(simd)" not in line:
                findings.append(Finding(
                    cmake, idx + 1, "simd",
                    "-march/-mcpu/-mtune in CMake defaults pins the ISA at "
                    "compile time; ISA selection is a runtime decision in "
                    "src/join/simd.h"))


def load_registry(findings: list[Finding]) -> list[str]:
    text = REGISTRY.read_text()
    m = re.search(r"kRegisteredSpans\[\]\s*=\s*\{(.*?)\};", text, re.DOTALL)
    if not m:
        findings.append(Finding(REGISTRY, 1, "span-registry",
                                "could not parse kRegisteredSpans"))
        return []
    body = strip_comments(m.group(1))
    spans = re.findall(r"\"([^\"]+)\"", body)
    if spans != sorted(spans):
        findings.append(Finding(REGISTRY, 1, "span-registry",
                                "kRegisteredSpans must be sorted (binary_search contract)"))
    return spans


def check_span_registry(findings: list[Finding]) -> None:
    registered = load_registry(findings)
    if not registered:
        return
    used: dict[str, tuple[pathlib.Path, int]] = {}
    for path in iter_sources(SPAN_USE_DIRS):
        if path == REGISTRY:
            continue
        stripped = strip_comments(path.read_text()).splitlines()
        for idx, line in enumerate(stripped):
            for pattern in PHASE_PATTERNS:
                for label in pattern.findall(line):
                    used.setdefault(label, (path, idx + 1))
    for rel in REPORT_FILES:
        path = REPO / rel
        stripped = strip_comments(path.read_text()).splitlines()
        for idx, line in enumerate(stripped):
            for label in REPORT_PHASE_RE.findall(line):
                used.setdefault(label, (path, idx + 1))

    for label, (path, line) in sorted(used.items()):
        if label not in registered:
            findings.append(Finding(
                path, line, "span-registry",
                f'phase label "{label}" is not in src/sim/span_registry.h '
                "(register it or fix the typo — unregistered labels fork report rows)"))
    for label in registered:
        if label not in used:
            findings.append(Finding(
                REGISTRY, 1, "span-registry",
                f'registered span "{label}" is used nowhere in {", ".join(SPAN_USE_DIRS)} '
                "(stale entry — remove it or restore the call site)"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list-spans", action="store_true",
                        help="print the parsed span registry and exit")
    args = parser.parse_args()

    findings: list[Finding] = []
    if args.list_spans:
        for span in load_registry(findings):
            print(span)
        return 0 if not findings else 1

    check_error_discipline(findings)
    check_hot_paths(findings)
    check_mount_encapsulation(findings)
    check_cache_encapsulation(findings)
    check_simd_encapsulation(findings)
    check_span_registry(findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"tertio_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("tertio_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
