#!/usr/bin/env python3
"""tertio_lint v2 — multi-pass repo-specific static analysis for tertio.

The analyzer parses every source file once into a shared cache (raw lines +
comment/string-stripped lines) and then runs *rule packs* over it. Packs are
selectable with `--rules=pack1,pack2` (default: all), so CI can run the
dimensional-safety pack standalone while the full pre-commit gate runs
everything.

Rule packs
==========

error-discipline
    `Status` and `Result<T>` in src/util/status.h must be declared
    [[nodiscard]] (the compiler then flags every discarded return; this check
    keeps the attribute from regressing), and explicit `(void)` discards of a
    call must carry a justifying comment on the same line.

hot-path
    The simulator and the join executors must stay deterministic and
    allocation-predictable, so `std::unordered_map` / `std::unordered_multimap`
    (iteration-order nondeterminism), `rand` / `srand` (hidden global state)
    and wall-clock reads (`std::chrono` clocks, `gettimeofday`,
    `clock_gettime`, `time(...)`) are banned in src/join and src/sim.

span-registry
    Every pipeline phase label used by the join executors and the pipeline
    engine must appear in src/sim/span_registry.h, and every registry entry
    must be used somewhere (no orphans). Phase literals special-cased by
    sim/trace_report.cc or src/exec/report.cc must be registered too — a
    typo'd label silently forks a report row.

encapsulation
    - mount: direct `TapeLibrary::Mount` calls are confined to src/tape and
      src/exec; everywhere else mounts go through exec::QuerySession
      (MountR/MountS) or the QueryScheduler.
    - extent-cache: `ExtentCache::Admit` / `ExtentCache::ReadThrough` are
      confined to src/disk and src/exec.
    - drive-lease: `Site::AcquireDrives` / `Site::LeaseDrives` are confined
      to src/exec; everywhere else drive ownership flows through an
      exec::QuerySession so the RAII lease guard (and SimSan's
      lease-exclusivity ledger) cannot be bypassed.
    - simd: raw SIMD intrinsics and intrinsic headers are confined to
      src/join/simd.h; CMake defaults must not pin -march/-mcpu/-mtune.

units
    Dimensional-safety pack backing the strong types in src/util/units.h:
    - units-raw-param: a function parameter in a src/ header typed
      `uint64_t`/`size_t` but *named* `*_blocks`/`*_bytes` (or `double` named
      `*_seconds`) reintroduces the raw-typedef hole the strong types closed.
      Declare it `Blocks`/`Bytes`/`SimSeconds` instead. `--fix` rewrites the
      parameter type in place.
    - units-unwrap: `.value()` escapes in src/ headers (the inline API
      surface) leak raw representations past the type system; each one needs
      a `// tertio-lint: allow(units-unwrap)` waiver explaining why the raw
      value is required (container sizing, ordering keys, printf).
      Implementation (.cc) files may unwrap freely at boundaries.
    - units-arg-order: `BytesToBlocks(bytes, block_bytes)` and
      `BlocksToBytes(blocks, block_bytes)` call sites whose first argument
      *names* the wrong dimension, or whose second argument does not look
      like a block size, are flagged. The strong types already reject a
      swapped call at compile time when both arguments are typed; this
      catches sites where raw `.value()` escapes or literals defeat that.

Waive a specific line with `// tertio-lint: allow(<rule>[, <rule>...])` on
that line or the line above.

Exit status: 0 with no findings, 1 otherwise. Output: `file:line: [rule] msg`.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

DEFAULT_REPO = pathlib.Path(__file__).resolve().parent.parent.parent

WAIVER_RE = re.compile(r"//\s*tertio-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# ---------------------------------------------------------------------------
# Shared single-parse file cache
# ---------------------------------------------------------------------------


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments, preserving line structure so
    reported line numbers stay correct. String/char literals are kept."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append(c + nxt)
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c)
        elif state == "char":
            if c == "\\":
                out.append(c + nxt)
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


class SourceFile:
    """One parsed source file: raw text/lines plus comment-stripped lines."""

    def __init__(self, path: pathlib.Path):
        self.path = path
        self.raw = path.read_text()
        self.raw_lines = self.raw.splitlines()
        self.stripped = strip_comments(self.raw)
        self.stripped_lines = self.stripped.splitlines()

    def waivers_for(self, lineno: int) -> set[str]:
        """Rules waived for 1-based `lineno` via allow() on it or above."""
        waived: set[str] = set()
        for candidate in (lineno - 1, lineno - 2):
            if 0 <= candidate < len(self.raw_lines):
                m = WAIVER_RE.search(self.raw_lines[candidate])
                if m:
                    waived.update(r.strip() for r in m.group(1).split(","))
        return waived


class Repo:
    """Lazily parses and caches sources under one repo root."""

    def __init__(self, root: pathlib.Path):
        self.root = root
        self._cache: dict[pathlib.Path, SourceFile] = {}

    def file(self, path: pathlib.Path) -> SourceFile:
        if path not in self._cache:
            self._cache[path] = SourceFile(path)
        return self._cache[path]

    def sources(self, dirs: tuple[str, ...], suffixes=(".h", ".cc", ".cpp")):
        for d in dirs:
            root = self.root / d
            if not root.exists():
                continue
            for path in sorted(root.rglob("*")):
                if path.suffix in suffixes and path.is_file():
                    yield self.file(path)


class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str, message: str,
                 fix=None):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        # Optional mechanical fix: (old_line_text, new_line_text).
        self.fix = fix

    def rel(self, root: pathlib.Path) -> str:
        try:
            return self.path.relative_to(root).as_posix()
        except ValueError:
            return str(self.path)


# ---------------------------------------------------------------------------
# error-discipline pack
# ---------------------------------------------------------------------------

VOID_DISCARD_RE = re.compile(r"^\s*\(void\)\s*[A-Za-z_][\w:.>-]*\s*\(")


def check_error_discipline(repo: Repo, findings: list[Finding]) -> None:
    status_h = repo.root / "src" / "util" / "status.h"
    text = repo.file(status_h).raw
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Status\b", text):
        findings.append(Finding(status_h, 1, "nodiscard",
                                "class Status must be declared [[nodiscard]]"))
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Result\b", text):
        findings.append(Finding(status_h, 1, "nodiscard",
                                "class Result<T> must be declared [[nodiscard]]"))
    for src in repo.sources(("src", "tools")):
        for idx, line in enumerate(src.stripped_lines):
            if VOID_DISCARD_RE.match(line):
                raw = src.raw_lines[idx] if idx < len(src.raw_lines) else ""
                if "//" not in raw and "discard" not in src.waivers_for(idx + 1):
                    findings.append(Finding(
                        src.path, idx + 1, "discard",
                        "(void)-discard of a return value needs a justifying "
                        "comment on the same line (or tertio-lint: allow(discard))"))


# ---------------------------------------------------------------------------
# hot-path pack
# ---------------------------------------------------------------------------

HOT_DIRS = ("src/join", "src/sim")

BANNED = [
    ("unordered-map", re.compile(r"\bstd::unordered_(?:multi)?map\b"),
     "hashed maps are banned in hot paths (nondeterministic iteration order); "
     "use the flat table, std::map, or a vector"),
    ("rand", re.compile(r"\b(?:std::)?s?rand\s*\("),
     "rand()/srand() hide global state; use util/rng.h (seeded, per-stream)"),
    ("wall-clock", re.compile(
        r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"
        r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\b(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "wall-clock reads in the simulator break virtual-time determinism; "
     "thread SimSeconds through instead"),
]


def check_hot_paths(repo: Repo, findings: list[Finding]) -> None:
    for src in repo.sources(HOT_DIRS):
        for idx, line in enumerate(src.stripped_lines):
            for rule, pattern, message in BANNED:
                if pattern.search(line) and rule not in src.waivers_for(idx + 1):
                    findings.append(Finding(src.path, idx + 1, rule, message))
            if re.search(r"#\s*include\s*<unordered_map>", line) \
                    and "unordered-map" not in src.waivers_for(idx + 1):
                findings.append(Finding(src.path, idx + 1, "unordered-map",
                                        "#include <unordered_map> in a hot-path directory"))


# ---------------------------------------------------------------------------
# encapsulation pack (mount, extent-cache, drive-lease, simd)
# ---------------------------------------------------------------------------

MOUNT_DIRS = ("src", "tools", "examples", "bench")
MOUNT_ALLOWED = ("src/tape", "src/exec")
MOUNT_RE = re.compile(r"(?:\.|->)\s*Mount\s*\(")

CACHE_DIRS = ("src", "tools", "examples", "bench")
CACHE_ALLOWED = ("src/disk", "src/exec")
CACHE_RE = re.compile(r"(?:\.|->)\s*(?:Admit|ReadThrough)\s*\(")

DRIVE_DIRS = ("src", "tools", "examples", "bench")
DRIVE_ALLOWED = ("src/exec",)
DRIVE_RE = re.compile(r"(?:\.|->)\s*(?:AcquireDrives|LeaseDrives)\s*\(")

SIMD_DIRS = ("src", "tools", "examples", "bench", "tests")
SIMD_ALLOWED = ("src/join/simd.h",)
SIMD_RE = re.compile(
    r"\b_mm(?:256|512)?_[a-z0-9_]+\s*\("
    r"|\bv(?:ld|st)[1-4]q?_[a-z0-9_]+\s*\("
    r"|\bv(?:ceq|cgt|clt|and|orr|eor|add|sub|mov|get|set|dup|reinterpret)q?_[a-z0-9_]+\s*\(")
SIMD_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:x|e|p|t|s|n|w|a|i)mmintrin\.h>"
    r"|#\s*include\s*<(?:immintrin|arm_neon|arm_sve)\.h>")
MARCH_RE = re.compile(r"-m(?:arch|cpu|tune)=")


def _outside(repo: Repo, src: SourceFile, allowed: tuple[str, ...]) -> bool:
    rel = src.path.relative_to(repo.root).as_posix()
    return rel not in allowed and not any(
        rel.startswith(prefix + "/") for prefix in allowed)


def check_encapsulation(repo: Repo, findings: list[Finding]) -> None:
    for src in repo.sources(MOUNT_DIRS):
        if not _outside(repo, src, MOUNT_ALLOWED):
            continue
        for idx, line in enumerate(src.stripped_lines):
            if MOUNT_RE.search(line) and "mount" not in src.waivers_for(idx + 1):
                findings.append(Finding(
                    src.path, idx + 1, "mount",
                    "direct TapeLibrary::Mount outside src/tape and src/exec bypasses "
                    "session mount accounting; use exec::QuerySession MountR/MountS "
                    "(or tertio-lint: allow(mount) for a deliberate exception)"))
    for src in repo.sources(CACHE_DIRS):
        if not _outside(repo, src, CACHE_ALLOWED):
            continue
        for idx, line in enumerate(src.stripped_lines):
            if CACHE_RE.search(line) and "extent-cache" not in src.waivers_for(idx + 1):
                findings.append(Finding(
                    src.path, idx + 1, "extent-cache",
                    "direct ExtentCache::Admit/ReadThrough outside src/disk and src/exec "
                    "bypasses the cache's residency ledger and SimSan byte accounting; "
                    "go through QuerySession/QueryScheduler "
                    "(or tertio-lint: allow(extent-cache) for a deliberate exception)"))
    for src in repo.sources(DRIVE_DIRS):
        if not _outside(repo, src, DRIVE_ALLOWED):
            continue
        for idx, line in enumerate(src.stripped_lines):
            if DRIVE_RE.search(line) and "drive-lease" not in src.waivers_for(idx + 1):
                findings.append(Finding(
                    src.path, idx + 1, "drive-lease",
                    "direct Site::AcquireDrives/LeaseDrives outside src/exec bypasses "
                    "the session's RAII DriveLease and SimSan's lease-exclusivity "
                    "ledger; open an exec::QuerySession instead "
                    "(or tertio-lint: allow(drive-lease) for a deliberate exception)"))
    for src in repo.sources(SIMD_DIRS):
        if not _outside(repo, src, SIMD_ALLOWED):
            continue
        for idx, line in enumerate(src.stripped_lines):
            if (SIMD_RE.search(line) or SIMD_INCLUDE_RE.search(line)) \
                    and "simd" not in src.waivers_for(idx + 1):
                findings.append(Finding(
                    src.path, idx + 1, "simd",
                    "raw SIMD intrinsics outside src/join/simd.h; call the "
                    "runtime-dispatched simd:: wrappers so forced-scalar runs "
                    "stay bit-identical (or tertio-lint: allow(simd))"))
    for cmake in sorted(repo.root.rglob("CMakeLists.txt")):
        if "build" in cmake.relative_to(repo.root).parts:
            continue
        for idx, line in enumerate(cmake.read_text().splitlines()):
            if MARCH_RE.search(line) and "tertio-lint: allow(simd)" not in line:
                findings.append(Finding(
                    cmake, idx + 1, "simd",
                    "-march/-mcpu/-mtune in CMake defaults pins the ISA at "
                    "compile time; ISA selection is a runtime decision in "
                    "src/join/simd.h"))


# ---------------------------------------------------------------------------
# span-registry pack
# ---------------------------------------------------------------------------

SPAN_USE_DIRS = ("src/join", "src/sim")
REPORT_FILES = ("src/sim/trace_report.cc", "src/exec/report.cc")

PHASE_PATTERNS = [
    re.compile(r"\b(?:Stage|StageWithRetry|Event|Barrier|Record)\(\s*\"([^\"]+)\""),
    re.compile(r"\b(?:read_phase|write_phase)\s*=\s*\"([^\"]+)\""),
    re.compile(r"\bIssue(?:Read|Write|Flush)\(\s*\w+,\s*\"([^\"]+)\""),
    re.compile(r"\bScanDiskAndProbe\(\s*\w+,\s*\w+,\s*\"([^\"]+)\""),
    re.compile(r"\bAcquireFreeStage\(\s*\w+,\s*\w+,\s*\"([^\"]+)\""),
]

REPORT_PHASE_RE = re.compile(r"\bphase(?:\.phase)?\s*==\s*\"([^\"]+)\"")


def load_registry(repo: Repo, findings: list[Finding]) -> list[str]:
    registry = repo.root / "src" / "sim" / "span_registry.h"
    text = repo.file(registry).raw
    m = re.search(r"kRegisteredSpans\[\]\s*=\s*\{(.*?)\};", text, re.DOTALL)
    if not m:
        findings.append(Finding(registry, 1, "span-registry",
                                "could not parse kRegisteredSpans"))
        return []
    body = strip_comments(m.group(1))
    spans = re.findall(r"\"([^\"]+)\"", body)
    if spans != sorted(spans):
        findings.append(Finding(registry, 1, "span-registry",
                                "kRegisteredSpans must be sorted (binary_search contract)"))
    return spans


def check_span_registry(repo: Repo, findings: list[Finding]) -> None:
    registry = repo.root / "src" / "sim" / "span_registry.h"
    registered = load_registry(repo, findings)
    if not registered:
        return
    used: dict[str, tuple[pathlib.Path, int]] = {}
    for src in repo.sources(SPAN_USE_DIRS):
        if src.path == registry:
            continue
        for idx, line in enumerate(src.stripped_lines):
            for pattern in PHASE_PATTERNS:
                for label in pattern.findall(line):
                    used.setdefault(label, (src.path, idx + 1))
    for rel in REPORT_FILES:
        src = repo.file(repo.root / rel)
        for idx, line in enumerate(src.stripped_lines):
            for label in REPORT_PHASE_RE.findall(line):
                used.setdefault(label, (src.path, idx + 1))

    for label, (path, line) in sorted(used.items()):
        if label not in registered:
            findings.append(Finding(
                path, line, "span-registry",
                f'phase label "{label}" is not in src/sim/span_registry.h '
                "(register it or fix the typo — unregistered labels fork report rows)"))
    for label in registered:
        if label not in used:
            findings.append(Finding(
                registry, 1, "span-registry",
                f'registered span "{label}" is used nowhere in {", ".join(SPAN_USE_DIRS)} '
                "(stale entry — remove it or restore the call site)"))


# ---------------------------------------------------------------------------
# units pack
# ---------------------------------------------------------------------------

UNITS_HEADER_DIRS = ("src",)
# The definition site of the strong types is exempt: it *is* the escape hatch.
UNITS_EXEMPT = ("src/util/units.h", "src/util/status.h")

# A raw-typed parameter whose *name* claims a dimension. Matched against
# single parameter declarations split on commas inside parens.
RAW_PARAM_RE = re.compile(
    r"(?P<type>\b(?:std::)?(?:uint64_t|size_t|uint32_t|int64_t)\b)"
    r"(?:\s+|\s*&\s*|\s*\b)"
    r"(?P<name>[A-Za-z_]\w*_(?:blocks|bytes))\b")
RAW_SECONDS_PARAM_RE = re.compile(
    r"(?P<type>\bdouble\b)\s+(?P<name>[A-Za-z_]\w*_seconds)\b")

# Strong type for each name suffix, used by --fix and the message.
SUFFIX_TYPE = {"blocks": "Blocks", "bytes": "Bytes", "seconds": "SimSeconds"}

UNWRAP_RE = re.compile(r"\.\s*value\s*\(\s*\)")

CONV_CALL_RE = re.compile(r"\b(BytesToBlocks|BlocksToBytes)\s*\(")

# Names that legitimately denote a block *size* in bytes (the second
# argument of both conversions).
BLOCK_SIZE_NAME_RE = re.compile(r"block_?(?:bytes|size)|kDefaultBlockBytes|kBlock\b")


def _split_args(text: str, start: int):
    """Splits the argument list starting at the '(' at `start`; returns
    (args, end_index) or None if unbalanced (multi-line call)."""
    depth = 0
    args: list[str] = []
    current: list[str] = []
    for i in range(start, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
            if depth == 1:
                continue
        elif c == ")":
            depth -= 1
            if depth == 0:
                args.append("".join(current).strip())
                return args, i
        elif c == "," and depth == 1:
            args.append("".join(current).strip())
            current = []
            continue
        current.append(c)
    return None


def check_units(repo: Repo, findings: list[Finding]) -> None:
    # units-raw-param: headers only — the API surface the strong types guard.
    for src in repo.sources(UNITS_HEADER_DIRS, suffixes=(".h",)):
        if not _outside(repo, src, UNITS_EXEMPT):
            continue
        for idx, line in enumerate(src.stripped_lines):
            for pattern in (RAW_PARAM_RE, RAW_SECONDS_PARAM_RE):
                for m in pattern.finditer(line):
                    if "units-raw-param" in src.waivers_for(idx + 1):
                        continue
                    suffix = m.group("name").rsplit("_", 1)[1]
                    strong = SUFFIX_TYPE[suffix]
                    raw_line = src.raw_lines[idx]
                    fixed = raw_line.replace(m.group("type"), strong, 1) \
                        if m.group("type") in raw_line else None
                    findings.append(Finding(
                        src.path, idx + 1, "units-raw-param",
                        f"raw {m.group('type')} parameter '{m.group('name')}' in a src/ "
                        f"header reintroduces the implicit-conversion hole; declare it "
                        f"{strong} (or tertio-lint: allow(units-raw-param))",
                        fix=(raw_line, fixed) if fixed else None))

    # units-unwrap: .value() escapes on the inline header API surface.
    for src in repo.sources(UNITS_HEADER_DIRS, suffixes=(".h",)):
        if not _outside(repo, src, UNITS_EXEMPT):
            continue
        for idx, line in enumerate(src.stripped_lines):
            if UNWRAP_RE.search(line) and "units-unwrap" not in src.waivers_for(idx + 1):
                findings.append(Finding(
                    src.path, idx + 1, "units-unwrap",
                    ".value() unwrap in a src/ header leaks the raw representation "
                    "past the unit types; keep the quantity typed or add "
                    "tertio-lint: allow(units-unwrap) with a reason"))

    # units-arg-order: conversion call sites whose argument *names* claim the
    # wrong dimension.
    for src in repo.sources(("src", "tools", "examples", "bench", "tests")):
        text = src.stripped
        for m in CONV_CALL_RE.finditer(text):
            call = m.group(1)
            parsed = _split_args(text, m.end() - 1)
            if not parsed:
                continue
            args, _ = parsed
            if len(args) != 2:
                continue
            lineno = text.count("\n", 0, m.start()) + 1
            if "units-arg-order" in src.waivers_for(lineno):
                continue
            first, second = args[0], args[1]
            first_names = " ".join(re.findall(r"[A-Za-z_]\w*", first))
            problem = None
            if call == "BytesToBlocks":
                # First argument must be a byte count, not a block count.
                if re.search(r"\bblocks\b|_blocks\b", first_names) and \
                        not BLOCK_SIZE_NAME_RE.search(first_names):
                    problem = (f"first argument '{first}' names a block count but "
                               "BytesToBlocks expects bytes")
            else:  # BlocksToBytes
                if re.search(r"\bbytes\b|_bytes\b", first_names) and \
                        not BLOCK_SIZE_NAME_RE.search(first_names):
                    problem = (f"first argument '{first}' names a byte count but "
                               "BlocksToBytes expects blocks")
            if problem is None and second and \
                    not BLOCK_SIZE_NAME_RE.search(second) and \
                    re.search(r"_(?:blocks|seconds)\b", second):
                problem = (f"second argument '{second}' does not look like a "
                           "block size in bytes")
            if problem:
                findings.append(Finding(
                    src.path, lineno, "units-arg-order",
                    f"{call}: {problem} "
                    "(or tertio-lint: allow(units-arg-order) if intentional)"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

PACKS = {
    "error-discipline": check_error_discipline,
    "hot-path": check_hot_paths,
    "encapsulation": check_encapsulation,
    "span-registry": check_span_registry,
    "units": check_units,
}


def apply_fixes(findings: list[Finding]) -> int:
    """Applies the mechanical fixes attached to findings. Returns count."""
    by_file: dict[pathlib.Path, list[Finding]] = {}
    for f in findings:
        if f.fix:
            by_file.setdefault(f.path, []).append(f)
    fixed = 0
    for path, file_findings in by_file.items():
        lines = path.read_text().splitlines(keepends=True)
        for f in file_findings:
            old, new = f.fix
            idx = f.line - 1
            if idx < len(lines) and lines[idx].rstrip("\n") == old:
                eol = "\n" if lines[idx].endswith("\n") else ""
                lines[idx] = new + eol
                fixed += 1
        path.write_text("".join(lines))
    return fixed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rules", default="all",
                        help="comma-separated rule packs to run "
                             f"({', '.join(PACKS)}; default: all)")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (units-raw-param type "
                             "rewrites) and re-run the checks")
    parser.add_argument("--root", type=pathlib.Path, default=DEFAULT_REPO,
                        help="repo root to analyze (for the lint's own tests)")
    parser.add_argument("--list-spans", action="store_true",
                        help="print the parsed span registry and exit")
    args = parser.parse_args(argv)

    repo = Repo(args.root.resolve())
    findings: list[Finding] = []
    if args.list_spans:
        for span in load_registry(repo, findings):
            print(span)
        return 0 if not findings else 1

    if args.rules == "all":
        selected = list(PACKS)
    else:
        selected = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in selected if r not in PACKS]
        if unknown:
            print(f"tertio_lint: unknown rule pack(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    for pack in selected:
        PACKS[pack](repo, findings)

    if args.fix:
        # Iterate to a fixed point: two violations on one line produce fixes
        # against the same original text, so only one lands per round.
        total = 0
        for _ in range(8):
            fixed = apply_fixes(findings)
            if not fixed:
                break
            total += fixed
            repo = Repo(args.root.resolve())
            findings = []
            for pack in selected:
                PACKS[pack](repo, findings)
        if total:
            print(f"tertio_lint: applied {total} fix(es)")

    for finding in findings:
        print(f"{finding.rel(repo.root)}:{finding.line}: "
              f"[{finding.rule}] {finding.message}")
    if findings:
        print(f"tertio_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"tertio_lint: clean ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
