#!/usr/bin/env python3
"""Unit tests for tertio_lint v2 (ISSUE 9 satellite).

Each test builds a throwaway repo tree in a tempdir and runs the linter's
main() against it with --root, asserting on findings and exit codes. Run
directly (`python3 test_tertio_lint.py`) or via ctest (`lint_selftest`).
"""

import contextlib
import io
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import tertio_lint  # noqa: E402


class LintTree(contextlib.AbstractContextManager):
    """A scratch repo tree: write(relpath, text), then run(*argv)."""

    def __enter__(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        return self

    def __exit__(self, *exc):
        self._tmp.cleanup()
        return False

    def write(self, rel: str, text: str) -> pathlib.Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def run(self, *argv: str):
        out = io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
            code = tertio_lint.main(["--root", str(self.root), *argv])
        return code, out.getvalue()


class UnitsRawParamTest(unittest.TestCase):
    def test_flags_raw_param_in_header(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.h",
                       "void Transfer(std::uint64_t count_blocks);\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 1)
            self.assertIn("units-raw-param", out)
            self.assertIn("count_blocks", out)
            self.assertIn("Blocks", out)

    def test_seconds_param_suggests_simseconds(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.h", "void Wait(double delay_seconds);\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 1)
            self.assertIn("SimSeconds", out)

    def test_cc_files_are_not_scanned(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.cc",
                       "void Transfer(std::uint64_t count_blocks);\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 0, out)

    def test_waiver_suppresses(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.h",
                       "// tertio-lint: allow(units-raw-param)\n"
                       "void Transfer(std::uint64_t count_blocks);\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 0, out)

    def test_units_h_is_exempt(self):
        with LintTree() as tree:
            tree.write("src/util/units.h",
                       "void Convert(std::uint64_t raw_blocks);\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 0, out)

    def test_mentions_in_comments_ignored(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.h",
                       "// takes std::uint64_t count_blocks for legacy reasons\n"
                       "void Transfer(Blocks count);\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 0, out)


class UnitsFixTest(unittest.TestCase):
    def test_fix_rewrites_parameter_type(self):
        with LintTree() as tree:
            path = tree.write("src/foo/foo.h",
                              "void Transfer(std::uint64_t count_blocks, "
                              "std::uint64_t size_bytes);\n")
            code, out = tree.run("--rules=units", "--fix")
            self.assertEqual(code, 0, out)
            fixed = path.read_text()
            self.assertIn("Blocks count_blocks", fixed)
            self.assertIn("Bytes size_bytes", fixed)
            self.assertNotIn("std::uint64_t", fixed)

    def test_fix_rewrites_seconds_to_simseconds(self):
        with LintTree() as tree:
            path = tree.write("src/foo/foo.h",
                              "void Wait(double delay_seconds);\n")
            code, out = tree.run("--rules=units", "--fix")
            self.assertEqual(code, 0, out)
            self.assertIn("SimSeconds delay_seconds", path.read_text())


class UnitsUnwrapTest(unittest.TestCase):
    def test_flags_header_unwrap(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.h",
                       "inline double S(Blocks b) { return b.value(); }\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 1)
            self.assertIn("units-unwrap", out)

    def test_cc_unwrap_is_free(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.cc",
                       "double S(Blocks b) { return b.value(); }\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 0, out)

    def test_waiver_on_line_above(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.h",
                       "// tertio-lint: allow(units-unwrap)\n"
                       "inline double S(Blocks b) { return b.value(); }\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 0, out)


class UnitsArgOrderTest(unittest.TestCase):
    def test_block_count_as_bytes_argument(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.cc",
                       "auto n = BytesToBlocks(r_blocks, block_bytes);\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 1)
            self.assertIn("units-arg-order", out)

    def test_byte_count_as_blocks_argument(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.cc",
                       "auto n = BlocksToBytes(total_bytes, block_bytes);\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 1)
            self.assertIn("units-arg-order", out)

    def test_correct_order_is_clean(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.cc",
                       "auto n = BytesToBlocks(total_bytes, block_bytes);\n"
                       "auto m = BlocksToBytes(r_blocks, kDefaultBlockBytes);\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 0, out)

    def test_suspicious_second_argument(self):
        with LintTree() as tree:
            tree.write("src/foo/foo.cc",
                       "auto n = BytesToBlocks(total_bytes, memory_blocks);\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 1)
            self.assertIn("block size", out)


class DriveLeaseTest(unittest.TestCase):
    def test_flags_direct_lease_outside_exec(self):
        with LintTree() as tree:
            tree.write("tools/cli.cc",
                       "auto lease = site.LeaseDrives(2, tag, want);\n")
            tree.write("bench/b.cc",
                       "auto got = site->AcquireDrives(1, \"bench\");\n")
            code, out = tree.run("--rules=encapsulation")
            self.assertEqual(code, 1)
            self.assertIn("tools/cli.cc:1: [drive-lease]", out)
            self.assertIn("bench/b.cc:1: [drive-lease]", out)

    def test_src_exec_is_exempt(self):
        with LintTree() as tree:
            tree.write("src/exec/query_session.cc",
                       "auto lease = site->LeaseDrives(2, tag, want);\n")
            code, out = tree.run("--rules=encapsulation")
            self.assertEqual(code, 0, out)

    def test_waiver_suppresses(self):
        with LintTree() as tree:
            tree.write("tools/cli.cc",
                       "auto lease = site.AcquireDrives(1, \"cli\");"
                       "  // tertio-lint: allow(drive-lease)\n")
            code, out = tree.run("--rules=encapsulation")
            self.assertEqual(code, 0, out)

    def test_mentions_in_comments_ignored(self):
        with LintTree() as tree:
            tree.write("src/disk/d.h",
                       "// Prefer LeaseDrives(...) over AcquireDrives(...).\n")
            code, out = tree.run("--rules=encapsulation")
            self.assertEqual(code, 0, out)


class PackSelectionTest(unittest.TestCase):
    def test_units_pack_skips_hot_path_rules(self):
        with LintTree() as tree:
            tree.write("src/join/hot.cc", "std::unordered_map<int, int> m;\n")
            code, out = tree.run("--rules=units")
            self.assertEqual(code, 0, out)

    def test_hot_path_pack_still_fires(self):
        with LintTree() as tree:
            tree.write("src/join/hot.cc", "std::unordered_map<int, int> m;\n")
            code, out = tree.run("--rules=hot-path")
            self.assertEqual(code, 1)
            self.assertIn("unordered-map", out)

    def test_unknown_pack_is_usage_error(self):
        with LintTree() as tree:
            code, out = tree.run("--rules=nonsense")
            self.assertEqual(code, 2)


class StripCommentsTest(unittest.TestCase):
    def test_line_and_block_comments_blanked(self):
        stripped = tertio_lint.strip_comments(
            "int a; // std::unordered_map\n/* std::rand( */ int b;\n")
        self.assertNotIn("unordered_map", stripped)
        self.assertNotIn("rand", stripped)
        self.assertEqual(stripped.count("\n"), 2)

    def test_string_literals_survive(self):
        stripped = tertio_lint.strip_comments('auto s = "a // b";\n')
        self.assertIn('"a // b"', stripped)


class RealRepoTest(unittest.TestCase):
    """The shipped repo itself must be lint-clean (acceptance criterion)."""

    def test_units_pack_clean_on_src(self):
        repo = pathlib.Path(__file__).resolve().parents[3]
        if not (repo / "src" / "util" / "units.h").exists():
            self.skipTest("not running inside the tertio repo")
        out = io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
            code = tertio_lint.main(["--root", str(repo), "--rules=units"])
        self.assertEqual(code, 0, out.getvalue())


if __name__ == "__main__":
    unittest.main()
