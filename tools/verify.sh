#!/usr/bin/env bash
# Full verify flow: tier-1 build + tests (RelWithDebInfo), a bench smoke run
# that must produce BENCH_joins.json, then the sanitizer passes — ASan+UBSan
# over the fault/error-path tests and TSan over the parallel-sweep tests —
# so every recovery branch and every sweep-driver interleaving runs
# sanitizer-checked. Presets live in CMakePresets.json.
#
# Usage: tools/verify.sh [--fast]
#   --fast   skip the sanitizer passes (tier-1 + bench smoke only)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: configure + build + ctest (preset: default) =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default -j"$(nproc)"

echo "== bench smoke: one parallel figure sweep must emit BENCH_joins.json =="
SMOKE_JSON="$(mktemp -t bench_joins.XXXXXX.json)"
rm -f "$SMOKE_JSON"
TERTIO_BENCH_JSON="$SMOKE_JSON" ./build/bench/bench_fig8_response_time >/dev/null
if [[ ! -s "$SMOKE_JSON" ]]; then
  echo "FAIL: bench run did not produce BENCH_joins.json" >&2
  exit 1
fi
rm -f "$SMOKE_JSON"

if [[ "$FAST" == 1 ]]; then
  echo "== --fast: skipping sanitizer passes =="
  exit 0
fi

echo "== sanitizers: ASan+UBSan build + fault-labelled tests (preset: asan) =="
cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan -L faults -j"$(nproc)"

echo "== sanitizers: TSan build + parallel-sweep tests (preset: tsan) =="
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"
ctest --preset tsan -L parallel -j"$(nproc)"

echo "== verify OK =="
