#!/usr/bin/env bash
# Full verify flow: static analysis first (tertio_lint, and clang-tidy when
# installed), then tier-1 build + tests (RelWithDebInfo), a bench smoke run
# that must produce BENCH_joins.json, then the sanitizer passes — ASan+UBSan
# over the fault/error-path and SimSan tests and TSan over the parallel-sweep
# and query-service tests — so every recovery branch and every driver
# interleaving runs
# sanitizer-checked. The asan/tsan presets build with TERTIO_SIMSAN=ON, so
# every test in those passes also runs under the simulation invariant
# auditor (sim/auditor.h) with hard-fail at Simulation destruction.
# Presets live in CMakePresets.json.
#
# Usage: tools/verify.sh [--fast]
#   --fast   skip the sanitizer passes (lint + tier-1 + bench smoke only)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== static analysis: tertio_lint (all rule packs) =="
python3 tools/lint/tertio_lint.py

echo "== static analysis: tertio_lint units pack + self-tests =="
python3 tools/lint/tertio_lint.py --rules=units
python3 tools/lint/tests/test_tertio_lint.py

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== static analysis: clang-tidy (preset: tidy, warnings-as-errors) =="
  cmake --preset tidy
  cmake --build --preset tidy -j"$(nproc)"
else
  echo "== static analysis: clang-tidy not installed, skipping (CI runs it) =="
fi

echo "== tier-1: configure + build + ctest (preset: default) =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default -j"$(nproc)"

echo "== tier-1: forced-scalar ctest (TERTIO_SIMD=scalar) =="
# The SIMD probe/build kernels must be pair-set-identical to the portable
# scalar fallback; the whole suite reruns with dispatch pinned to scalar.
TERTIO_SIMD=scalar ctest --preset default -j"$(nproc)"

echo "== bench smoke: one parallel figure sweep must emit BENCH_joins.json =="
SMOKE_JSON="$(mktemp -t bench_joins.XXXXXX.json)"
rm -f "$SMOKE_JSON"
TERTIO_BENCH_JSON="$SMOKE_JSON" ./build/bench/bench_fig8_response_time >/dev/null
if [[ ! -s "$SMOKE_JSON" ]]; then
  echo "FAIL: bench run did not produce BENCH_joins.json" >&2
  exit 1
fi
rm -f "$SMOKE_JSON"

echo "== bench smoke: data-plane speedups (SIMD probe, closed-form commit) =="
SMOKE_JSON="$(mktemp -t bench_joins.XXXXXX.json)"
rm -f "$SMOKE_JSON"
# --benchmark_filter matches nothing: the registered google-benchmark loops
# are skipped and only main()'s headline metrics (probe sweep + three-way
# commit comparison, with in-bench bit-identity checks) run.
TERTIO_BENCH_JSON="$SMOKE_JSON" ./build/bench/bench_micro_substrates \
  --benchmark_filter='^$' >/dev/null
python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
benches = json.load(open(sys.argv[1]))["benches"]
metrics = next(b["metrics"] for b in benches if b["name"] == "micro_substrates")
probe = metrics["probe_very_selective_16b_speedup"]
commit = metrics["commit_closed_form_vs_replay_speedup"]
print(f"probe very-selective speedup {probe:.2f}x, closed-form commit {commit:.0f}x")
if probe < 2.0:
    sys.exit(f"FAIL: SIMD probe speedup {probe:.2f}x < 2.0x at the very-selective point")
if commit < 5.0:
    sys.exit(f"FAIL: closed-form commit {commit:.2f}x < 5.0x over O(chunks) replay")
EOF
rm -f "$SMOKE_JSON"

echo "== bench smoke: query service must emit the cache + concurrency metrics =="
SMOKE_JSON="$(mktemp -t bench_joins.XXXXXX.json)"
rm -f "$SMOKE_JSON"
TERTIO_BENCH_JSON="$SMOKE_JSON" ./build/bench/bench_query_service >/dev/null
if ! grep -q 'zipf_tape_block_drop' "$SMOKE_JSON" \
    || ! grep -q 'zipf_cache_mb_0_tape_blocks_read' "$SMOKE_JSON"; then
  echo "FAIL: bench_query_service did not record the zipf cache sweep" >&2
  exit 1
fi
python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
benches = json.load(open(sys.argv[1]))["benches"]
metrics = next(b["metrics"] for b in benches if b["name"] == "bench_query_service")
# The policy x max_in_flight sweep must be present for every elevator cell...
for cap in (1, 2, 4):
    for key in ("makespan_seconds", "p50_seconds", "p99_seconds",
                "wait_p50_seconds", "wait_p99_seconds", "robot_exchanges"):
        name = f"svc_elevator_c{cap}_{key}"
        if name not in metrics:
            sys.exit(f"FAIL: bench_query_service did not record {name}")
# ...and concurrent elevator dispatch must beat the serial FIFO baseline.
fifo_c1 = metrics["svc_fifo_c1_makespan_seconds"]
elev_c4 = metrics["svc_elevator_c4_makespan_seconds"]
print(f"svc sweep: fifo@c1 makespan {fifo_c1:.0f}s, elevator@c4 {elev_c4:.0f}s")
if elev_c4 >= fifo_c1:
    sys.exit(f"FAIL: elevator@c4 makespan {elev_c4:.0f}s does not beat "
             f"serial fifo {fifo_c1:.0f}s")
robot_fifo = metrics["svc_fifo_c1_robot_exchanges"]
robot_elev = metrics["svc_elevator_c1_robot_exchanges"]
if robot_elev > robot_fifo:
    sys.exit(f"FAIL: elevator@c1 made {robot_elev:.0f} robot trips, "
             f"more than fifo's {robot_fifo:.0f}")
EOF
rm -f "$SMOKE_JSON"

if [[ "$FAST" == 1 ]]; then
  echo "== --fast: skipping sanitizer passes =="
  exit 0
fi

echo "== sanitizers: ASan+UBSan build + fault/simsan/cache tests (preset: asan) =="
cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan -L 'faults|simsan|cache' -j"$(nproc)"

echo "== sanitizers: TSan build + parallel-sweep + service tests (preset: tsan) =="
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"
ctest --preset tsan -L 'parallel|service' -j"$(nproc)"

echo "== verify OK =="
