#!/usr/bin/env bash
# Full verify flow: tier-1 build + tests (RelWithDebInfo), then the
# ASan+UBSan preset over the fault/error-path tests so every recovery
# branch runs sanitizer-checked. Presets live in CMakePresets.json.
#
# Usage: tools/verify.sh [--fast]
#   --fast   skip the sanitizer pass (tier-1 only)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: configure + build + ctest (preset: default) =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default -j"$(nproc)"

if [[ "$FAST" == 1 ]]; then
  echo "== --fast: skipping sanitizer pass =="
  exit 0
fi

echo "== sanitizers: ASan+UBSan build + fault-labelled tests (preset: asan) =="
cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan -L faults -j"$(nproc)"

echo "== verify OK =="
