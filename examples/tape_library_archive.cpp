/// \file tape_library_archive.cpp
/// Joining relations that live in an automated tape library: the robot
/// mounts cartridges (30 s per exchange) before the join can run, and the
/// example verifies the paper's Section 3.2 claim that media-exchange time
/// is negligible against the join itself.

#include <cstdio>

#include "exec/machine.h"
#include "join/join_method.h"
#include "relation/generator.h"
#include "util/string_util.h"

using namespace tertio;

int main() {
  exec::MachineConfig config = exec::MachineConfig::PaperTestbed(100 * kMB, 16 * kMB);
  config.with_library = true;
  exec::Machine machine(config);
  tape::TapeLibrary* library = machine.library();

  // The archive: several cartridges in the library; two hold this month's
  // relations. (Timing-only data at realistic sizes.)
  auto r_slot = library->AddCartridge(
      std::make_unique<tape::TapeVolume>("archive-dim-2026-06", config.block_bytes));
  auto s_slot = library->AddCartridge(
      std::make_unique<tape::TapeVolume>("archive-fact-2026-06", config.block_bytes));
  if (!r_slot.ok() || !s_slot.ok()) return 1;

  rel::GeneratorConfig r_config;
  r_config.name = "dim";
  r_config.tuple_count = BytesToBlocks(500 * kMB, config.block_bytes).value() *
                         rel::TuplesPerBlock(rel::Schema::KeyPayload(100), config.block_bytes);
  r_config.phantom = true;
  auto r = rel::GenerateOnTape(r_config, library->CartridgeAt(*r_slot).value());
  rel::GeneratorConfig s_config = r_config;
  s_config.name = "fact";
  s_config.tuple_count *= 4;  // 2 GB fact
  auto s = rel::GenerateOnTape(s_config, library->CartridgeAt(*s_slot).value());
  if (!r.ok() || !s.ok()) return 1;

  // Robot mounts both cartridges — this time IS charged, unlike the paper's
  // pre-loaded setup, so we can check it is negligible. The example talks to
  // the robot directly to show the raw library API.
  auto mount_r = library->Mount(*r_slot, &machine.drive_r(), 0.0);  // tertio-lint: allow(mount)
  auto mount_s = library->Mount(*s_slot, &machine.drive_s(), 0.0);  // tertio-lint: allow(mount)
  if (!mount_r.ok() || !mount_s.ok()) {
    std::fprintf(stderr, "mount failed\n");
    return 1;
  }
  SimSeconds mounted_at = std::max(mount_r->end, mount_s->end);
  std::printf("Robot mounted both cartridges by t = %s\n", FormatDuration(mounted_at).c_str());

  join::JoinSpec spec;
  spec.r = &r.value();
  spec.s = &s.value();
  auto method = join::CreateJoinMethod(JoinMethodId::kCttGh);
  join::JoinContext ctx = machine.context();
  auto stats = method->Execute(spec, ctx);
  if (!stats.ok()) {
    std::fprintf(stderr, "join failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("CTT-GH joined %s x %s in %s\n", FormatBytes(r->bytes()).c_str(),
              FormatBytes(s->bytes()).c_str(),
              FormatDuration(stats->response_seconds).c_str());
  double exchange_fraction = mounted_at / (mounted_at + stats->response_seconds);
  std::printf("Media exchange was %.2f%% of the total — %s\n", 100.0 * exchange_fraction,
              exchange_fraction < 0.02 ? "negligible, as Section 3.2 assumes"
                                       : "NOT negligible at this scale");

  // Put the cartridges back.
  if (!library->Dismount(&machine.drive_r(), machine.sim().Horizon()).ok() ||
      !library->Dismount(&machine.drive_s(), machine.sim().Horizon()).ok()) {
    return 1;
  }
  std::printf("Cartridges returned to their slots.\n");
  return 0;
}
