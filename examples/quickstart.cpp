/// \file quickstart.cpp
/// Five-minute tour of tertio: build a simulated machine, put two relations
/// on tape, let the advisor pick a join method, run the join against the
/// device models, and verify the result against an in-memory reference.
///
///   $ ./examples/quickstart

#include <cstdio>

#include "exec/experiment.h"
#include "exec/machine.h"
#include "join/advisor.h"
#include "join/join_method.h"
#include "join/reference_join.h"
#include "util/string_util.h"

using namespace tertio;

int main() {
  // 1. A machine per Section 3.1 of the paper: two tape drives, two disks,
  //    a fixed memory allotment. Sizes here are deliberately tiny so the
  //    example moves real tuples.
  exec::MachineConfig config;
  config.block_bytes = 8 * kKiB;
  config.disk_space_bytes = 16 * kMB;
  config.memory_bytes = 2 * kMB;
  exec::Machine machine(config);

  // 2. Two relations, generated straight onto the tape volumes: R with
  //    unique keys, S referencing R (every S tuple matches exactly once).
  exec::WorkloadConfig workload;
  workload.r_bytes = 8 * kMB;
  workload.s_bytes = 48 * kMB;
  workload.phantom = false;  // real tuples: the join output is verifiable
  auto prepared = exec::PrepareWorkload(&machine, workload);
  if (!prepared.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("R: %s, S: %s, disk D = %s, memory M = %s\n",
              FormatBytes(prepared->r.bytes()).c_str(),
              FormatBytes(prepared->s.bytes()).c_str(),
              FormatBytes(config.disk_space_bytes).c_str(),
              FormatBytes(config.memory_bytes).c_str());

  // 3. Ask the advisor (the paper's Section 10 conclusions as an API) which
  //    method fits this machine.
  auto params = exec::CostParamsFor(machine, workload);
  auto advice = join::AdviseJoinMethod(params);
  if (!advice.ok()) {
    std::fprintf(stderr, "no feasible method: %s\n", advice.status().ToString().c_str());
    return 1;
  }
  std::printf("\nAdvisor ranking (estimated response):\n");
  for (const auto& choice : advice->ranked) {
    std::printf("  %-10s %s\n", std::string(JoinMethodName(choice.method)).c_str(),
                FormatDuration(choice.estimate.total_seconds).c_str());
  }

  // 4. Execute the winning method against the simulated tapes and disks.
  join::JoinSpec spec;
  spec.r = &prepared->r;
  spec.s = &prepared->s;
  auto method = join::CreateJoinMethod(advice->best().method);
  join::JoinContext ctx = machine.context();
  auto stats = method->Execute(spec, ctx);
  if (!stats.ok()) {
    std::fprintf(stderr, "join failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("\nRan %s:\n", stats->method.c_str());
  std::printf("  response        %s (Step I %s + Step II %s)\n",
              FormatDuration(stats->response_seconds).c_str(),
              FormatDuration(stats->step1_seconds).c_str(),
              FormatDuration(stats->step2_seconds).c_str());
  std::printf("  output          %llu tuples\n",
              static_cast<unsigned long long>(stats->output_tuples));
  std::printf("  tape traffic    %s read, %s written\n",
              FormatBytes(BlocksToBytes(stats->tape_blocks_read, config.block_bytes)).c_str(),
              FormatBytes(BlocksToBytes(stats->tape_blocks_written, config.block_bytes)).c_str());
  std::printf("  disk traffic    %s in %llu requests\n",
              FormatBytes(BlocksToBytes(stats->disk_traffic_blocks(), config.block_bytes)).c_str(),
              static_cast<unsigned long long>(stats->disk_requests));
  std::printf("  R scanned       %llu times\n",
              static_cast<unsigned long long>(stats->r_scans));

  // 5. Verify against the uncosted in-memory reference join.
  auto reference = join::ReferenceJoin(prepared->r, prepared->s, 0, 0);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference failed: %s\n", reference.status().ToString().c_str());
    return 1;
  }
  bool match = reference->tuples() == stats->output_tuples &&
               reference->checksum() == stats->output_checksum;
  std::printf("\nReference join: %llu tuples — %s\n",
              static_cast<unsigned long long>(reference->tuples()),
              match ? "results MATCH" : "results DIFFER (bug!)");
  std::printf(
      "(Advisor estimates use the paper's transfer-only model; at this toy\n"
      "scale fixed costs like tape locates make the simulated run slower.)\n");
  return match ? 0 : 1;
}
