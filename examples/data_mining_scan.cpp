/// \file data_mining_scan.cpp
/// The paper's motivating scenario (Section 1): a data-mining join over
/// tape-resident data on a workstation — "making database applications
/// similar to data mining possible without mainframe-size machinery".
///
/// A 10 GB clickstream fact relation lives on tape S; a 2.5 GB customer
/// dimension on tape R. The workstation has 500 MB of free disk and 32 MB of
/// memory for the join. The example contrasts:
///   1. the conventional approach — stage both tapes to disk first — which
///      is impossible here (12.5 GB of data, 0.5 GB of disk);
///   2. joining directly on tertiary storage with CTT-GH.
///
/// Runs in timing-only mode (paper scale, simulated in seconds).

#include <cstdio>

#include "exec/experiment.h"
#include "exec/machine.h"
#include "join/advisor.h"
#include "join/join_method.h"
#include "util/string_util.h"

using namespace tertio;

int main() {
  constexpr ByteCount kFactBytes = 10000 * kMB;   // clickstream events
  constexpr ByteCount kDimBytes = 2500 * kMB;     // customer dimension
  constexpr ByteCount kDiskBytes = 500 * kMB;
  constexpr ByteCount kMemoryBytes = 32 * kMB;

  std::printf("Workload: %s fact (tape S) JOIN %s dimension (tape R)\n",
              FormatBytes(kFactBytes).c_str(), FormatBytes(kDimBytes).c_str());
  std::printf("Workstation: %s disk, %s memory, 2x DLT-4000, 2 disks\n\n",
              FormatBytes(kDiskBytes).c_str(), FormatBytes(kMemoryBytes).c_str());

  // --- The conventional plan: copy tertiary data to disk, then join.
  if (kFactBytes + kDimBytes > kDiskBytes) {
    std::printf("Conventional plan (stage tapes to disk): IMPOSSIBLE —\n");
    std::printf("  staging needs %s of disk, only %s available.\n\n",
                FormatBytes(kFactBytes + kDimBytes).c_str(),
                FormatBytes(kDiskBytes).c_str());
  }

  // --- Direct tertiary join: ask the advisor.
  exec::MachineConfig config = exec::MachineConfig::PaperTestbed(kDiskBytes, kMemoryBytes);
  exec::Machine machine(config);
  exec::WorkloadConfig workload;
  workload.r_bytes = kDimBytes;
  workload.s_bytes = kFactBytes;
  workload.phantom = true;  // timing-only at this scale
  auto params = exec::CostParamsFor(machine, workload);
  auto advice = join::AdviseJoinMethod(params);
  if (!advice.ok()) {
    std::fprintf(stderr, "no feasible method: %s\n", advice.status().ToString().c_str());
    return 1;
  }
  std::printf("Feasible tertiary join methods (advisor ranking):\n");
  for (const auto& choice : advice->ranked) {
    std::printf("  %-10s est. %s\n", std::string(JoinMethodName(choice.method)).c_str(),
                FormatDuration(choice.estimate.total_seconds).c_str());
  }
  for (const auto& rejection : advice->rejected) {
    std::printf("  %-10s infeasible: %s\n",
                std::string(JoinMethodName(rejection.method)).c_str(),
                rejection.reason.message().c_str());
  }

  // --- Execute the pick against the simulated devices.
  auto stats = exec::RunJoinExperiment(config, workload, advice->best().method);
  if (!stats.ok()) {
    std::fprintf(stderr, "join failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  BytesPerSecond bare = machine.EffectiveTapeRate(workload.compressibility);
  double read_both = ((kFactBytes + kDimBytes) / bare).value();
  std::printf("\nRan %s at full 12.5 GB scale:\n", stats->method.c_str());
  std::printf("  Step I  (hash R to tape)  %s\n", FormatDuration(stats->step1_seconds).c_str());
  std::printf("  Step II (join)            %s\n", FormatDuration(stats->step2_seconds).c_str());
  std::printf("  total response            %s\n",
              FormatDuration(stats->response_seconds).c_str());
  std::printf("  bare read of both tapes   %s  -> relative cost %.1fx\n",
              FormatDuration(read_both).c_str(), stats->response_seconds / read_both);
  std::printf("  R scanned %llu times; %llu Step-II iterations\n",
              static_cast<unsigned long long>(stats->r_scans),
              static_cast<unsigned long long>(stats->iterations));
  std::printf(
      "\n(The paper's Experiment 1 ran this join in 14 hours on 1996 hardware,\n"
      "~7x the bare read time — the same relative cost this simulation shows.)\n");
  return 0;
}
