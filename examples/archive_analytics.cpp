/// \file archive_analytics.cpp
/// A complete analytics query over tape-resident data using the query
/// layer: join the archived sales facts (tape S) with the product dimension
/// (tape R), filter, and aggregate — with the join output pipelined straight
/// into the aggregation, never touching storage (Section 3.2's model).
///
/// Conceptually:
///   SELECT bucket(product_key), COUNT(*), SUM(product_key)
///   FROM sales JOIN product ON sales.product_key = product.key
///   WHERE product.key < 150
///   GROUP BY bucket(product_key)

#include <cstdio>

#include "exec/machine.h"
#include "query/query.h"
#include "relation/generator.h"
#include "util/string_util.h"

using namespace tertio;
using namespace tertio::query;

int main() {
  exec::MachineConfig config;
  config.block_bytes = 8 * kKiB;
  config.disk_space_bytes = 8 * kMB;
  config.memory_bytes = 1 * kMB;
  exec::Machine machine(config);

  // The archive: a product dimension and a sales fact, both on tape.
  rel::GeneratorConfig product_config;
  product_config.name = "product";
  product_config.tuple_count = 300;
  product_config.keys = rel::KeySequence::kSequentialUnique;
  auto product = rel::GenerateOnTape(product_config, &machine.tape_r());
  rel::GeneratorConfig sales_config;
  sales_config.name = "sales";
  sales_config.tuple_count = 20000;
  sales_config.keys = rel::KeySequence::kZipf;  // skewed: some products sell more
  sales_config.key_domain = 300;
  sales_config.zipf_theta = 0.8;
  sales_config.seed = 2026;
  auto sales = rel::GenerateOnTape(sales_config, &machine.tape_s());
  if (!product.ok() || !sales.ok()) return 1;
  machine.MountTapes();

  std::printf("Archive: %llu products (%s), %llu sales (%s)\n",
              (unsigned long long)product->tuple_count, FormatBytes(product->bytes()).c_str(),
              (unsigned long long)sales->tuple_count, FormatBytes(sales->bytes()).c_str());

  // Joined row layout: [product.key, product.payload, sales.key, sales.payload].
  // Pipeline: WHERE product.key < 150, GROUP BY key/50, COUNT + SUM(key).
  CollectSink result;
  std::vector<ExprPtr> group;
  // Coarse bucket: three boolean splits make 4 ordered groups of 50 keys.
  group.push_back(Add(Add(Lt(Col(0), Lit(std::int64_t{50})),
                          Lt(Col(0), Lit(std::int64_t{100}))),
                      Lt(Col(0), Lit(std::int64_t{150}))));
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kCount, nullptr});
  aggs.push_back(AggSpec{AggKind::kSum, Col(0)});
  AggregateSink aggregate(std::move(group), std::move(aggs), &result);
  FilterSink filter(Lt(Col(0), Lit(std::int64_t{150})), &aggregate);

  TertiaryQuery query;
  query.r = &product.value();
  query.s = &sales.value();
  query.pipeline = &filter;

  join::JoinContext ctx = machine.context();
  auto stats = ExecuteQuery(query, ctx);
  if (!stats.ok()) {
    std::fprintf(stderr, "query failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }

  std::printf("Advisor chose %s; join response %s (virtual)\n",
              std::string(JoinMethodName(stats->method)).c_str(),
              FormatDuration(stats->join.response_seconds).c_str());
  std::printf("%llu joined rows flowed through the pipeline; %llu passed the filter.\n\n",
              (unsigned long long)stats->join.output_tuples,
              (unsigned long long)filter.rows_out());
  std::printf("key range      sales   sum(key)\n");
  std::printf("--------------------------------\n");
  const char* ranges[] = {"[100,150)", "[50,100)", "[0,50)"};
  for (const Row& row : result.rows()) {
    auto bucket = std::get<std::int64_t>(row.values[0]);
    auto count = std::get<std::int64_t>(row.values[1]);
    auto sum = std::get<double>(row.values[2]);
    const char* label = bucket >= 1 && bucket <= 3 ? ranges[bucket - 1] : "?";
    std::printf("%-12s %7lld   %8.0f\n", label, (long long)count, sum);
  }
  std::printf("\n(The Zipf skew shows: low keys are scrambled across the domain, so\n");
  std::printf("counts differ per range while the join handled the skewed buckets.)\n");
  return 0;
}
