/// \file capacity_planning.cpp
/// Using the analytical cost model for capacity planning: "this join must
/// finish overnight — how much disk and memory does the workstation need,
/// and which method should run?"
///
/// Sweeps a disk x memory grid, asks the advisor for the best method and
/// estimate in each cell, and marks the cells that meet the deadline.

#include <cstdio>
#include <vector>

#include "disk/disk_model.h"
#include "exec/report.h"
#include "join/advisor.h"
#include "tape/tape_model.h"
#include "util/string_util.h"

using namespace tertio;

int main() {
  // The join to plan: 4 GB fact against a 1 GB dimension, both on tape.
  constexpr ByteCount kRBytes = 1000 * kMB;
  constexpr ByteCount kSBytes = 4000 * kMB;
  constexpr double kDeadlineHours = 8.0;
  constexpr ByteCount kBlock = kDefaultBlockBytes;

  std::printf("Planning: %s JOIN %s, deadline %.0f h (overnight)\n\n",
              FormatBytes(kRBytes).c_str(), FormatBytes(kSBytes).c_str(), kDeadlineHours);

  const std::vector<ByteCount> disk_options = {100 * kMB, 500 * kMB, 1200 * kMB,
                                               3000 * kMB, 4000 * kMB};
  const std::vector<ByteCount> memory_options = {8 * kMB, 64 * kMB, 512 * kMB, 1200 * kMB};

  exec::TableReport table({"disk \\ memory", "8 MB", "64 MB", "512 MB", "1.2 GB"});
  for (ByteCount disk : disk_options) {
    std::vector<std::string> row{FormatBytes(disk)};
    for (ByteCount memory : memory_options) {
      cost::CostParams params;
      params.r_blocks = BytesToBlocks(kRBytes, kBlock);
      params.s_blocks = BytesToBlocks(kSBytes, kBlock);
      params.disk_blocks = BytesToBlocks(disk, kBlock);
      params.memory_blocks = BytesToBlocks(memory, kBlock);
      params.block_bytes = kBlock;
      params.tape_rate_bps = tape::TapeDriveModel::DLT4000().EffectiveRate(0.25);
      params.disk_rate_bps = 2 * disk::DiskModel::QuantumFireball1080().transfer_rate_bps;
      params.disk_positioning_seconds =
          disk::DiskModel::QuantumFireball1080().positioning_seconds;
      auto advice = join::AdviseJoinMethod(params);
      if (!advice.ok()) {
        row.push_back("infeasible");
        continue;
      }
      const auto& best = advice->best();
      double hours = (best.estimate.total_seconds / 3600.0).value();
      row.push_back(StrFormat("%s %.1fh%s", std::string(JoinMethodName(best.method)).c_str(),
                              hours, hours <= kDeadlineHours ? " *" : ""));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n'*' meets the %.0f-hour deadline. Note the paper's conclusions appear\n",
              kDeadlineHours);
  std::printf("in the grid: tape-tape CTT-GH when disk < |R|, CDT-GH with ample disk\n");
  std::printf("and tight memory, nested-block variants once memory approaches |R|.\n");
  return 0;
}
