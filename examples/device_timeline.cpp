/// \file device_timeline.cpp
/// Visualizing parallel I/O: run the sequential DT-GH and the concurrent
/// CDT-GH on the same workload with device tracing on, and print ASCII
/// Gantt timelines. The concurrent variant's tape and disk rows overlap —
/// that overlap *is* the paper's contribution in one picture.

#include <cstdio>

#include "exec/experiment.h"
#include "exec/machine.h"
#include "join/join_method.h"
#include "sim/trace_report.h"
#include "util/string_util.h"

using namespace tertio;

namespace {

int RunOne(JoinMethodId method_id) {
  exec::MachineConfig config = exec::MachineConfig::PaperTestbed(60 * kMB, 4 * kMB);
  exec::Machine machine(config);
  for (const auto& resource : machine.sim().resources()) {
    resource->EnableTrace();
  }
  exec::WorkloadConfig workload;
  workload.r_bytes = 20 * kMB;
  workload.s_bytes = 120 * kMB;
  workload.phantom = true;
  auto prepared = exec::PrepareWorkload(&machine, workload);
  if (!prepared.ok()) return 1;
  join::JoinSpec spec;
  spec.r = &prepared->r;
  spec.s = &prepared->s;
  auto method = join::CreateJoinMethod(method_id);
  join::JoinContext ctx = machine.context();
  auto stats = method->Execute(spec, ctx);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", std::string(JoinMethodName(method_id)).c_str(),
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s — response %s ('#' busy, '.' idle):\n\n", stats->method.c_str(),
              FormatDuration(stats->response_seconds).c_str());
  sim::GanttOptions options;
  options.width = 96;
  std::fputs(sim::RenderGantt(machine.sim(), options).c_str(), stdout);
  return 0;
}

}  // namespace

int main() {
  std::printf("Join of 20 MB (tape R) with 120 MB (tape S), D = 60 MB, M = 4 MB.\n");
  std::printf("Sequential vs concurrent Grace Hash Join on the device timelines:\n");
  if (RunOne(JoinMethodId::kDtGh) != 0) return 1;
  if (RunOne(JoinMethodId::kCdtGh) != 0) return 1;
  std::printf(
      "\nIn DT-GH one device works at a time (the single process blocks on\n"
      "each I/O); in CDT-GH the tapeS row overlaps the disk rows — the\n"
      "parallel I/O that cuts the response time.\n");
  return 0;
}
